// Config-driven experiment runner: describe a cluster and a DFSIO workload
// in a properties file (or key=value arguments), run it, and optionally
// dump a Chrome-trace of the burst buffer's flush pipeline.
//
//   ./experiment_runner example.conf
//   ./experiment_runner fs=bb bb.scheme=local files=8 file.size=64m
//   ./experiment_runner fs=lustre trace.out=/tmp/flush_trace.json
//   ./experiment_runner fs=bb metrics.out=r.json timeline.out=t.csv
//       stats.interval=100ms  (keys continue the same command line)
//
// Keys: fs={hdfs,lustre,bb}, bb.scheme={async,sync,local}, files,
// file.size, cluster.nodes, kv.servers, kv.memory, block.size,
// bb.promote={0,1}, trace.out=<path>, metrics.out=<path> (JSON report,
// schema hpcbb.report.v3, including per-op latency attribution and, with
// slo.* rules configured, the online health monitor's "health" section),
// timeline.out=<path> (CSV time series), stats.interval=<duration>
// (sampling period, e.g. 100ms; default 100ms), attr.topk=<n> (slowest ops
// dumped with full span chains in the report; default 5).
// Resilience (DESIGN.md §10, all off by default): net.retry.* (RPC retry
// policy), kv.failover={0,1}, bb.heartbeat=<duration> (failure detector,
// 0 = off), bb.suspect_after / bb.dead_after, and faults.* (deterministic
// fault injection) — see examples/example.conf for the full key list.
// Integrity (DESIGN.md §13): kv.scrub.interval=<duration> (background
// scrubber, 0 = off), kv.scrub.pace=<duration>, and the corruption schedule
// faults.corrupt.first / period (durations) / count.
// Metadata durability (DESIGN.md §14): bb.md.journal={0,1},
// bb.md.checkpoint_interval=<duration>, bb.md.journal_max_bytes, plus the
// master crash schedule faults.master.first / period / downtime / count.
// Health monitoring (DESIGN.md §15): slo.* rules (burn-rate alert engine
// on the sampler tick), flightrec.bytes (flight-recorder budget),
// slo.incident_dir (where hpcbb.incident.v1 bundles land on page). No
// slo.* keys = no monitor, and timing bit-identical to a build without it.
// Malformed resilience keys exit with status 2 instead of silently
// defaulting.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <memory>

#include "cluster/cluster.h"
#include "common/properties.h"
#include "common/strings.h"
#include "common/units.h"
#include "mapred/workloads.h"
#include "obs/attribution.h"
#include "obs/flightrec.h"
#include "obs/health.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "sim/sync.h"
#include "sim/trace.h"

namespace {

using namespace hpcbb;          // NOLINT
using cluster::Cluster;
using cluster::FsKind;
using sim::Task;

Properties parse_args(int argc, char** argv) {
  Properties props;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.find('=') == std::string::npos) {  // a config file path
      std::ifstream in(arg);
      if (!in) {
        std::fprintf(stderr, "cannot open config file: %s\n", arg.c_str());
        continue;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      auto parsed = Properties::parse(buffer.str());
      if (!parsed.is_ok()) {
        std::fprintf(stderr, "bad config %s: %s\n", arg.c_str(),
                     parsed.status().to_string().c_str());
        continue;
      }
      for (const auto& [k, v] : parsed.value().entries()) props.set(k, v);
    } else {
      auto parsed = Properties::parse(arg);
      if (parsed.is_ok()) {
        for (const auto& [k, v] : parsed.value().entries()) props.set(k, v);
      }
    }
  }
  return props;
}

}  // namespace

int main(int argc, char** argv) {
  const Properties props = parse_args(argc, argv);

  cluster::ClusterConfig config;
  config.compute_nodes =
      static_cast<std::uint32_t>(props.get_u64_or("cluster.nodes", 8));
  config.kv_servers =
      static_cast<std::uint32_t>(props.get_u64_or("kv.servers", 4));
  config.kv_memory_per_server = props.get_u64_or("kv.memory", 512 * MiB);
  config.block_size = props.get_u64_or("block.size", 32 * MiB);
  config.bb_promote_on_read = props.get_bool_or("bb.promote", false);
  // bb.flowctl.low/high/critical/pace_us — watermark + pacing knobs for the
  // flow-control subsystem (capacity is derived from the KV fleet size).
  config.bb_flowctl =
      flowctl::FlowControlParams::from_properties(props, config.bb_flowctl);
  // Resilience: RPC retry policy, KV ring failover, the master's heartbeat
  // failure detector, and the seed-driven fault injector. Everything
  // defaults off, keeping unconfigured runs identical to the seed.
  config.retry = net::RetryPolicy::from_properties(props, config.retry);
  // kv.failover, kv.repl.factor (replica count), kv.repl.ack (primary|all).
  config.kv_client.apply_properties(props);
  config.bb_heartbeat_interval_ns =
      props.get_duration_ns_or("bb.heartbeat", config.bb_heartbeat_interval_ns);
  config.bb_suspect_after = static_cast<std::uint32_t>(
      props.get_u64_or("bb.suspect_after", config.bb_suspect_after));
  config.bb_dead_after = static_cast<std::uint32_t>(
      props.get_u64_or("bb.dead_after", config.bb_dead_after));
  config.faults = faults::InjectorParams::from_properties(props, config.faults);
  // Resilience/integrity key validation. A malformed duration or count in a
  // retry policy, heartbeat, journal, or fault schedule is a configuration
  // error, not a silent fallback — a chaos run that quietly dropped its
  // schedule would report a clean resilience section and prove nothing.
  for (const char* key :
       {"kv.scrub.interval", "kv.scrub.pace", "faults.corrupt.first",
        "faults.corrupt.period", "bb.heartbeat", "bb.md.checkpoint_interval",
        "faults.master.first", "faults.master.period",
        "faults.master.downtime"}) {
    if (!props.contains(key)) continue;
    const auto parsed = props.get_duration_ns(key);
    if (!parsed.is_ok()) {
      std::fprintf(stderr, "bad config: %s\n",
                   parsed.status().to_string().c_str());
      return 2;
    }
  }
  for (const char* key :
       {"faults.corrupt.count", "net.retry.max_attempts",
        "net.retry.timeout_us", "net.retry.backoff_us",
        "net.retry.backoff_max_us", "bb.suspect_after", "bb.dead_after",
        "bb.md.journal_max_bytes", "faults.master.count"}) {
    if (!props.contains(key)) continue;
    const auto parsed = props.get_u64(key);
    if (!parsed.is_ok()) {
      std::fprintf(stderr, "bad config: %s\n",
                   parsed.status().to_string().c_str());
      return 2;
    }
  }
  for (const char* key : {"bb.md.journal", "net.retry.non_idempotent"}) {
    const auto value = props.get(key);
    if (!value) continue;
    if (*value != "true" && *value != "1" && *value != "yes" &&
        *value != "false" && *value != "0" && *value != "no") {
      std::fprintf(stderr,
                   "bad config: key %s: not a boolean (want 0/1): %s\n",
                   key, value->c_str());
      return 2;
    }
  }
  // SLO/flight-recorder keys ride the same reject-don't-default contract:
  // from_properties validates the whole slo.* / flightrec.* namespace.
  auto health_params = obs::HealthParams::from_properties(props);
  if (!health_params.is_ok()) {
    std::fprintf(stderr, "bad config: %s\n",
                 health_params.status().to_string().c_str());
    return 2;
  }
  config.bb_scrub.interval_ns =
      props.get_duration_ns_or("kv.scrub.interval", 0);
  config.bb_scrub.chunk_pace_ns = props.get_duration_ns_or("kv.scrub.pace", 0);
  // Metadata durability: bb.md.journal={0,1}, bb.md.checkpoint_interval
  // (duration), bb.md.journal_max_bytes (checkpoint when the journal grows
  // past this). Off by default; faults.master.* schedules master crashes.
  config.bb_md = bb::MdParams::from_properties(props, config.bb_md);
  const std::string scheme = props.get_or("bb.scheme", "async");
  config.scheme = scheme == "sync"    ? bb::Scheme::kSync
                  : scheme == "local" ? bb::Scheme::kLocal
                                      : bb::Scheme::kAsync;

  const std::string fs_name = props.get_or("fs", "bb");
  const FsKind kind = fs_name == "hdfs"     ? FsKind::kHdfs
                      : fs_name == "lustre" ? FsKind::kLustre
                                            : FsKind::kBurstBuffer;

  mapred::DfsioParams workload;
  workload.files = static_cast<std::uint32_t>(props.get_u64_or("files", 8));
  workload.file_size = props.get_u64_or("file.size", 64 * MiB);

  Cluster cluster(config);
  sim::TraceRecorder trace(cluster.sim());
  cluster.bb_master().set_trace(&trace);
  // Simulation-wide trace hook: every instrumented layer (hdfs, kv, lustre,
  // bb, mapred) emits causally-linked spans into the same recorder.
  cluster.sim().set_trace(&trace);
  // Latency attribution: consume op-tagged spans as they close and build
  // per-op critical-path breakdowns for the report's "attribution" section.
  obs::SpanAccountant attribution(
      static_cast<std::size_t>(props.get_u64_or("attr.topk", 5)));
  // Health monitor + flight recorder only when slo.* rules are configured:
  // the monitor rides the sampler tick and the recorder rides the span
  // sink, so an unconfigured run schedules zero extra events.
  std::unique_ptr<obs::FlightRecorder> flightrec;
  std::unique_ptr<obs::HealthMonitor> health;
  if (!health_params.value().rules.empty()) {
    flightrec = std::make_unique<obs::FlightRecorder>(
        cluster.sim(), health_params.value().flightrec_bytes);
    health = std::make_unique<obs::HealthMonitor>(
        cluster.sim(), std::move(health_params).value());
    health->set_flight_recorder(flightrec.get());
    health->set_accountant(&attribution);
  }
  trace.set_span_sink([&attribution, rec = flightrec.get()](
                          const sim::TraceSpan& s) {
    attribution.on_span_close(s);
    if (rec != nullptr) rec->on_span_close(s);
  });

  // Time-series sampler: snapshots the hot counters/gauges every
  // stats.interval of simulated time.
  obs::TimeSeriesSampler sampler(
      cluster.sim(),
      props.get_duration_ns_or("stats.interval", 100 * duration::ms));
  for (const char* counter :
       {"net.tx_bytes", "net.rpc.calls", "kv.hits", "kv.misses",
        "kv.put_bytes", "kv.evictions", "lustre.write_bytes",
        "lustre.read_bytes", "hdfs.dn.write_bytes", "flowctl.stalls",
        "net.retry.attempts", "kv.failover.set",
        "kv.repl.repair_bytes", "kv.repl.anti_entropy_bytes",
        "kv.integrity.detected", "kv.integrity.repaired",
        "kv.scrub.chunks", "bb.quarantined_blocks"}) {
    sampler.watch_counter(counter);
  }
  for (const char* gauge :
       {"kv.bytes", "bb.dirty_bytes", "bb.clean_bytes",
        "bb.flush_queue_depth", "lustre.queue_depth",
        "kv.repl.under_replicated"}) {
    sampler.watch_gauge(gauge);
  }
  if (health != nullptr) health->attach(sampler);

  std::printf("experiment: fs=%s scheme=%s nodes=%u kv=%u x %s, "
              "workload %u x %s\n",
              std::string(to_string(kind)).c_str(),
              std::string(to_string(config.scheme)).c_str(),
              config.compute_nodes, config.kv_servers,
              format_bytes(config.kv_memory_per_server).c_str(),
              workload.files, format_bytes(workload.file_size).c_str());

  struct Results {
    mapred::DfsioResult write, read;
    sim::SimTime flush_drain = 0;
  } results;
  sampler.start();
  cluster.sim().spawn([](Cluster& c, FsKind k, mapred::DfsioParams p,
                         Results& out,
                         obs::TimeSeriesSampler& sam) -> Task<void> {
    auto w = co_await mapred::dfsio_write(c.filesystem(k), c.hub_for(k),
                                          c.compute_nodes(), p);
    if (!w.is_ok()) {
      std::printf("write failed: %s\n", w.status().to_string().c_str());
      sam.stop();
      c.bb_master().stop_heartbeat();
      co_return;
    }
    out.write = w.value();
    const sim::SimTime t0 = c.sim().now();
    if (k == FsKind::kBurstBuffer) co_await c.bb_master().wait_all_flushed();
    out.flush_drain = c.sim().now() - t0;
    auto r = co_await mapred::dfsio_read(c.filesystem(k), c.hub_for(k),
                                         c.compute_nodes(), p);
    if (!r.is_ok()) {
      std::printf("read failed: %s\n", r.status().to_string().c_str());
      sam.stop();
      c.bb_master().stop_heartbeat();
      co_return;
    }
    out.read = r.value();
    // Workload done: final sample at quiescence; the sampler's pending tick
    // exits, the heartbeat prober stops, and the event queue can drain.
    sam.stop();
    c.bb_master().stop_heartbeat();
  }(cluster, kind, workload, results, sampler));
  cluster.sim().run();

  std::printf("write: %7.0f MB/s aggregate (%.0f MB/s mean per task)\n",
              results.write.aggregate_mbps, results.write.mean_task_mbps);
  std::printf("flush drain after last ack: %s\n",
              format_duration_ns(results.flush_drain).c_str());
  std::printf("read:  %7.0f MB/s aggregate (%.0f MB/s mean per task)\n",
              results.read.aggregate_mbps, results.read.mean_task_mbps);
  if (kind == FsKind::kBurstBuffer &&
      cluster.bb_master().flow_control().enabled()) {
    const auto& fc = cluster.bb_master().flow_control();
    auto& metrics = cluster.sim().metrics();
    std::printf(
        "flowctl: peak dirty %s (high watermark %s), %llu stalls "
        "(p99 %s), evicted %s, urgent flushes %llu\n",
        format_bytes(fc.peak_dirty_bytes()).c_str(),
        format_bytes(fc.high_bytes()).c_str(),
        static_cast<unsigned long long>(
            metrics.counter("flowctl.stalls").get()),
        format_duration_ns(
            metrics.histogram_quantile("flowctl.stall_ns", 0.99).value_or(0))
            .c_str(),
        format_bytes(metrics.counter("flowctl.evicted_bytes").get()).c_str(),
        static_cast<unsigned long long>(
            metrics.counter("flowctl.urgent_flushes").get()));
  }
  std::printf("simulated %s in %llu events\n",
              format_duration_ns(cluster.sim().now()).c_str(),
              static_cast<unsigned long long>(
                  cluster.sim().events_processed()));
  if (attribution.op_count() > 0) {
    const auto top = attribution.slowest(1);
    std::printf("attribution: %zu ops; slowest op %llu: %s end-to-end, "
                "bottleneck %s\n",
                attribution.op_count(),
                static_cast<unsigned long long>(top.front().op_id),
                format_duration_ns(top.front().e2e_ns()).c_str(),
                top.front().bottleneck.c_str());
  }
  if (health != nullptr) {
    std::printf("health: %zu rules, %llu warns, %llu pages, %llu resolves, "
                "%zu incident bundles (flightrec dropped %llu)\n",
                health->rule_count(),
                static_cast<unsigned long long>(health->warn_count()),
                static_cast<unsigned long long>(health->page_count()),
                static_cast<unsigned long long>(health->resolve_count()),
                health->incidents().size(),
                static_cast<unsigned long long>(flightrec->dropped_total()));
    for (const auto& event : health->transitions()) {
      std::printf("  alert %-8s %s -> %s at %s\n", event.rule.c_str(),
                  std::string(obs::to_string(event.from)).c_str(),
                  std::string(obs::to_string(event.to)).c_str(),
                  format_duration_ns(event.t_ns).c_str());
    }
    for (const auto& incident : health->incidents()) {
      if (!incident.file.empty()) {
        std::printf("  incident bundle written to %s\n",
                    incident.file.c_str());
      }
    }
  }

  if (const auto out_path = props.get("trace.out")) {
    std::ofstream out(*out_path);
    out << trace.to_chrome_json();
    std::printf("trace (%zu spans) written to %s — open in "
                "chrome://tracing or Perfetto\n",
                trace.spans().size(), out_path->c_str());
    std::printf("%s", trace.summary().c_str());
  }
  if (const auto out_path = props.get("metrics.out")) {
    const std::string report =
        obs::report_json(cluster.sim(), &sampler, &attribution, health.get());
    if (obs::write_text_file(*out_path, report)) {
      std::printf("metrics report (%s) written to %s\n", obs::kReportSchema,
                  out_path->c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics report: %s\n",
                   out_path->c_str());
      return 1;
    }
  }
  if (const auto out_path = props.get("timeline.out")) {
    if (obs::write_text_file(*out_path, sampler.to_csv())) {
      std::printf("timeline (%zu samples x %zu series) written to %s\n",
                  sampler.timeline().size(), sampler.series_names().size(),
                  out_path->c_str());
    } else {
      std::fprintf(stderr, "cannot write timeline: %s\n", out_path->c_str());
      return 1;
    }
  }
  return 0;
}
