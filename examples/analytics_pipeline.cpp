// Big-data analytics pipeline on an HPC cluster: generate a record dataset
// (RandomWriter), sort it (the shuffle-heavy job the paper evaluates), and
// scan it (Grep). Runs the same pipeline on HDFS, Lustre, and the burst
// buffer, printing per-stage execution times and map locality.
//
//   ./analytics_pipeline [records_per_file_k]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/strings.h"
#include "common/units.h"
#include "mapred/workloads.h"
#include "sim/sync.h"

namespace {

using namespace hpcbb;          // NOLINT
using namespace hpcbb::duration;  // NOLINT
using cluster::Cluster;
using cluster::FsKind;
using sim::SimTime;
using sim::Task;

struct PipelineReport {
  SimTime generate_ns = 0;
  SimTime sort_ns = 0;
  SimTime grep_ns = 0;
  double sort_locality = 0;
  bool sorted_ok = false;
  std::uint64_t grep_matches = 0;
};

Task<void> pipeline(Cluster& c, FsKind kind, std::uint64_t records_per_file,
                    PipelineReport& out) {
  fs::FileSystem& fs = c.filesystem(kind);
  net::RpcHub& hub = c.hub_for(kind);
  auto runner = c.make_runner(kind);

  mapred::GenerateParams gen;
  gen.files = static_cast<std::uint32_t>(c.compute_nodes().size());
  gen.records_per_file = records_per_file;
  auto generated =
      co_await mapred::generate_records_input(fs, hub, c.compute_nodes(), gen);
  if (!generated.is_ok()) co_return;
  out.generate_ns = generated.value().elapsed_ns;

  std::vector<std::string> inputs;
  for (std::uint32_t i = 0; i < gen.files; ++i) {
    inputs.push_back(gen.dir + "/part-" + std::to_string(i));
  }

  mapred::SortJob sort_job(8);
  auto sort_stats = co_await runner->run(sort_job, inputs, "/out/sorted");
  if (!sort_stats.is_ok()) co_return;
  out.sort_ns = sort_stats.value().makespan_ns;
  out.sort_locality = sort_stats.value().locality_fraction();

  // Validate the sorted output while we are here (cheap insurance).
  Bytes sample;
  auto reader = co_await fs.open("/out/sorted/part-0", c.compute_nodes()[0]);
  if (reader.is_ok()) {
    auto data = co_await reader.value()->read(0, reader.value()->size());
    out.sorted_ok = data.is_ok() && mapred::records_sorted(data.value());
  }

  mapred::GrepJob grep_job;
  auto grep_stats = co_await runner->run(grep_job, inputs, "/out/grep");
  if (!grep_stats.is_ok()) co_return;
  out.grep_ns = grep_stats.value().makespan_ns;
  out.grep_matches = grep_job.total_matches();
}

void run_case(const char* label, FsKind kind, bb::Scheme scheme,
              std::uint64_t records_per_file) {
  cluster::ClusterConfig config;
  config.scheme = scheme;
  Cluster cluster(config);
  PipelineReport report;
  cluster.sim().spawn(
      pipeline(cluster, kind, records_per_file, report));
  cluster.sim().run();
  std::printf("%-9s | generate %9s | sort %9s (locality %3.0f%%, %s) | "
              "grep %9s (%llu hits)\n",
              label, format_duration_ns(report.generate_ns).c_str(),
              format_duration_ns(report.sort_ns).c_str(),
              100.0 * report.sort_locality,
              report.sorted_ok ? "verified" : "UNSORTED!",
              format_duration_ns(report.grep_ns).c_str(),
              static_cast<unsigned long long>(report.grep_matches));
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t records_k =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 320;
  const std::uint64_t records_per_file = records_k * 1000;
  std::printf("analytics pipeline: 8 files x %lluk records (%s total)\n\n",
              static_cast<unsigned long long>(records_k),
              format_bytes(8 * records_per_file * mapred::kRecordSize).c_str());

  run_case("HDFS", FsKind::kHdfs, bb::Scheme::kAsync, records_per_file);
  run_case("Lustre", FsKind::kLustre, bb::Scheme::kAsync, records_per_file);
  run_case("BB-Async", FsKind::kBurstBuffer, bb::Scheme::kAsync,
           records_per_file);
  run_case("BB-Local", FsKind::kBurstBuffer, bb::Scheme::kLocal,
           records_per_file);
  return 0;
}
