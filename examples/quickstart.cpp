// Quickstart: build a simulated HPC cluster, write a file through the
// RDMA-KV burst buffer, watch it flush to Lustre, and read it back.
//
//   ./quickstart [key=value ...]     e.g.  ./quickstart bb.scheme=local
//
// Recognized keys: bb.scheme={async,sync,local}, file.size (e.g. 256m),
// cluster.nodes, kv.servers.
#include <cstdio>
#include <string>

#include "cluster/cluster.h"
#include "common/properties.h"
#include "common/strings.h"
#include "common/units.h"
#include "sim/sync.h"

namespace {

using namespace hpcbb;          // NOLINT
using namespace hpcbb::duration;  // NOLINT
using cluster::Cluster;
using cluster::FsKind;
using sim::Task;

Task<void> demo(Cluster& c, std::uint64_t file_size) {
  fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
  const net::NodeId writer_node = c.compute_nodes().front();
  const net::NodeId reader_node = c.compute_nodes().back();

  std::printf("== writing %s through %s from node %u ==\n",
              format_bytes(file_size).c_str(), fs.name().c_str(), writer_node);
  const sim::SimTime t0 = c.sim().now();
  auto writer = co_await fs.create("/demo/checkpoint.dat", writer_node);
  if (!writer.is_ok()) {
    std::printf("create failed: %s\n", writer.status().to_string().c_str());
    co_return;
  }
  for (std::uint64_t off = 0; off < file_size; off += 4 * MiB) {
    const std::uint64_t len = std::min<std::uint64_t>(4 * MiB, file_size - off);
    Status st = co_await writer.value()->append(
        make_bytes(pattern_bytes(/*seed=*/7, off, len)));
    if (!st.is_ok()) {
      std::printf("append failed: %s\n", st.to_string().c_str());
      co_return;
    }
  }
  Status st = co_await writer.value()->close();
  const sim::SimTime write_ns = c.sim().now() - t0;
  std::printf("write acked in %s  (%.0f MB/s)%s\n",
              format_duration_ns(write_ns).c_str(),
              throughput_mbps(file_size, write_ns),
              st.is_ok() ? "" : "  [CLOSE FAILED]");
  std::printf("dirty blocks awaiting flush: %llu\n",
              static_cast<unsigned long long>(c.bb_master().dirty_blocks()));

  // Wait for the asynchronous drain to Lustre.
  const sim::SimTime f0 = c.sim().now();
  co_await c.bb_master().wait_all_flushed();
  std::printf("flush to Lustre completed %s after the ack (%s durable)\n",
              format_duration_ns(c.sim().now() - f0).c_str(),
              format_bytes(c.bb_master().flushed_bytes()).c_str());

  // Read back (buffer-resident: RDMA speed) and verify every byte.
  const sim::SimTime r0 = c.sim().now();
  auto reader = co_await fs.open("/demo/checkpoint.dat", reader_node);
  if (!reader.is_ok()) {
    std::printf("open failed: %s\n", reader.status().to_string().c_str());
    co_return;
  }
  bool ok = true;
  for (std::uint64_t off = 0; off < file_size; off += 4 * MiB) {
    const std::uint64_t len = std::min<std::uint64_t>(4 * MiB, file_size - off);
    auto data = co_await reader.value()->read(off, len);
    if (!data.is_ok() || !verify_pattern(7, off, data.value())) {
      ok = false;
      break;
    }
  }
  const sim::SimTime read_ns = c.sim().now() - r0;
  std::printf("read back in %s (%.0f MB/s), content %s\n",
              format_duration_ns(read_ns).c_str(),
              throughput_mbps(file_size, read_ns),
              ok ? "verified" : "MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  Properties props;
  for (int i = 1; i < argc; ++i) {
    auto parsed = Properties::parse(argv[i]);
    if (!parsed.is_ok()) {
      std::fprintf(stderr, "bad argument '%s': %s\n", argv[i],
                   parsed.status().to_string().c_str());
      return 1;
    }
    for (const auto& [k, v] : parsed.value().entries()) props.set(k, v);
  }

  cluster::ClusterConfig config;
  config.compute_nodes =
      static_cast<std::uint32_t>(props.get_u64_or("cluster.nodes", 8));
  config.kv_servers =
      static_cast<std::uint32_t>(props.get_u64_or("kv.servers", 4));
  const std::string scheme = props.get_or("bb.scheme", "async");
  config.scheme = scheme == "sync"    ? bb::Scheme::kSync
                  : scheme == "local" ? bb::Scheme::kLocal
                                      : bb::Scheme::kAsync;
  const std::uint64_t file_size = props.get_u64_or("file.size", 256 * MiB);

  std::printf("cluster: %u compute nodes, %u KV burst-buffer servers, "
              "%u OSS; scheme=%s\n",
              config.compute_nodes, config.kv_servers, config.oss_count,
              std::string(to_string(config.scheme)).c_str());

  Cluster cluster(config);
  cluster.sim().spawn(demo(cluster, file_size));
  cluster.sim().run();
  std::printf("simulation: %llu events, %s simulated\n",
              static_cast<unsigned long long>(cluster.sim().events_processed()),
              format_duration_ns(cluster.sim().now()).c_str());
  return 0;
}
