// Checkpoint burst — the paper's motivating scenario. A tightly-coupled
// HPC application checkpoints from every compute node simultaneously, then
// computes, then checkpoints again. Compare how long the application stalls
// when checkpoints go directly to Lustre vs through the RDMA-KV burst
// buffer (which drains to Lustre during the compute phase).
//
//   ./checkpoint_burst [rounds] [mb_per_node]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cluster/cluster.h"
#include "common/strings.h"
#include "common/units.h"
#include "sim/sync.h"

namespace {

using namespace hpcbb;          // NOLINT
using namespace hpcbb::duration;  // NOLINT
using cluster::Cluster;
using cluster::FsKind;
using net::NodeId;
using sim::SimTime;
using sim::Task;

struct RoundReport {
  SimTime checkpoint_stall = 0;
  SimTime total = 0;
};

Task<void> one_node_checkpoint(Cluster& c, FsKind kind, NodeId node, int round,
                               std::uint64_t bytes) {
  fs::FileSystem& fs = c.filesystem(kind);
  const std::string path = "/ckpt/round" + std::to_string(round) + "/rank" +
                           std::to_string(node);
  auto writer = co_await fs.create(path, node);
  if (!writer.is_ok()) co_return;
  for (std::uint64_t off = 0; off < bytes; off += 4 * MiB) {
    const std::uint64_t len = std::min<std::uint64_t>(4 * MiB, bytes - off);
    (void)co_await writer.value()->append(
        make_bytes(pattern_bytes(fnv1a(path), off, len)));
  }
  (void)co_await writer.value()->close();
}

Task<void> application(Cluster& c, FsKind kind, int rounds,
                       std::uint64_t bytes_per_node, SimTime compute_ns,
                       std::vector<RoundReport>& out) {
  for (int round = 0; round < rounds; ++round) {
    // Synchronous checkpoint: every rank writes, the app waits for all.
    const SimTime t0 = c.sim().now();
    std::vector<Task<void>> ranks;
    for (const NodeId node : c.compute_nodes()) {
      ranks.push_back(one_node_checkpoint(c, kind, node, round,
                                          bytes_per_node));
    }
    co_await sim::parallel(c.sim(), std::move(ranks));
    RoundReport report;
    report.checkpoint_stall = c.sim().now() - t0;
    // Compute phase (the burst buffer drains to Lustre in the background).
    co_await c.sim().delay(compute_ns);
    report.total = c.sim().now() - t0;
    out.push_back(report);
  }
}

void run(FsKind kind, bb::Scheme scheme, int rounds,
         std::uint64_t bytes_per_node) {
  cluster::ClusterConfig config;
  config.scheme = scheme;
  config.kv_memory_per_server = 512 * MiB;
  Cluster cluster(config);
  std::vector<RoundReport> reports;
  cluster.sim().spawn(application(cluster, kind, rounds, bytes_per_node,
                                  /*compute_ns=*/10 * sec, reports));
  cluster.sim().run();

  SimTime total_stall = 0;
  std::printf("%-10s |", kind == FsKind::kLustre
                             ? "Lustre"
                             : std::string(to_string(scheme)).c_str());
  for (const RoundReport& report : reports) {
    std::printf("  %9s", format_duration_ns(report.checkpoint_stall).c_str());
    total_stall += report.checkpoint_stall;
  }
  std::printf("  | total stall %s\n", format_duration_ns(total_stall).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t mb_per_node =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 64;
  const std::uint64_t bytes_per_node = mb_per_node * MiB;

  std::printf("checkpoint burst: 8 nodes x %llu MiB x %d rounds, 10 s compute "
              "between bursts\n",
              static_cast<unsigned long long>(mb_per_node), rounds);
  std::printf("%-10s |  per-round application stall while checkpointing\n",
              "system");
  run(FsKind::kLustre, bb::Scheme::kAsync, rounds, bytes_per_node);
  run(FsKind::kBurstBuffer, bb::Scheme::kAsync, rounds, bytes_per_node);
  run(FsKind::kBurstBuffer, bb::Scheme::kSync, rounds, bytes_per_node);
  run(FsKind::kBurstBuffer, bb::Scheme::kLocal, rounds, bytes_per_node);
  std::printf("\nThe burst buffer hides the Lustre drain inside the compute "
              "phase;\nwrite-through (BB-Sync) pays it up front, like Lustre "
              "itself.\n");
  return 0;
}
