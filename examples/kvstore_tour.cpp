// Tour of the RDMA key-value store layer on its own: stand up servers on a
// fabric, run clients over RDMA vs IPoIB, inspect stats, and watch eviction
// and pinning behave. This is the substrate the burst buffer is built on.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/strings.h"
#include "common/units.h"
#include "kvstore/client.h"
#include "kvstore/server.h"
#include "sim/sync.h"

namespace {

using namespace hpcbb;          // NOLINT
using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::SimTime;
using sim::Task;

struct World {
  sim::Simulation sim;
  net::Fabric fabric{sim, 8, net::FabricParams{}};
  net::Transport transport;
  net::RpcHub hub;
  std::vector<std::unique_ptr<kv::Server>> servers;
  std::vector<NodeId> server_nodes;

  explicit World(net::TransportKind kind, std::uint64_t mem_per_server)
      : transport(fabric, net::transport_preset(kind)), hub(transport) {
    for (const NodeId node : {4u, 5u, 6u, 7u}) {
      kv::ServerParams params;
      params.store.memory_budget = mem_per_server;
      servers.push_back(std::make_unique<kv::Server>(hub, node, params));
      server_nodes.push_back(node);
    }
  }
};

Task<void> latency_probe(World& w, const char* label) {
  kv::Client client(w.hub, /*self=*/0, w.server_nodes);
  for (const std::uint64_t size : {4 * KiB, 64 * KiB, 1 * MiB}) {
    const SimTime t0 = w.sim.now();
    (void)co_await client.set("probe-" + std::to_string(size),
                              make_bytes(Bytes(size, 0x42)));
    const SimTime set_ns = w.sim.now() - t0;
    const SimTime t1 = w.sim.now();
    (void)co_await client.get("probe-" + std::to_string(size));
    const SimTime get_ns = w.sim.now() - t1;
    std::printf("  %-6s %8s value: set %9s   get %9s\n", label,
                format_bytes(size).c_str(), format_duration_ns(set_ns).c_str(),
                format_duration_ns(get_ns).c_str());
  }
}

Task<void> eviction_demo(World& w) {
  kv::Client client(w.hub, 0, w.server_nodes);
  std::printf("\n== LRU eviction & pinning (4 x 8 MiB servers) ==\n");
  // A pinned item survives any amount of pressure; unpinned cold data goes.
  (void)co_await client.set("dirty-block", make_bytes(Bytes(1 * MiB, 1)),
                            /*pinned=*/true);
  (void)co_await client.set("cold-block", make_bytes(Bytes(1 * MiB, 2)));
  for (int i = 0; i < 64; ++i) {
    (void)co_await client.set("filler-" + std::to_string(i),
                              make_bytes(Bytes(1 * MiB, 3)));
  }
  const bool dirty_alive = (co_await client.get("dirty-block")).is_ok();
  const bool cold_alive = (co_await client.get("cold-block")).is_ok();
  std::printf("after 64 MiB of pressure: pinned item %s, cold item %s\n",
              dirty_alive ? "still resident" : "LOST (bug!)",
              cold_alive ? "survived" : "evicted");
  std::uint64_t evictions = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    auto stats = co_await client.server_stats(s);
    if (stats.is_ok()) evictions += stats.value().evictions;
  }
  std::printf("total evictions across servers: %llu\n",
              static_cast<unsigned long long>(evictions));
}

}  // namespace

int main() {
  std::printf("== op latency by transport (1 client, 4 servers) ==\n");
  {
    World w(net::TransportKind::kRdma, 64 * MiB);
    w.sim.spawn(latency_probe(w, "RDMA"));
    w.sim.run();
  }
  {
    World w(net::TransportKind::kIpoib, 64 * MiB);
    w.sim.spawn(latency_probe(w, "IPoIB"));
    w.sim.run();
  }
  {
    World w(net::TransportKind::kRdma, 8 * MiB);
    w.sim.spawn(eviction_demo(w));
    w.sim.run();
  }
  return 0;
}
