#include "storage/local_store.h"

#include <algorithm>
#include <vector>

namespace hpcbb::storage {

sim::Task<Status> LocalStore::append(std::string name,
                                     std::span<const std::uint8_t> data) {
  if (Status st = device_->reserve(data.size()); !st.is_ok()) co_return st;

  auto [it, inserted] = objects_.try_emplace(std::move(name));
  Object& obj = it->second;
  if (inserted) {
    // Lay the object out at a fresh extent; appends within an object are
    // sequential, distinct objects land at different extents.
    obj.write_cursor = next_extent_;
    next_extent_ += 256 * MiB;
  }
  obj.data.insert(obj.data.end(), data.begin(), data.end());

  // All map mutation happens before the device await: the object may be
  // removed by another simulated process while this I/O is in flight, and
  // references into objects_ must not be touched afterwards.
  const std::uint64_t io_offset = obj.write_cursor;
  obj.write_cursor += data.size();
  co_await device_->write(io_offset, data.size());
  co_return Status::ok();
}

sim::Task<Status> LocalStore::write_at(std::string name, std::uint64_t offset,
                                       std::span<const std::uint8_t> data) {
  auto [it, inserted] = objects_.try_emplace(std::move(name));
  Object& obj = it->second;
  if (inserted) {
    obj.write_cursor = next_extent_;
    next_extent_ += 256 * MiB;
    // write_cursor tracks the extent base + logical size for append();
    // keep it consistent with the grown size below.
  }
  const std::uint64_t extent_base = obj.write_cursor - obj.data.size();
  const std::uint64_t end = offset + data.size();
  if (end > obj.data.size()) {
    const std::uint64_t grow = end - obj.data.size();
    if (Status st = device_->reserve(grow); !st.is_ok()) co_return st;
    obj.data.resize(end, 0);
    obj.write_cursor = extent_base + end;
  }
  std::copy(data.begin(), data.end(),
            obj.data.begin() + static_cast<std::ptrdiff_t>(offset));
  // Mutations done; no references into objects_ survive the await (the
  // object may be concurrently removed while the I/O is in flight).
  co_await device_->write(extent_base + offset, data.size());
  co_return Status::ok();
}

sim::Task<Result<Bytes>> LocalStore::read(const std::string& name,
                                          std::uint64_t offset,
                                          std::uint64_t length) {
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    co_return error(StatusCode::kNotFound, "no such object: " + name);
  }
  const Object& obj = it->second;
  if (offset + length > obj.data.size()) {
    co_return error(StatusCode::kOutOfRange, "read past end of " + name);
  }
  // Snapshot the bytes before awaiting the device: the object may be
  // removed by another simulated process while this I/O is in flight.
  Bytes out(obj.data.begin() + static_cast<std::ptrdiff_t>(offset),
            obj.data.begin() + static_cast<std::ptrdiff_t>(offset + length));
  const std::uint64_t io_offset = obj.write_cursor - obj.data.size() + offset;
  co_await device_->read(io_offset, length);
  co_return out;
}

Status LocalStore::remove(const std::string& name) {
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    return error(StatusCode::kNotFound, "no such object: " + name);
  }
  device_->release(it->second.data.size());
  objects_.erase(it);
  return Status::ok();
}

std::uint64_t LocalStore::object_size(const std::string& name) const {
  const auto it = objects_.find(name);
  return it == objects_.end() ? 0 : it->second.data.size();
}

void LocalStore::flip_byte(const std::string& name, std::uint64_t index) {
  const auto it = objects_.find(name);
  if (it != objects_.end() && index < it->second.data.size()) {
    it->second.data[index] ^= 0xFF;
  }
}

std::string LocalStore::corrupt_one(const std::string& object,
                                    std::uint64_t selector, CorruptKind kind) {
  std::string target = object;
  if (target.empty()) {
    // Sorted names keep the pick independent of hash-map iteration order.
    std::vector<std::string> names;
    names.reserve(objects_.size());
    for (const auto& [name, obj] : objects_) names.push_back(name);
    if (names.empty()) return {};
    std::sort(names.begin(), names.end());
    target = names[selector % names.size()];
  }
  const auto it = objects_.find(target);
  if (it == objects_.end()) return {};
  if (!apply_corruption(it->second.data, kind, selector)) return {};
  return target;
}

void LocalStore::wipe() {
  for (const auto& [name, obj] : objects_) {
    device_->release(obj.data.size());
  }
  objects_.clear();
}

}  // namespace hpcbb::storage
