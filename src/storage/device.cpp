#include "storage/device.h"

#include <algorithm>

namespace hpcbb::storage {

std::string_view to_string(MediaKind kind) noexcept {
  switch (kind) {
    case MediaKind::kHdd: return "HDD";
    case MediaKind::kSsd: return "SSD";
    case MediaKind::kRamDisk: return "RAMDISK";
  }
  return "?";
}

DeviceParams hdd_preset() {
  return DeviceParams{.kind = MediaKind::kHdd,
                      .read_bytes_per_sec = 130 * MB,
                      .write_bytes_per_sec = 110 * MB,
                      .seek_ns = 6 * duration::ms,
                      .capacity_bytes = 2 * TiB};
}

DeviceParams ssd_preset() {
  return DeviceParams{.kind = MediaKind::kSsd,
                      .read_bytes_per_sec = 500 * MB,
                      .write_bytes_per_sec = 450 * MB,
                      .seek_ns = 60 * duration::us,
                      .capacity_bytes = 400 * GiB};
}

DeviceParams ramdisk_preset(std::uint64_t capacity_bytes) {
  return DeviceParams{.kind = MediaKind::kRamDisk,
                      .read_bytes_per_sec = 2'800 * MB,
                      .write_bytes_per_sec = 2'500 * MB,
                      .seek_ns = 1 * duration::us,
                      .capacity_bytes = capacity_bytes};
}

sim::Task<void> Device::io(std::uint64_t offset, std::uint64_t bytes,
                           std::uint64_t rate) {
  sim::SimTime service = transfer_time_ns(bytes, rate);
  if (slowdown_ > 1.0) {
    service = static_cast<sim::SimTime>(static_cast<double>(service) *
                                        slowdown_);
  }
  if (offset != expected_next_offset_) {
    service += params_.seek_ns;
    ++seek_count_;
  }
  expected_next_offset_ = offset + bytes;
  ++io_count_;

  const sim::SimTime start = std::max(sim_->now(), next_free_);
  next_free_ = start + service;
  busy_ns_ += service;
  co_await sim_->delay_until(next_free_);
}

}  // namespace hpcbb::storage
