// The FileSystem abstraction shared by HDFS, Lustre, and the burst-buffer
// integrated file systems. MapReduce and every benchmark run against this
// interface, so an experiment switches storage engines by construction only.
//
// Operations are issued *from* a compute node (`client`): locality and
// network position matter, so the caller's node is part of the call.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/fabric.h"
#include "sim/task.h"

namespace hpcbb::fs {

struct FileInfo {
  std::string path;
  std::uint64_t size = 0;
  std::uint64_t block_size = 0;
  std::uint32_t replication = 1;
};

// Streaming append-only writer (the HDFS write model, which all of the
// paper's workloads use).
class Writer {
 public:
  virtual ~Writer() = default;

  // Append a chunk. The data is real bytes; implementations checksum it.
  virtual sim::Task<Status> append(BytesPtr data) = 0;

  // Seal the file. Durability semantics at return are implementation-
  // defined (this is exactly what the three burst-buffer schemes vary).
  virtual sim::Task<Status> close() = 0;
};

class Reader {
 public:
  virtual ~Reader() = default;

  // Read [offset, offset+length); short reads only at end of file.
  virtual sim::Task<Result<Bytes>> read(std::uint64_t offset,
                                        std::uint64_t length) = 0;

  [[nodiscard]] virtual std::uint64_t size() const = 0;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual sim::Task<Result<std::unique_ptr<Writer>>> create(
      const std::string& path, net::NodeId client) = 0;

  virtual sim::Task<Result<std::unique_ptr<Reader>>> open(
      const std::string& path, net::NodeId client) = 0;

  virtual sim::Task<Result<FileInfo>> stat(const std::string& path,
                                           net::NodeId client) = 0;

  virtual sim::Task<Status> remove(const std::string& path,
                                   net::NodeId client) = 0;

  virtual sim::Task<Result<std::vector<std::string>>> list(
      const std::string& prefix, net::NodeId client) = 0;

  // Nodes holding a local copy of each block of `path` (empty inner vectors
  // when the FS has no node-local placement, e.g. Lustre). MapReduce uses
  // this for locality-aware task scheduling.
  virtual sim::Task<Result<std::vector<std::vector<net::NodeId>>>>
  block_locations(const std::string& path, net::NodeId client) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace hpcbb::fs
