// LocalStore: a named-object store on one Device — the DataNode's block
// directory, or the RAM-disk replica area of the BB-Local scheme. Objects
// hold real bytes; every append/read charges device time and appends are
// capacity-checked.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"
#include "storage/device.h"

namespace hpcbb::storage {

class LocalStore {
 public:
  explicit LocalStore(Device& device) noexcept : device_(&device) {
    // Fault injection addresses corruption by device handle; the store is
    // where the bytes actually live, so it serves the device's hook.
    device_->set_corrupt_hook(
        [this](const std::string& object, std::uint64_t selector,
               CorruptKind kind) { return corrupt_one(object, selector, kind); });
  }

  LocalStore(const LocalStore&) = delete;
  LocalStore& operator=(const LocalStore&) = delete;

  // Appends to (creating if absent) the named object.
  sim::Task<Status> append(std::string name, std::span<const std::uint8_t> data);

  // Writes at an absolute object offset (creating/growing as needed; gaps
  // are zero-filled). Lustre OST objects receive stripes at arbitrary
  // offsets when upper layers flush out of order.
  sim::Task<Status> write_at(std::string name, std::uint64_t offset,
                             std::span<const std::uint8_t> data);

  // Reads [offset, offset+length) of the named object.
  sim::Task<Result<Bytes>> read(const std::string& name, std::uint64_t offset,
                                std::uint64_t length);

  // Removes the object and releases its space (metadata op: no device time).
  Status remove(const std::string& name);

  [[nodiscard]] bool contains(const std::string& name) const {
    return objects_.contains(name);
  }
  [[nodiscard]] std::uint64_t object_size(const std::string& name) const;
  [[nodiscard]] std::uint64_t object_count() const noexcept {
    return objects_.size();
  }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept {
    return device_->used_bytes();
  }
  [[nodiscard]] Device& device() noexcept { return *device_; }

  // Drops all contents without device I/O — volatile media losing power
  // (RAM disk on node crash).
  void wipe();

  // Test hook: flip one byte of a stored object in place (bit-rot
  // injection for checksum-validation tests). No-op if absent/too short.
  void flip_byte(const std::string& name, std::uint64_t index);

  // Corrupt one resident object in place — `object` if named, else a
  // selector-derived pick over the sorted object names. Returns the
  // corrupted name, or "" when the store is empty / the name is absent.
  std::string corrupt_one(const std::string& object, std::uint64_t selector,
                          CorruptKind kind);

 private:
  struct Object {
    Bytes data;
    std::uint64_t write_cursor = 0;  // device offset bookkeeping
  };

  Device* device_;
  std::unordered_map<std::string, Object> objects_;
  std::uint64_t next_extent_ = 0;  // naive extent allocator for offsets
};

}  // namespace hpcbb::storage
