// Block-device timing models. A device is a FIFO server: each I/O pays a
// seek penalty when it breaks sequentiality, plus serialization at the
// direction's bandwidth. Capacity is tracked separately so the paper's
// motivating constraint — scarce node-local storage on HPC compute nodes —
// is enforceable (writes fail with kResourceExhausted when full).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/corrupt.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/simulation.h"

namespace hpcbb::storage {

enum class MediaKind { kHdd, kSsd, kRamDisk };

std::string_view to_string(MediaKind kind) noexcept;

struct DeviceParams {
  MediaKind kind = MediaKind::kHdd;
  std::uint64_t read_bytes_per_sec = 130 * MB;
  std::uint64_t write_bytes_per_sec = 110 * MB;
  sim::SimTime seek_ns = 6 * duration::ms;
  std::uint64_t capacity_bytes = 2 * TiB;
};

// Presets for a 2015-era HPC node (calibration table in EXPERIMENTS.md).
DeviceParams hdd_preset();
DeviceParams ssd_preset();
DeviceParams ramdisk_preset(std::uint64_t capacity_bytes = 16 * GiB);

class Device {
 public:
  Device(sim::Simulation& sim, const DeviceParams& params) noexcept
      : sim_(&sim), params_(params) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // Timing only; space accounting is explicit via reserve/release.
  sim::Task<void> read(std::uint64_t offset, std::uint64_t bytes) {
    return io(offset, bytes, params_.read_bytes_per_sec);
  }
  sim::Task<void> write(std::uint64_t offset, std::uint64_t bytes) {
    return io(offset, bytes, params_.write_bytes_per_sec);
  }

  [[nodiscard]] Status reserve(std::uint64_t bytes) noexcept {
    if (used_ + bytes > params_.capacity_bytes) {
      return error(StatusCode::kResourceExhausted, "device full");
    }
    used_ += bytes;
    return Status::ok();
  }
  void release(std::uint64_t bytes) noexcept {
    used_ = bytes > used_ ? 0 : used_ - bytes;
  }

  // Limpware episode: a slowdown factor >= 1 divides the effective transfer
  // rate (factor 10 = the device limps at a tenth of its speed). 1 restores
  // healthy service. Fault injection drives this; nothing else should.
  void set_slowdown(double factor) noexcept {
    slowdown_ = factor < 1.0 ? 1.0 : factor;
  }
  [[nodiscard]] double slowdown() const noexcept { return slowdown_; }

  // Silent-corruption hook: the data holder living on this device (a
  // LocalStore) installs it so fault injection can flip bytes at rest by
  // device handle alone. The hook mutates one resident object — the named
  // one, or a selector-derived pick — and returns its name ("" = nothing
  // matched). Timing-only devices without a holder ignore corruption.
  using CorruptHook = std::function<std::string(
      const std::string& object, std::uint64_t selector, CorruptKind kind)>;
  void set_corrupt_hook(CorruptHook hook) { corrupt_hook_ = std::move(hook); }
  std::string corrupt(const std::string& object, std::uint64_t selector,
                      CorruptKind kind) {
    return corrupt_hook_ ? corrupt_hook_(object, selector, kind)
                         : std::string{};
  }

  [[nodiscard]] std::uint64_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return params_.capacity_bytes;
  }
  [[nodiscard]] const DeviceParams& params() const noexcept { return params_; }
  [[nodiscard]] sim::SimTime busy_ns() const noexcept { return busy_ns_; }
  [[nodiscard]] std::uint64_t io_count() const noexcept { return io_count_; }
  [[nodiscard]] std::uint64_t seek_count() const noexcept {
    return seek_count_;
  }

 private:
  sim::Task<void> io(std::uint64_t offset, std::uint64_t bytes,
                     std::uint64_t rate);

  sim::Simulation* sim_;
  DeviceParams params_;
  CorruptHook corrupt_hook_;
  double slowdown_ = 1.0;
  sim::SimTime next_free_ = 0;
  sim::SimTime busy_ns_ = 0;
  std::uint64_t expected_next_offset_ = ~0ull;
  std::uint64_t used_ = 0;
  std::uint64_t io_count_ = 0;
  std::uint64_t seek_count_ = 0;
};

}  // namespace hpcbb::storage
