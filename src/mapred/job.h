// MapReduce engine over the fs::FileSystem abstraction.
//
// The engine runs real data through user-defined map/reduce functions:
// locality-aware map scheduling, a network-charged shuffle, and reduce
// outputs written back through the file system — the I/O pattern whose cost
// the paper's burst buffer attacks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/rpc.h"
#include "sim/sync.h"
#include "storage/filesystem.h"

namespace hpcbb::mapred {

struct InputSplit {
  std::uint32_t index = 0;
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::vector<net::NodeId> preferred;  // nodes with a local copy
};

// A MapReduce job: chunk-streamed map with partitioned output, and a
// per-partition reduce. Map-only jobs return num_reducers() == 0.
class Job {
 public:
  virtual ~Job() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::uint32_t num_reducers() const = 0;

  // Consume one chunk of a split; append emitted bytes to out[partition].
  virtual void map_chunk(const InputSplit& split,
                         std::span<const std::uint8_t> data,
                         std::vector<Bytes>& out) = 0;

  // Fold one reducer's concatenated map outputs into the final bytes
  // written to <output>/part-<r>.
  virtual Result<Bytes> reduce(std::uint32_t reducer, Bytes input) = 0;

  // Fixed input record size (1 = byte stream). The engine aligns split and
  // chunk boundaries to it so no record is ever torn between two map tasks.
  [[nodiscard]] virtual std::uint64_t input_record_size() const { return 1; }

  // CPU cost models (simulated nanoseconds of compute).
  [[nodiscard]] virtual std::uint64_t map_cpu_ns(std::uint64_t bytes) const {
    return bytes / 2;  // ~2 bytes/ns scan rate
  }
  [[nodiscard]] virtual std::uint64_t reduce_cpu_ns(std::uint64_t bytes) const {
    return bytes;  // ~1 byte/ns
  }
};

struct MrParams {
  std::uint32_t map_slots_per_node = 4;
  std::uint32_t reduce_slots_per_node = 2;
  std::uint64_t io_chunk_bytes = 4 * MiB;
  std::uint64_t split_size = 0;  // 0 = the input file's block size
  std::uint64_t cores_per_node = 16;
  // Delay scheduling (Zaharia et al., as in Hadoop's fair scheduler): a
  // worker without node-local work waits this long, up to `rounds` times,
  // before running a remote split — preserving locality for the owners.
  sim::SimTime locality_delay_ns = 1 * duration::ms;
  std::uint32_t locality_delay_rounds = 2;
};

struct JobStats {
  sim::SimTime makespan_ns = 0;
  sim::SimTime map_phase_ns = 0;
  sim::SimTime reduce_phase_ns = 0;
  std::uint64_t maps_total = 0;
  std::uint64_t maps_node_local = 0;
  std::uint64_t reducers = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t output_bytes = 0;

  [[nodiscard]] double locality_fraction() const {
    return maps_total == 0 ? 0.0
                           : static_cast<double>(maps_node_local) /
                                 static_cast<double>(maps_total);
  }
};

class JobRunner {
 public:
  JobRunner(net::RpcHub& hub, fs::FileSystem& filesystem,
            std::vector<net::NodeId> compute_nodes, const MrParams& params);

  // Runs `job` over `inputs`; reduce outputs land at <output_prefix>/part-<r>.
  sim::Task<Result<JobStats>> run(Job& job,
                                  const std::vector<std::string>& inputs,
                                  const std::string& output_prefix);

  [[nodiscard]] const MrParams& params() const noexcept { return params_; }

 private:
  struct MapOutput {
    net::NodeId node = 0;          // where the map ran (shuffle source)
    std::vector<BytesPtr> parts;   // one buffer per reducer
  };
  struct RunState {
    explicit RunState(sim::Simulation& sim) : compute_done(sim) {}
    std::vector<InputSplit> pending;
    std::vector<MapOutput> outputs;  // by split index
    JobStats stats;
    Status first_error;
    sim::Condition compute_done;  // unused placeholder for future use
  };

  sim::Task<Status> build_splits(const std::vector<std::string>& inputs,
                                 std::vector<InputSplit>& out,
                                 net::NodeId client,
                                 std::uint64_t record_size);
  sim::Task<void> map_worker(Job& job, RunState& state, net::NodeId node);
  sim::Task<void> reduce_task(Job& job, RunState& state, std::uint32_t reducer,
                              net::NodeId node,
                              const std::string& output_prefix);
  sim::Task<void> charge_compute(net::NodeId node, std::uint64_t cpu_ns);

  net::RpcHub* hub_;
  fs::FileSystem* fs_;
  std::vector<net::NodeId> nodes_;
  MrParams params_;
  // Per-node compute capacity: a work-conserving queue at cores x 1 ns/ns.
  std::map<net::NodeId, std::unique_ptr<sim::BandwidthQueue>> compute_;
};

}  // namespace hpcbb::mapred
