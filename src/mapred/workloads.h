// The paper's evaluation workloads: TestDFSIO (write/read), Sort, and a
// Grep-style I/O-intensive scan, plus the record-file generator
// (RandomWriter/TeraGen equivalent) that produces Sort/Grep input.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mapred/job.h"
#include "mapred/records.h"

namespace hpcbb::mapred {

// ---- TestDFSIO -------------------------------------------------------------

struct DfsioParams {
  std::uint32_t files = 8;
  std::uint64_t file_size = 128 * MiB;
  std::uint64_t io_chunk = 4 * MiB;
  std::string dir = "/benchmarks/TestDFSIO";
  bool verify_on_read = true;
};

struct DfsioResult {
  sim::SimTime elapsed_ns = 0;
  std::uint64_t bytes = 0;
  // Hadoop TestDFSIO reports the mean of per-task throughputs ("Average IO
  // rate") and the aggregate (total bytes / makespan).
  double aggregate_mbps = 0.0;
  double mean_task_mbps = 0.0;
};

// Each "map task" writes one file of `file_size` from compute node
// nodes[i % nodes.size()], all concurrently (the burst).
sim::Task<Result<DfsioResult>> dfsio_write(fs::FileSystem& fs,
                                           net::RpcHub& hub,
                                           std::vector<net::NodeId> nodes,
                                           const DfsioParams& params);

// Each task reads back one file (written by dfsio_write), from a *different*
// node than wrote it (i+1 rotation), defeating accidental locality the way
// TestDFSIO-read's scheduling usually does.
sim::Task<Result<DfsioResult>> dfsio_read(fs::FileSystem& fs,
                                          net::RpcHub& hub,
                                          std::vector<net::NodeId> nodes,
                                          const DfsioParams& params);

// ---- Record-file generator (RandomWriter / TeraGen equivalent) -------------

struct GenerateParams {
  std::uint32_t files = 8;
  std::uint64_t records_per_file = 1 << 20;
  std::uint64_t io_chunk_records = 10240;  // ~1 MiB batches
  std::string dir = "/data/records";
  std::uint64_t seed = 42;
};

struct GenerateResult {
  sim::SimTime elapsed_ns = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;  // order-independent record multiset checksum
};

sim::Task<Result<GenerateResult>> generate_records_input(
    fs::FileSystem& fs, net::RpcHub& hub, std::vector<net::NodeId> nodes,
    const GenerateParams& params);

// ---- Sort ------------------------------------------------------------------

// TeraSort-shaped job: identity map partitioned by key range, reducers sort
// their range. Output part files concatenate to a globally sorted order.
class SortJob final : public Job {
 public:
  // cpu_scale calibrates the compute fraction: 2015-era Hadoop sort spends
  // roughly half its time in JVM compute/spill paths, which dilutes the I/O
  // speedup to the paper's ~20-30% end-to-end gains (EXPERIMENTS.md F5).
  explicit SortJob(std::uint32_t reducers, double cpu_scale = 1.0)
      : reducers_(reducers), cpu_scale_(cpu_scale) {}

  [[nodiscard]] std::string name() const override { return "Sort"; }
  [[nodiscard]] std::uint32_t num_reducers() const override {
    return reducers_;
  }
  void map_chunk(const InputSplit& split, std::span<const std::uint8_t> data,
                 std::vector<Bytes>& out) override;
  Result<Bytes> reduce(std::uint32_t reducer, Bytes input) override;

  [[nodiscard]] std::uint64_t input_record_size() const override {
    return kRecordSize;
  }
  [[nodiscard]] std::uint64_t map_cpu_ns(std::uint64_t bytes) const override {
    return static_cast<std::uint64_t>(cpu_scale_ *
                                      static_cast<double>(bytes) / 2.0);
  }
  [[nodiscard]] std::uint64_t reduce_cpu_ns(
      std::uint64_t bytes) const override;

 private:
  std::uint32_t reducers_;
  double cpu_scale_;
};

// ---- Grep (I/O-intensive scan) ----------------------------------------------

// Scans every input byte for a marker byte-pair, emitting per-split counts;
// one reducer totals them. Output is tiny: the job is read-dominated, the
// "I/O-intensive workload" class the abstract highlights.
class GrepJob final : public Job {
 public:
  explicit GrepJob(std::uint8_t b0 = 0xAB, std::uint8_t b1 = 0xCD)
      : b0_(b0), b1_(b1) {}

  [[nodiscard]] std::string name() const override { return "Grep"; }
  [[nodiscard]] std::uint32_t num_reducers() const override { return 1; }
  void map_chunk(const InputSplit& split, std::span<const std::uint8_t> data,
                 std::vector<Bytes>& out) override;
  Result<Bytes> reduce(std::uint32_t reducer, Bytes input) override;

  [[nodiscard]] std::uint64_t total_matches() const noexcept {
    return total_matches_;
  }

 private:
  std::uint8_t b0_, b1_;
  std::uint64_t total_matches_ = 0;
};

// ---- ByteHistogram (WordCount-class aggregation) -----------------------------

// Counts byte-value occurrences across the input — the WordCount shape:
// map with combiner-style pre-aggregation (one 256-bin histogram per split,
// not per byte), range-partitioned reducers summing their bins. Shuffle is
// tiny relative to input; the job is read- plus CPU-bound.
class ByteHistogramJob final : public Job {
 public:
  explicit ByteHistogramJob(std::uint32_t reducers = 4)
      : reducers_(reducers) {}

  [[nodiscard]] std::string name() const override { return "ByteHistogram"; }
  [[nodiscard]] std::uint32_t num_reducers() const override {
    return reducers_;
  }
  void map_chunk(const InputSplit& split, std::span<const std::uint8_t> data,
                 std::vector<Bytes>& out) override;
  Result<Bytes> reduce(std::uint32_t reducer, Bytes input) override;

  // Grand total across all reducers (each reduce() adds its bins).
  [[nodiscard]] std::uint64_t total_count() const noexcept {
    return total_count_;
  }

 private:
  // Bins [first, last] handled by a reducer.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> bin_range(
      std::uint32_t reducer) const noexcept {
    const std::uint32_t per = 256 / reducers_ + (256 % reducers_ != 0);
    const std::uint32_t first = reducer * per;
    return {first, std::min(first + per, 256u)};
  }

  std::uint32_t reducers_;
  std::uint64_t total_count_ = 0;
};

}  // namespace hpcbb::mapred
