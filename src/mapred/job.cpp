#include "mapred/job.h"

#include <algorithm>

#include "common/metrics.h"
#include "sim/trace.h"

namespace hpcbb::mapred {

JobRunner::JobRunner(net::RpcHub& hub, fs::FileSystem& filesystem,
                     std::vector<net::NodeId> compute_nodes,
                     const MrParams& params)
    : hub_(&hub),
      fs_(&filesystem),
      nodes_(std::move(compute_nodes)),
      params_(params) {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  for (const net::NodeId node : nodes_) {
    compute_.emplace(node, std::make_unique<sim::BandwidthQueue>(
                               sim, params_.cores_per_node * duration::sec));
  }
}

sim::Task<void> JobRunner::charge_compute(net::NodeId node,
                                          std::uint64_t cpu_ns) {
  return compute_.at(node)->transfer(cpu_ns);
}

sim::Task<Status> JobRunner::build_splits(
    const std::vector<std::string>& inputs, std::vector<InputSplit>& out,
    net::NodeId client, std::uint64_t record_size) {
  const auto align_up = [record_size](std::uint64_t v) {
    return record_size <= 1 ? v
                            : (v + record_size - 1) / record_size * record_size;
  };
  std::uint32_t index = 0;
  for (const std::string& path : inputs) {
    auto info = co_await fs_->stat(path, client);
    if (!info.is_ok()) co_return info.status();
    auto locations = co_await fs_->block_locations(path, client);
    if (!locations.is_ok()) co_return locations.status();

    const std::uint64_t block_size = info.value().block_size;
    const std::uint64_t split_size =
        params_.split_size == 0 ? block_size : params_.split_size;
    const std::uint64_t file_size = info.value().size;
    for (std::uint64_t off = 0; off < file_size; off += split_size) {
      InputSplit split;
      split.index = index++;
      split.path = path;
      // Record alignment: a split owns the records that *start* within
      // [off, off+split_size), reading past the nominal end if a record
      // straddles it (Hadoop's input-split boundary rule).
      split.offset = align_up(off);
      const std::uint64_t nominal_end =
          std::min(off + split_size, file_size);
      const std::uint64_t end =
          std::min(align_up(nominal_end), file_size);
      if (end <= split.offset) {
        --index;
        continue;
      }
      split.length = end - split.offset;
      // Preferred nodes come from the block containing the split start.
      const std::size_t block = static_cast<std::size_t>(off / block_size);
      if (block < locations.value().size()) {
        split.preferred = locations.value()[block];
      }
      out.push_back(std::move(split));
    }
  }
  co_return Status::ok();
}

sim::Task<void> JobRunner::map_worker(Job& job, RunState& state,
                                      net::NodeId node) {
  std::vector<Bytes> partitions;
  std::uint32_t delay_rounds_left = params_.locality_delay_rounds;
  for (;;) {
    if (!state.first_error.is_ok() || state.pending.empty()) co_return;
    // Locality-aware pick: a split with a replica on this node; otherwise a
    // split nobody prefers (no local placement anywhere); otherwise — after
    // the delay-scheduling grace period — steal any split.
    std::size_t pick = state.pending.size();
    bool local = false;
    for (std::size_t i = 0; i < state.pending.size(); ++i) {
      const auto& preferred = state.pending[i].preferred;
      if (std::find(preferred.begin(), preferred.end(), node) !=
          preferred.end()) {
        pick = i;
        local = true;
        break;
      }
      if (pick == state.pending.size() && preferred.empty()) pick = i;
    }
    if (pick == state.pending.size()) {
      if (delay_rounds_left > 0) {
        --delay_rounds_left;
        co_await hub_->transport().fabric().simulation().delay(
            params_.locality_delay_ns);
        continue;
      }
      pick = 0;  // give up on locality, steal the head split
    } else if (local) {
      delay_rounds_left = params_.locality_delay_rounds;
    }
    InputSplit split = std::move(state.pending[pick]);
    state.pending.erase(state.pending.begin() +
                        static_cast<std::ptrdiff_t>(pick));
    ++state.stats.maps_total;
    if (local) ++state.stats.maps_node_local;

    auto reader = co_await fs_->open(split.path, node);
    if (!reader.is_ok()) {
      if (state.first_error.is_ok()) state.first_error = reader.status();
      co_return;
    }

    const std::uint32_t nparts = std::max(1u, job.num_reducers());
    // Chunk reads are record-aligned so map_chunk never sees a torn record.
    const std::uint64_t rs = std::max<std::uint64_t>(1, job.input_record_size());
    const std::uint64_t chunk_bytes =
        std::max(rs, params_.io_chunk_bytes / rs * rs);
    partitions.assign(nparts, Bytes{});
    for (std::uint64_t off = 0; off < split.length; off += chunk_bytes) {
      const std::uint64_t len = std::min(chunk_bytes, split.length - off);
      auto chunk = co_await reader.value()->read(split.offset + off, len);
      if (!chunk.is_ok()) {
        if (state.first_error.is_ok()) state.first_error = chunk.status();
        co_return;
      }
      co_await charge_compute(node, job.map_cpu_ns(len));
      job.map_chunk(split, chunk.value(), partitions);
      state.stats.input_bytes += len;
    }

    MapOutput& output = state.outputs[split.index];
    output.node = node;
    output.parts.reserve(nparts);
    for (auto& part : partitions) {
      output.parts.push_back(make_bytes(std::move(part)));
    }
  }
}

sim::Task<void> JobRunner::reduce_task(Job& job, RunState& state,
                                       std::uint32_t reducer, net::NodeId node,
                                       const std::string& output_prefix) {
  // Shuffle: pull this reducer's partition from every map output. The
  // fetch is charged on the fabric as map-node -> reduce-node transfers.
  Bytes input;
  for (const MapOutput& output : state.outputs) {
    if (reducer >= output.parts.size()) continue;
    const BytesPtr& part = output.parts[reducer];
    if (part->empty()) continue;
    Status st = co_await hub_->transport().send(output.node, node,
                                                part->size());
    if (!st.is_ok()) {
      if (state.first_error.is_ok()) state.first_error = st;
      co_return;
    }
    state.stats.shuffle_bytes += part->size();
    input.insert(input.end(), part->begin(), part->end());
  }

  co_await charge_compute(node, job.reduce_cpu_ns(input.size()));
  Result<Bytes> folded = job.reduce(reducer, std::move(input));
  if (!folded.is_ok()) {
    if (state.first_error.is_ok()) state.first_error = folded.status();
    co_return;
  }

  const std::string out_path =
      output_prefix + "/part-" + std::to_string(reducer);
  auto writer = co_await fs_->create(out_path, node);
  if (!writer.is_ok()) {
    if (state.first_error.is_ok()) state.first_error = writer.status();
    co_return;
  }
  state.stats.output_bytes += folded.value().size();
  Status st = co_await writer.value()->append(
      make_bytes(std::move(folded).value()));
  if (st.is_ok()) st = co_await writer.value()->close();
  if (!st.is_ok() && state.first_error.is_ok()) state.first_error = st;
}

sim::Task<Result<JobStats>> JobRunner::run(
    Job& job, const std::vector<std::string>& inputs,
    const std::string& output_prefix) {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  RunState state(sim);
  const sim::SimTime started = sim.now();

  if (Status st = co_await build_splits(inputs, state.pending, nodes_.front(),
                                        job.input_record_size());
      !st.is_ok()) {
    co_return st;
  }
  state.outputs.resize(state.pending.size());

  // One causal op per job: both phase spans share it, so the whole job can
  // be picked out of a trace by a single id.
  const std::uint64_t op_id = sim.next_op_id();

  // Map phase: slots-per-node workers drain the split queue.
  std::size_t map_span = 0;
  if (sim.trace() != nullptr) {
    map_span = sim.trace()->begin("map_phase", "mapred", 0, op_id);
  }
  std::vector<sim::Task<void>> workers;
  for (const net::NodeId node : nodes_) {
    for (std::uint32_t s = 0; s < params_.map_slots_per_node; ++s) {
      workers.push_back(map_worker(job, state, node));
    }
  }
  co_await sim::parallel(sim, std::move(workers));
  if (sim.trace() != nullptr) sim.trace()->end(map_span);
  if (!state.first_error.is_ok()) co_return state.first_error;
  state.stats.map_phase_ns = sim.now() - started;
  sim.metrics().histogram("mapred.map_phase_ns").record(state.stats.map_phase_ns);

  // Reduce phase: reducers round-robin over nodes, bounded per-node slots.
  const std::uint32_t reducers = job.num_reducers();
  state.stats.reducers = reducers;
  if (reducers > 0) {
    const sim::SimTime reduce_started = sim.now();
    std::size_t reduce_span = 0;
    if (sim.trace() != nullptr) {
      reduce_span = sim.trace()->begin("reduce_phase", "mapred", 0, op_id);
    }
    std::map<net::NodeId, std::unique_ptr<sim::Semaphore>> slots;
    for (const net::NodeId node : nodes_) {
      slots.emplace(node, std::make_unique<sim::Semaphore>(
                              sim, params_.reduce_slots_per_node));
    }
    std::vector<sim::Task<void>> tasks;
    for (std::uint32_t r = 0; r < reducers; ++r) {
      const net::NodeId node = nodes_[r % nodes_.size()];
      tasks.push_back([](JobRunner& runner, Job& j, RunState& st,
                         std::uint32_t red, net::NodeId n,
                         sim::Semaphore& slot,
                         std::string prefix) -> sim::Task<void> {
        co_await slot.acquire();
        sim::SemaphoreGuard guard(slot);
        co_await runner.reduce_task(j, st, red, n, prefix);
      }(*this, job, state, r, node, *slots.at(node), output_prefix));
    }
    co_await sim::parallel(sim, std::move(tasks));
    if (sim.trace() != nullptr) sim.trace()->end(reduce_span);
    if (!state.first_error.is_ok()) co_return state.first_error;
    state.stats.reduce_phase_ns = sim.now() - reduce_started;
    sim.metrics()
        .histogram("mapred.reduce_phase_ns")
        .record(state.stats.reduce_phase_ns);
  }

  state.stats.makespan_ns = sim.now() - started;
  {
    auto& metrics = sim.metrics();
    metrics.counter("mapred.input_bytes").add(state.stats.input_bytes);
    metrics.counter("mapred.shuffle_bytes").add(state.stats.shuffle_bytes);
    metrics.counter("mapred.output_bytes").add(state.stats.output_bytes);
    metrics.counter("mapred.jobs").add();
  }
  co_return state.stats;
}

}  // namespace hpcbb::mapred
