#include "mapred/workloads.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/strings.h"

namespace hpcbb::mapred {

namespace {

struct TaskTiming {
  sim::SimTime elapsed = 0;
  std::uint64_t bytes = 0;
  Status status;
};

DfsioResult summarize(const std::vector<TaskTiming>& timings,
                      sim::SimTime makespan) {
  DfsioResult result;
  result.elapsed_ns = makespan;
  double rate_sum = 0;
  for (const TaskTiming& t : timings) {
    result.bytes += t.bytes;
    rate_sum += throughput_mbps(t.bytes, t.elapsed);
  }
  result.aggregate_mbps = throughput_mbps(result.bytes, makespan);
  result.mean_task_mbps =
      timings.empty() ? 0.0 : rate_sum / static_cast<double>(timings.size());
  return result;
}

std::uint64_t file_seed(const std::string& path) { return fnv1a(path); }

}  // namespace

sim::Task<Result<DfsioResult>> dfsio_write(fs::FileSystem& fs,
                                           net::RpcHub& hub,
                                           std::vector<net::NodeId> nodes,
                                           const DfsioParams& params) {
  sim::Simulation& sim = hub.transport().fabric().simulation();
  const sim::SimTime started = sim.now();

  std::vector<sim::Task<TaskTiming>> tasks;
  for (std::uint32_t i = 0; i < params.files; ++i) {
    const std::string path = params.dir + "/io_file_" + std::to_string(i);
    const net::NodeId node = nodes[i % nodes.size()];
    tasks.push_back([](fs::FileSystem& f, sim::Simulation& s, std::string p,
                       net::NodeId n, std::uint64_t size,
                       std::uint64_t chunk) -> sim::Task<TaskTiming> {
      TaskTiming timing;
      const sim::SimTime t0 = s.now();
      auto writer = co_await f.create(p, n);
      if (!writer.is_ok()) {
        timing.status = writer.status();
        co_return timing;
      }
      const std::uint64_t seed = file_seed(p);
      for (std::uint64_t off = 0; off < size; off += chunk) {
        const std::uint64_t len = std::min(chunk, size - off);
        Status st = co_await writer.value()->append(
            make_bytes(pattern_bytes(seed, off, len)));
        if (!st.is_ok()) {
          timing.status = std::move(st);
          co_return timing;
        }
        timing.bytes += len;
      }
      timing.status = co_await writer.value()->close();
      timing.elapsed = s.now() - t0;
      co_return timing;
    }(fs, sim, path, node, params.file_size, params.io_chunk));
  }

  std::vector<TaskTiming> timings =
      co_await sim::parallel_collect(sim, std::move(tasks));
  for (const TaskTiming& t : timings) {
    if (!t.status.is_ok()) co_return t.status;
  }
  co_return summarize(timings, sim.now() - started);
}

sim::Task<Result<DfsioResult>> dfsio_read(fs::FileSystem& fs,
                                          net::RpcHub& hub,
                                          std::vector<net::NodeId> nodes,
                                          const DfsioParams& params) {
  sim::Simulation& sim = hub.transport().fabric().simulation();
  const sim::SimTime started = sim.now();

  std::vector<sim::Task<TaskTiming>> tasks;
  for (std::uint32_t i = 0; i < params.files; ++i) {
    const std::string path = params.dir + "/io_file_" + std::to_string(i);
    // Rotate: read from a different node than wrote the file.
    const net::NodeId node = nodes[(i + 1) % nodes.size()];
    tasks.push_back([](fs::FileSystem& f, sim::Simulation& s, std::string p,
                       net::NodeId n, std::uint64_t chunk,
                       bool verify) -> sim::Task<TaskTiming> {
      TaskTiming timing;
      const sim::SimTime t0 = s.now();
      auto reader = co_await f.open(p, n);
      if (!reader.is_ok()) {
        timing.status = reader.status();
        co_return timing;
      }
      const std::uint64_t size = reader.value()->size();
      const std::uint64_t seed = file_seed(p);
      for (std::uint64_t off = 0; off < size; off += chunk) {
        const std::uint64_t len = std::min(chunk, size - off);
        auto data = co_await reader.value()->read(off, len);
        if (!data.is_ok()) {
          timing.status = data.status();
          co_return timing;
        }
        if (verify && !verify_pattern(seed, off, data.value())) {
          timing.status = error(StatusCode::kDataLoss,
                                "content mismatch in " + p);
          co_return timing;
        }
        timing.bytes += len;
      }
      timing.status = Status::ok();
      timing.elapsed = s.now() - t0;
      co_return timing;
    }(fs, sim, path, node, params.io_chunk, params.verify_on_read));
  }

  std::vector<TaskTiming> timings =
      co_await sim::parallel_collect(sim, std::move(tasks));
  for (const TaskTiming& t : timings) {
    if (!t.status.is_ok()) co_return t.status;
  }
  co_return summarize(timings, sim.now() - started);
}

sim::Task<Result<GenerateResult>> generate_records_input(
    fs::FileSystem& fs, net::RpcHub& hub, std::vector<net::NodeId> nodes,
    const GenerateParams& params) {
  sim::Simulation& sim = hub.transport().fabric().simulation();
  const sim::SimTime started = sim.now();

  struct GenOut {
    Status status;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
  };
  std::vector<sim::Task<GenOut>> tasks;
  for (std::uint32_t i = 0; i < params.files; ++i) {
    const std::string path = params.dir + "/part-" + std::to_string(i);
    const net::NodeId node = nodes[i % nodes.size()];
    const std::uint64_t seed = params.seed * 1000003 + i;
    tasks.push_back([](fs::FileSystem& f, std::string p, net::NodeId n,
                       std::uint64_t sd, std::uint64_t records,
                       std::uint64_t batch) -> sim::Task<GenOut> {
      GenOut out;
      auto writer = co_await f.create(p, n);
      if (!writer.is_ok()) {
        out.status = writer.status();
        co_return out;
      }
      for (std::uint64_t done = 0; done < records; done += batch) {
        const std::uint64_t n_rec = std::min(batch, records - done);
        Bytes data = generate_records(sd + done, n_rec);
        out.checksum += records_checksum(data);
        out.bytes += data.size();
        Status st = co_await writer.value()->append(make_bytes(std::move(data)));
        if (!st.is_ok()) {
          out.status = std::move(st);
          co_return out;
        }
      }
      out.status = co_await writer.value()->close();
      co_return out;
    }(fs, path, node, seed, params.records_per_file,
      params.io_chunk_records));
  }

  std::vector<GenOut> outs = co_await sim::parallel_collect(sim, std::move(tasks));
  GenerateResult result;
  for (const GenOut& out : outs) {
    if (!out.status.is_ok()) co_return out.status;
    result.bytes += out.bytes;
    result.checksum += out.checksum;
  }
  result.elapsed_ns = sim.now() - started;
  co_return result;
}

// ---- SortJob ----------------------------------------------------------------

void SortJob::map_chunk(const InputSplit& split,
                        std::span<const std::uint8_t> data,
                        std::vector<Bytes>& out) {
  (void)split;
  for (std::uint64_t off = 0; off + kRecordSize <= data.size();
       off += kRecordSize) {
    const std::uint8_t* rec = data.data() + off;
    Bytes& bucket = out[partition_of(rec, reducers_)];
    bucket.insert(bucket.end(), rec, rec + kRecordSize);
  }
}

Result<Bytes> SortJob::reduce(std::uint32_t reducer, Bytes input) {
  (void)reducer;
  if (input.size() % kRecordSize != 0) {
    return error(StatusCode::kInternal, "torn record in sort input");
  }
  const std::uint64_t count = input.size() / kRecordSize;
  std::vector<std::uint32_t> order(count);
  for (std::uint32_t i = 0; i < count; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&input](std::uint32_t a, std::uint32_t b) {
              return compare_keys(input.data() + a * kRecordSize,
                                  input.data() + b * kRecordSize) < 0;
            });
  Bytes sorted(input.size());
  for (std::uint32_t i = 0; i < count; ++i) {
    std::memcpy(sorted.data() + static_cast<std::uint64_t>(i) * kRecordSize,
                input.data() + static_cast<std::uint64_t>(order[i]) * kRecordSize,
                kRecordSize);
  }
  return sorted;
}

std::uint64_t SortJob::reduce_cpu_ns(std::uint64_t bytes) const {
  const std::uint64_t records = bytes / kRecordSize;
  if (records < 2) return 100;
  // n log2 n comparisons at ~60 ns per record-compare-and-move.
  std::uint64_t log2n = 1;
  while ((1ull << log2n) < records) ++log2n;
  return static_cast<std::uint64_t>(
      cpu_scale_ * static_cast<double>(records * log2n * 60));
}

// ---- GrepJob ----------------------------------------------------------------

void GrepJob::map_chunk(const InputSplit& split,
                        std::span<const std::uint8_t> data,
                        std::vector<Bytes>& out) {
  (void)split;
  std::uint64_t matches = 0;
  for (std::size_t i = 0; i + 1 < data.size(); ++i) {
    if (data[i] == b0_ && data[i + 1] == b1_) ++matches;
  }
  Bytes& bucket = out[0];
  for (int b = 0; b < 8; ++b) {
    bucket.push_back(static_cast<std::uint8_t>(matches >> (8 * b)));
  }
}

Result<Bytes> GrepJob::reduce(std::uint32_t reducer, Bytes input) {
  (void)reducer;
  if (input.size() % 8 != 0) {
    return error(StatusCode::kInternal, "torn count in grep input");
  }
  std::uint64_t total = 0;
  for (std::size_t off = 0; off < input.size(); off += 8) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(input[off + static_cast<std::size_t>(b)])
           << (8 * b);
    }
    total += v;
  }
  total_matches_ = total;
  Bytes out;
  const std::string text = "matches=" + std::to_string(total) + "\n";
  out.assign(text.begin(), text.end());
  return out;
}

// ---- ByteHistogramJob --------------------------------------------------------

namespace {
void encode_u64(Bytes& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}
std::uint64_t decode_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<std::uint64_t>(p[b]) << (8 * b);
  return v;
}
}  // namespace

void ByteHistogramJob::map_chunk(const InputSplit& split,
                                 std::span<const std::uint8_t> data,
                                 std::vector<Bytes>& out) {
  (void)split;
  // Combiner: aggregate locally, emit one partial histogram per chunk.
  std::array<std::uint64_t, 256> bins{};
  for (const std::uint8_t byte : data) ++bins[byte];
  for (std::uint32_t r = 0; r < reducers_; ++r) {
    const auto [first, last] = bin_range(r);
    for (std::uint32_t bin = first; bin < last; ++bin) {
      if (bins[bin] == 0) continue;
      Bytes& bucket = out[r];
      bucket.push_back(static_cast<std::uint8_t>(bin));
      encode_u64(bucket, bins[bin]);
    }
  }
}

Result<Bytes> ByteHistogramJob::reduce(std::uint32_t reducer, Bytes input) {
  if (input.size() % 9 != 0) {
    return error(StatusCode::kInternal, "torn histogram entry");
  }
  std::array<std::uint64_t, 256> bins{};
  for (std::size_t off = 0; off < input.size(); off += 9) {
    bins[input[off]] += decode_u64(input.data() + off + 1);
  }
  const auto [first, last] = bin_range(reducer);
  Bytes out;
  for (std::uint32_t bin = first; bin < last; ++bin) {
    const std::string line =
        std::to_string(bin) + "\t" + std::to_string(bins[bin]) + "\n";
    out.insert(out.end(), line.begin(), line.end());
    total_count_ += bins[bin];
  }
  return out;
}

}  // namespace hpcbb::mapred
