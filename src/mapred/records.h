// Fixed-size record format for the Sort/Grep workloads (TeraSort-style:
// 10-byte key + 90-byte payload = 100-byte records), with deterministic
// generation and order-independent integrity checksums.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/strings.h"

namespace hpcbb::mapred {

inline constexpr std::uint64_t kRecordSize = 100;
inline constexpr std::uint64_t kKeySize = 10;

// `count` records with uniformly random keys, deterministic in `seed`.
inline Bytes generate_records(std::uint64_t seed, std::uint64_t count) {
  Bytes out(count * kRecordSize);
  Rng rng(seed);
  for (std::uint64_t r = 0; r < count; ++r) {
    std::uint8_t* rec = out.data() + r * kRecordSize;
    for (std::uint64_t k = 0; k < kKeySize; k += 8) {
      const std::uint64_t word = rng.next();
      for (std::uint64_t b = 0; b < 8 && k + b < kKeySize; ++b) {
        rec[k + b] = static_cast<std::uint8_t>(word >> (8 * b));
      }
    }
    // Payload derives from the key so corruption is detectable.
    SplitMix64 payload(seed ^ r);
    for (std::uint64_t p = kKeySize; p < kRecordSize; p += 8) {
      const std::uint64_t word = payload.next();
      for (std::uint64_t b = 0; b < 8 && p + b < kRecordSize; ++b) {
        rec[p + b] = static_cast<std::uint8_t>(word >> (8 * b));
      }
    }
  }
  return out;
}

inline int compare_keys(const std::uint8_t* a, const std::uint8_t* b) noexcept {
  return std::memcmp(a, b, kKeySize);
}

// True if the record stream is sorted by key.
inline bool records_sorted(std::span<const std::uint8_t> data) {
  if (data.size() % kRecordSize != 0) return false;
  const std::uint64_t count = data.size() / kRecordSize;
  for (std::uint64_t r = 1; r < count; ++r) {
    if (compare_keys(data.data() + (r - 1) * kRecordSize,
                     data.data() + r * kRecordSize) > 0) {
      return false;
    }
  }
  return true;
}

// Order-independent content checksum: equal multisets of records give equal
// sums, so "sorted output == permuted input" is checkable without holding
// both datasets.
inline std::uint64_t records_checksum(std::span<const std::uint8_t> data) {
  std::uint64_t sum = 0;
  for (std::uint64_t off = 0; off + kRecordSize <= data.size();
       off += kRecordSize) {
    sum += fnv1a(std::string_view(
        reinterpret_cast<const char*>(data.data() + off), kRecordSize));
  }
  return sum;
}

// Range partition by the first two key bytes (uniform keys => balanced).
inline std::uint32_t partition_of(const std::uint8_t* key,
                                  std::uint32_t partitions) noexcept {
  const std::uint32_t prefix =
      (static_cast<std::uint32_t>(key[0]) << 8) | key[1];
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(prefix) * partitions) >> 16);
}

}  // namespace hpcbb::mapred
