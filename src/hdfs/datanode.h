// HDFS DataNode: stores blocks on the node-local disk and implements the
// chained replication pipeline — each packet is written locally while being
// forwarded to the next DataNode.
#pragma once

#include <cstdint>
#include <memory>

#include "common/corrupt.h"
#include "faults/injector.h"
#include "hdfs/protocol.h"
#include "net/rpc.h"
#include "storage/local_store.h"

namespace hpcbb::hdfs {

struct DataNodeParams {
  storage::DeviceParams disk = storage::hdd_preset();
};

class DataNode {
 public:
  DataNode(net::RpcHub& hub, net::NodeId node, const DataNodeParams& params);
  ~DataNode();

  DataNode(const DataNode&) = delete;
  DataNode& operator=(const DataNode&) = delete;

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept {
    return store_->used_bytes();
  }
  [[nodiscard]] std::uint64_t block_count() const noexcept {
    return store_->object_count();
  }
  [[nodiscard]] bool has_block(BlockId id) const {
    return store_->contains(block_name(id));
  }
  [[nodiscard]] storage::Device& device() noexcept { return *device_; }

  // Process crash: node unreachable until restart; on-disk data survives.
  void crash() { crashed_ = true; }
  void restart() { crashed_ = false; }
  [[nodiscard]] bool is_crashed() const noexcept { return crashed_; }

  // Register this node's disk as a corruption target with the injector, so
  // corrupt_block (and scheduled corruption) ticks faults.injected{kind=
  // corrupt.*} and shows up in traces instead of mutating bytes invisibly.
  void attach_fault_injector(faults::FaultInjector* injector);

  // Corrupt a stored block in place (checksum validation). Routed through
  // the attached fault injector when present; silent otherwise (bare-rig
  // tests without an injector).
  void corrupt_block(BlockId id, CorruptKind kind = CorruptKind::kBitFlip);

 private:
  static std::string block_name(BlockId id) {
    return "blk_" + std::to_string(id);
  }

  sim::Task<net::RpcResponse> handle_write_packet(
      std::shared_ptr<const DnWritePacketRequest>);
  sim::Task<net::RpcResponse> handle_read(std::shared_ptr<const DnReadRequest>);
  sim::Task<net::RpcResponse> handle_delete(
      std::shared_ptr<const DnDeleteBlockRequest>);
  sim::Task<net::RpcResponse> handle_replicate(
      std::shared_ptr<const DnReplicateRequest>);
  sim::Task<net::RpcResponse> handle_ping(std::shared_ptr<const DnPingRequest>);

  net::RpcHub* hub_;
  net::NodeId node_;
  std::unique_ptr<storage::Device> device_;
  std::unique_ptr<storage::LocalStore> store_;
  faults::FaultInjector* injector_ = nullptr;
  std::size_t injector_target_ = 0;  // index of this node's corrupt target
  bool crashed_ = false;
};

}  // namespace hpcbb::hdfs
