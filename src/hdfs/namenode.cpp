#include "hdfs/namenode.h"

#include <algorithm>
#include <cassert>

namespace hpcbb::hdfs {

NameNode::NameNode(net::RpcHub& hub, net::NodeId node,
                   std::vector<net::NodeId> datanodes,
                   const NameNodeParams& params)
    : hub_(&hub),
      node_(node),
      params_(params),
      datanodes_(std::move(datanodes)),
      live_datanodes_(datanodes_),
      rng_(params.placement_seed) {
  assert(!datanodes_.empty());
  hub_->bind(node_, kNnCreate, net::typed_handler<NnCreateRequest>([this](
      auto req) { return handle_create(req); }));
  hub_->bind(node_, kNnAddBlock, net::typed_handler<NnAddBlockRequest>([this](
      auto req) { return handle_add_block(req); }));
  hub_->bind(node_, kNnCompleteBlock,
             net::typed_handler<NnCompleteBlockRequest>(
                 [this](auto req) { return handle_complete_block(req); }));
  hub_->bind(node_, kNnClose, net::typed_handler<NnCloseRequest>([this](
      auto req) { return handle_close(req); }));
  hub_->bind(node_, kNnLocations, net::typed_handler<NnLocationsRequest>(
      [this](auto req) { return handle_locations(req); }));
  hub_->bind(node_, kNnDelete, net::typed_handler<NnDeleteRequest>([this](
      auto req) { return handle_delete(req); }));
  hub_->bind(node_, kNnList, net::typed_handler<NnListRequest>([this](
      auto req) { return handle_list(req); }));

  if (params_.heartbeat_interval_ns > 0) {
    hub_->transport().fabric().simulation().spawn(heartbeat_monitor());
  }
}

NameNode::~NameNode() {
  for (const net::Port port : {kNnCreate, kNnAddBlock, kNnCompleteBlock,
                               kNnClose, kNnLocations, kNnDelete, kNnList}) {
    hub_->unbind(node_, port);
  }
}

sim::Task<void> NameNode::charge_md_op() {
  return hub_->transport().fabric().charge_cpu(node_, params_.md_op_ns);
}

std::vector<net::NodeId> NameNode::place_replicas(net::NodeId writer,
                                                  std::uint32_t replication) {
  const net::Fabric& fabric = hub_->transport().fabric();
  std::vector<net::NodeId> pipeline;
  const auto is_live = [this](net::NodeId n) {
    return std::find(live_datanodes_.begin(), live_datanodes_.end(), n) !=
           live_datanodes_.end();
  };
  const auto taken = [&pipeline](net::NodeId n) {
    return std::find(pipeline.begin(), pipeline.end(), n) != pipeline.end();
  };
  // Pick a random live candidate satisfying `pred`; ~0u if none.
  const auto pick_where = [&](auto pred) -> net::NodeId {
    std::vector<net::NodeId> candidates;
    for (const net::NodeId dn : live_datanodes_) {
      if (!taken(dn) && pred(dn)) candidates.push_back(dn);
    }
    if (candidates.empty()) return ~0u;
    return candidates[rng_.uniform(0, candidates.size() - 1)];
  };

  // HDFS default placement: first replica on the writer (map-side
  // locality); second on a different rack (rack-failure tolerance); third
  // on the second's rack (limits cross-rack pipeline traffic); the rest
  // anywhere.
  if (is_live(writer)) pipeline.push_back(writer);
  const std::uint32_t writer_rack = fabric.rack_of(writer);
  if (pipeline.size() < replication) {
    net::NodeId second = pick_where([&](net::NodeId n) {
      return fabric.rack_of(n) != writer_rack;
    });
    if (second == ~0u) second = pick_where([](net::NodeId) { return true; });
    if (second != ~0u) pipeline.push_back(second);
  }
  if (pipeline.size() >= 2 && pipeline.size() < replication) {
    const std::uint32_t second_rack = fabric.rack_of(pipeline[1]);
    net::NodeId third = pick_where([&](net::NodeId n) {
      return fabric.rack_of(n) == second_rack;
    });
    if (third == ~0u) third = pick_where([](net::NodeId) { return true; });
    if (third != ~0u) pipeline.push_back(third);
  }
  while (pipeline.size() < replication) {
    const net::NodeId extra = pick_where([](net::NodeId) { return true; });
    if (extra == ~0u) break;
    pipeline.push_back(extra);
  }
  return pipeline;
}

sim::Task<net::RpcResponse> NameNode::handle_create(
    std::shared_ptr<const NnCreateRequest> req) {
  co_await charge_md_op();
  if (files_.contains(req->path)) {
    co_return net::rpc_error(
        error(StatusCode::kAlreadyExists, "file exists: " + req->path));
  }
  FileMeta meta;
  meta.block_size =
      req->block_size == 0 ? params_.default_block_size : req->block_size;
  meta.replication = req->replication == 0 ? params_.default_replication
                                           : req->replication;
  files_[req->path] = std::move(meta);
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> NameNode::handle_add_block(
    std::shared_ptr<const NnAddBlockRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  if (it->second.closed) {
    co_return net::rpc_error(
        error(StatusCode::kFailedPrecondition, "file is closed"));
  }
  auto assignment = std::make_shared<BlockAssignment>();
  assignment->block_id = next_block_id_++;
  assignment->pipeline = place_replicas(req->writer, it->second.replication);
  if (assignment->pipeline.empty()) {
    co_return net::rpc_error(
        error(StatusCode::kResourceExhausted, "no live datanodes"));
  }
  it->second.blocks.push_back(BlockMeta{assignment->block_id, 0, 0, false});
  block_nodes_[assignment->block_id] = assignment->pipeline;
  const std::uint64_t wire = assignment->wire_size();
  co_return net::rpc_ok<BlockAssignment>(std::move(assignment), wire);
}

sim::Task<net::RpcResponse> NameNode::handle_complete_block(
    std::shared_ptr<const NnCompleteBlockRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  for (BlockMeta& block : it->second.blocks) {
    if (block.id == req->block_id) {
      block.size = req->size;
      block.crc32c = req->crc32c;
      block.complete = true;
      co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
    }
  }
  co_return net::rpc_error(error(StatusCode::kNotFound, "no such block"));
}

sim::Task<net::RpcResponse> NameNode::handle_close(
    std::shared_ptr<const NnCloseRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  it->second.closed = true;
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> NameNode::handle_locations(
    std::shared_ptr<const NnLocationsRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  auto reply = std::make_shared<NnLocationsReply>();
  reply->block_size = it->second.block_size;
  reply->replication = it->second.replication;
  for (const BlockMeta& block : it->second.blocks) {
    BlockLocation loc;
    loc.block_id = block.id;
    loc.size = block.size;
    loc.crc32c = block.crc32c;
    const auto nodes = block_nodes_.find(block.id);
    if (nodes != block_nodes_.end()) loc.nodes = nodes->second;
    reply->file_size += block.size;
    reply->blocks.push_back(std::move(loc));
  }
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<NnLocationsReply>(std::move(reply), wire);
}

sim::Task<net::RpcResponse> NameNode::handle_delete(
    std::shared_ptr<const NnDeleteRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  const FileMeta meta = it->second;
  files_.erase(it);
  for (const BlockMeta& block : meta.blocks) {
    const auto nodes = block_nodes_.find(block.id);
    if (nodes == block_nodes_.end()) continue;
    for (const net::NodeId dn : nodes->second) {
      auto del = std::make_shared<const DnDeleteBlockRequest>(
          DnDeleteBlockRequest{block.id});
      (void)co_await hub_->call<void>(node_, dn, kDnDeleteBlock, del);
    }
    block_nodes_.erase(block.id);
  }
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> NameNode::handle_list(
    std::shared_ptr<const NnListRequest> req) {
  co_await charge_md_op();
  auto reply = std::make_shared<NnListReply>();
  for (const auto& [path, meta] : files_) {
    if (path.starts_with(req->prefix)) reply->paths.push_back(path);
  }
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<NnListReply>(std::move(reply), wire);
}

sim::Task<void> NameNode::heartbeat_monitor() {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  std::unordered_map<net::NodeId, std::uint32_t> misses;
  while (!heartbeats_stopped_) {
    co_await sim.delay(params_.heartbeat_interval_ns);
    if (heartbeats_stopped_) co_return;
    // Snapshot: mark_datanode_dead mutates live_datanodes_.
    const std::vector<net::NodeId> probe = live_datanodes_;
    for (const net::NodeId dn : probe) {
      auto req = std::make_shared<const DnPingRequest>();
      auto result = co_await hub_->call<void>(node_, dn, kDnPing, req);
      if (result.is_ok()) {
        misses[dn] = 0;
        continue;
      }
      if (++misses[dn] >= params_.heartbeat_misses) {
        misses.erase(dn);
        (void)mark_datanode_dead(dn);
      }
    }
  }
}

std::vector<net::NodeId> NameNode::block_nodes(BlockId id) const {
  const auto it = block_nodes_.find(id);
  return it == block_nodes_.end() ? std::vector<net::NodeId>{} : it->second;
}

std::size_t NameNode::mark_datanode_dead(net::NodeId dead) {
  live_datanodes_.erase(
      std::remove(live_datanodes_.begin(), live_datanodes_.end(), dead),
      live_datanodes_.end());

  std::size_t scheduled = 0;
  for (auto& [block_id, nodes] : block_nodes_) {
    const auto found = std::find(nodes.begin(), nodes.end(), dead);
    if (found == nodes.end()) continue;
    nodes.erase(found);
    if (nodes.empty()) continue;  // all replicas lost: data loss, stays empty

    // Pick a live target not already holding the block.
    std::vector<net::NodeId> candidates;
    for (const net::NodeId dn : live_datanodes_) {
      if (std::find(nodes.begin(), nodes.end(), dn) == nodes.end()) {
        candidates.push_back(dn);
      }
    }
    if (candidates.empty()) continue;
    const net::NodeId source = nodes.front();
    const net::NodeId target =
        candidates[rng_.uniform(0, candidates.size() - 1)];
    nodes.push_back(target);
    ++scheduled;

    hub_->transport().fabric().simulation().spawn(
        [](net::RpcHub& hub, net::NodeId nn, net::NodeId src, BlockId blk,
           net::NodeId tgt) -> sim::Task<void> {
          auto req = std::make_shared<const DnReplicateRequest>(
              DnReplicateRequest{blk, tgt});
          (void)co_await hub.call<void>(nn, src, kDnReplicate, req);
        }(*hub_, node_, source, block_id, target));
  }
  return scheduled;
}

}  // namespace hpcbb::hdfs
