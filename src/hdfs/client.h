// HDFS client: block-building writer with pipelined packet streaming, and a
// locality-aware reader. Implements fs::FileSystem.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hdfs/protocol.h"
#include "net/rpc.h"
#include "storage/filesystem.h"

namespace hpcbb::hdfs {

struct HdfsClientParams {
  std::uint32_t replication = 0;     // 0 = NameNode default
  std::uint64_t block_size = 0;      // 0 = NameNode default
  std::uint64_t packet_size = 1 * MiB;
  std::uint32_t write_window = 8;    // outstanding packets per block
};

class HdfsFileSystem final : public fs::FileSystem {
 public:
  HdfsFileSystem(net::RpcHub& hub, net::NodeId namenode,
                 const HdfsClientParams& params = {})
      : hub_(&hub), namenode_(namenode), params_(params) {}

  sim::Task<Result<std::unique_ptr<fs::Writer>>> create(
      const std::string& path, net::NodeId client) override;
  sim::Task<Result<std::unique_ptr<fs::Reader>>> open(
      const std::string& path, net::NodeId client) override;
  sim::Task<Result<fs::FileInfo>> stat(const std::string& path,
                                       net::NodeId client) override;
  sim::Task<Status> remove(const std::string& path,
                           net::NodeId client) override;
  sim::Task<Result<std::vector<std::string>>> list(
      const std::string& prefix, net::NodeId client) override;
  sim::Task<Result<std::vector<std::vector<net::NodeId>>>> block_locations(
      const std::string& path, net::NodeId client) override;
  [[nodiscard]] std::string name() const override { return "HDFS"; }

  [[nodiscard]] net::RpcHub& hub() noexcept { return *hub_; }
  [[nodiscard]] net::NodeId namenode() const noexcept { return namenode_; }
  [[nodiscard]] const HdfsClientParams& params() const noexcept {
    return params_;
  }

  sim::Task<Result<NnLocationsReply>> locations(const std::string& path,
                                                net::NodeId client);

 private:
  net::RpcHub* hub_;
  net::NodeId namenode_;
  HdfsClientParams params_;
};

}  // namespace hpcbb::hdfs
