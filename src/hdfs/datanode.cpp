#include "hdfs/datanode.h"

#include "common/metrics.h"
#include "sim/sync.h"
#include "sim/trace.h"

namespace hpcbb::hdfs {

DataNode::DataNode(net::RpcHub& hub, net::NodeId node,
                   const DataNodeParams& params)
    : hub_(&hub), node_(node) {
  device_ = std::make_unique<storage::Device>(
      hub_->transport().fabric().simulation(), params.disk);
  store_ = std::make_unique<storage::LocalStore>(*device_);

  hub_->bind(node_, kDnWritePacket,
             net::typed_handler<DnWritePacketRequest>(
                 [this](auto req) { return handle_write_packet(req); }));
  hub_->bind(node_, kDnRead, net::typed_handler<DnReadRequest>([this](
      auto req) { return handle_read(req); }));
  hub_->bind(node_, kDnDeleteBlock,
             net::typed_handler<DnDeleteBlockRequest>(
                 [this](auto req) { return handle_delete(req); }));
  hub_->bind(node_, kDnReplicate,
             net::typed_handler<DnReplicateRequest>(
                 [this](auto req) { return handle_replicate(req); }));
  hub_->bind(node_, kDnPing, net::typed_handler<DnPingRequest>([this](
      auto req) { return handle_ping(req); }));
}

DataNode::~DataNode() {
  for (const net::Port port :
       {kDnWritePacket, kDnRead, kDnDeleteBlock, kDnReplicate, kDnPing}) {
    hub_->unbind(node_, port);
  }
}

void DataNode::attach_fault_injector(faults::FaultInjector* injector) {
  injector_ = injector;
  if (injector_ == nullptr) return;
  injector_target_ = injector_->corrupt_target_count();
  injector_->add_corrupt_target(
      "dn" + std::to_string(node_),
      [this](const std::string& object, std::uint64_t selector,
             CorruptKind kind) {
        return device_->corrupt(object, selector, kind);
      });
}

void DataNode::corrupt_block(BlockId id, CorruptKind kind) {
  // Mutate stored data so it no longer matches the writer-registered CRC;
  // full-block reads must then fail with kDataLoss.
  if (injector_ != nullptr) {
    (void)injector_->corrupt_target(injector_target_, kind, /*selector=*/0,
                                    block_name(id));
  } else {
    (void)device_->corrupt(block_name(id), /*selector=*/0, kind);
  }
}

sim::Task<net::RpcResponse> DataNode::handle_write_packet(
    std::shared_ptr<const DnWritePacketRequest> req) {
  if (crashed_) {
    co_return net::rpc_error(error(StatusCode::kUnavailable, "datanode down"));
  }
  const std::string name = block_name(req->block_id);
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const sim::SimTime start = sim.now();
  sim::ScopedSpan span(sim.trace(), "write." + name, "hdfs", node_,
                       req->op_id);
  sim.metrics().counter("hdfs.dn.write_bytes").add(req->data->size());

  if (req->downstream.empty()) {
    Status st = co_await store_->write_at(name, req->offset, *req->data);
    sim.metrics().histogram("hdfs.dn.write").record(sim.now() - start);
    if (!st.is_ok()) co_return net::rpc_error(std::move(st));
    co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
  }

  // Forward downstream while writing locally (pipeline overlap).
  auto fwd = std::make_shared<DnWritePacketRequest>();
  fwd->block_id = req->block_id;
  fwd->offset = req->offset;
  fwd->data = req->data;
  fwd->downstream.assign(req->downstream.begin() + 1, req->downstream.end());
  fwd->op_id = req->op_id;
  const net::NodeId next = req->downstream.front();
  std::vector<sim::Task<Status>> ops;
  ops.push_back([](net::RpcHub& hub, net::NodeId src, net::NodeId dst,
                   std::shared_ptr<const DnWritePacketRequest> r)
                    -> sim::Task<Status> {
    co_return (co_await hub.call<void>(src, dst, kDnWritePacket, r)).status();
  }(*hub_, node_, next, std::move(fwd)));
  ops.push_back([](storage::LocalStore& store, std::string blk,
                   std::uint64_t off, BytesPtr data) -> sim::Task<Status> {
    co_return co_await store.write_at(std::move(blk), off, *data);
  }(*store_, name, req->offset, req->data));

  const std::vector<Status> results =
      co_await sim::parallel_collect(sim, std::move(ops));
  sim.metrics().histogram("hdfs.dn.write").record(sim.now() - start);
  for (const Status& st : results) {
    if (!st.is_ok()) co_return net::rpc_error(st);
  }
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> DataNode::handle_ping(
    std::shared_ptr<const DnPingRequest>) {
  if (crashed_) {
    co_return net::rpc_error(error(StatusCode::kUnavailable, "datanode down"));
  }
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> DataNode::handle_read(
    std::shared_ptr<const DnReadRequest> req) {
  if (crashed_) {
    co_return net::rpc_error(error(StatusCode::kUnavailable, "datanode down"));
  }
  const std::string name = block_name(req->block_id);
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const sim::SimTime start = sim.now();
  sim::ScopedSpan span(sim.trace(), "read." + name, "hdfs", node_,
                       req->op_id);
  Result<Bytes> data = co_await store_->read(name, req->offset, req->length);
  sim.metrics().histogram("hdfs.dn.read").record(sim.now() - start);
  if (!data.is_ok()) co_return net::rpc_error(data.status());
  sim.metrics().counter("hdfs.dn.read_bytes").add(data.value().size());
  auto reply = std::make_shared<DnReadReply>();
  reply->data = make_bytes(std::move(data).value());
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<DnReadReply>(std::move(reply), wire);
}

sim::Task<net::RpcResponse> DataNode::handle_delete(
    std::shared_ptr<const DnDeleteBlockRequest> req) {
  if (crashed_) {
    co_return net::rpc_error(error(StatusCode::kUnavailable, "datanode down"));
  }
  (void)store_->remove(block_name(req->block_id));
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> DataNode::handle_replicate(
    std::shared_ptr<const DnReplicateRequest> req) {
  if (crashed_) {
    co_return net::rpc_error(error(StatusCode::kUnavailable, "datanode down"));
  }
  const std::string name = block_name(req->block_id);
  const std::uint64_t size = store_->object_size(name);
  if (size == 0 && !store_->contains(name)) {
    co_return net::rpc_error(error(StatusCode::kNotFound, "no such block"));
  }
  // Stream the block to the target in 1 MiB packets.
  constexpr std::uint64_t kPacket = 1 * MiB;
  for (std::uint64_t off = 0; off < size || (size == 0 && off == 0);
       off += kPacket) {
    const std::uint64_t len = std::min(kPacket, size - off);
    Result<Bytes> piece = co_await store_->read(name, off, len);
    if (!piece.is_ok()) co_return net::rpc_error(piece.status());
    auto pkt = std::make_shared<DnWritePacketRequest>();
    pkt->block_id = req->block_id;
    pkt->offset = off;
    pkt->data = make_bytes(std::move(piece).value());
    auto result =
        co_await hub_->call<void>(node_, req->target, kDnWritePacket,
                                  std::shared_ptr<const DnWritePacketRequest>(
                                      std::move(pkt)));
    if (!result.is_ok()) co_return net::rpc_error(result.status());
    if (size == 0) break;
  }
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

}  // namespace hpcbb::hdfs
