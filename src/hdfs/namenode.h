// HDFS NameNode: namespace, block map, replica placement (writer-local
// first), and re-replication after DataNode loss.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "hdfs/protocol.h"
#include "net/rpc.h"
#include "sim/simulation.h"

namespace hpcbb::hdfs {

struct NameNodeParams {
  std::uint32_t default_replication = 3;
  std::uint64_t default_block_size = 128 * MiB;
  sim::SimTime md_op_ns = 20 * duration::us;
  std::uint64_t placement_seed = 0x5EED;
  // Heartbeat failure detection: ping every DataNode each interval; after
  // `heartbeat_misses` consecutive failures the node is declared dead and
  // re-replication starts. 0 disables the monitor (tests then drive
  // mark_datanode_dead explicitly for determinism of timing assertions).
  sim::SimTime heartbeat_interval_ns = 0;
  std::uint32_t heartbeat_misses = 3;
};

class NameNode {
 public:
  NameNode(net::RpcHub& hub, net::NodeId node,
           std::vector<net::NodeId> datanodes, const NameNodeParams& params);
  ~NameNode();

  NameNode(const NameNode&) = delete;
  NameNode& operator=(const NameNode&) = delete;

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::size_t file_count() const noexcept {
    return files_.size();
  }
  [[nodiscard]] std::vector<net::NodeId> block_nodes(BlockId id) const;

  // Failure handling: drop the DataNode from all replica sets and spawn
  // re-replication from surviving replicas (what heartbeat loss triggers in
  // real HDFS). Returns the number of blocks scheduled for re-replication.
  // Invoked automatically by the heartbeat monitor when enabled.
  std::size_t mark_datanode_dead(net::NodeId dead);

  [[nodiscard]] std::size_t live_datanode_count() const noexcept {
    return live_datanodes_.size();
  }

  // Stops the heartbeat monitor after its current tick (the self-scheduling
  // timer would otherwise keep Simulation::run() from ever draining).
  void stop_heartbeats() noexcept { heartbeats_stopped_ = true; }

 private:
  struct BlockMeta {
    BlockId id = 0;
    std::uint64_t size = 0;
    std::uint32_t crc32c = 0;
    bool complete = false;
  };
  struct FileMeta {
    std::uint64_t block_size = 0;
    std::uint32_t replication = 0;
    std::vector<BlockMeta> blocks;
    bool closed = false;
  };

  sim::Task<net::RpcResponse> handle_create(
      std::shared_ptr<const NnCreateRequest>);
  sim::Task<net::RpcResponse> handle_add_block(
      std::shared_ptr<const NnAddBlockRequest>);
  sim::Task<net::RpcResponse> handle_complete_block(
      std::shared_ptr<const NnCompleteBlockRequest>);
  sim::Task<net::RpcResponse> handle_close(
      std::shared_ptr<const NnCloseRequest>);
  sim::Task<net::RpcResponse> handle_locations(
      std::shared_ptr<const NnLocationsRequest>);
  sim::Task<net::RpcResponse> handle_delete(
      std::shared_ptr<const NnDeleteRequest>);
  sim::Task<net::RpcResponse> handle_list(std::shared_ptr<const NnListRequest>);

  sim::Task<void> charge_md_op();
  sim::Task<void> heartbeat_monitor();

  // Writer-local-first placement with random distinct remotes.
  std::vector<net::NodeId> place_replicas(net::NodeId writer,
                                          std::uint32_t replication);

  net::RpcHub* hub_;
  net::NodeId node_;
  NameNodeParams params_;
  std::vector<net::NodeId> datanodes_;
  std::vector<net::NodeId> live_datanodes_;
  Rng rng_;
  BlockId next_block_id_ = 1;
  bool heartbeats_stopped_ = false;
  std::map<std::string, FileMeta> files_;
  std::unordered_map<BlockId, std::vector<net::NodeId>> block_nodes_;
};

}  // namespace hpcbb::hdfs
