// HDFS wire messages: NameNode metadata ops and DataNode block I/O.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "net/rpc.h"

namespace hpcbb::hdfs {

inline constexpr net::Port kNnPortBase = 8020;
inline constexpr net::Port kDnPortBase = 50010;

inline constexpr net::Port kNnCreate = kNnPortBase;
inline constexpr net::Port kNnAddBlock = kNnPortBase + 1;
inline constexpr net::Port kNnCompleteBlock = kNnPortBase + 2;
inline constexpr net::Port kNnClose = kNnPortBase + 3;
inline constexpr net::Port kNnLocations = kNnPortBase + 4;
inline constexpr net::Port kNnDelete = kNnPortBase + 5;
inline constexpr net::Port kNnList = kNnPortBase + 6;

inline constexpr net::Port kDnWritePacket = kDnPortBase;
inline constexpr net::Port kDnRead = kDnPortBase + 1;
inline constexpr net::Port kDnDeleteBlock = kDnPortBase + 2;
inline constexpr net::Port kDnReplicate = kDnPortBase + 3;
inline constexpr net::Port kDnPing = kDnPortBase + 4;

inline constexpr std::uint64_t kHeaderBytes = 64;

using BlockId = std::uint64_t;

struct NnCreateRequest {
  std::string path;
  std::uint32_t replication = 0;  // 0 = default
  std::uint64_t block_size = 0;   // 0 = default
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct NnAddBlockRequest {
  std::string path;
  net::NodeId writer = 0;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct BlockAssignment {
  BlockId block_id = 0;
  std::vector<net::NodeId> pipeline;  // replication targets, in write order
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + pipeline.size() * 4;
  }
};

struct NnCompleteBlockRequest {
  std::string path;
  BlockId block_id = 0;
  std::uint64_t size = 0;
  std::uint32_t crc32c = 0;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct NnCloseRequest {
  std::string path;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct NnLocationsRequest {
  std::string path;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct BlockLocation {
  BlockId block_id = 0;
  std::uint64_t size = 0;
  std::uint32_t crc32c = 0;
  std::vector<net::NodeId> nodes;
};

struct NnLocationsReply {
  std::uint64_t file_size = 0;
  std::uint64_t block_size = 0;
  std::uint32_t replication = 0;
  std::vector<BlockLocation> blocks;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + blocks.size() * 24;
  }
};

struct NnDeleteRequest {
  std::string path;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct NnListRequest {
  std::string prefix;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + prefix.size();
  }
};

struct NnListReply {
  std::vector<std::string> paths;
  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t total = kHeaderBytes;
    for (const auto& p : paths) total += p.size() + 4;
    return total;
  }
};

// One pipeline packet: written locally by the receiving DataNode and
// forwarded to `downstream` (HDFS chained replication). Packets are
// position-addressed (offset within the block), so delivery order can never
// corrupt block contents.
struct DnWritePacketRequest {
  BlockId block_id = 0;
  std::uint64_t offset = 0;
  BytesPtr data;
  std::vector<net::NodeId> downstream;
  std::uint64_t op_id = 0;  // causal trace id; rides the header
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + data->size();
  }
};

struct DnReadRequest {
  BlockId block_id = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t op_id = 0;  // causal trace id; rides the header
  [[nodiscard]] std::uint64_t wire_size() const { return kHeaderBytes; }
};

struct DnReadReply {
  BytesPtr data;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + data->size();
  }
};

struct DnDeleteBlockRequest {
  BlockId block_id = 0;
  [[nodiscard]] std::uint64_t wire_size() const { return kHeaderBytes; }
};

// Re-replication: the receiving DataNode streams its copy of the block to
// `target`.
struct DnReplicateRequest {
  BlockId block_id = 0;
  net::NodeId target = 0;
  [[nodiscard]] std::uint64_t wire_size() const { return kHeaderBytes; }
};

// Liveness probe (the NameNode's heartbeat monitor; real HDFS inverts the
// direction, but the failure-detection semantics are identical).
struct DnPingRequest {
  [[nodiscard]] std::uint64_t wire_size() const { return kHeaderBytes; }
};

}  // namespace hpcbb::hdfs
