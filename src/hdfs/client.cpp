#include "hdfs/client.h"

#include <algorithm>

#include "common/crc32c.h"
#include "sim/sync.h"
#include "sim/trace.h"

namespace hpcbb::hdfs {

namespace {

class HdfsWriter final : public fs::Writer {
 public:
  HdfsWriter(net::RpcHub& hub, net::NodeId namenode, net::NodeId client,
             std::string path, std::uint64_t block_size,
             const HdfsClientParams& params)
      : hub_(&hub),
        namenode_(namenode),
        client_(client),
        path_(std::move(path)),
        block_size_(block_size),
        params_(params) {}

  sim::Task<Status> append(BytesPtr data) override {
    std::uint64_t offset = 0;
    while (offset < data->size()) {
      if (!block_open_) {
        if (Status st = co_await start_block(); !st.is_ok()) co_return st;
      }
      const std::uint64_t room = block_size_ - block_bytes_;
      const std::uint64_t take =
          std::min({room, data->size() - offset, params_.packet_size});
      Bytes packet(data->begin() + static_cast<std::ptrdiff_t>(offset),
                   data->begin() + static_cast<std::ptrdiff_t>(offset + take));
      if (Status st = co_await send_packet(make_bytes(std::move(packet)));
          !st.is_ok()) {
        co_return st;
      }
      offset += take;
      if (block_bytes_ == block_size_) {
        if (Status st = co_await finish_block(); !st.is_ok()) co_return st;
      }
    }
    co_return Status::ok();
  }

  sim::Task<Status> close() override {
    if (block_open_) {
      if (Status st = co_await finish_block(); !st.is_ok()) co_return st;
    }
    auto req = std::make_shared<const NnCloseRequest>(NnCloseRequest{path_});
    co_return (co_await hub_->call<void>(client_, namenode_, kNnClose, req))
        .status();
  }

 private:
  sim::Task<Status> start_block() {
    auto req = std::make_shared<const NnAddBlockRequest>(
        NnAddBlockRequest{path_, client_});
    auto result =
        co_await hub_->call<BlockAssignment>(client_, namenode_, kNnAddBlock,
                                             req);
    if (!result.is_ok()) co_return result.status();
    block_id_ = result.value()->block_id;
    pipeline_ = result.value()->pipeline;
    block_bytes_ = 0;
    block_crc_ = 0;
    block_open_ = true;
    // One causal op per block: every packet of this block (and the datanode
    // spans it produces) shares this id.
    sim::Simulation& sim = hub_->transport().fabric().simulation();
    op_id_ = sim.next_op_id();
    if (sim.trace() != nullptr) {
      block_span_ = sim.trace()->begin(
          "block." + std::to_string(block_id_), "hdfs", client_, op_id_);
    }
    co_return Status::ok();
  }

  // Streams one packet into the pipeline, with up to `write_window`
  // outstanding packets (HDFS's sliding ack window).
  sim::Task<Status> send_packet(BytesPtr packet) {
    const std::uint64_t offset = block_bytes_;
    block_crc_ = crc32c(block_crc_, packet->data(), packet->size());
    block_bytes_ += packet->size();

    if (window_ == nullptr) {
      window_ = std::make_unique<sim::Semaphore>(
          hub_->transport().fabric().simulation(), params_.write_window);
    }
    co_await window_->acquire();
    ++in_flight_;

    auto req = std::make_shared<DnWritePacketRequest>();
    req->block_id = block_id_;
    req->offset = offset;
    req->data = std::move(packet);
    req->downstream.assign(pipeline_.begin() + 1, pipeline_.end());
    req->op_id = op_id_;

    hub_->transport().fabric().simulation().spawn(
        [](HdfsWriter& w, net::NodeId head,
           std::shared_ptr<const DnWritePacketRequest> r) -> sim::Task<void> {
          auto result =
              co_await w.hub_->call<void>(w.client_, head, kDnWritePacket, r);
          if (!result.is_ok() && w.first_error_.is_ok()) {
            w.first_error_ = result.status();
          }
          --w.in_flight_;
          w.window_->release();
        }(*this, pipeline_.front(), std::move(req)));
    co_return first_error_;
  }

  sim::Task<Status> finish_block() {
    // Drain the window: acquiring every permit blocks until all in-flight
    // packets have been acked and released theirs.
    if (window_ != nullptr) {
      co_await window_->acquire(params_.write_window);
      window_->release(params_.write_window);
    }
    if (!first_error_.is_ok()) co_return first_error_;
    auto req = std::make_shared<const NnCompleteBlockRequest>(
        NnCompleteBlockRequest{path_, block_id_, block_bytes_, block_crc_});
    block_open_ = false;
    sim::Simulation& sim = hub_->transport().fabric().simulation();
    if (sim.trace() != nullptr) sim.trace()->end(block_span_);
    co_return (co_await hub_->call<void>(client_, namenode_,
                                         kNnCompleteBlock, req))
        .status();
  }

  net::RpcHub* hub_;
  net::NodeId namenode_;
  net::NodeId client_;
  std::string path_;
  std::uint64_t block_size_;
  HdfsClientParams params_;

  bool block_open_ = false;
  BlockId block_id_ = 0;
  std::uint64_t op_id_ = 0;
  std::size_t block_span_ = 0;
  std::vector<net::NodeId> pipeline_;
  std::uint64_t block_bytes_ = 0;
  std::uint32_t block_crc_ = 0;
  std::unique_ptr<sim::Semaphore> window_;
  std::uint32_t in_flight_ = 0;
  Status first_error_;
};

class HdfsReader final : public fs::Reader {
 public:
  HdfsReader(net::RpcHub& hub, net::NodeId client, NnLocationsReply meta)
      : hub_(&hub), client_(client), meta_(std::move(meta)) {}

  sim::Task<Result<Bytes>> read(std::uint64_t offset,
                                std::uint64_t length) override {
    if (offset >= meta_.file_size) {
      co_return error(StatusCode::kOutOfRange, "read past EOF");
    }
    length = std::min(length, meta_.file_size - offset);
    Bytes out;
    out.reserve(length);
    std::uint64_t cursor = offset;
    const std::uint64_t end = offset + length;
    const std::uint64_t op_id =
        hub_->transport().fabric().simulation().next_op_id();
    // Blocks can have unequal sizes (last block short); walk them.
    std::uint64_t block_start = 0;
    for (const BlockLocation& block : meta_.blocks) {
      const std::uint64_t block_end = block_start + block.size;
      if (cursor < block_end && block_start < end) {
        const std::uint64_t in_off = std::max(cursor, block_start) - block_start;
        const std::uint64_t in_len =
            std::min(end, block_end) - std::max(cursor, block_start);
        Result<Bytes> piece = co_await read_block(block, in_off, in_len, op_id);
        if (!piece.is_ok()) co_return piece.status();
        out.insert(out.end(), piece.value().begin(), piece.value().end());
        cursor += in_len;
        if (cursor >= end) break;
      }
      block_start = block_end;
    }
    co_return out;
  }

  [[nodiscard]] std::uint64_t size() const override { return meta_.file_size; }

 private:
  sim::Task<Result<Bytes>> read_block(const BlockLocation& block,
                                      std::uint64_t offset,
                                      std::uint64_t length,
                                      std::uint64_t op_id) {
    if (block.nodes.empty()) {
      co_return error(StatusCode::kDataLoss,
                      "all replicas lost for block " +
                          std::to_string(block.block_id));
    }
    // Prefer the node-local replica — short-circuit distance (the HDFS
    // read path that makes map-side locality matter).
    net::NodeId source = block.nodes.front();
    for (const net::NodeId n : block.nodes) {
      if (n == client_) {
        source = n;
        break;
      }
    }
    Status last = error(StatusCode::kUnavailable, "no replica answered");
    for (std::size_t attempt = 0; attempt < block.nodes.size(); ++attempt) {
      auto req = std::make_shared<const DnReadRequest>(
          DnReadRequest{block.block_id, offset, length, op_id});
      auto result = co_await hub_->call<DnReadReply>(client_, source, kDnRead,
                                                     req);
      if (result.is_ok()) {
        // End-to-end checksum: full-block reads are validated against the
        // CRC the writer registered with the NameNode (HDFS client-side
        // checksum verification).
        if (offset == 0 && length == block.size &&
            crc32c(*result.value()->data) != block.crc32c) {
          last = error(StatusCode::kDataLoss,
                       "checksum mismatch on block " +
                           std::to_string(block.block_id));
        } else {
          co_return Bytes(*result.value()->data);
        }
      } else {
        last = result.status();
      }
      // Failover to the next replica.
      source = block.nodes[(attempt + 1) % block.nodes.size()];
    }
    co_return last;
  }

  net::RpcHub* hub_;
  net::NodeId client_;
  NnLocationsReply meta_;
};

}  // namespace

sim::Task<Result<NnLocationsReply>> HdfsFileSystem::locations(
    const std::string& path, net::NodeId client) {
  auto req = std::make_shared<const NnLocationsRequest>(
      NnLocationsRequest{path});
  auto result =
      co_await hub_->call<NnLocationsReply>(client, namenode_, kNnLocations,
                                            req);
  if (!result.is_ok()) co_return result.status();
  co_return *result.value();
}

sim::Task<Result<std::unique_ptr<fs::Writer>>> HdfsFileSystem::create(
    const std::string& path, net::NodeId client) {
  auto req = std::make_shared<const NnCreateRequest>(NnCreateRequest{
      path, params_.replication, params_.block_size});
  auto result = co_await hub_->call<void>(client, namenode_, kNnCreate, req);
  if (!result.is_ok()) co_return result.status();
  // The writer needs the effective block size; NameNode applied defaults.
  auto loc = co_await locations(path, client);
  if (!loc.is_ok()) co_return loc.status();
  co_return std::unique_ptr<fs::Writer>(std::make_unique<HdfsWriter>(
      *hub_, namenode_, client, path, loc.value().block_size, params_));
}

sim::Task<Result<std::unique_ptr<fs::Reader>>> HdfsFileSystem::open(
    const std::string& path, net::NodeId client) {
  auto loc = co_await locations(path, client);
  if (!loc.is_ok()) co_return loc.status();
  co_return std::unique_ptr<fs::Reader>(std::make_unique<HdfsReader>(
      *hub_, client, std::move(loc).value()));
}

sim::Task<Result<fs::FileInfo>> HdfsFileSystem::stat(const std::string& path,
                                                     net::NodeId client) {
  auto loc = co_await locations(path, client);
  if (!loc.is_ok()) co_return loc.status();
  fs::FileInfo info;
  info.path = path;
  info.size = loc.value().file_size;
  info.block_size = loc.value().block_size;
  info.replication = loc.value().replication;
  co_return info;
}

sim::Task<Status> HdfsFileSystem::remove(const std::string& path,
                                         net::NodeId client) {
  auto req = std::make_shared<const NnDeleteRequest>(NnDeleteRequest{path});
  co_return (co_await hub_->call<void>(client, namenode_, kNnDelete, req))
      .status();
}

sim::Task<Result<std::vector<std::string>>> HdfsFileSystem::list(
    const std::string& prefix, net::NodeId client) {
  auto req = std::make_shared<const NnListRequest>(NnListRequest{prefix});
  auto result = co_await hub_->call<NnListReply>(client, namenode_, kNnList,
                                                 req);
  if (!result.is_ok()) co_return result.status();
  co_return result.value()->paths;
}

sim::Task<Result<std::vector<std::vector<net::NodeId>>>>
HdfsFileSystem::block_locations(const std::string& path, net::NodeId client) {
  auto loc = co_await locations(path, client);
  if (!loc.is_ok()) co_return loc.status();
  std::vector<std::vector<net::NodeId>> out;
  out.reserve(loc.value().blocks.size());
  for (const BlockLocation& block : loc.value().blocks) {
    out.push_back(block.nodes);
  }
  co_return out;
}

}  // namespace hpcbb::hdfs
