// Experiment harness: builds a complete simulated HPC cluster — compute
// nodes, HDFS (NameNode + per-node DataNodes over a sockets transport),
// Lustre (MDS + OSS/OSTs over native IB), and the RDMA-Memcached burst
// buffer (KV servers + master + node agents) — on one shared fabric, and
// hands out fs::FileSystem implementations plus failure-injection and
// metric hooks.
//
// Node id layout:
//   [0, compute_nodes)                 compute nodes (DataNode + BB agent)
//   compute_nodes + 0                  HDFS NameNode
//   compute_nodes + 1                  BB master
//   compute_nodes + 2                  Lustre MDS
//   compute_nodes + 3 ..               OSS nodes, then KV server nodes
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "burstbuffer/filesystem.h"
#include "burstbuffer/mdlog.h"
#include "faults/injector.h"
#include "flowctl/controller.h"
#include "hdfs/client.h"
#include "hdfs/datanode.h"
#include "hdfs/namenode.h"
#include "integrity/scrubber.h"
#include "kvstore/server.h"
#include "lustre/client.h"
#include "lustre/mds.h"
#include "lustre/oss.h"
#include "mapred/job.h"
#include "net/rpc.h"
#include "sim/simulation.h"

namespace hpcbb::cluster {

enum class FsKind { kHdfs, kLustre, kBurstBuffer };

std::string_view to_string(FsKind kind) noexcept;

struct ClusterConfig {
  std::uint32_t compute_nodes = 8;
  std::uint32_t kv_servers = 4;
  std::uint32_t oss_count = 4;
  std::uint32_t osts_per_oss = 2;

  net::FabricParams fabric;
  // Stock Hadoop speaks sockets (IPoIB on an IB cluster); Lustre's LNET and
  // the burst buffer use native verbs.
  net::TransportKind hdfs_transport = net::TransportKind::kIpoib;
  net::TransportKind fast_transport = net::TransportKind::kRdma;

  // SDSC-Gordon-class compute nodes carry a local SSD (the paper's testbed).
  storage::DeviceParams node_disk = storage::ssd_preset();
  std::uint64_t ramdisk_bytes = 2 * GiB;
  lustre::OssParams oss;
  lustre::MdsParams mds;

  std::uint64_t kv_memory_per_server = 512 * MiB;
  std::uint32_t kv_shards = 4;
  // Burst-buffer servers journal ingested data to their local SSDs
  // (hybrid-Memcached persistence): write ingest is SSD-bound, reads are
  // RAM-bound — the asymmetry behind the paper's 1.5x write vs 8x read.
  bool kv_persist_writes = true;
  storage::DeviceParams kv_journal = storage::DeviceParams{
      .kind = storage::MediaKind::kSsd,
      .read_bytes_per_sec = 700 * MB,   // enterprise-class SSD per server
      .write_bytes_per_sec = 600 * MB,
      .seek_ns = 50 * duration::us,
      .capacity_bytes = 400 * GiB};

  bb::Scheme scheme = bb::Scheme::kAsync;
  std::uint32_t flusher_count = 4;
  // Watermarks / pacing for the burst buffer's flow-control subsystem
  // (capacity_bytes is derived from kv_memory_per_server * kv_servers).
  flowctl::FlowControlParams bb_flowctl;
  // Extension: promote Lustre-fallback reads back into the buffer (read
  // cache behaviour). Off by default to match the paper's base design.
  bool bb_promote_on_read = false;

  // Scaled-down experiment geometry (EXPERIMENTS.md, "Scaling"): paper-size
  // 128 MiB blocks and multi-GB files shrink together by ~4x so runs fit
  // the host; ratios (block/chunk/buffer/file) are preserved.
  std::uint64_t block_size = 32 * MiB;
  std::uint64_t chunk_size = 1 * MiB;

  std::uint32_t hdfs_replication = 3;
  mapred::MrParams mapred;

  // ---- resilience ----
  // Retry policy installed on the fast (verbs) hub, covering KV, Lustre and
  // burst-buffer RPCs. Default is a no-op (single attempt, no timeout), so
  // baseline runs are byte-identical; HDFS keeps stock sockets behaviour.
  net::RetryPolicy retry;
  // KV client behaviour for BB writers/readers/flushers: ring failover
  // during a server outage, and replica write fan-out / replica reads when
  // replication_factor > 1 (which also arms the master's recovery
  // subsystem). Must stay consistent across all BB clients so replicated
  // and failover writes land where reads look.
  kv::ClientParams kv_client;
  // BB master failure detector over the KV servers; 0 disables it.
  sim::SimTime bb_heartbeat_interval_ns = 0;
  std::uint32_t bb_suspect_after = 2;
  std::uint32_t bb_dead_after = 4;
  // Deterministic fault injection (disabled by default). Crash targets are
  // the KV servers; limp targets are the OSS devices and KV journal SSDs;
  // corruption targets are the KV stores, OSS devices, and DataNode disks.
  faults::InjectorParams faults;
  // Background integrity scrubber over the burst buffer (0 interval = off).
  integrity::ScrubParams bb_scrub;
  // Master metadata durability: write-ahead journal + checkpoints in the KV
  // tier's reserved `!md:` range (bb.md.* keys). With journaling on the
  // injector's faults.master.* schedule can crash and restart the BB master
  // with zero metadata loss; off by default (seed behaviour).
  bb::MdParams bb_md;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] net::Fabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::vector<net::NodeId>& compute_nodes() const noexcept {
    return compute_nodes_;
  }

  // The shared file-system instances (all stacks coexist on the fabric).
  [[nodiscard]] fs::FileSystem& filesystem(FsKind kind);
  [[nodiscard]] net::RpcHub& hub_for(FsKind kind) noexcept {
    return kind == FsKind::kHdfs ? *hdfs_hub_ : *fast_hub_;
  }

  // A MapReduce runner whose shuffle travels on the same transport as the
  // chosen storage stack.
  [[nodiscard]] std::unique_ptr<mapred::JobRunner> make_runner(FsKind kind);

  // Component access for failure injection and measurements.
  [[nodiscard]] hdfs::NameNode& namenode() noexcept { return *namenode_; }
  [[nodiscard]] hdfs::DataNode& datanode(std::uint32_t i) noexcept {
    return *datanodes_[i];
  }
  [[nodiscard]] kv::Server& kv_server(std::uint32_t i) noexcept {
    return *kv_servers_[i];
  }
  [[nodiscard]] std::uint32_t kv_server_count() const noexcept {
    return static_cast<std::uint32_t>(kv_servers_.size());
  }
  [[nodiscard]] bb::Master& bb_master() noexcept { return *bb_master_; }
  [[nodiscard]] bb::NodeAgent& agent(std::uint32_t i) noexcept {
    return *agents_[i];
  }
  [[nodiscard]] lustre::Oss& oss(std::uint32_t i) noexcept {
    return *osses_[i];
  }
  [[nodiscard]] std::uint32_t oss_count() const noexcept {
    return static_cast<std::uint32_t>(osses_.size());
  }
  // The fault injector, pre-wired with KV crash targets and OSS/journal
  // device targets. Passive unless config.faults.enabled.
  [[nodiscard]] faults::FaultInjector& injector() noexcept {
    return *injector_;
  }

  // Node-local storage consumed on compute node i (DataNode disk + BB RAM
  // disk) — the resource the paper's design conserves (experiment F9).
  [[nodiscard]] std::uint64_t local_bytes_used(std::uint32_t i) const;
  [[nodiscard]] std::uint64_t total_local_bytes_used() const;

 private:
  ClusterConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<net::Transport> hdfs_transport_;
  std::unique_ptr<net::Transport> fast_transport_;
  std::unique_ptr<net::RpcHub> hdfs_hub_;
  std::unique_ptr<net::RpcHub> fast_hub_;

  std::vector<net::NodeId> compute_nodes_;
  net::NodeId namenode_node_ = 0;
  net::NodeId bb_master_node_ = 0;
  net::NodeId mds_node_ = 0;
  std::vector<net::NodeId> kv_nodes_;

  std::vector<std::unique_ptr<hdfs::DataNode>> datanodes_;
  std::unique_ptr<hdfs::NameNode> namenode_;
  std::vector<std::unique_ptr<lustre::Oss>> osses_;
  std::unique_ptr<lustre::Mds> mds_;
  std::vector<std::unique_ptr<kv::Server>> kv_servers_;
  std::vector<std::unique_ptr<bb::NodeAgent>> agents_;
  std::unique_ptr<bb::Master> bb_master_;

  std::unique_ptr<hdfs::HdfsFileSystem> hdfs_fs_;
  std::unique_ptr<lustre::LustreFileSystem> lustre_fs_;
  std::unique_ptr<bb::BurstBufferFileSystem> bb_fs_;
  std::unique_ptr<faults::FaultInjector> injector_;
};

}  // namespace hpcbb::cluster
