#include "cluster/cluster.h"

namespace hpcbb::cluster {

std::string_view to_string(FsKind kind) noexcept {
  switch (kind) {
    case FsKind::kHdfs: return "HDFS";
    case FsKind::kLustre: return "Lustre";
    case FsKind::kBurstBuffer: return "BurstBuffer";
  }
  return "?";
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  const std::uint32_t total_nodes = config_.compute_nodes + 3 +
                                    config_.oss_count + config_.kv_servers;
  fabric_ = std::make_unique<net::Fabric>(sim_, total_nodes, config_.fabric);
  hdfs_transport_ = std::make_unique<net::Transport>(
      *fabric_, net::transport_preset(config_.hdfs_transport));
  fast_transport_ = std::make_unique<net::Transport>(
      *fabric_, net::transport_preset(config_.fast_transport));
  hdfs_hub_ = std::make_unique<net::RpcHub>(*hdfs_transport_);
  fast_hub_ = std::make_unique<net::RpcHub>(*fast_transport_);
  fast_hub_->set_retry_policy(config_.retry);

  for (net::NodeId n = 0; n < config_.compute_nodes; ++n) {
    compute_nodes_.push_back(n);
  }
  namenode_node_ = config_.compute_nodes;
  bb_master_node_ = config_.compute_nodes + 1;
  mds_node_ = config_.compute_nodes + 2;
  const net::NodeId oss_base = config_.compute_nodes + 3;
  const net::NodeId kv_base = oss_base + config_.oss_count;

  // HDFS stack (sockets hub).
  hdfs::DataNodeParams dn_params;
  dn_params.disk = config_.node_disk;
  for (const net::NodeId n : compute_nodes_) {
    datanodes_.push_back(
        std::make_unique<hdfs::DataNode>(*hdfs_hub_, n, dn_params));
  }
  hdfs::NameNodeParams nn_params;
  nn_params.default_replication = config_.hdfs_replication;
  nn_params.default_block_size = config_.block_size;
  namenode_ = std::make_unique<hdfs::NameNode>(*hdfs_hub_, namenode_node_,
                                               compute_nodes_, nn_params);
  hdfs::HdfsClientParams hdfs_client;
  hdfs_client.block_size = config_.block_size;
  hdfs_fs_ = std::make_unique<hdfs::HdfsFileSystem>(*hdfs_hub_, namenode_node_,
                                                    hdfs_client);

  // Lustre stack (verbs hub).
  std::vector<lustre::OstTarget> targets;
  lustre::OssParams oss_params = config_.oss;
  oss_params.ost_count = config_.osts_per_oss;
  for (std::uint32_t i = 0; i < config_.oss_count; ++i) {
    const net::NodeId node = oss_base + i;
    osses_.push_back(std::make_unique<lustre::Oss>(*fast_hub_, node,
                                                   oss_params));
    for (std::uint32_t t = 0; t < config_.osts_per_oss; ++t) {
      targets.push_back({node, t});
    }
  }
  mds_ = std::make_unique<lustre::Mds>(*fast_hub_, mds_node_, targets,
                                       config_.mds);
  lustre::LustreFsParams lustre_fs_params;
  lustre_fs_params.nominal_block_size = config_.block_size;
  lustre_fs_ = std::make_unique<lustre::LustreFileSystem>(
      *fast_hub_, mds_node_, lustre_fs_params);

  // Burst-buffer stack (verbs hub).
  kv::ServerParams kv_params;
  kv_params.store.memory_budget = config_.kv_memory_per_server;
  kv_params.store.shard_count = config_.kv_shards;
  kv_params.persist_writes = config_.kv_persist_writes;
  kv_params.journal = config_.kv_journal;
  for (std::uint32_t i = 0; i < config_.kv_servers; ++i) {
    const net::NodeId node = kv_base + i;
    kv_servers_.push_back(
        std::make_unique<kv::Server>(*fast_hub_, node, kv_params));
    kv_nodes_.push_back(node);
  }
  std::map<net::NodeId, bb::NodeAgent*> agent_map;
  if (config_.scheme == bb::Scheme::kLocal) {
    bb::AgentParams agent_params;
    agent_params.ramdisk_bytes = config_.ramdisk_bytes;
    for (const net::NodeId n : compute_nodes_) {
      agents_.push_back(
          std::make_unique<bb::NodeAgent>(*fast_hub_, n, agent_params));
      agent_map[n] = agents_.back().get();
    }
  }
  bb::MasterParams master_params;
  master_params.block_size = config_.block_size;
  master_params.chunk_size = config_.chunk_size;
  master_params.flusher_count = config_.flusher_count;
  master_params.flowctl = config_.bb_flowctl;
  master_params.buffer_capacity_bytes =
      config_.kv_memory_per_server * config_.kv_servers;
  master_params.heartbeat_interval_ns = config_.bb_heartbeat_interval_ns;
  master_params.suspect_after = config_.bb_suspect_after;
  master_params.dead_after = config_.bb_dead_after;
  master_params.kv_client = config_.kv_client;
  master_params.scrub = config_.bb_scrub;
  master_params.md = config_.bb_md;
  bb_master_ = std::make_unique<bb::Master>(*fast_hub_, bb_master_node_,
                                            kv_nodes_, mds_node_,
                                            config_.scheme, master_params);
  bb::BbFsParams bb_params;
  bb_params.scheme = config_.scheme;
  bb_params.block_size = config_.block_size;
  bb_params.chunk_size = config_.chunk_size;
  bb_params.promote_on_read = config_.bb_promote_on_read;
  bb_params.kv_client = config_.kv_client;
  bb_fs_ = std::make_unique<bb::BurstBufferFileSystem>(
      *fast_hub_, bb_master_node_, kv_nodes_, mds_node_, agent_map, bb_params);

  // Fault injection: KV servers are crash targets (process dies, node drops
  // off the fabric, restarts empty); OSS devices and KV journal SSDs are
  // limpware targets. Passive unless config.faults.enabled.
  injector_ = std::make_unique<faults::FaultInjector>(sim_, config_.faults);
  injector_->arm_fabric(*fabric_);
  for (std::uint32_t i = 0; i < config_.kv_servers; ++i) {
    kv::Server* server = kv_servers_[i].get();
    net::Fabric* fabric = fabric_.get();
    const net::NodeId node = server->node();
    injector_->add_crash_target(
        "kv" + std::to_string(i),
        [server, fabric, node] {
          server->crash();
          fabric->set_node_up(node, false);
        },
        [server, fabric, node] {
          fabric->set_node_up(node, true);
          server->restart();
        });
    if (storage::Device* journal = server->journal_device();
        journal != nullptr) {
      injector_->add_device_target("kv" + std::to_string(i) + ".journal",
                                   journal);
    }
    // KV slabs are corruption targets: scheduled bit-flips / torn writes /
    // stale reads land on resident values, to be caught by verified reads.
    injector_->add_corrupt_target(
        "kv" + std::to_string(i),
        [server](const std::string& object, std::uint64_t selector,
                 CorruptKind kind) {
          return server->store().corrupt_one(selector, kind, object);
        });
  }
  for (std::uint32_t i = 0; i < config_.oss_count; ++i) {
    injector_->add_device_target("oss" + std::to_string(i),
                                 &osses_[i]->device());
    // OSS object stores serve the hook installed by their LocalStore.
    storage::Device* device = &osses_[i]->device();
    injector_->add_corrupt_target(
        "oss" + std::to_string(i),
        [device](const std::string& object, std::uint64_t selector,
                 CorruptKind kind) {
          return device->corrupt(object, selector, kind);
        });
  }
  // DataNode disks route corrupt_block (and scheduled corruption) through
  // the injector so HDFS corruption ticks faults.injected{kind=corrupt.*}.
  for (auto& dn : datanodes_) dn->attach_fault_injector(injector_.get());
  // The BB master is a control-plane crash target (faults.master.*): the
  // process dies and the node drops off the fabric, so in-flight client
  // RPCs fail over to the RetryPolicy; restart runs journal recovery.
  {
    bb::Master* master = bb_master_.get();
    net::Fabric* fabric = fabric_.get();
    const net::NodeId node = bb_master_node_;
    injector_->add_master_target(
        "bb_master",
        [master, fabric, node] {
          master->crash();
          fabric->set_node_up(node, false);
        },
        [master, fabric, node] {
          fabric->set_node_up(node, true);
          master->restart();
        });
  }
  injector_->start();
}

Cluster::~Cluster() = default;

fs::FileSystem& Cluster::filesystem(FsKind kind) {
  switch (kind) {
    case FsKind::kHdfs: return *hdfs_fs_;
    case FsKind::kLustre: return *lustre_fs_;
    case FsKind::kBurstBuffer: return *bb_fs_;
  }
  return *hdfs_fs_;
}

std::unique_ptr<mapred::JobRunner> Cluster::make_runner(FsKind kind) {
  return std::make_unique<mapred::JobRunner>(hub_for(kind), filesystem(kind),
                                             compute_nodes_, config_.mapred);
}

std::uint64_t Cluster::local_bytes_used(std::uint32_t i) const {
  std::uint64_t total = datanodes_[i]->used_bytes();
  if (i < agents_.size()) total += agents_[i]->used_bytes();
  return total;
}

std::uint64_t Cluster::total_local_bytes_used() const {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < config_.compute_nodes; ++i) {
    total += local_bytes_used(i);
  }
  return total;
}

}  // namespace hpcbb::cluster
