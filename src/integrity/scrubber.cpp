#include "integrity/scrubber.h"

#include <span>
#include <utility>

#include "common/crc32c.h"
#include "common/metrics.h"

namespace hpcbb::integrity {

Scrubber::Scrubber(net::RpcHub& hub, net::NodeId node,
                   std::vector<net::NodeId> kv_servers, net::NodeId lustre_mds,
                   const kv::ClientParams& client_params,
                   const ScrubParams& params, std::string lustre_prefix)
    : hub_(&hub),
      node_(node),
      kv_(hub, node, std::move(kv_servers), client_params),
      lustre_(hub, lustre_mds),
      params_(params),
      lustre_prefix_(std::move(lustre_prefix)) {}

void Scrubber::start() {
  if (params_.interval_ns == 0 || !inventory_) return;
  hub_->transport().fabric().simulation().spawn(run());
}

sim::Task<void> Scrubber::run() {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  for (;;) {
    co_await sim.delay(params_.interval_ns);
    if (stop_) co_return;
    co_await scrub_pass();
    if (stop_) co_return;
  }
}

sim::Task<void> Scrubber::pace_begin(std::uint64_t bytes) {
  if (flowctl_ != nullptr && flowctl_->enabled()) {
    (void)co_await flowctl_->admit(bytes);
  }
}

void Scrubber::pace_end(std::uint64_t bytes) {
  if (flowctl_ != nullptr && flowctl_->enabled()) {
    flowctl_->release_reservation(bytes);
  }
}

sim::Task<void> Scrubber::scrub_pass() {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  MetricRegistry& metrics = sim.metrics();
  const sim::SimTime start = sim.now();
  ++passes_;
  metrics.counter("kv.scrub.passes").add();

  // Snapshot once: chunks sealed after this point get verified next pass.
  const std::vector<ScrubChunk> snapshot = inventory_();
  for (const ScrubChunk& chunk : snapshot) {
    if (stop_) break;
    co_await pace_begin(chunk.padded_len);
    if (params_.chunk_pace_ns > 0) co_await sim.delay(params_.chunk_pace_ns);
    const std::uint64_t op_id = sim.next_op_id();

    // The verified-read client walks replicas, repairs corrupt copies
    // inline at R>1, and only reports kDataLoss when EVERY buffer copy is
    // corrupt. kNotFound means the (clean, durable) chunk was evicted —
    // nothing resident to scrub.
    Result<BytesPtr> data = co_await kv_.get(chunk.key, op_id);
    if (!data.is_ok() && data.code() != StatusCode::kDataLoss) {
      pace_end(chunk.padded_len);
      continue;  // evicted or transient outage; re-probed next pass
    }
    metrics.counter("kv.scrub.chunks").add();
    metrics.counter("kv.scrub.bytes").add(chunk.logical_len);

    bool bad = true;
    if (data.is_ok()) {
      // Defense in depth past the KV item checksum: the value must match
      // what the WRITER sealed, not merely be internally consistent.
      const Bytes& bytes = *data.value();
      bad = bytes.size() < chunk.logical_len ||
            crc32c(std::span<const std::uint8_t>(
                bytes.data(), chunk.logical_len)) != chunk.crc;
    }
    if (bad) {
      bool fixed = false;
      if (chunk.durable) fixed = co_await repair_from_lustre(chunk, op_id);
      if (fixed) {
        ++repaired_;
        metrics.counter("kv.scrub.repaired").add();
      } else {
        ++unrepairable_;
        metrics.counter("kv.scrub.unrepairable").add();
        // Only unflushed data can be quarantined: a durable block's reads
        // fall through to Lustre, so its bad buffer copy is a cache
        // problem, not a data-loss one.
        if (!chunk.durable && quarantine_) {
          quarantine_(chunk.path, chunk.block_index);
        }
      }
    }
    pace_end(chunk.padded_len);
  }
  metrics.histogram("kv.scrub.pass_ns").record(sim.now() - start);
}

sim::Task<bool> Scrubber::repair_from_lustre(ScrubChunk chunk,
                                             std::uint64_t op_id) {
  auto layout = co_await lustre_.lookup(node_, lustre_prefix_ + chunk.path);
  if (!layout.is_ok()) co_return false;
  Result<Bytes> data = co_await lustre_.read(
      node_, layout.value(), chunk.lustre_offset, chunk.logical_len, op_id);
  if (!data.is_ok()) co_return false;
  if (crc32c(data.value()) != chunk.crc) co_return false;  // Lustre bad too
  Bytes padded = std::move(data).value();
  padded.resize(chunk.padded_len, 0);  // uniform slab class
  Status st = co_await kv_.set(chunk.key, make_bytes(std::move(padded)),
                               /*pinned=*/false, /*expiry_ns=*/0, op_id);
  co_return st.is_ok();
}

}  // namespace hpcbb::integrity
