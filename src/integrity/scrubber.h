// Background integrity scrubber: a credit-paced walker that periodically
// re-reads every sealed burst-buffer chunk, verifies it against the
// writer-registered CRC, and drives repair:
//
//   * at R>1 the verified-read client repairs a corrupt replica inline
//     (read-repair, kv.integrity.repaired);
//   * a chunk corrupt on every buffer copy but already durable is re-read
//     from Lustre, re-verified, and written back (kv.scrub.repaired);
//   * a chunk corrupt on every copy and NOT yet durable is unrepairable —
//     the owning block is quarantined so the flusher never persists the
//     corrupt bytes to Lustre (kv.scrub.unrepairable).
//
// Scrub traffic is paced through the owner's flowctl credits exactly like
// replication recovery: each in-flight probe holds an admission credit for
// its footprint, so scrubbing yields to foreground writers.
//
// Telemetry (simulation MetricRegistry): kv.scrub.passes / chunks / bytes /
// repaired / unrepairable counters and the kv.scrub.pass_ns histogram.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flowctl/controller.h"
#include "kvstore/client.h"
#include "lustre/client.h"
#include "net/rpc.h"
#include "sim/task.h"

namespace hpcbb::integrity {

struct ScrubParams {
  // Delay between scrub passes; 0 disables the scrubber entirely.
  sim::SimTime interval_ns = 0;
  // Optional fixed delay between chunk probes, on top of flowctl credits.
  sim::SimTime chunk_pace_ns = 0;
};

// One scrubbable chunk as the metadata owner (the BB master) sees it.
struct ScrubChunk {
  std::string key;                  // KV key of the chunk
  std::string path;                 // owning file
  std::uint32_t block_index = 0;
  std::uint32_t chunk_index = 0;
  std::uint32_t crc = 0;            // writer-registered CRC (logical bytes)
  std::uint64_t logical_len = 0;    // unpadded length within the block
  std::uint64_t padded_len = 0;     // slab-class footprint (pacing credit)
  std::uint64_t lustre_offset = 0;  // absolute file offset of this chunk
  bool durable = false;             // block is kFlushed: Lustre can repair
  bool pinned = false;              // dirty-block chunks stay pinned
};

class Scrubber {
 public:
  // Chunk inventory snapshot, taken at the start of every pass.
  using Inventory = std::function<std::vector<ScrubChunk>()>;
  // An unrepairable, not-yet-durable block: quarantine it.
  using Quarantine =
      std::function<void(const std::string& path, std::uint32_t block_index)>;

  Scrubber(net::RpcHub& hub, net::NodeId node,
           std::vector<net::NodeId> kv_servers, net::NodeId lustre_mds,
           const kv::ClientParams& client_params, const ScrubParams& params,
           std::string lustre_prefix);

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  void set_inventory(Inventory fn) { inventory_ = std::move(fn); }
  void set_quarantine(Quarantine fn) { quarantine_ = std::move(fn); }
  // Optional pacing: each in-flight probe holds an admission credit.
  void set_flow_control(flowctl::CapacityController* fc) { flowctl_ = fc; }

  // Spawns the periodic pass loop (no-op when interval is 0 or no
  // inventory is wired).
  void start();
  // Ends the loop; like the master's heartbeat, it wakes at most once more.
  void stop() noexcept { stop_ = true; }

  [[nodiscard]] std::uint64_t passes() const noexcept { return passes_; }
  [[nodiscard]] std::uint64_t repaired() const noexcept { return repaired_; }
  [[nodiscard]] std::uint64_t unrepairable() const noexcept {
    return unrepairable_;
  }

 private:
  sim::Task<void> run();
  sim::Task<void> scrub_pass();
  // Re-read the chunk's logical bytes from Lustre, verify, write back to
  // the buffer (unpinned: the block is durable). False if Lustre cannot
  // produce a verified copy.
  sim::Task<bool> repair_from_lustre(ScrubChunk chunk, std::uint64_t op_id);
  sim::Task<void> pace_begin(std::uint64_t bytes);
  void pace_end(std::uint64_t bytes);

  net::RpcHub* hub_;
  net::NodeId node_;
  kv::Client kv_;
  lustre::LustreClient lustre_;
  ScrubParams params_;
  std::string lustre_prefix_;

  Inventory inventory_;
  Quarantine quarantine_;
  flowctl::CapacityController* flowctl_ = nullptr;
  bool stop_ = false;
  std::uint64_t passes_ = 0;
  std::uint64_t repaired_ = 0;
  std::uint64_t unrepairable_ = 0;
};

}  // namespace hpcbb::integrity
