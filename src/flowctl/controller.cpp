#include "flowctl/controller.h"

#include <algorithm>
#include <cassert>

namespace hpcbb::flowctl {

FlowControlParams FlowControlParams::from_properties(
    const Properties& props, FlowControlParams defaults) {
  FlowControlParams params = defaults;
  params.capacity_bytes =
      props.get_u64_or("bb.flowctl.capacity", params.capacity_bytes);
  params.low_watermark =
      props.get_double_or("bb.flowctl.low", params.low_watermark);
  params.high_watermark =
      props.get_double_or("bb.flowctl.high", params.high_watermark);
  params.critical_watermark =
      props.get_double_or("bb.flowctl.critical", params.critical_watermark);
  params.background_pace_ns =
      props.get_u64_or("bb.flowctl.pace_us",
                       params.background_pace_ns / duration::us) *
      duration::us;
  return params;
}

FlowControlParams FlowControlParams::from_properties(const Properties& props) {
  return from_properties(props, FlowControlParams{});
}

CapacityController::CapacityController(sim::Simulation& sim,
                                       const FlowControlParams& params,
                                       std::uint32_t trace_track)
    : sim_(&sim),
      params_(params),
      trace_track_(trace_track),
      evictions_(sim),
      drained_(sim) {
  // Watermarks must be sane fractions in non-decreasing order.
  params_.low_watermark = std::clamp(params_.low_watermark, 0.0, 1.0);
  params_.high_watermark =
      std::clamp(params_.high_watermark, params_.low_watermark, 1.0);
  params_.critical_watermark =
      std::clamp(params_.critical_watermark, params_.high_watermark, 1.0);
}

Pressure CapacityController::band(std::uint64_t bytes) const noexcept {
  if (!enabled()) return Pressure::kNormal;
  if (bytes >= critical_bytes()) return Pressure::kCritical;
  if (bytes >= high_bytes()) return Pressure::kUrgent;
  if (bytes >= low_bytes()) return Pressure::kElevated;
  return Pressure::kNormal;
}

Pressure CapacityController::pressure() const noexcept {
  return band(usage_bytes());
}

sim::Task<sim::SimTime> CapacityController::admit(std::uint64_t bytes,
                                                  std::uint64_t op_id) {
  if (!enabled()) co_return 0;
  const sim::SimTime start = sim_->now();
  bool stalled = false;
  std::size_t span = 0;
  for (;;) {
    // A lone block always gets in (even one larger than the watermark), so
    // a writer can never wedge with zero credits outstanding.
    if (reserved_ + dirty_ == 0) break;
    // Eviction-before-rejection: reclaim clean space first; only stall if
    // the dirty backlog itself is the problem.
    reclaim(bytes);
    if (reserved_ + dirty_ + bytes <= high_bytes() &&
        usage_bytes() + bytes <= critical_bytes()) {
      break;
    }
    if (!stalled) {
      stalled = true;
      sim_->metrics().counter("flowctl.stalls").add();
      if (trace_ != nullptr) {
        span = trace_->begin("flowctl.stall", "flowctl", trace_track_, op_id);
      }
    }
    co_await drained_.wait();
  }
  reserved_ += bytes;
  peak_dirty_ = std::max(peak_dirty_, reserved_ + dirty_);
  peak_usage_ = std::max(peak_usage_, usage_bytes());
  publish_gauges();
  const sim::SimTime waited = sim_->now() - start;
  if (stalled) {
    if (trace_ != nullptr) trace_->end(span);
    sim_->metrics().histogram("flowctl.stall_ns").record(waited);
  }
  co_return waited;
}

void CapacityController::release_reservation(std::uint64_t bytes) {
  if (!enabled()) return;
  reserved_ -= std::min(reserved_, bytes);
  note_usage_changed();
}

void CapacityController::reservation_to_dirty(std::uint64_t reserved_bytes,
                                              std::uint64_t footprint_bytes) {
  if (!enabled()) return;
  reserved_ -= std::min(reserved_, reserved_bytes);
  dirty_ += footprint_bytes;
  peak_dirty_ = std::max(peak_dirty_, reserved_ + dirty_);
  peak_usage_ = std::max(peak_usage_, usage_bytes());
  publish_gauges();
  // Dirty may be smaller than the reservation (short tail block): freed
  // headroom can admit a stalled writer.
  if (footprint_bytes < reserved_bytes) note_usage_changed();
}

void CapacityController::reservation_to_clean(std::uint64_t reserved_bytes,
                                              const std::string& id,
                                              std::uint64_t footprint_bytes) {
  if (!enabled()) return;
  reserved_ -= std::min(reserved_, reserved_bytes);
  dirty_ += footprint_bytes;  // momentarily, for a single accounting path
  dirty_to_clean(id, footprint_bytes);
}

void CapacityController::dirty_to_clean(const std::string& id,
                                        std::uint64_t footprint_bytes) {
  if (!enabled()) return;
  dirty_ -= std::min(dirty_, footprint_bytes);
  if (footprint_bytes > 0 && !clean_index_.contains(id)) {
    clean_ += footprint_bytes;
    clean_lru_.push_front(CleanBlock{id, footprint_bytes});
    clean_index_[id] = clean_lru_.begin();
    peak_usage_ = std::max(peak_usage_, usage_bytes());
  }
  // Flush progress is the drain stalled writers wait for; evict down to the
  // high watermark first so the freed space is real.
  reclaim(0);
  note_usage_changed();
}

void CapacityController::drop_dirty(std::uint64_t footprint_bytes) {
  if (!enabled()) return;
  dirty_ -= std::min(dirty_, footprint_bytes);
  note_usage_changed();
}

void CapacityController::forget_clean(const std::string& id) {
  if (!enabled()) return;
  const auto it = clean_index_.find(id);
  if (it == clean_index_.end()) return;
  clean_ -= std::min(clean_, it->second->bytes);
  clean_lru_.erase(it->second);
  clean_index_.erase(it);
  note_usage_changed();
}

void CapacityController::touch_clean(const std::string& id) {
  if (!enabled()) return;
  const auto it = clean_index_.find(id);
  if (it == clean_index_.end()) return;
  clean_lru_.splice(clean_lru_.begin(), clean_lru_, it->second);
}

void CapacityController::reset_accounting() {
  reserved_ = 0;
  dirty_ = 0;
  clean_ = 0;
  clean_lru_.clear();
  clean_index_.clear();
  CleanBlock dropped;
  while (evictions_.try_recv(dropped)) {
  }
  forced_urgent_ = false;
  // Works even with flow control disabled: publish_gauges/notify are cheap
  // and the counters are already zero in that mode.
  if (enabled()) publish_gauges();
  drained_.notify_all();
}

void CapacityController::reclaim(std::uint64_t incoming) {
  while (usage_bytes() + incoming > high_bytes() && !clean_lru_.empty()) {
    evict_lru_block();
  }
}

void CapacityController::evict_lru_block() {
  assert(!clean_lru_.empty());
  CleanBlock victim = std::move(clean_lru_.back());
  clean_lru_.pop_back();
  clean_index_.erase(victim.id);
  clean_ -= std::min(clean_, victim.bytes);
  sim_->metrics().counter("flowctl.evicted_bytes").add(victim.bytes);
  sim_->metrics().counter("flowctl.evicted_blocks").add();
  evictions_.push(std::move(victim));
  note_usage_changed();
}

void CapacityController::note_usage_changed() {
  publish_gauges();
  drained_.notify_all();
}

void CapacityController::publish_gauges() {
  if (!enabled()) return;
  auto& metrics = sim_->metrics();
  metrics.gauge("bb.dirty_bytes").set(dirty_);
  metrics.gauge("bb.clean_bytes").set(clean_);
  metrics.gauge("bb.reserved_bytes").set(reserved_);
}

sim::SimTime CapacityController::flush_pace() const noexcept {
  if (forced_urgent_) return 0;
  if (!enabled()) return 0;
  switch (band(reserved_ + dirty_)) {
    case Pressure::kNormal: return params_.background_pace_ns;
    case Pressure::kElevated: return params_.background_pace_ns / 4;
    case Pressure::kUrgent:
    case Pressure::kCritical: return 0;
  }
  return 0;
}

void CapacityController::note_flush_begin() {
  if (forced_urgent_) {
    sim_->metrics().counter("flowctl.urgent_flushes").add();
    return;
  }
  if (!enabled()) return;
  if (band(reserved_ + dirty_) >= Pressure::kUrgent) {
    sim_->metrics().counter("flowctl.urgent_flushes").add();
  }
}

}  // namespace hpcbb::flowctl
