// Flow control for the burst buffer: watermark-driven capacity management
// over the KV servers' aggregate memory.
//
// The buffer only works because KV memory absorbs write bursts faster than
// Lustre drains them — which means a sustained burst must be actively
// managed or dirty bytes grow without bound. The CapacityController owns
// that policy end-to-end:
//
//   * accounting — every buffer-resident byte is classified as `reserved`
//     (a writer holds an admission credit for a block in progress), `dirty`
//     (sealed, not yet durable on Lustre), or `clean` (flushed, still
//     resident so reads stay at RDMA speed);
//   * flush escalation — flushers drain at a background pace below the low
//     watermark and flat-out ("urgent") once dirty+reserved bytes cross the
//     high watermark;
//   * clean-block eviction — an LRU over flushed blocks reclaims space the
//     moment usage exceeds the high watermark; clean blocks remain readable
//     from Lustre, so eviction never loses data;
//   * writer backpressure — block admission is credit-based: a writer's
//     AddBlock is *delayed* (never rejected) while dirty+reserved credits
//     would cross the high watermark or total usage would cross the
//     critical watermark after eviction has been tried. Stalls release as
//     flushes drain dirty bytes.
//
// Telemetry: `flowctl.stall_ns` histogram (per-stall duration),
// `flowctl.stalls`, `flowctl.evicted_bytes`, `flowctl.evicted_blocks`, and
// `flowctl.urgent_flushes` counters in the simulation's MetricRegistry,
// plus "flowctl"-category spans on an attached TraceRecorder.
//
// A zero capacity disables the subsystem entirely (seed behaviour: admit
// everything, never pace, never evict).
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/properties.h"
#include "common/units.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/trace.h"

namespace hpcbb::flowctl {

// Pressure bands over buffer usage, split by the configured watermarks.
enum class Pressure {
  kNormal,    // usage below the low watermark
  kElevated,  // low <= usage < high
  kUrgent,    // high <= usage < critical
  kCritical,  // usage >= critical
};

constexpr std::string_view to_string(Pressure p) noexcept {
  switch (p) {
    case Pressure::kNormal: return "normal";
    case Pressure::kElevated: return "elevated";
    case Pressure::kUrgent: return "urgent";
    case Pressure::kCritical: return "critical";
  }
  return "?";
}

struct FlowControlParams {
  // Aggregate buffer capacity under management; 0 disables flow control.
  std::uint64_t capacity_bytes = 0;
  // Watermarks as fractions of capacity. low <= high <= critical enforced
  // at construction.
  double low_watermark = 0.50;
  double high_watermark = 0.75;
  double critical_watermark = 0.90;
  // Background flush pacing: below the low watermark each flush waits this
  // long before touching Lustre (leave drain bandwidth to foreground
  // readers); between low and high the pace quarters; at or above high the
  // flusher drains flat out.
  sim::SimTime background_pace_ns = 500 * duration::us;

  // Reads bb.flowctl.* keys over `defaults`:
  //   bb.flowctl.low / high / critical  (fractions)
  //   bb.flowctl.pace_us                (background pace, microseconds)
  //   bb.flowctl.capacity               (bytes, accepts k/m/g suffixes)
  static FlowControlParams from_properties(const Properties& props,
                                           FlowControlParams defaults);
  static FlowControlParams from_properties(const Properties& props);
};

// A flushed-but-resident block, eligible for eviction. `bytes` is the
// block's buffer footprint (chunk-padded), so owners can recompute the
// chunk count as bytes / chunk_size.
struct CleanBlock {
  std::string id;  // owner-defined, e.g. "<path>#<block_index>"
  std::uint64_t bytes = 0;
};

class CapacityController {
 public:
  CapacityController(sim::Simulation& sim, const FlowControlParams& params,
                     std::uint32_t trace_track = 0);

  CapacityController(const CapacityController&) = delete;
  CapacityController& operator=(const CapacityController&) = delete;

  [[nodiscard]] bool enabled() const noexcept {
    return params_.capacity_bytes != 0;
  }
  [[nodiscard]] const FlowControlParams& params() const noexcept {
    return params_;
  }

  // ---- writer admission (credit-based backpressure) ----
  // Acquire an admission credit for a block of `bytes`. Evicts clean blocks
  // before ever stalling; stalls (never rejects) while dirty+reserved
  // credits would cross the high watermark or total usage would cross the
  // critical watermark. Returns the stalled time in ns (0 = admitted
  // immediately). `op_id` tags the credit-wait stall span so latency
  // attribution can charge the wait to the operation that incurred it.
  sim::Task<sim::SimTime> admit(std::uint64_t bytes, std::uint64_t op_id = 0);
  // Return an unused credit (block abandoned before it was sealed).
  void release_reservation(std::uint64_t bytes);

  // ---- block lifecycle accounting ----
  // Sealed block: the credit becomes `footprint_bytes` of dirty data.
  void reservation_to_dirty(std::uint64_t reserved_bytes,
                            std::uint64_t footprint_bytes);
  // Write-through block (BB-Sync): the credit becomes clean data directly.
  void reservation_to_clean(std::uint64_t reserved_bytes,
                            const std::string& id,
                            std::uint64_t footprint_bytes);
  // Flush completed: dirty bytes become clean and join the eviction LRU.
  void dirty_to_clean(const std::string& id, std::uint64_t footprint_bytes);
  // Dirty block left the buffer without becoming clean (lost or deleted).
  void drop_dirty(std::uint64_t footprint_bytes);
  // Clean block left the buffer (file deleted); no-op if already evicted.
  void forget_clean(const std::string& id);
  // Keep a hot clean block resident (LRU touch); no-op if absent.
  void touch_clean(const std::string& id);
  // Master crash: all credits, dirty bytes, and clean-LRU entries are
  // volatile master state and die with it. Zeroes the accounting (peak
  // high-watermarks survive — they are run-level telemetry), drains the
  // eviction queue, and wakes stalled writers so their admission waits can
  // fail over to the retry path instead of wedging. Recovery rebuilds the
  // dirty/clean totals from replayed metadata via reservation_to_dirty /
  // reservation_to_clean with a zero reserved component.
  void reset_accounting();

  // ---- eviction ----
  // Blocks the controller decided to evict. The owner drains this channel
  // and erases the block's chunks from the KV servers; the bytes are
  // already un-accounted when a block appears here.
  [[nodiscard]] sim::Channel<CleanBlock>& evictions() noexcept {
    return evictions_;
  }

  // ---- flush scheduling ----
  // Pacing delay the flusher should apply before its next flush.
  [[nodiscard]] sim::SimTime flush_pace() const noexcept;
  // Call when a flush starts; counts flowctl.urgent_flushes when escalated.
  void note_flush_begin();
  // Failure-mode escalation: while set, flushers drain flat-out regardless
  // of the pressure band — at-risk dirty blocks must reach Lustre before
  // another buffer server fails. Driven by the BB master's failure
  // detector; independent of the watermark machinery (works even when flow
  // control is disabled).
  void force_urgent(bool urgent) noexcept { forced_urgent_ = urgent; }
  [[nodiscard]] bool forced_urgent() const noexcept { return forced_urgent_; }

  // ---- introspection ----
  [[nodiscard]] std::uint64_t reserved_bytes() const noexcept {
    return reserved_;
  }
  [[nodiscard]] std::uint64_t dirty_bytes() const noexcept { return dirty_; }
  [[nodiscard]] std::uint64_t clean_bytes() const noexcept { return clean_; }
  [[nodiscard]] std::uint64_t usage_bytes() const noexcept {
    return reserved_ + dirty_ + clean_;
  }
  // High-water marks of dirty+reserved and of total usage over the run.
  [[nodiscard]] std::uint64_t peak_dirty_bytes() const noexcept {
    return peak_dirty_;
  }
  [[nodiscard]] std::uint64_t peak_usage_bytes() const noexcept {
    return peak_usage_;
  }
  [[nodiscard]] std::uint64_t high_bytes() const noexcept {
    return watermark_bytes(params_.high_watermark);
  }
  [[nodiscard]] std::uint64_t low_bytes() const noexcept {
    return watermark_bytes(params_.low_watermark);
  }
  [[nodiscard]] std::uint64_t critical_bytes() const noexcept {
    return watermark_bytes(params_.critical_watermark);
  }
  [[nodiscard]] Pressure pressure() const noexcept;
  [[nodiscard]] std::size_t clean_block_count() const noexcept {
    return clean_lru_.size();
  }

  void set_trace(sim::TraceRecorder* recorder) noexcept { trace_ = recorder; }

 private:
  [[nodiscard]] std::uint64_t watermark_bytes(double fraction) const noexcept {
    return static_cast<std::uint64_t>(
        fraction * static_cast<double>(params_.capacity_bytes));
  }
  [[nodiscard]] Pressure band(std::uint64_t bytes) const noexcept;
  // Evict LRU clean blocks until usage + incoming fits under the high
  // watermark (or no clean blocks remain).
  void reclaim(std::uint64_t incoming);
  void evict_lru_block();
  void note_usage_changed();
  // Mirror the internal byte accounting into registry gauges
  // (bb.dirty_bytes / bb.clean_bytes / bb.reserved_bytes) so samplers and
  // reports see buffer pressure without reaching into the controller.
  void publish_gauges();

  sim::Simulation* sim_;
  FlowControlParams params_;
  std::uint32_t trace_track_;
  sim::TraceRecorder* trace_ = nullptr;

  bool forced_urgent_ = false;
  std::uint64_t reserved_ = 0;
  std::uint64_t dirty_ = 0;
  std::uint64_t clean_ = 0;
  std::uint64_t peak_dirty_ = 0;
  std::uint64_t peak_usage_ = 0;

  // front = most recently flushed/touched; back = eviction victim.
  std::list<CleanBlock> clean_lru_;
  std::unordered_map<std::string, std::list<CleanBlock>::iterator>
      clean_index_;

  sim::Channel<CleanBlock> evictions_;
  sim::Condition drained_;
};

}  // namespace hpcbb::flowctl
