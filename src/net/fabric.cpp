#include "net/fabric.h"

#include <algorithm>
#include <cassert>

namespace hpcbb::net {

namespace {
sim::SimTime serialization_ns(std::uint64_t bytes,
                              std::uint64_t bytes_per_sec) noexcept {
  return transfer_time_ns(bytes, bytes_per_sec);
}
}  // namespace

Fabric::Fabric(sim::Simulation& sim, std::uint32_t node_count,
               const FabricParams& params)
    : sim_(&sim), params_(params), links_(node_count) {
  racks_.resize(rack_count());
  cpu_.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    // CPU work is measured in nanoseconds; one dedicated protocol-processing
    // core per node => 1e9 ns of work per second.
    cpu_.push_back(
        std::make_unique<sim::BandwidthQueue>(sim, duration::sec));
  }
}

sim::Task<Status> Fabric::deliver(NodeId src, NodeId dst, std::uint64_t bytes,
                                  std::uint64_t flow_rate_cap) {
  assert(src < links_.size() && dst < links_.size());
  if (!links_[src].up || !links_[dst].up) {
    // Connection setup/teardown detection is not free.
    co_await sim_->delay(params_.hop_latency_ns);
    co_return error(StatusCode::kUnavailable,
                    links_[dst].up ? "source node down" : "peer node down");
  }

  if (fault_hook_) {
    const LinkFault fault = fault_hook_(src, dst, bytes);
    if (fault.extra_delay_ns > 0) co_await sim_->delay(fault.extra_delay_ns);
    if (fault.drop) {
      // The sender learns of the loss the way it would for a dead peer:
      // after the connection-probe latency, with a transient error.
      co_await sim_->delay(params_.hop_latency_ns);
      co_return error(StatusCode::kUnavailable,
                      "transient fault: message dropped");
    }
  }

  links_[src].bytes_sent += bytes;
  links_[dst].bytes_received += bytes;

  if (src == dst) {
    // FIFO serialization on the node's memory path: a small message
    // submitted after a large one must not overtake it, or same-connection
    // protocol streams (HDFS pipelines) would reorder.
    NodeLink& link = links_[src];
    const sim::SimTime start = std::max(sim_->now(), link.loopback_next_free);
    link.loopback_next_free =
        start + serialization_ns(bytes, params_.loopback_bytes_per_sec);
    co_await sim_->delay_until(link.loopback_next_free +
                               params_.loopback_latency_ns);
    co_return Status::ok();
  }

  const std::uint64_t rate =
      flow_rate_cap == 0
          ? params_.link_bytes_per_sec
          : std::min(params_.link_bytes_per_sec, flow_rate_cap);
  const sim::SimTime ser = serialization_ns(bytes, rate);
  const sim::SimTime now = sim_->now();

  NodeLink& s = links_[src];
  NodeLink& d = links_[dst];
  const sim::SimTime start_up = std::max(now, s.up_next_free);
  s.up_next_free = start_up + ser;

  // Cut-through: the head of the message reaches the next hop one latency
  // after it starts leaving the previous one; the tail cannot arrive before
  // it left. Cross-rack traffic additionally serializes on the shared rack
  // uplink and downlink (oversubscription) and pays the spine latency.
  sim::SimTime head = start_up + params_.hop_latency_ns;
  sim::SimTime tail = start_up + ser + params_.hop_latency_ns;
  if (rack_of(src) != rack_of(dst)) {
    const sim::SimTime rack_ser =
        serialization_ns(bytes, params_.rack_uplink_bytes_per_sec);
    RackLink& src_rack = racks_[rack_of(src)];
    RackLink& dst_rack = racks_[rack_of(dst)];
    const sim::SimTime start_rack_up = std::max(head, src_rack.up_next_free);
    src_rack.up_next_free = start_rack_up + rack_ser;
    const sim::SimTime at_spine =
        start_rack_up + params_.spine_latency_ns;
    const sim::SimTime start_rack_down =
        std::max(at_spine, dst_rack.down_next_free);
    dst_rack.down_next_free = start_rack_down + rack_ser;
    head = start_rack_down + params_.spine_latency_ns;
    tail = std::max(tail, start_rack_down + rack_ser +
                              params_.spine_latency_ns);
  }
  const sim::SimTime start_down = std::max(head, d.down_next_free);
  d.down_next_free = start_down + ser;
  const sim::SimTime completion = std::max(start_down + ser, tail);

  co_await sim_->delay_until(completion);
  co_return Status::ok();
}

void Fabric::set_node_up(NodeId node, bool up) {
  assert(node < links_.size());
  links_[node].up = up;
}

bool Fabric::is_up(NodeId node) const {
  assert(node < links_.size());
  return links_[node].up;
}

sim::Task<void> Fabric::charge_cpu(NodeId node, sim::SimTime work_ns) {
  assert(node < cpu_.size());
  return cpu_[node]->transfer(work_ns);
}

std::uint64_t Fabric::bytes_sent(NodeId node) const {
  return links_[node].bytes_sent;
}

std::uint64_t Fabric::bytes_received(NodeId node) const {
  return links_[node].bytes_received;
}

}  // namespace hpcbb::net
