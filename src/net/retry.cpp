#include "net/retry.h"

namespace hpcbb::net {

RetryPolicy RetryPolicy::from_properties(const Properties& props,
                                         RetryPolicy defaults) {
  RetryPolicy p = defaults;
  p.max_attempts = static_cast<std::uint32_t>(
      props.get_u64_or("net.retry.max_attempts", p.max_attempts));
  if (p.max_attempts == 0) p.max_attempts = 1;
  p.timeout_ns =
      props.get_u64_or("net.retry.timeout_us", p.timeout_ns / duration::us) *
      duration::us;
  p.backoff_base_ns = props.get_u64_or("net.retry.backoff_us",
                                       p.backoff_base_ns / duration::us) *
                      duration::us;
  p.backoff_max_ns = props.get_u64_or("net.retry.backoff_max_us",
                                      p.backoff_max_ns / duration::us) *
                     duration::us;
  p.backoff_multiplier =
      props.get_double_or("net.retry.multiplier", p.backoff_multiplier);
  p.jitter_seed = props.get_u64_or("net.retry.jitter_seed", p.jitter_seed);
  p.retry_non_idempotent =
      props.get_bool_or("net.retry.non_idempotent", p.retry_non_idempotent);
  return p;
}

RetryPolicy RetryPolicy::from_properties(const Properties& props) {
  return from_properties(props, RetryPolicy{});
}

}  // namespace hpcbb::net
