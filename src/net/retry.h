// Retry policy for RPC calls: per-call timeout, bounded retries, and
// exponential backoff with deterministic jitter.
//
// The default-constructed policy is a strict no-op (single attempt, no
// timeout), so wiring it through RpcHub changes nothing until a caller
// opts in — runs with resilience disabled stay bit-identical to the seed.
//
// Jitter is derived from (seed, src, dst, port, attempt) through SplitMix64
// rather than from a shared stream, so the backoff of one call never depends
// on how many other calls retried before it. Chaos runs replay exactly.
#pragma once

#include <cstdint>

#include "common/properties.h"
#include "common/rng.h"
#include "common/units.h"
#include "sim/simulation.h"

namespace hpcbb::net {

struct RetryPolicy {
  // Total attempts (first try included). 1 = never retry (seed behaviour).
  std::uint32_t max_attempts = 1;
  // Per-attempt deadline; 0 = wait for the transport verdict, however long.
  sim::SimTime timeout_ns = 0;
  // Backoff before attempt k (k >= 2): base * multiplier^(k-2), capped at
  // backoff_max_ns, plus jitter in [0, backoff of that attempt / 2].
  sim::SimTime backoff_base_ns = 200 * duration::us;
  sim::SimTime backoff_max_ns = 50 * duration::ms;
  double backoff_multiplier = 2.0;
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;
  // Retry calls flagged non-idempotent too (off: they get one attempt, the
  // safe default — a lost ack must not duplicate a side effect).
  bool retry_non_idempotent = false;

  [[nodiscard]] bool is_noop() const noexcept {
    return max_attempts <= 1 && timeout_ns == 0;
  }

  // Backoff delay before the given attempt (2 = first retry), jittered
  // deterministically per (src, dst, port, attempt).
  [[nodiscard]] sim::SimTime backoff_ns(std::uint32_t attempt,
                                        std::uint64_t src, std::uint64_t dst,
                                        std::uint64_t port) const noexcept {
    if (attempt < 2) return 0;
    double backoff = static_cast<double>(backoff_base_ns);
    for (std::uint32_t k = 2; k < attempt; ++k) backoff *= backoff_multiplier;
    const double capped =
        backoff < static_cast<double>(backoff_max_ns)
            ? backoff
            : static_cast<double>(backoff_max_ns);
    const auto base = static_cast<sim::SimTime>(capped);
    SplitMix64 sm(jitter_seed ^ (src << 40) ^ (dst << 24) ^ (port << 8) ^
                  attempt);
    const sim::SimTime half = base / 2;
    return base + (half == 0 ? 0 : sm.next() % (half + 1));
  }

  // Reads net.retry.* keys over `defaults`:
  //   net.retry.max_attempts              (total attempts)
  //   net.retry.timeout_us                (per-attempt deadline)
  //   net.retry.backoff_us / backoff_max_us / multiplier
  //   net.retry.jitter_seed
  //   net.retry.non_idempotent            (bool)
  static RetryPolicy from_properties(const Properties& props,
                                     RetryPolicy defaults);
  static RetryPolicy from_properties(const Properties& props);
};

// Only transient transport-level failures are worth re-attempting; every
// other code is an application verdict that a retry would just repeat.
[[nodiscard]] constexpr bool retryable(StatusCode code) noexcept {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

}  // namespace hpcbb::net
