// RPC layer over Transport.
//
// Handlers run as coroutines in the caller's chain: server processing time,
// device waits, and nested RPCs all accrue to the simulated clock naturally.
// Because everything lives in one host process, request/response bodies move
// by shared_ptr while the *wire* cost is modeled from each message's
// declared wire size.
//
// Failure semantics: if the destination node is down (Fabric) or nothing is
// bound to the port (service stopped), the call completes with kUnavailable
// after the connection-attempt latency — callers never hang.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "net/transport.h"
#include "sim/task.h"

namespace hpcbb::net {

using Port = std::uint16_t;

struct RpcResponse {
  Status status;
  std::shared_ptr<const void> body;  // null on error responses
  std::uint64_t wire_bytes = 64;     // headers-only reply by default
};

template <typename T>
RpcResponse rpc_ok(std::shared_ptr<const T> body, std::uint64_t wire_bytes) {
  return RpcResponse{Status::ok(), std::move(body), wire_bytes};
}

inline RpcResponse rpc_error(Status status) {
  return RpcResponse{std::move(status), nullptr, 64};
}

class RpcHub {
 public:
  using Handler =
      std::function<sim::Task<RpcResponse>(std::shared_ptr<const void>)>;

  explicit RpcHub(Transport& transport) noexcept : transport_(&transport) {}

  RpcHub(const RpcHub&) = delete;
  RpcHub& operator=(const RpcHub&) = delete;

  // Register a service endpoint. Binding an occupied endpoint is a bug.
  void bind(NodeId node, Port port, Handler handler) {
    const auto [it, inserted] =
        handlers_.emplace(endpoint_key(node, port), std::move(handler));
    (void)it;
    assert(inserted && "endpoint already bound");
  }

  void unbind(NodeId node, Port port) {
    handlers_.erase(endpoint_key(node, port));
  }

  [[nodiscard]] bool is_bound(NodeId node, Port port) const {
    return handlers_.contains(endpoint_key(node, port));
  }

  [[nodiscard]] Transport& transport() noexcept { return *transport_; }

  // Untyped call; the typed wrapper below is what services use. Every call
  // (success or error) lands in the "net.rpc" latency histogram.
  sim::Task<RpcResponse> call_raw(NodeId src, NodeId dst, Port port,
                                  std::shared_ptr<const void> request,
                                  std::uint64_t request_wire_bytes) {
    sim::Simulation& sim = transport_->fabric().simulation();
    const sim::SimTime start = sim.now();
    RpcResponse response = co_await call_raw_impl(
        src, dst, port, std::move(request), request_wire_bytes);
    sim.metrics().histogram("net.rpc").record(sim.now() - start);
    sim.metrics().counter("net.rpc.calls").add();
    co_return response;
  }

  // Typed call: Req must expose wire_size(). Returns the typed body or the
  // first error encountered (transport or application).
  template <typename Resp, typename Req>
  sim::Task<Result<std::shared_ptr<const Resp>>> call(
      NodeId src, NodeId dst, Port port, std::shared_ptr<const Req> request) {
    const std::uint64_t wire = request->wire_size();
    RpcResponse response =
        co_await call_raw(src, dst, port, std::move(request), wire);
    if (!response.status.is_ok()) co_return response.status;
    co_return std::static_pointer_cast<const Resp>(response.body);
  }

 private:
  sim::Task<RpcResponse> call_raw_impl(NodeId src, NodeId dst, Port port,
                                       std::shared_ptr<const void> request,
                                       std::uint64_t request_wire_bytes) {
    Status st = co_await transport_->send(src, dst, request_wire_bytes);
    if (!st.is_ok()) co_return rpc_error(std::move(st));

    const auto it = handlers_.find(endpoint_key(dst, port));
    if (it == handlers_.end()) {
      co_return rpc_error(
          error(StatusCode::kUnavailable, "connection refused"));
    }
    RpcResponse response = co_await it->second(std::move(request));

    st = co_await transport_->send(dst, src, response.wire_bytes);
    if (!st.is_ok()) co_return rpc_error(std::move(st));
    co_return response;
  }

  static std::uint64_t endpoint_key(NodeId node, Port port) noexcept {
    return (static_cast<std::uint64_t>(node) << 16) | port;
  }

  Transport* transport_;
  std::unordered_map<std::uint64_t, Handler> handlers_;
};

// Adapts a typed handler (Task<RpcResponse>(shared_ptr<const Req>)) to the
// untyped Handler signature.
template <typename Req, typename F>
RpcHub::Handler typed_handler(F fn) {
  return [fn = std::move(fn)](
             std::shared_ptr<const void> request) -> sim::Task<RpcResponse> {
    return fn(std::static_pointer_cast<const Req>(std::move(request)));
  };
}

}  // namespace hpcbb::net
