// RPC layer over Transport.
//
// Handlers run as coroutines in the caller's chain: server processing time,
// device waits, and nested RPCs all accrue to the simulated clock naturally.
// Because everything lives in one host process, request/response bodies move
// by shared_ptr while the *wire* cost is modeled from each message's
// declared wire size.
//
// Failure semantics: if the destination node is down (Fabric) or nothing is
// bound to the port (service stopped), the call completes with kUnavailable
// after the connection-attempt latency — callers never hang.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "net/retry.h"
#include "net/transport.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace hpcbb::net {

using Port = std::uint16_t;

struct RpcResponse {
  Status status;
  std::shared_ptr<const void> body;  // null on error responses
  std::uint64_t wire_bytes = 64;     // headers-only reply by default
  // True once the request reached a bound handler: from that point a retry
  // may duplicate the handler's side effect, so only idempotent calls may
  // re-attempt. False for failures on the request path (send error,
  // connection refused), which are always safe to retry.
  bool request_delivered = false;
};

template <typename T>
RpcResponse rpc_ok(std::shared_ptr<const T> body, std::uint64_t wire_bytes) {
  return RpcResponse{Status::ok(), std::move(body), wire_bytes};
}

inline RpcResponse rpc_error(Status status) {
  return RpcResponse{std::move(status), nullptr, 64};
}

// Per-call knobs for RpcHub::call. The defaults route through the hub-wide
// RetryPolicy; callers whose requests are unsafe to replay clear
// `idempotent` and get exactly one attempt on ambiguous failures.
struct CallOptions {
  bool idempotent = true;
  const RetryPolicy* policy = nullptr;  // null: use the hub-wide policy
};

class RpcHub {
 public:
  using Handler =
      std::function<sim::Task<RpcResponse>(std::shared_ptr<const void>)>;

  explicit RpcHub(Transport& transport) noexcept : transport_(&transport) {}

  RpcHub(const RpcHub&) = delete;
  RpcHub& operator=(const RpcHub&) = delete;

  // Register a service endpoint. Rebinding after unbind() is supported (a
  // restarted server reclaims its old port); binding a *currently occupied*
  // endpoint is a bug — two live services cannot share one port.
  void bind(NodeId node, Port port, Handler handler) {
    const auto [it, inserted] =
        handlers_.emplace(endpoint_key(node, port), std::move(handler));
    (void)it;
    assert(inserted && "endpoint already bound by a live service");
  }

  void unbind(NodeId node, Port port) {
    handlers_.erase(endpoint_key(node, port));
  }

  [[nodiscard]] bool is_bound(NodeId node, Port port) const {
    return handlers_.contains(endpoint_key(node, port));
  }

  [[nodiscard]] Transport& transport() noexcept { return *transport_; }

  // Hub-wide retry policy applied by call()/call_with_policy(). The default
  // policy is a no-op, so existing behaviour is unchanged until configured.
  void set_retry_policy(const RetryPolicy& policy) noexcept {
    retry_policy_ = policy;
  }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return retry_policy_;
  }

  // Untyped call; the typed wrapper below is what services use. Every call
  // (success or error) lands in the "net.rpc" latency histogram.
  sim::Task<RpcResponse> call_raw(NodeId src, NodeId dst, Port port,
                                  std::shared_ptr<const void> request,
                                  std::uint64_t request_wire_bytes) {
    sim::Simulation& sim = transport_->fabric().simulation();
    const sim::SimTime start = sim.now();
    RpcResponse response = co_await call_raw_impl(
        src, dst, port, std::move(request), request_wire_bytes);
    sim.metrics().histogram("net.rpc").record(sim.now() - start);
    sim.metrics().counter("net.rpc.calls").add();
    co_return response;
  }

  // Typed call: Req must expose wire_size(). Returns the typed body or the
  // last error encountered (transport or application). Transient failures
  // (kUnavailable, kTimeout) are retried per the effective RetryPolicy.
  template <typename Resp, typename Req>
  sim::Task<Result<std::shared_ptr<const Resp>>> call(
      NodeId src, NodeId dst, Port port, std::shared_ptr<const Req> request,
      CallOptions options = {}) {
    const std::uint64_t wire = request->wire_size();
    RpcResponse response = co_await call_with_policy(
        src, dst, port, std::move(request), wire, options);
    if (!response.status.is_ok()) co_return response.status;
    co_return std::static_pointer_cast<const Resp>(response.body);
  }

  // Untyped call with retry/timeout semantics. With a no-op policy this is
  // exactly call_raw — same event sequence, same metrics — so runs without
  // resilience configured stay bit-identical.
  sim::Task<RpcResponse> call_with_policy(NodeId src, NodeId dst, Port port,
                                          std::shared_ptr<const void> request,
                                          std::uint64_t request_wire_bytes,
                                          CallOptions options = {}) {
    const RetryPolicy policy =
        options.policy != nullptr ? *options.policy : retry_policy_;
    if (policy.is_noop()) {
      co_return co_await call_raw(src, dst, port, std::move(request),
                                  request_wire_bytes);
    }
    sim::Simulation& sim = transport_->fabric().simulation();
    for (std::uint32_t attempt = 1;; ++attempt) {
      RpcResponse response = co_await call_attempt(
          src, dst, port, request, request_wire_bytes, policy.timeout_ns);
      if (response.status.is_ok()) {
        if (attempt > 1) sim.metrics().counter("net.retry.recovered").add();
        co_return response;
      }
      const bool transient = retryable(response.status.code());
      const bool safe = options.idempotent || policy.retry_non_idempotent ||
                        !response.request_delivered;
      if (!transient || !safe) co_return response;
      if (attempt >= policy.max_attempts) {
        if (policy.max_attempts > 1) {
          sim.metrics().counter("net.retry.exhausted").add();
        }
        co_return response;
      }
      sim.metrics().counter("net.retry.attempts").add();
      const sim::SimTime backoff =
          policy.backoff_ns(attempt + 1, src, dst, port);
      if (backoff > 0) co_await sim.delay(backoff);
    }
  }

 private:
  // Shared state between one attempt's body, its timeout timer, and the
  // caller. shared_ptr-owned so an attempt abandoned at timeout can finish
  // (or stay blocked until teardown) without dangling.
  struct PendingCall {
    explicit PendingCall(sim::Simulation& sim) noexcept : done_cond(sim) {}
    sim::Condition done_cond;
    bool done = false;
    RpcResponse response;
  };

  static sim::Task<void> attempt_body(RpcHub* hub, NodeId src, NodeId dst,
                                      Port port,
                                      std::shared_ptr<const void> request,
                                      std::uint64_t wire,
                                      std::shared_ptr<PendingCall> pending) {
    RpcResponse response =
        co_await hub->call_raw(src, dst, port, std::move(request), wire);
    pending->response = std::move(response);
    pending->done = true;
    pending->done_cond.notify_all();
  }

  static sim::Task<void> attempt_timer(sim::Simulation* sim,
                                       sim::SimTime delay_ns,
                                       std::shared_ptr<PendingCall> pending) {
    co_await sim->delay(delay_ns);
    if (!pending->done) pending->done_cond.notify_all();
  }

  // One attempt, optionally bounded by a deadline. On timeout the in-flight
  // call is abandoned, not cancelled — like a real network, the server may
  // still execute the request — so timeouts report request_delivered=true
  // and only idempotent calls retry after one.
  sim::Task<RpcResponse> call_attempt(NodeId src, NodeId dst, Port port,
                                      std::shared_ptr<const void> request,
                                      std::uint64_t wire,
                                      sim::SimTime timeout_ns) {
    if (timeout_ns == 0) {
      co_return co_await call_raw(src, dst, port, std::move(request), wire);
    }
    sim::Simulation& sim = transport_->fabric().simulation();
    auto pending = std::make_shared<PendingCall>(sim);
    const sim::SimTime deadline = sim.now() + timeout_ns;
    sim.spawn(attempt_body(this, src, dst, port, std::move(request), wire,
                           pending));
    sim.spawn(attempt_timer(&sim, timeout_ns, pending));
    while (!pending->done && sim.now() < deadline) {
      co_await pending->done_cond.wait();
    }
    if (pending->done) co_return std::move(pending->response);
    sim.metrics().counter("net.retry.timeouts").add();
    RpcResponse timed_out = rpc_error(error(StatusCode::kTimeout,
                                            "rpc deadline exceeded"));
    timed_out.request_delivered = true;  // ambiguous: assume the worst
    co_return timed_out;
  }
  sim::Task<RpcResponse> call_raw_impl(NodeId src, NodeId dst, Port port,
                                       std::shared_ptr<const void> request,
                                       std::uint64_t request_wire_bytes) {
    Status st = co_await transport_->send(src, dst, request_wire_bytes);
    if (!st.is_ok()) co_return rpc_error(std::move(st));

    const auto it = handlers_.find(endpoint_key(dst, port));
    if (it == handlers_.end()) {
      co_return rpc_error(
          error(StatusCode::kUnavailable, "connection refused"));
    }
    RpcResponse response = co_await it->second(std::move(request));
    // From here the handler has executed: any failure is ambiguous for the
    // caller and must not be blindly re-attempted for non-idempotent calls.
    response.request_delivered = true;

    st = co_await transport_->send(dst, src, response.wire_bytes);
    if (!st.is_ok()) {
      RpcResponse reply_lost = rpc_error(std::move(st));
      reply_lost.request_delivered = true;
      co_return reply_lost;
    }
    co_return response;
  }

  static std::uint64_t endpoint_key(NodeId node, Port port) noexcept {
    return (static_cast<std::uint64_t>(node) << 16) | port;
  }

  Transport* transport_;
  RetryPolicy retry_policy_;
  std::unordered_map<std::uint64_t, Handler> handlers_;
};

// Adapts a typed handler (Task<RpcResponse>(shared_ptr<const Req>)) to the
// untyped Handler signature.
template <typename Req, typename F>
RpcHub::Handler typed_handler(F fn) {
  return [fn = std::move(fn)](
             std::shared_ptr<const void> request) -> sim::Task<RpcResponse> {
    return fn(std::static_pointer_cast<const Req>(std::move(request)));
  };
}

}  // namespace hpcbb::net
