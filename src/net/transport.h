// Transport models layered on the fabric.
//
// Two-sided messaging (Memcached sockets path, HDFS data transfers, RPC)
// charges protocol-stack CPU at BOTH ends. One-sided RDMA READ/WRITE — the
// verbs path the paper's RDMA-Memcached uses for large values — charges CPU
// only at the initiator; the target NIC serves the transfer without
// involving the remote CPU.
//
// The preset parameters are calibrated against published OSU microbenchmark
// shapes for IB FDR (see EXPERIMENTS.md): RDMA small-message latency is
// ~10x lower than IPoIB/10GigE and large-message bandwidth ~4-5x higher.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "net/fabric.h"
#include "sim/simulation.h"

namespace hpcbb::net {

enum class TransportKind {
  kRdma,    // native InfiniBand verbs
  kIpoib,   // IP-over-InfiniBand (sockets on the IB link)
  kTenGigE, // 10 Gigabit Ethernet
  kGigE,    // 1 Gigabit Ethernet
};

std::string_view to_string(TransportKind kind) noexcept;

struct TransportParams {
  TransportKind kind = TransportKind::kRdma;
  sim::SimTime msg_latency_ns = 1'000;   // stack traversal, both ends total
  std::uint64_t flow_rate_cap = 0;       // 0 = full link rate
  sim::SimTime send_overhead_ns = 300;   // sender CPU per operation
  sim::SimTime recv_overhead_ns = 300;   // receiver CPU per operation
  bool one_sided_capable = false;        // RDMA READ/WRITE available
};

// Calibrated presets (EXPERIMENTS.md, "Calibration").
TransportParams transport_preset(TransportKind kind) noexcept;

class Transport {
 public:
  Transport(Fabric& fabric, const TransportParams& params) noexcept
      : fabric_(&fabric), params_(params) {}

  [[nodiscard]] const TransportParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] Fabric& fabric() noexcept { return *fabric_; }

  // Two-sided message: sender CPU + fabric + receiver CPU + stack latency.
  sim::Task<Status> send(NodeId src, NodeId dst, std::uint64_t bytes);

  // One-sided RDMA READ: fetch `bytes` from remote memory. Initiator CPU
  // only; a small request descriptor crosses the wire first.
  sim::Task<Status> rdma_read(NodeId initiator, NodeId target,
                              std::uint64_t bytes);

  // One-sided RDMA WRITE: push `bytes` into remote memory. Initiator CPU
  // only.
  sim::Task<Status> rdma_write(NodeId initiator, NodeId target,
                               std::uint64_t bytes);

 private:
  Fabric* fabric_;
  TransportParams params_;
};

}  // namespace hpcbb::net
