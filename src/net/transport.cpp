#include "net/transport.h"

namespace hpcbb::net {

std::string_view to_string(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kRdma: return "RDMA";
    case TransportKind::kIpoib: return "IPoIB";
    case TransportKind::kTenGigE: return "10GigE";
    case TransportKind::kGigE: return "1GigE";
  }
  return "?";
}

TransportParams transport_preset(TransportKind kind) noexcept {
  using namespace duration;  // NOLINT
  switch (kind) {
    case TransportKind::kRdma:
      return {.kind = kind,
              .msg_latency_ns = 1 * us,            // ~1.7 us end-to-end small msg
              .flow_rate_cap = 6'000 * MB,         // IB FDR effective
              .send_overhead_ns = 300,
              .recv_overhead_ns = 300,
              .one_sided_capable = true};
    case TransportKind::kIpoib:
      return {.kind = kind,
              .msg_latency_ns = 14 * us,
              .flow_rate_cap = 1'500 * MB,         // IPoIB typically ~25% of verbs
              .send_overhead_ns = 4 * us,
              .recv_overhead_ns = 4 * us,
              .one_sided_capable = false};
    case TransportKind::kTenGigE:
      return {.kind = kind,
              .msg_latency_ns = 35 * us,
              .flow_rate_cap = 1'150 * MB,
              .send_overhead_ns = 5 * us,
              .recv_overhead_ns = 5 * us,
              .one_sided_capable = false};
    case TransportKind::kGigE:
      return {.kind = kind,
              .msg_latency_ns = 55 * us,
              .flow_rate_cap = 118 * MB,
              .send_overhead_ns = 6 * us,
              .recv_overhead_ns = 6 * us,
              .one_sided_capable = false};
  }
  return {};
}

sim::Task<Status> Transport::send(NodeId src, NodeId dst,
                                  std::uint64_t bytes) {
  MetricRegistry& metrics = fabric_->simulation().metrics();
  metrics.counter("net.tx_bytes").add(bytes);
  metrics.counter("net.msgs").add();
  co_await fabric_->charge_cpu(src, params_.send_overhead_ns);
  Status st = co_await fabric_->deliver(src, dst, bytes, params_.flow_rate_cap);
  if (!st.is_ok()) co_return st;
  co_await fabric_->charge_cpu(dst, params_.recv_overhead_ns);
  co_await fabric_->simulation().delay(params_.msg_latency_ns);
  co_return Status::ok();
}

sim::Task<Status> Transport::rdma_read(NodeId initiator, NodeId target,
                                       std::uint64_t bytes) {
  if (!params_.one_sided_capable) {
    co_return error(StatusCode::kFailedPrecondition,
                    "transport has no one-sided support");
  }
  fabric_->simulation().metrics().counter("net.rdma_read_bytes").add(bytes);
  co_await fabric_->charge_cpu(initiator, params_.send_overhead_ns);
  // Read descriptor to the target NIC...
  Status st = co_await fabric_->deliver(initiator, target, 64,
                                        params_.flow_rate_cap);
  if (!st.is_ok()) co_return st;
  // ...and the data back, served by the target HCA without its CPU.
  st = co_await fabric_->deliver(target, initiator, bytes,
                                 params_.flow_rate_cap);
  if (!st.is_ok()) co_return st;
  co_await fabric_->simulation().delay(params_.msg_latency_ns);
  co_return Status::ok();
}

sim::Task<Status> Transport::rdma_write(NodeId initiator, NodeId target,
                                        std::uint64_t bytes) {
  if (!params_.one_sided_capable) {
    co_return error(StatusCode::kFailedPrecondition,
                    "transport has no one-sided support");
  }
  fabric_->simulation().metrics().counter("net.rdma_write_bytes").add(bytes);
  co_await fabric_->charge_cpu(initiator, params_.send_overhead_ns);
  Status st = co_await fabric_->deliver(initiator, target, bytes,
                                        params_.flow_rate_cap);
  if (!st.is_ok()) co_return st;
  co_await fabric_->simulation().delay(params_.msg_latency_ns);
  co_return Status::ok();
}

}  // namespace hpcbb::net
