// Cluster fabric model: N nodes attached to a single non-blocking switch by
// full-duplex links. A message reserves FIFO serialization slots on the
// sender's uplink and the receiver's downlink (cut-through: serialization is
// counted once end-to-end on an idle path, but both links see contention).
//
// This reproduces the two network effects the paper's results hinge on:
//  * per-flow bandwidth and latency differ by transport (RDMA vs IPoIB ...),
//  * incast at hot receivers (burst-buffer servers, Lustre OSSs) queues.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace hpcbb::net {

using NodeId = std::uint32_t;

struct FabricParams {
  std::uint64_t link_bytes_per_sec = 6'000'000'000ull;  // IB FDR ~6 GB/s
  sim::SimTime hop_latency_ns = 700;     // wire + switch, one direction
  std::uint64_t loopback_bytes_per_sec = 12'000'000'000ull;  // memcpy speed
  sim::SimTime loopback_latency_ns = 300;

  // Two-level (leaf/spine) topology. 0 = flat single switch. With N > 0,
  // nodes [0,N) are rack 0, [N,2N) rack 1, ... Cross-rack traffic pays an
  // extra spine hop and shares the rack's uplink to the spine — the
  // oversubscription that makes rack-aware placement matter.
  std::uint32_t nodes_per_rack = 0;
  std::uint64_t rack_uplink_bytes_per_sec = 24'000'000'000ull;  // 4:1-ish
  sim::SimTime spine_latency_ns = 400;
};

// Verdict of the fault hook for one message: drop it (delivery fails with
// kUnavailable after the connection-probe latency, like a lost datagram) or
// stall it by an extra queueing delay before it enters the fabric.
struct LinkFault {
  bool drop = false;
  sim::SimTime extra_delay_ns = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulation& sim, std::uint32_t node_count,
         const FabricParams& params);

  // Install a per-message fault hook (fault injection). Consulted once per
  // deliver() before any fabric state changes; null (the default) keeps the
  // healthy path untouched. Both transports share the fabric, so one hook
  // covers all RPC and bulk traffic.
  using FaultHook =
      std::function<LinkFault(NodeId src, NodeId dst, std::uint64_t bytes)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }

  // Deliver `bytes` from src to dst; completes when the last byte arrives.
  // `flow_rate_cap` (0 = uncapped) models transports that cannot drive the
  // link at full rate (IPoIB, Ethernet). Fails kUnavailable if either node
  // is down at submission time.
  sim::Task<Status> deliver(NodeId src, NodeId dst, std::uint64_t bytes,
                            std::uint64_t flow_rate_cap = 0);

  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool is_up(NodeId node) const;

  // Rack of a node (always 0 on a flat fabric).
  [[nodiscard]] std::uint32_t rack_of(NodeId node) const noexcept {
    return params_.nodes_per_rack == 0 ? 0 : node / params_.nodes_per_rack;
  }
  [[nodiscard]] std::uint32_t rack_count() const noexcept {
    return params_.nodes_per_rack == 0
               ? 1
               : (node_count() + params_.nodes_per_rack - 1) /
                     params_.nodes_per_rack;
  }

  // Per-node CPU available for protocol processing. Transports charge their
  // per-operation overhead here, which creates the op-rate ceiling that
  // separates kernel-bypass RDMA from socket stacks.
  sim::Task<void> charge_cpu(NodeId node, sim::SimTime work_ns);

  [[nodiscard]] std::uint64_t bytes_sent(NodeId node) const;
  [[nodiscard]] std::uint64_t bytes_received(NodeId node) const;

  [[nodiscard]] sim::Simulation& simulation() noexcept { return *sim_; }

 private:
  struct NodeLink {
    sim::SimTime up_next_free = 0;
    sim::SimTime down_next_free = 0;
    sim::SimTime loopback_next_free = 0;  // FIFO: local sends must not reorder
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    bool up = true;
  };

  struct RackLink {
    sim::SimTime up_next_free = 0;    // rack -> spine
    sim::SimTime down_next_free = 0;  // spine -> rack
  };

  sim::Simulation* sim_;
  FabricParams params_;
  FaultHook fault_hook_;
  std::vector<NodeLink> links_;
  std::vector<RackLink> racks_;
  std::vector<std::unique_ptr<sim::BandwidthQueue>> cpu_;
};

}  // namespace hpcbb::net
