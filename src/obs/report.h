// Machine-readable experiment reports.
//
// report_json() renders the simulation's entire MetricRegistry — counters,
// gauges (with high-watermarks), histogram summaries (count/sum/min/max/mean
// and p50/p95/p99) — plus an optional sampled timeline, an optional per-op
// latency-attribution section, and an optional SLO health section into one
// JSON document. The schema is versioned ("hpcbb.report.v3"; v2 added
// "attribution", v3 added "health") so tools/report.py can pretty-print and
// diff reports across runs.
#pragma once

#include <string>

#include "sim/simulation.h"

namespace hpcbb::obs {

class TimeSeriesSampler;
class SpanAccountant;
class HealthMonitor;

// Current report schema identifier, embedded in every report.
inline constexpr const char* kReportSchema = "hpcbb.report.v3";

[[nodiscard]] std::string report_json(
    sim::Simulation& sim, const TimeSeriesSampler* sampler = nullptr,
    const SpanAccountant* attribution = nullptr,
    const HealthMonitor* health = nullptr);

// Writes `content` to `path`; returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace hpcbb::obs
