// Always-on flight recorder: bounded per-layer ring buffers of recent
// closed spans plus a shared ring of instant events (fault injections,
// failure-detector transitions, SLO alerts).
//
// Post-mortem tracing (TraceRecorder) retains every span of a run; that is
// the right tool for a Chrome-trace dump but the wrong one for an
// always-on monitor — an unbounded buffer is exactly what a long-lived
// deployment cannot afford. The flight recorder instead keeps the *recent
// past* under a fixed memory budget: when a ring is full the oldest entry
// is evicted (counted in `obs.flightrec.dropped` and per-ring), so at any
// instant the rings hold the freshest spans of each pipeline layer — the
// context an incident bundle needs when an SLO pages.
//
// Feeding it: chain it into TraceRecorder's span sink. Spans are routed to
// the ring of their attribution layer (SpanAccountant::layer_of, so the
// flight recorder and the latency-attribution engine agree on what "kv
// time" means); zero-length instants — how the fault injector, the
// master's failure detector, and the alert engine announce events — all
// land in one "events" ring regardless of category.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/trace.h"

namespace hpcbb::obs {

// One retained entry: a closed span or an instant event (begin == end).
struct FlightEntry {
  std::string name;
  std::string category;
  sim::SimTime begin_ns = 0;
  sim::SimTime end_ns = 0;
  std::uint32_t track = 0;
  std::uint64_t op_id = 0;

  [[nodiscard]] bool is_instant() const noexcept { return begin_ns == end_ns; }
};

class FlightRecorder {
 public:
  static constexpr std::uint64_t kDefaultBudgetBytes = 256 * 1024;
  // At most this many rings (pipeline layers + "events" + an "other"
  // overflow); the total budget is split evenly so one chatty layer cannot
  // starve the rest.
  static constexpr std::size_t kMaxRings = 12;
  static constexpr const char* kEventsRing = "events";
  static constexpr const char* kOverflowRing = "other";

  explicit FlightRecorder(sim::Simulation& sim,
                          std::uint64_t budget_bytes = kDefaultBudgetBytes);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // TraceRecorder span-sink hook. Open spans are ignored; instants go to
  // the events ring, real spans to their layer's ring.
  void on_span_close(const sim::TraceSpan& span);

  // Direct event insertion for producers without a TraceRecorder.
  void add_event(std::string name, std::string category,
                 std::uint64_t op_id = 0);

  [[nodiscard]] std::uint64_t budget_bytes() const noexcept {
    return budget_bytes_;
  }
  [[nodiscard]] std::uint64_t ring_budget_bytes() const noexcept {
    return ring_budget_;
  }
  [[nodiscard]] std::uint64_t dropped_total() const noexcept {
    return dropped_total_;
  }

  [[nodiscard]] std::vector<std::string> ring_names() const;
  // Entries oldest-first; nullptr when the ring does not exist (yet).
  [[nodiscard]] const std::deque<FlightEntry>* ring(
      const std::string& name) const;
  [[nodiscard]] std::uint64_t dropped(const std::string& ring_name) const;

  // Instant events of one category, oldest-first (e.g. "fault" — what the
  // incident bundle correlates a page against).
  [[nodiscard]] std::vector<FlightEntry> events(
      const std::string& category) const;
  // op_ids (sorted, unique) of retained spans covering `t_ns` — the
  // operations in flight when e.g. a fault hit.
  [[nodiscard]] std::vector<std::uint64_t> ops_active_at(
      sim::SimTime t_ns) const;

  // Full dump, on demand:
  // {"budget_bytes":..,"dropped":..,"rings":{name:{"dropped":..,
  //  "entries":[{"name":..,"category":..,"begin_ns":..,...}]}}}
  [[nodiscard]] std::string dump_json() const;

 private:
  struct Ring {
    std::deque<FlightEntry> entries;
    std::uint64_t bytes = 0;
    std::uint64_t dropped = 0;
  };

  static std::uint64_t cost_of(const FlightEntry& entry) noexcept;
  void push(const std::string& ring_name, FlightEntry entry);
  Ring& ring_for(const std::string& name);

  sim::Simulation* sim_;
  std::uint64_t budget_bytes_;
  std::uint64_t ring_budget_;
  std::uint64_t dropped_total_ = 0;
  std::map<std::string, Ring> rings_;
};

}  // namespace hpcbb::obs
