#include "obs/sampler.h"

#include <coroutine>
#include <utility>

#include "common/metrics.h"

namespace hpcbb::obs {

namespace {

// delay_until with a cancellation handle: stop() cancels the wakeup so a
// finished run does not wait out (and advance the clock by) one more tick.
struct CancellableDelayUntil {
  sim::Simulation& sim;
  sim::SimTime wake_time;
  std::uint64_t* token;
  bool* pending;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) {
    *token = sim.schedule_cancellable(wake_time, handle);
    *pending = true;
  }
  void await_resume() const noexcept { *pending = false; }
};

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(sim::Simulation& sim,
                                     sim::SimTime interval_ns)
    : sim_(sim), interval_ns_(interval_ns == 0 ? 1 : interval_ns) {}

void TimeSeriesSampler::add_observer(Observer observer) {
  observers_.push_back(std::move(observer));
}

void TimeSeriesSampler::add_probe(std::string name, Probe probe) {
  names_.push_back(std::move(name));
  probes_.push_back(std::move(probe));
}

void TimeSeriesSampler::watch_counter(const std::string& name) {
  Counter* counter = &sim_.metrics().counter(name);
  add_probe(name, [counter] { return counter->get(); });
}

void TimeSeriesSampler::watch_gauge(const std::string& name) {
  Gauge* gauge = &sim_.metrics().gauge(name);
  add_probe(name, [gauge] { return gauge->get(); });
}

void TimeSeriesSampler::start() {
  if (started_) return;
  started_ = true;
  sample_now();
  sim_.spawn(run_loop());
}

void TimeSeriesSampler::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (tick_pending_) {
    sim_.cancel(tick_token_);
    tick_pending_ = false;
  }
  if (started_) {
    in_stop_ = true;
    sample_now();
    in_stop_ = false;
  }
}

void TimeSeriesSampler::sample_now() {
  TimelinePoint point;
  point.t_ns = sim_.now();
  point.values.reserve(probes_.size());
  for (const auto& probe : probes_) point.values.push_back(probe());
  if (!timeline_.empty() && timeline_.back().t_ns == point.t_ns) {
    timeline_.back() = std::move(point);
  } else {
    timeline_.push_back(std::move(point));
  }
  for (const Observer& observer : observers_) {
    observer(timeline_.back(), in_stop_);
  }
}

sim::Task<void> TimeSeriesSampler::run_loop() {
  while (!stopped_) {
    const sim::SimTime next_tick =
        (sim_.now() / interval_ns_ + 1) * interval_ns_;
    co_await CancellableDelayUntil{sim_, next_tick, &tick_token_,
                                   &tick_pending_};
    if (stopped_) break;  // unreachable while stop() cancels, kept as a belt
    sample_now();
  }
}

std::string TimeSeriesSampler::to_csv() const {
  std::string out = "t_ns";
  for (const std::string& name : names_) {
    out += ',';
    out += name;
  }
  out += '\n';
  for (const TimelinePoint& point : timeline_) {
    out += std::to_string(point.t_ns);
    for (const std::uint64_t value : point.values) {
      out += ',';
      out += std::to_string(value);
    }
    out += '\n';
  }
  return out;
}

std::string TimeSeriesSampler::to_json() const {
  std::string out =
      "{\"interval_ns\":" + std::to_string(interval_ns_) + ",\"series\":[";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i != 0) out += ',';
    out += '"' + names_[i] + '"';
  }
  out += "],\"points\":[";
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    const TimelinePoint& point = timeline_[i];
    if (i != 0) out += ',';
    out += "{\"t_ns\":" + std::to_string(point.t_ns) + ",\"values\":[";
    for (std::size_t j = 0; j < point.values.size(); ++j) {
      if (j != 0) out += ',';
      out += std::to_string(point.values[j]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace hpcbb::obs
