#include "obs/attribution.h"

#include <algorithm>
#include <string_view>

#include "common/metrics.h"
#include "obs/json.h"

namespace hpcbb::obs {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

void append_hist(std::string& out, const HistogramSnapshot& h) {
  out += "{\"count\":" + std::to_string(h.count) +
         ",\"sum\":" + std::to_string(h.sum) +
         ",\"min\":" + std::to_string(h.min) +
         ",\"max\":" + std::to_string(h.max) +
         ",\"mean\":" + json_double(h.mean) +
         ",\"p50\":" + std::to_string(h.p50) +
         ",\"p95\":" + std::to_string(h.p95) +
         ",\"p99\":" + std::to_string(h.p99) + "}";
}

void append_layers(std::string& out, const std::vector<LayerSlice>& layers) {
  out += '[';
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerSlice& slice = layers[i];
    if (i != 0) out += ',';
    out += "{\"layer\":\"" + json_escape(slice.layer) +
           "\",\"total_ns\":" + std::to_string(slice.total_ns) +
           ",\"queue_ns\":" + std::to_string(slice.queue_ns) +
           ",\"service_ns\":" + std::to_string(slice.service_ns) + "}";
  }
  out += ']';
}

}  // namespace

std::string SpanAccountant::layer_of(const sim::TraceSpan& span) {
  if (span.category == "bb") {
    // "bb" spans cover both ends of the burst-buffer pipeline: the client's
    // write/read spans and the master's flush pipeline.
    if (starts_with(span.name, "flush.") ||
        starts_with(span.name, "wait.flush")) {
      return "flusher";
    }
    return "client";
  }
  return span.category;
}

bool SpanAccountant::is_queue(const sim::TraceSpan& span) {
  return starts_with(span.name, "wait.") ||
         starts_with(span.name, "flowctl.stall");
}

void SpanAccountant::on_span_close(const sim::TraceSpan& span) {
  if (span.op_id == 0 || span.end_ns == sim::kOpenSentinel) return;
  by_op_[span.op_id].push_back(span);
}

void SpanAccountant::ingest(const sim::TraceRecorder& recorder) {
  for (const sim::TraceSpan& span : recorder.spans()) on_span_close(span);
}

OpAttribution SpanAccountant::attribute(std::uint64_t op_id) const {
  OpAttribution op;
  op.op_id = op_id;
  const auto it = by_op_.find(op_id);
  if (it == by_op_.end()) return op;
  const std::vector<sim::TraceSpan>& spans = it->second;
  op.span_count = spans.size();

  op.begin_ns = spans.front().begin_ns;
  op.end_ns = spans.front().end_ns;
  std::vector<sim::SimTime> cuts;
  cuts.reserve(spans.size() * 2);
  for (const sim::TraceSpan& span : spans) {
    op.begin_ns = std::min(op.begin_ns, span.begin_ns);
    op.end_ns = std::max(op.end_ns, span.end_ns);
    cuts.push_back(span.begin_ns);
    cuts.push_back(span.end_ns);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Partition [begin, end] at every span boundary and hand each elementary
  // segment to the innermost covering span. The partition is exact, so the
  // per-layer sums below always add up to e2e_ns().
  std::map<std::string, LayerSlice> acc;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const sim::SimTime a = cuts[i];
    const sim::SimTime b = cuts[i + 1];
    const sim::TraceSpan* inner = nullptr;
    for (const sim::TraceSpan& span : spans) {
      if (span.begin_ns > a || span.end_ns < b) continue;
      // Innermost: latest begin, then earliest end, then the span opened
      // later (higher ingestion index) — deterministic under exact ties.
      if (inner == nullptr || span.begin_ns > inner->begin_ns ||
          (span.begin_ns == inner->begin_ns && span.end_ns <= inner->end_ns)) {
        inner = &span;
      }
    }
    const std::string layer = inner != nullptr ? layer_of(*inner) : "idle";
    const bool queue = inner != nullptr ? is_queue(*inner) : true;
    LayerSlice& slice = acc[layer];
    slice.layer = layer;
    slice.total_ns += b - a;
    (queue ? slice.queue_ns : slice.service_ns) += b - a;
  }

  op.layers.reserve(acc.size());
  sim::SimTime bottleneck_ns = 0;
  for (auto& [layer, slice] : acc) {
    // Strictly-greater over the name-sorted map: ties keep the
    // lexicographically first layer, so the verdict is deterministic.
    if (op.bottleneck.empty() || slice.total_ns > bottleneck_ns) {
      op.bottleneck = layer;
      bottleneck_ns = slice.total_ns;
    }
    op.layers.push_back(std::move(slice));
  }
  return op;
}

std::vector<OpAttribution> SpanAccountant::attribute_all() const {
  std::vector<OpAttribution> ops;
  ops.reserve(by_op_.size());
  for (const auto& [op_id, spans] : by_op_) ops.push_back(attribute(op_id));
  return ops;
}

std::vector<OpAttribution> SpanAccountant::slowest(std::size_t k) const {
  std::vector<OpAttribution> ops = attribute_all();
  std::sort(ops.begin(), ops.end(),
            [](const OpAttribution& lhs, const OpAttribution& rhs) {
              if (lhs.e2e_ns() != rhs.e2e_ns()) {
                return lhs.e2e_ns() > rhs.e2e_ns();
              }
              return lhs.op_id < rhs.op_id;
            });
  if (ops.size() > k) ops.resize(k);
  return ops;
}

std::string SpanAccountant::to_json() const {
  // Per-layer aggregates across all ops.
  struct LayerAgg {
    std::uint64_t ops = 0;
    std::uint64_t bottleneck_ops = 0;
    sim::SimTime total_ns = 0;
    sim::SimTime queue_ns = 0;
    sim::SimTime service_ns = 0;
    Histogram total_hist;  // per-op total_ns in this layer
    Histogram queue_hist;  // per-op queue_ns in this layer
  };
  std::map<std::string, LayerAgg> layers;
  const std::vector<OpAttribution> ops = attribute_all();
  for (const OpAttribution& op : ops) {
    for (const LayerSlice& slice : op.layers) {
      LayerAgg& agg = layers[slice.layer];
      ++agg.ops;
      agg.total_ns += slice.total_ns;
      agg.queue_ns += slice.queue_ns;
      agg.service_ns += slice.service_ns;
      agg.total_hist.record(slice.total_ns);
      agg.queue_hist.record(slice.queue_ns);
    }
    if (!op.bottleneck.empty()) ++layers[op.bottleneck].bottleneck_ops;
  }

  std::string out = "{\"op_count\":" + std::to_string(ops.size());
  out += ",\"layers\":{";
  bool first = true;
  for (const auto& [name, agg] : layers) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) +
           "\":{\"ops\":" + std::to_string(agg.ops) +
           ",\"bottleneck_ops\":" + std::to_string(agg.bottleneck_ops) +
           ",\"total_ns\":" + std::to_string(agg.total_ns) +
           ",\"queue_ns\":" + std::to_string(agg.queue_ns) +
           ",\"service_ns\":" + std::to_string(agg.service_ns) + ",\"total\":";
    append_hist(out, agg.total_hist.snapshot());
    out += ",\"queue\":";
    append_hist(out, agg.queue_hist.snapshot());
    out += '}';
  }
  out += '}';

  out += ",\"top_ops\":[";
  const std::vector<OpAttribution> top = slowest(top_k_);
  for (std::size_t i = 0; i < top.size(); ++i) {
    const OpAttribution& op = top[i];
    if (i != 0) out += ',';
    out += "{\"op_id\":" + std::to_string(op.op_id) +
           ",\"begin_ns\":" + std::to_string(op.begin_ns) +
           ",\"end_ns\":" + std::to_string(op.end_ns) +
           ",\"e2e_ns\":" + std::to_string(op.e2e_ns()) +
           ",\"bottleneck\":\"" + json_escape(op.bottleneck) +
           "\",\"layers\":";
    append_layers(out, op.layers);

    // Full span chain for drill-down, in chronological order.
    std::vector<sim::TraceSpan> chain = by_op_.at(op.op_id);
    std::sort(chain.begin(), chain.end(),
              [](const sim::TraceSpan& lhs, const sim::TraceSpan& rhs) {
                if (lhs.begin_ns != rhs.begin_ns) {
                  return lhs.begin_ns < rhs.begin_ns;
                }
                if (lhs.end_ns != rhs.end_ns) return lhs.end_ns > rhs.end_ns;
                return lhs.name < rhs.name;
              });
    out += ",\"spans\":[";
    for (std::size_t j = 0; j < chain.size(); ++j) {
      const sim::TraceSpan& span = chain[j];
      if (j != 0) out += ',';
      out += "{\"name\":\"" + json_escape(span.name) +
             "\",\"layer\":\"" + json_escape(layer_of(span)) +
             "\",\"track\":" + std::to_string(span.track) +
             ",\"begin_ns\":" + std::to_string(span.begin_ns) +
             ",\"end_ns\":" + std::to_string(span.end_ns) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace hpcbb::obs
