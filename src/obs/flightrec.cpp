#include "obs/flightrec.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "obs/attribution.h"
#include "obs/json.h"

namespace hpcbb::obs {

FlightRecorder::FlightRecorder(sim::Simulation& sim,
                               std::uint64_t budget_bytes)
    : sim_(&sim),
      budget_bytes_(std::max<std::uint64_t>(budget_bytes, 4096)),
      ring_budget_(std::max<std::uint64_t>(budget_bytes_ / kMaxRings, 512)) {
  // The events ring exists from the start so layer rings can never claim
  // its slot: fault/detector/alert events are the entries an incident
  // bundle cannot do without.
  rings_[kEventsRing];
}

std::uint64_t FlightRecorder::cost_of(const FlightEntry& entry) noexcept {
  // Fixed overhead (timestamps, ids, deque slot) plus the string payloads.
  return 64 + entry.name.size() + entry.category.size();
}

FlightRecorder::Ring& FlightRecorder::ring_for(const std::string& name) {
  const auto it = rings_.find(name);
  if (it != rings_.end()) return it->second;
  if (rings_.size() >= kMaxRings) return rings_[kOverflowRing];
  return rings_[name];
}

void FlightRecorder::push(const std::string& ring_name, FlightEntry entry) {
  Ring& ring = ring_for(ring_name);
  ring.bytes += cost_of(entry);
  ring.entries.push_back(std::move(entry));
  // Evict oldest-first down to the budget, but always retain the newest
  // entry even if it alone exceeds the ring's share.
  while (ring.bytes > ring_budget_ && ring.entries.size() > 1) {
    ring.bytes -= cost_of(ring.entries.front());
    ring.entries.pop_front();
    ++ring.dropped;
    ++dropped_total_;
    sim_->metrics().counter("obs.flightrec.dropped").add();
  }
}

void FlightRecorder::on_span_close(const sim::TraceSpan& span) {
  if (span.end_ns == sim::kOpenSentinel) return;
  FlightEntry entry{span.name, span.category, span.begin_ns,
                    span.end_ns,  span.track,    span.op_id};
  if (entry.is_instant()) {
    push(kEventsRing, std::move(entry));
  } else {
    push(SpanAccountant::layer_of(span), std::move(entry));
  }
}

void FlightRecorder::add_event(std::string name, std::string category,
                               std::uint64_t op_id) {
  const sim::SimTime now = sim_->now();
  push(kEventsRing, FlightEntry{std::move(name), std::move(category), now,
                                now, 0, op_id});
}

std::vector<std::string> FlightRecorder::ring_names() const {
  std::vector<std::string> names;
  names.reserve(rings_.size());
  for (const auto& [name, ring] : rings_) names.push_back(name);
  return names;
}

const std::deque<FlightEntry>* FlightRecorder::ring(
    const std::string& name) const {
  const auto it = rings_.find(name);
  return it == rings_.end() ? nullptr : &it->second.entries;
}

std::uint64_t FlightRecorder::dropped(const std::string& ring_name) const {
  const auto it = rings_.find(ring_name);
  return it == rings_.end() ? 0 : it->second.dropped;
}

std::vector<FlightEntry> FlightRecorder::events(
    const std::string& category) const {
  std::vector<FlightEntry> out;
  const auto it = rings_.find(kEventsRing);
  if (it == rings_.end()) return out;
  for (const FlightEntry& entry : it->second.entries) {
    if (entry.category == category) out.push_back(entry);
  }
  return out;
}

std::vector<std::uint64_t> FlightRecorder::ops_active_at(
    sim::SimTime t_ns) const {
  std::vector<std::uint64_t> ops;
  for (const auto& [name, ring] : rings_) {
    if (name == kEventsRing) continue;
    for (const FlightEntry& entry : ring.entries) {
      if (entry.op_id != 0 && entry.begin_ns <= t_ns && t_ns <= entry.end_ns) {
        ops.push_back(entry.op_id);
      }
    }
  }
  std::sort(ops.begin(), ops.end());
  ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
  return ops;
}

std::string FlightRecorder::dump_json() const {
  std::string out =
      "{\"budget_bytes\":" + std::to_string(budget_bytes_) +
      ",\"ring_budget_bytes\":" + std::to_string(ring_budget_) +
      ",\"dropped\":" + std::to_string(dropped_total_) + ",\"rings\":{";
  bool first_ring = true;
  for (const auto& [name, ring] : rings_) {
    if (!first_ring) out += ',';
    first_ring = false;
    out += '"' + json_escape(name) +
           "\":{\"dropped\":" + std::to_string(ring.dropped) +
           ",\"entries\":[";
    bool first = true;
    for (const FlightEntry& entry : ring.entries) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"" + json_escape(entry.name) + "\",\"category\":\"" +
             json_escape(entry.category) +
             "\",\"begin_ns\":" + std::to_string(entry.begin_ns) +
             ",\"end_ns\":" + std::to_string(entry.end_ns) +
             ",\"track\":" + std::to_string(entry.track) +
             ",\"op_id\":" + std::to_string(entry.op_id) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace hpcbb::obs
