// Latency attribution: per-operation critical-path breakdown.
//
// The tracing layer tags every span of one logical operation (a block's
// journey client -> flowctl admission -> KV stores -> flusher -> Lustre)
// with a shared op_id. A SpanAccountant consumes those spans as they close
// (via TraceRecorder's span sink) and answers the question aggregates
// cannot: where did *this* slow write spend its time, and was it queueing
// or being served?
//
// Model. For each op, the covered interval [min begin, max end] is cut at
// every span boundary; each elementary segment is attributed to the
// innermost span covering it (latest begin; ties: earliest end, then the
// later-opened span). Instants covered by no span are attributed to the
// pseudo-layer "idle" (handoffs between actors — e.g. a reply sitting in a
// channel). Because the segments partition the interval exactly, the
// per-layer sums always equal the op's end-to-end latency.
//
// Layers come from span categories, except category "bb", which covers both
// ends of the pipeline and is split by span name into "client" (write.*/
// read.*) and "flusher" (flush.*, wait.flush_queue). A segment counts as
// queueing when its innermost span is a wait ("wait.*" or the flowctl
// credit-wait "flowctl.stall"); everything else is service time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace hpcbb::obs {

// One layer's share of one op's end-to-end time.
struct LayerSlice {
  std::string layer;
  sim::SimTime total_ns = 0;
  sim::SimTime queue_ns = 0;    // waits: credit stalls, queue dwell, idle
  sim::SimTime service_ns = 0;  // total - queue
};

// Critical-path breakdown of a single operation.
struct OpAttribution {
  std::uint64_t op_id = 0;
  sim::SimTime begin_ns = 0;
  sim::SimTime end_ns = 0;
  std::vector<LayerSlice> layers;  // sorted by layer name; sums to e2e_ns()
  std::string bottleneck;          // layer with the largest total_ns
  std::size_t span_count = 0;

  [[nodiscard]] sim::SimTime e2e_ns() const noexcept {
    return end_ns - begin_ns;
  }
};

class SpanAccountant {
 public:
  explicit SpanAccountant(std::size_t top_k = 5) : top_k_(top_k) {}

  // Maps a span to its attribution layer (category, with "bb" split into
  // "client" and "flusher" by name). Exposed for tests and tooling.
  [[nodiscard]] static std::string layer_of(const sim::TraceSpan& span);
  // True when time under this span is queueing rather than service.
  [[nodiscard]] static bool is_queue(const sim::TraceSpan& span);

  // Ingest one closed span. Open spans and spans without an op_id are
  // ignored. This is the TraceRecorder sink:
  //   recorder.set_span_sink([&](const sim::TraceSpan& s) {
  //     accountant.on_span_close(s); });
  void on_span_close(const sim::TraceSpan& span);

  // Bulk-ingest every closed op-tagged span already in a recorder, for
  // consumers that attach after the fact.
  void ingest(const sim::TraceRecorder& recorder);

  [[nodiscard]] std::size_t op_count() const noexcept { return by_op_.size(); }
  [[nodiscard]] std::size_t top_k() const noexcept { return top_k_; }

  // Breakdown of one op (op_id must have at least one ingested span).
  [[nodiscard]] OpAttribution attribute(std::uint64_t op_id) const;
  // All ops, ascending op_id.
  [[nodiscard]] std::vector<OpAttribution> attribute_all() const;
  // The k slowest ops by end-to-end latency, descending; ties broken by
  // ascending op_id so the ranking is deterministic.
  [[nodiscard]] std::vector<OpAttribution> slowest(std::size_t k) const;

  // The "attribution" report section: per-layer aggregates (ops touched,
  // total/queue/service sums, bottleneck counts, per-op total and queue
  // histograms) plus the top_k slowest ops with their full span chains.
  [[nodiscard]] std::string to_json() const;

 private:
  std::size_t top_k_;
  std::map<std::uint64_t, std::vector<sim::TraceSpan>> by_op_;
};

}  // namespace hpcbb::obs
