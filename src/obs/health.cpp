#include "obs/health.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "sim/trace.h"

#include "common/metrics.h"
#include "obs/attribution.h"
#include "obs/json.h"
#include "obs/report.h"
#include "obs/sampler.h"

namespace hpcbb::obs {

namespace {

// Strict fraction parse: the whole string must be a double in [0, 1].
std::optional<double> parse_fraction(const std::string& raw) {
  if (raw.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (end != raw.c_str() + raw.size()) return std::nullopt;
  if (value < 0.0 || value > 1.0) return std::nullopt;
  return value;
}

enum class ValueType { kDuration, kCount, kFraction };

struct BuiltinRule {
  const char* suffix;  // key is "slo." + suffix
  SloKind kind;
  ValueType value_type;
  double quantile;
  std::vector<std::string> metrics;
};

// The built-in rule vocabulary. Thresholds: *_ns keys take durations
// (ns/us/ms/s suffixes), *_min ratio keys take fractions in [0, 1],
// everything else takes counts.
const std::vector<BuiltinRule>& builtin_rules() {
  static const std::vector<BuiltinRule> kRules = {
      {"write_p99_ns", SloKind::kQuantileMax, ValueType::kDuration, 0.99,
       {"kv.put"}},
      {"read_p99_ns", SloKind::kQuantileMax, ValueType::kDuration, 0.99,
       {"kv.get"}},
      {"flush_p99_ns", SloKind::kQuantileMax, ValueType::kDuration, 0.99,
       {"bb.flush_ns"}},
      {"flush_max_ns", SloKind::kHistMax, ValueType::kDuration, 0.99,
       {"bb.flush_ns"}},
      {"rpc_p99_ns", SloKind::kQuantileMax, ValueType::kDuration, 0.99,
       {"net.rpc"}},
      {"stall_p99_ns", SloKind::kQuantileMax, ValueType::kDuration, 0.99,
       {"flowctl.stall_ns"}},
      {"kv_hit_ratio_min", SloKind::kRatioMin, ValueType::kFraction, 0.99,
       {"kv.hits", "kv.misses"}},
      {"degraded_window_max_ns", SloKind::kDegradedWindowMax,
       ValueType::kDuration, 0.99, {}},
      {"kv_live_min", SloKind::kGaugeMin, ValueType::kCount, 0.99,
       {"bb.kv_live"}},
      {"master_up_min", SloKind::kGaugeMin, ValueType::kCount, 0.99,
       {"bb.master_up"}},
      {"under_replicated_max", SloKind::kGaugeMax, ValueType::kCount, 0.99,
       {"kv.repl.under_replicated"}},
      {"retry_exhausted_max", SloKind::kCounterMax, ValueType::kCount, 0.99,
       {"net.retry.exhausted"}},
      {"integrity_detected_max", SloKind::kCounterMax, ValueType::kCount, 0.99,
       {"kv.integrity.detected", "kv.scrub.repaired",
        "kv.scrub.unrepairable"}},
      {"quarantined_max", SloKind::kCounterMax, ValueType::kCount, 0.99,
       {"bb.quarantined_blocks"}},
  };
  return kRules;
}

// Generic escape hatches: the metric name is embedded in the key, e.g.
// slo.counter_max.faults.injected{kind=crash} = 0.
struct GenericRule {
  const char* prefix;  // key is "slo." + prefix + "." + metric
  SloKind kind;
  ValueType value_type;
};

constexpr GenericRule kGenericRules[] = {
    {"counter_max", SloKind::kCounterMax, ValueType::kCount},
    {"gauge_min", SloKind::kGaugeMin, ValueType::kCount},
    {"gauge_max", SloKind::kGaugeMax, ValueType::kCount},
    {"p99_max", SloKind::kQuantileMax, ValueType::kDuration},
    {"max_max", SloKind::kHistMax, ValueType::kDuration},
};

Result<double> parse_threshold(const Properties& props, const std::string& key,
                               ValueType type) {
  switch (type) {
    case ValueType::kDuration: {
      auto parsed = props.get_duration_ns(key);
      if (!parsed.is_ok()) return parsed.status();
      return static_cast<double>(parsed.value());
    }
    case ValueType::kCount: {
      auto parsed = props.get_u64(key);
      if (!parsed.is_ok()) return parsed.status();
      return static_cast<double>(parsed.value());
    }
    case ValueType::kFraction: {
      const auto value = parse_fraction(props.get(key).value_or(""));
      if (!value) {
        return error(StatusCode::kInvalidArgument,
                     "key " + key + ": not a fraction in [0,1]");
      }
      return *value;
    }
  }
  return error(StatusCode::kInternal, "unreachable");
}

}  // namespace

std::string_view to_string(AlertState state) noexcept {
  switch (state) {
    case AlertState::kOk: return "ok";
    case AlertState::kWarn: return "warn";
    case AlertState::kPage: return "page";
  }
  return "?";
}

std::string_view to_string(SloKind kind) noexcept {
  switch (kind) {
    case SloKind::kCounterMax: return "counter_max";
    case SloKind::kGaugeMin: return "gauge_min";
    case SloKind::kGaugeMax: return "gauge_max";
    case SloKind::kQuantileMax: return "quantile_max";
    case SloKind::kHistMax: return "hist_max";
    case SloKind::kRatioMin: return "ratio_min";
    case SloKind::kDegradedWindowMax: return "degraded_window_max";
  }
  return "?";
}

Result<HealthParams> HealthParams::from_properties(const Properties& props) {
  HealthParams out;
  for (const auto& [key, raw] : props.entries()) {
    if (key == "flightrec.bytes") {
      auto parsed = props.get_u64(key);
      if (!parsed.is_ok()) return parsed.status();
      out.flightrec_bytes = parsed.value();
      continue;
    }
    if (key.rfind("flightrec.", 0) == 0) {
      return error(StatusCode::kInvalidArgument,
                   "key " + key + ": unknown flightrec.* key");
    }
    if (key.rfind("slo.", 0) != 0) continue;
    const std::string suffix = key.substr(4);

    // Engine tunables.
    if (suffix == "fast_window" || suffix == "slow_window" ||
        suffix == "incident_max") {
      auto parsed = props.get_u64(key);
      if (!parsed.is_ok()) return parsed.status();
      if (parsed.value() == 0) {
        return error(StatusCode::kInvalidArgument,
                     "key " + key + ": must be >= 1");
      }
      if (suffix == "fast_window") {
        out.fast_window = static_cast<std::size_t>(parsed.value());
      } else if (suffix == "slow_window") {
        out.slow_window = static_cast<std::size_t>(parsed.value());
      } else {
        out.incident_max = static_cast<std::size_t>(parsed.value());
      }
      continue;
    }
    if (suffix == "warn_fast" || suffix == "page_fast" ||
        suffix == "page_slow") {
      const auto value = parse_fraction(raw);
      if (!value || *value == 0.0) {
        return error(StatusCode::kInvalidArgument,
                     "key " + key + ": not a fraction in (0,1]");
      }
      if (suffix == "warn_fast") out.warn_fast = *value;
      else if (suffix == "page_fast") out.page_fast = *value;
      else out.page_slow = *value;
      continue;
    }
    if (suffix == "incident_dir") {
      out.incident_dir = raw;
      continue;
    }
    if (suffix == "incident_prefix") {
      out.incident_prefix = raw;
      continue;
    }

    // Built-in rules.
    const BuiltinRule* builtin = nullptr;
    for (const BuiltinRule& candidate : builtin_rules()) {
      if (suffix == candidate.suffix) {
        builtin = &candidate;
        break;
      }
    }
    if (builtin != nullptr) {
      auto threshold = parse_threshold(props, key, builtin->value_type);
      if (!threshold.is_ok()) return threshold.status();
      out.rules.push_back(SloRule{suffix, builtin->kind, builtin->metrics,
                                  builtin->quantile, threshold.value()});
      continue;
    }

    // Generic rules with the metric embedded in the key.
    const GenericRule* generic = nullptr;
    std::string metric;
    for (const GenericRule& candidate : kGenericRules) {
      const std::string prefix = std::string(candidate.prefix) + ".";
      if (suffix.rfind(prefix, 0) == 0 && suffix.size() > prefix.size()) {
        generic = &candidate;
        metric = suffix.substr(prefix.size());
        break;
      }
    }
    if (generic != nullptr) {
      auto threshold = parse_threshold(props, key, generic->value_type);
      if (!threshold.is_ok()) return threshold.status();
      out.rules.push_back(SloRule{suffix, generic->kind, {metric}, 0.99,
                                  threshold.value()});
      continue;
    }

    return error(StatusCode::kInvalidArgument,
                 "key " + key + ": unknown slo.* key (see DESIGN.md §15)");
  }
  if (out.fast_window > out.slow_window) {
    return error(StatusCode::kInvalidArgument,
                 "slo.fast_window must be <= slo.slow_window");
  }
  if (out.warn_fast > out.page_fast) {
    return error(StatusCode::kInvalidArgument,
                 "slo.warn_fast must be <= slo.page_fast");
  }
  return out;
}

HealthMonitor::HealthMonitor(sim::Simulation& sim, HealthParams params)
    : sim_(&sim), params_(std::move(params)) {
  rules_.reserve(params_.rules.size());
  for (const SloRule& rule : params_.rules) {
    RuleState rs;
    rs.rule = rule;
    rules_.push_back(std::move(rs));
  }
}

void HealthMonitor::attach(TimeSeriesSampler& sampler) {
  sampler_ = &sampler;
  sampler.add_observer([this](const TimelinePoint& point, bool final_sample) {
    on_tick(point, final_sample);
  });
}

AlertState HealthMonitor::state(const std::string& rule) const {
  for (const RuleState& rs : rules_) {
    if (rs.rule.name == rule) return rs.state;
  }
  return AlertState::kOk;
}

std::optional<double> HealthMonitor::evaluate(RuleState& rs) const {
  MetricRegistry& metrics = sim_->metrics();
  const SloRule& rule = rs.rule;
  switch (rule.kind) {
    case SloKind::kCounterMax: {
      bool any = false;
      std::uint64_t sum = 0;
      for (const std::string& metric : rule.metrics) {
        if (const auto value = metrics.find_counter(metric)) {
          any = true;
          sum += *value;
        }
      }
      if (!any) return std::nullopt;
      return static_cast<double>(sum);
    }
    case SloKind::kGaugeMin:
    case SloKind::kGaugeMax: {
      const auto gauge = metrics.find_gauge(rule.metrics.front());
      if (!gauge) return std::nullopt;
      return static_cast<double>(gauge->value);
    }
    case SloKind::kQuantileMax: {
      const auto value =
          metrics.histogram_quantile(rule.metrics.front(), rule.quantile);
      if (!value) return std::nullopt;
      return static_cast<double>(*value);
    }
    case SloKind::kHistMax: {
      const auto snap = metrics.find_histogram(rule.metrics.front());
      if (!snap) return std::nullopt;
      return static_cast<double>(snap->max);
    }
    case SloKind::kRatioMin: {
      const auto num = metrics.find_counter(rule.metrics[0]);
      const auto mis = metrics.find_counter(rule.metrics[1]);
      if (!num && !mis) return std::nullopt;
      const std::uint64_t cum_num = num.value_or(0);
      const std::uint64_t cum_den = cum_num + mis.value_or(0);
      if (!rs.have_last) {
        rs.have_last = true;
        rs.last_num = cum_num;
        rs.last_den = cum_den;
        return std::nullopt;  // a delta needs two observations
      }
      const std::uint64_t delta_num = cum_num - rs.last_num;
      const std::uint64_t delta_den = cum_den - rs.last_den;
      rs.last_num = cum_num;
      rs.last_den = cum_den;
      if (delta_den == 0) return std::nullopt;  // no traffic this tick
      return static_cast<double>(delta_num) / static_cast<double>(delta_den);
    }
    case SloKind::kDegradedWindowMax: {
      // Open window: now - entry time while degraded; otherwise the longest
      // closed window. No detector (gauge never registered) = no data.
      const auto degraded = metrics.find_gauge("bb.degraded");
      if (!degraded) return std::nullopt;
      if (degraded->value != 0) {
        const auto since = metrics.find_gauge("bb.degraded_since_ns");
        const std::uint64_t since_ns = since ? since->value : 0;
        return static_cast<double>(sim_->now() - since_ns);
      }
      const auto closed = metrics.find_histogram("bb.degraded_window_ns");
      return closed ? static_cast<double>(closed->max) : 0.0;
    }
  }
  return std::nullopt;
}

bool HealthMonitor::breached(const SloRule& rule, double value) {
  switch (rule.kind) {
    case SloKind::kGaugeMin:
    case SloKind::kRatioMin:
      return value < rule.threshold;
    default:
      return value > rule.threshold;
  }
}

void HealthMonitor::on_tick(const TimelinePoint& point, bool /*final*/) {
  // One evaluation per simulated timestamp: a stop() landing exactly on a
  // tick boundary replaces the sampler point and re-fires the observer at
  // the same time; re-evaluating would double-count the burn windows.
  if (evaluated_once_ && point.t_ns == last_eval_ns_) return;
  evaluated_once_ = true;
  last_eval_ns_ = point.t_ns;
  for (RuleState& rs : rules_) step(rs, point.t_ns);
}

void HealthMonitor::step(RuleState& rs, sim::SimTime now) {
  const std::optional<double> value = evaluate(rs);
  if (value.has_value()) {
    rs.seen_data = true;
    ++rs.data_ticks;
    rs.value = *value;
    const bool breach = breached(rs.rule, *value);
    rs.breach_ticks += breach ? 1 : 0;
    rs.window.push_back(breach ? 1 : 0);
  } else {
    // Before the first datum the rule is pristine — a metric that never
    // appears must never trip nor decay anything. Afterwards a no-data
    // tick counts as clean so the windows drain naturally.
    if (!rs.seen_data) return;
    rs.window.push_back(0);
  }
  while (rs.window.size() > params_.slow_window) rs.window.pop_front();

  // Fixed-denominator burn rates: ticks the window has not lived yet count
  // as clean, so one early breach cannot read as a 100% burn.
  std::uint64_t slow_sum = 0;
  std::uint64_t fast_sum = 0;
  const std::size_t n = rs.window.size();
  for (std::size_t i = 0; i < n; ++i) {
    slow_sum += rs.window[i];
    if (i + params_.fast_window >= n) fast_sum += rs.window[i];
  }
  rs.fast_burn =
      static_cast<double>(fast_sum) / static_cast<double>(params_.fast_window);
  rs.slow_burn =
      static_cast<double>(slow_sum) / static_cast<double>(params_.slow_window);

  const bool page_level = rs.fast_burn >= params_.page_fast ||
                          rs.slow_burn >= params_.page_slow;
  const bool warn_level = rs.fast_burn >= params_.warn_fast;
  const bool fast_clean = fast_sum == 0;
  switch (rs.state) {
    case AlertState::kOk:
      if (page_level) {
        transition(rs, AlertState::kPage, now);
      } else if (warn_level) {
        transition(rs, AlertState::kWarn, now);
      }
      break;
    case AlertState::kWarn:
      if (page_level) {
        transition(rs, AlertState::kPage, now);
      } else if (fast_clean) {
        transition(rs, AlertState::kOk, now);
      }
      break;
    case AlertState::kPage:
      // The slow window holds the page: resolution needs the fast window
      // clean AND sustained burn back under the slow trip point.
      if (fast_clean && rs.slow_burn < params_.page_slow) {
        transition(rs, AlertState::kOk, now);
      }
      break;
  }
}

void HealthMonitor::transition(RuleState& rs, AlertState to, sim::SimTime now) {
  const char* severity = to == AlertState::kPage   ? "page"
                         : to == AlertState::kWarn ? "warn"
                                                   : "resolved";
  sim_->metrics()
      .counter("obs.alert{rule=" + rs.rule.name + ",severity=" + severity +
               "}")
      .add();
  if (sim_->trace() != nullptr) {
    sim_->trace()->record("alert." + std::string(severity) + "." +
                              rs.rule.name,
                          "alert", 0, now, now);
  } else if (flightrec_ != nullptr) {
    // No recorder to route through: feed the flight recorder directly.
    flightrec_->add_event("alert." + std::string(severity) + "." +
                              rs.rule.name,
                          "alert");
  }
  transitions_.push_back(AlertEvent{now, rs.rule.name, rs.state, to,
                                    rs.fast_burn, rs.slow_burn, rs.value});
  if (to == AlertState::kPage) ++pages_;
  else if (to == AlertState::kWarn) ++warns_;
  else ++resolves_;
  rs.state = to;
  if (to == AlertState::kPage) open_incident(rs, now);
}

void HealthMonitor::open_incident(const RuleState& rs, sim::SimTime now) {
  sim_->metrics().counter("obs.incidents").add();
  if (incidents_.size() >= params_.incident_max) return;

  std::string json = "{\"schema\":\"";
  json += kIncidentSchema;
  json += "\",\"seq\":" + std::to_string(incidents_.size() + 1);
  json += ",\"rule\":\"" + json_escape(rs.rule.name) + "\"";
  json += ",\"kind\":\"" + std::string(to_string(rs.rule.kind)) + "\"";
  json += ",\"t_ns\":" + std::to_string(now);
  json += ",\"value\":" + json_double(rs.value);
  json += ",\"threshold\":" + json_double(rs.rule.threshold);
  json += ",\"fast_burn\":" + json_double(rs.fast_burn);
  json += ",\"slow_burn\":" + json_double(rs.slow_burn);
  json += ",\"windows\":{\"fast\":" + std::to_string(params_.fast_window) +
          ",\"slow\":" + std::to_string(params_.slow_window) + "}";

  json += ",\"alerts\":[";
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    const AlertEvent& event = transitions_[i];
    if (i != 0) json += ',';
    json += "{\"t_ns\":" + std::to_string(event.t_ns) + ",\"rule\":\"" +
            json_escape(event.rule) + "\",\"from\":\"" +
            std::string(to_string(event.from)) + "\",\"to\":\"" +
            std::string(to_string(event.to)) +
            "\",\"value\":" + json_double(event.value) + "}";
  }
  json += "]";

  // Fault correlation: every injected-fault instant still in the flight
  // recorder, and the op_ids that were in flight when each one hit.
  json += ",\"faults\":[";
  std::vector<std::uint64_t> suspects;
  if (flightrec_ != nullptr) {
    const std::vector<FlightEntry> faults = flightrec_->events("fault");
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (i != 0) json += ',';
      json += "{\"name\":\"" + json_escape(faults[i].name) +
              "\",\"t_ns\":" + std::to_string(faults[i].begin_ns) + "}";
      for (const std::uint64_t op :
           flightrec_->ops_active_at(faults[i].begin_ns)) {
        suspects.push_back(op);
      }
    }
    std::sort(suspects.begin(), suspects.end());
    suspects.erase(std::unique(suspects.begin(), suspects.end()),
                   suspects.end());
  }
  json += "],\"suspect_op_ids\":[";
  for (std::size_t i = 0; i < suspects.size(); ++i) {
    if (i != 0) json += ',';
    json += std::to_string(suspects[i]);
  }
  json += "]";

  json += ",\"flightrec\":";
  json += flightrec_ != nullptr ? flightrec_->dump_json() : "null";

  // The last N sampler intervals, series names included so the bundle is
  // self-contained.
  json += ",\"timeline\":";
  if (sampler_ != nullptr) {
    json += "{\"series\":[";
    const std::vector<std::string>& names = sampler_->series_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i != 0) json += ',';
      json += '"' + json_escape(names[i]) + '"';
    }
    json += "],\"points\":[";
    const std::vector<TimelinePoint>& timeline = sampler_->timeline();
    const std::size_t start =
        timeline.size() > params_.incident_timeline_points
            ? timeline.size() - params_.incident_timeline_points
            : 0;
    for (std::size_t i = start; i < timeline.size(); ++i) {
      if (i != start) json += ',';
      json += "{\"t_ns\":" + std::to_string(timeline[i].t_ns) +
              ",\"values\":[";
      for (std::size_t j = 0; j < timeline[i].values.size(); ++j) {
        if (j != 0) json += ',';
        json += std::to_string(timeline[i].values[j]);
      }
      json += "]}";
    }
    json += "]}";
  } else {
    json += "null";
  }

  json += ",\"slowest_ops\":[";
  if (accountant_ != nullptr) {
    const auto slowest = accountant_->slowest(5);
    for (std::size_t i = 0; i < slowest.size(); ++i) {
      if (i != 0) json += ',';
      json += "{\"op_id\":" + std::to_string(slowest[i].op_id) +
              ",\"e2e_ns\":" + std::to_string(slowest[i].e2e_ns()) +
              ",\"bottleneck\":\"" + json_escape(slowest[i].bottleneck) +
              "\"}";
    }
  }
  json += "]";

  json += ",\"metrics\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : sim_->metrics().counters()) {
    if (!first) json += ',';
    first = false;
    json += '"' + json_escape(name) + "\":" + std::to_string(value);
  }
  json += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : sim_->metrics().gauges()) {
    if (!first) json += ',';
    first = false;
    json += '"' + json_escape(name) + "\":" + std::to_string(gauge.value);
  }
  json += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : sim_->metrics().histograms()) {
    if (!first) json += ',';
    first = false;
    json += '"' + json_escape(name) +
            "\":{\"count\":" + std::to_string(h.count) +
            ",\"p50\":" + std::to_string(h.p50) +
            ",\"p99\":" + std::to_string(h.p99) +
            ",\"max\":" + std::to_string(h.max) + "}";
  }
  json += "}}}";

  Incident incident;
  incident.rule = rs.rule.name;
  incident.t_ns = now;
  if (!params_.incident_dir.empty()) {
    incident.file = params_.incident_dir + "/" + params_.incident_prefix +
                    "-" + std::to_string(incidents_.size() + 1) + ".json";
    if (!write_text_file(incident.file, json)) incident.file.clear();
  }
  incident.json = std::move(json);
  incidents_.push_back(std::move(incident));
}

std::string HealthMonitor::to_json() const {
  std::string out = "{\"rules\":[";
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const RuleState& rs = rules_[i];
    if (i != 0) out += ',';
    out += "{\"name\":\"" + json_escape(rs.rule.name) + "\",\"kind\":\"" +
           std::string(to_string(rs.rule.kind)) +
           "\",\"threshold\":" + json_double(rs.rule.threshold) +
           ",\"state\":\"" + std::string(to_string(rs.state)) +
           "\",\"value\":" + json_double(rs.value) +
           ",\"data_ticks\":" + std::to_string(rs.data_ticks) +
           ",\"breach_ticks\":" + std::to_string(rs.breach_ticks) +
           ",\"fast_burn\":" + json_double(rs.fast_burn) +
           ",\"slow_burn\":" + json_double(rs.slow_burn) + "}";
  }
  out += "],\"warns\":" + std::to_string(warns_) +
         ",\"pages\":" + std::to_string(pages_) +
         ",\"resolves\":" + std::to_string(resolves_);
  out += ",\"transitions\":[";
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    const AlertEvent& event = transitions_[i];
    if (i != 0) out += ',';
    out += "{\"t_ns\":" + std::to_string(event.t_ns) + ",\"rule\":\"" +
           json_escape(event.rule) + "\",\"from\":\"" +
           std::string(to_string(event.from)) + "\",\"to\":\"" +
           std::string(to_string(event.to)) +
           "\",\"fast_burn\":" + json_double(event.fast_burn) +
           ",\"slow_burn\":" + json_double(event.slow_burn) +
           ",\"value\":" + json_double(event.value) + "}";
  }
  out += "],\"incidents\":[";
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"rule\":\"" + json_escape(incidents_[i].rule) +
           "\",\"t_ns\":" + std::to_string(incidents_[i].t_ns) +
           ",\"file\":\"" + json_escape(incidents_[i].file) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace hpcbb::obs
