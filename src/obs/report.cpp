#include "obs/report.h"

#include <fstream>

#include "common/metrics.h"
#include "obs/attribution.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/sampler.h"

namespace hpcbb::obs {

std::string report_json(sim::Simulation& sim, const TimeSeriesSampler* sampler,
                        const SpanAccountant* attribution,
                        const HealthMonitor* health) {
  std::string out = "{\"schema\":\"";
  out += kReportSchema;
  out += "\",\"sim_time_ns\":" + std::to_string(sim.now());

  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : sim.metrics().counters()) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + std::to_string(value);
  }
  out += "}";

  out += ",\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : sim.metrics().gauges()) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) +
           "\":{\"value\":" + std::to_string(gauge.value) +
           ",\"high_watermark\":" + std::to_string(gauge.high_watermark) + "}";
  }
  out += "}";

  out += ",\"histograms\":{";
  first = true;
  for (const auto& [name, h] : sim.metrics().histograms()) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) +
           "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.min) +
           ",\"max\":" + std::to_string(h.max) +
           ",\"mean\":" + json_double(h.mean) +
           ",\"p50\":" + std::to_string(h.p50) +
           ",\"p95\":" + std::to_string(h.p95) +
           ",\"p99\":" + std::to_string(h.p99) + "}";
  }
  out += "}";

  if (sampler != nullptr) {
    out += ",\"timeline\":" + sampler->to_json();
  }
  if (attribution != nullptr) {
    out += ",\"attribution\":" + attribution->to_json();
  }
  if (health != nullptr) {
    out += ",\"health\":" + health->to_json();
  }
  out += "}";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << content;
  return static_cast<bool>(file);
}

}  // namespace hpcbb::obs
