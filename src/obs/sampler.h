// Time-series sampling of metrics over simulated time.
//
// A TimeSeriesSampler owns a set of named probes (arbitrary u64 readers,
// typically counters and gauges from the simulation's MetricRegistry) and a
// periodic simulated-time task that snapshots all of them every
// `interval_ns`. The resulting timeline makes burst shapes, drain behavior,
// and queue buildup plottable — the per-layer traffic view that burst-buffer
// tuning papers assume as input.
//
// Lifecycle in an event-driven simulation: a naive periodic task would keep
// the event queue non-empty forever, so the workload driver calls stop()
// when it finishes; that takes a final sample at quiescence and cancels the
// pending tick, after which sim.run() drains normally. Cancelling (rather
// than letting the tick fire and exit) keeps the stop from re-running probes
// when it lands exactly on a tick boundary and from dragging sim.now() one
// interval past quiescence.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/task.h"

namespace hpcbb::obs {

struct TimelinePoint {
  sim::SimTime t_ns = 0;
  std::vector<std::uint64_t> values;  // parallel to series_names()
};

class TimeSeriesSampler {
 public:
  using Probe = std::function<std::uint64_t()>;

  TimeSeriesSampler(sim::Simulation& sim, sim::SimTime interval_ns);

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  // Per-tick observer: runs after every recorded sample — the baseline at
  // start(), each periodic tick, and the final quiescence sample — with the
  // point just stored; `final` is true only for the stop() sample. When
  // stop() lands exactly on a tick boundary the final sample *replaces* the
  // tick's point, so observers see that timestamp twice (final=false then
  // final=true) but the timeline keeps one entry. Observers run in
  // registration order. The health monitor hooks here so sampling and SLO
  // evaluation share one clock and can never skew.
  using Observer = std::function<void(const TimelinePoint&, bool final)>;
  void add_observer(Observer observer);

  // Register probes before start(); rows are parallel to registration order.
  void add_probe(std::string name, Probe probe);
  // Convenience probes over the simulation's metric registry.
  void watch_counter(const std::string& name);
  void watch_gauge(const std::string& name);

  // Takes a baseline sample now and spawns the periodic task. Ticks are
  // aligned to multiples of the interval, not offset from the start time.
  void start();
  // Final sample at the current (quiescence) time; the pending tick is
  // cancelled so the periodic task never wakes again. Idempotent.
  void stop();
  // One immediate sample. A sample at the same timestamp as the previous
  // one replaces it, keeping timestamps strictly increasing.
  void sample_now();

  [[nodiscard]] sim::SimTime interval_ns() const noexcept {
    return interval_ns_;
  }
  [[nodiscard]] const std::vector<std::string>& series_names() const noexcept {
    return names_;
  }
  [[nodiscard]] const std::vector<TimelinePoint>& timeline() const noexcept {
    return timeline_;
  }

  // "t_ns,series1,series2,..." header plus one row per sample.
  [[nodiscard]] std::string to_csv() const;
  // {"interval_ns":..,"series":[..],"points":[{"t_ns":..,"values":[..]}]}
  [[nodiscard]] std::string to_json() const;

 private:
  sim::Task<void> run_loop();

  sim::Simulation& sim_;
  sim::SimTime interval_ns_;
  bool started_ = false;
  bool stopped_ = false;
  bool tick_pending_ = false;      // run_loop is suspended on a timer
  std::uint64_t tick_token_ = 0;   // cancellation token for that timer
  bool in_stop_ = false;           // the sample being taken is the final one
  std::vector<std::string> names_;
  std::vector<Probe> probes_;
  std::vector<Observer> observers_;
  std::vector<TimelinePoint> timeline_;
};

}  // namespace hpcbb::obs
