// Online health monitor: declarative SLO rules with multi-window burn-rate
// alerting, evaluated on TimeSeriesSampler ticks, plus incident bundles.
//
// Rules come from `slo.*` configuration keys (HealthParams::from_properties
// validates the whole namespace — an unknown key or malformed value is a
// configuration error, never a silently-dropped rule). Each rule reads the
// MetricRegistry once per sampler tick and produces a boolean breach, a
// "no data" verdict (absent metric, never-recorded histogram, no traffic
// this tick — distinct from a legitimate zero), or a clean tick.
//
// Alerting is multi-window burn-rate, SRE-style: a fast window (default 5
// ticks) catches sharp regressions, a slow window (default 60) catches
// sustained low-grade burn and *holds* a page open until the long horizon
// is genuinely clean. States per rule: ok -> warn -> page -> (resolved) ok,
// where "resolved" is the transition event back to ok. Every transition
// bumps an `obs.alert{rule=...,severity=...}` counter, records a trace
// instant (category "alert"), and is kept with its simulated timestamp.
//
// On page the monitor snapshots the flight recorder, the last N sampler
// intervals, the full metric registry, and the SpanAccountant's slowest
// ops into a self-contained `hpcbb.incident.v1` JSON bundle, with the
// op_ids active at recent fault injections called out — the correlation a
// post-mortem starts from.
//
// The monitor owns no timer: it observes the sampler (add_observer), so a
// run without `slo.*` keys constructs no monitor and schedules not one
// extra event — healthy-run timing stays bit-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/properties.h"
#include "common/status.h"
#include "obs/flightrec.h"
#include "sim/simulation.h"

namespace hpcbb::obs {

class TimeSeriesSampler;
class SpanAccountant;
struct TimelinePoint;

inline constexpr const char* kIncidentSchema = "hpcbb.incident.v1";

enum class AlertState { kOk, kWarn, kPage };
[[nodiscard]] std::string_view to_string(AlertState state) noexcept;

// What a rule measures each tick.
enum class SloKind {
  kCounterMax,   // sum of counters in `metrics` > threshold (cumulative)
  kGaugeMin,     // gauge value < threshold
  kGaugeMax,     // gauge value > threshold
  kQuantileMax,  // histogram quantile(q) > threshold
  kHistMax,      // histogram max > threshold
  kRatioMin,     // per-tick delta m0/(m0+m1) < threshold (no traffic = no data)
  kDegradedWindowMax,  // open or closed degraded window > threshold
};
[[nodiscard]] std::string_view to_string(SloKind kind) noexcept;

struct SloRule {
  std::string name;                  // config key suffix, e.g. "write_p99_ns"
  SloKind kind = SloKind::kCounterMax;
  std::vector<std::string> metrics;  // metric name(s); meaning depends on kind
  double quantile = 0.99;            // for kQuantileMax
  double threshold = 0.0;
};

struct HealthParams {
  // Burn-rate windows (in sampler ticks) and trip fractions. Burn is the
  // breached fraction of the window with a *fixed* denominator — a window
  // that has seen fewer ticks than its width counts the missing ones as
  // clean, so a rule cannot page off its very first breach.
  std::size_t fast_window = 5;
  std::size_t slow_window = 60;
  double warn_fast = 0.2;  // fast burn >= this: at least warn
  double page_fast = 0.6;  // fast burn >= this: page
  double page_slow = 0.3;  // slow burn >= this: page, and hold any open page

  std::uint64_t flightrec_bytes = FlightRecorder::kDefaultBudgetBytes;
  std::size_t incident_max = 8;              // bundles kept/written per run
  std::size_t incident_timeline_points = 16;  // sampler tail in each bundle
  std::string incident_dir;                   // "" = keep bundles in memory
  std::string incident_prefix = "incident";

  std::vector<SloRule> rules;

  // Parses and validates every `slo.*` / `flightrec.*` key (the full
  // grammar is documented in DESIGN.md §15 and examples/example.conf).
  // Unknown keys and malformed values are kInvalidArgument so a runner can
  // abort instead of silently monitoring nothing.
  static Result<HealthParams> from_properties(const Properties& props);
};

// One alert state transition, with the rule's view at that instant.
struct AlertEvent {
  sim::SimTime t_ns = 0;
  std::string rule;
  AlertState from = AlertState::kOk;
  AlertState to = AlertState::kOk;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  double value = 0.0;  // last evaluated rule value
};

// A generated incident bundle (the JSON is the `hpcbb.incident.v1` doc).
struct Incident {
  std::string rule;
  sim::SimTime t_ns = 0;
  std::string file;  // "" when kept in memory only
  std::string json;
};

class HealthMonitor {
 public:
  HealthMonitor(sim::Simulation& sim, HealthParams params);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Registers the per-tick observer; evaluation now follows the sampler's
  // clock exactly (and the sampler is also where incident timelines come
  // from).
  void attach(TimeSeriesSampler& sampler);
  void set_flight_recorder(FlightRecorder* recorder) {
    flightrec_ = recorder;
  }
  void set_accountant(const SpanAccountant* accountant) {
    accountant_ = accountant;
  }

  // One evaluation pass over every rule. Idempotent per timestamp: the
  // sampler's final stop() sample at a tick boundary re-fires the observer
  // at the same simulated time and must not double-count windows.
  void on_tick(const TimelinePoint& point, bool final);

  [[nodiscard]] const HealthParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t rule_count() const noexcept {
    return rules_.size();
  }
  [[nodiscard]] AlertState state(const std::string& rule) const;
  [[nodiscard]] const std::vector<AlertEvent>& transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] const std::vector<Incident>& incidents() const noexcept {
    return incidents_;
  }
  [[nodiscard]] std::uint64_t warn_count() const noexcept { return warns_; }
  [[nodiscard]] std::uint64_t page_count() const noexcept { return pages_; }
  [[nodiscard]] std::uint64_t resolve_count() const noexcept {
    return resolves_;
  }

  // The report's "health" section: per-rule status, the transition
  // timeline, and incident metadata.
  [[nodiscard]] std::string to_json() const;

 private:
  struct RuleState {
    SloRule rule;
    AlertState state = AlertState::kOk;
    // Breach bits for the last slow_window data-era ticks, newest last.
    std::deque<std::uint8_t> window;
    bool seen_data = false;
    std::uint64_t data_ticks = 0;
    std::uint64_t breach_ticks = 0;
    // Previous cumulative values for kRatioMin per-tick deltas.
    std::uint64_t last_num = 0;
    std::uint64_t last_den = 0;
    bool have_last = false;
    double value = 0.0;
    double fast_burn = 0.0;
    double slow_burn = 0.0;
  };

  [[nodiscard]] std::optional<double> evaluate(RuleState& rs) const;
  [[nodiscard]] static bool breached(const SloRule& rule, double value);
  void step(RuleState& rs, sim::SimTime now);
  void transition(RuleState& rs, AlertState to, sim::SimTime now);
  void open_incident(const RuleState& rs, sim::SimTime now);

  sim::Simulation* sim_;
  HealthParams params_;
  FlightRecorder* flightrec_ = nullptr;
  const SpanAccountant* accountant_ = nullptr;
  const TimeSeriesSampler* sampler_ = nullptr;
  std::vector<RuleState> rules_;
  std::vector<AlertEvent> transitions_;
  std::vector<Incident> incidents_;
  std::uint64_t warns_ = 0;
  std::uint64_t pages_ = 0;
  std::uint64_t resolves_ = 0;
  sim::SimTime last_eval_ns_ = 0;
  bool evaluated_once_ = false;
};

}  // namespace hpcbb::obs
