// Tiny JSON emission helpers shared by the hand-rolled report writers
// (report.cpp, attribution.cpp). Not a JSON library: just enough escaping
// and float formatting to keep machine-readable output well-formed.
#pragma once

#include <array>
#include <cstdio>
#include <string>

namespace hpcbb::obs {

// Metric and span names are internal identifiers ("kv.put", "write.f#3") but
// a stray quote or backslash must not corrupt the report.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

inline std::string json_double(double value) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.6g", value);
  return buf.data();
}

}  // namespace hpcbb::obs
