#include "kvstore/client.h"

#include <cassert>
#include <map>
#include <span>
#include <utility>

#include "common/crc32c.h"
#include "sim/sync.h"

namespace hpcbb::kv {
namespace {

// Background replica write for primary-ack mode. A free coroutine that
// captures no Client state: the acking caller (often a short-lived writer)
// may be destroyed before the trailing copies land.
sim::Task<void> detached_replica_set(net::RpcHub* hub, net::NodeId self,
                                     net::NodeId server, std::string key,
                                     BytesPtr value, bool pinned,
                                     std::uint64_t expiry_ns,
                                     std::uint64_t op_id, bool by_rdma) {
  auto& metrics = hub->transport().fabric().simulation().metrics();
  if (by_rdma) {
    Status st =
        co_await hub->transport().rdma_write(self, server, value->size());
    if (!st.is_ok()) {
      metrics.counter("kv.repl.replica_write_failures").add();
      co_return;
    }
  }
  auto req = std::make_shared<SetRequest>();
  req->key = std::move(key);
  req->value = std::move(value);
  req->pinned = pinned;
  req->expiry_ns = expiry_ns;
  req->payload_by_rdma = by_rdma;
  req->op_id = op_id;
  auto result = co_await hub->call<void>(
      self, server, kOpSet, std::shared_ptr<const SetRequest>(std::move(req)));
  if (!result.is_ok()) {
    metrics.counter("kv.repl.replica_write_failures").add();
  }
}

}  // namespace

void ClientParams::apply_properties(const Properties& props) {
  failover = props.get_bool_or("kv.failover", failover);
  replication_factor = static_cast<std::uint32_t>(
      props.get_u64_or("kv.repl.factor", replication_factor));
  if (replication_factor == 0) replication_factor = 1;
  const std::string mode =
      props.get_or("kv.repl.ack", ack == AckMode::kAll ? "all" : "primary");
  ack = (mode == "all") ? AckMode::kAll : AckMode::kPrimary;
}

Client::Client(net::RpcHub& hub, net::NodeId self,
               std::vector<net::NodeId> servers, const ClientParams& params)
    : hub_(&hub),
      self_(self),
      servers_(std::move(servers)),
      ring_(static_cast<std::uint32_t>(servers_.size())),
      params_(params) {
  assert(!servers_.empty());
}

bool Client::use_rdma(std::uint64_t bytes) const noexcept {
  return hub_->transport().params().one_sided_capable &&
         bytes >= params_.rdma_threshold_bytes;
}

std::uint32_t Client::effective_factor() const noexcept {
  return std::min(std::max(params_.replication_factor, 1u),
                  ring_.server_count());
}

std::uint32_t Client::walk_limit() const noexcept {
  // With failover the walk covers the whole ring; without it, only the
  // replica set is eligible.
  return params_.failover ? ring_.server_count() : effective_factor();
}

sim::Task<Status> Client::set(std::string key, BytesPtr value,
                              bool pinned, std::uint64_t expiry_ns,
                              std::uint64_t op_id) {
  const std::uint32_t r = effective_factor();
  if (r == 1 && !params_.failover) {
    const net::NodeId server = server_for(key);
    co_return co_await set_on(server, std::move(key), std::move(value),
                              pinned, expiry_ns, op_id);
  }

  auto& sim = hub_->transport().fabric().simulation();
  auto& metrics = sim.metrics();
  const sim::SimTime start = sim.now();
  const auto order = ring_.successors(key, walk_limit());

  // Walk the successor list until one server accepts the write; that server
  // is the ack point. Hops within the replica set are replica failures,
  // hops beyond it are failovers.
  std::size_t acked = order.size();
  Status last = Status::ok();
  for (std::size_t i = 0; i < order.size(); ++i) {
    Status st =
        co_await set_on(servers_[order[i]], key, value, pinned, expiry_ns,
                        op_id);
    if (st.is_ok()) {
      acked = i;
      break;
    }
    last = st;
    if (st.code() != StatusCode::kUnavailable) co_return st;
    if (i < r) {
      metrics.counter("kv.repl.replica_write_failures").add();
    }
    if (i + 1 < order.size() && i + 1 >= r) {
      metrics.counter("kv.failover.set").add();
    }
  }
  if (acked == order.size()) {
    if (params_.failover) metrics.counter("kv.failover.exhausted").add();
    co_return last;
  }

  // Replicate to the untried members of the replica set (replicas before
  // the ack point already failed — the recovery manager repairs those).
  if (params_.ack == AckMode::kAll) {
    std::vector<sim::Task<Status>> writes;
    for (std::size_t i = acked + 1; i < r; ++i) {
      writes.push_back(
          set_on(servers_[order[i]], key, value, pinned, expiry_ns, op_id));
    }
    if (!writes.empty()) {
      const auto statuses =
          co_await sim::parallel_collect(sim, std::move(writes));
      for (const Status& st : statuses) {
        if (!st.is_ok()) {
          metrics.counter("kv.repl.replica_write_failures").add();
        }
      }
    }
    if (r > 1) {
      metrics.histogram("kv.repl.ack_all_ns").record(sim.now() - start);
    }
  } else {
    for (std::size_t i = acked + 1; i < r; ++i) {
      sim.spawn(detached_replica_set(hub_, self_, servers_[order[i]], key,
                                     value, pinned, expiry_ns, op_id,
                                     use_rdma(value->size())));
    }
    if (r > 1) {
      metrics.histogram("kv.repl.ack_primary_ns").record(sim.now() - start);
    }
  }
  co_return Status::ok();
}

sim::Task<Status> Client::set_on(net::NodeId server, std::string key,
                                 BytesPtr value, bool pinned,
                                 std::uint64_t expiry_ns,
                                 std::uint64_t op_id) {
  auto req = std::make_shared<SetRequest>();
  req->key = std::move(key);
  req->value = std::move(value);
  req->pinned = pinned;
  req->expiry_ns = expiry_ns;
  req->payload_by_rdma = use_rdma(req->value->size());
  req->op_id = op_id;

  if (req->payload_by_rdma) {
    // Push the payload into the server's registered region first; the
    // control message then carries only key + metadata.
    Status st = co_await hub_->transport().rdma_write(self_, server,
                                                      req->value->size());
    if (!st.is_ok()) co_return st;
  }
  auto result = co_await hub_->call<void>(self_, server, kOpSet,
                                          std::shared_ptr<const SetRequest>(
                                              std::move(req)));
  co_return result.status();
}

sim::Task<Result<BytesPtr>> Client::get(std::string key,
                                        std::uint64_t op_id) {
  const std::uint32_t r = effective_factor();
  auto& metrics = hub_->transport().fabric().simulation().metrics();
  if (r == 1 && !params_.failover) {
    const net::NodeId server = server_for(key);
    auto fetched = co_await fetch_from(server, std::move(key), op_id);
    if (!fetched.is_ok()) {
      // No replica to repair from: the corruption is detected but final.
      if (fetched.code() == StatusCode::kDataLoss) {
        metrics.counter("kv.integrity.unrepairable").add();
      }
      co_return fetched.status();
    }
    co_return fetched.value()->value;
  }

  const auto order = ring_.successors(key, walk_limit());
  // Read from the first replica that answers with verified data. kNotFound
  // falls through too: data written while a server was down lives further
  // along the chain, and a restarted-empty server misses on everything.
  // kDataLoss (checksum mismatch) also falls through — and the positions
  // that served corrupt data are overwritten from the first good copy.
  std::vector<std::size_t> corrupt;
  Status last = error(StatusCode::kInternal, "empty walk");
  for (std::size_t i = 0; i < order.size(); ++i) {
    auto fetched = co_await fetch_from(servers_[order[i]], key, op_id);
    if (fetched.is_ok()) {
      if (i > 0 && i < r) metrics.counter("kv.repl.replica_reads").add();
      const auto& reply = *fetched.value();
      for (const std::size_t bad : corrupt) {
        // Read-repair preserves the pin bit: a repaired dirty chunk must
        // stay eviction-proof until the flusher unpins it.
        Status st = co_await set_on(servers_[order[bad]], key, reply.value,
                                    reply.pinned, 0, op_id);
        if (st.is_ok()) {
          metrics.counter("kv.integrity.repaired").add();
        } else {
          metrics.counter("kv.integrity.repair_failures").add();
        }
      }
      co_return fetched.value()->value;
    }
    last = fetched.status();
    const StatusCode code = last.code();
    if (code == StatusCode::kDataLoss) {
      corrupt.push_back(i);
    } else if (code != StatusCode::kUnavailable &&
               code != StatusCode::kNotFound) {
      co_return last;
    }
    if (i + 1 < order.size() && i + 1 >= r) {
      metrics.counter("kv.failover.get").add();
    }
  }
  if (params_.failover) metrics.counter("kv.failover.exhausted").add();
  if (!corrupt.empty()) {
    // Every copy is gone or corrupt: report kDataLoss, never a silent miss.
    metrics.counter("kv.integrity.unrepairable").add();
    co_return error(StatusCode::kDataLoss,
                    "all replicas corrupt or unavailable");
  }
  co_return last;
}

sim::Task<Result<BytesPtr>> Client::get_from(net::NodeId server,
                                             std::string key,
                                             std::uint64_t op_id) {
  auto fetched = co_await fetch_from(server, std::move(key), op_id);
  if (!fetched.is_ok()) co_return fetched.status();
  co_return fetched.value()->value;
}

sim::Task<Result<std::shared_ptr<const GetReply>>> Client::fetch_from(
    net::NodeId server, std::string key, std::uint64_t op_id) {
  auto req =
      std::make_shared<const GetRequest>(GetRequest{std::move(key), op_id});
  auto result = co_await hub_->call<GetReply>(self_, server, kOpGet, req);
  if (!result.is_ok()) co_return result.status();
  const auto& reply = result.value();
  if (!reply->inline_payload) {
    // Metadata-only reply: pull the payload with a one-sided READ.
    Status st = co_await hub_->transport().rdma_read(self_, server,
                                                     reply->value->size());
    if (!st.is_ok()) co_return st;
  }
  // The server verified against its store; re-verify at the client so
  // corruption past that point (one-sided RDMA bypasses the server CPU
  // entirely) is caught before the value is used.
  if (crc32c(std::span<const std::uint8_t>(*reply->value)) !=
      reply->value_crc) {
    hub_->transport().fabric().simulation().metrics()
        .counter("kv.integrity.detected").add();
    co_return error(StatusCode::kDataLoss, "client-side checksum mismatch");
  }
  co_return reply;
}

sim::Task<Result<std::vector<std::optional<BytesPtr>>>> Client::multi_get(
    std::vector<std::string> keys) {
  // Group keys by owning server, preserving each key's output slot.
  std::map<net::NodeId, std::vector<std::size_t>> by_server;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    by_server[server_for(keys[i])].push_back(i);
  }

  std::vector<std::optional<BytesPtr>> out(keys.size());
  const bool can_fall_back = effective_factor() > 1 || params_.failover;
  for (const auto& [server, indices] : by_server) {
    auto req = std::make_shared<MultiGetRequest>();
    req->keys.reserve(indices.size());
    for (const std::size_t i : indices) req->keys.push_back(keys[i]);
    auto result = co_await hub_->call<MultiGetReply>(
        self_, server, kOpMultiGet,
        std::shared_ptr<const MultiGetRequest>(std::move(req)));
    if (!result.is_ok()) {
      // With replicas or failover available, retry the affected keys
      // individually so one dead primary doesn't fail the whole batch.
      if (!can_fall_back ||
          result.status().code() != StatusCode::kUnavailable) {
        co_return result.status();
      }
      for (const std::size_t i : indices) {
        auto one = co_await get(keys[i]);
        if (one.is_ok()) {
          out[i] = std::move(one).value();
        } else if (one.status().code() != StatusCode::kNotFound) {
          co_return one.status();
        }
      }
      continue;
    }
    const auto& reply = result.value();
    if (reply->values.size() != indices.size()) {
      co_return error(StatusCode::kInternal, "multi-get shape mismatch");
    }
    auto& metrics = hub_->transport().fabric().simulation().metrics();
    for (std::size_t j = 0; j < indices.size(); ++j) {
      out[indices[j]] = reply->values[j];
      // Client-side verification of the batch payloads; a corrupt entry is
      // demoted to a miss so the per-key fallback runs the repair walk.
      if (out[indices[j]] && j < reply->crcs.size() &&
          crc32c(std::span<const std::uint8_t>(**out[indices[j]])) !=
              reply->crcs[j]) {
        metrics.counter("kv.integrity.detected").add();
        out[indices[j]] = std::nullopt;
      }
      // A replicated miss may still hit further along the chain (e.g. the
      // primary restarted empty).
      if (!out[indices[j]] && effective_factor() > 1) {
        auto one = co_await get(keys[indices[j]]);
        if (one.is_ok()) out[indices[j]] = std::move(one).value();
      }
    }
  }
  co_return out;
}

sim::Task<Status> Client::erase(std::string key) {
  const std::uint32_t r = effective_factor();
  if (r == 1) {
    const net::NodeId server = server_for(key);
    co_return co_await erase_on(server, std::move(key));
  }
  // Erase everywhere the key may live; a down or already-empty replica is
  // not an error as long as the primary copy is handled.
  const auto replicas = ring_.successors(key, r);
  Status primary = co_await erase_on(servers_[replicas[0]], key);
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    Status st = co_await erase_on(servers_[replicas[i]], key);
    if (primary.code() == StatusCode::kUnavailable && st.is_ok()) {
      primary = st;
    }
  }
  co_return primary;
}

sim::Task<Status> Client::erase_on(net::NodeId server,
                                   std::string key) {
  auto req = std::make_shared<const EraseRequest>(EraseRequest{std::move(key)});
  auto result = co_await hub_->call<void>(self_, server, kOpErase, req);
  co_return result.status();
}

sim::Task<Status> Client::pin(std::string key, bool pinned) {
  const std::uint32_t r = effective_factor();
  if (r == 1) {
    const net::NodeId server = server_for(key);
    co_return co_await pin_on(server, std::move(key), pinned);
  }
  const auto replicas = ring_.successors(key, r);
  Status primary = co_await pin_on(servers_[replicas[0]], key, pinned);
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    Status st = co_await pin_on(servers_[replicas[i]], key, pinned);
    if (primary.code() == StatusCode::kUnavailable && st.is_ok()) {
      primary = st;
    }
  }
  co_return primary;
}

sim::Task<Status> Client::pin_on(net::NodeId server, std::string key,
                                 bool pinned) {
  auto req = std::make_shared<const PinRequest>(PinRequest{std::move(key), pinned});
  auto result = co_await hub_->call<void>(self_, server, kOpPin, req);
  co_return result.status();
}

sim::Task<Result<PingReply>> Client::ping(net::NodeId server) {
  static const net::RetryPolicy kNoRetry{};
  auto req = std::make_shared<const PingRequest>();
  auto result = co_await hub_->call<PingReply>(
      self_, server, kOpPing, req,
      net::CallOptions{.idempotent = true, .policy = &kNoRetry});
  if (!result.is_ok()) co_return result.status();
  co_return *result.value();
}

sim::Task<Result<StatsReply>> Client::server_stats(
    std::uint32_t server_index) {
  assert(server_index < servers_.size());
  auto req = std::make_shared<const StatsRequest>();
  auto result = co_await hub_->call<StatsReply>(
      self_, servers_[server_index], kOpStats, req);
  if (!result.is_ok()) co_return result.status();
  co_return *result.value();
}

}  // namespace hpcbb::kv
