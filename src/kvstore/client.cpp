#include "kvstore/client.h"

#include <cassert>
#include <map>

namespace hpcbb::kv {

Client::Client(net::RpcHub& hub, net::NodeId self,
               std::vector<net::NodeId> servers, const ClientParams& params)
    : hub_(&hub),
      self_(self),
      servers_(std::move(servers)),
      ring_(static_cast<std::uint32_t>(servers_.size())),
      params_(params) {
  assert(!servers_.empty());
}

bool Client::use_rdma(std::uint64_t bytes) const noexcept {
  return hub_->transport().params().one_sided_capable &&
         bytes >= params_.rdma_threshold_bytes;
}

sim::Task<Status> Client::set(std::string key, BytesPtr value,
                              bool pinned, std::uint64_t expiry_ns,
                              std::uint64_t op_id) {
  const net::NodeId server = server_for(key);
  if (!params_.failover) {
    co_return co_await set_on(server, std::move(key), std::move(value),
                              pinned, expiry_ns, op_id);
  }
  const net::NodeId fallback = failover_server_for(key);
  Status st = co_await set_on(server, key, value, pinned, expiry_ns, op_id);
  if (st.code() == StatusCode::kUnavailable && fallback != server) {
    hub_->transport().fabric().simulation().metrics()
        .counter("kv.failover.set").add();
    st = co_await set_on(fallback, std::move(key), std::move(value), pinned,
                         expiry_ns, op_id);
  }
  co_return st;
}

sim::Task<Status> Client::set_on(net::NodeId server, std::string key,
                                 BytesPtr value, bool pinned,
                                 std::uint64_t expiry_ns,
                                 std::uint64_t op_id) {
  auto req = std::make_shared<SetRequest>();
  req->key = std::move(key);
  req->value = std::move(value);
  req->pinned = pinned;
  req->expiry_ns = expiry_ns;
  req->payload_by_rdma = use_rdma(req->value->size());
  req->op_id = op_id;

  if (req->payload_by_rdma) {
    // Push the payload into the server's registered region first; the
    // control message then carries only key + metadata.
    Status st = co_await hub_->transport().rdma_write(self_, server,
                                                      req->value->size());
    if (!st.is_ok()) co_return st;
  }
  auto result = co_await hub_->call<void>(self_, server, kOpSet,
                                          std::shared_ptr<const SetRequest>(
                                              std::move(req)));
  co_return result.status();
}

sim::Task<Result<BytesPtr>> Client::get(std::string key,
                                        std::uint64_t op_id) {
  const net::NodeId server = server_for(key);
  if (!params_.failover) {
    co_return co_await get_from(server, std::move(key), op_id);
  }
  const net::NodeId fallback = failover_server_for(key);
  Result<BytesPtr> result = co_await get_from(server, key, op_id);
  if (!result.is_ok() && fallback != server) {
    const StatusCode code = result.status().code();
    // kNotFound too: data written while the owner was down lives on the
    // failover owner, and a restarted-empty owner misses on everything.
    if (code == StatusCode::kUnavailable || code == StatusCode::kNotFound) {
      hub_->transport().fabric().simulation().metrics()
          .counter("kv.failover.get").add();
      result = co_await get_from(fallback, std::move(key), op_id);
    }
  }
  co_return result;
}

sim::Task<Result<BytesPtr>> Client::get_from(net::NodeId server,
                                             std::string key,
                                             std::uint64_t op_id) {
  auto req =
      std::make_shared<const GetRequest>(GetRequest{std::move(key), op_id});
  auto result = co_await hub_->call<GetReply>(self_, server, kOpGet, req);
  if (!result.is_ok()) co_return result.status();
  const auto& reply = result.value();
  if (!reply->inline_payload) {
    // Metadata-only reply: pull the payload with a one-sided READ.
    Status st = co_await hub_->transport().rdma_read(self_, server,
                                                     reply->value->size());
    if (!st.is_ok()) co_return st;
  }
  co_return reply->value;
}

sim::Task<Result<std::vector<std::optional<BytesPtr>>>> Client::multi_get(
    std::vector<std::string> keys) {
  // Group keys by owning server, preserving each key's output slot.
  std::map<net::NodeId, std::vector<std::size_t>> by_server;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    by_server[server_for(keys[i])].push_back(i);
  }

  std::vector<std::optional<BytesPtr>> out(keys.size());
  for (const auto& [server, indices] : by_server) {
    auto req = std::make_shared<MultiGetRequest>();
    req->keys.reserve(indices.size());
    for (const std::size_t i : indices) req->keys.push_back(keys[i]);
    auto result = co_await hub_->call<MultiGetReply>(
        self_, server, kOpMultiGet,
        std::shared_ptr<const MultiGetRequest>(std::move(req)));
    if (!result.is_ok()) co_return result.status();
    const auto& reply = result.value();
    if (reply->values.size() != indices.size()) {
      co_return error(StatusCode::kInternal, "multi-get shape mismatch");
    }
    for (std::size_t j = 0; j < indices.size(); ++j) {
      out[indices[j]] = reply->values[j];
    }
  }
  co_return out;
}

sim::Task<Status> Client::erase(std::string key) {
  const net::NodeId server = server_for(key);
  return erase_on(server, std::move(key));
}

sim::Task<Status> Client::erase_on(net::NodeId server,
                                   std::string key) {
  auto req = std::make_shared<const EraseRequest>(EraseRequest{std::move(key)});
  auto result = co_await hub_->call<void>(self_, server, kOpErase, req);
  co_return result.status();
}

sim::Task<Status> Client::pin(std::string key, bool pinned) {
  const net::NodeId server = server_for(key);
  return pin_on(server, std::move(key), pinned);
}

sim::Task<Status> Client::pin_on(net::NodeId server, std::string key,
                                 bool pinned) {
  auto req = std::make_shared<const PinRequest>(PinRequest{std::move(key), pinned});
  auto result = co_await hub_->call<void>(self_, server, kOpPin, req);
  co_return result.status();
}

sim::Task<Result<PingReply>> Client::ping(net::NodeId server) {
  static const net::RetryPolicy kNoRetry{};
  auto req = std::make_shared<const PingRequest>();
  auto result = co_await hub_->call<PingReply>(
      self_, server, kOpPing, req,
      net::CallOptions{.idempotent = true, .policy = &kNoRetry});
  if (!result.is_ok()) co_return result.status();
  co_return *result.value();
}

sim::Task<Result<StatsReply>> Client::server_stats(
    std::uint32_t server_index) {
  assert(server_index < servers_.size());
  auto req = std::make_shared<const StatsRequest>();
  auto result = co_await hub_->call<StatsReply>(
      self_, servers_[server_index], kOpStats, req);
  if (!result.is_ok()) co_return result.status();
  co_return *result.value();
}

}  // namespace hpcbb::kv
