// KV wire protocol messages. Bodies carry real payload bytes end-to-end
// (data fidelity); wire_size() is what the transport charges, and differs
// between the inline (two-sided) and RDMA (one-sided) paths exactly as in
// RDMA-Memcached: large values move by RDMA READ/WRITE and are therefore
// absent from the two-sided message size.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "net/rpc.h"

namespace hpcbb::kv {

inline constexpr net::Port kKvServerPort = 11211;  // of course

inline constexpr std::uint64_t kMsgHeaderBytes = 48;

struct SetRequest {
  std::string key;
  BytesPtr value;
  bool pinned = false;
  std::uint64_t expiry_ns = 0;
  bool payload_by_rdma = false;  // payload already RDMA-WRITTEN by client
  std::uint64_t op_id = 0;       // causal trace id; rides the header

  [[nodiscard]] std::uint64_t wire_size() const {
    return kMsgHeaderBytes + key.size() +
           (payload_by_rdma ? 0 : value->size());
  }
};

struct GetRequest {
  std::string key;
  std::uint64_t op_id = 0;  // causal trace id; rides the header

  [[nodiscard]] std::uint64_t wire_size() const {
    return kMsgHeaderBytes + key.size();
  }
};

struct GetReply {
  BytesPtr value;
  bool inline_payload = true;  // false: client fetches via RDMA READ
  // Fill-time CRC32C and pin state. Verified again client-side; read-repair
  // forwards the pin so a repaired dirty chunk stays eviction-proof. Both
  // ride the existing header budget — wire_size is unchanged, keeping
  // healthy-run timing identical.
  std::uint32_t value_crc = 0;
  bool pinned = false;

  [[nodiscard]] std::uint64_t wire_size() const {
    return kMsgHeaderBytes + (inline_payload ? value->size() : 0);
  }
};

struct MultiGetRequest {
  std::vector<std::string> keys;

  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t total = kMsgHeaderBytes;
    for (const auto& k : keys) total += k.size() + 4;
    return total;
  }
};

struct MultiGetReply {
  std::vector<std::optional<BytesPtr>> values;  // nullopt = miss or corrupt
  // Per-entry fill-time CRC32C (0 for absent entries), header-budgeted.
  std::vector<std::uint32_t> crcs;

  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t total = kMsgHeaderBytes;
    for (const auto& v : values) total += 4 + (v ? (*v)->size() : 0);
    return total;
  }
};

struct EraseRequest {
  std::string key;

  [[nodiscard]] std::uint64_t wire_size() const {
    return kMsgHeaderBytes + key.size();
  }
};

struct PinRequest {
  std::string key;
  bool pinned = false;

  [[nodiscard]] std::uint64_t wire_size() const {
    return kMsgHeaderBytes + key.size();
  }
};

struct StatsRequest {
  [[nodiscard]] std::uint64_t wire_size() const { return kMsgHeaderBytes; }
};

// Liveness probe for failure detection. The reply's incarnation number is
// bumped on every restart, so a monitor can tell "still the server I knew"
// from "came back empty" without comparing contents.
struct PingRequest {
  [[nodiscard]] std::uint64_t wire_size() const { return kMsgHeaderBytes; }
};

struct PingReply {
  std::uint64_t incarnation = 0;

  [[nodiscard]] std::uint64_t wire_size() const { return kMsgHeaderBytes + 8; }
};

struct StatsReply {
  std::uint64_t items = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t set_failures = 0;

  [[nodiscard]] std::uint64_t wire_size() const { return kMsgHeaderBytes + 48; }
};

// Operation discriminator carried in the port: each op type gets its own
// sub-port so the RpcHub dispatches without a tag field.
inline constexpr net::Port kOpSet = kKvServerPort;
inline constexpr net::Port kOpGet = kKvServerPort + 1;
inline constexpr net::Port kOpMultiGet = kKvServerPort + 2;
inline constexpr net::Port kOpErase = kKvServerPort + 3;
inline constexpr net::Port kOpPin = kKvServerPort + 4;
inline constexpr net::Port kOpStats = kKvServerPort + 5;
inline constexpr net::Port kOpPing = kKvServerPort + 6;

}  // namespace hpcbb::kv
