#include "kvstore/server.h"

#include "common/metrics.h"
#include "sim/trace.h"

namespace hpcbb::kv {

Server::Server(net::RpcHub& hub, net::NodeId node, const ServerParams& params)
    : hub_(&hub), node_(node), params_(params), store_(params.store) {
  if (params_.persist_writes) {
    journal_ = std::make_unique<storage::Device>(
        hub_->transport().fabric().simulation(), params_.journal);
  }
  bind_all();
}

Server::~Server() {
  if (!crashed_) unbind_all();
}

void Server::bind_all() {
  hub_->bind(node_, kOpSet, net::typed_handler<SetRequest>(
                                [this](auto req) { return handle_set(req); }));
  hub_->bind(node_, kOpGet, net::typed_handler<GetRequest>(
                                [this](auto req) { return handle_get(req); }));
  hub_->bind(node_, kOpMultiGet,
             net::typed_handler<MultiGetRequest>(
                 [this](auto req) { return handle_multi_get(req); }));
  hub_->bind(node_, kOpErase,
             net::typed_handler<EraseRequest>(
                 [this](auto req) { return handle_erase(req); }));
  hub_->bind(node_, kOpPin, net::typed_handler<PinRequest>(
                                [this](auto req) { return handle_pin(req); }));
  hub_->bind(node_, kOpStats,
             net::typed_handler<StatsRequest>(
                 [this](auto req) { return handle_stats(req); }));
  hub_->bind(node_, kOpPing,
             net::typed_handler<PingRequest>(
                 [this](auto req) { return handle_ping(req); }));
}

void Server::unbind_all() {
  for (const net::Port port : {kOpSet, kOpGet, kOpMultiGet, kOpErase, kOpPin,
                               kOpStats, kOpPing}) {
    hub_->unbind(node_, port);
  }
}

void Server::crash() {
  if (crashed_) return;
  crashed_ = true;
  store_.wipe();
  // Release the wiped bytes from the shared gauge immediately; waiting for
  // the next op would leave the accounting stale across the outage.
  update_store_metrics();
  unbind_all();
}

void Server::restart() {
  if (!crashed_) return;
  // Contents were wiped at crash time; wipe again for the restart-without-
  // crash path and to reset pin/slab accounting from any post-crash races.
  store_.wipe();
  update_store_metrics();
  journal_cursor_ = 0;
  ++incarnation_;
  crashed_ = false;
  bind_all();
  hub_->transport().fabric().simulation().metrics().counter("kv.restarts")
      .add();
}

sim::Task<void> Server::charge_op(std::uint64_t copy_bytes) {
  const sim::SimTime work =
      params_.base_op_ns +
      transfer_time_ns(copy_bytes, params_.memcpy_bytes_per_sec);
  return hub_->transport().fabric().charge_cpu(node_, work);
}

namespace {
net::RpcResponse unavailable() {
  return net::rpc_error(
      error(StatusCode::kUnavailable, "kv server crashed"));
}
}  // namespace

void Server::update_store_metrics() {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const StoreStats s = store_.stats();
  // Aggregate gauge moves by delta so all servers can share one series;
  // the per-node labeled gauge holds this store's absolute level.
  if (s.bytes >= metered_bytes_) {
    sim.metrics().gauge("kv.bytes").add(s.bytes - metered_bytes_);
  } else {
    sim.metrics().gauge("kv.bytes").sub(metered_bytes_ - s.bytes);
  }
  metered_bytes_ = s.bytes;
  sim.metrics().gauge(labeled("kv.bytes", "node", node_)).set(s.bytes);
  if (s.evictions > metered_evictions_) {
    sim.metrics().counter("kv.evictions").add(s.evictions -
                                              metered_evictions_);
    metered_evictions_ = s.evictions;
  }
}

sim::Task<net::RpcResponse> Server::handle_set(
    std::shared_ptr<const SetRequest> req) {
  if (crashed_) co_return unavailable();
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const sim::SimTime start = sim.now();
  sim::ScopedSpan span(sim.trace(), "set." + req->key, "kv", node_,
                       req->op_id);
  // RDMA-placed payloads skip the receive-path copy.
  co_await charge_op(req->payload_by_rdma ? 0 : req->value->size());
  Status st = store_.set(req->key, *req->value,
                         SetOptions{.pinned = req->pinned,
                                    .expiry_ns = req->expiry_ns});
  update_store_metrics();
  if (!st.is_ok()) co_return net::rpc_error(std::move(st));
  if (journal_ != nullptr) {
    // Append-only journal on the server's local SSD.
    co_await journal_->write(journal_cursor_, req->value->size());
    journal_cursor_ += req->value->size();
  }
  sim.metrics().histogram("kv.put").record(sim.now() - start);
  sim.metrics().counter("kv.put_bytes").add(req->value->size());
  co_return net::RpcResponse{Status::ok(), nullptr, kMsgHeaderBytes};
}

sim::Task<net::RpcResponse> Server::handle_get(
    std::shared_ptr<const GetRequest> req) {
  if (crashed_) co_return unavailable();
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const sim::SimTime start = sim.now();
  sim::ScopedSpan span(sim.trace(), "get." + req->key, "kv", node_,
                       req->op_id);
  const std::uint64_t now = sim.now();
  Result<VerifiedValue> value = store_.get_verified(req->key, now);
  if (!value.is_ok()) {
    co_await charge_op(0);
    if (value.code() == StatusCode::kDataLoss) {
      sim.metrics().counter("kv.integrity.detected").add();
    } else {
      sim.metrics().counter("kv.misses").add();
    }
    sim.metrics().histogram("kv.get").record(sim.now() - start);
    co_return net::rpc_error(value.status());
  }
  const bool use_rdma =
      hub_->transport().params().one_sided_capable &&
      value.value().value.size() >= params_.rdma_threshold_bytes;
  // Inline replies copy the value onto the send path; RDMA replies only
  // pass metadata — the client pulls the payload with a one-sided READ.
  co_await charge_op(use_rdma ? 0 : value.value().value.size());
  auto reply = std::make_shared<GetReply>();
  reply->value_crc = value.value().crc;
  reply->pinned = value.value().pinned;
  reply->value = make_bytes(std::move(value.value().value));
  reply->inline_payload = !use_rdma;
  const std::uint64_t wire = reply->wire_size();
  sim.metrics().counter("kv.hits").add();
  sim.metrics().counter("kv.get_bytes").add(reply->value->size());
  sim.metrics().histogram("kv.get").record(sim.now() - start);
  co_return net::rpc_ok<GetReply>(std::move(reply), wire);
}

sim::Task<net::RpcResponse> Server::handle_multi_get(
    std::shared_ptr<const MultiGetRequest> req) {
  if (crashed_) co_return unavailable();
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const std::uint64_t now = sim.now();
  auto reply = std::make_shared<MultiGetReply>();
  reply->values.reserve(req->keys.size());
  reply->crcs.reserve(req->keys.size());
  std::uint64_t copy_bytes = 0;
  for (const auto& key : req->keys) {
    Result<VerifiedValue> value = store_.get_verified(key, now);
    if (value.is_ok()) {
      copy_bytes += value.value().value.size();
      reply->crcs.push_back(value.value().crc);
      reply->values.emplace_back(make_bytes(std::move(value.value().value)));
    } else {
      // Corrupt entries surface as absent — the client's per-key fallback
      // then runs the verified get() walk, which detects and repairs.
      if (value.code() == StatusCode::kDataLoss) {
        sim.metrics().counter("kv.integrity.detected").add();
      }
      reply->crcs.push_back(0);
      reply->values.emplace_back(std::nullopt);
    }
  }
  co_await charge_op(copy_bytes);
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<MultiGetReply>(std::move(reply), wire);
}

sim::Task<net::RpcResponse> Server::handle_erase(
    std::shared_ptr<const EraseRequest> req) {
  if (crashed_) co_return unavailable();
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const sim::SimTime start = sim.now();
  co_await charge_op(0);
  const bool existed = store_.erase(req->key);
  update_store_metrics();
  sim.metrics().histogram("kv.delete").record(sim.now() - start);
  if (!existed) {
    co_return net::rpc_error(error(StatusCode::kNotFound, "key not found"));
  }
  co_return net::RpcResponse{Status::ok(), nullptr, kMsgHeaderBytes};
}

sim::Task<net::RpcResponse> Server::handle_pin(
    std::shared_ptr<const PinRequest> req) {
  if (crashed_) co_return unavailable();
  co_await charge_op(0);
  Status st = store_.set_pinned(req->key, req->pinned);
  if (!st.is_ok()) co_return net::rpc_error(std::move(st));
  co_return net::RpcResponse{Status::ok(), nullptr, kMsgHeaderBytes};
}

sim::Task<net::RpcResponse> Server::handle_stats(
    std::shared_ptr<const StatsRequest>) {
  if (crashed_) co_return unavailable();
  co_await charge_op(0);
  const StoreStats s = store_.stats();
  auto reply = std::make_shared<StatsReply>();
  reply->items = s.items;
  reply->bytes = s.bytes;
  reply->hits = s.hits;
  reply->misses = s.misses;
  reply->evictions = s.evictions;
  reply->set_failures = s.set_failures;
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<StatsReply>(std::move(reply), wire);
}

sim::Task<net::RpcResponse> Server::handle_ping(
    std::shared_ptr<const PingRequest>) {
  if (crashed_) co_return unavailable();
  co_await charge_op(0);
  auto reply = std::make_shared<PingReply>();
  reply->incarnation = incarnation_;
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<PingReply>(std::move(reply), wire);
}

}  // namespace hpcbb::kv
