#include "kvstore/store.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

#include "common/strings.h"

namespace hpcbb::kv {

// ---- Shard -----------------------------------------------------------------

class KvStore::Shard {
 public:
  Shard(const SlabParams& slab_params, std::uint32_t bucket_count)
      : slab_(slab_params), buckets_(bucket_count, nullptr),
        bucket_mask_(bucket_count - 1),
        lru_heads_(static_cast<std::size_t>(slab_.class_count()), nullptr),
        lru_tails_(static_cast<std::size_t>(slab_.class_count()), nullptr) {
    assert((bucket_count & bucket_mask_) == 0 && "bucket count power of two");
  }

  ~Shard() = default;  // chunk memory is owned by the slab's pages

  Status set(std::uint64_t hash, std::string_view key,
             std::span<const std::uint8_t> value, const SetOptions& options) {
    const std::uint64_t need = Item::footprint(key.size(), value.size());
    const int cls = slab_.class_for(need);
    if (cls < 0) {
      return error(StatusCode::kInvalidArgument,
                   "value too large for slab chunks");
    }

    std::lock_guard<std::mutex> lock(mu_);
    void* chunk = allocate_with_eviction(cls);
    if (chunk == nullptr) {
      ++stats_.set_failures;
      return error(StatusCode::kResourceExhausted,
                   "store memory exhausted (pinned data?)");
    }

    // Replace-under-same-key: unlink the old item only after the new chunk
    // is secured, so a failed set never destroys existing data.
    if (Item* old = find(hash, key)) {
      unlink_and_free(old);
    }

    auto* item = new (chunk) Item();
    item->key_hash = hash;
    item->slab_class = static_cast<std::uint16_t>(cls);
    item->pinned = options.pinned;
    item->expiry_ns = options.expiry_ns;
    item->fill(key, value);

    link_hash(item);
    link_lru_front(item);
    ++stats_.items;
    stats_.bytes += key.size() + value.size();
    if (item->pinned) stats_.pinned_bytes += key.size() + value.size();
    return Status::ok();
  }

  Result<VerifiedValue> get(std::uint64_t hash, std::string_view key,
                            std::uint64_t now_ns) {
    std::lock_guard<std::mutex> lock(mu_);
    Item* item = find_live(hash, key, now_ns);
    if (item == nullptr) {
      ++stats_.misses;
      return error(StatusCode::kNotFound, "key not found");
    }
    const auto value = item->value();
    if (crc32c(value) != item->value_crc) {
      // Keep the corrupt item: replicas must see "corrupt", not "missing",
      // or an R=1 store could silently re-admit the key as a fresh miss.
      ++stats_.integrity_failures;
      return error(StatusCode::kDataLoss, "value checksum mismatch");
    }
    ++stats_.hits;
    touch(item);
    return VerifiedValue{Bytes(value.begin(), value.end()), item->value_crc,
                         item->pinned};
  }

  Result<std::uint64_t> value_size(std::uint64_t hash, std::string_view key,
                                   std::uint64_t now_ns) {
    std::lock_guard<std::mutex> lock(mu_);
    Item* item = find_live(hash, key, now_ns);
    if (item == nullptr) {
      ++stats_.misses;
      return error(StatusCode::kNotFound, "key not found");
    }
    ++stats_.hits;
    touch(item);
    return std::uint64_t{item->value_len};
  }

  bool erase(std::uint64_t hash, std::string_view key) {
    std::lock_guard<std::mutex> lock(mu_);
    Item* item = find(hash, key);
    if (item == nullptr) return false;
    unlink_and_free(item);
    return true;
  }

  Status set_pinned(std::uint64_t hash, std::string_view key, bool pinned) {
    std::lock_guard<std::mutex> lock(mu_);
    Item* item = find(hash, key);
    if (item == nullptr) return error(StatusCode::kNotFound, "key not found");
    if (item->pinned != pinned) {
      const std::uint64_t payload =
          std::uint64_t{item->key_len} + item->value_len;
      if (pinned) {
        stats_.pinned_bytes += payload;
      } else {
        stats_.pinned_bytes -= std::min(stats_.pinned_bytes, payload);
      }
    }
    item->pinned = pinned;
    return Status::ok();
  }

  bool contains(std::uint64_t hash, std::string_view key,
                std::uint64_t now_ns) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (Item* it = buckets_[bucket_of(hash)]; it; it = it->hash_next) {
      if (it->key_hash == hash && it->key() == key) {
        return !expired(it, now_ns);
      }
    }
    return false;
  }

  void wipe() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& head : buckets_) {
      while (head != nullptr) {
        Item* item = head;
        head = item->hash_next;
        // Hash chains own the items; LRU is cleared wholesale below.
        slab_.deallocate(item->slab_class, item);
      }
    }
    std::fill(lru_heads_.begin(), lru_heads_.end(), nullptr);
    std::fill(lru_tails_.begin(), lru_tails_.end(), nullptr);
    stats_.items = 0;
    stats_.bytes = 0;
    stats_.pinned_bytes = 0;
  }

  [[nodiscard]] StoreStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  void collect_keys(std::vector<std::string>& out) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (Item* head : buckets_) {
      for (Item* it = head; it; it = it->hash_next) {
        out.emplace_back(it->key());
      }
    }
  }

  bool corrupt(std::uint64_t hash, std::string_view key, CorruptKind kind,
               std::uint64_t selector) {
    std::lock_guard<std::mutex> lock(mu_);
    Item* item = find(hash, key);
    if (item == nullptr) return false;
    return apply_corruption(item->mutable_value(), kind, selector);
  }

  [[nodiscard]] const SlabAllocator& slab() const noexcept { return slab_; }

 private:
  [[nodiscard]] std::size_t bucket_of(std::uint64_t hash) const noexcept {
    // Low bits select the shard (KvStore); mix the rest for the bucket.
    return (hash >> 16) & bucket_mask_;
  }

  Item* find(std::uint64_t hash, std::string_view key) const noexcept {
    for (Item* it = buckets_[bucket_of(hash)]; it; it = it->hash_next) {
      if (it->key_hash == hash && it->key() == key) return it;
    }
    return nullptr;
  }

  static bool expired(const Item* item, std::uint64_t now_ns) noexcept {
    return item->expiry_ns != 0 && now_ns >= item->expiry_ns;
  }

  Item* find_live(std::uint64_t hash, std::string_view key,
                  std::uint64_t now_ns) {
    Item* item = find(hash, key);
    if (item == nullptr) return nullptr;
    if (expired(item, now_ns)) {
      unlink_and_free(item);
      ++stats_.expired;
      return nullptr;
    }
    return item;
  }

  // Allocation with LRU eviction from the same class; pinned items are
  // skipped (they are the burst buffer's not-yet-durable blocks).
  void* allocate_with_eviction(int cls) {
    if (void* chunk = slab_.allocate(cls)) return chunk;
    Item* victim = lru_tails_[static_cast<std::size_t>(cls)];
    while (victim != nullptr && victim->pinned) victim = victim->lru_prev;
    if (victim == nullptr) return nullptr;
    unlink_and_free(victim);
    ++stats_.evictions;
    return slab_.allocate(cls);
  }

  void link_hash(Item* item) noexcept {
    Item*& head = buckets_[bucket_of(item->key_hash)];
    item->hash_next = head;
    head = item;
  }

  void unlink_hash(Item* item) noexcept {
    Item** cursor = &buckets_[bucket_of(item->key_hash)];
    while (*cursor != item) cursor = &(*cursor)->hash_next;
    *cursor = item->hash_next;
  }

  void link_lru_front(Item* item) noexcept {
    auto& head = lru_heads_[item->slab_class];
    auto& tail = lru_tails_[item->slab_class];
    item->lru_prev = nullptr;
    item->lru_next = head;
    if (head != nullptr) head->lru_prev = item;
    head = item;
    if (tail == nullptr) tail = item;
  }

  void unlink_lru(Item* item) noexcept {
    auto& head = lru_heads_[item->slab_class];
    auto& tail = lru_tails_[item->slab_class];
    if (item->lru_prev != nullptr) item->lru_prev->lru_next = item->lru_next;
    if (item->lru_next != nullptr) item->lru_next->lru_prev = item->lru_prev;
    if (head == item) head = item->lru_next;
    if (tail == item) tail = item->lru_prev;
    item->lru_prev = item->lru_next = nullptr;
  }

  void touch(Item* item) noexcept {
    unlink_lru(item);
    link_lru_front(item);
  }

  void unlink_and_free(Item* item) noexcept {
    unlink_hash(item);
    unlink_lru(item);
    assert(stats_.items > 0);
    --stats_.items;
    stats_.bytes -= item->key_len + item->value_len;
    if (item->pinned) {
      const std::uint64_t payload =
          std::uint64_t{item->key_len} + item->value_len;
      stats_.pinned_bytes -= std::min(stats_.pinned_bytes, payload);
    }
    slab_.deallocate(item->slab_class, item);
  }

  mutable std::mutex mu_;
  SlabAllocator slab_;
  std::vector<Item*> buckets_;
  std::uint64_t bucket_mask_;
  std::vector<Item*> lru_heads_;
  std::vector<Item*> lru_tails_;
  StoreStats stats_;
};

// ---- KvStore ---------------------------------------------------------------

KvStore::KvStore(const StoreParams& params) {
  assert(params.shard_count > 0);
  assert((params.buckets_per_shard & (params.buckets_per_shard - 1)) == 0);
  // Every shard must afford at least one slab page, or large values would
  // be unstorable; small budgets get fewer shards rather than dead ones.
  const std::uint64_t max_shards =
      std::max<std::uint64_t>(1, params.memory_budget / params.slab.page_size);
  const auto shard_count = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(params.shard_count, max_shards));
  SlabParams slab = params.slab;
  slab.memory_budget = params.memory_budget / shard_count;
  shards_.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(slab, params.buckets_per_shard));
  }
}

KvStore::~KvStore() = default;

KvStore::Shard& KvStore::shard_for(std::uint64_t hash) const noexcept {
  return *shards_[hash % shards_.size()];
}

Status KvStore::set(std::string_view key, std::span<const std::uint8_t> value,
                    const SetOptions& options) {
  const std::uint64_t hash = fnv1a(key);
  if (key.starts_with(kReservedMetaPrefix)) {
    // Reserved control-plane range: journal/checkpoint keys are pinned
    // unconditionally — evicting a journal record would silently undo an
    // acknowledged metadata mutation.
    SetOptions forced = options;
    forced.pinned = true;
    return shard_for(hash).set(hash, key, value, forced);
  }
  return shard_for(hash).set(hash, key, value, options);
}

Result<Bytes> KvStore::get(std::string_view key, std::uint64_t now_ns) {
  auto verified = get_verified(key, now_ns);
  if (!verified.is_ok()) return verified.status();
  return std::move(verified.value().value);
}

Result<VerifiedValue> KvStore::get_verified(std::string_view key,
                                            std::uint64_t now_ns) {
  const std::uint64_t hash = fnv1a(key);
  return shard_for(hash).get(hash, key, now_ns);
}

Result<std::uint64_t> KvStore::value_size(std::string_view key,
                                          std::uint64_t now_ns) {
  const std::uint64_t hash = fnv1a(key);
  return shard_for(hash).value_size(hash, key, now_ns);
}

bool KvStore::erase(std::string_view key) {
  const std::uint64_t hash = fnv1a(key);
  return shard_for(hash).erase(hash, key);
}

Status KvStore::set_pinned(std::string_view key, bool pinned) {
  const std::uint64_t hash = fnv1a(key);
  return shard_for(hash).set_pinned(hash, key, pinned);
}

bool KvStore::contains(std::string_view key, std::uint64_t now_ns) const {
  const std::uint64_t hash = fnv1a(key);
  return shard_for(hash).contains(hash, key, now_ns);
}

void KvStore::wipe() {
  for (auto& shard : shards_) shard->wipe();
}

std::string KvStore::corrupt_one(std::uint64_t selector, CorruptKind kind,
                                 std::string_view key) {
  std::string target(key);
  if (target.empty()) {
    // Sorted global key list keeps the pick independent of shard layout.
    std::vector<std::string> keys;
    for (const auto& shard : shards_) shard->collect_keys(keys);
    if (keys.empty()) return {};
    std::sort(keys.begin(), keys.end());
    target = keys[selector % keys.size()];
  }
  const std::uint64_t hash = fnv1a(target);
  if (!shard_for(hash).corrupt(hash, target, kind, selector)) return {};
  return target;
}

StoreStats KvStore::stats() const {
  StoreStats total;
  for (const auto& shard : shards_) {
    const StoreStats s = shard->stats();
    total.items += s.items;
    total.bytes += s.bytes;
    total.pinned_bytes += s.pinned_bytes;
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.expired += s.expired;
    total.set_failures += s.set_failures;
  }
  return total;
}

std::uint64_t KvStore::memory_budget() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->slab().memory_budget();
  return total;
}

std::uint64_t KvStore::max_value_size(std::uint64_t key_len) const {
  const SlabAllocator& slab = shards_.front()->slab();
  const std::uint64_t chunk = slab.chunk_size(slab.class_count() - 1);
  const std::uint64_t overhead = sizeof(Item) + key_len;
  return chunk > overhead ? chunk - overhead : 0;
}

}  // namespace hpcbb::kv
