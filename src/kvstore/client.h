// KV client: consistent-hash sharding across servers, with the hybrid
// transport protocol of RDMA-Memcached — two-sided messages for small
// values and control, one-sided RDMA READ/WRITE for large payloads.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/properties.h"
#include "common/status.h"
#include "common/units.h"
#include "kvstore/protocol.h"
#include "kvstore/ring.h"
#include "net/rpc.h"

namespace hpcbb::kv {

// When does a replicated set() acknowledge?  kPrimary acks as soon as the
// first replica accepts the write and completes the remaining copies in the
// background; kAll waits for every replica write to finish before returning
// (data is on every live replica at ack time).
enum class AckMode { kPrimary, kAll };

struct ClientParams {
  std::uint64_t rdma_threshold_bytes = 16 * KiB;
  // Ring failover: when the owner of a key is unreachable, set()/get() walk
  // successive ring servers until one answers or the ring is exhausted
  // (get() also on miss, since data written during an outage lives on the
  // failover owners). Off by default: healthy runs must not pay an extra
  // round trip for every true miss.
  bool failover = false;
  // Replication factor R: writes fan out to the first R distinct successors
  // of the key on the ring; reads fall through the same list. 1 (default)
  // keeps the unreplicated fast path.
  std::uint32_t replication_factor = 1;
  AckMode ack = AckMode::kPrimary;

  // Reads kv.failover, kv.repl.factor, kv.repl.ack (primary|all) on top of
  // the current values.
  void apply_properties(const Properties& props);
};

class Client {
 public:
  Client(net::RpcHub& hub, net::NodeId self,
         std::vector<net::NodeId> servers, const ClientParams& params = {});

  // Store a value under `key` on its ring owner. `op_id` (optional) tags the
  // server-side trace spans with the caller's causal operation id.
  sim::Task<Status> set(std::string key, BytesPtr value,
                        bool pinned = false, std::uint64_t expiry_ns = 0,
                        std::uint64_t op_id = 0);

  sim::Task<Result<BytesPtr>> get(std::string key, std::uint64_t op_id = 0);

  // Batched get from one round trip per involved server.
  sim::Task<Result<std::vector<std::optional<BytesPtr>>>> multi_get(
      std::vector<std::string> keys);

  sim::Task<Status> erase(std::string key);
  sim::Task<Status> pin(std::string key, bool pinned);
  sim::Task<Result<StatsReply>> server_stats(std::uint32_t server_index);

  // Liveness probe for failure detectors. Never retried at the RPC layer —
  // a probe that needs retries is exactly the signal the detector wants.
  sim::Task<Result<PingReply>> ping(net::NodeId server);

  [[nodiscard]] net::NodeId server_for(const std::string& key) const {
    return servers_[ring_.server_for(key)];
  }
  [[nodiscard]] std::uint32_t server_index_for(const std::string& key) const {
    return ring_.server_for(key);
  }
  [[nodiscard]] net::NodeId failover_server_for(const std::string& key) const {
    return servers_[ring_.next_server_for(key)];
  }
  // Server indices of the key's R replicas, primary first.
  [[nodiscard]] std::vector<std::uint32_t> replica_indices(
      const std::string& key) const {
    return ring_.successors(key, params_.replication_factor);
  }
  [[nodiscard]] const HashRing& ring() const noexcept { return ring_; }
  [[nodiscard]] const ClientParams& params() const noexcept { return params_; }
  [[nodiscard]] const std::vector<net::NodeId>& servers() const noexcept {
    return servers_;
  }
  [[nodiscard]] net::NodeId self() const noexcept { return self_; }

  // Store a value on an explicit server (replica placement by upper layers).
  sim::Task<Status> set_on(net::NodeId server, std::string key,
                           BytesPtr value, bool pinned,
                           std::uint64_t expiry_ns = 0,
                           std::uint64_t op_id = 0);
  sim::Task<Result<BytesPtr>> get_from(net::NodeId server,
                                       std::string key,
                                       std::uint64_t op_id = 0);
  sim::Task<Status> erase_on(net::NodeId server, std::string key);
  sim::Task<Status> pin_on(net::NodeId server, std::string key,
                           bool pinned);

 private:
  // One server round trip with end-to-end verification: the payload is
  // re-checksummed against the reply's fill-time CRC at the client (the
  // server already verified against its store); a mismatch is kDataLoss.
  sim::Task<Result<std::shared_ptr<const GetReply>>> fetch_from(
      net::NodeId server, std::string key, std::uint64_t op_id);
  [[nodiscard]] bool use_rdma(std::uint64_t bytes) const noexcept;
  // Replication factor and walk depth clamped to the actual server count.
  [[nodiscard]] std::uint32_t effective_factor() const noexcept;
  [[nodiscard]] std::uint32_t walk_limit() const noexcept;

  net::RpcHub* hub_;
  net::NodeId self_;
  std::vector<net::NodeId> servers_;
  HashRing ring_;
  ClientParams params_;
};

}  // namespace hpcbb::kv
