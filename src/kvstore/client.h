// KV client: consistent-hash sharding across servers, with the hybrid
// transport protocol of RDMA-Memcached — two-sided messages for small
// values and control, one-sided RDMA READ/WRITE for large payloads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/units.h"
#include "kvstore/protocol.h"
#include "kvstore/ring.h"
#include "net/rpc.h"

namespace hpcbb::kv {

struct ClientParams {
  std::uint64_t rdma_threshold_bytes = 16 * KiB;
  // Ring failover: when the owner of a key is unreachable, set()/get() try
  // the next server on the ring (get() also on miss, since data written
  // during an outage lives on the failover owner). Off by default: healthy
  // runs must not pay an extra round trip for every true miss.
  bool failover = false;
};

class Client {
 public:
  Client(net::RpcHub& hub, net::NodeId self,
         std::vector<net::NodeId> servers, const ClientParams& params = {});

  // Store a value under `key` on its ring owner. `op_id` (optional) tags the
  // server-side trace spans with the caller's causal operation id.
  sim::Task<Status> set(std::string key, BytesPtr value,
                        bool pinned = false, std::uint64_t expiry_ns = 0,
                        std::uint64_t op_id = 0);

  sim::Task<Result<BytesPtr>> get(std::string key, std::uint64_t op_id = 0);

  // Batched get from one round trip per involved server.
  sim::Task<Result<std::vector<std::optional<BytesPtr>>>> multi_get(
      std::vector<std::string> keys);

  sim::Task<Status> erase(std::string key);
  sim::Task<Status> pin(std::string key, bool pinned);
  sim::Task<Result<StatsReply>> server_stats(std::uint32_t server_index);

  // Liveness probe for failure detectors. Never retried at the RPC layer —
  // a probe that needs retries is exactly the signal the detector wants.
  sim::Task<Result<PingReply>> ping(net::NodeId server);

  [[nodiscard]] net::NodeId server_for(const std::string& key) const {
    return servers_[ring_.server_for(key)];
  }
  [[nodiscard]] std::uint32_t server_index_for(const std::string& key) const {
    return ring_.server_for(key);
  }
  [[nodiscard]] net::NodeId failover_server_for(const std::string& key) const {
    return servers_[ring_.next_server_for(key)];
  }
  [[nodiscard]] const std::vector<net::NodeId>& servers() const noexcept {
    return servers_;
  }
  [[nodiscard]] net::NodeId self() const noexcept { return self_; }

  // Store a value on an explicit server (replica placement by upper layers).
  sim::Task<Status> set_on(net::NodeId server, std::string key,
                           BytesPtr value, bool pinned,
                           std::uint64_t expiry_ns = 0,
                           std::uint64_t op_id = 0);
  sim::Task<Result<BytesPtr>> get_from(net::NodeId server,
                                       std::string key,
                                       std::uint64_t op_id = 0);
  sim::Task<Status> erase_on(net::NodeId server, std::string key);
  sim::Task<Status> pin_on(net::NodeId server, std::string key,
                           bool pinned);

 private:
  [[nodiscard]] bool use_rdma(std::uint64_t bytes) const noexcept;

  net::RpcHub* hub_;
  net::NodeId self_;
  std::vector<net::NodeId> servers_;
  HashRing ring_;
  ClientParams params_;
};

}  // namespace hpcbb::kv
