// Ketama-style consistent-hash ring for client-side sharding across KV
// servers (how memcached clients distribute keys). Virtual nodes smooth the
// load; removing a server only remaps its own arc.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"

namespace hpcbb::kv {

// FNV-1a has weak avalanche on short, similar strings ("server-0#1" vs
// "server-0#2" differ only in a few bits), which clusters ring points by
// server and defeats load spreading. A SplitMix64 finalizer fixes that.
inline std::uint64_t ring_hash(std::string_view s) noexcept {
  return SplitMix64(fnv1a(s)).next();
}

class HashRing {
 public:
  static constexpr std::uint32_t kDefaultVnodes = 100;

  explicit HashRing(std::uint32_t server_count,
                    std::uint32_t vnodes_per_server = kDefaultVnodes) {
    assert(server_count > 0);
    points_.reserve(static_cast<std::size_t>(server_count) * vnodes_per_server);
    for (std::uint32_t s = 0; s < server_count; ++s) {
      for (std::uint32_t v = 0; v < vnodes_per_server; ++v) {
        const std::string label =
            "server-" + std::to_string(s) + "#" + std::to_string(v);
        points_.push_back({ring_hash(label), s});
      }
    }
    std::sort(points_.begin(), points_.end());
    server_count_ = server_count;
  }

  // Server index owning `key`.
  [[nodiscard]] std::uint32_t server_for(std::string_view key) const {
    return server_for_hash(ring_hash(key));
  }

  [[nodiscard]] std::uint32_t server_for_hash(std::uint64_t hash) const {
    const auto it = std::upper_bound(points_.begin(), points_.end(),
                                     Point{hash, ~0u});
    return (it == points_.end() ? points_.front() : *it).server;
  }

  // The next distinct server clockwise from the key's owner — the failover
  // target / first replica location.
  [[nodiscard]] std::uint32_t next_server_for(std::string_view key) const {
    const auto repl = successors(key, 2);
    return repl.size() > 1 ? repl[1] : repl[0];
  }

  // The first `count` distinct servers clockwise from the key's hash: the
  // owner first, then the replica chain in failover order. Capped at the
  // server count; a full-count request enumerates every server, giving the
  // ring-exhausting failover walk. Purely a function of (ring, key), so
  // every client and the recovery manager agree on replica sets without
  // coordination.
  [[nodiscard]] std::vector<std::uint32_t> successors(
      std::string_view key, std::uint32_t count) const {
    std::vector<std::uint32_t> out;
    const std::uint32_t want =
        std::min(std::max(count, 1u), server_count_);
    out.reserve(want);
    const std::uint64_t hash = ring_hash(key);
    auto it = std::upper_bound(points_.begin(), points_.end(),
                               Point{hash, ~0u});
    for (std::size_t step = 0; step < points_.size() && out.size() < want;
         ++step, ++it) {
      if (it == points_.end()) it = points_.begin();
      if (std::find(out.begin(), out.end(), it->server) == out.end()) {
        out.push_back(it->server);
      }
    }
    return out;
  }

  [[nodiscard]] std::uint32_t server_count() const noexcept {
    return server_count_;
  }

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t server;
    bool operator<(const Point& o) const noexcept {
      return hash != o.hash ? hash < o.hash : server < o.server;
    }
  };

  std::vector<Point> points_;
  std::uint32_t server_count_ = 0;
};

}  // namespace hpcbb::kv
