// In-chunk item layout: header followed by key bytes then value bytes,
// placed inside a slab chunk (memcached's layout). Items are linked into
// a per-class LRU list and a hash chain.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

#include "common/crc32c.h"

namespace hpcbb::kv {

struct Item {
  Item* lru_prev = nullptr;
  Item* lru_next = nullptr;
  Item* hash_next = nullptr;
  std::uint64_t key_hash = 0;
  std::uint64_t expiry_ns = 0;  // absolute; 0 = never expires
  std::uint32_t key_len = 0;
  std::uint32_t value_len = 0;
  std::uint32_t value_crc = 0;  // CRC32C of the value bytes, set at fill()
  std::uint16_t slab_class = 0;
  bool pinned = false;  // pinned items are skipped by eviction

  [[nodiscard]] static std::uint64_t footprint(std::uint64_t key_len,
                                               std::uint64_t value_len) noexcept {
    return sizeof(Item) + key_len + value_len;
  }

  [[nodiscard]] char* data() noexcept {
    return reinterpret_cast<char*>(this) + sizeof(Item);
  }
  [[nodiscard]] const char* data() const noexcept {
    return reinterpret_cast<const char*>(this) + sizeof(Item);
  }

  [[nodiscard]] std::string_view key() const noexcept {
    return {data(), key_len};
  }
  [[nodiscard]] std::span<const std::uint8_t> value() const noexcept {
    return {reinterpret_cast<const std::uint8_t*>(data()) + key_len,
            value_len};
  }

  // Mutable view for in-place corruption injection (tests/chaos only).
  [[nodiscard]] std::span<std::uint8_t> mutable_value() noexcept {
    return {reinterpret_cast<std::uint8_t*>(data()) + key_len, value_len};
  }

  void fill(std::string_view key, std::span<const std::uint8_t> value) noexcept {
    key_len = static_cast<std::uint32_t>(key.size());
    value_len = static_cast<std::uint32_t>(value.size());
    value_crc = crc32c(value);
    std::memcpy(data(), key.data(), key.size());
    std::memcpy(data() + key.size(), value.data(), value.size());
  }
};

static_assert(alignof(Item) <= 16, "items must fit 16-byte-aligned chunks");

}  // namespace hpcbb::kv
