// KvStore: a thread-safe, memory-bounded key-value store with memcached
// semantics — slab allocation, per-class LRU eviction, TTL expiry, and a
// pin bit (the burst buffer pins dirty blocks until they are flushed to
// Lustre, so acknowledged data is never silently evicted).
//
// Concurrency design: the store is an array of independent shards, each
// fully guarded by its own mutex (hash buckets, LRU lists, and slab arena
// are all per-shard). Keys map to shards by hash. This gives real-thread
// scalability without cross-lock ordering hazards; unit tests and the M1
// microbenchmarks exercise it from real threads, the simulator from one.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/corrupt.h"
#include "common/status.h"
#include "kvstore/item.h"
#include "kvstore/slab.h"

namespace hpcbb::kv {

// Reserved control-plane key range. Keys under this prefix hold the burst
// buffer master's metadata journal, checkpoints, and control records; the
// store force-pins them on set() so cache eviction can never drop
// control-plane state, whatever the caller passed. Data keys never start
// with '!' (block chunks are "bb:<path>#..."), so the range is collision-free.
inline constexpr std::string_view kReservedMetaPrefix = "!md:";

struct StoreParams {
  std::uint64_t memory_budget = 256ull << 20;
  std::uint32_t shard_count = 8;
  std::uint32_t buckets_per_shard = 1u << 14;
  SlabParams slab;  // memory_budget is distributed over shards
};

struct SetOptions {
  bool pinned = false;
  std::uint64_t expiry_ns = 0;  // absolute simulated/real time; 0 = never
};

struct StoreStats {
  std::uint64_t items = 0;
  std::uint64_t bytes = 0;         // key+value payload bytes
  std::uint64_t pinned_bytes = 0;  // subset of `bytes` held by pinned items
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expired = 0;
  std::uint64_t set_failures = 0;  // memory exhausted (all-pinned or budget)
  std::uint64_t integrity_failures = 0;  // gets that hit a checksum mismatch
};

// A verified read: the value plus its fill-time checksum and pin state, so
// callers (the server, read-repair) can forward both without recomputing.
struct VerifiedValue {
  Bytes value;
  std::uint32_t crc = 0;
  bool pinned = false;
};

class KvStore {
 public:
  explicit KvStore(const StoreParams& params);
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // Insert or replace. Fails kResourceExhausted when the budget is full of
  // pinned/unevictable data, kInvalidArgument when the value exceeds the
  // largest slab chunk. On failure an existing value under `key` survives.
  Status set(std::string_view key, std::span<const std::uint8_t> value,
             const SetOptions& options = {});

  // Copy of the value, LRU-touched. `now_ns` drives TTL expiry. Every get
  // re-checksums the value against the fill-time CRC; a mismatch returns
  // kDataLoss (the corrupt item is kept, so repeated reads keep reporting
  // "corrupt" rather than "missing" — replicas and repair rely on that).
  Result<Bytes> get(std::string_view key, std::uint64_t now_ns = 0);

  // get() plus the stored CRC and pin state (the server forwards both).
  Result<VerifiedValue> get_verified(std::string_view key,
                                     std::uint64_t now_ns = 0);

  // Value size without copying (used by the RDMA GET protocol to size the
  // one-sided read); also LRU-touched.
  Result<std::uint64_t> value_size(std::string_view key,
                                   std::uint64_t now_ns = 0);

  // true if the key existed.
  bool erase(std::string_view key);

  // Flip the pin bit; kNotFound if absent.
  Status set_pinned(std::string_view key, bool pinned);

  [[nodiscard]] bool contains(std::string_view key,
                              std::uint64_t now_ns = 0) const;

  // Drop everything (server crash: memory contents are gone).
  void wipe();

  // Corruption injection (chaos/tests): deterministically pick one resident
  // item by `selector` (keys are sorted across shards, index selector % n)
  // and mutate its value bytes in place — the stored CRC is untouched, so
  // the next verified read detects it. Returns the corrupted key, or "" if
  // the store is empty. `key` targets a specific item instead.
  std::string corrupt_one(std::uint64_t selector, CorruptKind kind,
                          std::string_view key = {});

  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] std::uint64_t memory_budget() const noexcept;
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  // Largest storable value for a key of the given length.
  [[nodiscard]] std::uint64_t max_value_size(std::uint64_t key_len) const;

 private:
  class Shard;

  [[nodiscard]] Shard& shard_for(std::uint64_t hash) const noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hpcbb::kv
