// Simulated KV (RDMA-Memcached-class) server: binds the memcached ports on
// its node, hosts a real KvStore, and models per-operation server cost.
// Values above the transport's RDMA threshold move by one-sided verbs ops,
// bypassing this server's CPU — the core mechanism behind the paper's burst
// buffer performance.
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.h"
#include "kvstore/protocol.h"
#include "kvstore/store.h"
#include "net/rpc.h"
#include "storage/device.h"

namespace hpcbb::kv {

struct ServerParams {
  StoreParams store;
  // Base CPU per op (hash, LRU, bookkeeping).
  sim::SimTime base_op_ns = 500;
  // Copy bandwidth between network buffers and slab chunks. On the RDMA
  // path the HCA DMA-places payloads directly into registered item memory,
  // so no copy is charged.
  std::uint64_t memcpy_bytes_per_sec = 5 * GB;
  std::uint64_t rdma_threshold_bytes = 16 * KiB;
  // Burst-buffer deployments journal accepted writes to the server's local
  // SSD (the hybrid-Memcached design): SET throughput is then bounded by
  // the SSD, not the NIC — the reason the paper's write gain over Lustre is
  // ~1.5x while reads (pure RAM) gain up to 8x. Off for pure caches.
  bool persist_writes = false;
  storage::DeviceParams journal = storage::ssd_preset();
};

class Server {
 public:
  Server(net::RpcHub& hub, net::NodeId node, const ServerParams& params);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] KvStore& store() noexcept { return store_; }
  [[nodiscard]] const ServerParams& params() const noexcept { return params_; }
  // Journal SSD, or nullptr when persist_writes is off. Exposed so fault
  // injectors can target it with limpware episodes.
  [[nodiscard]] storage::Device* journal_device() noexcept {
    return journal_.get();
  }

  // Crash: memory contents are lost, ports unbind — callers see
  // kUnavailable ("connection refused"), as for a dead process.
  void crash();
  // Restart empty: wipes contents and slab/pin accounting, rebinds the RPC
  // ports, bumps the incarnation and the kv.restarts counter.
  void restart();
  [[nodiscard]] bool is_crashed() const noexcept { return crashed_; }
  // Starts at 1; +1 per restart. Reported by kOpPing so monitors can detect
  // a restarted-empty server without comparing contents.
  [[nodiscard]] std::uint64_t incarnation() const noexcept {
    return incarnation_;
  }

 private:
  sim::Task<net::RpcResponse> handle_set(std::shared_ptr<const SetRequest>);
  sim::Task<net::RpcResponse> handle_get(std::shared_ptr<const GetRequest>);
  sim::Task<net::RpcResponse> handle_multi_get(
      std::shared_ptr<const MultiGetRequest>);
  sim::Task<net::RpcResponse> handle_erase(
      std::shared_ptr<const EraseRequest>);
  sim::Task<net::RpcResponse> handle_pin(std::shared_ptr<const PinRequest>);
  sim::Task<net::RpcResponse> handle_stats(
      std::shared_ptr<const StatsRequest>);
  sim::Task<net::RpcResponse> handle_ping(std::shared_ptr<const PingRequest>);

  void bind_all();
  void unbind_all();

  // Charge base op cost plus an optional payload copy on this node's CPU.
  sim::Task<void> charge_op(std::uint64_t copy_bytes);

  // Push store-level deltas (bytes held, evictions) into the simulation's
  // metric registry: global gauges/counters plus per-node labeled gauges.
  void update_store_metrics();

  net::RpcHub* hub_;
  net::NodeId node_;
  ServerParams params_;
  KvStore store_;
  std::unique_ptr<storage::Device> journal_;
  std::uint64_t journal_cursor_ = 0;
  std::uint64_t metered_bytes_ = 0;      // store bytes already in "kv.bytes"
  std::uint64_t metered_evictions_ = 0;  // evictions already counted
  std::uint64_t incarnation_ = 1;
  bool crashed_ = false;
};

}  // namespace hpcbb::kv
