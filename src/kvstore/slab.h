// Slab allocator, memcached-style.
//
// Memory is carved into fixed-size pages; each page is assigned to a size
// class whose chunk size grows geometrically. Items are stored in-place in
// chunks (header + key + value), so the store's memory ceiling is a real,
// enforced budget — the property the burst buffer's eviction/backpressure
// behaviour (experiment F11) depends on.
//
// Not internally synchronized: the owning KvShard serializes access.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace hpcbb::kv {

struct SlabParams {
  std::uint64_t memory_budget = 64ull << 20;  // bytes of page memory
  // Page equals the largest chunk so burst-buffer-sized (1 MiB) values pack
  // one per page with no internal waste.
  std::uint32_t page_size = (1u << 20) + (64u << 10);
  std::uint32_t chunk_min = 96;               // smallest chunk
  double growth_factor = 1.25;
  std::uint32_t chunk_max = (1u << 20) + (64u << 10);  // fits a 1 MiB value
};

class SlabAllocator {
 public:
  explicit SlabAllocator(const SlabParams& params);

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  // Size class whose chunk fits `bytes`, or -1 if larger than chunk_max.
  [[nodiscard]] int class_for(std::uint64_t bytes) const noexcept;

  [[nodiscard]] std::uint32_t chunk_size(int cls) const noexcept {
    return class_sizes_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] int class_count() const noexcept {
    return static_cast<int>(class_sizes_.size());
  }

  // A chunk from the class's free list, growing the class by one page if
  // budget allows. nullptr means: evict something from this class or fail.
  [[nodiscard]] void* allocate(int cls);
  void deallocate(int cls, void* chunk) noexcept;

  [[nodiscard]] std::uint64_t allocated_pages_bytes() const noexcept {
    return static_cast<std::uint64_t>(pages_.size()) * params_.page_size;
  }
  [[nodiscard]] std::uint64_t memory_budget() const noexcept {
    return params_.memory_budget;
  }
  [[nodiscard]] std::uint64_t chunks_in_use(int cls) const noexcept {
    return per_class_[static_cast<std::size_t>(cls)].chunks_in_use;
  }
  [[nodiscard]] std::uint64_t total_chunks_in_use() const noexcept;

 private:
  bool grow_class(int cls);

  struct ClassState {
    std::vector<void*> free_chunks;
    std::uint64_t chunks_in_use = 0;
  };

  SlabParams params_;
  std::vector<std::uint32_t> class_sizes_;
  std::vector<ClassState> per_class_;
  std::vector<std::unique_ptr<std::byte[]>> pages_;
};

}  // namespace hpcbb::kv
