#include "kvstore/slab.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hpcbb::kv {

namespace {
constexpr std::uint32_t kChunkAlign = 16;

std::uint32_t align_up(std::uint32_t n) noexcept {
  return (n + kChunkAlign - 1) & ~(kChunkAlign - 1);
}
}  // namespace

SlabAllocator::SlabAllocator(const SlabParams& params) : params_(params) {
  assert(params_.chunk_min >= kChunkAlign);
  assert(params_.chunk_max <= params_.page_size);
  assert(params_.growth_factor > 1.0);

  std::uint32_t size = align_up(params_.chunk_min);
  while (size < params_.chunk_max) {
    class_sizes_.push_back(size);
    const auto next = static_cast<std::uint32_t>(
        std::ceil(static_cast<double>(size) * params_.growth_factor));
    size = align_up(std::max(next, size + kChunkAlign));
  }
  class_sizes_.push_back(align_up(params_.chunk_max));
  per_class_.resize(class_sizes_.size());
}

int SlabAllocator::class_for(std::uint64_t bytes) const noexcept {
  if (bytes > class_sizes_.back()) return -1;
  const auto it =
      std::lower_bound(class_sizes_.begin(), class_sizes_.end(), bytes);
  return static_cast<int>(it - class_sizes_.begin());
}

bool SlabAllocator::grow_class(int cls) {
  if (allocated_pages_bytes() + params_.page_size > params_.memory_budget) {
    return false;
  }
  pages_.push_back(std::make_unique<std::byte[]>(params_.page_size));
  std::byte* page = pages_.back().get();
  const std::uint32_t chunk = chunk_size(cls);
  auto& state = per_class_[static_cast<std::size_t>(cls)];
  for (std::uint32_t off = 0; off + chunk <= params_.page_size; off += chunk) {
    state.free_chunks.push_back(page + off);
  }
  return true;
}

void* SlabAllocator::allocate(int cls) {
  assert(cls >= 0 && cls < class_count());
  auto& state = per_class_[static_cast<std::size_t>(cls)];
  if (state.free_chunks.empty() && !grow_class(cls)) {
    return nullptr;
  }
  assert(!state.free_chunks.empty());
  void* chunk = state.free_chunks.back();
  state.free_chunks.pop_back();
  ++state.chunks_in_use;
  return chunk;
}

void SlabAllocator::deallocate(int cls, void* chunk) noexcept {
  assert(cls >= 0 && cls < class_count());
  auto& state = per_class_[static_cast<std::size_t>(cls)];
  assert(state.chunks_in_use > 0);
  --state.chunks_in_use;
  state.free_chunks.push_back(chunk);
}

std::uint64_t SlabAllocator::total_chunks_in_use() const noexcept {
  std::uint64_t total = 0;
  for (const auto& state : per_class_) total += state.chunks_in_use;
  return total;
}

}  // namespace hpcbb::kv
