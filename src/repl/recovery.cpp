#include "repl/recovery.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/metrics.h"

namespace hpcbb::repl {

namespace {

kv::ClientParams recovery_client_params(kv::ClientParams params) {
  // The recovery client addresses servers explicitly (set_on/get_from);
  // implicit routing, failover, and write fan-out must stay out of its way.
  params.failover = false;
  params.replication_factor = 1;
  return params;
}

bool contains(const std::vector<std::uint32_t>& set, std::uint32_t server) {
  return std::find(set.begin(), set.end(), server) != set.end();
}

}  // namespace

RecoveryManager::RecoveryManager(net::RpcHub& hub, net::NodeId node,
                                 std::vector<net::NodeId> kv_servers,
                                 const RecoveryParams& params,
                                 const kv::ClientParams& client_params)
    : hub_(&hub),
      servers_(kv_servers),
      ring_(static_cast<std::uint32_t>(kv_servers.size())),
      kv_(hub, node, std::move(kv_servers),
          recovery_client_params(client_params)),
      params_(params) {}

void RecoveryManager::on_server_dead(std::uint32_t kv_index) {
  if (!chunks_ || !live_) return;
  hub_->transport().fabric().simulation().spawn(repair_after_death(kv_index));
}

void RecoveryManager::on_server_rejoined(std::uint32_t kv_index) {
  if (!chunks_ || !live_) return;
  hub_->transport().fabric().simulation().spawn(anti_entropy(kv_index));
}

sim::Task<void> RecoveryManager::pace_begin(std::uint64_t bytes) {
  if (flowctl_ != nullptr && flowctl_->enabled()) {
    (void)co_await flowctl_->admit(bytes);
  }
}

void RecoveryManager::pace_end(std::uint64_t bytes) {
  if (flowctl_ != nullptr && flowctl_->enabled()) {
    flowctl_->release_reservation(bytes);
  }
}

sim::Task<Result<BytesPtr>> RecoveryManager::read_surviving_copy(
    std::string key, std::uint32_t skip, std::uint32_t* source) {
  const auto order = ring_.successors(key, ring_.server_count());
  Result<BytesPtr> last = error(StatusCode::kNotFound, "no surviving copy");
  for (const std::uint32_t s : order) {
    if (s == skip || !live_(s)) continue;
    last = co_await kv_.get_from(servers_[s], key);
    if (last.is_ok()) {
      if (source != nullptr) *source = s;
      co_return last;
    }
  }
  co_return last;
}

sim::Task<void> RecoveryManager::repair_after_death(std::uint32_t dead) {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  MetricRegistry& metrics = sim.metrics();
  ++active_runs_;
  const sim::SimTime start = sim.now();

  // Snapshot the inventory once: chunks written after this point already
  // fan out to live replicas on the write path.
  const std::vector<ChunkRef> snapshot = chunks_();
  std::vector<ChunkRef> affected;
  for (const ChunkRef& chunk : snapshot) {
    if (contains(replicas(chunk.key), dead)) affected.push_back(chunk);
  }
  std::map<std::string, std::uint64_t> remaining;
  for (const ChunkRef& chunk : affected) ++remaining[chunk.block];
  Gauge& under = metrics.gauge("kv.repl.under_replicated");
  under.add(remaining.size());

  for (const ChunkRef& chunk : affected) {
    co_await pace_begin(chunk.bytes);
    // New home: the first live server past the replica set in the same
    // successor order failover reads walk.
    const auto order = ring_.successors(chunk.key, ring_.server_count());
    std::uint32_t dest = ring_.server_count();
    for (std::size_t i = params_.replication_factor; i < order.size(); ++i) {
      if (live_(order[i])) {
        dest = order[i];
        break;
      }
    }
    if (dest == ring_.server_count()) {
      // Every server outside the replica set is down too; nothing to do
      // until membership changes again.
      metrics.counter("kv.repl.repair_skipped").add();
    } else {
      std::uint32_t source = 0;
      auto data = co_await read_surviving_copy(chunk.key, dead, &source);
      // Deliberately not a conditional expression: GCC mishandles
      // temporaries when a co_await sits inside ?: operands.
      Status st = data.status();
      if (data.is_ok()) {
        st = co_await kv_.set_on(servers_[dest], chunk.key, data.value(),
                                 chunk.pinned);
      }
      if (st.is_ok()) {
        metrics.counter("kv.repl.repair_chunks").add();
        metrics.counter("kv.repl.repair_bytes").add(chunk.bytes);
      } else {
        // No surviving replica (or the copy itself failed): the chunk is
        // gone from the buffer. Readers fall back to Lustre; dirty data is
        // the durability window the scheme documents.
        metrics.counter("kv.repl.repair_failed").add();
      }
    }
    pace_end(chunk.bytes);
    const auto it = remaining.find(chunk.block);
    if (it != remaining.end() && --it->second == 0) {
      remaining.erase(it);
      under.sub();
    }
  }
  under.sub(remaining.size());
  metrics.histogram("kv.repl.repair_ns").record(sim.now() - start);
  --active_runs_;
}

sim::Task<void> RecoveryManager::anti_entropy(std::uint32_t joined) {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  MetricRegistry& metrics = sim.metrics();
  ++active_runs_;
  metrics.counter("kv.repl.anti_entropy_runs").add();
  const sim::SimTime start = sim.now();

  const std::vector<ChunkRef> snapshot = chunks_();
  std::vector<ChunkRef> mine;
  for (const ChunkRef& chunk : snapshot) {
    if (contains(replicas(chunk.key), joined)) mine.push_back(chunk);
  }
  std::map<std::string, std::uint64_t> remaining;
  for (const ChunkRef& chunk : mine) ++remaining[chunk.block];
  Gauge& under = metrics.gauge("kv.repl.under_replicated");
  under.add(remaining.size());

  bool aborted = false;
  for (const ChunkRef& chunk : mine) {
    // The joined server crashed again mid-stream: stop without declaring
    // it recovered; the next rejoin starts a fresh run.
    if (recovering_ && !recovering_(joined)) {
      aborted = true;
      break;
    }
    co_await pace_begin(chunk.bytes);
    std::uint32_t source = 0;
    auto data = co_await read_surviving_copy(chunk.key, joined, &source);
    if (data.is_ok()) {
      Status st = co_await kv_.set_on(servers_[joined], chunk.key,
                                      data.value(), chunk.pinned);
      if (st.is_ok()) {
        metrics.counter("kv.repl.anti_entropy_chunks").add();
        metrics.counter("kv.repl.anti_entropy_bytes").add(chunk.bytes);
        // A copy that overflowed past the replica set during repair
        // migrates home: erase it from the stand-in holder.
        if (!contains(replicas(chunk.key), source)) {
          (void)co_await kv_.erase_on(servers_[source], chunk.key);
        }
      } else {
        metrics.counter("kv.repl.anti_entropy_failed").add();
        if (st.code() == StatusCode::kUnavailable) {
          aborted = true;  // target went down mid-copy
          pace_end(chunk.bytes);
          break;
        }
      }
    } else {
      // Every copy of this chunk is gone; anti-entropy cannot resurrect it.
      metrics.counter("kv.repl.anti_entropy_missing").add();
    }
    pace_end(chunk.bytes);
    const auto it = remaining.find(chunk.block);
    if (it != remaining.end() && --it->second == 0) {
      remaining.erase(it);
      under.sub();
    }
  }
  under.sub(remaining.size());
  metrics.histogram("kv.repl.anti_entropy_ns").record(sim.now() - start);
  --active_runs_;
  if (!aborted && done_) done_(joined);
}

}  // namespace hpcbb::repl
