// Replication recovery: the control loop that keeps R live copies of every
// burst-buffer chunk in the KV store across server crashes and rejoins.
//
// The write path (kv::Client fan-out) establishes R copies; this subsystem
// restores the invariant when membership changes:
//
//   * on `dead` — re-replicate every chunk whose replica set contains the
//     dead server, copying from a surviving replica to the first live
//     server outside the set (the same full-ring successor order failover
//     reads walk, so repaired copies are immediately findable);
//   * on `rejoined` — anti-entropy: a restarted server comes back empty, so
//     its key ranges are streamed back from the surviving holders before it
//     is eligible for placement again. Copies that overflowed past the
//     replica set during repair migrate home (copy + erase).
//
// Recovery traffic is paced through the owner's flowctl credits: each chunk
// copy holds an admission credit for its footprint while in flight, so
// repair competes with (and yields to) foreground writers instead of
// starving them.
//
// Telemetry (simulation MetricRegistry): kv.repl.repair_* and
// kv.repl.anti_entropy_* counters, the kv.repl.under_replicated gauge
// (blocks currently short of R live copies; high-watermark retained), and
// kv.repl.repair_ns / kv.repl.anti_entropy_ns run-duration histograms.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flowctl/controller.h"
#include "kvstore/client.h"
#include "kvstore/ring.h"
#include "net/rpc.h"
#include "sim/task.h"

namespace hpcbb::repl {

// One replicated chunk as the metadata owner (the BB master) sees it.
struct ChunkRef {
  std::string key;       // KV key of the chunk
  std::string block;     // owning block id, e.g. "<path>#<index>"
  std::uint64_t bytes = 0;  // buffer footprint (chunk-padded)
  bool pinned = false;   // restore the pin on the repaired copy
};

struct RecoveryParams {
  std::uint32_t replication_factor = 2;
};

class RecoveryManager {
 public:
  // Chunk inventory snapshot, taken at the start of every recovery run.
  using ChunkSource = std::function<std::vector<ChunkRef>()>;
  // Is server `i` live (eligible as copy source/destination)?
  using Liveness = std::function<bool(std::uint32_t)>;
  // Is server `i` still in the recovering state (anti-entropy may proceed)?
  using RecoveringCheck = std::function<bool(std::uint32_t)>;
  // Anti-entropy for server `i` finished: it may take placements again.
  using RecoveryDone = std::function<void(std::uint32_t)>;

  RecoveryManager(net::RpcHub& hub, net::NodeId node,
                  std::vector<net::NodeId> kv_servers,
                  const RecoveryParams& params,
                  const kv::ClientParams& client_params);

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  void set_chunk_source(ChunkSource fn) { chunks_ = std::move(fn); }
  void set_liveness(Liveness fn) { live_ = std::move(fn); }
  void set_recovering_check(RecoveringCheck fn) {
    recovering_ = std::move(fn);
  }
  void set_recovery_done(RecoveryDone fn) { done_ = std::move(fn); }
  // Optional pacing: each in-flight chunk copy holds an admission credit.
  void set_flow_control(flowctl::CapacityController* fc) { flowctl_ = fc; }

  // Failure-detector hooks. Both spawn a background run and return
  // immediately (the detector must keep probing while recovery streams).
  void on_server_dead(std::uint32_t kv_index);
  void on_server_rejoined(std::uint32_t kv_index);

  [[nodiscard]] std::uint32_t active_runs() const noexcept {
    return active_runs_;
  }
  [[nodiscard]] const kv::HashRing& ring() const noexcept { return ring_; }

  // The key's replica set (primary first) under this manager's factor.
  [[nodiscard]] std::vector<std::uint32_t> replicas(
      const std::string& key) const {
    return ring_.successors(key, params_.replication_factor);
  }

 private:
  sim::Task<void> repair_after_death(std::uint32_t dead);
  sim::Task<void> anti_entropy(std::uint32_t joined);
  // Read `key` from the first live holder in successor order, skipping
  // `skip`; returns the source index in `source` on success.
  sim::Task<Result<BytesPtr>> read_surviving_copy(std::string key,
                                                  std::uint32_t skip,
                                                  std::uint32_t* source);
  sim::Task<void> pace_begin(std::uint64_t bytes);
  void pace_end(std::uint64_t bytes);

  net::RpcHub* hub_;
  std::vector<net::NodeId> servers_;
  kv::HashRing ring_;
  kv::Client kv_;  // explicit set_on/get_from only; no implicit routing
  RecoveryParams params_;

  ChunkSource chunks_;
  Liveness live_;
  RecoveringCheck recovering_;
  RecoveryDone done_;
  flowctl::CapacityController* flowctl_ = nullptr;
  std::uint32_t active_runs_ = 0;
};

}  // namespace hpcbb::repl
