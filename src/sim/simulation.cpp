#include "sim/simulation.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace hpcbb::sim {

Simulation::~Simulation() {
  // Destroy still-suspended processes (server loops blocked on channels).
  // finish_root() mutates roots_, so detach the map first.
  auto roots = std::move(roots_);
  roots_.clear();
  for (auto& [id, handle] : roots) {
    handle.destroy();
  }
}

void Simulation::schedule_at(SimTime time, std::coroutine_handle<> handle) {
  assert(time >= now_ && "cannot schedule into the simulated past");
  queue_.push(Event{time, next_seq_++, handle});
}

[[noreturn]] void Simulation::RootTask::promise_type::unhandled_exception()
    noexcept {
  // A detached simulated process has no awaiter to propagate to; this is
  // always a bug in simulation code (application errors travel as Status).
  std::fprintf(stderr, "fatal: exception escaped a detached sim process\n");
  std::terminate();
}

Simulation::RootTask Simulation::make_root(Task<void> task) {
  co_await std::move(task);
}

void Simulation::spawn(Task<void> task) {
  RootTask root = make_root(std::move(task));
  root.handle.promise().sim = this;
  const std::uint64_t id = next_root_id_++;
  root.handle.promise().id = id;
  roots_.emplace(id, root.handle);
  schedule_at(now_, root.handle);
}

void Simulation::finish_root(std::uint64_t id) noexcept {
  const auto it = roots_.find(id);
  if (it == roots_.end()) return;  // teardown path already detached it
  const auto handle = it->second;
  roots_.erase(it);
  handle.destroy();
}

void Simulation::run() {
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    assert(event.time >= now_);
    now_ = event.time;
    ++events_processed_;
    event.handle.resume();
  }
}

void Simulation::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    const Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    event.handle.resume();
  }
  now_ = deadline;
}

}  // namespace hpcbb::sim
