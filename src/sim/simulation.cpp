#include "sim/simulation.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace hpcbb::sim {

Simulation::~Simulation() {
  // Destroy still-suspended processes (server loops blocked on channels).
  // finish_root() mutates roots_, so detach the map first.
  auto roots = std::move(roots_);
  roots_.clear();
  for (auto& [id, handle] : roots) {
    handle.destroy();
  }
}

void Simulation::schedule_at(SimTime time, std::coroutine_handle<> handle) {
  assert(time >= now_ && "cannot schedule into the simulated past");
  queue_.push(Event{time, next_seq_++, handle});
}

std::uint64_t Simulation::schedule_cancellable(SimTime time,
                                              std::coroutine_handle<> handle) {
  assert(time >= now_ && "cannot schedule into the simulated past");
  const std::uint64_t token = next_seq_++;
  queue_.push(Event{time, token, handle});
  cancellable_pending_.insert(token);
  return token;
}

bool Simulation::cancel(std::uint64_t token) {
  if (cancellable_pending_.erase(token) == 0) return false;
  // Tombstone; the queue entry is dropped unprocessed when it reaches the
  // front of the queue (seqs are unique, so it can only match once).
  cancelled_.insert(token);
  return true;
}

bool Simulation::pop_next(SimTime deadline, Event& out) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    const Event event = queue_.top();
    queue_.pop();
    if (!cancelled_.empty() && cancelled_.erase(event.seq) > 0) {
      continue;  // discarded unprocessed: no clock advance, no resume
    }
    if (!cancellable_pending_.empty()) cancellable_pending_.erase(event.seq);
    out = event;
    return true;
  }
  return false;
}

[[noreturn]] void Simulation::RootTask::promise_type::unhandled_exception()
    noexcept {
  // A detached simulated process has no awaiter to propagate to; this is
  // always a bug in simulation code (application errors travel as Status).
  std::fprintf(stderr, "fatal: exception escaped a detached sim process\n");
  std::terminate();
}

Simulation::RootTask Simulation::make_root(Task<void> task) {
  co_await std::move(task);
}

void Simulation::spawn(Task<void> task) {
  RootTask root = make_root(std::move(task));
  root.handle.promise().sim = this;
  const std::uint64_t id = next_root_id_++;
  root.handle.promise().id = id;
  roots_.emplace(id, root.handle);
  schedule_at(now_, root.handle);
}

void Simulation::finish_root(std::uint64_t id) noexcept {
  const auto it = roots_.find(id);
  if (it == roots_.end()) return;  // teardown path already detached it
  const auto handle = it->second;
  roots_.erase(it);
  handle.destroy();
}

void Simulation::run() {
  Event event{};
  while (pop_next(~SimTime{0}, event)) {
    assert(event.time >= now_);
    now_ = event.time;
    ++events_processed_;
    event.handle.resume();
  }
}

void Simulation::run_until(SimTime deadline) {
  Event event{};
  while (pop_next(deadline, event)) {
    now_ = event.time;
    ++events_processed_;
    event.handle.resume();
  }
  now_ = deadline;
}

}  // namespace hpcbb::sim
