// Task<T>: lazy coroutine task for the discrete-event simulator.
//
// Semantics:
//  * A Task does not run until awaited (or handed to Simulation::spawn).
//  * `co_await task` starts the child inline (same simulated instant) via
//    symmetric transfer; when the child finishes, the parent resumes inline.
//  * The Task object owns the coroutine frame; destroying an un-awaited or
//    suspended Task destroys the frame (recursively destroying nested tasks).
//  * A Task may be awaited at most once.
//
// The whole simulation is single-threaded: no atomics or locks are needed.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

namespace hpcbb::sim {

template <typename T>
class Task;

namespace detail {

template <typename T>
class TaskPromiseBase {
 public:
  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& promise = h.promise();
      return promise.continuation_ ? promise.continuation_
                                   : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept {
    exception_ = std::current_exception();
  }

  void set_continuation(std::coroutine_handle<> continuation) noexcept {
    continuation_ = continuation;
  }

  void rethrow_if_exception() {
    if (exception_) std::rethrow_exception(exception_);
  }

 private:
  std::coroutine_handle<> continuation_;
  std::exception_ptr exception_;
};

template <typename T>
class TaskPromise final : public TaskPromiseBase<T> {
 public:
  Task<T> get_return_object() noexcept;

  void return_value(T value) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    value_.template emplace<1>(std::move(value));
  }

  T take_value() {
    this->rethrow_if_exception();
    assert(value_.index() == 1 && "task completed without a value");
    return std::get<1>(std::move(value_));
  }

 private:
  std::variant<std::monostate, T> value_;
};

template <>
class TaskPromise<void> final : public TaskPromiseBase<void> {
 public:
  Task<void> get_return_object() noexcept;

  void return_void() noexcept {}
  void take_value() { rethrow_if_exception(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(handle_type handle) noexcept : handle_(handle) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return handle_ && handle_.done(); }

  // Awaiter: starts the child (symmetric transfer) and resumes the parent
  // when it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      handle_type handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> continuation) noexcept {
        handle.promise().set_continuation(continuation);
        return handle;
      }
      T await_resume() { return handle.promise().take_value(); }
    };
    return Awaiter{handle_};
  }

  // For Simulation::spawn and combinators that need the raw handle.
  handle_type release() noexcept { return std::exchange(handle_, {}); }
  handle_type handle() const noexcept { return handle_; }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  handle_type handle_;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace hpcbb::sim
