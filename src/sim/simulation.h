// Discrete-event simulation core.
//
// Events are coroutine resumptions ordered by (time, insertion sequence):
// equal-time events run in FIFO order, making every run bit-reproducible.
// All wakeups (timers, condition notifications) go through the event queue —
// nothing resumes a foreign coroutine inline — so no simulated actor can
// observe a half-completed action of another.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "sim/task.h"

namespace hpcbb::sim {

using SimTime = std::uint64_t;  // nanoseconds since simulation start

class TraceRecorder;

class Simulation {
 public:
  Simulation() = default;
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  // Schedule a raw coroutine resumption. Used by awaitables; application
  // code uses delay()/spawn() and the sync primitives.
  void schedule_at(SimTime time, std::coroutine_handle<> handle);

  // Like schedule_at, but the returned token can cancel the wakeup before it
  // fires. A cancelled event is discarded unprocessed when its turn comes:
  // it does not advance simulated time, count as a processed event, or
  // resume the (possibly long-gone) coroutine. Periodic actors use this so
  // stopping them does not drag the clock past quiescence.
  [[nodiscard]] std::uint64_t schedule_cancellable(
      SimTime time, std::coroutine_handle<> handle);

  // Cancel a pending cancellable wakeup. Returns false if the token already
  // fired or was already cancelled.
  bool cancel(std::uint64_t token);

  // Awaitable: suspend the current task for `delay_ns` simulated nanoseconds.
  auto delay(SimTime delay_ns) noexcept {
    struct Awaiter {
      Simulation& sim;
      SimTime wake_time;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> handle) {
        sim.schedule_at(wake_time, handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, now_ + delay_ns};
  }

  // Awaitable: suspend until the given absolute simulated time (which must
  // not be in the past).
  auto delay_until(SimTime wake_time) noexcept {
    return delay(wake_time > now_ ? wake_time - now_ : 0);
  }

  // Launch a detached task ("process"). The simulation owns its frame: it is
  // destroyed when the task completes, or at simulation teardown if it is
  // still blocked (e.g. a server loop waiting for requests).
  void spawn(Task<void> task);

  // Run until the event queue is exhausted. Tasks blocked on conditions that
  // can never fire again simply stay suspended (normal for server loops).
  void run();

  // Run until simulated `deadline`; events after it remain queued.
  void run_until(SimTime deadline);

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }
  [[nodiscard]] std::size_t live_processes() const noexcept {
    return roots_.size();
  }

  // Shared metric registry for all components built on this simulation.
  MetricRegistry& metrics() noexcept { return metrics_; }

  // Optional shared trace recorder. Components reach it through their
  // simulation handle instead of each growing a set_trace(); null (the
  // default) keeps tracing zero-cost.
  void set_trace(TraceRecorder* trace) noexcept { trace_ = trace; }
  [[nodiscard]] TraceRecorder* trace() const noexcept { return trace_; }

  // Fresh causal operation id (nonzero, unique per simulation). Tags the
  // trace spans of one logical operation across layers.
  [[nodiscard]] std::uint64_t next_op_id() noexcept { return ++next_op_id_; }

 private:
  struct RootTask {
    struct promise_type {
      Simulation* sim = nullptr;
      std::uint64_t id = 0;

      RootTask get_return_object() noexcept {
        return RootTask{
            std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }

      struct FinalAwaiter {
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
          // The root finished: unregister and destroy the whole frame chain.
          h.promise().sim->finish_root(h.promise().id);
        }
        void await_resume() const noexcept {}
      };
      FinalAwaiter final_suspend() noexcept { return {}; }
      void return_void() noexcept {}
      [[noreturn]] void unhandled_exception() noexcept;
    };

    std::coroutine_handle<promise_type> handle;
  };

  static RootTask make_root(Task<void> task);
  void finish_root(std::uint64_t id) noexcept;

  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;

    bool operator>(const Event& other) const noexcept {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_op_id_ = 0;
  TraceRecorder* trace_ = nullptr;
  std::uint64_t next_root_id_ = 0;
  std::uint64_t events_processed_ = 0;
  // Pops the next runnable event, skipping cancelled ones. Returns false
  // when the queue is exhausted or the next event is past `deadline`.
  bool pop_next(SimTime deadline, Event& out);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Seq numbers of cancelled-but-still-queued events (erased when popped).
  std::unordered_set<std::uint64_t> cancelled_;
  // Cancellable tokens that have neither fired nor been cancelled yet.
  std::unordered_set<std::uint64_t> cancellable_pending_;
  std::unordered_map<std::uint64_t, std::coroutine_handle<>> roots_;
  MetricRegistry metrics_;
};

}  // namespace hpcbb::sim
