// Synchronization primitives for simulated processes: Condition, Event,
// Channel, Semaphore, BandwidthQueue, and fork/join combinators.
//
// All wakeups are funneled through the simulation event queue at the current
// instant (never inline resumption), so waiters observe a consistent world
// and equal-time ordering stays deterministic. Waits are loop-based
// ("spurious wakeup" style), which makes every primitive trivially correct
// under multi-waiter contention.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <memory>
#include <vector>

#include "sim/simulation.h"
#include "sim/task.h"

namespace hpcbb::sim {

// A broadcast/one-shot wakeup source. wait() must always be used in a loop
// that re-checks the guarded predicate.
class Condition {
 public:
  explicit Condition(Simulation& sim) noexcept : sim_(&sim) {}

  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  auto wait() noexcept {
    struct Awaiter {
      Condition& cond;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> handle) {
        cond.waiters_.push_back(handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void notify_one() {
    if (waiters_.empty()) return;
    sim_->schedule_at(sim_->now(), waiters_.front());
    waiters_.pop_front();
  }

  void notify_all() {
    for (const auto handle : waiters_) {
      sim_->schedule_at(sim_->now(), handle);
    }
    waiters_.clear();
  }

  [[nodiscard]] std::size_t waiter_count() const noexcept {
    return waiters_.size();
  }
  [[nodiscard]] Simulation& simulation() const noexcept { return *sim_; }

 private:
  Simulation* sim_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Latched event: once set, all current and future waiters proceed.
class Event {
 public:
  explicit Event(Simulation& sim) noexcept : cond_(sim) {}

  void set() {
    set_ = true;
    cond_.notify_all();
  }
  [[nodiscard]] bool is_set() const noexcept { return set_; }

  Task<void> wait() {
    while (!set_) co_await cond_.wait();
  }

 private:
  Condition cond_;
  bool set_ = false;
};

// Unbounded MPMC queue of values between simulated processes.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim) noexcept : not_empty_(sim) {}

  void push(T value) {
    items_.push_back(std::move(value));
    not_empty_.notify_one();
  }

  Task<T> recv() {
    while (items_.empty()) co_await not_empty_.wait();
    T value = std::move(items_.front());
    items_.pop_front();
    co_return value;
  }

  [[nodiscard]] bool try_recv(T& out) {
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

 private:
  Condition not_empty_;
  std::deque<T> items_;
};

// Counting semaphore; models limited concurrency (CPU cores, disk queue
// depth, task slots).
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::uint64_t permits) noexcept
      : cond_(sim), available_(permits) {}

  Task<void> acquire(std::uint64_t n = 1) {
    while (available_ < n) co_await cond_.wait();
    available_ -= n;
  }

  [[nodiscard]] bool try_acquire(std::uint64_t n = 1) noexcept {
    if (available_ < n) return false;
    available_ -= n;
    return true;
  }

  void release(std::uint64_t n = 1) {
    available_ += n;
    cond_.notify_all();
  }

  [[nodiscard]] std::uint64_t available() const noexcept { return available_; }

 private:
  Condition cond_;
  std::uint64_t available_;
};

// RAII permit for Semaphore.
class [[nodiscard]] SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& sem) noexcept : sem_(&sem) {}
  ~SemaphoreGuard() {
    if (sem_) sem_->release(n_);
  }
  SemaphoreGuard(SemaphoreGuard&& o) noexcept
      : sem_(std::exchange(o.sem_, nullptr)), n_(o.n_) {}
  SemaphoreGuard& operator=(SemaphoreGuard&&) = delete;
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;

 private:
  Semaphore* sem_;
  std::uint64_t n_ = 1;
};

// Work-conserving FIFO bandwidth server: each transfer serializes after all
// previously submitted ones (store-and-forward link, disk streaming, NIC).
// The caller observes queueing delay + its own serialization time.
class BandwidthQueue {
 public:
  BandwidthQueue(Simulation& sim, std::uint64_t bytes_per_sec) noexcept
      : sim_(&sim), bytes_per_sec_(bytes_per_sec) {}

  Task<void> transfer(std::uint64_t bytes) {
    const SimTime start = std::max(sim_->now(), next_free_);
    const SimTime done = start + service_time(bytes);
    next_free_ = done;
    busy_ns_ += done - start;
    bytes_moved_ += bytes;
    co_await sim_->delay_until(done);
  }

  [[nodiscard]] SimTime service_time(std::uint64_t bytes) const noexcept {
    return transfer_time(bytes, bytes_per_sec_);
  }

  [[nodiscard]] std::uint64_t bytes_per_sec() const noexcept {
    return bytes_per_sec_;
  }
  void set_bytes_per_sec(std::uint64_t bps) noexcept { bytes_per_sec_ = bps; }
  [[nodiscard]] SimTime busy_ns() const noexcept { return busy_ns_; }
  [[nodiscard]] std::uint64_t bytes_moved() const noexcept {
    return bytes_moved_;
  }
  // Queueing backlog as seen by a transfer submitted now.
  [[nodiscard]] SimTime backlog_ns() const noexcept {
    return next_free_ > sim_->now() ? next_free_ - sim_->now() : 0;
  }

 private:
  static SimTime transfer_time(std::uint64_t bytes,
                               std::uint64_t bytes_per_sec) noexcept {
    if (bytes_per_sec == 0) return 0;
    const std::uint64_t whole = bytes / bytes_per_sec;
    const std::uint64_t rem = bytes % bytes_per_sec;
    return whole * 1'000'000'000ull +
           (rem * 1'000'000'000ull + bytes_per_sec - 1) / bytes_per_sec;
  }

  Simulation* sim_;
  std::uint64_t bytes_per_sec_;
  SimTime next_free_ = 0;
  SimTime busy_ns_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

// ---- fork/join combinators -------------------------------------------------

namespace detail {
struct JoinState {
  explicit JoinState(Simulation& sim) : done(sim) {}
  std::size_t remaining = 0;
  Condition done;
};

inline Task<void> join_wrapper(std::shared_ptr<JoinState> state,
                               Task<void> task) {
  co_await std::move(task);
  if (--state->remaining == 0) state->done.notify_all();
}

template <typename T>
Task<void> join_wrapper_collect(
    std::shared_ptr<JoinState> state,
    std::shared_ptr<std::vector<std::optional<T>>> results, std::size_t index,
    Task<T> task) {
  (*results)[index].emplace(co_await std::move(task));
  if (--state->remaining == 0) state->done.notify_all();
}
}  // namespace detail

// Run all tasks concurrently; complete when every one has completed.
inline Task<void> parallel(Simulation& sim, std::vector<Task<void>> tasks) {
  auto state = std::make_shared<detail::JoinState>(sim);
  state->remaining = tasks.size();
  for (auto& task : tasks) {
    sim.spawn(detail::join_wrapper(state, std::move(task)));
  }
  while (state->remaining != 0) co_await state->done.wait();
}

// Run all tasks concurrently and collect their results (by input order).
template <typename T>
Task<std::vector<T>> parallel_collect(Simulation& sim,
                                      std::vector<Task<T>> tasks) {
  auto state = std::make_shared<detail::JoinState>(sim);
  state->remaining = tasks.size();
  auto results =
      std::make_shared<std::vector<std::optional<T>>>(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    sim.spawn(detail::join_wrapper_collect<T>(state, results, i,
                                              std::move(tasks[i])));
  }
  while (state->remaining != 0) co_await state->done.wait();
  std::vector<T> out;
  out.reserve(results->size());
  for (auto& slot : *results) out.push_back(std::move(*slot));
  co_return out;
}

}  // namespace hpcbb::sim
