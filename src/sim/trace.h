// Span tracing for simulated operations. Components record named spans
// (begin/end in simulated time, with a category and node); the recorder
// exports Chrome-trace JSON (chrome://tracing, Perfetto) so a slow
// experiment can be inspected visually — which device queue backed up,
// where a flush stalled, how the pipeline overlapped.
//
// Tracing is opt-in and zero-cost when no recorder is attached.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulation.h"

namespace hpcbb::sim {

// end_ns of a span that has not finished yet. A real span may legitimately
// end at simulated time 0, so "0 == open" would make it unclosable; ~0 can
// never be a valid end time (the sim would have to run for 584 years).
inline constexpr SimTime kOpenSentinel = ~SimTime{0};

struct TraceSpan {
  std::string name;      // "dfsio.write.file_3", "flush.block", ...
  std::string category;  // "hdfs", "kv", "lustre", "bb", "mapred", ...
  std::uint32_t track = 0;  // usually the node id; becomes the trace row
  SimTime begin_ns = 0;
  SimTime end_ns = kOpenSentinel;
  // Causal operation id: spans from one logical operation (a block's journey
  // client -> kv -> flusher -> Lustre) share an op_id; 0 = unattributed.
  std::uint64_t op_id = 0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(Simulation& sim) noexcept : sim_(&sim) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Opens a span; finish it via the returned index. Spans may nest and
  // interleave freely (they are closed by index, not by a stack).
  std::size_t begin(std::string name, std::string category,
                    std::uint32_t track, std::uint64_t op_id = 0) {
    spans_.push_back(TraceSpan{std::move(name), std::move(category), track,
                               sim_->now(), kOpenSentinel, op_id});
    return spans_.size() - 1;
  }

  void end(std::size_t index) {
    if (index < spans_.size() && spans_[index].end_ns == kOpenSentinel) {
      spans_[index].end_ns = sim_->now();
      if (span_sink_) span_sink_(spans_[index]);
    }
  }

  // Records an already-measured span.
  void record(std::string name, std::string category, std::uint32_t track,
              SimTime begin_ns, SimTime end_ns, std::uint64_t op_id = 0) {
    spans_.push_back(TraceSpan{std::move(name), std::move(category), track,
                               begin_ns, end_ns, op_id});
    if (span_sink_ && end_ns != kOpenSentinel) span_sink_(spans_.back());
  }

  // Optional sink invoked each time a span closes (end() of an open span, or
  // record() of a pre-measured one). Lets incremental consumers — e.g. the
  // obs::SpanAccountant latency-attribution engine — ingest spans as they
  // close instead of rescanning spans(). The reference is only valid for the
  // duration of the call.
  void set_span_sink(std::function<void(const TraceSpan&)> sink) {
    span_sink_ = std::move(sink);
  }

  [[nodiscard]] const std::vector<TraceSpan>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] std::size_t open_span_count() const noexcept {
    std::size_t open = 0;
    for (const auto& span : spans_) open += span.end_ns == kOpenSentinel;
    return open;
  }

  // Chrome-trace JSON ("traceEvents" array of X events, microsecond
  // timestamps). Unfinished spans are clamped to now.
  [[nodiscard]] std::string to_chrome_json() const;

  // Tab-separated summary: per (category, name-prefix) count and total
  // simulated time — a quick profile without a viewer.
  [[nodiscard]] std::string summary() const;

  void clear() { spans_.clear(); }

 private:
  Simulation* sim_;
  std::vector<TraceSpan> spans_;
  std::function<void(const TraceSpan&)> span_sink_;
};

// RAII span: closes on scope exit. Null recorder => no-op.
class [[nodiscard]] ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string name, std::string category,
             std::uint32_t track, std::uint64_t op_id = 0)
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      index_ = recorder_->begin(std::move(name), std::move(category), track,
                                op_id);
    }
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->end(index_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  std::size_t index_ = 0;
};

}  // namespace hpcbb::sim
