#include "sim/trace.h"

#include <map>

namespace hpcbb::sim {

namespace {
// Minimal JSON string escaping (names are internal identifiers, but a path
// with a quote must not corrupt the file).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}
}  // namespace

std::string TraceRecorder::to_chrome_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans_) {
    const SimTime end = span.end_ns == kOpenSentinel ? sim_->now() : span.end_ns;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(span.name) + "\",\"cat\":\"" +
           json_escape(span.category) + "\",\"ph\":\"X\",\"ts\":" +
           std::to_string(span.begin_ns / 1000) + ",\"dur\":" +
           std::to_string((end - span.begin_ns) / 1000) +
           ",\"pid\":0,\"tid\":" + std::to_string(span.track);
    if (span.op_id != 0) {
      out += ",\"args\":{\"op_id\":" + std::to_string(span.op_id) + "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string TraceRecorder::summary() const {
  struct Agg {
    std::uint64_t count = 0;
    SimTime total_ns = 0;
  };
  std::map<std::pair<std::string, std::string>, Agg> by_key;
  for (const TraceSpan& span : spans_) {
    const SimTime end = span.end_ns == kOpenSentinel ? sim_->now() : span.end_ns;
    // Aggregate by name prefix up to the first '.': "flush.block_7" and
    // "flush.block_9" fold together.
    const std::size_t dot = span.name.find('.');
    const std::string prefix =
        dot == std::string::npos ? span.name : span.name.substr(0, dot);
    Agg& agg = by_key[{span.category, prefix}];
    ++agg.count;
    agg.total_ns += end - span.begin_ns;
  }
  std::string out = "category\tname\tcount\ttotal_ns\n";
  for (const auto& [key, agg] : by_key) {
    out += key.first + "\t" + key.second + "\t" + std::to_string(agg.count) +
           "\t" + std::to_string(agg.total_ns) + "\n";
  }
  return out;
}

}  // namespace hpcbb::sim
