// Deterministic, seed-driven fault injector.
//
// One injector owns every fault source in a run so a single `faults.seed`
// reproduces the whole chaos schedule:
//  * transient RPC faults — per-message drop / delay-spike decisions on the
//    fabric, drawn from a dedicated stream (message order in the simulation
//    is deterministic, so the decisions replay exactly);
//  * rolling node crashes with restart after a configurable downtime,
//    round-robin over registered crash targets;
//  * "limpware" episodes — a registered device serves I/O at a fraction of
//    its healthy rate for a bounded window, then recovers.
//
// Every injected fault emits a faults.injected{kind=...} counter tick and,
// when tracing is enabled, an instant trace event in the "fault" category —
// chaos runs are auditable after the fact, not just survivable.
//
// The injector is passive until start()/arm_fabric(); with `enabled` false
// (the default) it does nothing at all, keeping healthy runs bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/corrupt.h"
#include "common/properties.h"
#include "common/rng.h"
#include "common/units.h"
#include "net/fabric.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "storage/device.h"

namespace hpcbb::faults {

struct InjectorParams {
  bool enabled = false;
  std::uint64_t seed = 1;

  // Transient per-message RPC faults (both directions of every RPC).
  double rpc_drop_prob = 0.0;
  double rpc_delay_prob = 0.0;
  sim::SimTime rpc_delay_ns = 2 * duration::ms;

  // Rolling crash/restart schedule, round-robin over crash targets.
  sim::SimTime crash_first_ns = 0;  // 0 = no scheduled crashes
  sim::SimTime crash_period_ns = 0;  // gap between crashes; 0 = just one
  sim::SimTime crash_downtime_ns = 500 * duration::ms;  // 0 = stays down
  std::uint32_t crash_count = 1;

  // Limpware episodes, round-robin over device targets.
  sim::SimTime limp_first_ns = 0;  // 0 = no episodes
  sim::SimTime limp_period_ns = 0;
  sim::SimTime limp_duration_ns = 200 * duration::ms;
  double limp_factor = 8.0;
  std::uint32_t limp_count = 1;

  // Control-plane crash schedule, round-robin over master targets. Separate
  // from the KV crash schedule: master crashes exercise metadata recovery
  // (journal replay), not data-plane re-replication, and chaos runs want to
  // aim them independently.
  sim::SimTime master_first_ns = 0;  // 0 = no scheduled master crashes
  sim::SimTime master_period_ns = 0;
  sim::SimTime master_downtime_ns = 50 * duration::ms;  // 0 = stays down
  std::uint32_t master_count = 1;

  // Silent-corruption schedule, round-robin over corruption targets (KV
  // stores and storage devices), cycling bit-flip -> torn-write ->
  // stale-read. Each event mutates one resident object's bytes in place
  // without touching its stored checksum.
  sim::SimTime corrupt_first_ns = 0;  // 0 = no scheduled corruption
  sim::SimTime corrupt_period_ns = 0;
  std::uint32_t corrupt_count = 1;

  // Reads faults.* keys over built-in defaults:
  //   faults.enabled, faults.seed
  //   faults.rpc.drop_prob / delay_prob / delay (duration)
  //   faults.crash.first / period / downtime (durations), faults.crash.count
  //   faults.master.first / period / downtime (durations),
  //   faults.master.count
  //   faults.limp.first / period / duration (durations),
  //   faults.limp.factor, faults.limp.count
  //   faults.corrupt.first / period (durations), faults.corrupt.count
  static InjectorParams from_properties(const Properties& props,
                                        InjectorParams defaults);
  static InjectorParams from_properties(const Properties& props);
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, const InjectorParams& params);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Register a node that scheduled crashes may take down. `crash` must make
  // the node unreachable (fabric down + service stopped); `restart` must
  // bring it back empty and reachable.
  void add_crash_target(std::string name, std::function<void()> crash,
                        std::function<void()> restart);

  // Register a control-plane (BB master) node for the faults.master.*
  // schedule. Same contract as add_crash_target, kept in a separate list so
  // the two schedules aim independently.
  void add_master_target(std::string name, std::function<void()> crash,
                         std::function<void()> restart);

  // Register a device that limpware episodes may degrade.
  void add_device_target(std::string name, storage::Device* device);

  // A corruptible data holder (KV store slab memory, a device's objects).
  // The function mutates one resident object chosen by `selector` (or the
  // named object) and returns its name/key, or "" when nothing matched.
  using CorruptFn = std::function<std::string(
      const std::string& object, std::uint64_t selector, CorruptKind kind)>;
  void add_corrupt_target(std::string name, CorruptFn corrupt);

  // Install the per-message RPC fault hook on a fabric. No-op when disabled
  // or when both probabilities are zero.
  void arm_fabric(net::Fabric& fabric);

  // Spawn the scheduled crash and limpware processes. Call once, after all
  // targets are registered.
  void start();

  // Event-driven chaos: fire a registered target immediately, with the same
  // counting and tracing as a scheduled fault. For harnesses that crash at
  // a workload milestone ("right after the burst ack") rather than at a
  // wall-clock offset; works whether or not schedules are enabled.
  void crash_target(std::size_t index);
  void restart_target(std::size_t index);
  [[nodiscard]] std::size_t crash_target_count() const noexcept {
    return crash_targets_.size();
  }

  // Event-driven master crash/restart (counts as kind master_crash /
  // master_restart), for harnesses crashing at a workload milestone.
  void crash_master_target(std::size_t index);
  void restart_master_target(std::size_t index);
  [[nodiscard]] std::size_t master_target_count() const noexcept {
    return master_targets_.size();
  }

  // Event-driven corruption of a registered target, with the same counting
  // and tracing as the scheduled process. `object` "" lets the target pick
  // by selector. Returns the corrupted object name ("" if nothing matched).
  std::string corrupt_target(std::size_t index, CorruptKind kind,
                             std::uint64_t selector,
                             const std::string& object = {});
  [[nodiscard]] std::size_t corrupt_target_count() const noexcept {
    return corrupt_targets_.size();
  }

  [[nodiscard]] const InjectorParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] bool enabled() const noexcept { return params_.enabled; }

 private:
  struct CrashTarget {
    std::string name;
    std::function<void()> crash;
    std::function<void()> restart;
  };
  struct DeviceTarget {
    std::string name;
    storage::Device* device;
  };
  struct CorruptTarget {
    std::string name;
    CorruptFn corrupt;
  };

  sim::Task<void> crash_process();
  sim::Task<void> master_process();
  sim::Task<void> limp_process();
  sim::Task<void> corrupt_process();

  // Count + trace one injected fault.
  void note(std::string_view kind, const std::string& detail);

  sim::Simulation* sim_;
  InjectorParams params_;
  Rng rpc_rng_;       // per-message decisions; advanced once per message
  Rng corrupt_rng_;   // selector draws for the corruption schedule
  bool started_ = false;
  std::vector<CrashTarget> crash_targets_;
  std::vector<CrashTarget> master_targets_;
  std::vector<DeviceTarget> device_targets_;
  std::vector<CorruptTarget> corrupt_targets_;
};

}  // namespace hpcbb::faults
