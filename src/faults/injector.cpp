#include "faults/injector.h"

#include <utility>

#include "sim/trace.h"

namespace hpcbb::faults {

InjectorParams InjectorParams::from_properties(const Properties& props) {
  return from_properties(props, InjectorParams{});
}

InjectorParams InjectorParams::from_properties(const Properties& props,
                                               InjectorParams defaults) {
  InjectorParams p = defaults;
  p.enabled = props.get_bool_or("faults.enabled", p.enabled);
  p.seed = props.get_u64_or("faults.seed", p.seed);
  p.rpc_drop_prob =
      props.get_double_or("faults.rpc.drop_prob", p.rpc_drop_prob);
  p.rpc_delay_prob =
      props.get_double_or("faults.rpc.delay_prob", p.rpc_delay_prob);
  p.rpc_delay_ns = props.get_duration_ns_or("faults.rpc.delay", p.rpc_delay_ns);
  p.crash_first_ns =
      props.get_duration_ns_or("faults.crash.first", p.crash_first_ns);
  p.crash_period_ns =
      props.get_duration_ns_or("faults.crash.period", p.crash_period_ns);
  p.crash_downtime_ns =
      props.get_duration_ns_or("faults.crash.downtime", p.crash_downtime_ns);
  p.crash_count = static_cast<std::uint32_t>(
      props.get_u64_or("faults.crash.count", p.crash_count));
  p.master_first_ns =
      props.get_duration_ns_or("faults.master.first", p.master_first_ns);
  p.master_period_ns =
      props.get_duration_ns_or("faults.master.period", p.master_period_ns);
  p.master_downtime_ns =
      props.get_duration_ns_or("faults.master.downtime", p.master_downtime_ns);
  p.master_count = static_cast<std::uint32_t>(
      props.get_u64_or("faults.master.count", p.master_count));
  p.limp_first_ns =
      props.get_duration_ns_or("faults.limp.first", p.limp_first_ns);
  p.limp_period_ns =
      props.get_duration_ns_or("faults.limp.period", p.limp_period_ns);
  p.limp_duration_ns =
      props.get_duration_ns_or("faults.limp.duration", p.limp_duration_ns);
  p.limp_factor = props.get_double_or("faults.limp.factor", p.limp_factor);
  p.limp_count = static_cast<std::uint32_t>(
      props.get_u64_or("faults.limp.count", p.limp_count));
  p.corrupt_first_ns =
      props.get_duration_ns_or("faults.corrupt.first", p.corrupt_first_ns);
  p.corrupt_period_ns =
      props.get_duration_ns_or("faults.corrupt.period", p.corrupt_period_ns);
  p.corrupt_count = static_cast<std::uint32_t>(
      props.get_u64_or("faults.corrupt.count", p.corrupt_count));
  return p;
}

FaultInjector::FaultInjector(sim::Simulation& sim,
                             const InjectorParams& params)
    : sim_(&sim),
      params_(params),
      rpc_rng_(params.seed ^ 0xFA017ull),
      corrupt_rng_(params.seed ^ 0xC0882ull) {}

void FaultInjector::add_crash_target(std::string name,
                                     std::function<void()> crash,
                                     std::function<void()> restart) {
  crash_targets_.push_back(
      CrashTarget{std::move(name), std::move(crash), std::move(restart)});
}

void FaultInjector::add_master_target(std::string name,
                                      std::function<void()> crash,
                                      std::function<void()> restart) {
  master_targets_.push_back(
      CrashTarget{std::move(name), std::move(crash), std::move(restart)});
}

void FaultInjector::add_device_target(std::string name,
                                      storage::Device* device) {
  device_targets_.push_back(DeviceTarget{std::move(name), device});
}

void FaultInjector::add_corrupt_target(std::string name, CorruptFn corrupt) {
  corrupt_targets_.push_back(CorruptTarget{std::move(name),
                                           std::move(corrupt)});
}

void FaultInjector::note(std::string_view kind, const std::string& detail) {
  sim_->metrics()
      .counter("faults.injected{kind=" + std::string(kind) + "}")
      .add();
  if (sim::TraceRecorder* trace = sim_->trace()) {
    trace->record(std::string(kind) + " " + detail, "fault", /*track=*/0,
                  sim_->now(), sim_->now());
  }
}

void FaultInjector::arm_fabric(net::Fabric& fabric) {
  if (!params_.enabled) return;
  if (params_.rpc_drop_prob <= 0.0 && params_.rpc_delay_prob <= 0.0) return;
  fabric.set_fault_hook([this](net::NodeId src, net::NodeId dst,
                               std::uint64_t bytes) -> net::LinkFault {
    (void)bytes;
    net::LinkFault fault;
    // One draw per decision keeps the stream advance schedule fixed even
    // when a probability is zero, so enabling delays does not reshuffle
    // which messages get dropped.
    const double drop_draw = rpc_rng_.uniform01();
    const double delay_draw = rpc_rng_.uniform01();
    if (drop_draw < params_.rpc_drop_prob) {
      fault.drop = true;
      note("rpc_drop",
           std::to_string(src) + "->" + std::to_string(dst));
    } else if (delay_draw < params_.rpc_delay_prob) {
      fault.extra_delay_ns = params_.rpc_delay_ns;
      note("rpc_delay",
           std::to_string(src) + "->" + std::to_string(dst));
    }
    return fault;
  });
}

void FaultInjector::start() {
  if (!params_.enabled || started_) return;
  started_ = true;
  if (params_.crash_first_ns > 0 && !crash_targets_.empty()) {
    sim_->spawn(crash_process());
  }
  if (params_.master_first_ns > 0 && !master_targets_.empty()) {
    sim_->spawn(master_process());
  }
  if (params_.limp_first_ns > 0 && !device_targets_.empty()) {
    sim_->spawn(limp_process());
  }
  if (params_.corrupt_first_ns > 0 && !corrupt_targets_.empty()) {
    sim_->spawn(corrupt_process());
  }
}

std::string FaultInjector::corrupt_target(std::size_t index, CorruptKind kind,
                                          std::uint64_t selector,
                                          const std::string& object) {
  CorruptTarget& target = corrupt_targets_.at(index);
  std::string corrupted = target.corrupt(object, selector, kind);
  if (!corrupted.empty()) {
    note(to_string(kind), target.name + ":" + corrupted);
  }
  return corrupted;
}

void FaultInjector::crash_target(std::size_t index) {
  CrashTarget& target = crash_targets_.at(index);
  note("crash", target.name);
  target.crash();
}

void FaultInjector::restart_target(std::size_t index) {
  CrashTarget& target = crash_targets_.at(index);
  note("restart", target.name);
  target.restart();
}

void FaultInjector::crash_master_target(std::size_t index) {
  CrashTarget& target = master_targets_.at(index);
  note("master_crash", target.name);
  target.crash();
}

void FaultInjector::restart_master_target(std::size_t index) {
  CrashTarget& target = master_targets_.at(index);
  note("master_restart", target.name);
  target.restart();
}

sim::Task<void> FaultInjector::crash_process() {
  co_await sim_->delay(params_.crash_first_ns);
  for (std::uint32_t i = 0; i < params_.crash_count; ++i) {
    CrashTarget& target = crash_targets_[i % crash_targets_.size()];
    note("crash", target.name);
    target.crash();
    if (params_.crash_downtime_ns > 0) {
      co_await sim_->delay(params_.crash_downtime_ns);
      note("restart", target.name);
      target.restart();
    }
    if (i + 1 < params_.crash_count) {
      if (params_.crash_period_ns == 0) break;  // one-shot schedule
      const sim::SimTime since_crash =
          params_.crash_downtime_ns > 0 ? params_.crash_downtime_ns : 0;
      const sim::SimTime gap = params_.crash_period_ns > since_crash
                                   ? params_.crash_period_ns - since_crash
                                   : 0;
      co_await sim_->delay(gap);
    }
  }
}

sim::Task<void> FaultInjector::master_process() {
  co_await sim_->delay(params_.master_first_ns);
  for (std::uint32_t i = 0; i < params_.master_count; ++i) {
    const std::size_t index = i % master_targets_.size();
    crash_master_target(index);
    if (params_.master_downtime_ns > 0) {
      co_await sim_->delay(params_.master_downtime_ns);
      restart_master_target(index);
    }
    if (i + 1 < params_.master_count) {
      if (params_.master_period_ns == 0) break;  // one-shot schedule
      const sim::SimTime since_crash =
          params_.master_downtime_ns > 0 ? params_.master_downtime_ns : 0;
      const sim::SimTime gap = params_.master_period_ns > since_crash
                                   ? params_.master_period_ns - since_crash
                                   : 0;
      co_await sim_->delay(gap);
    }
  }
}

sim::Task<void> FaultInjector::corrupt_process() {
  // Kinds cycle deterministically; the selector stream is dedicated, so
  // enabling corruption does not reshuffle RPC drop/delay decisions.
  static constexpr CorruptKind kKinds[] = {
      CorruptKind::kBitFlip, CorruptKind::kTornWrite, CorruptKind::kStaleRead};
  co_await sim_->delay(params_.corrupt_first_ns);
  for (std::uint32_t i = 0; i < params_.corrupt_count; ++i) {
    const std::size_t target = i % corrupt_targets_.size();
    const CorruptKind kind = kKinds[i % 3];
    (void)corrupt_target(target, kind, corrupt_rng_.next());
    if (i + 1 < params_.corrupt_count) {
      if (params_.corrupt_period_ns == 0) break;  // one-shot schedule
      co_await sim_->delay(params_.corrupt_period_ns);
    }
  }
}

sim::Task<void> FaultInjector::limp_process() {
  co_await sim_->delay(params_.limp_first_ns);
  for (std::uint32_t i = 0; i < params_.limp_count; ++i) {
    DeviceTarget& target = device_targets_[i % device_targets_.size()];
    note("limp", target.name);
    target.device->set_slowdown(params_.limp_factor);
    co_await sim_->delay(params_.limp_duration_ns);
    note("limp_recover", target.name);
    target.device->set_slowdown(1.0);
    if (i + 1 < params_.limp_count) {
      if (params_.limp_period_ns == 0) break;
      const sim::SimTime gap =
          params_.limp_period_ns > params_.limp_duration_ns
              ? params_.limp_period_ns - params_.limp_duration_ns
              : 0;
      co_await sim_->delay(gap);
    }
  }
}

}  // namespace hpcbb::faults
