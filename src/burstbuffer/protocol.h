// Burst-buffer wire messages: master metadata ops and node-agent reads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "burstbuffer/scheme.h"
#include "common/bytes.h"
#include "net/rpc.h"

namespace hpcbb::bb {

inline constexpr net::Port kMasterPortBase = 7070;
inline constexpr net::Port kAgentPortBase = 7160;

inline constexpr net::Port kBbCreate = kMasterPortBase;
inline constexpr net::Port kBbAddBlock = kMasterPortBase + 1;
inline constexpr net::Port kBbCompleteBlock = kMasterPortBase + 2;
inline constexpr net::Port kBbClose = kMasterPortBase + 3;
inline constexpr net::Port kBbLocations = kMasterPortBase + 4;
inline constexpr net::Port kBbDelete = kMasterPortBase + 5;
inline constexpr net::Port kBbList = kMasterPortBase + 6;

inline constexpr net::Port kAgentRead = kAgentPortBase;

inline constexpr std::uint64_t kHeaderBytes = 64;

enum class BlockState {
  kOpen,      // added, writer still streaming chunks; not yet sealed
  kDirty,     // buffer-resident only; flush pending
  kFlushing,  // a flusher is draining it to Lustre
  kFlushed,   // durable on Lustre (buffer copy may remain or be evicted)
  kLost,      // dirty data lost with a crashed buffer server
  // Dirty data failed checksum verification on every copy before it could
  // be flushed: quarantined so the flusher never persists corrupt bytes to
  // Lustre. Reads fail with kDataLoss instead of silently serving garbage.
  kQuarantined,
};

// AddBlock sentinel: "writer makes no claim about the next index".
inline constexpr std::uint32_t kAnyBlockIndex = 0xFFFFFFFFu;

struct BbCreateRequest {
  std::string path;
  // Idempotency token (nonzero): a retransmitted create whose first reply
  // was lost matches the stored token and succeeds instead of
  // kAlreadyExists.
  std::uint64_t token = 0;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct BbAddBlockRequest {
  std::string path;
  net::NodeId writer = 0;
  // The index the writer expects to receive (its count of blocks so far).
  // Files are single-writer, so a request expecting an index the master
  // already allocated is a retransmission — the master returns the existing
  // block instead of allocating an orphan.
  std::uint32_t expected_index = kAnyBlockIndex;
  // Causal op id of the block being opened, so master-side work on the
  // admission path (the flowctl credit wait) is attributed to this write.
  std::uint64_t op_id = 0;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct BbAddBlockReply {
  std::uint32_t block_index = 0;
  // Degraded mode: the master has suspect/dead KV servers, so the writer
  // must establish durability on the write path (write through to Lustre,
  // buffer copy best-effort) and seal with already_durable=true.
  bool write_through = false;
  [[nodiscard]] std::uint64_t wire_size() const { return kHeaderBytes; }
};

struct BbCompleteBlockRequest {
  std::string path;
  std::uint32_t block_index = 0;
  std::uint64_t size = 0;
  std::uint32_t crc32c = 0;
  // Per-chunk CRCs over each chunk's logical (unpadded) bytes, in chunk
  // order. They let readers verify partial reads — the rolling block CRC
  // only covers full-block reads. Like the KV reply CRC, this provenance
  // rides the fixed header budget: wire_size is deliberately unchanged so
  // healthy-run timing stays bit-identical for the perf gates.
  std::vector<std::uint32_t> chunk_crcs;
  bool already_durable = false;           // BB-Sync wrote through to Lustre
  std::optional<net::NodeId> local_node;  // BB-Local replica location
  std::uint64_t op_id = 0;  // causal trace id: writer -> master -> flusher
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct BbCloseRequest {
  std::string path;
  std::uint64_t size = 0;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct BbBlockInfo {
  std::uint32_t index = 0;
  std::uint64_t size = 0;
  std::uint32_t crc32c = 0;
  // Writer-registered per-chunk CRCs (logical bytes, chunk order): the
  // checksum provenance readers, flushers, and the scrubber verify against.
  std::vector<std::uint32_t> chunk_crcs;
  BlockState state = BlockState::kOpen;
  std::optional<net::NodeId> local_node;
  bool reservation_held = false;  // master-internal admission bookkeeping
  std::uint64_t op_id = 0;        // causal trace id of the writing op
  // KV server indices holding the block's chunks (union over its chunks'
  // ring replica sets). Empty at kv.repl.factor=1 — the ring alone locates
  // the single copy.
  std::vector<std::uint32_t> replicas;
};

struct BbLocationsRequest {
  std::string path;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct BbLocationsReply {
  std::uint64_t file_size = 0;
  std::uint64_t block_size = 0;
  bool closed = false;
  std::vector<BbBlockInfo> blocks;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + blocks.size() * 24;
  }
};

struct BbDeleteRequest {
  std::string path;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct BbListRequest {
  std::string prefix;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + prefix.size();
  }
};

struct BbListReply {
  std::vector<std::string> paths;
  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t total = kHeaderBytes;
    for (const auto& p : paths) total += p.size() + 4;
    return total;
  }
};

// Node-agent read of a RAM-disk block replica (BB-Local scheme).
struct AgentReadRequest {
  std::string object;  // "<path>#<block_index>"
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + object.size();
  }
};

struct AgentReadReply {
  BytesPtr data;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + data->size();
  }
};

// Chunk key for block data striped across the KV servers.
inline std::string chunk_key(const std::string& path,
                             std::uint32_t block_index, std::uint32_t chunk) {
  return "bb:" + path + "#" + std::to_string(block_index) + "#" +
         std::to_string(chunk);
}

// RAM-disk replica object name.
inline std::string local_object(const std::string& path,
                                std::uint32_t block_index) {
  return path + "#" + std::to_string(block_index);
}

}  // namespace hpcbb::bb
