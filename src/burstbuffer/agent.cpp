#include "burstbuffer/agent.h"

namespace hpcbb::bb {

NodeAgent::NodeAgent(net::RpcHub& hub, net::NodeId node,
                     const AgentParams& params)
    : hub_(&hub), node_(node) {
  device_ = std::make_unique<storage::Device>(
      hub_->transport().fabric().simulation(),
      storage::ramdisk_preset(params.ramdisk_bytes));
  store_ = std::make_unique<storage::LocalStore>(*device_);
  hub_->bind(node_, kAgentRead, net::typed_handler<AgentReadRequest>([this](
      auto req) { return handle_read(req); }));
}

NodeAgent::~NodeAgent() { hub_->unbind(node_, kAgentRead); }

sim::Task<net::RpcResponse> NodeAgent::handle_read(
    std::shared_ptr<const AgentReadRequest> req) {
  if (crashed_) {
    co_return net::rpc_error(error(StatusCode::kUnavailable, "agent down"));
  }
  Result<Bytes> data =
      co_await store_->read(req->object, req->offset, req->length);
  if (!data.is_ok()) co_return net::rpc_error(data.status());
  auto reply = std::make_shared<AgentReadReply>();
  reply->data = make_bytes(std::move(data).value());
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<AgentReadReply>(std::move(reply), wire);
}

}  // namespace hpcbb::bb
