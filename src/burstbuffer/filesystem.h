// BurstBufferFileSystem: the paper's HDFS-compatible file system whose data
// plane is the RDMA key-value burst buffer backed by Lustre. The configured
// Scheme selects the write path:
//   BB-Async — ack on buffer residency, async flush (fastest)
//   BB-Sync  — write-through to Lustre before ack (Lustre fault tolerance)
//   BB-Local — buffer + node-local RAM-disk replica (map locality + FT)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "burstbuffer/agent.h"
#include "burstbuffer/master.h"
#include "kvstore/client.h"
#include "lustre/client.h"
#include "storage/filesystem.h"

namespace hpcbb::bb {

struct BbFsParams {
  Scheme scheme = Scheme::kAsync;
  std::uint64_t block_size = 128 * MiB;  // must match the Master's
  std::uint64_t chunk_size = 1 * MiB;    // must match the Master's
  std::uint32_t write_window = 8;        // outstanding chunk stores
  // Backpressure: when the buffer is full of not-yet-flushed data, stores
  // fail kResourceExhausted and the writer retries — its throughput then
  // degrades toward the flush (Lustre) rate, exactly the capacity-pressure
  // behaviour experiment F11 measures.
  std::uint32_t store_retry_limit = 100000;
  sim::SimTime store_retry_backoff_ns = 2 * duration::ms;
  std::string lustre_prefix = "/bb";  // must match the Master's
  // Read promotion: when a read misses the buffer and is served from
  // Lustre, asynchronously re-populate the buffer (unpinned — plain cache
  // data) so subsequent readers hit RDMA speed again. An extension of the
  // paper's design: the buffer doubles as a read cache for hot inputs.
  bool promote_on_read = false;
  // Client config for writer/reader KV access (ring failover during
  // outages); must match the Master's so flushers find failover chunks.
  kv::ClientParams kv_client;
};

class BurstBufferFileSystem final : public fs::FileSystem {
 public:
  // `agents` maps compute nodes to their RAM-disk agents (BB-Local); may be
  // empty for the other schemes.
  BurstBufferFileSystem(net::RpcHub& hub, net::NodeId master_node,
                        std::vector<net::NodeId> kv_servers,
                        net::NodeId lustre_mds,
                        std::map<net::NodeId, NodeAgent*> agents,
                        const BbFsParams& params);

  sim::Task<Result<std::unique_ptr<fs::Writer>>> create(
      const std::string& path, net::NodeId client) override;
  sim::Task<Result<std::unique_ptr<fs::Reader>>> open(
      const std::string& path, net::NodeId client) override;
  sim::Task<Result<fs::FileInfo>> stat(const std::string& path,
                                       net::NodeId client) override;
  sim::Task<Status> remove(const std::string& path,
                           net::NodeId client) override;
  sim::Task<Result<std::vector<std::string>>> list(
      const std::string& prefix, net::NodeId client) override;
  sim::Task<Result<std::vector<std::vector<net::NodeId>>>> block_locations(
      const std::string& path, net::NodeId client) override;
  [[nodiscard]] std::string name() const override {
    return std::string(to_string(params_.scheme));
  }

  [[nodiscard]] const BbFsParams& params() const noexcept { return params_; }
  [[nodiscard]] net::NodeId master_node() const noexcept {
    return master_node_;
  }

  sim::Task<Result<BbLocationsReply>> locations(const std::string& path,
                                                net::NodeId client);

 private:
  friend class BbWriter;
  friend class BbReader;

  net::RpcHub* hub_;
  net::NodeId master_node_;
  std::vector<net::NodeId> kv_servers_;
  net::NodeId lustre_mds_;
  std::map<net::NodeId, NodeAgent*> agents_;
  BbFsParams params_;
};

}  // namespace hpcbb::bb
