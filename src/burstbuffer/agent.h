// Burst-buffer node agent: owns the node's RAM-disk replica area for the
// BB-Local scheme and serves remote reads of it (the writer on the same
// node writes through the store directly).
#pragma once

#include <cstdint>
#include <memory>

#include "burstbuffer/protocol.h"
#include "net/rpc.h"
#include "storage/local_store.h"

namespace hpcbb::bb {

struct AgentParams {
  std::uint64_t ramdisk_bytes = 16 * GiB;
};

class NodeAgent {
 public:
  NodeAgent(net::RpcHub& hub, net::NodeId node, const AgentParams& params);
  ~NodeAgent();

  NodeAgent(const NodeAgent&) = delete;
  NodeAgent& operator=(const NodeAgent&) = delete;

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] storage::LocalStore& store() noexcept { return *store_; }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept {
    return store_->used_bytes();
  }

  // Node crash: the RAM disk is volatile, its contents are gone.
  void crash() {
    crashed_ = true;
    store_->wipe();
  }
  void restart() { crashed_ = false; }
  [[nodiscard]] bool is_crashed() const noexcept { return crashed_; }

 private:
  sim::Task<net::RpcResponse> handle_read(
      std::shared_ptr<const AgentReadRequest>);

  net::RpcHub* hub_;
  net::NodeId node_;
  std::unique_ptr<storage::Device> device_;
  std::unique_ptr<storage::LocalStore> store_;
  bool crashed_ = false;
};

}  // namespace hpcbb::bb
