// Write-ahead metadata journal for the burst-buffer master.
//
// The master's file -> block map is the control plane of the whole burst
// buffer; losing it on a master crash silently orphans every buffered byte.
// Following the paper's design point that metadata lives in the KV tier
// alongside data, every master state mutation is encoded as a compact
// binary record and appended to a journal stored in the replicated KV
// store itself, under the reserved `!md:` key range (see
// kv::kReservedMetaPrefix) — so the journal inherits R-way replication,
// fill-time CRC verification, and pin-against-eviction for free.
//
// Durability contract: a mutation is applied to the in-memory map, its
// record is appended, and the RPC is acknowledged only once the record —
// and every record before it — is stored (all-replica ack). A single
// writer coroutine serializes appends in sequence order, so the durable
// journal is always a hole-free prefix: replay never skips an acknowledged
// mutation. Records that were still in flight when the master crashed were
// by construction never acknowledged; the client retries through the
// idempotent create-token / expected-block-index protocol.
//
// Checkpoints bound replay time: the master periodically snapshots the
// full metadata map (MdCheckpoint), writes it in parts to an alternating
// checkpoint slot, flips the control record, and truncates the journal
// prefix the snapshot subsumes. A crash mid-checkpoint leaves the previous
// slot and control record intact.
//
// Key layout (all under the force-pinned reserved range):
//   !md:bb:ctl            control record {slot, parts, replay_from}
//   !md:bb:ckpt:<s>:<i>   checkpoint part i of slot s
//   !md:bb:j:<seq>        journal record seq
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/properties.h"
#include "common/status.h"
#include "common/units.h"
#include "kvstore/client.h"
#include "net/rpc.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/trace.h"

namespace hpcbb::bb {

struct MdParams {
  // Master switch: off (the default) adds zero events to a healthy run —
  // no journal appends, no checkpoint timer, bit-identical timing.
  bool journal = false;
  // Periodic checkpoint cadence (0 = size-triggered checkpoints only).
  sim::SimTime checkpoint_interval_ns = 100 * duration::ms;
  // Journal bytes that trigger an immediate checkpoint (0 = never).
  std::uint64_t journal_max_bytes = 1 * MiB;

  // Reads bb.md.journal, bb.md.checkpoint_interval, bb.md.journal_max_bytes
  // over `defaults`.
  static MdParams from_properties(const Properties& props, MdParams defaults);
  static MdParams from_properties(const Properties& props);
};

// One journaled master mutation. A single struct covers every record type;
// unused fields encode as zero (records are tens of bytes either way).
enum class MdRecordType : std::uint8_t {
  kFileCreate = 1,   // path, token
  kBlockAdd = 2,     // path, block_index
  kBlockSeal = 3,    // path, block_index, size, crcs, durability, replicas
  kFlushStart = 4,   // path, block_index
  kFlushComplete = 5,  // path, block_index
  kBlockLost = 6,    // path, block_index (loss accounting)
  kQuarantine = 7,   // path, block_index
  kFileClose = 8,    // path, size
  kFileDelete = 9,   // path
};

struct MdRecord {
  MdRecordType type = MdRecordType::kFileCreate;
  std::string path;
  std::uint32_t block_index = 0;
  std::uint64_t size = 0;
  std::uint64_t token = 0;  // create idempotency token
  std::uint32_t crc32c = 0;
  std::vector<std::uint32_t> chunk_crcs;
  bool already_durable = false;
  bool has_local_node = false;
  std::uint32_t local_node = 0;
  std::uint64_t op_id = 0;
  std::vector<std::uint32_t> replicas;  // replica-set at seal time
};

Bytes encode_record(const MdRecord& record);
Result<MdRecord> decode_record(const Bytes& bytes);

// Full-map snapshot written by a checkpoint. Counter totals ride along so a
// restarted master reports cumulative flush/loss telemetry, not a reset.
struct MdBlockSnapshot {
  std::uint32_t index = 0;
  std::uint64_t size = 0;
  std::uint32_t crc32c = 0;
  std::vector<std::uint32_t> chunk_crcs;
  std::uint8_t state = 0;  // BlockState
  bool has_local_node = false;
  std::uint32_t local_node = 0;
  std::uint64_t op_id = 0;
  std::vector<std::uint32_t> replicas;
};

struct MdFileSnapshot {
  std::string path;
  std::uint64_t create_token = 0;
  std::uint64_t size = 0;
  bool closed = false;
  std::vector<MdBlockSnapshot> blocks;
};

struct MdCheckpoint {
  std::uint64_t flushed_blocks = 0;
  std::uint64_t flushed_bytes = 0;
  std::uint64_t lost_blocks = 0;
  std::uint64_t recovered_blocks = 0;
  std::uint64_t quarantined_blocks = 0;
  std::vector<MdFileSnapshot> files;
};

Bytes encode_checkpoint(const MdCheckpoint& checkpoint);
Result<MdCheckpoint> decode_checkpoint(const Bytes& bytes);

class MetadataJournal {
 public:
  // The journal writes from the master's node with all-replica acks and
  // ring failover forced on: an append is never acknowledged primary-only,
  // and a KV outage reroutes instead of wedging the control plane.
  MetadataJournal(net::RpcHub& hub, net::NodeId node,
                  std::vector<net::NodeId> kv_servers,
                  kv::ClientParams kv_params, const MdParams& params);

  MetadataJournal(const MetadataJournal&) = delete;
  MetadataJournal& operator=(const MetadataJournal&) = delete;

  // Spawn the writer loop for the current generation. Called once after
  // construction and again after every crash()+load() cycle.
  void start();

  // Durable append: resolves once this record and every earlier one are
  // stored in the KV tier. Returns kUnavailable if the master crashed
  // before durability was reached — the caller must NOT acknowledge the
  // mutation (the client will retry through the idempotent protocol).
  sim::Task<Status> append(MdRecord record);

  // Fire-and-forget append for background mutations (flush complete, loss
  // accounting, quarantine): nothing is acknowledged against these, so the
  // caller need not block. Ordering relative to append() is preserved.
  void append_async(MdRecord record);

  struct Recovered {
    Bytes checkpoint;  // empty when no checkpoint was ever written
    std::vector<MdRecord> tail;
    std::uint64_t replay_from = 0;
  };
  // Load the latest checkpoint and the journal tail past it, and reset the
  // sequence counters to continue appending after the tail.
  sim::Task<Recovered> load();

  // Write `snapshot` (parts + control record) covering records < upto_seq,
  // then truncate the subsumed journal prefix. Waits for the journal to be
  // durable up to upto_seq before truncating, so an erase can never race
  // ahead of its record's write.
  sim::Task<Status> write_checkpoint(Bytes snapshot, std::uint64_t upto_seq);

  // Master crash: drop pending (never-acknowledged) appends and fail their
  // waiters; the writer loop of the old generation retires on next wake.
  void crash();

  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] std::uint64_t bytes_since_checkpoint() const noexcept {
    return bytes_since_checkpoint_;
  }

  void set_trace(sim::TraceRecorder* recorder) noexcept { trace_ = recorder; }

 private:
  struct Pending {
    std::uint64_t seq = 0;
    Bytes bytes;
  };

  sim::Task<void> writer_loop(std::uint64_t generation);

  static std::string journal_key(std::uint64_t seq);
  static std::string ckpt_key(std::uint32_t slot, std::uint32_t part);
  static std::string ctl_key();

  net::NodeId node_;
  MdParams params_;
  std::unique_ptr<kv::Client> kv_;
  sim::Simulation* sim_;
  sim::TraceRecorder* trace_ = nullptr;

  sim::Channel<Pending> queue_;
  sim::Condition durable_;
  std::uint64_t generation_ = 0;
  std::uint64_t next_seq_ = 0;     // next sequence number to allocate
  std::uint64_t durable_next_ = 0;  // all seqs < this are durable
  std::uint64_t oldest_seq_ = 0;   // journal head (first non-truncated seq)
  std::uint32_t checkpoint_slot_ = 0;
  std::uint64_t bytes_since_checkpoint_ = 0;
};

}  // namespace hpcbb::bb
