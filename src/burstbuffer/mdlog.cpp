#include "burstbuffer/mdlog.h"

#include <algorithm>

#include "common/metrics.h"
#include "kvstore/store.h"

namespace hpcbb::bb {

namespace {

// Checkpoint parts stay well under the KV max value size at any sane slab
// configuration.
constexpr std::uint64_t kCheckpointPartBytes = 64 * KiB;
constexpr std::uint32_t kCheckpointMagic = 0x4D444350;  // "MDCP"

// ---- compact little-endian codec -------------------------------------------

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_string(Bytes& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_u32vec(Bytes& out, const std::vector<std::uint32_t>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const std::uint32_t x : v) put_u32(out, x);
}

// Bounds-checked reader; any overrun latches !ok and zero-fills.
struct Cursor {
  const Bytes* bytes;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t get_u8() {
    if (pos + 1 > bytes->size()) {
      ok = false;
      return 0;
    }
    return (*bytes)[pos++];
  }
  std::uint32_t get_u32() {
    if (pos + 4 > bytes->size()) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>((*bytes)[pos++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t get_u64() {
    if (pos + 8 > bytes->size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>((*bytes)[pos++]) << (8 * i);
    }
    return v;
  }
  std::string get_string() {
    const std::uint32_t len = get_u32();
    if (!ok || pos + len > bytes->size()) {
      ok = false;
      return {};
    }
    std::string s(bytes->begin() + static_cast<std::ptrdiff_t>(pos),
                  bytes->begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return s;
  }
  std::vector<std::uint32_t> get_u32vec() {
    const std::uint32_t count = get_u32();
    if (!ok || pos + static_cast<std::uint64_t>(count) * 4 > bytes->size()) {
      ok = false;
      return {};
    }
    std::vector<std::uint32_t> v;
    v.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) v.push_back(get_u32());
    return v;
  }
};

}  // namespace

MdParams MdParams::from_properties(const Properties& props, MdParams defaults) {
  MdParams params = defaults;
  params.journal = props.get_bool_or("bb.md.journal", params.journal);
  params.checkpoint_interval_ns = props.get_duration_ns_or(
      "bb.md.checkpoint_interval", params.checkpoint_interval_ns);
  params.journal_max_bytes =
      props.get_u64_or("bb.md.journal_max_bytes", params.journal_max_bytes);
  return params;
}

MdParams MdParams::from_properties(const Properties& props) {
  return from_properties(props, MdParams{});
}

Bytes encode_record(const MdRecord& record) {
  Bytes out;
  put_u8(out, static_cast<std::uint8_t>(record.type));
  put_string(out, record.path);
  put_u32(out, record.block_index);
  put_u64(out, record.size);
  put_u64(out, record.token);
  put_u32(out, record.crc32c);
  const std::uint8_t flags =
      static_cast<std::uint8_t>(record.already_durable ? 1 : 0) |
      static_cast<std::uint8_t>(record.has_local_node ? 2 : 0);
  put_u8(out, flags);
  put_u32(out, record.local_node);
  put_u64(out, record.op_id);
  put_u32vec(out, record.chunk_crcs);
  put_u32vec(out, record.replicas);
  return out;
}

Result<MdRecord> decode_record(const Bytes& bytes) {
  Cursor cur{&bytes};
  MdRecord record;
  record.type = static_cast<MdRecordType>(cur.get_u8());
  record.path = cur.get_string();
  record.block_index = cur.get_u32();
  record.size = cur.get_u64();
  record.token = cur.get_u64();
  record.crc32c = cur.get_u32();
  const std::uint8_t flags = cur.get_u8();
  record.already_durable = (flags & 1) != 0;
  record.has_local_node = (flags & 2) != 0;
  record.local_node = cur.get_u32();
  record.op_id = cur.get_u64();
  record.chunk_crcs = cur.get_u32vec();
  record.replicas = cur.get_u32vec();
  if (!cur.ok || cur.pos != bytes.size()) {
    return error(StatusCode::kDataLoss, "malformed metadata journal record");
  }
  return record;
}

Bytes encode_checkpoint(const MdCheckpoint& checkpoint) {
  Bytes out;
  put_u32(out, kCheckpointMagic);
  put_u64(out, checkpoint.flushed_blocks);
  put_u64(out, checkpoint.flushed_bytes);
  put_u64(out, checkpoint.lost_blocks);
  put_u64(out, checkpoint.recovered_blocks);
  put_u64(out, checkpoint.quarantined_blocks);
  put_u64(out, checkpoint.files.size());
  for (const MdFileSnapshot& file : checkpoint.files) {
    put_string(out, file.path);
    put_u64(out, file.create_token);
    put_u64(out, file.size);
    put_u8(out, file.closed ? 1 : 0);
    put_u64(out, file.blocks.size());
    for (const MdBlockSnapshot& block : file.blocks) {
      put_u32(out, block.index);
      put_u64(out, block.size);
      put_u32(out, block.crc32c);
      put_u8(out, block.state);
      put_u8(out, block.has_local_node ? 1 : 0);
      put_u32(out, block.local_node);
      put_u64(out, block.op_id);
      put_u32vec(out, block.chunk_crcs);
      put_u32vec(out, block.replicas);
    }
  }
  return out;
}

Result<MdCheckpoint> decode_checkpoint(const Bytes& bytes) {
  Cursor cur{&bytes};
  if (cur.get_u32() != kCheckpointMagic) {
    return error(StatusCode::kDataLoss, "bad metadata checkpoint magic");
  }
  MdCheckpoint checkpoint;
  checkpoint.flushed_blocks = cur.get_u64();
  checkpoint.flushed_bytes = cur.get_u64();
  checkpoint.lost_blocks = cur.get_u64();
  checkpoint.recovered_blocks = cur.get_u64();
  checkpoint.quarantined_blocks = cur.get_u64();
  const std::uint64_t file_count = cur.get_u64();
  for (std::uint64_t f = 0; cur.ok && f < file_count; ++f) {
    MdFileSnapshot file;
    file.path = cur.get_string();
    file.create_token = cur.get_u64();
    file.size = cur.get_u64();
    file.closed = cur.get_u8() != 0;
    const std::uint64_t block_count = cur.get_u64();
    for (std::uint64_t b = 0; cur.ok && b < block_count; ++b) {
      MdBlockSnapshot block;
      block.index = cur.get_u32();
      block.size = cur.get_u64();
      block.crc32c = cur.get_u32();
      block.state = cur.get_u8();
      block.has_local_node = cur.get_u8() != 0;
      block.local_node = cur.get_u32();
      block.op_id = cur.get_u64();
      block.chunk_crcs = cur.get_u32vec();
      block.replicas = cur.get_u32vec();
      file.blocks.push_back(std::move(block));
    }
    checkpoint.files.push_back(std::move(file));
  }
  if (!cur.ok || cur.pos != bytes.size()) {
    return error(StatusCode::kDataLoss, "malformed metadata checkpoint");
  }
  return checkpoint;
}

// ---- MetadataJournal -------------------------------------------------------

namespace {
kv::ClientParams journal_client_params(kv::ClientParams params) {
  // Never acknowledge primary-only: an append is durable on every replica
  // at ack time. Failover keeps the control plane writable through a KV
  // server outage (the degraded windows are exactly when journaling
  // matters most).
  params.ack = kv::AckMode::kAll;
  params.failover = true;
  return params;
}
}  // namespace

MetadataJournal::MetadataJournal(net::RpcHub& hub, net::NodeId node,
                                 std::vector<net::NodeId> kv_servers,
                                 kv::ClientParams kv_params,
                                 const MdParams& params)
    : node_(node),
      params_(params),
      kv_(std::make_unique<kv::Client>(hub, node, std::move(kv_servers),
                                       journal_client_params(kv_params))),
      sim_(&hub.transport().fabric().simulation()),
      queue_(*sim_),
      durable_(*sim_) {}

std::string MetadataJournal::journal_key(std::uint64_t seq) {
  return std::string(kv::kReservedMetaPrefix) + "bb:j:" + std::to_string(seq);
}

std::string MetadataJournal::ckpt_key(std::uint32_t slot, std::uint32_t part) {
  return std::string(kv::kReservedMetaPrefix) + "bb:ckpt:" +
         std::to_string(slot) + ":" + std::to_string(part);
}

std::string MetadataJournal::ctl_key() {
  return std::string(kv::kReservedMetaPrefix) + "bb:ctl";
}

void MetadataJournal::start() { sim_->spawn(writer_loop(generation_)); }

sim::Task<void> MetadataJournal::writer_loop(std::uint64_t generation) {
  for (;;) {
    Pending pending = co_await queue_.recv();
    if (generation != generation_) co_return;  // superseded by a restart
    const sim::SimTime start = sim_->now();
    const std::uint64_t record_bytes = pending.bytes.size();
    const BytesPtr payload = make_bytes(std::move(pending.bytes));
    for (;;) {
      Status st = co_await kv_->set(journal_key(pending.seq), payload,
                                    /*pinned=*/true);
      if (generation != generation_) co_return;
      if (st.is_ok()) break;
      // An allocated record is never dropped while the master lives: a KV
      // hiccup retries, and the blocked appenders hold their acks — no ack
      // without durability.
      sim_->metrics().counter("bb.md.journal_retries").add();
      co_await sim_->delay(duration::ms);
      if (generation != generation_) co_return;
    }
    durable_next_ = pending.seq + 1;
    bytes_since_checkpoint_ += record_bytes;
    sim_->metrics().counter("bb.md.journal_records").add();
    sim_->metrics().counter("bb.md.journal_bytes").add(record_bytes);
    sim_->metrics().histogram("bb.md.journal_append_ns")
        .record(sim_->now() - start);
    // No trace span here: the master's journal_append wrapper records the
    // op-attributed "md.append" span covering queue wait + durability, and
    // two overlapping spans would double-charge the md layer.
    durable_.notify_all();
  }
}

sim::Task<Status> MetadataJournal::append(MdRecord record) {
  const std::uint64_t generation = generation_;
  const std::uint64_t seq = next_seq_++;
  queue_.push(Pending{seq, encode_record(record)});
  while (generation == generation_ && durable_next_ <= seq) {
    co_await durable_.wait();
  }
  if (generation != generation_) {
    co_return error(StatusCode::kUnavailable,
                    "master crashed before journal append became durable");
  }
  co_return Status::ok();
}

void MetadataJournal::append_async(MdRecord record) {
  const std::uint64_t seq = next_seq_++;
  queue_.push(Pending{seq, encode_record(record)});
}

void MetadataJournal::crash() {
  ++generation_;
  Pending dropped;
  while (queue_.try_recv(dropped)) {
  }
  // Wake blocked appenders; they observe the generation change and report
  // kUnavailable so their handlers never acknowledge the lost mutations.
  durable_.notify_all();
}

sim::Task<MetadataJournal::Recovered> MetadataJournal::load() {
  Recovered out;
  // Control record: absent (kNotFound) simply means no checkpoint was ever
  // written — replay the whole journal. Transient failures retry briefly.
  for (int attempt = 0;; ++attempt) {
    Result<BytesPtr> ctl = co_await kv_->get(ctl_key());
    if (ctl.is_ok()) {
      Cursor cur{ctl.value().get()};
      const std::uint32_t slot = cur.get_u32();
      const std::uint32_t parts = cur.get_u32();
      const std::uint64_t replay_from = cur.get_u64();
      if (!cur.ok) break;  // malformed control record: full replay
      Bytes checkpoint;
      bool complete = true;
      for (std::uint32_t part = 0; part < parts && complete; ++part) {
        Result<BytesPtr> piece = co_await kv_->get(ckpt_key(slot, part));
        if (!piece.is_ok()) {
          complete = false;
          break;
        }
        checkpoint.insert(checkpoint.end(), piece.value()->begin(),
                          piece.value()->end());
      }
      if (complete) {
        out.checkpoint = std::move(checkpoint);
        out.replay_from = replay_from;
        checkpoint_slot_ = slot;
      } else {
        // A checkpoint part vanished (should be impossible under the
        // pinned reserved range): fall back to whatever journal tail
        // remains rather than wedging recovery.
        sim_->metrics().counter("bb.md.recovery_errors").add();
        out.replay_from = replay_from;
      }
      break;
    }
    if (ctl.code() == StatusCode::kNotFound || attempt >= 4) break;
    co_await sim_->delay(duration::ms);
  }

  // Journal tail: the writer serializes appends in seq order, so the first
  // missing key is the end of the durable, hole-free prefix.
  for (std::uint64_t seq = out.replay_from;; ++seq) {
    Result<BytesPtr> raw = co_await kv_->get(journal_key(seq));
    if (!raw.is_ok()) {
      if (raw.code() == StatusCode::kNotFound) break;
      sim_->metrics().counter("bb.md.recovery_errors").add();
      break;
    }
    Result<MdRecord> record = decode_record(*raw.value());
    if (!record.is_ok()) {
      sim_->metrics().counter("bb.md.recovery_errors").add();
      break;
    }
    out.tail.push_back(std::move(record).value());
  }

  next_seq_ = out.replay_from + out.tail.size();
  durable_next_ = next_seq_;
  oldest_seq_ = out.replay_from;
  bytes_since_checkpoint_ = 0;
  co_return out;
}

sim::Task<Status> MetadataJournal::write_checkpoint(Bytes snapshot,
                                                    std::uint64_t upto_seq) {
  const std::uint64_t generation = generation_;
  const std::uint64_t snapshot_bytes = snapshot.size();
  // Truncation must never race ahead of a pending record's write: wait for
  // the journal to be durable through the snapshot horizon first.
  while (generation == generation_ && durable_next_ < upto_seq) {
    co_await durable_.wait();
  }
  if (generation != generation_) {
    co_return error(StatusCode::kUnavailable, "master crashed mid-checkpoint");
  }
  // Alternate slots: the previous checkpoint and control record stay intact
  // until the new slot is fully written, so a crash at any point here
  // recovers from a consistent snapshot.
  const std::uint32_t slot = checkpoint_slot_ ^ 1u;
  const auto parts = static_cast<std::uint32_t>(
      (snapshot.size() + kCheckpointPartBytes - 1) / kCheckpointPartBytes);
  for (std::uint32_t part = 0; part < parts; ++part) {
    const std::uint64_t begin = part * kCheckpointPartBytes;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + kCheckpointPartBytes, snapshot.size());
    Bytes piece(snapshot.begin() + static_cast<std::ptrdiff_t>(begin),
                snapshot.begin() + static_cast<std::ptrdiff_t>(end));
    Status st = co_await kv_->set(ckpt_key(slot, part),
                                  make_bytes(std::move(piece)),
                                  /*pinned=*/true);
    if (generation != generation_) {
      co_return error(StatusCode::kUnavailable,
                      "master crashed mid-checkpoint");
    }
    if (!st.is_ok()) co_return st;  // old checkpoint + journal still intact
  }
  Bytes ctl;
  put_u32(ctl, slot);
  put_u32(ctl, parts);
  put_u64(ctl, upto_seq);
  Status st =
      co_await kv_->set(ctl_key(), make_bytes(std::move(ctl)), /*pinned=*/true);
  if (generation != generation_) {
    co_return error(StatusCode::kUnavailable, "master crashed mid-checkpoint");
  }
  if (!st.is_ok()) co_return st;
  checkpoint_slot_ = slot;
  sim_->metrics().counter("bb.md.checkpoints").add();
  sim_->metrics().counter("bb.md.checkpoint_bytes").add(snapshot_bytes);

  // The control record is durable: every record below upto_seq is subsumed.
  const std::uint64_t truncate_from = oldest_seq_;
  oldest_seq_ = upto_seq;
  bytes_since_checkpoint_ = 0;
  for (std::uint64_t seq = truncate_from; seq < upto_seq; ++seq) {
    (void)co_await kv_->erase(journal_key(seq));
    if (generation != generation_) {
      // Partially truncated is fine: re-erasing on the next checkpoint is
      // idempotent, and recovery never reads below replay_from.
      co_return error(StatusCode::kUnavailable,
                      "master crashed mid-truncation");
    }
  }
  sim_->metrics().counter("bb.md.journal_truncated").add(upto_seq -
                                                         truncate_from);
  co_return Status::ok();
}

}  // namespace hpcbb::bb
