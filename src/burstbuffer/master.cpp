#include "burstbuffer/master.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <span>

#include "common/crc32c.h"
#include "common/metrics.h"

namespace hpcbb::bb {

flowctl::FlowControlParams scheme_policy(flowctl::FlowControlParams params,
                                         Scheme scheme) noexcept {
  if (scheme == Scheme::kSync) {
    // Write-through: data is durable at ack, so there is no dirty backlog
    // to bound — only total residency matters. Lift the dirty gate to the
    // critical watermark and drop pacing (the flush queue stays empty).
    params.high_watermark = params.critical_watermark;
    params.background_pace_ns = 0;
  }
  return params;
}

namespace {
flowctl::FlowControlParams master_flowctl_params(const MasterParams& params,
                                                 Scheme scheme) {
  flowctl::FlowControlParams fp = scheme_policy(params.flowctl, scheme);
  fp.capacity_bytes = params.buffer_capacity_bytes;
  return fp;
}
}  // namespace

Master::Master(net::RpcHub& hub, net::NodeId node,
               std::vector<net::NodeId> kv_servers, net::NodeId lustre_mds,
               Scheme scheme, const MasterParams& params)
    : hub_(&hub),
      node_(node),
      kv_servers_(std::move(kv_servers)),
      scheme_(scheme),
      params_(params),
      lustre_(hub, lustre_mds),
      flowctl_(hub.transport().fabric().simulation(),
               master_flowctl_params(params, scheme),
               static_cast<std::uint32_t>(node)),
      flush_queue_(hub.transport().fabric().simulation()),
      flush_done_(hub.transport().fabric().simulation()) {
  assert(!kv_servers_.empty());
  hub_->bind(node_, kBbCreate, net::typed_handler<BbCreateRequest>([this](
      auto req) { return handle_create(req); }));
  hub_->bind(node_, kBbAddBlock, net::typed_handler<BbAddBlockRequest>([this](
      auto req) { return handle_add_block(req); }));
  hub_->bind(node_, kBbCompleteBlock,
             net::typed_handler<BbCompleteBlockRequest>(
                 [this](auto req) { return handle_complete_block(req); }));
  hub_->bind(node_, kBbClose, net::typed_handler<BbCloseRequest>([this](
      auto req) { return handle_close(req); }));
  hub_->bind(node_, kBbLocations, net::typed_handler<BbLocationsRequest>(
      [this](auto req) { return handle_locations(req); }));
  hub_->bind(node_, kBbDelete, net::typed_handler<BbDeleteRequest>([this](
      auto req) { return handle_delete(req); }));
  hub_->bind(node_, kBbList, net::typed_handler<BbListRequest>([this](
      auto req) { return handle_list(req); }));

  sim::Simulation& sim = hub_->transport().fabric().simulation();
  for (std::uint32_t w = 0; w < params_.flusher_count; ++w) {
    // Each worker acts from a KV server node (burst-buffer servers persist
    // their data to Lustre in the paper's deployment).
    flusher_clients_.push_back(std::make_unique<kv::Client>(
        *hub_, kv_servers_[w % kv_servers_.size()], kv_servers_,
        params_.kv_client));
    sim.spawn(flush_worker(w));
  }
  sim.spawn(evict_worker());

  peer_health_.resize(kv_servers_.size());
  if (params_.heartbeat_interval_ns > 0) {
    probe_client_ = std::make_unique<kv::Client>(*hub_, node_, kv_servers_,
                                                 params_.kv_client);
    sim.metrics().gauge("bb.kv_live")
        .set(static_cast<std::uint64_t>(kv_servers_.size()));
    sim.spawn(heartbeat_worker());
  }
  if (params_.kv_client.replication_factor > 1) {
    recovery_ = std::make_unique<repl::RecoveryManager>(
        *hub_, node_, kv_servers_,
        repl::RecoveryParams{params_.kv_client.replication_factor},
        params_.kv_client);
    recovery_->set_chunk_source([this] { return replicated_chunks(); });
    recovery_->set_liveness([this](std::uint32_t i) {
      return peer_health_[i].state == PeerState::kLive;
    });
    recovery_->set_recovering_check([this](std::uint32_t i) {
      return peer_health_[i].state == PeerState::kRecovering;
    });
    recovery_->set_recovery_done(
        [this](std::uint32_t i) { on_recovery_complete(i); });
    recovery_->set_flow_control(&flowctl_);
  }
  if (params_.scrub.interval_ns > 0) {
    scrubber_ = std::make_unique<integrity::Scrubber>(
        *hub_, node_, kv_servers_, lustre_mds, params_.kv_client,
        params_.scrub, params_.lustre_prefix);
    scrubber_->set_inventory([this] { return scrub_inventory(); });
    scrubber_->set_quarantine(
        [this](const std::string& path, std::uint32_t block_index) {
          quarantine_block(path, block_index);
        });
    scrubber_->set_flow_control(&flowctl_);
    scrubber_->start();
  }
}

Master::~Master() {
  for (const net::Port port : {kBbCreate, kBbAddBlock, kBbCompleteBlock,
                               kBbClose, kBbLocations, kBbDelete, kBbList}) {
    hub_->unbind(node_, port);
  }
}

sim::Task<void> Master::charge_md_op() {
  return hub_->transport().fabric().charge_cpu(node_, params_.md_op_ns);
}

std::uint32_t Master::live_kv_count() const noexcept {
  std::uint32_t live = 0;
  for (const PeerHealth& h : peer_health_) live += h.state == PeerState::kLive;
  return live;
}

std::uint32_t Master::suspect_kv_count() const noexcept {
  std::uint32_t suspect = 0;
  for (const PeerHealth& h : peer_health_) {
    suspect += h.state == PeerState::kSuspect;
  }
  return suspect;
}

sim::Task<void> Master::heartbeat_worker() {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  for (;;) {
    co_await sim.delay(params_.heartbeat_interval_ns);
    if (heartbeat_stop_) co_return;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(kv_servers_.size()); ++i) {
      auto pong = co_await probe_client_->ping(kv_servers_[i]);
      apply_probe_result(i, pong.is_ok(),
                         pong.is_ok() ? pong.value().incarnation : 0);
    }
    update_health_mode();
  }
}

void Master::apply_probe_result(std::uint32_t kv_index, bool reachable,
                                std::uint64_t incarnation) {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  PeerHealth& health = peer_health_[kv_index];
  if (reachable) {
    // An incarnation bump means the server restarted empty: it rejoins the
    // ring, but everything it held before the crash is gone.
    const bool restarted =
        health.incarnation != 0 && incarnation != health.incarnation;
    if (health.state == PeerState::kRecovering && !restarted) {
      // Anti-entropy still streaming; reachable but not yet eligible.
      health.incarnation = incarnation;
      health.missed = 0;
      return;
    }
    if (restarted || health.state == PeerState::kDead) {
      sim.metrics().counter("bb.detector.rejoined").add();
      if (trace_ != nullptr) {
        trace_->record("rejoin.kv" + std::to_string(kv_index), "bb",
                       static_cast<std::uint32_t>(node_), sim.now(),
                       sim.now());
      }
      if (recovery_ != nullptr) {
        // Placement-eligibility gate: the restarted server is empty, so it
        // holds kRecovering (non-live: degraded mode and write-through stay
        // on) until anti-entropy re-fills its key ranges.
        health.incarnation = incarnation;
        health.missed = 0;
        health.state = PeerState::kRecovering;
        sim.metrics().counter("bb.detector.recovering").add();
        recovery_->on_server_rejoined(kv_index);
        return;
      }
    }
    health.incarnation = incarnation;
    health.missed = 0;
    health.state = PeerState::kLive;
    return;
  }
  ++health.missed;
  if ((health.state == PeerState::kLive ||
       health.state == PeerState::kRecovering) &&
      health.missed >= params_.suspect_after) {
    health.state = PeerState::kSuspect;
    sim.metrics().counter("bb.detector.suspected").add();
  }
  if (health.state == PeerState::kSuspect &&
      health.missed >= params_.dead_after) {
    health.state = PeerState::kDead;
    sim.metrics().counter("bb.detector.dead").add();
    // Restore the replication factor for everything the dead server held.
    if (recovery_ != nullptr) recovery_->on_server_dead(kv_index);
  }
}

void Master::on_recovery_complete(std::uint32_t kv_index) {
  if (peer_health_[kv_index].state != PeerState::kRecovering) return;
  peer_health_[kv_index].state = PeerState::kLive;
  hub_->transport().fabric().simulation().metrics()
      .counter("bb.detector.recovered").add();
  update_health_mode();
}

std::vector<repl::ChunkRef> Master::replicated_chunks() const {
  std::vector<repl::ChunkRef> out;
  for (const auto& [path, meta] : files_) {
    for (const BbBlockInfo& block : meta.blocks) {
      if (block.size == 0) continue;
      if (block.state != BlockState::kDirty &&
          block.state != BlockState::kFlushing &&
          block.state != BlockState::kFlushed) {
        continue;
      }
      const auto chunks = static_cast<std::uint32_t>(
          (block.size + params_.chunk_size - 1) / params_.chunk_size);
      // Dirty chunks stay pinned until their flush completes.
      const bool pinned = block.state != BlockState::kFlushed;
      const std::string block_id = local_object(path, block.index);
      for (std::uint32_t c = 0; c < chunks; ++c) {
        out.push_back(repl::ChunkRef{chunk_key(path, block.index, c),
                                     block_id, params_.chunk_size, pinned});
      }
    }
  }
  return out;
}

void Master::update_health_mode() {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const std::uint32_t live = live_kv_count();
  sim.metrics().gauge("bb.kv_live").set(live);
  sim.metrics().gauge("bb.kv_suspect").set(suspect_kv_count());
  const bool now_degraded =
      live < static_cast<std::uint32_t>(kv_servers_.size());
  if (now_degraded == degraded_) return;
  degraded_ = now_degraded;
  if (degraded_) {
    degraded_since_ = sim.now();
    sim.metrics().counter("bb.degraded.entered").add();
    // At-risk dirty blocks must reach Lustre before another server fails:
    // drop all flush pacing until the cluster is healthy again.
    flowctl_.force_urgent(true);
  } else {
    // Recovery time: from first suspicion to all peers live again.
    sim.metrics().histogram("bb.degraded_window_ns")
        .record(sim.now() - degraded_since_);
    flowctl_.force_urgent(false);
  }
  if (trace_ != nullptr) {
    trace_->record(degraded_ ? "degraded.enter" : "degraded.exit", "bb",
                   static_cast<std::uint32_t>(node_), sim.now(), sim.now());
  }
}

sim::Task<net::RpcResponse> Master::handle_create(
    std::shared_ptr<const BbCreateRequest> req) {
  co_await charge_md_op();
  if (const auto it = files_.find(req->path); it != files_.end()) {
    if (req->token != 0 && it->second.create_token == req->token) {
      // Retransmitted create whose first reply was lost: already done.
      co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
    }
    co_return net::rpc_error(
        error(StatusCode::kAlreadyExists, "file exists: " + req->path));
  }
  // Create the Lustre backing file up front: flushers and write-through
  // writers need its layout immediately.
  Result<lustre::FileLayout> layout =
      co_await lustre_.create(node_, lustre_path(req->path));
  if (!layout.is_ok()) co_return net::rpc_error(layout.status());
  FileMeta meta;
  meta.lustre_layout = std::move(layout).value();
  meta.create_token = req->token;
  files_[req->path] = std::move(meta);
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> Master::handle_add_block(
    std::shared_ptr<const BbAddBlockRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  if (it->second.closed) {
    co_return net::rpc_error(
        error(StatusCode::kFailedPrecondition, "file is closed"));
  }
  if (req->expected_index != kAnyBlockIndex &&
      req->expected_index < it->second.blocks.size()) {
    // The writer expects an index this (single-writer) file already has:
    // a retransmitted AddBlock. Return the existing block — allocating a
    // fresh one would orphan a hole in the middle of the file.
    auto reply = std::make_shared<BbAddBlockReply>();
    reply->block_index = req->expected_index;
    reply->write_through = degraded_ && scheme_ != Scheme::kSync;
    const std::uint64_t wire = reply->wire_size();
    co_return net::rpc_ok<BbAddBlockReply>(std::move(reply), wire);
  }
  // Credit-based admission: may evict clean blocks, may stall (but never
  // reject) under memory pressure.
  (void)co_await flowctl_.admit(params_.block_size, req->op_id);
  // Re-find: the admission wait suspends, and the file may change meanwhile.
  const auto it2 = files_.find(req->path);
  if (it2 == files_.end()) {
    flowctl_.release_reservation(params_.block_size);
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "file deleted while admitting block"));
  }
  auto reply = std::make_shared<BbAddBlockReply>();
  reply->block_index = static_cast<std::uint32_t>(it2->second.blocks.size());
  // Suspect/dead KV servers: have the writer establish durability on the
  // write path instead of trusting the buffer to survive until flush.
  reply->write_through = degraded_ && scheme_ != Scheme::kSync;
  BbBlockInfo block;
  block.index = reply->block_index;
  block.reservation_held = flowctl_.enabled();
  it2->second.blocks.push_back(block);
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<BbAddBlockReply>(std::move(reply), wire);
}

sim::Task<net::RpcResponse> Master::handle_complete_block(
    std::shared_ptr<const BbCompleteBlockRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  if (req->block_index >= it->second.blocks.size()) {
    co_return net::rpc_error(error(StatusCode::kNotFound, "no such block"));
  }
  BbBlockInfo& block = it->second.blocks[req->block_index];
  if (block.state != BlockState::kOpen) {
    // Only CompleteBlock moves a block out of kOpen, so this is a
    // retransmission — the first one already settled the accounting.
    co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
  }
  block.size = req->size;
  block.crc32c = req->crc32c;
  block.chunk_crcs = req->chunk_crcs;
  block.local_node = req->local_node;
  if (recovery_ != nullptr && req->size > 0) {
    // Record where the block's chunks live: the union of the chunks' ring
    // replica sets (deterministic, so clients and recovery agree).
    const auto chunks = static_cast<std::uint32_t>(
        (req->size + params_.chunk_size - 1) / params_.chunk_size);
    for (std::uint32_t c = 0; c < chunks; ++c) {
      for (const std::uint32_t s :
           recovery_->replicas(chunk_key(req->path, block.index, c))) {
        if (std::find(block.replicas.begin(), block.replicas.end(), s) ==
            block.replicas.end()) {
          block.replicas.push_back(s);
        }
      }
    }
    std::sort(block.replicas.begin(), block.replicas.end());
  }
  const std::uint64_t reserved =
      block.reservation_held ? params_.block_size : 0;
  block.reservation_held = false;
  if (req->already_durable) {
    // BB-Sync: durable at ack; the buffer copy is immediately clean.
    flowctl_.reservation_to_clean(reserved,
                                  local_object(req->path, block.index),
                                  block_footprint(req->size));
    block.state = BlockState::kFlushed;
    ++flushed_blocks_;
    flushed_bytes_ += req->size;
  } else {
    flowctl_.reservation_to_dirty(reserved, block_footprint(req->size));
    block.state = BlockState::kDirty;
    block.op_id = req->op_id;
    ++dirty_or_flushing_;
    enqueue_flush(FlushItem{req->path, req->block_index, req->op_id});
  }
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> Master::handle_close(
    std::shared_ptr<const BbCloseRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  it->second.closed = true;
  it->second.size = req->size;
  // Record the logical size on Lustre now; block data lands as flushes
  // complete (MDS set-size keeps the max).
  Status st = co_await lustre_.set_size(node_, lustre_path(req->path),
                                        req->size);
  if (!st.is_ok()) co_return net::rpc_error(std::move(st));
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> Master::handle_locations(
    std::shared_ptr<const BbLocationsRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  // Opening for read marks the file's flushed blocks recently used, so the
  // eviction LRU prefers cold files.
  for (const BbBlockInfo& block : it->second.blocks) {
    if (block.state == BlockState::kFlushed) {
      flowctl_.touch_clean(local_object(req->path, block.index));
    }
  }
  auto reply = std::make_shared<BbLocationsReply>();
  reply->file_size = it->second.size;
  reply->block_size = params_.block_size;
  reply->closed = it->second.closed;
  reply->blocks = it->second.blocks;
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<BbLocationsReply>(std::move(reply), wire);
}

sim::Task<net::RpcResponse> Master::handle_delete(
    std::shared_ptr<const BbDeleteRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  // Capture and erase first so queued flushes see the file as gone.
  FileMeta meta = std::move(it->second);
  files_.erase(it);
  for (BbBlockInfo& block : meta.blocks) {
    switch (block.state) {
      case BlockState::kDirty:
      case BlockState::kFlushing:
        // Its flush item will find the file gone and skip; settle the
        // accounting here: the dirty bytes simply leave the buffer.
        flowctl_.drop_dirty(block_footprint(block.size));
        assert(dirty_or_flushing_ > 0);
        --dirty_or_flushing_;
        if (dirty_or_flushing_ == 0) flush_done_.notify_all();
        break;
      case BlockState::kFlushed:
        flowctl_.forget_clean(local_object(req->path, block.index));
        break;
      case BlockState::kOpen:
      case BlockState::kLost:
      case BlockState::kQuarantined:  // accounting settled when quarantined
        release_reservation(block);   // e.g. added but never sealed
        break;
    }
    const std::uint32_t chunks = static_cast<std::uint32_t>(
        (block.size + params_.chunk_size - 1) / params_.chunk_size);
    kv::Client& kv = *flusher_clients_.front();
    for (std::uint32_t c = 0; c < chunks; ++c) {
      (void)co_await kv.erase(chunk_key(req->path, block.index, c));
    }
  }
  Status st = co_await lustre_.unlink(node_, lustre_path(req->path));
  if (!st.is_ok() && st.code() != StatusCode::kNotFound) {
    co_return net::rpc_error(std::move(st));
  }
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> Master::handle_list(
    std::shared_ptr<const BbListRequest> req) {
  co_await charge_md_op();
  auto reply = std::make_shared<BbListReply>();
  for (const auto& [path, meta] : files_) {
    if (path.starts_with(req->prefix)) reply->paths.push_back(path);
  }
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<BbListReply>(std::move(reply), wire);
}

void Master::enqueue_flush(FlushItem item) {
  ++flush_queue_depth_;
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  item.enqueued_ns = sim.now();
  sim.metrics().gauge("bb.flush_queue_depth").add();
  flush_queue_.push(std::move(item));
}

void Master::release_reservation(BbBlockInfo& block) {
  if (!block.reservation_held) return;
  block.reservation_held = false;
  flowctl_.release_reservation(params_.block_size);
}

void Master::finish_block(const std::string& path, BbBlockInfo& block,
                          BlockState state) {
  release_reservation(block);
  block.state = state;
  assert(dirty_or_flushing_ > 0);
  --dirty_or_flushing_;
  if (state == BlockState::kFlushed) {
    ++flushed_blocks_;
    flushed_bytes_ += block.size;
    // Durable and still buffer-resident: the block becomes clean, evictable
    // cache data.
    flowctl_.dirty_to_clean(local_object(path, block.index),
                            block_footprint(block.size));
  } else if (state == BlockState::kLost) {
    ++lost_blocks_;
    flowctl_.drop_dirty(block_footprint(block.size));
  } else if (state == BlockState::kQuarantined) {
    // Corrupt on every copy before it could be flushed: the dirty bytes
    // leave the buffer accounting, but the flusher will never write them.
    ++quarantined_blocks_;
    flowctl_.drop_dirty(block_footprint(block.size));
    hub_->transport().fabric().simulation().metrics()
        .counter("bb.quarantined_blocks").add();
  }
  if (dirty_or_flushing_ == 0) flush_done_.notify_all();
}

void Master::quarantine_block(const std::string& path,
                              std::uint32_t block_index) {
  const auto it = files_.find(path);
  if (it == files_.end() || block_index >= it->second.blocks.size()) return;
  BbBlockInfo& block = it->second.blocks[block_index];
  if (block.state != BlockState::kDirty) return;
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  if (trace_ != nullptr) {
    trace_->record("quarantine." + local_object(path, block_index), "bb",
                   static_cast<std::uint32_t>(node_), sim.now(), sim.now());
  }
  // The queued flush item finds the block no longer kDirty and skips it.
  finish_block(path, block, BlockState::kQuarantined);
}

std::vector<integrity::ScrubChunk> Master::scrub_inventory() const {
  std::vector<integrity::ScrubChunk> out;
  for (const auto& [path, meta] : files_) {
    for (const BbBlockInfo& block : meta.blocks) {
      if (block.size == 0) continue;
      // kFlushing is skipped: the flusher is mid-read and verifies the
      // assembled block itself before writing Lustre.
      if (block.state != BlockState::kDirty &&
          block.state != BlockState::kFlushed) {
        continue;
      }
      const auto chunks = static_cast<std::uint32_t>(
          (block.size + params_.chunk_size - 1) / params_.chunk_size);
      if (block.chunk_crcs.size() != chunks) continue;  // no provenance
      const bool durable = block.state == BlockState::kFlushed;
      for (std::uint32_t c = 0; c < chunks; ++c) {
        const std::uint64_t c_start =
            static_cast<std::uint64_t>(c) * params_.chunk_size;
        integrity::ScrubChunk chunk;
        chunk.key = chunk_key(path, block.index, c);
        chunk.path = path;
        chunk.block_index = block.index;
        chunk.chunk_index = c;
        chunk.crc = block.chunk_crcs[c];
        chunk.logical_len = std::min(params_.chunk_size, block.size - c_start);
        chunk.padded_len = params_.chunk_size;
        chunk.lustre_offset =
            static_cast<std::uint64_t>(block.index) * params_.block_size +
            c_start;
        chunk.durable = durable;
        chunk.pinned = !durable;
        out.push_back(std::move(chunk));
      }
    }
  }
  return out;
}

bool Master::block_matches_crcs(const BbBlockInfo& block,
                                const Bytes& data) const {
  const auto chunks = static_cast<std::uint32_t>(
      (block.size + params_.chunk_size - 1) / params_.chunk_size);
  if (block.chunk_crcs.size() != chunks) {
    return block.size == 0 || crc32c(data) == block.crc32c;
  }
  std::uint64_t pos = 0;
  for (std::uint32_t c = 0; c < chunks; ++c) {
    const std::uint64_t logical =
        std::min(params_.chunk_size, block.size - pos);
    if (crc32c(std::span<const std::uint8_t>(data.data() + pos, logical)) !=
        block.chunk_crcs[c]) {
      return false;
    }
    pos += logical;
  }
  return true;
}

sim::Task<void> Master::wait_all_flushed() {
  while (dirty_or_flushing_ > 0) co_await flush_done_.wait();
}

sim::Task<void> Master::flush_worker(std::uint32_t worker_index) {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  for (;;) {
    const FlushItem item = co_await flush_queue_.recv();
    assert(flush_queue_depth_ > 0);
    --flush_queue_depth_;
    sim.metrics().gauge("bb.flush_queue_depth").sub();
    // Watermark-driven escalation: drain gently in the background while
    // pressure is low, flat out once dirty bytes cross the high watermark.
    if (const sim::SimTime pace = flowctl_.flush_pace(); pace > 0) {
      co_await sim.delay(pace);
    }
    std::size_t span = 0;
    if (trace_ != nullptr) {
      // Queue dwell plus pacing delay: time the sealed block waited before a
      // flusher started serving it. Attribution counts it as queueing.
      trace_->record("wait.flush_queue", "bb", worker_index, item.enqueued_ns,
                     sim.now(), item.op_id);
      span = trace_->begin(
          "flush.block_" + std::to_string(item.block_index), "bb",
          worker_index, item.op_id);
    }
    const sim::SimTime start = sim.now();
    (void)co_await flush_block(worker_index, item);
    sim.metrics().histogram("bb.flush_ns").record(sim.now() - start);
    if (trace_ != nullptr) trace_->end(span);
  }
}

// Erases the chunks of blocks the flow controller evicted (clean blocks:
// flushed to Lustre, so this only reclaims buffer memory, never loses data).
sim::Task<void> Master::evict_worker() {
  for (;;) {
    const flowctl::CleanBlock victim = co_await flowctl_.evictions().recv();
    std::size_t span = 0;
    if (trace_ != nullptr) {
      span = trace_->begin("flowctl.evict." + victim.id, "flowctl",
                           static_cast<std::uint32_t>(node_));
    }
    // id is "<path>#<block_index>"; the footprint is chunk-padded, so the
    // chunk count falls out of the byte count.
    const std::size_t sep = victim.id.rfind('#');
    if (sep != std::string::npos) {
      const std::string path = victim.id.substr(0, sep);
      const auto index = static_cast<std::uint32_t>(
          std::strtoul(victim.id.c_str() + sep + 1, nullptr, 10));
      const auto chunks =
          static_cast<std::uint32_t>(victim.bytes / params_.chunk_size);
      kv::Client& kv = *flusher_clients_.front();
      for (std::uint32_t c = 0; c < chunks; ++c) {
        (void)co_await kv.erase(chunk_key(path, index, c));
      }
    }
    if (trace_ != nullptr) trace_->end(span);
  }
}

sim::Task<Status> Master::flush_block(std::uint32_t worker_index,
                                      const FlushItem& item) {
  // NOTE: references into files_ must be re-resolved after every co_await —
  // writers add blocks (vector reallocation) and files can be deleted while
  // a flush is in flight.
  const auto lookup = [this, &item]() -> BbBlockInfo* {
    const auto it = files_.find(item.path);
    if (it == files_.end() || item.block_index >= it->second.blocks.size()) {
      return nullptr;
    }
    return &it->second.blocks[item.block_index];
  };

  BbBlockInfo* block = lookup();
  if (block == nullptr) co_return Status::ok();  // deleted while queued
  if (block->state != BlockState::kDirty) co_return Status::ok();
  flowctl_.note_flush_begin();
  block->state = BlockState::kFlushing;
  const std::uint64_t block_size = block->size;
  const std::uint32_t block_index = block->index;
  const auto local_node = block->local_node;

  kv::Client& kv = *flusher_clients_[worker_index];
  const net::NodeId self = kv.self();
  const std::uint32_t chunks = static_cast<std::uint32_t>(
      (block_size + params_.chunk_size - 1) / params_.chunk_size);

  // Pull the block out of the burst buffer...
  Bytes data;
  data.reserve(block_size);
  bool buffer_ok = true;
  bool corrupt = false;
  for (std::uint32_t c = 0; c < chunks && buffer_ok; ++c) {
    Result<BytesPtr> piece =
        co_await kv.get(chunk_key(item.path, block_index, c), item.op_id);
    if (!piece.is_ok()) {
      buffer_ok = false;
      // The verified-read client only reports kDataLoss once EVERY replica
      // failed its checksum — this chunk will not heal with a retry.
      corrupt = piece.code() == StatusCode::kDataLoss;
      break;
    }
    data.insert(data.end(), piece.value()->begin(), piece.value()->end());
  }

  // ...or recover from the node-local replica (BB-Local's second copy).
  if ((!buffer_ok || data.size() != block_size) && local_node.has_value()) {
    auto req = std::make_shared<const AgentReadRequest>(AgentReadRequest{
        local_object(item.path, block_index), 0, block_size});
    auto result = co_await hub_->call<AgentReadReply>(self, *local_node,
                                                      kAgentRead, req);
    if (result.is_ok()) {
      data.assign(result.value()->data->begin(), result.value()->data->end());
      buffer_ok = true;
      ++recovered_blocks_;
    }
  }

  block = lookup();
  if (block == nullptr) co_return Status::ok();  // deleted meanwhile

  // Buffer chunks are padded to uniform size; trim to the logical block.
  if (buffer_ok && data.size() > block_size) data.resize(block_size);
  // Whatever source produced the block — buffer chunks or the node-local
  // replica — it must match the writer-registered CRCs before it may touch
  // Lustre. Never persist corrupt bytes.
  if (buffer_ok && data.size() == block_size &&
      !block_matches_crcs(*block, data)) {
    buffer_ok = false;
    corrupt = true;
  }
  if (!buffer_ok || data.size() != block_size) {
    if (corrupt) {
      // Corruption does not heal with a requeue: every copy failed its
      // checksum. Quarantine the block so the flusher never writes the
      // corrupt bytes, and surface the loss instead of hiding it.
      finish_block(item.path, *block, BlockState::kQuarantined);
      co_return error(StatusCode::kDataLoss,
                      "block " + std::to_string(block_index) +
                          " corrupt on every copy; quarantined before flush");
    }
    // With replication armed, a failed buffer read is not yet loss while
    // the cluster is visibly unhealthy (or within a short grace window the
    // detector has not caught up to): primary-ack replica writes and
    // re-replication may still be in flight. Requeue and retry; the read
    // only fails conclusively once the cluster is healthy again.
    if (params_.kv_client.replication_factor > 1 &&
        (degraded_ || (recovery_ != nullptr && recovery_->active_runs() > 0) ||
         item.attempts < 4)) {
      block->state = BlockState::kDirty;
      co_await hub_->transport().fabric().simulation().delay(
          params_.heartbeat_interval_ns > 0 ? params_.heartbeat_interval_ns
                                            : duration::ms);
      block = lookup();
      if (block == nullptr) co_return Status::ok();
      enqueue_flush(FlushItem{item.path, item.block_index, item.op_id,
                              item.attempts + 1});
      co_return error(StatusCode::kUnavailable,
                      "buffer read failed during outage; flush requeued");
    }
    // Acknowledged-but-unflushed data is gone: this is exactly the
    // durability window the BB-Async scheme trades for speed.
    finish_block(item.path, *block, BlockState::kLost);
    co_return error(StatusCode::kDataLoss, "dirty block lost before flush");
  }

  const auto layout = files_.find(item.path)->second.lustre_layout;
  Status st = co_await lustre_.write(
      self, layout,
      static_cast<std::uint64_t>(block_index) * params_.block_size,
      make_bytes(std::move(data)), item.op_id);
  block = lookup();
  if (block == nullptr) co_return Status::ok();
  if (!st.is_ok()) {
    // Lustre hiccup: requeue and retry later rather than dropping data.
    block->state = BlockState::kDirty;
    enqueue_flush(item);
    co_return st;
  }
  (void)co_await lustre_.set_size(
      self, lustre_path(item.path),
      static_cast<std::uint64_t>(block_index) * params_.block_size +
          block_size);

  // Durable: unpin chunks so the cache may evict them under pressure.
  for (std::uint32_t c = 0; c < chunks; ++c) {
    (void)co_await kv.pin(chunk_key(item.path, block_index, c), false);
  }
  block = lookup();
  if (block == nullptr) co_return Status::ok();
  finish_block(item.path, *block, BlockState::kFlushed);
  co_return Status::ok();
}

}  // namespace hpcbb::bb
