#include "burstbuffer/master.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <span>

#include "common/crc32c.h"
#include "common/metrics.h"

namespace hpcbb::bb {

flowctl::FlowControlParams scheme_policy(flowctl::FlowControlParams params,
                                         Scheme scheme) noexcept {
  if (scheme == Scheme::kSync) {
    // Write-through: data is durable at ack, so there is no dirty backlog
    // to bound — only total residency matters. Lift the dirty gate to the
    // critical watermark and drop pacing (the flush queue stays empty).
    params.high_watermark = params.critical_watermark;
    params.background_pace_ns = 0;
  }
  return params;
}

namespace {
flowctl::FlowControlParams master_flowctl_params(const MasterParams& params,
                                                 Scheme scheme) {
  flowctl::FlowControlParams fp = scheme_policy(params.flowctl, scheme);
  fp.capacity_bytes = params.buffer_capacity_bytes;
  return fp;
}
}  // namespace

Master::Master(net::RpcHub& hub, net::NodeId node,
               std::vector<net::NodeId> kv_servers, net::NodeId lustre_mds,
               Scheme scheme, const MasterParams& params)
    : hub_(&hub),
      node_(node),
      kv_servers_(std::move(kv_servers)),
      lustre_mds_(lustre_mds),
      scheme_(scheme),
      params_(params),
      lustre_(hub, lustre_mds),
      flowctl_(hub.transport().fabric().simulation(),
               master_flowctl_params(params, scheme),
               static_cast<std::uint32_t>(node)),
      flush_queue_(hub.transport().fabric().simulation()),
      flush_done_(hub.transport().fabric().simulation()),
      recovered_cond_(hub.transport().fabric().simulation()) {
  assert(!kv_servers_.empty());
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  for (std::uint32_t w = 0; w < params_.flusher_count; ++w) {
    // Each worker acts from a KV server node (burst-buffer servers persist
    // their data to Lustre in the paper's deployment).
    flusher_clients_.push_back(std::make_unique<kv::Client>(
        *hub_, kv_servers_[w % kv_servers_.size()], kv_servers_,
        params_.kv_client));
  }

  peer_health_.resize(kv_servers_.size());
  if (params_.heartbeat_interval_ns > 0) {
    probe_client_ = std::make_unique<kv::Client>(*hub_, node_, kv_servers_,
                                                 params_.kv_client);
    sim.metrics().gauge("bb.kv_live")
        .set(static_cast<std::uint64_t>(kv_servers_.size()));
  }
  if (params_.kv_client.replication_factor > 1) {
    recovery_ = std::make_unique<repl::RecoveryManager>(
        *hub_, node_, kv_servers_,
        repl::RecoveryParams{params_.kv_client.replication_factor},
        params_.kv_client);
    recovery_->set_chunk_source([this] { return replicated_chunks(); });
    recovery_->set_liveness([this](std::uint32_t i) {
      return peer_health_[i].state == PeerState::kLive;
    });
    recovery_->set_recovering_check([this](std::uint32_t i) {
      return peer_health_[i].state == PeerState::kRecovering;
    });
    recovery_->set_recovery_done(
        [this](std::uint32_t i) { on_recovery_complete(i); });
    recovery_->set_flow_control(&flowctl_);
  }
  if (params_.md.journal) {
    journal_ = std::make_unique<MetadataJournal>(
        *hub_, node_, kv_servers_, params_.kv_client, params_.md);
    journal_->start();
  }
  bind_ports();
  spawn_workers();
  make_scrubber();
  // Liveness gauge for the SLO engine (slo.master_up_min): 1 while the
  // master serves, 0 between crash() and a completed restart.
  sim.metrics().gauge("bb.master_up").set(1);
}

Master::~Master() { unbind_ports(); }

void Master::bind_ports() {
  hub_->bind(node_, kBbCreate, net::typed_handler<BbCreateRequest>([this](
      auto req) { return handle_create(req); }));
  hub_->bind(node_, kBbAddBlock, net::typed_handler<BbAddBlockRequest>([this](
      auto req) { return handle_add_block(req); }));
  hub_->bind(node_, kBbCompleteBlock,
             net::typed_handler<BbCompleteBlockRequest>(
                 [this](auto req) { return handle_complete_block(req); }));
  hub_->bind(node_, kBbClose, net::typed_handler<BbCloseRequest>([this](
      auto req) { return handle_close(req); }));
  hub_->bind(node_, kBbLocations, net::typed_handler<BbLocationsRequest>(
      [this](auto req) { return handle_locations(req); }));
  hub_->bind(node_, kBbDelete, net::typed_handler<BbDeleteRequest>([this](
      auto req) { return handle_delete(req); }));
  hub_->bind(node_, kBbList, net::typed_handler<BbListRequest>([this](
      auto req) { return handle_list(req); }));
  bound_ = true;
}

void Master::unbind_ports() {
  if (!bound_) return;
  for (const net::Port port : {kBbCreate, kBbAddBlock, kBbCompleteBlock,
                               kBbClose, kBbLocations, kBbDelete, kBbList}) {
    hub_->unbind(node_, port);
  }
  bound_ = false;
}

void Master::spawn_workers() {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  for (std::uint32_t w = 0; w < params_.flusher_count; ++w) {
    sim.spawn(flush_worker(generation_, w));
  }
  sim.spawn(evict_worker(generation_));
  if (probe_client_ != nullptr && !heartbeat_stop_) {
    sim.spawn(heartbeat_worker(generation_));
  }
  if (journal_ != nullptr && params_.md.checkpoint_interval_ns > 0 &&
      !heartbeat_stop_) {
    sim.spawn(checkpoint_worker(generation_));
  }
}

void Master::make_scrubber() {
  if (params_.scrub.interval_ns == 0 || heartbeat_stop_) return;
  scrubber_ = std::make_unique<integrity::Scrubber>(
      *hub_, node_, kv_servers_, lustre_mds_, params_.kv_client,
      params_.scrub, params_.lustre_prefix);
  scrubber_->set_inventory([this] { return scrub_inventory(); });
  scrubber_->set_quarantine(
      [this](const std::string& path, std::uint32_t block_index) {
        quarantine_block(path, block_index);
      });
  scrubber_->set_flow_control(&flowctl_);
  scrubber_->start();
}

sim::Task<void> Master::charge_md_op() {
  return hub_->transport().fabric().charge_cpu(node_, params_.md_op_ns);
}

std::uint32_t Master::live_kv_count() const noexcept {
  std::uint32_t live = 0;
  for (const PeerHealth& h : peer_health_) live += h.state == PeerState::kLive;
  return live;
}

std::uint32_t Master::suspect_kv_count() const noexcept {
  std::uint32_t suspect = 0;
  for (const PeerHealth& h : peer_health_) {
    suspect += h.state == PeerState::kSuspect;
  }
  return suspect;
}

sim::Task<void> Master::heartbeat_worker(std::uint64_t generation) {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  for (;;) {
    co_await sim.delay(params_.heartbeat_interval_ns);
    if (heartbeat_stop_ || generation != generation_) co_return;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(kv_servers_.size()); ++i) {
      auto pong = co_await probe_client_->ping(kv_servers_[i]);
      // A crash mid-probe retires this detector; the restarted master runs
      // its own with fresh peer state.
      if (heartbeat_stop_ || generation != generation_) co_return;
      apply_probe_result(i, pong.is_ok(),
                         pong.is_ok() ? pong.value().incarnation : 0);
    }
    update_health_mode();
  }
}

void Master::apply_probe_result(std::uint32_t kv_index, bool reachable,
                                std::uint64_t incarnation) {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  PeerHealth& health = peer_health_[kv_index];
  if (reachable) {
    // An incarnation bump means the server restarted empty: it rejoins the
    // ring, but everything it held before the crash is gone.
    const bool restarted =
        health.incarnation != 0 && incarnation != health.incarnation;
    if (health.state == PeerState::kRecovering && !restarted) {
      // Anti-entropy still streaming; reachable but not yet eligible.
      health.incarnation = incarnation;
      health.missed = 0;
      return;
    }
    if (restarted || health.state == PeerState::kDead) {
      sim.metrics().counter("bb.detector.rejoined").add();
      if (trace_ != nullptr) {
        trace_->record("rejoin.kv" + std::to_string(kv_index), "bb",
                       static_cast<std::uint32_t>(node_), sim.now(),
                       sim.now());
      }
      if (recovery_ != nullptr) {
        // Placement-eligibility gate: the restarted server is empty, so it
        // holds kRecovering (non-live: degraded mode and write-through stay
        // on) until anti-entropy re-fills its key ranges.
        health.incarnation = incarnation;
        health.missed = 0;
        health.state = PeerState::kRecovering;
        sim.metrics().counter("bb.detector.recovering").add();
        recovery_->on_server_rejoined(kv_index);
        return;
      }
    }
    health.incarnation = incarnation;
    health.missed = 0;
    health.state = PeerState::kLive;
    return;
  }
  ++health.missed;
  if ((health.state == PeerState::kLive ||
       health.state == PeerState::kRecovering) &&
      health.missed >= params_.suspect_after) {
    health.state = PeerState::kSuspect;
    sim.metrics().counter("bb.detector.suspected").add();
    if (trace_ != nullptr) {
      trace_->record("detector.suspect.kv" + std::to_string(kv_index),
                     "detector", static_cast<std::uint32_t>(node_), sim.now(),
                     sim.now());
    }
  }
  if (health.state == PeerState::kSuspect &&
      health.missed >= params_.dead_after) {
    health.state = PeerState::kDead;
    sim.metrics().counter("bb.detector.dead").add();
    if (trace_ != nullptr) {
      trace_->record("detector.dead.kv" + std::to_string(kv_index),
                     "detector", static_cast<std::uint32_t>(node_), sim.now(),
                     sim.now());
    }
    // Restore the replication factor for everything the dead server held.
    if (recovery_ != nullptr) recovery_->on_server_dead(kv_index);
  }
}

void Master::on_recovery_complete(std::uint32_t kv_index) {
  if (peer_health_[kv_index].state != PeerState::kRecovering) return;
  peer_health_[kv_index].state = PeerState::kLive;
  hub_->transport().fabric().simulation().metrics()
      .counter("bb.detector.recovered").add();
  update_health_mode();
}

std::vector<repl::ChunkRef> Master::replicated_chunks() const {
  std::vector<repl::ChunkRef> out;
  for (const auto& [path, meta] : files_) {
    for (const BbBlockInfo& block : meta.blocks) {
      if (block.size == 0) continue;
      if (block.state != BlockState::kDirty &&
          block.state != BlockState::kFlushing &&
          block.state != BlockState::kFlushed) {
        continue;
      }
      const auto chunks = static_cast<std::uint32_t>(
          (block.size + params_.chunk_size - 1) / params_.chunk_size);
      // Dirty chunks stay pinned until their flush completes.
      const bool pinned = block.state != BlockState::kFlushed;
      const std::string block_id = local_object(path, block.index);
      for (std::uint32_t c = 0; c < chunks; ++c) {
        out.push_back(repl::ChunkRef{chunk_key(path, block.index, c),
                                     block_id, params_.chunk_size, pinned});
      }
    }
  }
  return out;
}

void Master::update_health_mode() {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const std::uint32_t live = live_kv_count();
  sim.metrics().gauge("bb.kv_live").set(live);
  sim.metrics().gauge("bb.kv_suspect").set(suspect_kv_count());
  const bool now_degraded =
      live < static_cast<std::uint32_t>(kv_servers_.size());
  if (now_degraded == degraded_) return;
  degraded_ = now_degraded;
  // Level gauges for the SLO engine (slo.degraded_window_max_ns measures an
  // *open* window as now - bb.degraded_since_ns while bb.degraded is 1).
  sim.metrics().gauge("bb.degraded").set(degraded_ ? 1 : 0);
  sim.metrics().gauge("bb.degraded_since_ns").set(degraded_ ? sim.now() : 0);
  if (degraded_) {
    degraded_since_ = sim.now();
    sim.metrics().counter("bb.degraded.entered").add();
    // At-risk dirty blocks must reach Lustre before another server fails:
    // drop all flush pacing until the cluster is healthy again.
    flowctl_.force_urgent(true);
  } else {
    // Recovery time: from first suspicion to all peers live again.
    sim.metrics().histogram("bb.degraded_window_ns")
        .record(sim.now() - degraded_since_);
    flowctl_.force_urgent(false);
  }
  if (trace_ != nullptr) {
    trace_->record(degraded_ ? "degraded.enter" : "degraded.exit", "bb",
                   static_cast<std::uint32_t>(node_), sim.now(), sim.now());
  }
}

sim::Task<net::RpcResponse> Master::handle_create(
    std::shared_ptr<const BbCreateRequest> req) {
  co_await charge_md_op();
  if (const auto it = files_.find(req->path); it != files_.end()) {
    if (req->token != 0 && it->second.create_token == req->token) {
      // Retransmitted create whose first reply was lost: already done.
      co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
    }
    co_return net::rpc_error(
        error(StatusCode::kAlreadyExists, "file exists: " + req->path));
  }
  // Create the Lustre backing file up front: flushers and write-through
  // writers need its layout immediately.
  Result<lustre::FileLayout> layout =
      co_await lustre_.create(node_, lustre_path(req->path));
  if (!layout.is_ok()) co_return net::rpc_error(layout.status());
  FileMeta meta;
  meta.lustre_layout = std::move(layout).value();
  meta.create_token = req->token;
  files_[req->path] = std::move(meta);
  if (journal_ != nullptr) {
    // Apply-then-journal-then-ack: the mutation and its sequence number are
    // allocated in the same synchronous segment, so any checkpoint snapshot
    // covers exactly the journaled prefix. The token rides along so create
    // retransmissions stay idempotent across a restart.
    MdRecord record;
    record.type = MdRecordType::kFileCreate;
    record.path = req->path;
    record.token = req->token;
    if (Status st = co_await journal_append(std::move(record)); !st.is_ok()) {
      co_return net::rpc_error(std::move(st));
    }
  }
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> Master::handle_add_block(
    std::shared_ptr<const BbAddBlockRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  if (it->second.closed) {
    co_return net::rpc_error(
        error(StatusCode::kFailedPrecondition, "file is closed"));
  }
  if (req->expected_index != kAnyBlockIndex &&
      req->expected_index < it->second.blocks.size()) {
    // The writer expects an index this (single-writer) file already has:
    // a retransmitted AddBlock. Return the existing block — allocating a
    // fresh one would orphan a hole in the middle of the file.
    auto reply = std::make_shared<BbAddBlockReply>();
    reply->block_index = req->expected_index;
    reply->write_through = degraded_ && scheme_ != Scheme::kSync;
    const std::uint64_t wire = reply->wire_size();
    co_return net::rpc_ok<BbAddBlockReply>(std::move(reply), wire);
  }
  // Credit-based admission: may evict clean blocks, may stall (but never
  // reject) under memory pressure.
  (void)co_await flowctl_.admit(params_.block_size, req->op_id);
  // Re-find: the admission wait suspends, and the file may change meanwhile.
  const auto it2 = files_.find(req->path);
  if (it2 == files_.end()) {
    flowctl_.release_reservation(params_.block_size);
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "file deleted while admitting block"));
  }
  auto reply = std::make_shared<BbAddBlockReply>();
  reply->block_index = static_cast<std::uint32_t>(it2->second.blocks.size());
  // Suspect/dead KV servers: have the writer establish durability on the
  // write path instead of trusting the buffer to survive until flush.
  reply->write_through = degraded_ && scheme_ != Scheme::kSync;
  BbBlockInfo block;
  block.index = reply->block_index;
  block.reservation_held = flowctl_.enabled();
  it2->second.blocks.push_back(block);
  if (journal_ != nullptr) {
    MdRecord record;
    record.type = MdRecordType::kBlockAdd;
    record.path = req->path;
    record.block_index = reply->block_index;
    record.op_id = req->op_id;
    if (Status st = co_await journal_append(std::move(record)); !st.is_ok()) {
      co_return net::rpc_error(std::move(st));
    }
  }
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<BbAddBlockReply>(std::move(reply), wire);
}

sim::Task<net::RpcResponse> Master::handle_complete_block(
    std::shared_ptr<const BbCompleteBlockRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  if (req->block_index >= it->second.blocks.size()) {
    co_return net::rpc_error(error(StatusCode::kNotFound, "no such block"));
  }
  BbBlockInfo& block = it->second.blocks[req->block_index];
  if (block.state != BlockState::kOpen) {
    // Only CompleteBlock moves a block out of kOpen, so this is a
    // retransmission — the first one already settled the accounting.
    co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
  }
  block.size = req->size;
  block.crc32c = req->crc32c;
  block.chunk_crcs = req->chunk_crcs;
  block.local_node = req->local_node;
  if (recovery_ != nullptr && req->size > 0) {
    // Record where the block's chunks live: the union of the chunks' ring
    // replica sets (deterministic, so clients and recovery agree).
    const auto chunks = static_cast<std::uint32_t>(
        (req->size + params_.chunk_size - 1) / params_.chunk_size);
    for (std::uint32_t c = 0; c < chunks; ++c) {
      for (const std::uint32_t s :
           recovery_->replicas(chunk_key(req->path, block.index, c))) {
        if (std::find(block.replicas.begin(), block.replicas.end(), s) ==
            block.replicas.end()) {
          block.replicas.push_back(s);
        }
      }
    }
    std::sort(block.replicas.begin(), block.replicas.end());
  }
  const std::uint64_t reserved =
      block.reservation_held ? params_.block_size : 0;
  block.reservation_held = false;
  if (req->already_durable) {
    // BB-Sync: durable at ack; the buffer copy is immediately clean.
    flowctl_.reservation_to_clean(reserved,
                                  local_object(req->path, block.index),
                                  block_footprint(req->size));
    block.state = BlockState::kFlushed;
    ++flushed_blocks_;
    flushed_bytes_ += req->size;
  } else {
    flowctl_.reservation_to_dirty(reserved, block_footprint(req->size));
    block.state = BlockState::kDirty;
    block.op_id = req->op_id;
    ++dirty_or_flushing_;
    enqueue_flush(FlushItem{req->path, req->block_index, req->op_id});
  }
  if (journal_ != nullptr) {
    // The seal is the record that makes acknowledged data recoverable: it
    // carries everything a restarted master needs to re-flush (CRCs, local
    // replica, replica set). Built before the append suspends — the block
    // reference does not survive a co_await.
    MdRecord record;
    record.type = MdRecordType::kBlockSeal;
    record.path = req->path;
    record.block_index = req->block_index;
    record.size = req->size;
    record.crc32c = req->crc32c;
    record.chunk_crcs = req->chunk_crcs;
    record.already_durable = req->already_durable;
    record.has_local_node = req->local_node.has_value();
    record.local_node = req->local_node.has_value()
                            ? static_cast<std::uint32_t>(*req->local_node)
                            : 0;
    record.op_id = req->op_id;
    record.replicas = block.replicas;
    if (Status st = co_await journal_append(std::move(record)); !st.is_ok()) {
      co_return net::rpc_error(std::move(st));
    }
  }
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> Master::handle_close(
    std::shared_ptr<const BbCloseRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  it->second.closed = true;
  it->second.size = req->size;
  if (journal_ != nullptr) {
    MdRecord record;
    record.type = MdRecordType::kFileClose;
    record.path = req->path;
    record.size = req->size;
    if (Status st = co_await journal_append(std::move(record)); !st.is_ok()) {
      co_return net::rpc_error(std::move(st));
    }
  }
  // Record the logical size on Lustre now; block data lands as flushes
  // complete (MDS set-size keeps the max).
  Status st = co_await lustre_.set_size(node_, lustre_path(req->path),
                                        req->size);
  if (!st.is_ok()) co_return net::rpc_error(std::move(st));
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> Master::handle_locations(
    std::shared_ptr<const BbLocationsRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  // Opening for read marks the file's flushed blocks recently used, so the
  // eviction LRU prefers cold files.
  for (const BbBlockInfo& block : it->second.blocks) {
    if (block.state == BlockState::kFlushed) {
      flowctl_.touch_clean(local_object(req->path, block.index));
    }
  }
  auto reply = std::make_shared<BbLocationsReply>();
  reply->file_size = it->second.size;
  reply->block_size = params_.block_size;
  reply->closed = it->second.closed;
  reply->blocks = it->second.blocks;
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<BbLocationsReply>(std::move(reply), wire);
}

sim::Task<net::RpcResponse> Master::handle_delete(
    std::shared_ptr<const BbDeleteRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  // Capture and erase first so queued flushes see the file as gone; settle
  // all the (synchronous) accounting before the first suspension so the
  // metadata map never holds a half-deleted file across a scheduling point.
  FileMeta meta = std::move(it->second);
  files_.erase(it);
  for (BbBlockInfo& block : meta.blocks) {
    switch (block.state) {
      case BlockState::kDirty:
      case BlockState::kFlushing:
        // Its flush item will find the file gone and skip; settle the
        // accounting here: the dirty bytes simply leave the buffer.
        flowctl_.drop_dirty(block_footprint(block.size));
        assert(dirty_or_flushing_ > 0);
        --dirty_or_flushing_;
        if (dirty_or_flushing_ == 0) flush_done_.notify_all();
        break;
      case BlockState::kFlushed:
        flowctl_.forget_clean(local_object(req->path, block.index));
        break;
      case BlockState::kOpen:
      case BlockState::kLost:
      case BlockState::kQuarantined:  // accounting settled when quarantined
        release_reservation(block);   // e.g. added but never sealed
        break;
    }
  }
  if (journal_ != nullptr) {
    MdRecord record;
    record.type = MdRecordType::kFileDelete;
    record.path = req->path;
    if (Status st = co_await journal_append(std::move(record)); !st.is_ok()) {
      co_return net::rpc_error(std::move(st));
    }
  }
  for (const BbBlockInfo& block : meta.blocks) {
    const std::uint32_t chunks = static_cast<std::uint32_t>(
        (block.size + params_.chunk_size - 1) / params_.chunk_size);
    kv::Client& kv = *flusher_clients_.front();
    for (std::uint32_t c = 0; c < chunks; ++c) {
      (void)co_await kv.erase(chunk_key(req->path, block.index, c));
    }
  }
  Status st = co_await lustre_.unlink(node_, lustre_path(req->path));
  if (!st.is_ok() && st.code() != StatusCode::kNotFound) {
    co_return net::rpc_error(std::move(st));
  }
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> Master::handle_list(
    std::shared_ptr<const BbListRequest> req) {
  co_await charge_md_op();
  auto reply = std::make_shared<BbListReply>();
  for (const auto& [path, meta] : files_) {
    if (path.starts_with(req->prefix)) reply->paths.push_back(path);
  }
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<BbListReply>(std::move(reply), wire);
}

void Master::enqueue_flush(FlushItem item) {
  ++flush_queue_depth_;
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  item.enqueued_ns = sim.now();
  sim.metrics().gauge("bb.flush_queue_depth").add();
  flush_queue_.push(std::move(item));
}

void Master::release_reservation(BbBlockInfo& block) {
  if (!block.reservation_held) return;
  block.reservation_held = false;
  flowctl_.release_reservation(params_.block_size);
}

void Master::finish_block(const std::string& path, BbBlockInfo& block,
                          BlockState state) {
  release_reservation(block);
  block.state = state;
  assert(dirty_or_flushing_ > 0);
  --dirty_or_flushing_;
  if (state == BlockState::kFlushed) {
    ++flushed_blocks_;
    flushed_bytes_ += block.size;
    // Durable and still buffer-resident: the block becomes clean, evictable
    // cache data.
    flowctl_.dirty_to_clean(local_object(path, block.index),
                            block_footprint(block.size));
  } else if (state == BlockState::kLost) {
    ++lost_blocks_;
    flowctl_.drop_dirty(block_footprint(block.size));
  } else if (state == BlockState::kQuarantined) {
    // Corrupt on every copy before it could be flushed: the dirty bytes
    // leave the buffer accounting, but the flusher will never write them.
    ++quarantined_blocks_;
    flowctl_.drop_dirty(block_footprint(block.size));
    hub_->transport().fabric().simulation().metrics()
        .counter("bb.quarantined_blocks").add();
  }
  if (journal_ != nullptr) {
    // Flush outcomes have no client waiting for an ack, so they journal
    // asynchronously: the worst a crash costs is a re-flush of an
    // already-durable block (idempotent — Lustre writes are absolute-offset).
    MdRecord record;
    record.type = state == BlockState::kFlushed  ? MdRecordType::kFlushComplete
                  : state == BlockState::kLost   ? MdRecordType::kBlockLost
                                                 : MdRecordType::kQuarantine;
    record.path = path;
    record.block_index = block.index;
    record.size = block.size;
    record.op_id = block.op_id;
    journal_append_async(std::move(record));
  }
  if (dirty_or_flushing_ == 0) flush_done_.notify_all();
}

void Master::quarantine_block(const std::string& path,
                              std::uint32_t block_index) {
  const auto it = files_.find(path);
  if (it == files_.end() || block_index >= it->second.blocks.size()) return;
  BbBlockInfo& block = it->second.blocks[block_index];
  if (block.state != BlockState::kDirty) return;
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  if (trace_ != nullptr) {
    trace_->record("quarantine." + local_object(path, block_index), "bb",
                   static_cast<std::uint32_t>(node_), sim.now(), sim.now());
  }
  // The queued flush item finds the block no longer kDirty and skips it.
  finish_block(path, block, BlockState::kQuarantined);
}

std::vector<integrity::ScrubChunk> Master::scrub_inventory() const {
  std::vector<integrity::ScrubChunk> out;
  for (const auto& [path, meta] : files_) {
    for (const BbBlockInfo& block : meta.blocks) {
      if (block.size == 0) continue;
      // kFlushing is skipped: the flusher is mid-read and verifies the
      // assembled block itself before writing Lustre.
      if (block.state != BlockState::kDirty &&
          block.state != BlockState::kFlushed) {
        continue;
      }
      const auto chunks = static_cast<std::uint32_t>(
          (block.size + params_.chunk_size - 1) / params_.chunk_size);
      if (block.chunk_crcs.size() != chunks) continue;  // no provenance
      const bool durable = block.state == BlockState::kFlushed;
      for (std::uint32_t c = 0; c < chunks; ++c) {
        const std::uint64_t c_start =
            static_cast<std::uint64_t>(c) * params_.chunk_size;
        integrity::ScrubChunk chunk;
        chunk.key = chunk_key(path, block.index, c);
        chunk.path = path;
        chunk.block_index = block.index;
        chunk.chunk_index = c;
        chunk.crc = block.chunk_crcs[c];
        chunk.logical_len = std::min(params_.chunk_size, block.size - c_start);
        chunk.padded_len = params_.chunk_size;
        chunk.lustre_offset =
            static_cast<std::uint64_t>(block.index) * params_.block_size +
            c_start;
        chunk.durable = durable;
        chunk.pinned = !durable;
        out.push_back(std::move(chunk));
      }
    }
  }
  return out;
}

bool Master::block_matches_crcs(const BbBlockInfo& block,
                                const Bytes& data) const {
  const auto chunks = static_cast<std::uint32_t>(
      (block.size + params_.chunk_size - 1) / params_.chunk_size);
  if (block.chunk_crcs.size() != chunks) {
    return block.size == 0 || crc32c(data) == block.crc32c;
  }
  std::uint64_t pos = 0;
  for (std::uint32_t c = 0; c < chunks; ++c) {
    const std::uint64_t logical =
        std::min(params_.chunk_size, block.size - pos);
    if (crc32c(std::span<const std::uint8_t>(data.data() + pos, logical)) !=
        block.chunk_crcs[c]) {
      return false;
    }
    pos += logical;
  }
  return true;
}

sim::Task<void> Master::wait_all_flushed() {
  while (dirty_or_flushing_ > 0) co_await flush_done_.wait();
}

sim::Task<void> Master::flush_worker(std::uint64_t generation,
                                     std::uint32_t worker_index) {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  for (;;) {
    FlushItem item = co_await flush_queue_.recv();
    if (generation != generation_) {
      // Superseded by a restart: hand the item back to the live
      // generation's workers and retire.
      flush_queue_.push(std::move(item));
      co_return;
    }
    // A flusher whose home node is down can reach nothing — every RPC
    // fails at the source, and because a pushed-back item is popped
    // synchronously by the pusher's own next recv, this worker would
    // starve the live ones and burn the block's retry budget (or wedge a
    // degraded cluster) on failures that say nothing about the data. Park:
    // delay first so a live-node worker wins the item, and only fall
    // through when no other KV node is up — then the read failure itself
    // must run the loss accounting (seed semantics for a full-tier crash).
    {
      net::Fabric& fabric = hub_->transport().fabric();
      const net::NodeId home = flusher_clients_[worker_index]->self();
      bool peer_up = false;
      for (const net::NodeId peer : kv_servers_) {
        if (peer != home && fabric.is_up(peer)) {
          peer_up = true;
          break;
        }
      }
      if (!fabric.is_up(home) && peer_up) {
        flush_queue_.push(std::move(item));
        co_await sim.delay(duration::ms);
        if (generation != generation_) co_return;
        continue;
      }
    }
    assert(flush_queue_depth_ > 0);
    --flush_queue_depth_;
    sim.metrics().gauge("bb.flush_queue_depth").sub();
    // Watermark-driven escalation: drain gently in the background while
    // pressure is low, flat out once dirty bytes cross the high watermark.
    if (const sim::SimTime pace = flowctl_.flush_pace(); pace > 0) {
      co_await sim.delay(pace);
      // Crash during the pacing delay: the item died with the old master;
      // recovery re-enqueues the block from its journaled seal record.
      if (generation != generation_) co_return;
    }
    std::size_t span = 0;
    if (trace_ != nullptr) {
      // Queue dwell plus pacing delay: time the sealed block waited before a
      // flusher started serving it. Attribution counts it as queueing.
      trace_->record("wait.flush_queue", "bb", worker_index, item.enqueued_ns,
                     sim.now(), item.op_id);
      span = trace_->begin(
          "flush.block_" + std::to_string(item.block_index), "bb",
          worker_index, item.op_id);
    }
    const sim::SimTime start = sim.now();
    (void)co_await flush_block(generation, worker_index, item);
    sim.metrics().histogram("bb.flush_ns").record(sim.now() - start);
    if (trace_ != nullptr) trace_->end(span);
    if (generation != generation_) co_return;
  }
}

// Erases the chunks of blocks the flow controller evicted (clean blocks:
// flushed to Lustre, so this only reclaims buffer memory, never loses data).
sim::Task<void> Master::evict_worker(std::uint64_t generation) {
  for (;;) {
    flowctl::CleanBlock victim = co_await flowctl_.evictions().recv();
    if (generation != generation_) {
      // A victim meant for the live generation: hand it back and retire.
      flowctl_.evictions().push(std::move(victim));
      co_return;
    }
    std::size_t span = 0;
    if (trace_ != nullptr) {
      span = trace_->begin("flowctl.evict." + victim.id, "flowctl",
                           static_cast<std::uint32_t>(node_));
    }
    // id is "<path>#<block_index>"; the footprint is chunk-padded, so the
    // chunk count falls out of the byte count.
    const std::size_t sep = victim.id.rfind('#');
    if (sep != std::string::npos) {
      const std::string path = victim.id.substr(0, sep);
      const auto index = static_cast<std::uint32_t>(
          std::strtoul(victim.id.c_str() + sep + 1, nullptr, 10));
      const auto chunks =
          static_cast<std::uint32_t>(victim.bytes / params_.chunk_size);
      kv::Client& kv = *flusher_clients_.front();
      for (std::uint32_t c = 0; c < chunks; ++c) {
        (void)co_await kv.erase(chunk_key(path, index, c));
      }
    }
    if (trace_ != nullptr) trace_->end(span);
  }
}

sim::Task<Status> Master::flush_block(std::uint64_t generation,
                                      std::uint32_t worker_index,
                                      const FlushItem& item) {
  // NOTE: references into files_ must be re-resolved after every co_await —
  // writers add blocks (vector reallocation) and files can be deleted while
  // a flush is in flight. A generation check rides along: after a crash the
  // rebuilt map may hold the same path again, but this flush belongs to the
  // dead master and must not touch the recovered state.
  const auto lookup = [this, &item]() -> BbBlockInfo* {
    const auto it = files_.find(item.path);
    if (it == files_.end() || item.block_index >= it->second.blocks.size()) {
      return nullptr;
    }
    return &it->second.blocks[item.block_index];
  };

  BbBlockInfo* block = lookup();
  if (block == nullptr) co_return Status::ok();  // deleted while queued
  if (block->state != BlockState::kDirty) co_return Status::ok();
  flowctl_.note_flush_begin();
  block->state = BlockState::kFlushing;
  if (journal_ != nullptr) {
    MdRecord record;
    record.type = MdRecordType::kFlushStart;
    record.path = item.path;
    record.block_index = item.block_index;
    record.op_id = item.op_id;
    journal_append_async(std::move(record));
  }
  const std::uint64_t block_size = block->size;
  const std::uint32_t block_index = block->index;
  const auto local_node = block->local_node;

  kv::Client& kv = *flusher_clients_[worker_index];
  const net::NodeId self = kv.self();
  const std::uint32_t chunks = static_cast<std::uint32_t>(
      (block_size + params_.chunk_size - 1) / params_.chunk_size);

  // Pull the block out of the burst buffer...
  Bytes data;
  data.reserve(block_size);
  bool buffer_ok = true;
  bool corrupt = false;
  for (std::uint32_t c = 0; c < chunks && buffer_ok; ++c) {
    Result<BytesPtr> piece =
        co_await kv.get(chunk_key(item.path, block_index, c), item.op_id);
    if (!piece.is_ok()) {
      buffer_ok = false;
      // The verified-read client only reports kDataLoss once EVERY replica
      // failed its checksum — this chunk will not heal with a retry.
      corrupt = piece.code() == StatusCode::kDataLoss;
      break;
    }
    data.insert(data.end(), piece.value()->begin(), piece.value()->end());
  }
  if (generation != generation_) co_return Status::ok();

  // ...or recover from the node-local replica (BB-Local's second copy).
  if ((!buffer_ok || data.size() != block_size) && local_node.has_value()) {
    auto req = std::make_shared<const AgentReadRequest>(AgentReadRequest{
        local_object(item.path, block_index), 0, block_size});
    auto result = co_await hub_->call<AgentReadReply>(self, *local_node,
                                                      kAgentRead, req);
    if (generation != generation_) co_return Status::ok();
    if (result.is_ok()) {
      data.assign(result.value()->data->begin(), result.value()->data->end());
      buffer_ok = true;
      ++recovered_blocks_;
    }
  }

  block = lookup();
  if (block == nullptr) co_return Status::ok();  // deleted meanwhile

  // Buffer chunks are padded to uniform size; trim to the logical block.
  if (buffer_ok && data.size() > block_size) data.resize(block_size);
  // Whatever source produced the block — buffer chunks or the node-local
  // replica — it must match the writer-registered CRCs before it may touch
  // Lustre. Never persist corrupt bytes.
  if (buffer_ok && data.size() == block_size &&
      !block_matches_crcs(*block, data)) {
    buffer_ok = false;
    corrupt = true;
  }
  if (!buffer_ok || data.size() != block_size) {
    if (corrupt) {
      // Corruption does not heal with a requeue: every copy failed its
      // checksum. Quarantine the block so the flusher never writes the
      // corrupt bytes, and surface the loss instead of hiding it.
      finish_block(item.path, *block, BlockState::kQuarantined);
      co_return error(StatusCode::kDataLoss,
                      "block " + std::to_string(block_index) +
                          " corrupt on every copy; quarantined before flush");
    }
    // With replication armed, a failed buffer read is not yet loss while
    // the cluster is visibly unhealthy (or within a short grace window the
    // detector has not caught up to): primary-ack replica writes and
    // re-replication may still be in flight. Requeue and retry; the read
    // only fails conclusively once the cluster is healthy again.
    if (params_.kv_client.replication_factor > 1 &&
        (degraded_ || (recovery_ != nullptr && recovery_->active_runs() > 0) ||
         item.attempts < 4)) {
      block->state = BlockState::kDirty;
      co_await hub_->transport().fabric().simulation().delay(
          params_.heartbeat_interval_ns > 0 ? params_.heartbeat_interval_ns
                                            : duration::ms);
      if (generation != generation_) co_return Status::ok();
      block = lookup();
      if (block == nullptr) co_return Status::ok();
      enqueue_flush(FlushItem{item.path, item.block_index, item.op_id,
                              item.attempts + 1});
      co_return error(StatusCode::kUnavailable,
                      "buffer read failed during outage; flush requeued");
    }
    // Acknowledged-but-unflushed data is gone: this is exactly the
    // durability window the BB-Async scheme trades for speed.
    finish_block(item.path, *block, BlockState::kLost);
    co_return error(StatusCode::kDataLoss, "dirty block lost before flush");
  }

  const auto layout = files_.find(item.path)->second.lustre_layout;
  Status st = co_await lustre_.write(
      self, layout,
      static_cast<std::uint64_t>(block_index) * params_.block_size,
      make_bytes(std::move(data)), item.op_id);
  if (generation != generation_) co_return Status::ok();
  block = lookup();
  if (block == nullptr) co_return Status::ok();
  if (!st.is_ok()) {
    // Lustre hiccup: requeue and retry later rather than dropping data.
    block->state = BlockState::kDirty;
    enqueue_flush(item);
    co_return st;
  }
  (void)co_await lustre_.set_size(
      self, lustre_path(item.path),
      static_cast<std::uint64_t>(block_index) * params_.block_size +
          block_size);
  if (generation != generation_) co_return Status::ok();

  // Durable: unpin chunks so the cache may evict them under pressure.
  for (std::uint32_t c = 0; c < chunks; ++c) {
    (void)co_await kv.pin(chunk_key(item.path, block_index, c), false);
  }
  if (generation != generation_) co_return Status::ok();
  block = lookup();
  if (block == nullptr) co_return Status::ok();
  finish_block(item.path, *block, BlockState::kFlushed);
  co_return Status::ok();
}

// ---- metadata durability ----

sim::Task<Status> Master::journal_append(MdRecord record) {
  // The append task allocates the record's sequence number synchronously at
  // co_await, in the same segment as the mutation the caller just applied —
  // that pairing is what makes checkpoint snapshots consistent.
  std::size_t span = 0;
  const std::uint64_t op_id = record.op_id;
  if (trace_ != nullptr) {
    span = trace_->begin("md.append", "md", static_cast<std::uint32_t>(node_),
                         op_id);
  }
  Status st = co_await journal_->append(std::move(record));
  if (trace_ != nullptr) trace_->end(span);
  maybe_trigger_checkpoint();
  co_return st;
}

void Master::journal_append_async(MdRecord record) {
  if (journal_ == nullptr) return;
  journal_->append_async(std::move(record));
  maybe_trigger_checkpoint();
}

void Master::maybe_trigger_checkpoint() {
  if (journal_ == nullptr || checkpoint_running_ || crashed_) return;
  if (heartbeat_stop_) return;
  if (params_.md.journal_max_bytes == 0) return;
  if (journal_->bytes_since_checkpoint() < params_.md.journal_max_bytes) {
    return;
  }
  hub_->transport().fabric().simulation().spawn(run_checkpoint(generation_));
}

sim::Task<void> Master::checkpoint_worker(std::uint64_t generation) {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  for (;;) {
    co_await sim.delay(params_.md.checkpoint_interval_ns);
    if (heartbeat_stop_ || generation != generation_) co_return;
    if (journal_->bytes_since_checkpoint() == 0) continue;  // nothing new
    co_await run_checkpoint(generation);
    if (generation != generation_) co_return;
  }
}

sim::Task<void> Master::run_checkpoint(std::uint64_t generation) {
  if (checkpoint_running_ || generation != generation_) co_return;
  checkpoint_running_ = true;
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const sim::SimTime start = sim.now();
  std::size_t span = 0;
  if (trace_ != nullptr) {
    span = trace_->begin("md.checkpoint", "md",
                         static_cast<std::uint32_t>(node_));
  }
  // Snapshot and watermark in one synchronous segment: the snapshot then
  // reflects exactly the mutations journaled as records [0, upto).
  const std::uint64_t upto = journal_->next_seq();
  Bytes snapshot = encode_checkpoint(make_checkpoint());
  (void)co_await journal_->write_checkpoint(std::move(snapshot), upto);
  if (trace_ != nullptr) trace_->end(span);
  if (generation != generation_) co_return;  // crashed mid-checkpoint
  checkpoint_running_ = false;
  sim.metrics().histogram("bb.md.checkpoint_ns").record(sim.now() - start);
}

MdCheckpoint Master::make_checkpoint() const {
  MdCheckpoint checkpoint;
  checkpoint.flushed_blocks = flushed_blocks_;
  checkpoint.flushed_bytes = flushed_bytes_;
  checkpoint.lost_blocks = lost_blocks_;
  checkpoint.recovered_blocks = recovered_blocks_;
  checkpoint.quarantined_blocks = quarantined_blocks_;
  for (const auto& [path, meta] : files_) {
    MdFileSnapshot file;
    file.path = path;
    file.create_token = meta.create_token;
    file.size = meta.size;
    file.closed = meta.closed;
    for (const BbBlockInfo& block : meta.blocks) {
      MdBlockSnapshot snap;
      snap.index = block.index;
      snap.size = block.size;
      snap.crc32c = block.crc32c;
      snap.chunk_crcs = block.chunk_crcs;
      snap.state = static_cast<std::uint8_t>(block.state);
      snap.has_local_node = block.local_node.has_value();
      snap.local_node = block.local_node.has_value()
                            ? static_cast<std::uint32_t>(*block.local_node)
                            : 0;
      snap.op_id = block.op_id;
      snap.replicas = block.replicas;
      file.blocks.push_back(std::move(snap));
    }
    checkpoint.files.push_back(std::move(file));
  }
  return checkpoint;
}

void Master::install_checkpoint(MdCheckpoint&& checkpoint) {
  flushed_blocks_ = checkpoint.flushed_blocks;
  flushed_bytes_ = checkpoint.flushed_bytes;
  lost_blocks_ = checkpoint.lost_blocks;
  recovered_blocks_ = checkpoint.recovered_blocks;
  quarantined_blocks_ = checkpoint.quarantined_blocks;
  files_.clear();
  for (MdFileSnapshot& file : checkpoint.files) {
    FileMeta meta;
    meta.create_token = file.create_token;
    meta.size = file.size;
    meta.closed = file.closed;
    for (MdBlockSnapshot& snap : file.blocks) {
      BbBlockInfo block;
      block.index = snap.index;
      block.size = snap.size;
      block.crc32c = snap.crc32c;
      block.chunk_crcs = std::move(snap.chunk_crcs);
      block.state = static_cast<BlockState>(snap.state);
      if (snap.has_local_node) {
        block.local_node = static_cast<net::NodeId>(snap.local_node);
      }
      block.op_id = snap.op_id;
      block.replicas = std::move(snap.replicas);
      meta.blocks.push_back(std::move(block));
    }
    // Lustre layouts are not snapshotted; reconcile() re-resolves them from
    // the (surviving) MDS.
    files_[file.path] = std::move(meta);
  }
}

void Master::apply_record(const MdRecord& record) {
  const auto find_block = [this, &record]() -> BbBlockInfo* {
    const auto it = files_.find(record.path);
    if (it == files_.end() ||
        record.block_index >= it->second.blocks.size()) {
      return nullptr;
    }
    return &it->second.blocks[record.block_index];
  };
  switch (record.type) {
    case MdRecordType::kFileCreate: {
      FileMeta meta;
      meta.create_token = record.token;
      files_[record.path] = std::move(meta);
      break;
    }
    case MdRecordType::kBlockAdd: {
      const auto it = files_.find(record.path);
      if (it == files_.end()) break;
      // Records replay in journal order, so the index always extends the
      // block vector of a single-writer file.
      if (record.block_index != it->second.blocks.size()) break;
      BbBlockInfo block;
      block.index = record.block_index;
      it->second.blocks.push_back(std::move(block));
      break;
    }
    case MdRecordType::kBlockSeal: {
      BbBlockInfo* block = find_block();
      if (block == nullptr || block->state != BlockState::kOpen) break;
      block->size = record.size;
      block->crc32c = record.crc32c;
      block->chunk_crcs = record.chunk_crcs;
      if (record.has_local_node) {
        block->local_node = static_cast<net::NodeId>(record.local_node);
      }
      block->op_id = record.op_id;
      block->replicas = record.replicas;
      if (record.already_durable) {
        block->state = BlockState::kFlushed;
        ++flushed_blocks_;
        flushed_bytes_ += record.size;
      } else {
        block->state = BlockState::kDirty;
      }
      break;
    }
    case MdRecordType::kFlushStart: {
      BbBlockInfo* block = find_block();
      if (block != nullptr && block->state == BlockState::kDirty) {
        block->state = BlockState::kFlushing;
      }
      break;
    }
    case MdRecordType::kFlushComplete: {
      BbBlockInfo* block = find_block();
      if (block == nullptr) break;
      if (block->state == BlockState::kDirty ||
          block->state == BlockState::kFlushing) {
        block->state = BlockState::kFlushed;
        ++flushed_blocks_;
        flushed_bytes_ += block->size;
      }
      break;
    }
    case MdRecordType::kBlockLost: {
      BbBlockInfo* block = find_block();
      if (block == nullptr) break;
      if (block->state == BlockState::kDirty ||
          block->state == BlockState::kFlushing) {
        block->state = BlockState::kLost;
        ++lost_blocks_;
      }
      break;
    }
    case MdRecordType::kQuarantine: {
      BbBlockInfo* block = find_block();
      if (block == nullptr) break;
      if (block->state == BlockState::kDirty ||
          block->state == BlockState::kFlushing) {
        block->state = BlockState::kQuarantined;
        ++quarantined_blocks_;
      }
      break;
    }
    case MdRecordType::kFileClose: {
      const auto it = files_.find(record.path);
      if (it == files_.end()) break;
      it->second.closed = true;
      it->second.size = record.size;
      break;
    }
    case MdRecordType::kFileDelete:
      files_.erase(record.path);
      break;
  }
}

sim::Task<void> Master::reconcile(std::uint64_t generation) {
  // Probe through a client homed on a live KV node: after a correlated
  // master+server crash the front() client's node may still be down, and
  // every inventory probe from it would fail at the source.
  net::Fabric& fabric = hub_->transport().fabric();
  kv::Client* kv_ptr = flusher_clients_.front().get();
  for (const auto& client : flusher_clients_) {
    if (fabric.is_up(client->self())) {
      kv_ptr = client.get();
      break;
    }
  }
  kv::Client& kv = *kv_ptr;
  std::vector<std::string> dropped_files;
  for (auto& [path, meta] : files_) {
    // The Lustre MDS survives the master crash: re-resolve each file's
    // backing layout (journal records deliberately don't carry it).
    Result<lustre::FileLayout> layout =
        co_await lustre_.lookup(node_, lustre_path(path));
    if (generation != generation_) co_return;
    if (!layout.is_ok()) {
      // Journaled create whose Lustre file vanished: without a backing file
      // the metadata is useless. Deterministic rule: drop the whole file.
      dropped_files.push_back(path);
      continue;
    }
    meta.lustre_layout = std::move(layout).value();
    // Deterministic discard rule for unjournaled chunk residue: a closed
    // file can have no live writer, so trailing never-sealed blocks
    // (journaled AddBlock whose seal never became durable — the writer was
    // never acked) are dropped and any chunks the dead writer stored for
    // them are erased from the buffer. Open files keep their kOpen tail:
    // the surviving writer re-seals through the idempotent retransmission
    // protocol.
    std::vector<std::uint32_t> discarded;
    while (meta.closed && !meta.blocks.empty() &&
           meta.blocks.back().state == BlockState::kOpen) {
      discarded.push_back(meta.blocks.back().index);
      meta.blocks.pop_back();
    }
    const auto max_chunks = static_cast<std::uint32_t>(
        params_.block_size / params_.chunk_size);
    for (const std::uint32_t index : discarded) {
      for (std::uint32_t c = 0; c < max_chunks; ++c) {
        (void)co_await kv.erase(chunk_key(path, index, c));
        if (generation != generation_) co_return;
      }
    }
    for (BbBlockInfo& block : meta.blocks) {
      block.reservation_held = false;  // admission credits died in the crash
      switch (block.state) {
        case BlockState::kOpen:
          break;
        case BlockState::kDirty:
        case BlockState::kFlushing: {
          // Journaled but not yet durable on Lustre: back into the flush
          // pipeline. Chunks missing from the buffer (journaled-but-lost)
          // route through flush_block's existing requeue/loss path.
          block.state = BlockState::kDirty;
          flowctl_.reservation_to_dirty(0, block_footprint(block.size));
          ++dirty_or_flushing_;
          enqueue_flush(FlushItem{path, block.index, block.op_id});
          break;
        }
        case BlockState::kFlushed: {
          // Durable on Lustre. Still buffer-resident? A no-op unpin probe on
          // the first chunk answers without moving data: present -> rejoin
          // the clean LRU (evictable, RDMA-readable); absent -> already
          // evicted, reads fall back to Lustre.
          if (block.size == 0) break;
          Status resident =
              co_await kv.pin(chunk_key(path, block.index, 0), false);
          if (generation != generation_) co_return;
          if (resident.is_ok()) {
            flowctl_.reservation_to_clean(0, local_object(path, block.index),
                                          block_footprint(block.size));
          }
          break;
        }
        case BlockState::kLost:
        case BlockState::kQuarantined:
          break;
      }
    }
  }
  for (const std::string& path : dropped_files) files_.erase(path);
}

void Master::crash() {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  // Bumping the generation retires every worker coroutine (flushers,
  // evictor, detector, checkpointer, an in-flight restart) at its next
  // scheduling point; nothing from the dead process can touch state again.
  ++generation_;
  crashed_ = true;
  unbind_ports();
  // Queued flush work and the depth gauge die with the process.
  FlushItem dropped;
  while (flush_queue_.try_recv(dropped)) {
    sim.metrics().gauge("bb.flush_queue_depth").sub();
  }
  flush_queue_depth_ = 0;
  files_.clear();
  dirty_or_flushing_ = 0;
  flush_done_.notify_all();
  flushed_blocks_ = 0;
  flushed_bytes_ = 0;
  lost_blocks_ = 0;
  recovered_blocks_ = 0;
  quarantined_blocks_ = 0;
  flowctl_.reset_accounting();
  flowctl_.force_urgent(false);
  degraded_ = false;
  sim.metrics().gauge("bb.master_up").set(0);
  sim.metrics().gauge("bb.degraded").set(0);
  sim.metrics().gauge("bb.degraded_since_ns").set(0);
  checkpoint_running_ = false;
  if (journal_ != nullptr) journal_->crash();
  if (scrubber_ != nullptr) {
    scrubber_->stop();
    scrubber_.reset();
  }
  sim.metrics().counter("bb.md.crashes").add();
  if (trace_ != nullptr) {
    trace_->record("md.crash", "md", static_cast<std::uint32_t>(node_),
                   sim.now(), sim.now());
  }
}

void Master::restart() {
  if (!crashed_) return;
  hub_->transport().fabric().simulation().spawn(restart_task());
}

sim::Task<void> Master::restart_task() {
  const std::uint64_t generation = generation_;
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const sim::SimTime start = sim.now();
  std::uint64_t replayed = 0;
  if (journal_ != nullptr) {
    MetadataJournal::Recovered recovered = co_await journal_->load();
    if (generation != generation_) co_return;  // crashed again mid-recovery
    if (!recovered.checkpoint.empty()) {
      Result<MdCheckpoint> checkpoint = decode_checkpoint(recovered.checkpoint);
      if (checkpoint.is_ok()) {
        install_checkpoint(std::move(checkpoint).value());
      } else {
        sim.metrics().counter("bb.md.recovery_errors").add();
      }
    }
    for (const MdRecord& record : recovered.tail) apply_record(record);
    replayed = recovered.tail.size();
    co_await reconcile(generation);
    if (generation != generation_) co_return;
    journal_->start();
  }
  ++restarts_;
  replayed_records_ += replayed;
  recovered_files_ += files_.size();
  sim.metrics().counter("bb.md.restarts").add();
  sim.metrics().counter("bb.md.replayed_records").add(replayed);
  sim.metrics().counter("bb.md.recovered_files")
      .add(static_cast<std::uint64_t>(files_.size()));
  // Fresh detector state: peers re-prove liveness from scratch.
  for (PeerHealth& health : peer_health_) health = PeerHealth{};
  if (probe_client_ != nullptr) {
    sim.metrics().gauge("bb.kv_live")
        .set(static_cast<std::uint64_t>(kv_servers_.size()));
    sim.metrics().gauge("bb.kv_suspect").set(0);
  }
  bind_ports();
  crashed_ = false;
  spawn_workers();
  make_scrubber();
  sim.metrics().gauge("bb.master_up").set(1);
  sim.metrics().histogram("bb.md.recovery_ns").record(sim.now() - start);
  if (trace_ != nullptr) {
    trace_->record("md.recovery", "md", static_cast<std::uint32_t>(node_),
                   start, sim.now());
  }
  recovered_cond_.notify_all();
}

sim::Task<void> Master::wait_recovered() {
  while (crashed_) co_await recovered_cond_.wait();
}

}  // namespace hpcbb::bb
