// The three HDFS-with-Lustre integration schemes from the paper, spanning
// the design space of I/O performance, data-locality, and fault-tolerance.
#pragma once

#include <string_view>

namespace hpcbb::bb {

enum class Scheme {
  // Writes are acknowledged once resident in the RDMA KV burst buffer;
  // flusher threads drain dirty blocks to Lustre asynchronously. Fastest
  // writes; a durability window exists until the flush completes.
  kAsync,
  // Writes go to the burst buffer AND synchronously to Lustre before the
  // ack (write-through). Fault tolerance equals Lustre; reads still hit
  // the buffer at RDMA speed.
  kSync,
  // Like kAsync, plus one replica on the writer's node-local RAM disk —
  // preserving HDFS-style map-task data locality and providing a second
  // copy during the durability window.
  kLocal,
};

constexpr std::string_view to_string(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kAsync: return "BB-Async";
    case Scheme::kSync: return "BB-Sync";
    case Scheme::kLocal: return "BB-Local";
  }
  return "?";
}

}  // namespace hpcbb::bb
