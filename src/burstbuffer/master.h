// Burst-buffer master: metadata for buffered files, the flush pipeline that
// drains dirty blocks from the KV burst buffer to Lustre, and loss
// accounting. This is the control plane of the paper's design; the data
// plane is the RDMA KV store itself.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "burstbuffer/mdlog.h"
#include "burstbuffer/protocol.h"
#include "flowctl/controller.h"
#include "integrity/scrubber.h"
#include "kvstore/client.h"
#include "lustre/client.h"
#include "net/rpc.h"
#include "repl/recovery.h"
#include "sim/sync.h"
#include "sim/trace.h"

namespace hpcbb::bb {

struct MasterParams {
  std::uint64_t block_size = 128 * MiB;
  std::uint64_t chunk_size = 1 * MiB;
  std::uint32_t flusher_count = 4;
  sim::SimTime md_op_ns = 15 * duration::us;
  std::string lustre_prefix = "/bb";
  // Flow control: total KV buffer memory (0 disables the subsystem). The
  // CapacityController gates block admission by watermarks over
  // dirty+clean+reserved bytes, escalates the flushers under pressure, and
  // evicts flushed (clean) blocks before ever delaying a writer — see
  // flowctl/controller.h. `flowctl.capacity_bytes` is overridden by
  // `buffer_capacity_bytes` at construction.
  std::uint64_t buffer_capacity_bytes = 0;
  flowctl::FlowControlParams flowctl;
  // Heartbeat failure detector over the KV servers (0 interval = off, the
  // seed behaviour). `suspect_after`/`dead_after` are consecutive missed
  // probes; a suspect peer already triggers degraded mode.
  sim::SimTime heartbeat_interval_ns = 0;
  std::uint32_t suspect_after = 2;
  std::uint32_t dead_after = 4;
  // Client config for the flush workers (ring failover during outages).
  // `kv_client.replication_factor > 1` also turns on the replication
  // recovery subsystem: the master tracks per-block replica sets and runs a
  // repl::RecoveryManager off the failure detector (re-replication on
  // death, anti-entropy on rejoin).
  kv::ClientParams kv_client;
  // Background integrity scrubber over the sealed buffer-resident chunks
  // (interval 0 = off, the seed behaviour). See integrity/scrubber.h.
  integrity::ScrubParams scrub;
  // Metadata durability: write-ahead journal + checkpoints in the KV tier's
  // reserved `!md:` range, enabling crash()/restart() with zero metadata
  // loss. Off by default (the seed behaviour, zero extra events). See
  // burstbuffer/mdlog.h.
  MdParams md;
};

// Failure-detector verdict for one KV server. kRecovering: the server
// rejoined after a restart but anti-entropy has not finished restoring its
// key ranges — it counts as non-live (degraded mode stays on, and it takes
// no placements as a repair source/destination) until recovery completes.
enum class PeerState { kLive, kSuspect, kDead, kRecovering };

// Scheme-aware flow-control policy: BB-Sync never accumulates dirty bytes
// (durability is established on the write path), so its dirty-credit gate
// is lifted to the critical watermark and background pacing is moot.
flowctl::FlowControlParams scheme_policy(flowctl::FlowControlParams params,
                                         Scheme scheme) noexcept;

class Master {
 public:
  // Flush workers are placed round-robin on the KV server nodes: in the
  // paper's deployment the burst-buffer servers persist data to Lustre.
  Master(net::RpcHub& hub, net::NodeId node,
         std::vector<net::NodeId> kv_servers, net::NodeId lustre_mds,
         Scheme scheme, const MasterParams& params);
  ~Master();

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] Scheme scheme() const noexcept { return scheme_; }
  [[nodiscard]] const MasterParams& params() const noexcept { return params_; }

  [[nodiscard]] std::string lustre_path(const std::string& path) const {
    return params_.lustre_prefix + path;
  }

  // Flush/durability telemetry (harness-side observability).
  [[nodiscard]] std::uint64_t dirty_blocks() const noexcept {
    return dirty_or_flushing_;
  }
  [[nodiscard]] std::uint64_t flushed_blocks() const noexcept {
    return flushed_blocks_;
  }
  [[nodiscard]] std::uint64_t flushed_bytes() const noexcept {
    return flushed_bytes_;
  }
  [[nodiscard]] std::uint64_t lost_blocks() const noexcept {
    return lost_blocks_;
  }
  [[nodiscard]] std::uint64_t recovered_blocks() const noexcept {
    return recovered_blocks_;
  }
  [[nodiscard]] std::uint64_t quarantined_blocks() const noexcept {
    return quarantined_blocks_;
  }
  [[nodiscard]] std::uint64_t flush_queue_depth() const noexcept {
    return flush_queue_depth_;
  }

  // Blocks until no block is dirty or mid-flush (the durability window has
  // closed). Used by benchmarks and failure experiments.
  sim::Task<void> wait_all_flushed();

  // ---- crash-restart (metadata durability) ----
  // Crash the master process: unbind every RPC port, drop all volatile
  // state (file map, flush queue, flow-control accounting, counters), and
  // retire the worker coroutines. With journaling on, restart() recovers
  // everything from the KV-resident checkpoint + journal tail; with it off
  // this models the seed's unrecoverable single point of failure. Driven by
  // the fault injector (faults.master.* schedule) or directly by tests.
  void crash();
  // Spawn the recovery task: load checkpoint, replay the journal tail,
  // reconcile against the live chunk inventory, re-arm flow control, rebind
  // ports, and respawn flushers/detector/scrubber. No-op unless crashed.
  void restart();
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }
  // Resolves once the master is serving again (immediately if not crashed).
  sim::Task<void> wait_recovered();
  // Recovery telemetry (cumulative over all restarts this run).
  [[nodiscard]] std::uint64_t replayed_records() const noexcept {
    return replayed_records_;
  }
  [[nodiscard]] std::uint64_t recovered_files() const noexcept {
    return recovered_files_;
  }
  [[nodiscard]] std::uint64_t restarts() const noexcept { return restarts_; }
  [[nodiscard]] MetadataJournal* journal() noexcept { return journal_.get(); }

  // Failure-detector introspection. With the detector off every peer reads
  // kLive and the master never enters degraded mode.
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }
  [[nodiscard]] PeerState peer_state(std::uint32_t kv_index) const {
    return peer_health_[kv_index].state;
  }
  [[nodiscard]] std::uint32_t live_kv_count() const noexcept;
  [[nodiscard]] std::uint32_t suspect_kv_count() const noexcept;
  // Stop the periodic prober, the integrity scrubber, and the checkpoint
  // timer (each wakes at most once more). Harnesses call this when the
  // measured phase ends so the simulation can run to quiescence — otherwise
  // the periodic timers keep the event queue alive.
  void stop_heartbeat() noexcept {
    heartbeat_stop_ = true;
    if (scrubber_ != nullptr) scrubber_->stop();
  }

  // Quarantine a dirty block whose data is corrupt on every copy: the
  // flusher will never persist it to Lustre, and reads fail with kDataLoss
  // instead of silently serving garbage. No-op unless the block is kDirty.
  void quarantine_block(const std::string& path, std::uint32_t block_index);

  // Background integrity scrubber (null unless scrub.interval_ns > 0).
  [[nodiscard]] integrity::Scrubber* scrubber() noexcept {
    return scrubber_.get();
  }

  // Memory-pressure management (watermarks, eviction, writer backpressure).
  [[nodiscard]] flowctl::CapacityController& flow_control() noexcept {
    return flowctl_;
  }

  // Replication recovery (null unless kv_client.replication_factor > 1).
  [[nodiscard]] repl::RecoveryManager* recovery() noexcept {
    return recovery_.get();
  }

  // Optional span tracing of the flush pipeline ("bb" category), the
  // flow-control subsystem ("flowctl" category), and the metadata journal
  // ("md" category — its own attribution layer).
  void set_trace(sim::TraceRecorder* recorder) noexcept {
    trace_ = recorder;
    flowctl_.set_trace(recorder);
    if (journal_ != nullptr) journal_->set_trace(recorder);
  }

 private:
  struct BlockMeta {
    BbBlockInfo info;
    std::string path;  // back-reference for flush items
  };
  struct FileMeta {
    std::vector<BbBlockInfo> blocks;
    lustre::FileLayout lustre_layout;
    std::uint64_t size = 0;
    std::uint64_t create_token = 0;  // idempotency token of the create
    bool closed = false;
  };
  struct PeerHealth {
    PeerState state = PeerState::kLive;
    std::uint32_t missed = 0;       // consecutive failed probes
    std::uint64_t incarnation = 0;  // last seen; 0 = never probed
  };
  struct FlushItem {
    std::string path;
    std::uint32_t block_index = 0;
    std::uint64_t op_id = 0;  // causal trace id from the writer
    // Buffer-read retries so far: with replication armed a failed chunk
    // read during an outage is requeued (replica writes and repair may
    // still be in flight) instead of immediately declaring the block lost.
    std::uint32_t attempts = 0;
    // Stamped by enqueue_flush; the flush worker records the enqueue -> pace
    // dwell as a "wait.flush_queue" span so latency attribution can split
    // the flush pipeline into queueing and service time.
    sim::SimTime enqueued_ns = 0;
  };

  sim::Task<net::RpcResponse> handle_create(
      std::shared_ptr<const BbCreateRequest>);
  sim::Task<net::RpcResponse> handle_add_block(
      std::shared_ptr<const BbAddBlockRequest>);
  sim::Task<net::RpcResponse> handle_complete_block(
      std::shared_ptr<const BbCompleteBlockRequest>);
  sim::Task<net::RpcResponse> handle_close(
      std::shared_ptr<const BbCloseRequest>);
  sim::Task<net::RpcResponse> handle_locations(
      std::shared_ptr<const BbLocationsRequest>);
  sim::Task<net::RpcResponse> handle_delete(
      std::shared_ptr<const BbDeleteRequest>);
  sim::Task<net::RpcResponse> handle_list(std::shared_ptr<const BbListRequest>);

  sim::Task<void> charge_md_op();
  // Periodic liveness probing of every KV server; drives the
  // suspect -> dead -> rejoined lifecycle and degraded-mode transitions.
  // `generation` retires the worker after a crash (see crash()).
  sim::Task<void> heartbeat_worker(std::uint64_t generation);
  void apply_probe_result(std::uint32_t kv_index, bool reachable,
                          std::uint64_t incarnation);
  void update_health_mode();
  // Anti-entropy finished: the recovering server becomes live again.
  void on_recovery_complete(std::uint32_t kv_index);
  // Inventory of buffer-resident replicated chunks for the recovery
  // manager (every sealed block's chunk keys, with pin state).
  [[nodiscard]] std::vector<repl::ChunkRef> replicated_chunks() const;
  // Inventory of scrubbable chunks (sealed blocks with CRC provenance).
  [[nodiscard]] std::vector<integrity::ScrubChunk> scrub_inventory() const;
  // Does `data` (exactly block.size bytes) match the writer-registered
  // CRCs? Falls back to the rolling block CRC without per-chunk provenance.
  [[nodiscard]] bool block_matches_crcs(const BbBlockInfo& block,
                                        const Bytes& data) const;
  sim::Task<void> flush_worker(std::uint64_t generation,
                               std::uint32_t worker_index);
  sim::Task<Status> flush_block(std::uint64_t generation,
                                std::uint32_t worker_index,
                                const FlushItem& item);
  sim::Task<void> evict_worker(std::uint64_t generation);

  // ---- metadata durability internals ----
  void bind_ports();
  void unbind_ports();
  // Spawn the flush/evict/heartbeat/checkpoint workers for generation_.
  void spawn_workers();
  // (Re)create and start the integrity scrubber; a stopped Scrubber cannot
  // be restarted, so restart builds a fresh one.
  void make_scrubber();
  // Durable journal append for the acknowledge path (returns kUnavailable
  // on crash — the caller must not ack); the async variant is for
  // background mutations nothing acknowledges against.
  sim::Task<Status> journal_append(MdRecord record);
  void journal_append_async(MdRecord record);
  void maybe_trigger_checkpoint();
  sim::Task<void> checkpoint_worker(std::uint64_t generation);
  sim::Task<void> run_checkpoint(std::uint64_t generation);
  // Recovery pipeline (restart()): journal load -> checkpoint install ->
  // record replay -> inventory reconciliation -> worker respawn.
  sim::Task<void> restart_task();
  [[nodiscard]] MdCheckpoint make_checkpoint() const;
  void install_checkpoint(MdCheckpoint&& checkpoint);
  void apply_record(const MdRecord& record);
  sim::Task<void> reconcile(std::uint64_t generation);
  void finish_block(const std::string& path, BbBlockInfo& block,
                    BlockState state);
  void release_reservation(BbBlockInfo& block);
  // Buffer-resident footprint of a sealed block: chunks are padded to
  // chunk_size, so the block occupies a whole number of chunks.
  [[nodiscard]] std::uint64_t block_footprint(std::uint64_t size) const {
    return (size + params_.chunk_size - 1) / params_.chunk_size *
           params_.chunk_size;
  }

  net::RpcHub* hub_;
  net::NodeId node_;
  std::vector<net::NodeId> kv_servers_;
  net::NodeId lustre_mds_;
  Scheme scheme_;
  MasterParams params_;
  lustre::LustreClient lustre_;
  flowctl::CapacityController flowctl_;

  std::map<std::string, FileMeta> files_;
  sim::Channel<FlushItem> flush_queue_;
  sim::Condition flush_done_;
  std::vector<std::unique_ptr<kv::Client>> flusher_clients_;
  std::unique_ptr<kv::Client> probe_client_;  // heartbeat pings, from node_
  std::vector<PeerHealth> peer_health_;
  std::unique_ptr<repl::RecoveryManager> recovery_;
  std::unique_ptr<integrity::Scrubber> scrubber_;
  std::unique_ptr<MetadataJournal> journal_;
  bool heartbeat_stop_ = false;
  bool degraded_ = false;
  sim::SimTime degraded_since_ = 0;

  // Crash-restart machinery: every worker coroutine captures generation_
  // at spawn and retires when it no longer matches (crash() bumps it), so
  // stale coroutines resumed across a restart can never mutate recovered
  // state. `bound_` makes port teardown idempotent between crash() and the
  // destructor.
  std::uint64_t generation_ = 0;
  bool crashed_ = false;
  bool bound_ = false;
  bool checkpoint_running_ = false;
  sim::Condition recovered_cond_;
  std::uint64_t restarts_ = 0;
  std::uint64_t replayed_records_ = 0;
  std::uint64_t recovered_files_ = 0;

  // Enqueue/dequeue wrapper keeping the depth counter and the
  // `bb.flush_queue_depth` gauge in lock-step with flush_queue_.
  void enqueue_flush(FlushItem item);

  sim::TraceRecorder* trace_ = nullptr;
  std::uint64_t flush_queue_depth_ = 0;
  std::uint64_t dirty_or_flushing_ = 0;
  std::uint64_t flushed_blocks_ = 0;
  std::uint64_t flushed_bytes_ = 0;
  std::uint64_t lost_blocks_ = 0;
  std::uint64_t recovered_blocks_ = 0;
  std::uint64_t quarantined_blocks_ = 0;
};

}  // namespace hpcbb::bb
