#include "burstbuffer/filesystem.h"

#include <algorithm>
#include <cassert>
#include <span>

#include "common/crc32c.h"
#include "sim/sync.h"
#include "sim/trace.h"

namespace hpcbb::bb {

// ---- Writer ----------------------------------------------------------------

class BbWriter final : public fs::Writer {
 public:
  BbWriter(BurstBufferFileSystem& bbfs, std::string path, net::NodeId client)
      : bbfs_(&bbfs),
        path_(std::move(path)),
        client_(client),
        kv_(*bbfs.hub_, client, bbfs.kv_servers_, bbfs.params_.kv_client),
        lustre_(*bbfs.hub_, bbfs.lustre_mds_),
        window_(bbfs.hub_->transport().fabric().simulation(),
                bbfs.params_.write_window) {
    const auto it = bbfs.agents_.find(client);
    if (bbfs.params_.scheme == Scheme::kLocal && it != bbfs.agents_.end()) {
      agent_ = it->second;
    }
  }

  sim::Task<Status> append(BytesPtr data) override {
    std::uint64_t offset = 0;
    const BbFsParams& p = bbfs_->params_;
    while (offset < data->size()) {
      if (!block_open_) {
        if (Status st = co_await start_block(); !st.is_ok()) co_return st;
      }
      const std::uint64_t chunk_room =
          p.chunk_size - (block_bytes_ % p.chunk_size);
      const std::uint64_t block_room = p.block_size - block_bytes_;
      const std::uint64_t take =
          std::min({data->size() - offset, chunk_room, block_room});

      chunk_buf_.insert(
          chunk_buf_.end(),
          data->begin() + static_cast<std::ptrdiff_t>(offset),
          data->begin() + static_cast<std::ptrdiff_t>(offset + take));
      block_crc_ = crc32c(block_crc_,
                          data->data() + static_cast<std::ptrdiff_t>(offset),
                          take);
      block_bytes_ += take;
      offset += take;

      if (chunk_buf_.size() == p.chunk_size || block_bytes_ == p.block_size) {
        if (Status st = co_await emit_chunk(); !st.is_ok()) co_return st;
      }
      if (block_bytes_ == p.block_size) {
        if (Status st = co_await finish_block(); !st.is_ok()) co_return st;
      }
    }
    co_return Status::ok();
  }

  sim::Task<Status> close() override {
    if (!chunk_buf_.empty()) {
      if (Status st = co_await emit_chunk(); !st.is_ok()) co_return st;
    }
    if (block_open_) {
      if (Status st = co_await finish_block(); !st.is_ok()) co_return st;
    }
    auto req = std::make_shared<const BbCloseRequest>(
        BbCloseRequest{path_, total_bytes_});
    co_return (co_await bbfs_->hub_->call<void>(client_, bbfs_->master_node_,
                                                kBbClose, req))
        .status();
  }

 private:
  sim::Task<Status> start_block() {
    // One causal op per block: admission, chunk stores, the master's
    // bookkeeping, the flusher, and the Lustre writes all share this id.
    // Allocated (and the client-side span opened) BEFORE the AddBlock RPC so
    // the master-side admission stall is attributed to this write — the
    // flowctl credit wait is often the dominant queueing term.
    sim::Simulation& sim = bbfs_->hub_->transport().fabric().simulation();
    op_id_ = sim.next_op_id();
    if (sim.trace() != nullptr) {
      // Single-writer files: blocks_added_ is the index the master will
      // return (a mismatch would be a retransmission of this same index).
      block_span_ = sim.trace()->begin(
          "write." + path_ + "#" + std::to_string(blocks_added_), "bb",
          client_, op_id_);
    }
    auto req = std::make_shared<const BbAddBlockRequest>(
        BbAddBlockRequest{path_, client_, blocks_added_, op_id_});
    auto result = co_await bbfs_->hub_->call<BbAddBlockReply>(
        client_, bbfs_->master_node_, kBbAddBlock, req);
    if (!result.is_ok()) {
      if (sim.trace() != nullptr) sim.trace()->end(block_span_);
      co_return result.status();
    }
    block_index_ = result.value()->block_index;
    ++blocks_added_;
    // Write-through when the scheme demands it (BB-Sync) or the master is
    // degraded and wants durability established on the write path. Only the
    // degraded (master-signalled) flavour treats the buffer copy as
    // optional: BB-Sync on a healthy cluster keeps its strict contract that
    // the write path requires the buffer tier.
    buffer_optional_ = result.value()->write_through;
    write_through_ =
        bbfs_->params_.scheme == Scheme::kSync || buffer_optional_;
    block_bytes_ = 0;
    block_crc_ = 0;
    next_chunk_ = 0;
    chunk_crcs_.clear();
    block_open_ = true;
    co_return Status::ok();
  }

  // Ships the buffered chunk through the scheme's write path, windowed.
  sim::Task<Status> emit_chunk() {
    assert(!chunk_buf_.empty());
    const std::uint32_t chunk_index = next_chunk_++;
    const std::uint64_t chunk_offset =
        static_cast<std::uint64_t>(chunk_index) * bbfs_->params_.chunk_size;
    // Per-chunk CRC over the logical (unpadded) bytes: chunks are emitted
    // in order, so the vector index is the chunk index.
    chunk_crcs_.push_back(crc32c(chunk_buf_));
    BytesPtr payload = make_bytes(std::move(chunk_buf_));
    chunk_buf_.clear();

    co_await window_.acquire();
    bbfs_->hub_->transport().fabric().simulation().spawn(
        store_chunk(chunk_index, chunk_offset, std::move(payload)));
    if (!first_error_.is_ok()) {
      // A previous chunk store failed and this error will abort the write.
      // The caller is free to destroy the writer as soon as it sees it, so
      // every detached store_chunk (including the one just spawned) must be
      // drained first — they hold `this`.
      co_await window_.acquire(bbfs_->params_.write_window);
      window_.release(bbfs_->params_.write_window);
    }
    co_return first_error_;
  }

  sim::Task<void> store_chunk(std::uint32_t chunk_index,
                              std::uint64_t chunk_offset, BytesPtr payload) {
    const BbFsParams& p = bbfs_->params_;
    const std::string key = chunk_key(path_, block_index_, chunk_index);
    // Write-through blocks (BB-Sync or degraded mode) are durable on Lustre
    // before the ack, so their buffer copies are evictable cache data.
    const bool wt = write_through_;
    const bool pin = !wt;

    // Store into the burst buffer, backing off while it is full of
    // not-yet-durable data.
    // All stored chunks are padded to chunk_size so every burst-buffer
    // value lives in ONE slab class. Mixed classes would calcify: pages
    // bound to the full-chunk class can never serve a trailing partial
    // chunk, and class-local LRU could then wedge permanently (memcached's
    // slab-calcification problem). Readers and the flusher trim by the
    // block's logical size.
    BytesPtr stored = payload;
    if (payload->size() < p.chunk_size) {
      Bytes padded(*payload);
      padded.resize(p.chunk_size, 0);
      stored = make_bytes(std::move(padded));
    }
    Status st;
    sim::Simulation& simref = bbfs_->hub_->transport().fabric().simulation();
    const sim::SimTime store_start = simref.now();
    bool backed_off = false;
    for (std::uint32_t attempt = 0; attempt < p.store_retry_limit; ++attempt) {
      st = co_await kv_.set(key, stored, pin, /*expiry_ns=*/0, op_id_);
      if (st.code() != StatusCode::kResourceExhausted) break;
      backed_off = true;
      simref.metrics().counter("bb.store.backpressure_retries").add();
      co_await simref.delay(p.store_retry_backoff_ns);
    }
    if (backed_off) {
      // Data-plane backpressure (KV memory itself exhausted) — distinct
      // from control-plane admission stalls (flowctl.stall_ns).
      simref.metrics()
          .histogram("flowctl.writer_backoff_ns")
          .record(simref.now() - store_start);
    }
    if (!st.is_ok() && buffer_optional_) {
      // Degraded write-through: Lustre establishes durability below, so a
      // failed buffer store (e.g. the chunk's owner crashed mid-burst) is
      // tolerated — the block just loses its cache copy.
      simref.metrics().counter("bb.store.buffer_skips").add();
      st = Status::ok();
    }
    if (st.is_ok() && agent_ != nullptr) {
      // BB-Local: second copy on the writer's RAM disk (position-addressed,
      // chunk stores may complete out of order).
      st = co_await agent_->store().write_at(
          local_object(path_, block_index_), chunk_offset, *payload);
      if (st.code() == StatusCode::kResourceExhausted) {
        // RAM disk full: degrade to buffer-only for this block (lose the
        // locality benefit, keep correctness).
        local_replica_ok_ = false;
        st = Status::ok();
      }
    }
    if (st.is_ok() && wt) {
      st = co_await write_through(chunk_offset, std::move(payload));
    }
    if (!st.is_ok() && first_error_.is_ok()) first_error_ = st;
    window_.release();
  }

  sim::Task<Status> write_through(std::uint64_t chunk_offset,
                                  BytesPtr payload) {
    if (!lustre_layout_.has_value()) {
      auto layout =
          co_await lustre_.lookup(client_, bbfs_->params_.lustre_prefix + path_);
      if (!layout.is_ok()) co_return layout.status();
      lustre_layout_ = std::move(layout).value();
    }
    const std::uint64_t file_offset =
        static_cast<std::uint64_t>(block_index_) * bbfs_->params_.block_size +
        chunk_offset;
    co_return co_await lustre_.write(client_, *lustre_layout_, file_offset,
                                     std::move(payload), op_id_);
  }

  sim::Task<Status> finish_block() {
    // Drain the chunk window before sealing.
    co_await window_.acquire(bbfs_->params_.write_window);
    window_.release(bbfs_->params_.write_window);
    if (!first_error_.is_ok()) co_return first_error_;

    auto req = std::make_shared<BbCompleteBlockRequest>();
    req->path = path_;
    req->block_index = block_index_;
    req->size = block_bytes_;
    req->crc32c = block_crc_;
    req->chunk_crcs = chunk_crcs_;
    req->already_durable = write_through_;
    req->op_id = op_id_;
    if (agent_ != nullptr && local_replica_ok_) {
      req->local_node = client_;
    }
    total_bytes_ += block_bytes_;
    block_open_ = false;
    local_replica_ok_ = true;
    // The client span closes after the CompleteBlock reply: the seal RPC is
    // part of what the writer experiences as this block's write latency.
    const Status status =
        (co_await bbfs_->hub_->call<void>(
             client_, bbfs_->master_node_, kBbCompleteBlock,
             std::shared_ptr<const BbCompleteBlockRequest>(std::move(req))))
            .status();
    sim::Simulation& sim = bbfs_->hub_->transport().fabric().simulation();
    if (sim.trace() != nullptr) sim.trace()->end(block_span_);
    co_return status;
  }

  BurstBufferFileSystem* bbfs_;
  std::string path_;
  net::NodeId client_;
  kv::Client kv_;
  lustre::LustreClient lustre_;
  sim::Semaphore window_;
  NodeAgent* agent_ = nullptr;

  bool block_open_ = false;
  bool local_replica_ok_ = true;
  // Blocks successfully added by THIS writer — the idempotency cursor sent
  // as expected_index so a retried AddBlock never allocates twice.
  std::uint32_t blocks_added_ = 0;
  // Latched per block at start_block: BB-Sync always, or degraded mode.
  bool write_through_ = false;
  // Master-signalled degraded mode: the buffer copy is best-effort because
  // Lustre write-through establishes durability.
  bool buffer_optional_ = false;
  std::uint32_t block_index_ = 0;
  std::uint64_t op_id_ = 0;
  std::size_t block_span_ = 0;
  std::uint32_t next_chunk_ = 0;
  std::uint64_t block_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint32_t block_crc_ = 0;
  std::vector<std::uint32_t> chunk_crcs_;
  Bytes chunk_buf_;
  std::optional<lustre::FileLayout> lustre_layout_;
  Status first_error_;
};

// ---- Reader ----------------------------------------------------------------

class BbReader final : public fs::Reader {
 public:
  BbReader(BurstBufferFileSystem& bbfs, std::string path, net::NodeId client,
           BbLocationsReply meta)
      : bbfs_(&bbfs),
        path_(std::move(path)),
        client_(client),
        kv_(*bbfs.hub_, client, bbfs.kv_servers_, bbfs.params_.kv_client),
        lustre_(*bbfs.hub_, bbfs.lustre_mds_),
        meta_(std::move(meta)) {}

  sim::Task<Result<Bytes>> read(std::uint64_t offset,
                                std::uint64_t length) override {
    if (offset >= meta_.file_size) {
      co_return error(StatusCode::kOutOfRange, "read past EOF");
    }
    length = std::min(length, meta_.file_size - offset);
    Bytes out;
    out.reserve(length);
    std::uint64_t cursor = offset;
    const std::uint64_t end = offset + length;
    sim::Simulation& sim = bbfs_->hub_->transport().fabric().simulation();
    const std::uint64_t op_id = sim.next_op_id();
    sim::ScopedSpan span(sim.trace(), "read." + path_, "bb", client_, op_id);
    while (cursor < end) {
      const std::uint64_t block_index = cursor / meta_.block_size;
      const std::uint64_t in_off = cursor % meta_.block_size;
      const BbBlockInfo& block =
          meta_.blocks[static_cast<std::size_t>(block_index)];
      const std::uint64_t take = std::min(end - cursor, block.size - in_off);
      Result<Bytes> piece = co_await read_block(block, in_off, take, op_id);
      if (!piece.is_ok()) co_return piece.status();
      out.insert(out.end(), piece.value().begin(), piece.value().end());
      cursor += take;
    }
    co_return out;
  }

  [[nodiscard]] std::uint64_t size() const override { return meta_.file_size; }

 private:
  // Read one block's range, preferring: node-local RAM-disk replica, then
  // the burst buffer (RDMA), then Lustre (after flush/eviction). Every path
  // verifies per-chunk CRCs; a corrupt copy falls through to the next tier
  // instead of being served, and only the last tier turns it into an error.
  sim::Task<Result<Bytes>> read_block(const BbBlockInfo& block,
                                      std::uint64_t offset,
                                      std::uint64_t length,
                                      std::uint64_t op_id) {
    sim::Simulation& sim = bbfs_->hub_->transport().fabric().simulation();
    // Chunk-aligned covering range: block-object tiers (local replica,
    // Lustre) read whole chunks so partial reads are verifiable against the
    // per-chunk CRCs, then slice to the caller's range.
    const std::uint64_t chunk = bbfs_->params_.chunk_size;
    const std::uint64_t aligned_off = offset / chunk * chunk;
    const std::uint64_t aligned_end =
        std::min(block.size, ((offset + length - 1) / chunk + 1) * chunk);
    const std::uint64_t aligned_len = aligned_end - aligned_off;
    const std::uint64_t skip = offset - aligned_off;

    // 1. Node-local replica (BB-Local).
    if (block.local_node.has_value()) {
      auto req = std::make_shared<const AgentReadRequest>(AgentReadRequest{
          local_object(path_, block.index), aligned_off, aligned_len});
      auto result = co_await bbfs_->hub_->call<AgentReadReply>(
          client_, *block.local_node, kAgentRead, req);
      if (result.is_ok()) {
        Bytes data(*result.value()->data);
        if (validate(block, aligned_off, data).is_ok()) {
          co_return Bytes(
              data.begin() + static_cast<std::ptrdiff_t>(skip),
              data.begin() + static_cast<std::ptrdiff_t>(skip + length));
        }
        // Corrupt RAM-disk copy: the buffer and Lustre hold independent
        // copies — fall through instead of failing the read.
        sim.metrics().counter("bb.read.local_crc_failures").add();
      }
    }

    // 2. Burst buffer: fetch the covering chunks in parallel. A corrupt
    // buffer copy (kDataLoss) also falls through: once the block is
    // flushed, Lustre is the authoritative repair source.
    Result<Bytes> buffered =
        co_await read_from_buffer(block, offset, length, op_id);
    if (buffered.is_ok()) co_return std::move(buffered).value();

    // 3. Lustre, once the block is durable there. The location snapshot
    // may be stale (flush completed after open): refresh once.
    BlockState state = block.state;
    if (state != BlockState::kFlushed) {
      auto fresh = co_await bbfs_->locations(path_, client_);
      if (fresh.is_ok() &&
          block.index < fresh.value().blocks.size()) {
        state = fresh.value().blocks[block.index].state;
      }
    }
    if (state == BlockState::kFlushed) {
      auto layout = co_await lustre_.lookup(client_, bbfs_->params_.lustre_prefix + path_);
      if (!layout.is_ok()) co_return layout.status();
      const std::uint64_t file_offset =
          static_cast<std::uint64_t>(block.index) * meta_.block_size +
          aligned_off;
      Result<Bytes> data = co_await lustre_.read(
          client_, layout.value(), file_offset, aligned_len, op_id);
      if (!data.is_ok()) co_return data.status();
      // The buffer copy was evicted (or never promoted): served from Lustre.
      sim.metrics().counter("bb.read.lustre_fallbacks").add();
      if (Status st = validate(block, aligned_off, data.value());
          !st.is_ok()) {
        // Last tier: corrupt here (with every earlier tier exhausted) is a
        // hard read failure, never silently served.
        sim.metrics().counter("bb.read.lustre_crc_failures").add();
        co_return st;
      }
      if (bbfs_->params_.promote_on_read) {
        promote(block, aligned_off, data.value());
      }
      co_return Bytes(
          data.value().begin() + static_cast<std::ptrdiff_t>(skip),
          data.value().begin() + static_cast<std::ptrdiff_t>(skip + length));
    }
    if (buffered.code() == StatusCode::kDataLoss) co_return buffered.status();
    co_return error(StatusCode::kDataLoss,
                    "block " + std::to_string(block.index) +
                        " unavailable in buffer and not yet durable");
  }

  sim::Task<Result<Bytes>> read_from_buffer(const BbBlockInfo& block,
                                            std::uint64_t offset,
                                            std::uint64_t length,
                                            std::uint64_t op_id) {
    const std::uint64_t chunk_size = bbfs_->params_.chunk_size;
    const std::uint32_t first =
        static_cast<std::uint32_t>(offset / chunk_size);
    const std::uint32_t last =
        static_cast<std::uint32_t>((offset + length - 1) / chunk_size);

    std::vector<sim::Task<Result<BytesPtr>>> gets;
    for (std::uint32_t c = first; c <= last; ++c) {
      gets.push_back(kv_.get(chunk_key(path_, block.index, c), op_id));
    }
    std::vector<Result<BytesPtr>> pieces = co_await sim::parallel_collect(
        bbfs_->hub_->transport().fabric().simulation(), std::move(gets));

    const std::uint64_t expected_chunks =
        (block.size + chunk_size - 1) / chunk_size;
    const bool have_crcs = block.chunk_crcs.size() == expected_chunks;
    Bytes assembled;
    assembled.reserve(static_cast<std::size_t>(last - first + 1) * chunk_size);
    for (std::uint32_t c = first; c <= last; ++c) {
      auto& piece = pieces[c - first];
      if (!piece.is_ok()) co_return piece.status();  // miss or server down
      // Verify each fetched chunk against the writer-registered CRC over
      // its logical prefix (stored values are padded to the slab class).
      // The KV layer already catches in-store bit rot; this catches a value
      // that is internally consistent but not what the writer sealed.
      const std::uint64_t logical = std::min(
          chunk_size, block.size - static_cast<std::uint64_t>(c) * chunk_size);
      if (have_crcs && piece.value()->size() >= logical &&
          crc32c(std::span<const std::uint8_t>(piece.value()->data(),
                                               logical)) !=
              block.chunk_crcs[c]) {
        bbfs_->hub_->transport().fabric().simulation().metrics()
            .counter("bb.read.buffer_crc_failures").add();
        co_return error(StatusCode::kDataLoss,
                        "chunk " + std::to_string(c) +
                            " checksum mismatch in buffer for block " +
                            std::to_string(block.index));
      }
      assembled.insert(assembled.end(), piece.value()->begin(),
                       piece.value()->end());
    }
    const std::uint64_t skip = offset - first * chunk_size;
    if (skip + length > assembled.size()) {
      co_return error(StatusCode::kInternal, "short buffer read");
    }
    Bytes out(assembled.begin() + static_cast<std::ptrdiff_t>(skip),
              assembled.begin() + static_cast<std::ptrdiff_t>(skip + length));
    // Full-block reads also check the rolling block CRC (end-to-end: the
    // concatenation matches what the writer streamed, not just each chunk).
    if (offset == 0 && length == block.size && crc32c(out) != block.crc32c) {
      co_return error(StatusCode::kDataLoss,
                      "checksum mismatch on block " +
                          std::to_string(block.index));
    }
    co_return out;
  }

  // Read promotion: push the complete chunks covered by this Lustre read
  // back into the buffer, detached and unpinned (pure cache data — safe to
  // evict, already durable). The next reader hits RDMA speed again.
  void promote(const BbBlockInfo& block, std::uint64_t offset,
               const Bytes& data) {
    const std::uint64_t chunk = bbfs_->params_.chunk_size;
    const std::uint64_t end = offset + data.size();
    std::uint32_t c = static_cast<std::uint32_t>(
        (offset + chunk - 1) / chunk);  // first chunk fully covered
    for (;; ++c) {
      const std::uint64_t c_start = static_cast<std::uint64_t>(c) * chunk;
      const std::uint64_t c_end =
          std::min(c_start + chunk, block.size);  // block tail is short
      if (c_start >= end || c_end > end) break;
      Bytes payload(data.begin() + static_cast<std::ptrdiff_t>(c_start - offset),
                    data.begin() + static_cast<std::ptrdiff_t>(c_end - offset));
      payload.resize(chunk, 0);  // uniform slab class (see store_chunk)
      bbfs_->hub_->transport().fabric().simulation().spawn(promote_chunk(
          bbfs_, client_, chunk_key(path_, block.index, c),
          make_bytes(std::move(payload))));
      if (c_end == block.size) break;
    }
  }

  static sim::Task<void> promote_chunk(BurstBufferFileSystem* bbfs,
                                       net::NodeId client, std::string key,
                                       BytesPtr payload) {
    kv::Client kv(*bbfs->hub_, client, bbfs->kv_servers_,
                  bbfs->params_.kv_client);
    (void)co_await kv.set(std::move(key), std::move(payload),
                          /*pinned=*/false);
  }

  // Verify `data` — which starts at chunk-aligned `aligned_off` within the
  // block and covers whole chunks (the last possibly short at the block
  // tail) — against the writer-registered per-chunk CRCs. This covers
  // partial reads, which the rolling block CRC (the pre-chunk-CRC scheme,
  // kept as a fallback for metadata sealed without per-chunk provenance)
  // cannot.
  Status validate(const BbBlockInfo& block, std::uint64_t aligned_off,
                  const Bytes& data) const {
    const std::uint64_t chunk = bbfs_->params_.chunk_size;
    const std::uint64_t expected = (block.size + chunk - 1) / chunk;
    if (block.chunk_crcs.size() != expected) {
      if (aligned_off == 0 && data.size() == block.size &&
          crc32c(data) != block.crc32c) {
        return error(StatusCode::kDataLoss,
                     "checksum mismatch on block " +
                         std::to_string(block.index));
      }
      return Status::ok();
    }
    std::uint64_t pos = 0;
    while (pos < data.size()) {
      const std::uint64_t c = (aligned_off + pos) / chunk;
      const std::uint64_t logical = std::min(chunk, block.size - c * chunk);
      if (pos + logical > data.size()) break;  // under-covered tail
      if (crc32c(std::span<const std::uint8_t>(data.data() + pos, logical)) !=
          block.chunk_crcs[static_cast<std::size_t>(c)]) {
        return error(StatusCode::kDataLoss,
                     "chunk " + std::to_string(c) +
                         " checksum mismatch on block " +
                         std::to_string(block.index));
      }
      pos += logical;
    }
    return Status::ok();
  }

  BurstBufferFileSystem* bbfs_;
  std::string path_;
  net::NodeId client_;
  kv::Client kv_;
  lustre::LustreClient lustre_;
  BbLocationsReply meta_;
};

// ---- FileSystem ------------------------------------------------------------

BurstBufferFileSystem::BurstBufferFileSystem(
    net::RpcHub& hub, net::NodeId master_node,
    std::vector<net::NodeId> kv_servers, net::NodeId lustre_mds,
    std::map<net::NodeId, NodeAgent*> agents, const BbFsParams& params)
    : hub_(&hub),
      master_node_(master_node),
      kv_servers_(std::move(kv_servers)),
      lustre_mds_(lustre_mds),
      agents_(std::move(agents)),
      params_(params) {}

sim::Task<Result<BbLocationsReply>> BurstBufferFileSystem::locations(
    const std::string& path, net::NodeId client) {
  auto req = std::make_shared<const BbLocationsRequest>(
      BbLocationsRequest{path});
  auto result = co_await hub_->call<BbLocationsReply>(client, master_node_,
                                                      kBbLocations, req);
  if (!result.is_ok()) co_return result.status();
  co_return *result.value();
}

sim::Task<Result<std::unique_ptr<fs::Writer>>> BurstBufferFileSystem::create(
    const std::string& path, net::NodeId client) {
  // Unique creation token: a retried Create after a lost reply matches the
  // stored token and succeeds instead of reporting kAlreadyExists.
  auto req = std::make_shared<const BbCreateRequest>(
      BbCreateRequest{path, hub_->transport().fabric().simulation().next_op_id()});
  auto result = co_await hub_->call<void>(client, master_node_, kBbCreate,
                                          req);
  if (!result.is_ok()) co_return result.status();
  co_return std::unique_ptr<fs::Writer>(
      std::make_unique<BbWriter>(*this, path, client));
}

sim::Task<Result<std::unique_ptr<fs::Reader>>> BurstBufferFileSystem::open(
    const std::string& path, net::NodeId client) {
  auto meta = co_await locations(path, client);
  if (!meta.is_ok()) co_return meta.status();
  co_return std::unique_ptr<fs::Reader>(std::make_unique<BbReader>(
      *this, path, client, std::move(meta).value()));
}

sim::Task<Result<fs::FileInfo>> BurstBufferFileSystem::stat(
    const std::string& path, net::NodeId client) {
  auto meta = co_await locations(path, client);
  if (!meta.is_ok()) co_return meta.status();
  fs::FileInfo info;
  info.path = path;
  info.size = meta.value().file_size;
  info.block_size = meta.value().block_size;
  info.replication = params_.scheme == Scheme::kAsync ? 1 : 2;
  co_return info;
}

sim::Task<Status> BurstBufferFileSystem::remove(const std::string& path,
                                                net::NodeId client) {
  // Drop any RAM-disk replicas (direct store access: agents are in-process).
  for (auto& [node, agent] : agents_) {
    std::uint32_t index = 0;
    while (agent->store().contains(local_object(path, index))) {
      (void)agent->store().remove(local_object(path, index));
      ++index;
    }
  }
  auto req = std::make_shared<const BbDeleteRequest>(BbDeleteRequest{path});
  co_return (co_await hub_->call<void>(client, master_node_, kBbDelete, req))
      .status();
}

sim::Task<Result<std::vector<std::string>>> BurstBufferFileSystem::list(
    const std::string& prefix, net::NodeId client) {
  auto req = std::make_shared<const BbListRequest>(BbListRequest{prefix});
  auto result = co_await hub_->call<BbListReply>(client, master_node_,
                                                 kBbList, req);
  if (!result.is_ok()) co_return result.status();
  co_return result.value()->paths;
}

sim::Task<Result<std::vector<std::vector<net::NodeId>>>>
BurstBufferFileSystem::block_locations(const std::string& path,
                                       net::NodeId client) {
  auto meta = co_await locations(path, client);
  if (!meta.is_ok()) co_return meta.status();
  std::vector<std::vector<net::NodeId>> out;
  out.reserve(meta.value().blocks.size());
  for (const BbBlockInfo& block : meta.value().blocks) {
    if (block.local_node.has_value()) {
      out.push_back({*block.local_node});
    } else {
      out.emplace_back();
    }
  }
  co_return out;
}

}  // namespace hpcbb::bb
