// Lustre metadata server: namespace, file layouts (stripe target lists),
// and round-robin OST allocation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lustre/protocol.h"
#include "net/rpc.h"
#include "sim/simulation.h"

namespace hpcbb::lustre {

struct MdsParams {
  std::uint64_t stripe_size = 1 * MiB;
  std::uint32_t default_stripe_count = 4;
  sim::SimTime md_op_ns = 30 * duration::us;  // metadata service time
};

class Mds {
 public:
  Mds(net::RpcHub& hub, net::NodeId node, std::vector<OstTarget> osts,
      const MdsParams& params);
  ~Mds();

  Mds(const Mds&) = delete;
  Mds& operator=(const Mds&) = delete;

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] const MdsParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t file_count() const noexcept {
    return files_.size();
  }

 private:
  sim::Task<net::RpcResponse> handle_create(
      std::shared_ptr<const CreateRequest>);
  sim::Task<net::RpcResponse> handle_lookup(
      std::shared_ptr<const LookupRequest>);
  sim::Task<net::RpcResponse> handle_set_size(
      std::shared_ptr<const SetSizeRequest>);
  sim::Task<net::RpcResponse> handle_unlink(
      std::shared_ptr<const UnlinkRequest>);
  sim::Task<net::RpcResponse> handle_list(std::shared_ptr<const ListRequest>);

  sim::Task<void> charge_md_op();

  net::RpcHub* hub_;
  net::NodeId node_;
  MdsParams params_;
  std::vector<OstTarget> osts_;
  std::uint32_t next_ost_ = 0;  // round-robin allocation cursor
  std::map<std::string, FileLayout> files_;
};

}  // namespace hpcbb::lustre
