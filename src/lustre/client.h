// Lustre client library and its fs::FileSystem adapter.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "lustre/protocol.h"
#include "net/rpc.h"
#include "storage/filesystem.h"

namespace hpcbb::lustre {

class LustreClient {
 public:
  LustreClient(net::RpcHub& hub, net::NodeId mds_node) noexcept
      : hub_(&hub), mds_(mds_node) {}

  sim::Task<Result<FileLayout>> create(net::NodeId client,
                                       const std::string& path,
                                       std::uint32_t stripe_count = 0);
  sim::Task<Result<FileLayout>> lookup(net::NodeId client,
                                       const std::string& path);
  sim::Task<Status> set_size(net::NodeId client, const std::string& path,
                             std::uint64_t size);
  sim::Task<Status> unlink(net::NodeId client, const std::string& path);
  sim::Task<Result<std::vector<std::string>>> list(net::NodeId client,
                                                   const std::string& prefix);

  // Striped write/read at an absolute file offset; chunks go to their OSTs
  // in parallel. `op_id` (optional) tags OSS-side trace spans with the
  // caller's causal operation id.
  sim::Task<Status> write(net::NodeId client, const FileLayout& layout,
                          std::uint64_t offset, BytesPtr data,
                          std::uint64_t op_id = 0);
  sim::Task<Result<Bytes>> read(net::NodeId client, const FileLayout& layout,
                                std::uint64_t offset, std::uint64_t length,
                                std::uint64_t op_id = 0);

  [[nodiscard]] net::NodeId mds_node() const noexcept { return mds_; }
  [[nodiscard]] net::RpcHub& hub() noexcept { return *hub_; }

 private:
  struct Chunk {
    OstTarget target;
    std::uint64_t object_offset;
    std::uint64_t file_offset;
    std::uint64_t length;
  };
  static std::vector<Chunk> chunks_for(const FileLayout& layout,
                                       std::uint64_t offset,
                                       std::uint64_t length);

  net::RpcHub* hub_;
  net::NodeId mds_;
};

struct LustreFsParams {
  std::uint64_t nominal_block_size = 128 * MiB;  // for split computation only
  std::uint32_t stripe_count = 0;                // 0 = MDS default
};

// fs::FileSystem over a Lustre client: every byte of every file goes to the
// parallel file system; no node-local placement (block_locations are empty).
class LustreFileSystem final : public fs::FileSystem {
 public:
  LustreFileSystem(net::RpcHub& hub, net::NodeId mds_node,
                   const LustreFsParams& params = {})
      : client_(hub, mds_node), params_(params) {}

  sim::Task<Result<std::unique_ptr<fs::Writer>>> create(
      const std::string& path, net::NodeId client) override;
  sim::Task<Result<std::unique_ptr<fs::Reader>>> open(
      const std::string& path, net::NodeId client) override;
  sim::Task<Result<fs::FileInfo>> stat(const std::string& path,
                                       net::NodeId client) override;
  sim::Task<Status> remove(const std::string& path,
                           net::NodeId client) override;
  sim::Task<Result<std::vector<std::string>>> list(
      const std::string& prefix, net::NodeId client) override;
  sim::Task<Result<std::vector<std::vector<net::NodeId>>>> block_locations(
      const std::string& path, net::NodeId client) override;
  [[nodiscard]] std::string name() const override { return "Lustre"; }

  [[nodiscard]] LustreClient& client() noexcept { return client_; }

 private:
  LustreClient client_;
  LustreFsParams params_;
};

}  // namespace hpcbb::lustre
