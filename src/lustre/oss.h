// Lustre object storage server: hosts several OSTs whose objects share the
// OSS's disk array bandwidth — the shared-contention behaviour that lets a
// RAM burst buffer beat even a fast parallel file system under bursts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lustre/protocol.h"
#include "net/rpc.h"
#include "storage/local_store.h"

namespace hpcbb::lustre {

struct OssParams {
  std::uint32_t ost_count = 2;
  std::uint64_t read_bytes_per_sec = 1'000 * MB;   // disk array, all OSTs
  std::uint64_t write_bytes_per_sec = 800 * MB;
  sim::SimTime seek_ns = 1'200 * duration::us;     // RAID elevator-assisted
  std::uint64_t capacity_bytes = 40 * TiB;
};

class Oss {
 public:
  Oss(net::RpcHub& hub, net::NodeId node, const OssParams& params);
  ~Oss();

  Oss(const Oss&) = delete;
  Oss& operator=(const Oss&) = delete;

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::uint32_t ost_count() const noexcept {
    return params_.ost_count;
  }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept {
    return device_->used_bytes();
  }
  [[nodiscard]] storage::Device& device() noexcept { return *device_; }

 private:
  sim::Task<net::RpcResponse> handle_write(
      std::shared_ptr<const OssWriteRequest>);
  sim::Task<net::RpcResponse> handle_read(
      std::shared_ptr<const OssReadRequest>);
  sim::Task<net::RpcResponse> handle_delete(
      std::shared_ptr<const OssDeleteRequest>);

  [[nodiscard]] std::string object_key(std::uint32_t ost_index,
                                       const std::string& object) const;

  net::RpcHub* hub_;
  net::NodeId node_;
  OssParams params_;
  std::unique_ptr<storage::Device> device_;
  std::unique_ptr<storage::LocalStore> store_;
};

}  // namespace hpcbb::lustre
