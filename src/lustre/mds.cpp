#include "lustre/mds.h"

#include <algorithm>

namespace hpcbb::lustre {

Mds::Mds(net::RpcHub& hub, net::NodeId node, std::vector<OstTarget> osts,
         const MdsParams& params)
    : hub_(&hub), node_(node), params_(params), osts_(std::move(osts)) {
  hub_->bind(node_, kMdsCreate, net::typed_handler<CreateRequest>([this](
      auto req) { return handle_create(req); }));
  hub_->bind(node_, kMdsLookup, net::typed_handler<LookupRequest>([this](
      auto req) { return handle_lookup(req); }));
  hub_->bind(node_, kMdsSetSize, net::typed_handler<SetSizeRequest>([this](
      auto req) { return handle_set_size(req); }));
  hub_->bind(node_, kMdsUnlink, net::typed_handler<UnlinkRequest>([this](
      auto req) { return handle_unlink(req); }));
  hub_->bind(node_, kMdsList, net::typed_handler<ListRequest>([this](
      auto req) { return handle_list(req); }));
}

Mds::~Mds() {
  for (const net::Port port :
       {kMdsCreate, kMdsLookup, kMdsSetSize, kMdsUnlink, kMdsList}) {
    hub_->unbind(node_, port);
  }
}

sim::Task<void> Mds::charge_md_op() {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const sim::SimTime start = sim.now();
  sim.metrics().counter("lustre.md_ops").add();
  co_await hub_->transport().fabric().charge_cpu(node_, params_.md_op_ns);
  sim.metrics().histogram("lustre.md").record(sim.now() - start);
}

sim::Task<net::RpcResponse> Mds::handle_create(
    std::shared_ptr<const CreateRequest> req) {
  co_await charge_md_op();
  if (files_.contains(req->path)) {
    co_return net::rpc_error(
        error(StatusCode::kAlreadyExists, "file exists: " + req->path));
  }
  const std::uint32_t want =
      req->stripe_count == 0 ? params_.default_stripe_count
                             : req->stripe_count;
  const auto stripe_count =
      std::min<std::uint32_t>(want, static_cast<std::uint32_t>(osts_.size()));

  auto layout = std::make_shared<FileLayout>();
  layout->path = req->path;
  layout->stripe_size = params_.stripe_size;
  layout->size = 0;
  layout->targets.reserve(stripe_count);
  for (std::uint32_t i = 0; i < stripe_count; ++i) {
    layout->targets.push_back(osts_[next_ost_ % osts_.size()]);
    ++next_ost_;
  }
  files_[req->path] = *layout;
  const std::uint64_t wire = layout->wire_size();
  co_return net::rpc_ok<FileLayout>(std::move(layout), wire);
}

sim::Task<net::RpcResponse> Mds::handle_lookup(
    std::shared_ptr<const LookupRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  auto layout = std::make_shared<FileLayout>(it->second);
  const std::uint64_t wire = layout->wire_size();
  co_return net::rpc_ok<FileLayout>(std::move(layout), wire);
}

sim::Task<net::RpcResponse> Mds::handle_set_size(
    std::shared_ptr<const SetSizeRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  it->second.size = std::max(it->second.size, req->size);
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> Mds::handle_unlink(
    std::shared_ptr<const UnlinkRequest> req) {
  co_await charge_md_op();
  const auto it = files_.find(req->path);
  if (it == files_.end()) {
    co_return net::rpc_error(
        error(StatusCode::kNotFound, "no such file: " + req->path));
  }
  // Release the objects on every stripe target.
  const FileLayout layout = it->second;
  files_.erase(it);
  for (const OstTarget& target : layout.targets) {
    auto del = std::make_shared<const OssDeleteRequest>(OssDeleteRequest{
        target.ost_index, layout.path});
    (void)co_await hub_->call<void>(node_, target.oss_node, kOssDelete, del);
  }
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> Mds::handle_list(
    std::shared_ptr<const ListRequest> req) {
  co_await charge_md_op();
  auto reply = std::make_shared<ListReply>();
  for (const auto& [path, layout] : files_) {
    if (path.starts_with(req->prefix)) reply->paths.push_back(path);
  }
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<ListReply>(std::move(reply), wire);
}

}  // namespace hpcbb::lustre
