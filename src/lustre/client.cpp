#include "lustre/client.h"

#include <algorithm>

#include "sim/sync.h"

namespace hpcbb::lustre {

sim::Task<Result<FileLayout>> LustreClient::create(net::NodeId client,
                                                   const std::string& path,
                                                   std::uint32_t stripe_count) {
  auto req = std::make_shared<const CreateRequest>(
      CreateRequest{path, stripe_count});
  auto result = co_await hub_->call<FileLayout>(client, mds_, kMdsCreate, req);
  if (!result.is_ok()) co_return result.status();
  co_return *result.value();
}

sim::Task<Result<FileLayout>> LustreClient::lookup(net::NodeId client,
                                                   const std::string& path) {
  auto req = std::make_shared<const LookupRequest>(LookupRequest{path});
  auto result = co_await hub_->call<FileLayout>(client, mds_, kMdsLookup, req);
  if (!result.is_ok()) co_return result.status();
  co_return *result.value();
}

sim::Task<Status> LustreClient::set_size(net::NodeId client,
                                         const std::string& path,
                                         std::uint64_t size) {
  auto req = std::make_shared<const SetSizeRequest>(SetSizeRequest{path, size});
  co_return (co_await hub_->call<void>(client, mds_, kMdsSetSize, req)).status();
}

sim::Task<Status> LustreClient::unlink(net::NodeId client,
                                       const std::string& path) {
  auto req = std::make_shared<const UnlinkRequest>(UnlinkRequest{path});
  co_return (co_await hub_->call<void>(client, mds_, kMdsUnlink, req)).status();
}

sim::Task<Result<std::vector<std::string>>> LustreClient::list(
    net::NodeId client, const std::string& prefix) {
  auto req = std::make_shared<const ListRequest>(ListRequest{prefix});
  auto result = co_await hub_->call<ListReply>(client, mds_, kMdsList, req);
  if (!result.is_ok()) co_return result.status();
  co_return result.value()->paths;
}

std::vector<LustreClient::Chunk> LustreClient::chunks_for(
    const FileLayout& layout, std::uint64_t offset, std::uint64_t length) {
  std::vector<Chunk> chunks;
  const std::uint64_t ss = layout.stripe_size;
  const auto nstripes = static_cast<std::uint64_t>(layout.targets.size());
  std::uint64_t cursor = offset;
  const std::uint64_t end = offset + length;
  while (cursor < end) {
    const std::uint64_t stripe_index = cursor / ss;
    const std::uint64_t within = cursor % ss;
    const std::uint64_t take = std::min(end - cursor, ss - within);
    Chunk chunk;
    chunk.target = layout.targets[stripe_index % nstripes];
    chunk.object_offset = (stripe_index / nstripes) * ss + within;
    chunk.file_offset = cursor;
    chunk.length = take;
    chunks.push_back(chunk);
    cursor += take;
  }
  return chunks;
}

sim::Task<Status> LustreClient::write(net::NodeId client,
                                      const FileLayout& layout,
                                      std::uint64_t offset, BytesPtr data,
                                      std::uint64_t op_id) {
  if (layout.targets.empty()) {
    co_return error(StatusCode::kFailedPrecondition, "layout has no targets");
  }
  const std::vector<Chunk> chunks = chunks_for(layout, offset, data->size());
  sim::Simulation& sim = hub_->transport().fabric().simulation();

  std::vector<sim::Task<Status>> ops;
  ops.reserve(chunks.size());
  for (const Chunk& chunk : chunks) {
    auto req = std::make_shared<OssWriteRequest>();
    req->ost_index = chunk.target.ost_index;
    req->object = layout.path;
    req->offset = chunk.object_offset;
    req->op_id = op_id;
    req->data = make_bytes(
        Bytes(data->begin() + static_cast<std::ptrdiff_t>(chunk.file_offset -
                                                          offset),
              data->begin() + static_cast<std::ptrdiff_t>(
                                  chunk.file_offset - offset + chunk.length)));
    ops.push_back([](net::RpcHub& hub, net::NodeId src, net::NodeId dst,
                     std::shared_ptr<const OssWriteRequest> r)
                      -> sim::Task<Status> {
      co_return (co_await hub.call<void>(src, dst, kOssWrite, r)).status();
    }(*hub_, client, chunk.target.oss_node, std::move(req)));
  }
  const std::vector<Status> results =
      co_await sim::parallel_collect(sim, std::move(ops));
  for (const Status& st : results) {
    if (!st.is_ok()) co_return st;
  }
  co_return Status::ok();
}

sim::Task<Result<Bytes>> LustreClient::read(net::NodeId client,
                                            const FileLayout& layout,
                                            std::uint64_t offset,
                                            std::uint64_t length,
                                            std::uint64_t op_id) {
  if (layout.targets.empty()) {
    co_return error(StatusCode::kFailedPrecondition, "layout has no targets");
  }
  if (offset >= layout.size) {
    co_return error(StatusCode::kOutOfRange, "read past EOF");
  }
  length = std::min(length, layout.size - offset);
  const std::vector<Chunk> chunks = chunks_for(layout, offset, length);
  sim::Simulation& sim = hub_->transport().fabric().simulation();

  std::vector<sim::Task<Result<Bytes>>> ops;
  ops.reserve(chunks.size());
  for (const Chunk& chunk : chunks) {
    auto req = std::make_shared<const OssReadRequest>(OssReadRequest{
        chunk.target.ost_index, layout.path, chunk.object_offset,
        chunk.length, op_id});
    ops.push_back([](net::RpcHub& hub, net::NodeId src, net::NodeId dst,
                     std::shared_ptr<const OssReadRequest> r)
                      -> sim::Task<Result<Bytes>> {
      auto result = co_await hub.call<OssReadReply>(src, dst, kOssRead, r);
      if (!result.is_ok()) co_return result.status();
      co_return Bytes(*result.value()->data);
    }(*hub_, client, chunk.target.oss_node, std::move(req)));
  }
  std::vector<Result<Bytes>> results = co_await sim::parallel_collect(
      sim, std::move(ops));

  Bytes out;
  out.reserve(length);
  for (auto& piece : results) {
    if (!piece.is_ok()) co_return piece.status();
    const Bytes& bytes = piece.value();
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  co_return out;
}

// ---- fs::FileSystem adapter ------------------------------------------------

namespace {

class LustreWriter final : public fs::Writer {
 public:
  LustreWriter(LustreClient& client, net::NodeId node, FileLayout layout)
      : client_(&client), node_(node), layout_(std::move(layout)) {}

  sim::Task<Status> append(BytesPtr data) override {
    const std::uint64_t size = data->size();
    Status st = co_await client_->write(node_, layout_, cursor_,
                                        std::move(data));
    if (st.is_ok()) cursor_ += size;
    co_return st;
  }

  sim::Task<Status> close() override {
    co_return co_await client_->set_size(node_, layout_.path, cursor_);
  }

 private:
  LustreClient* client_;
  net::NodeId node_;
  FileLayout layout_;
  std::uint64_t cursor_ = 0;
};

class LustreReader final : public fs::Reader {
 public:
  LustreReader(LustreClient& client, net::NodeId node, FileLayout layout)
      : client_(&client), node_(node), layout_(std::move(layout)) {}

  sim::Task<Result<Bytes>> read(std::uint64_t offset,
                                std::uint64_t length) override {
    return client_->read(node_, layout_, offset, length);
  }

  [[nodiscard]] std::uint64_t size() const override { return layout_.size; }

 private:
  LustreClient* client_;
  net::NodeId node_;
  FileLayout layout_;
};

}  // namespace

sim::Task<Result<std::unique_ptr<fs::Writer>>> LustreFileSystem::create(
    const std::string& path, net::NodeId client) {
  Result<FileLayout> layout =
      co_await client_.create(client, path, params_.stripe_count);
  if (!layout.is_ok()) co_return layout.status();
  co_return std::unique_ptr<fs::Writer>(std::make_unique<LustreWriter>(
      client_, client, std::move(layout).value()));
}

sim::Task<Result<std::unique_ptr<fs::Reader>>> LustreFileSystem::open(
    const std::string& path, net::NodeId client) {
  Result<FileLayout> layout = co_await client_.lookup(client, path);
  if (!layout.is_ok()) co_return layout.status();
  co_return std::unique_ptr<fs::Reader>(std::make_unique<LustreReader>(
      client_, client, std::move(layout).value()));
}

sim::Task<Result<fs::FileInfo>> LustreFileSystem::stat(const std::string& path,
                                                       net::NodeId client) {
  Result<FileLayout> layout = co_await client_.lookup(client, path);
  if (!layout.is_ok()) co_return layout.status();
  fs::FileInfo info;
  info.path = path;
  info.size = layout.value().size;
  info.block_size = params_.nominal_block_size;
  info.replication = 1;
  co_return info;
}

sim::Task<Status> LustreFileSystem::remove(const std::string& path,
                                           net::NodeId client) {
  return client_.unlink(client, path);
}

sim::Task<Result<std::vector<std::string>>> LustreFileSystem::list(
    const std::string& prefix, net::NodeId client) {
  return client_.list(client, prefix);
}

sim::Task<Result<std::vector<std::vector<net::NodeId>>>>
LustreFileSystem::block_locations(const std::string& path,
                                  net::NodeId client) {
  Result<FileLayout> layout = co_await client_.lookup(client, path);
  if (!layout.is_ok()) co_return layout.status();
  const std::uint64_t blocks =
      (layout.value().size + params_.nominal_block_size - 1) /
      params_.nominal_block_size;
  // No node-local placement on a parallel file system.
  co_return std::vector<std::vector<net::NodeId>>(blocks);
}

}  // namespace hpcbb::lustre
