// Lustre wire messages: MDS metadata ops and OSS object I/O.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "net/rpc.h"

namespace hpcbb::lustre {

inline constexpr net::Port kMdsPortBase = 988;   // LNET's well-known port
inline constexpr net::Port kOssPortBase = 1020;

inline constexpr net::Port kMdsCreate = kMdsPortBase;
inline constexpr net::Port kMdsLookup = kMdsPortBase + 1;
inline constexpr net::Port kMdsSetSize = kMdsPortBase + 2;
inline constexpr net::Port kMdsUnlink = kMdsPortBase + 3;
inline constexpr net::Port kMdsList = kMdsPortBase + 4;

inline constexpr net::Port kOssWrite = kOssPortBase;
inline constexpr net::Port kOssRead = kOssPortBase + 1;
inline constexpr net::Port kOssDelete = kOssPortBase + 2;

inline constexpr std::uint64_t kHeaderBytes = 64;

// One stripe target: an OST slot on an OSS node.
struct OstTarget {
  net::NodeId oss_node = 0;
  std::uint32_t ost_index = 0;
};

struct CreateRequest {
  std::string path;
  std::uint32_t stripe_count = 0;  // 0 = filesystem default
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct FileLayout {
  std::string path;
  std::uint64_t stripe_size = 0;
  std::uint64_t size = 0;
  std::vector<OstTarget> targets;  // stripe_count entries
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size() + targets.size() * 8;
  }
};

struct LookupRequest {
  std::string path;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct SetSizeRequest {
  std::string path;
  std::uint64_t size = 0;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct UnlinkRequest {
  std::string path;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + path.size();
  }
};

struct ListRequest {
  std::string prefix;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + prefix.size();
  }
};

struct ListReply {
  std::vector<std::string> paths;
  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t total = kHeaderBytes;
    for (const auto& p : paths) total += p.size() + 4;
    return total;
  }
};

struct OssWriteRequest {
  std::uint32_t ost_index = 0;
  std::string object;  // object name (derived from the file path)
  std::uint64_t offset = 0;
  BytesPtr data;
  std::uint64_t op_id = 0;  // causal trace id; rides the header
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + object.size() + data->size();
  }
};

struct OssReadRequest {
  std::uint32_t ost_index = 0;
  std::string object;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t op_id = 0;  // causal trace id; rides the header
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + object.size();
  }
};

struct OssReadReply {
  BytesPtr data;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + data->size();
  }
};

struct OssDeleteRequest {
  std::uint32_t ost_index = 0;
  std::string object;
  [[nodiscard]] std::uint64_t wire_size() const {
    return kHeaderBytes + object.size();
  }
};

}  // namespace hpcbb::lustre
