#include "lustre/oss.h"

#include "common/metrics.h"
#include "sim/trace.h"

namespace hpcbb::lustre {

Oss::Oss(net::RpcHub& hub, net::NodeId node, const OssParams& params)
    : hub_(&hub), node_(node), params_(params) {
  storage::DeviceParams dev;
  dev.kind = storage::MediaKind::kHdd;
  dev.read_bytes_per_sec = params_.read_bytes_per_sec;
  dev.write_bytes_per_sec = params_.write_bytes_per_sec;
  dev.seek_ns = params_.seek_ns;
  dev.capacity_bytes = params_.capacity_bytes;
  device_ = std::make_unique<storage::Device>(
      hub_->transport().fabric().simulation(), dev);
  store_ = std::make_unique<storage::LocalStore>(*device_);

  hub_->bind(node_, kOssWrite, net::typed_handler<OssWriteRequest>([this](
      auto req) { return handle_write(req); }));
  hub_->bind(node_, kOssRead, net::typed_handler<OssReadRequest>([this](
      auto req) { return handle_read(req); }));
  hub_->bind(node_, kOssDelete, net::typed_handler<OssDeleteRequest>([this](
      auto req) { return handle_delete(req); }));
}

Oss::~Oss() {
  for (const net::Port port : {kOssWrite, kOssRead, kOssDelete}) {
    hub_->unbind(node_, port);
  }
}

std::string Oss::object_key(std::uint32_t ost_index,
                            const std::string& object) const {
  return "ost" + std::to_string(ost_index) + "/" + object;
}

sim::Task<net::RpcResponse> Oss::handle_write(
    std::shared_ptr<const OssWriteRequest> req) {
  if (req->ost_index >= params_.ost_count) {
    co_return net::rpc_error(
        error(StatusCode::kInvalidArgument, "no such OST"));
  }
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const sim::SimTime start = sim.now();
  sim::ScopedSpan span(sim.trace(), "write." + req->object, "lustre", node_,
                       req->op_id);
  Gauge& queue = sim.metrics().gauge("lustre.queue_depth");
  queue.add();
  Status st = co_await store_->write_at(object_key(req->ost_index, req->object),
                                        req->offset, *req->data);
  queue.sub();
  sim.metrics().histogram("lustre.write").record(sim.now() - start);
  if (!st.is_ok()) co_return net::rpc_error(std::move(st));
  sim.metrics().counter("lustre.write_bytes").add(req->data->size());
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

sim::Task<net::RpcResponse> Oss::handle_read(
    std::shared_ptr<const OssReadRequest> req) {
  sim::Simulation& sim = hub_->transport().fabric().simulation();
  const sim::SimTime start = sim.now();
  sim::ScopedSpan span(sim.trace(), "read." + req->object, "lustre", node_,
                       req->op_id);
  Gauge& queue = sim.metrics().gauge("lustre.queue_depth");
  queue.add();
  Result<Bytes> data = co_await store_->read(
      object_key(req->ost_index, req->object), req->offset, req->length);
  queue.sub();
  sim.metrics().histogram("lustre.read").record(sim.now() - start);
  if (!data.is_ok()) co_return net::rpc_error(data.status());
  sim.metrics().counter("lustre.read_bytes").add(data.value().size());
  auto reply = std::make_shared<OssReadReply>();
  reply->data = make_bytes(std::move(data).value());
  const std::uint64_t wire = reply->wire_size();
  co_return net::rpc_ok<OssReadReply>(std::move(reply), wire);
}

sim::Task<net::RpcResponse> Oss::handle_delete(
    std::shared_ptr<const OssDeleteRequest> req) {
  (void)store_->remove(object_key(req->ost_index, req->object));
  co_return net::RpcResponse{Status::ok(), nullptr, kHeaderBytes};
}

}  // namespace hpcbb::lustre
