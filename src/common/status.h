// Status / Result<T>: lightweight error propagation without exceptions on hot
// paths. Modeled after absl::Status / std::expected (which is C++23).
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace hpcbb {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kOutOfRange,
  kResourceExhausted,
  kUnavailable,    // transient: endpoint down, retryable
  kDataLoss,       // acknowledged data is gone (checksum mismatch, lost replica)
  kFailedPrecondition,
  kTimeout,
  kInternal,
};

std::string_view to_string(StatusCode code) noexcept;

class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status error(StatusCode code, std::string message) {
  return Status(code, std::move(message));
}

// Result<T>: either a value or a non-ok Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).is_ok() && "ok Status carries no value");
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(rep_);
  }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(rep_);
  }
  [[nodiscard]] StatusCode code() const noexcept {
    return is_ok() ? StatusCode::kOk : std::get<Status>(rep_).code();
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace hpcbb
