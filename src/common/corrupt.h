// Deterministic data-corruption primitives shared by the fault injector,
// the KV store, and storage devices. Every kind is guaranteed to change at
// least one byte of the buffer it is applied to (burst-buffer chunks are
// zero-padded, so "zero the tail" alone could be a silent no-op), and none
// of them touches stored checksums — detection is always possible.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace hpcbb {

enum class CorruptKind {
  kBitFlip,    // flip one bit at a selector-derived offset
  kTornWrite,  // zero the tail half, as if a write stopped mid-flight
  kStaleRead,  // XOR a rolling pattern, as if an old version leaked through
};

[[nodiscard]] constexpr std::string_view to_string(CorruptKind kind) noexcept {
  switch (kind) {
    case CorruptKind::kBitFlip: return "corrupt.bitflip";
    case CorruptKind::kTornWrite: return "corrupt.torn_write";
    case CorruptKind::kStaleRead: return "corrupt.stale_read";
  }
  return "corrupt.unknown";
}

// Mutate `data` in place. `selector` picks the position deterministically;
// the same (data, kind, selector) always yields the same mutation. Empty
// buffers are left alone (returns false); otherwise at least one byte is
// guaranteed to differ afterwards and the function returns true.
inline bool apply_corruption(std::span<std::uint8_t> data, CorruptKind kind,
                             std::uint64_t selector) noexcept {
  if (data.empty()) return false;
  switch (kind) {
    case CorruptKind::kBitFlip: {
      data[selector % data.size()] ^=
          static_cast<std::uint8_t>(1u << (selector % 8));
      return true;
    }
    case CorruptKind::kTornWrite: {
      // Zeroing alone can be a no-op on zero-padded tails, so force one
      // byte at the tear point to a sentinel that is never its own value.
      const std::size_t tear = data.size() / 2;
      for (std::size_t i = tear; i < data.size(); ++i) data[i] = 0;
      data[tear] = data[tear] == 0xA5 ? 0x5A : 0xA5;
      return true;
    }
    case CorruptKind::kStaleRead: {
      // XOR with a nonzero rolling pattern: every 64th byte (at least one).
      bool changed = false;
      for (std::size_t i = selector % 64; i < data.size(); i += 64) {
        data[i] ^= 0x5A;
        changed = true;
      }
      if (!changed) data[selector % data.size()] ^= 0x5A;
      return true;
    }
  }
  return false;
}

}  // namespace hpcbb
