// Deterministic PRNG: xoshiro256** seeded via SplitMix64. The simulator
// requires reproducible streams; std::mt19937_64 would also do, but
// xoshiro is faster and its behaviour is pinned by our own tests rather
// than by library implementation details.
#pragma once

#include <cassert>
#include <cstdint>
#include <cmath>
#include <limits>

namespace hpcbb {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    assert(lo <= hi);
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next();  // full 64-bit range
    // Lemire-style rejection-free is overkill here; modulo bias is
    // negligible for span << 2^64 and determinism is what matters.
    return lo + next() % span;
  }

  // Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Exponentially distributed with the given mean (device/service jitter).
  double exponential(double mean) noexcept {
    double u = uniform01();
    if (u >= 1.0) u = std::nextafter(1.0, 0.0);
    return -mean * std::log1p(-u);
  }

  // Fork an independent deterministic child stream (per node / per task).
  Rng fork() noexcept { return Rng(next() ^ 0xA5A5A5A5A5A5A5A5ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace hpcbb
