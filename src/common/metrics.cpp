#include "common/metrics.h"

#include <algorithm>
#include <bit>

namespace hpcbb {

int Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBits;
  const auto sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  return ((msb - kSubBits + 1) << kSubBits) + sub;
}

std::uint64_t Histogram::bucket_upper_bound(int index) noexcept {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  const int exp = (index >> kSubBits) - 1 + kSubBits;
  const int sub = index & (kSubBuckets - 1);
  const std::uint64_t base = 1ull << exp;
  const std::uint64_t step = base >> kSubBits;
  return base + static_cast<std::uint64_t>(sub + 1) * step - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~0ull ? 0 : v;
}

std::uint64_t Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) return bucket_upper_bound(i);
  }
  return max();
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot snap;
  snap.count = count();
  snap.sum = sum();
  snap.min = min();
  snap.max = max();
  snap.mean = mean();
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

std::string labeled(std::string_view name, std::string_view label,
                    std::uint64_t id) {
  std::string key;
  key.reserve(name.size() + label.size() + 24);
  key.append(name);
  key += '{';
  key.append(label);
  key += '=';
  key += std::to_string(id);
  key += '}';
  return key;
}

std::string_view base_name(std::string_view key) noexcept {
  const std::size_t brace = key.find('{');
  return brace == std::string_view::npos ? key : key.substr(0, brace);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::uint64_t MetricRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->get();
}

std::uint64_t MetricRegistry::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->get();
}

std::optional<std::uint64_t> MetricRegistry::find_counter(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) return std::nullopt;
  return it->second->get();
}

std::optional<GaugeSnapshot> MetricRegistry::find_gauge(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return GaugeSnapshot{it->second->get(), it->second->high_watermark()};
}

std::optional<HistogramSnapshot> MetricRegistry::find_histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end() || it->second->count() == 0) return std::nullopt;
  return it->second->snapshot();
}

std::optional<std::uint64_t> MetricRegistry::histogram_quantile(
    const std::string& name, double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end() || it->second->count() == 0) return std::nullopt;
  return it->second->quantile(q);
}

std::map<std::string, std::uint64_t> MetricRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->get();
  return out;
}

std::map<std::string, GaugeSnapshot> MetricRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, GaugeSnapshot> out;
  for (const auto& [name, gauge] : gauges_)
    out[name] = GaugeSnapshot{gauge->get(), gauge->high_watermark()};
  return out;
}

std::map<std::string, HistogramSnapshot> MetricRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, histogram] : histograms_)
    out[name] = histogram->snapshot();
  return out;
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace hpcbb
