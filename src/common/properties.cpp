#include "common/properties.h"

#include <cctype>
#include <charconv>

#include "common/strings.h"
#include "common/units.h"

namespace hpcbb {

Result<Properties> Properties::parse(std::string_view text) {
  Properties props;
  std::size_t line_no = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_no;
    std::string_view line = trim(raw_line);
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = trim(line.substr(0, hash));
    }
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return error(StatusCode::kInvalidArgument,
                   "line " + std::to_string(line_no) + ": expected key=value");
    }
    const std::string_view key = trim(line.substr(0, eq));
    if (key.empty()) {
      return error(StatusCode::kInvalidArgument,
                   "line " + std::to_string(line_no) + ": empty key");
    }
    props.set(std::string(key), std::string(trim(line.substr(eq + 1))));
  }
  return props;
}

void Properties::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

std::optional<std::string> Properties::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Properties::get_or(const std::string& key,
                               std::string fallback) const {
  auto v = get(key);
  return v ? *v : std::move(fallback);
}

Result<std::uint64_t> Properties::get_u64(const std::string& key) const {
  const auto v = get(key);
  if (!v) return error(StatusCode::kNotFound, "missing key: " + key);
  std::string_view s = trim(*v);
  std::uint64_t multiplier = 1;
  if (!s.empty()) {
    switch (std::tolower(static_cast<unsigned char>(s.back()))) {
      case 'k': multiplier = KiB; s.remove_suffix(1); break;
      case 'm': multiplier = MiB; s.remove_suffix(1); break;
      case 'g': multiplier = GiB; s.remove_suffix(1); break;
      case 't': multiplier = TiB; s.remove_suffix(1); break;
      default: break;
    }
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return error(StatusCode::kInvalidArgument,
                 "key " + key + ": not an integer: " + *v);
  }
  return value * multiplier;
}

std::uint64_t Properties::get_u64_or(const std::string& key,
                                     std::uint64_t fallback) const {
  const auto r = get_u64(key);
  return r.is_ok() ? r.value() : fallback;
}

double Properties::get_double_or(const std::string& key,
                                 double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (...) {
    return fallback;
  }
}

Result<std::uint64_t> Properties::get_duration_ns(
    const std::string& key) const {
  const auto v = get(key);
  if (!v) return error(StatusCode::kNotFound, "missing key: " + key);
  const auto parsed = parse_duration_ns(*v);
  if (!parsed) {
    return error(StatusCode::kInvalidArgument,
                 "key " + key + ": not a duration (want e.g. 100ms): " + *v);
  }
  return *parsed;
}

std::uint64_t Properties::get_duration_ns_or(const std::string& key,
                                             std::uint64_t fallback) const {
  const auto r = get_duration_ns(key);
  return r.is_ok() ? r.value() : fallback;
}

bool Properties::get_bool_or(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  return fallback;
}

bool Properties::contains(const std::string& key) const {
  return entries_.contains(key);
}

}  // namespace hpcbb
