#include "common/crc32c.h"

#include <array>

namespace hpcbb {
namespace {

// Slicing-by-4 tables, generated at static-init time from the Castagnoli
// polynomial (reflected 0x82F63B78).
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t;

  Tables() noexcept {
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& tables() noexcept {
  static const Tables kTables;
  return kTables;
}

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto& t = tables().t;
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace hpcbb
