// Key=value properties (Hadoop-configuration style) with typed getters.
// Examples and benches accept overrides like "bb.scheme=local" on the
// command line; this is the shared parser.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace hpcbb {

class Properties {
 public:
  Properties() = default;

  // Parses "a.b=1\nc=hello" text; '#' starts a comment. Later keys win.
  static Result<Properties> parse(std::string_view text);

  void set(std::string key, std::string value);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   std::string fallback) const;
  // Accepts size suffixes k/m/g (binary): "128m" -> 128 MiB.
  [[nodiscard]] Result<std::uint64_t> get_u64(const std::string& key) const;
  [[nodiscard]] std::uint64_t get_u64_or(const std::string& key,
                                         std::uint64_t fallback) const;
  [[nodiscard]] double get_double_or(const std::string& key,
                                     double fallback) const;
  // Accepts duration suffixes ns/us/ms/s: "100ms" -> 100'000'000 ns.
  // get_duration_ns distinguishes a missing key (kNotFound) from a value
  // that is not a duration (kInvalidArgument) so callers can reject
  // malformed configuration instead of silently using the fallback.
  [[nodiscard]] Result<std::uint64_t> get_duration_ns(
      const std::string& key) const;
  [[nodiscard]] std::uint64_t get_duration_ns_or(const std::string& key,
                                                 std::uint64_t fallback) const;
  [[nodiscard]] bool get_bool_or(const std::string& key, bool fallback) const;

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace hpcbb
