// Size and time unit helpers. Simulated time is a raw nanosecond count
// (SimTime in sim/); these helpers keep call sites legible.
#pragma once

#include <cstdint>

namespace hpcbb {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;
inline constexpr std::uint64_t TiB = 1024ull * GiB;

// Decimal units: link/device bandwidths are conventionally quoted decimal.
inline constexpr std::uint64_t KB = 1000ull;
inline constexpr std::uint64_t MB = 1000ull * KB;
inline constexpr std::uint64_t GB = 1000ull * MB;

namespace duration {
inline constexpr std::uint64_t ns = 1ull;
inline constexpr std::uint64_t us = 1000ull;
inline constexpr std::uint64_t ms = 1000ull * us;
inline constexpr std::uint64_t sec = 1000ull * ms;
}  // namespace duration

// Time to move `bytes` at `bytes_per_sec`, rounded up to a whole nanosecond.
constexpr std::uint64_t transfer_time_ns(std::uint64_t bytes,
                                         std::uint64_t bytes_per_sec) {
  if (bytes_per_sec == 0) return 0;
  // bytes * 1e9 can overflow for multi-TiB transfers; split into whole
  // seconds plus remainder to stay within 64 bits.
  const std::uint64_t whole = bytes / bytes_per_sec;
  const std::uint64_t rem = bytes % bytes_per_sec;
  return whole * duration::sec +
         (rem * duration::sec + bytes_per_sec - 1) / bytes_per_sec;
}

constexpr double ns_to_sec(std::uint64_t t_ns) {
  return static_cast<double>(t_ns) / 1e9;
}

// Throughput in MB/s (decimal, matching Hadoop TestDFSIO reporting).
constexpr double throughput_mbps(std::uint64_t bytes, std::uint64_t t_ns) {
  if (t_ns == 0) return 0.0;
  return static_cast<double>(bytes) / 1e6 / ns_to_sec(t_ns);
}

}  // namespace hpcbb
