// Metrics: counters and a log-linear histogram (HdrHistogram-style buckets)
// good enough for latency percentiles across nine decades of nanoseconds.
// Thread-safe: the KV store updates metrics from real threads in unit tests
// and benchmarks; the simulator updates them single-threaded.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hpcbb {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time level (queue depth, dirty bytes, memory used) with a
// high-watermark that survives after the level drops — the number capacity
// planning actually wants.
class Gauge {
 public:
  void set(std::uint64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
    raise_watermark(value);
  }
  void add(std::uint64_t delta = 1) noexcept {
    raise_watermark(value_.fetch_add(delta, std::memory_order_relaxed) +
                    delta);
  }
  // Saturating: a sub below zero clamps to zero rather than wrapping.
  void sub(std::uint64_t delta = 1) noexcept {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur - std::min(cur, delta),
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t high_watermark() const noexcept {
    return watermark_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    watermark_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_watermark(std::uint64_t value) noexcept {
    std::uint64_t cur = watermark_.load(std::memory_order_relaxed);
    while (value > cur && !watermark_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> value_{0};
  std::atomic<std::uint64_t> watermark_{0};
};

// Scoped metric key: labeled("kv.bytes", "node", 3) -> "kv.bytes{node=3}".
// Per-node/per-server series share a base name and differ only in the label,
// so reports can group them; base_name() strips the label back off.
[[nodiscard]] std::string labeled(std::string_view name,
                                  std::string_view label, std::uint64_t id);
[[nodiscard]] std::string_view base_name(std::string_view key) noexcept;

// Fixed summary of a histogram at a point in time: what reports export.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
};

// Log-linear histogram: 64 orders of magnitude (bit position), 16 linear
// sub-buckets each => <= 6.25% relative quantile error.
class Histogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  // q in [0, 1]; returns an upper bound of the bucket containing the quantile.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;

  void reset() noexcept;

 private:
  static int bucket_index(std::uint64_t value) noexcept;
  static std::uint64_t bucket_upper_bound(int index) noexcept;

  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

// Exported gauge state: level now plus the highest level ever seen.
struct GaugeSnapshot {
  std::uint64_t value = 0;
  std::uint64_t high_watermark = 0;
};

// Named metric registry; experiments snapshot it into report rows.
class MetricRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] std::uint64_t gauge_value(const std::string& name) const;

  // Lookups that never create and that distinguish "metric absent" from a
  // legitimate zero — what alerting needs, where counter_value()'s 0 is
  // ambiguous. histogram_quantile additionally treats a registered but
  // never-recorded histogram as nullopt: quantile(q) of zero samples is
  // "no data", not 0ns.
  [[nodiscard]] std::optional<std::uint64_t> find_counter(
      const std::string& name) const;
  [[nodiscard]] std::optional<GaugeSnapshot> find_gauge(
      const std::string& name) const;
  [[nodiscard]] std::optional<HistogramSnapshot> find_histogram(
      const std::string& name) const;
  [[nodiscard]] std::optional<std::uint64_t> histogram_quantile(
      const std::string& name, double q) const;

  // All counters as a sorted name -> value map (for reports and tests).
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;
  // All gauges with their high-watermarks.
  [[nodiscard]] std::map<std::string, GaugeSnapshot> gauges() const;
  // All histograms, summarised (count/sum/min/max/mean + p50/p95/p99).
  [[nodiscard]] std::map<std::string, HistogramSnapshot> histograms() const;

  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hpcbb
