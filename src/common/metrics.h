// Metrics: counters and a log-linear histogram (HdrHistogram-style buckets)
// good enough for latency percentiles across nine decades of nanoseconds.
// Thread-safe: the KV store updates metrics from real threads in unit tests
// and benchmarks; the simulator updates them single-threaded.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hpcbb {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Log-linear histogram: 64 orders of magnitude (bit position), 16 linear
// sub-buckets each => <= 6.25% relative quantile error.
class Histogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  // q in [0, 1]; returns an upper bound of the bucket containing the quantile.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  static int bucket_index(std::uint64_t value) noexcept;
  static std::uint64_t bucket_upper_bound(int index) noexcept;

  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

// Named metric registry; experiments snapshot it into report rows.
class MetricRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  // All counters as a sorted name -> value map (for reports and tests).
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;

  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hpcbb
