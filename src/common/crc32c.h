// CRC32C (Castagnoli). HDFS checksums every data chunk; we do the same so
// corruption or replica-mixup bugs surface as checksum failures in tests
// rather than hiding behind timing-only modeling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace hpcbb {

// Extend `crc` (use 0 for a fresh checksum) over `data`.
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t n) noexcept;

inline std::uint32_t crc32c(std::span<const std::uint8_t> data) noexcept {
  return crc32c(0, data.data(), data.size());
}

inline std::uint32_t crc32c(std::string_view data) noexcept {
  return crc32c(0, data.data(), data.size());
}

}  // namespace hpcbb
