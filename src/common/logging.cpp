#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace hpcbb::log_internal {

std::atomic<int>& level_ref() noexcept {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}

namespace {
const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace hpcbb::log_internal
