// Minimal leveled logger. Simulation code logs with the simulated timestamp
// via the sim-aware wrapper in sim/; this is the raw sink.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace hpcbb {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log_internal {
std::atomic<int>& level_ref() noexcept;
void emit(LogLevel level, const std::string& message);
}  // namespace log_internal

inline void set_log_level(LogLevel level) noexcept {
  log_internal::level_ref().store(static_cast<int>(level),
                                  std::memory_order_relaxed);
}

inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         log_internal::level_ref().load(std::memory_order_relaxed);
}

// Stream-style: HPCBB_LOG(kInfo) << "x=" << x;  Evaluates operands only when
// the level is enabled.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_internal::emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace hpcbb

#define HPCBB_LOG(level)                                  \
  if (!::hpcbb::log_enabled(::hpcbb::LogLevel::level)) {} \
  else ::hpcbb::LogLine(::hpcbb::LogLevel::level)
