// Small string utilities used by path handling and config parsing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hpcbb {

std::vector<std::string> split(std::string_view s, char sep);

std::string_view trim(std::string_view s) noexcept;

bool starts_with(std::string_view s, std::string_view prefix) noexcept;

// FNV-1a, used for key -> shard hashing and path -> pattern seeds.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// "1.50 GB/s"-style human formatting for reports.
std::string format_bytes(std::uint64_t bytes);
std::string format_duration_ns(std::uint64_t t_ns);

// Inverse of format_duration_ns for config values: "100ms", "5us", "2s",
// "250ns", or a plain number (nanoseconds). Fractions ("1.5ms") are fine.
// Returns nullopt on malformed or negative input.
std::optional<std::uint64_t> parse_duration_ns(std::string_view s);

}  // namespace hpcbb
