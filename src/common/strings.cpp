#include "common/strings.h"

#include <array>
#include <charconv>
#include <cstdio>

namespace hpcbb {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {
std::string format_scaled(double value, const char* const* units,
                          std::size_t n_units, double base) {
  std::size_t u = 0;
  while (value >= base && u + 1 < n_units) {
    value /= base;
    ++u;
  }
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), value < 10 ? "%.2f %s" : "%.1f %s",
                value, units[u]);
  return buf.data();
}
}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  static const char* const kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  return format_scaled(static_cast<double>(bytes), kUnits, 5, 1024.0);
}

std::string format_duration_ns(std::uint64_t t_ns) {
  static const char* const kUnits[] = {"ns", "us", "ms", "s"};
  return format_scaled(static_cast<double>(t_ns), kUnits, 4, 1000.0);
}

std::optional<std::uint64_t> parse_duration_ns(std::string_view s) {
  s = trim(s);
  double scale = 1.0;
  const auto ends_with = [&s](std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
  };
  if (ends_with("ns")) {
    s.remove_suffix(2);
  } else if (ends_with("us")) {
    scale = 1e3;
    s.remove_suffix(2);
  } else if (ends_with("ms")) {
    scale = 1e6;
    s.remove_suffix(2);
  } else if (ends_with("s")) {
    scale = 1e9;
    s.remove_suffix(1);
  }
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size() || value < 0.0) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(value * scale + 0.5);
}

}  // namespace hpcbb
