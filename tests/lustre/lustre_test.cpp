// Lustre stack tests: MDS namespace + striping math + OSS contention +
// end-to-end FileSystem behaviour.
#include <gtest/gtest.h>

#include "testing/co_assert.h"
#include "common/units.h"
#include "lustre/client.h"
#include "lustre/mds.h"
#include "lustre/oss.h"
#include "sim/sync.h"

namespace hpcbb::lustre {
namespace {

using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::Simulation;
using sim::Task;

// Node layout: 0..3 clients, 4 = MDS, 5.. = OSS.
struct Rig {
  Simulation sim;
  net::Fabric fabric;
  net::Transport transport;
  net::RpcHub hub;
  std::vector<std::unique_ptr<Oss>> osses;
  std::unique_ptr<Mds> mds;
  LustreFileSystem fs;

  explicit Rig(std::uint32_t n_oss = 2, std::uint32_t osts_per_oss = 2)
      : fabric(sim, 5 + n_oss, net::FabricParams{}),
        transport(fabric, net::transport_preset(net::TransportKind::kRdma)),
        hub(transport),
        fs(hub, 4) {
    std::vector<OstTarget> targets;
    for (std::uint32_t i = 0; i < n_oss; ++i) {
      OssParams op;
      op.ost_count = osts_per_oss;
      osses.push_back(std::make_unique<Oss>(hub, 5 + i, op));
      for (std::uint32_t t = 0; t < osts_per_oss; ++t) {
        targets.push_back(OstTarget{5 + i, t});
      }
    }
    mds = std::make_unique<Mds>(hub, 4, targets, MdsParams{});
  }
};

TEST(LustreTest, WriteReadRoundTrip) {
  Rig rig;
  Bytes got;
  rig.sim.spawn([](Rig& r, Bytes& out) -> Task<void> {
    auto w = co_await r.fs.create("/data/f1", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(
        make_bytes(pattern_bytes(1, 0, 3 * MiB + 123))));
    CO_ASSERT_OK(co_await w.value()->close());

    auto rd = co_await r.fs.open("/data/f1", 1);  // another client reads
    CO_ASSERT_OK(rd);
    CO_ASSERT(rd.value()->size() == 3 * MiB + 123);
    auto data = co_await rd.value()->read(0, 3 * MiB + 123);
    CO_ASSERT_OK(data);
    out = std::move(data).value();
  }(rig, got));
  rig.sim.run();
  ASSERT_EQ(got.size(), 3 * MiB + 123);
  EXPECT_TRUE(verify_pattern(1, 0, got));
}

TEST(LustreTest, StripesSpreadAcrossOsts) {
  Rig rig(2, 2);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto w = co_await r.fs.create("/striped", 0);
    CO_ASSERT_OK(w);
    // 8 MiB over 4 OSTs at 1 MiB stripes: every OSS gets data.
    CO_ASSERT_OK(co_await w.value()->append(
        make_bytes(pattern_bytes(2, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
  }(rig));
  rig.sim.run();
  EXPECT_EQ(rig.osses[0]->used_bytes() + rig.osses[1]->used_bytes(), 8 * MiB);
  EXPECT_GT(rig.osses[0]->used_bytes(), 0u);
  EXPECT_GT(rig.osses[1]->used_bytes(), 0u);
}

TEST(LustreTest, PartialAndUnalignedReads) {
  Rig rig;
  Bytes got;
  rig.sim.spawn([](Rig& r, Bytes& out) -> Task<void> {
    auto w = co_await r.fs.create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(
        make_bytes(pattern_bytes(3, 0, 4 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
    auto rd = co_await r.fs.open("/f", 2);
    CO_ASSERT_OK(rd);
    // Crosses two stripe boundaries at an unaligned offset.
    auto data = co_await rd.value()->read(1 * MiB - 777, 2 * MiB + 1000);
    CO_ASSERT_OK(data);
    out = std::move(data).value();
  }(rig, got));
  rig.sim.run();
  ASSERT_EQ(got.size(), 2 * MiB + 1000);
  EXPECT_TRUE(verify_pattern(3, 1 * MiB - 777, got));
}

TEST(LustreTest, ReadPastEofTruncatesOrFails) {
  Rig rig;
  StatusCode past{};
  std::size_t short_read = 0;
  rig.sim.spawn([](Rig& r, StatusCode& p, std::size_t& n) -> Task<void> {
    auto w = co_await r.fs.create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(make_bytes(pattern_bytes(4, 0, 1000))));
    CO_ASSERT_OK(co_await w.value()->close());
    auto rd = co_await r.fs.open("/f", 0);
    CO_ASSERT_OK(rd);
    p = (co_await rd.value()->read(2000, 10)).code();
    auto data = co_await rd.value()->read(500, 10000);  // short read
    CO_ASSERT_OK(data);
    n = data.value().size();
  }(rig, past, short_read));
  rig.sim.run();
  EXPECT_EQ(past, StatusCode::kOutOfRange);
  EXPECT_EQ(short_read, 500u);
}

TEST(LustreTest, NamespaceOperations) {
  Rig rig;
  std::vector<std::string> listed;
  StatusCode dup{}, gone{};
  rig.sim.spawn([](Rig& r, std::vector<std::string>& ls, StatusCode& d,
                   StatusCode& g) -> Task<void> {
    for (const char* p : {"/a/x", "/a/y", "/b/z"}) {
      auto w = co_await r.fs.create(p, 0);
      CO_ASSERT_OK(w);
      CO_ASSERT_OK(co_await w.value()->close());
    }
    d = (co_await r.fs.create("/a/x", 0)).code();
    auto l = co_await r.fs.list("/a", 0);
    CO_ASSERT_OK(l);
    ls = l.value();
    CO_ASSERT_OK(co_await r.fs.remove("/a/x", 0));
    g = (co_await r.fs.open("/a/x", 0)).code();
  }(rig, listed, dup, gone));
  rig.sim.run();
  EXPECT_EQ(dup, StatusCode::kAlreadyExists);
  EXPECT_EQ(listed, (std::vector<std::string>{"/a/x", "/a/y"}));
  EXPECT_EQ(gone, StatusCode::kNotFound);
}

TEST(LustreTest, RemoveFreesOssSpace) {
  Rig rig;
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto w = co_await r.fs.create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(make_bytes(pattern_bytes(5, 0, 4 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
    CO_ASSERT_OK(co_await r.fs.remove("/f", 0));
  }(rig));
  rig.sim.run();
  EXPECT_EQ(rig.osses[0]->used_bytes(), 0u);
  EXPECT_EQ(rig.osses[1]->used_bytes(), 0u);
}

TEST(LustreTest, NoNodeLocalPlacement) {
  Rig rig;
  std::vector<std::vector<NodeId>> locs;
  rig.sim.spawn([](Rig& r, std::vector<std::vector<NodeId>>& out) -> Task<void> {
    auto w = co_await r.fs.create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(
        make_bytes(pattern_bytes(6, 0, 200 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
    auto l = co_await r.fs.block_locations("/f", 0);
    CO_ASSERT_OK(l);
    out = l.value();
  }(rig, locs));
  rig.sim.run();
  ASSERT_EQ(locs.size(), 2u);  // 200 MiB / 128 MiB nominal blocks
  for (const auto& nodes : locs) EXPECT_TRUE(nodes.empty());
}

TEST(LustreTest, SharedOssContentionSlowsConcurrentWriters) {
  // One writer alone vs four concurrent writers: aggregate bandwidth is
  // capped by the OSS disk arrays, so each of the four runs slower.
  auto run = [](int writers) {
    Rig rig(2, 2);
    for (int wtr = 0; wtr < writers; ++wtr) {
      rig.sim.spawn([](Rig& r, int id) -> Task<void> {
        auto w = co_await r.fs.create("/f" + std::to_string(id),
                                      static_cast<NodeId>(id));
        CO_ASSERT_OK(w);
        for (int i = 0; i < 8; ++i) {
          CO_ASSERT_OK(co_await w.value()->append(
              make_bytes(pattern_bytes(static_cast<std::uint64_t>(id), 0,
                                       8 * MiB))));
        }
        CO_ASSERT_OK(co_await w.value()->close());
      }(rig, wtr));
    }
    rig.sim.run();
    return rig.sim.now();
  };
  const auto t1 = run(1);
  const auto t4 = run(4);
  EXPECT_GT(static_cast<double>(t4), 2.0 * static_cast<double>(t1));
}

}  // namespace
}  // namespace hpcbb::lustre
