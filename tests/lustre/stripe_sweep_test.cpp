// Parameterized Lustre sweeps: correctness must hold for every stripe
// geometry, and bandwidth must scale with stripe width.
#include <gtest/gtest.h>

#include <tuple>

#include "testing/co_assert.h"
#include "common/units.h"
#include "lustre/client.h"
#include "lustre/mds.h"
#include "lustre/oss.h"
#include "sim/sync.h"

namespace hpcbb::lustre {
namespace {

using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::Simulation;
using sim::Task;

// (stripe_size_kib, stripe_count, oss_count)
using StripeParam = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

struct Rig {
  Simulation sim;
  net::Fabric fabric;
  net::Transport transport;
  net::RpcHub hub;
  std::vector<std::unique_ptr<Oss>> osses;
  std::unique_ptr<Mds> mds;
  std::unique_ptr<LustreFileSystem> fs;

  Rig(std::uint64_t stripe_size, std::uint32_t stripe_count,
      std::uint32_t oss_count)
      : fabric(sim, 4 + oss_count, net::FabricParams{}),
        transport(fabric, net::transport_preset(net::TransportKind::kRdma)),
        hub(transport) {
    std::vector<OstTarget> targets;
    for (std::uint32_t i = 0; i < oss_count; ++i) {
      OssParams op;
      op.ost_count = 2;
      osses.push_back(std::make_unique<Oss>(hub, 4 + i, op));
      for (std::uint32_t t = 0; t < 2; ++t) targets.push_back({4 + i, t});
    }
    MdsParams mp;
    mp.stripe_size = stripe_size;
    mp.default_stripe_count = stripe_count;
    mds = std::make_unique<Mds>(hub, 3, targets, mp);
    fs = std::make_unique<LustreFileSystem>(hub, 3);
  }
};

class StripeSweep : public ::testing::TestWithParam<StripeParam> {};

INSTANTIATE_TEST_SUITE_P(
    Geometries, StripeSweep,
    ::testing::Values(StripeParam{64, 1, 1}, StripeParam{64, 4, 2},
                      StripeParam{1024, 1, 2}, StripeParam{1024, 4, 2},
                      StripeParam{1024, 8, 4}, StripeParam{4096, 2, 3},
                      StripeParam{256, 3, 2}),
    [](const auto& param_info) {
      return "ss" + std::to_string(std::get<0>(param_info.param)) + "_sc" +
             std::to_string(std::get<1>(param_info.param)) + "_oss" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST_P(StripeSweep, RoundTripAcrossGeometry) {
  const auto [ss_kib, stripe_count, oss_count] = GetParam();
  Rig rig(static_cast<std::uint64_t>(ss_kib) * KiB, stripe_count, oss_count);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    // Size chosen to not divide evenly by any stripe geometry.
    const std::uint64_t size = 7 * MiB + 4321;
    auto writer = co_await r.fs->create("/f", 0);
    CO_ASSERT(writer.is_ok());
    // Append in awkward pieces.
    std::uint64_t off = 0;
    while (off < size) {
      const std::uint64_t n = std::min<std::uint64_t>(777 * KiB + 77,
                                                      size - off);
      CO_ASSERT_OK(co_await writer.value()->append(
          make_bytes(pattern_bytes(1, off, n))));
      off += n;
    }
    CO_ASSERT_OK(co_await writer.value()->close());

    auto reader = co_await r.fs->open("/f", 1);
    CO_ASSERT(reader.is_ok());
    CO_ASSERT(reader.value()->size() == size);
    // Whole-file and a handful of unaligned windows.
    auto whole = co_await reader.value()->read(0, size);
    CO_ASSERT(whole.is_ok());
    CO_ASSERT(verify_pattern(1, 0, whole.value()));
    for (const std::uint64_t woff : {1ull, 333333ull, 5ull * MiB + 13}) {
      const std::uint64_t wlen = std::min<std::uint64_t>(1 * MiB + 7,
                                                         size - woff);
      auto window = co_await reader.value()->read(woff, wlen);
      CO_ASSERT(window.is_ok());
      CO_ASSERT(verify_pattern(1, woff, window.value()));
    }
  }(rig));
  rig.sim.run();
}

TEST_P(StripeSweep, DataSpreadMatchesStripeCount) {
  const auto [ss_kib, stripe_count, oss_count] = GetParam();
  Rig rig(static_cast<std::uint64_t>(ss_kib) * KiB, stripe_count, oss_count);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto writer = co_await r.fs->create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(2, 0, 16 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
  }(rig));
  rig.sim.run();
  std::uint64_t total = 0;
  for (const auto& oss : rig.osses) total += oss->used_bytes();
  EXPECT_EQ(total, 16 * MiB);
}

TEST(StripeScalingTest, WiderStripesAreFaster) {
  // One writer, a single 32 MiB write (all stripe chunks issued in
  // parallel): striping over 8 OSTs on 4 OSS must beat a single OST.
  // (Small synchronous appends would hide the parallelism behind the
  // per-append round trip.)
  auto run = [](std::uint32_t stripes, std::uint32_t oss_count) {
    Rig rig(1 * MiB, stripes, oss_count);
    rig.sim.spawn([](Rig& r) -> Task<void> {
      auto writer = co_await r.fs->create("/f", 0);
      CO_ASSERT(writer.is_ok());
      CO_ASSERT_OK(co_await writer.value()->append(
          make_bytes(pattern_bytes(3, 0, 32 * MiB))));
      CO_ASSERT_OK(co_await writer.value()->close());
    }(rig));
    rig.sim.run();
    return rig.sim.now();
  };
  const auto narrow = run(1, 4);
  const auto wide = run(8, 4);
  EXPECT_GT(static_cast<double>(narrow), 1.8 * static_cast<double>(wide))
      << "narrow=" << narrow << " wide=" << wide;
}

}  // namespace
}  // namespace hpcbb::lustre
