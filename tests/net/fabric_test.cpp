#include "net/fabric.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/sync.h"

namespace hpcbb::net {
namespace {

using namespace hpcbb::duration;  // NOLINT
using sim::Simulation;
using sim::SimTime;
using sim::Task;

FabricParams test_params() {
  return FabricParams{.link_bytes_per_sec = 100 * MB,
                      .hop_latency_ns = 1 * us,
                      .loopback_bytes_per_sec = 1000 * MB,
                      .loopback_latency_ns = 100};
}

TEST(FabricTest, SingleMessageLatencyPlusSerialization) {
  Simulation sim;
  Fabric fabric(sim, 4, test_params());
  Status status = error(StatusCode::kInternal, "unset");
  sim.spawn([](Fabric& f, Status& out) -> Task<void> {
    out = co_await f.deliver(0, 1, 10 * MB);
  }(fabric, status));
  sim.run();
  EXPECT_TRUE(status.is_ok());
  // 10 MB at 100 MB/s = 100 ms serialization + 1 us hop.
  EXPECT_EQ(sim.now(), 100 * ms + 1 * us);
}

TEST(FabricTest, SerializationCountedOnceOnIdlePath) {
  // Cut-through: doubling hops must NOT double transfer time.
  Simulation sim;
  Fabric fabric(sim, 2, test_params());
  sim.spawn([](Fabric& f) -> Task<void> {
    (void)co_await f.deliver(0, 1, 100 * MB);
  }(fabric));
  sim.run();
  EXPECT_EQ(sim.now(), 1 * sec + 1 * us);
}

TEST(FabricTest, IncastQueuesOnReceiverDownlink) {
  Simulation sim;
  Fabric fabric(sim, 4, test_params());
  std::vector<SimTime> completions;
  for (NodeId src = 0; src < 3; ++src) {
    sim.spawn([](Fabric& f, NodeId s, std::vector<SimTime>& out) -> Task<void> {
      (void)co_await f.deliver(s, 3, 10 * MB);
      out.push_back(f.simulation().now());
    }(fabric, src, completions));
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  // Three senders to one receiver: downlink serializes 100 ms each.
  EXPECT_EQ(completions[0], 100 * ms + 1 * us);
  EXPECT_EQ(completions[1], 200 * ms + 1 * us);
  EXPECT_EQ(completions[2], 300 * ms + 1 * us);
}

TEST(FabricTest, DistinctPairsDoNotContend) {
  Simulation sim;
  Fabric fabric(sim, 4, test_params());
  std::vector<SimTime> completions;
  sim.spawn([](Fabric& f, std::vector<SimTime>& out) -> Task<void> {
    (void)co_await f.deliver(0, 1, 10 * MB);
    out.push_back(f.simulation().now());
  }(fabric, completions));
  sim.spawn([](Fabric& f, std::vector<SimTime>& out) -> Task<void> {
    (void)co_await f.deliver(2, 3, 10 * MB);
    out.push_back(f.simulation().now());
  }(fabric, completions));
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], completions[1]);  // full bisection bandwidth
}

TEST(FabricTest, FlowRateCapSlowsTransfer) {
  Simulation sim;
  Fabric fabric(sim, 2, test_params());
  sim.spawn([](Fabric& f) -> Task<void> {
    (void)co_await f.deliver(0, 1, 10 * MB, 50 * MB);  // capped at half rate
  }(fabric));
  sim.run();
  EXPECT_EQ(sim.now(), 200 * ms + 1 * us);
}

TEST(FabricTest, LoopbackBypassesLinks) {
  Simulation sim;
  Fabric fabric(sim, 2, test_params());
  sim.spawn([](Fabric& f) -> Task<void> {
    (void)co_await f.deliver(0, 0, 10 * MB);
  }(fabric));
  sim.run();
  // 10 MB at 1000 MB/s loopback = 10 ms + 100 ns.
  EXPECT_EQ(sim.now(), 10 * ms + 100);
}

TEST(FabricTest, DownNodeRefusesTraffic) {
  Simulation sim;
  Fabric fabric(sim, 2, test_params());
  fabric.set_node_up(1, false);
  Status status;
  sim.spawn([](Fabric& f, Status& out) -> Task<void> {
    out = co_await f.deliver(0, 1, 1 * MB);
  }(fabric, status));
  sim.run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(fabric.bytes_received(1), 0u);
}

TEST(FabricTest, NodeRecovers) {
  Simulation sim;
  Fabric fabric(sim, 2, test_params());
  fabric.set_node_up(1, false);
  fabric.set_node_up(1, true);
  Status status = error(StatusCode::kInternal, "unset");
  sim.spawn([](Fabric& f, Status& out) -> Task<void> {
    out = co_await f.deliver(0, 1, 1 * MB);
  }(fabric, status));
  sim.run();
  EXPECT_TRUE(status.is_ok());
}

TEST(FabricTest, ByteAccounting) {
  Simulation sim;
  Fabric fabric(sim, 3, test_params());
  sim.spawn([](Fabric& f) -> Task<void> {
    (void)co_await f.deliver(0, 1, 5 * MB);
    (void)co_await f.deliver(0, 2, 3 * MB);
    (void)co_await f.deliver(1, 0, 2 * MB);
  }(fabric));
  sim.run();
  EXPECT_EQ(fabric.bytes_sent(0), 8 * MB);
  EXPECT_EQ(fabric.bytes_received(0), 2 * MB);
  EXPECT_EQ(fabric.bytes_received(1), 5 * MB);
  EXPECT_EQ(fabric.bytes_received(2), 3 * MB);
}

TEST(FabricTest, CpuChargeSerializes) {
  Simulation sim;
  Fabric fabric(sim, 2, test_params());
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Fabric& f, std::vector<SimTime>& out) -> Task<void> {
      co_await f.charge_cpu(0, 10 * us);
      out.push_back(f.simulation().now());
    }(fabric, done));
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], 10 * us);
  EXPECT_EQ(done[1], 20 * us);
  EXPECT_EQ(done[2], 30 * us);
}

}  // namespace
}  // namespace hpcbb::net
