// RetryPolicy + RpcHub resilience semantics: bounded retries, per-call
// timeouts, deterministic backoff, idempotency gating, and the
// unbind/rebind lifecycle a restarting service depends on.
#include "net/retry.h"

#include <gtest/gtest.h>

#include "testing/co_assert.h"
#include "common/properties.h"
#include "common/units.h"
#include "net/rpc.h"
#include "sim/sync.h"

namespace hpcbb::net {
namespace {

using namespace hpcbb::duration;  // NOLINT
using sim::Simulation;
using sim::Task;

struct EchoRequest {
  std::string text;
  [[nodiscard]] std::uint64_t wire_size() const { return 48 + text.size(); }
};

struct EchoReply {
  std::string text;
  [[nodiscard]] std::uint64_t wire_size() const { return 48 + text.size(); }
};

struct Rig {
  Simulation sim;
  Fabric fabric{sim, 4, FabricParams{}};
  Transport transport{fabric, transport_preset(TransportKind::kRdma)};
  RpcHub hub{transport};
};

RpcHub::Handler echo_handler() {
  return typed_handler<EchoRequest>(
      [](std::shared_ptr<const EchoRequest> req) -> Task<RpcResponse> {
        auto reply = std::make_shared<EchoReply>();
        reply->text = req->text;
        const std::uint64_t wire = reply->wire_size();
        co_return rpc_ok<EchoReply>(std::move(reply), wire);
      });
}

TEST(RetryPolicyTest, DefaultIsNoop) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.is_noop());
  RetryPolicy with_retries;
  with_retries.max_attempts = 2;
  EXPECT_FALSE(with_retries.is_noop());
  RetryPolicy with_timeout;
  with_timeout.timeout_ns = 1 * ms;
  EXPECT_FALSE(with_timeout.is_noop());
}

TEST(RetryPolicyTest, SingleAttemptWithTimeoutIsNotNoop) {
  // The noop test is "no retries AND no deadline": a single-attempt policy
  // with a timeout must still take the resilient path so the deadline is
  // enforced, and a zero-timeout single-attempt policy must not.
  RetryPolicy one_shot_deadline;
  one_shot_deadline.max_attempts = 1;
  one_shot_deadline.timeout_ns = 1 * ms;
  EXPECT_FALSE(one_shot_deadline.is_noop());
  RetryPolicy one_shot_no_deadline;
  one_shot_no_deadline.max_attempts = 1;
  one_shot_no_deadline.timeout_ns = 0;
  EXPECT_TRUE(one_shot_no_deadline.is_noop());
  RetryPolicy zero_attempts;  // degenerate but must still count as no-op
  zero_attempts.max_attempts = 0;
  EXPECT_TRUE(zero_attempts.is_noop());
}

TEST(RetryPolicyTest, SingleAttemptStillEnforcesDeadline) {
  // max_attempts=1 means no retries, but a nonzero timeout must still cut
  // a stalled handler off at the deadline instead of waiting it out.
  Rig rig;
  RetryPolicy policy;
  policy.max_attempts = 1;
  policy.timeout_ns = 1 * ms;
  rig.hub.set_retry_policy(policy);
  rig.hub.bind(1, 7000, typed_handler<EchoRequest>(
      [&rig](std::shared_ptr<const EchoRequest>) -> Task<RpcResponse> {
        co_await rig.sim.delay(50 * ms);
        co_return rpc_error(error(StatusCode::kInternal, "too late"));
      }));

  Status status;
  sim::SimTime returned_at = 0;
  rig.sim.spawn([](Rig& r, Status& out, sim::SimTime& at) -> Task<void> {
    auto req = std::make_shared<const EchoRequest>(EchoRequest{"x"});
    out = (co_await r.hub.call<EchoReply>(0, 1, 7000, req)).status();
    at = r.sim.now();
  }(rig, status, returned_at));
  rig.sim.run();
  EXPECT_EQ(status.code(), StatusCode::kTimeout);
  // The caller got its verdict at the deadline, not after the handler's
  // 50ms stall (the orphaned handler still drains before run() returns).
  EXPECT_LT(returned_at, 10 * ms);
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.timeouts"), 1u);
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.attempts"), 0u);
  // A single-shot policy never "exhausts retries": that counter is
  // reserved for policies that actually had retries to spend.
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.exhausted"), 0u);
}

TEST(RetryPolicyTest, RetriesSpanUnbindRebindRestartWindow) {
  // The shape a master restart produces: the service was up, goes down
  // (unbind), and rebinds a few ms later. Calls issued inside the window
  // must ride the retry loop across the gap and land on the new binding.
  Rig rig;
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.backoff_base_ns = 500 * us;
  policy.backoff_max_ns = 2 * ms;
  rig.hub.set_retry_policy(policy);
  rig.hub.bind(1, 7000, echo_handler());

  rig.sim.spawn([](Rig& r) -> Task<void> {
    co_await r.sim.delay(1 * ms);
    r.hub.unbind(1, 7000);  // service goes down for a restart...
    co_await r.sim.delay(4 * ms);
    r.hub.bind(1, 7000, echo_handler());  // ...and comes back
  }(rig));

  bool ok = false;
  rig.sim.spawn([](Rig& r, bool& out) -> Task<void> {
    co_await r.sim.delay(2 * ms);  // issue mid-outage
    auto req = std::make_shared<const EchoRequest>(EchoRequest{"again"});
    auto result = co_await r.hub.call<EchoReply>(0, 1, 7000, req);
    out = result.is_ok() && result.value()->text == "again";
  }(rig, ok));
  rig.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_GE(rig.sim.metrics().counter_value("net.retry.attempts"), 1u);
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.recovered"), 1u);
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.exhausted"), 0u);
}

TEST(RetryPolicyTest, NoopPolicyMatchesRawCallTiming) {
  // With the (default) no-op hub policy, call() must produce the exact same
  // event sequence as the raw path — resilience wiring costs nothing until
  // someone opts in.
  sim::SimTime raw_time = 0;
  sim::SimTime policy_time = 0;
  for (int pass = 0; pass < 2; ++pass) {
    Rig rig;
    if (pass == 1) rig.hub.set_retry_policy(RetryPolicy{});  // explicit no-op
    rig.hub.bind(1, 7000, echo_handler());
    rig.sim.spawn([](Rig& r) -> Task<void> {
      auto req = std::make_shared<const EchoRequest>(EchoRequest{"ping"});
      auto result = co_await r.hub.call<EchoReply>(0, 1, 7000, req);
      CO_ASSERT(result.is_ok());
    }(rig));
    rig.sim.run();
    (pass == 0 ? raw_time : policy_time) = rig.sim.now();
    EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.attempts"), 0u);
  }
  EXPECT_EQ(raw_time, policy_time);
}

TEST(RetryPolicyTest, RetriesTransientFailureToSuccess) {
  // Nothing is bound when the call starts; the service comes up shortly
  // after. Retries must carry the call through to success.
  Rig rig;
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.backoff_base_ns = 500 * us;
  rig.hub.set_retry_policy(policy);

  rig.sim.spawn([](Rig& r) -> Task<void> {
    co_await r.sim.delay(1 * ms);
    r.hub.bind(1, 7000, echo_handler());
  }(rig));

  bool ok = false;
  rig.sim.spawn([](Rig& r, bool& out) -> Task<void> {
    auto req = std::make_shared<const EchoRequest>(EchoRequest{"ping"});
    auto result = co_await r.hub.call<EchoReply>(0, 1, 7000, req);
    out = result.is_ok();
  }(rig, ok));
  rig.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_GE(rig.sim.metrics().counter_value("net.retry.attempts"), 1u);
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.recovered"), 1u);
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.exhausted"), 0u);
}

TEST(RetryPolicyTest, ExhaustsAfterMaxAttempts) {
  Rig rig;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_ns = 100 * us;
  rig.hub.set_retry_policy(policy);

  Status status;
  rig.sim.spawn([](Rig& r, Status& out) -> Task<void> {
    auto req = std::make_shared<const EchoRequest>(EchoRequest{"x"});
    out = (co_await r.hub.call<EchoReply>(0, 1, 7000, req)).status();
  }(rig, status));
  rig.sim.run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // 3 attempts = the first try plus 2 retries, then exhaustion.
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.attempts"), 2u);
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.exhausted"), 1u);
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.recovered"), 0u);
}

TEST(RetryPolicyTest, PerCallTimeoutFires) {
  // The handler stalls well past the deadline: each attempt must time out
  // instead of hanging, and the final verdict is kTimeout.
  Rig rig;
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.timeout_ns = 1 * ms;
  policy.backoff_base_ns = 100 * us;
  rig.hub.set_retry_policy(policy);
  rig.hub.bind(1, 7000, typed_handler<EchoRequest>(
      [&rig](std::shared_ptr<const EchoRequest>) -> Task<RpcResponse> {
        co_await rig.sim.delay(50 * ms);
        co_return rpc_error(error(StatusCode::kInternal, "too late"));
      }));

  Status status;
  rig.sim.spawn([](Rig& r, Status& out) -> Task<void> {
    auto req = std::make_shared<const EchoRequest>(EchoRequest{"x"});
    out = (co_await r.hub.call<EchoReply>(0, 1, 7000, req)).status();
  }(rig, status));
  rig.sim.run();
  EXPECT_EQ(status.code(), StatusCode::kTimeout);
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.timeouts"), 2u);
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.exhausted"), 1u);
}

TEST(RetryPolicyTest, NonIdempotentNotRetriedAfterDelivery) {
  // The handler executes but reports a transient failure: a non-idempotent
  // call must NOT re-attempt (the side effect may have landed), while an
  // idempotent one retries through to success.
  for (const bool idempotent : {false, true}) {
    Rig rig;
    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.backoff_base_ns = 100 * us;
    rig.hub.set_retry_policy(policy);
    int invocations = 0;
    rig.hub.bind(1, 7000, typed_handler<EchoRequest>(
        [&invocations](std::shared_ptr<const EchoRequest> req)
            -> Task<RpcResponse> {
          ++invocations;
          if (invocations < 3) {
            co_return rpc_error(error(StatusCode::kUnavailable, "busy"));
          }
          auto reply = std::make_shared<EchoReply>();
          reply->text = req->text;
          const std::uint64_t wire = reply->wire_size();
          co_return rpc_ok<EchoReply>(std::move(reply), wire);
        }));

    Status status;
    rig.sim.spawn([](Rig& r, bool idem, Status& out) -> Task<void> {
      auto req = std::make_shared<const EchoRequest>(EchoRequest{"x"});
      CallOptions options;
      options.idempotent = idem;
      out = (co_await r.hub.call<EchoReply>(0, 1, 7000, req, options))
                .status();
    }(rig, idempotent, status));
    rig.sim.run();
    if (idempotent) {
      EXPECT_TRUE(status.is_ok());
      EXPECT_EQ(invocations, 3);
    } else {
      EXPECT_EQ(status.code(), StatusCode::kUnavailable);
      EXPECT_EQ(invocations, 1);  // one attempt, no duplicated side effect
      EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.attempts"), 0u);
    }
  }
}

TEST(RetryPolicyTest, NonIdempotentRetriedWhenRequestNeverDelivered) {
  // Connection refused (nothing bound) means the handler cannot have run,
  // so even a non-idempotent call may safely retry.
  Rig rig;
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_base_ns = 200 * us;
  rig.hub.set_retry_policy(policy);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    co_await r.sim.delay(1 * ms);
    r.hub.bind(1, 7000, echo_handler());
  }(rig));

  bool ok = false;
  rig.sim.spawn([](Rig& r, bool& out) -> Task<void> {
    auto req = std::make_shared<const EchoRequest>(EchoRequest{"x"});
    CallOptions options;
    options.idempotent = false;
    out = (co_await r.hub.call<EchoReply>(0, 1, 7000, req, options)).is_ok();
  }(rig, ok));
  rig.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(rig.sim.metrics().counter_value("net.retry.recovered"), 1u);
}

TEST(RetryPolicyTest, BackoffDeterministicBoundedAndCapped) {
  RetryPolicy policy;
  policy.backoff_base_ns = 1 * ms;
  policy.backoff_max_ns = 8 * ms;
  policy.backoff_multiplier = 2.0;
  // No backoff before the first retry's predecessor.
  EXPECT_EQ(policy.backoff_ns(1, 0, 1, 7000), 0u);
  // Deterministic: same (attempt, src, dst, port) -> same jittered value.
  const sim::SimTime first = policy.backoff_ns(2, 0, 1, 7000);
  EXPECT_EQ(first, policy.backoff_ns(2, 0, 1, 7000));
  // Bounded: base <= value <= base + base/2 (jitter is at most half).
  EXPECT_GE(first, 1 * ms);
  EXPECT_LE(first, 1 * ms + 500 * us);
  // Different endpoints decorrelate.
  EXPECT_NE(first, policy.backoff_ns(2, 2, 3, 7001));
  // Exponential growth capped at backoff_max (+ its jitter).
  const sim::SimTime late = policy.backoff_ns(30, 0, 1, 7000);
  EXPECT_GE(late, 8 * ms);
  EXPECT_LE(late, 8 * ms + 4 * ms);
}

TEST(RetryPolicyTest, FromPropertiesReadsKnobs) {
  Properties props;
  props.set("net.retry.max_attempts", "4");
  props.set("net.retry.timeout_us", "2500");
  props.set("net.retry.backoff_us", "300");
  props.set("net.retry.backoff_max_us", "10000");
  props.set("net.retry.multiplier", "3.0");
  props.set("net.retry.non_idempotent", "true");
  const RetryPolicy policy = RetryPolicy::from_properties(props);
  EXPECT_EQ(policy.max_attempts, 4u);
  EXPECT_EQ(policy.timeout_ns, 2500 * us);
  EXPECT_EQ(policy.backoff_base_ns, 300 * us);
  EXPECT_EQ(policy.backoff_max_ns, 10 * ms);
  EXPECT_DOUBLE_EQ(policy.backoff_multiplier, 3.0);
  EXPECT_TRUE(policy.retry_non_idempotent);
  // Untouched knobs keep their defaults.
  EXPECT_EQ(policy.jitter_seed, RetryPolicy{}.jitter_seed);
}

TEST(RpcHubTest, RebindAfterUnbindServesCalls) {
  // The stop -> restart -> rebind lifecycle: a restarted service must be
  // able to reclaim its endpoint and serve again.
  Rig rig;
  rig.hub.bind(1, 7000, echo_handler());
  EXPECT_TRUE(rig.hub.is_bound(1, 7000));
  rig.hub.unbind(1, 7000);
  EXPECT_FALSE(rig.hub.is_bound(1, 7000));
  rig.hub.bind(1, 7000, echo_handler());  // must not assert/throw
  EXPECT_TRUE(rig.hub.is_bound(1, 7000));

  bool ok = false;
  rig.sim.spawn([](Rig& r, bool& out) -> Task<void> {
    auto req = std::make_shared<const EchoRequest>(EchoRequest{"back"});
    auto result = co_await r.hub.call<EchoReply>(0, 1, 7000, req);
    out = result.is_ok() && result.value()->text == "back";
  }(rig, ok));
  rig.sim.run();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace hpcbb::net
