#include "net/transport.h"

#include <gtest/gtest.h>

#include "testing/co_assert.h"
#include "common/units.h"
#include "sim/sync.h"

namespace hpcbb::net {
namespace {

using namespace hpcbb::duration;  // NOLINT
using sim::Simulation;
using sim::SimTime;
using sim::Task;

struct Rig {
  Simulation sim;
  Fabric fabric;
  explicit Rig(std::uint32_t nodes = 4) : fabric(sim, nodes, FabricParams{}) {}

  // Run `bytes` through `transport` from 0 to 1 and return elapsed ns.
  SimTime timed_send(Transport& transport, std::uint64_t bytes) {
    const SimTime start = sim.now();
    sim.spawn([](Transport& t, std::uint64_t b) -> Task<void> {
      Status st = co_await t.send(0, 1, b);
      CO_ASSERT(st.is_ok());
    }(transport, bytes));
    sim.run();
    return sim.now() - start;
  }
};

TEST(TransportTest, PresetsHaveExpectedShape) {
  const auto rdma = transport_preset(TransportKind::kRdma);
  const auto ipoib = transport_preset(TransportKind::kIpoib);
  const auto tenge = transport_preset(TransportKind::kTenGigE);
  const auto ge = transport_preset(TransportKind::kGigE);

  // Latency ordering: RDMA << IPoIB < 10GigE < 1GigE.
  EXPECT_LT(rdma.msg_latency_ns, ipoib.msg_latency_ns / 5);
  EXPECT_LT(ipoib.msg_latency_ns, tenge.msg_latency_ns);
  EXPECT_LT(tenge.msg_latency_ns, ge.msg_latency_ns);
  // Bandwidth ordering: RDMA >> IPoIB ~ 10GigE >> 1GigE.
  EXPECT_GT(rdma.flow_rate_cap, 3 * ipoib.flow_rate_cap);
  EXPECT_GT(ipoib.flow_rate_cap, 5 * ge.flow_rate_cap);
  // Only RDMA is one-sided capable.
  EXPECT_TRUE(rdma.one_sided_capable);
  EXPECT_FALSE(ipoib.one_sided_capable);
  EXPECT_FALSE(tenge.one_sided_capable);
  EXPECT_FALSE(ge.one_sided_capable);
}

TEST(TransportTest, SmallMessageLatencyDominatedByStack) {
  Rig rig;
  Transport rdma(rig.fabric, transport_preset(TransportKind::kRdma));
  const SimTime t = rig.timed_send(rdma, 64);
  // Small RDMA message: ~1-3 us total.
  EXPECT_LT(t, 4 * us);
  EXPECT_GT(t, 1 * us);
}

TEST(TransportTest, RdmaFasterThanIpoibForLargeMessages) {
  Rig rig1, rig2;
  Transport rdma(rig1.fabric, transport_preset(TransportKind::kRdma));
  Transport ipoib(rig2.fabric, transport_preset(TransportKind::kIpoib));
  const SimTime t_rdma = rig1.timed_send(rdma, 4 * MiB);
  const SimTime t_ipoib = rig2.timed_send(ipoib, 4 * MiB);
  const double speedup =
      static_cast<double>(t_ipoib) / static_cast<double>(t_rdma);
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 6.0);
}

TEST(TransportTest, OneSidedReadMovesDataWithoutRemoteCpu) {
  Rig rig;
  Transport rdma(rig.fabric, transport_preset(TransportKind::kRdma));
  rig.sim.spawn([](Transport& t) -> Task<void> {
    Status st = co_await t.rdma_read(0, 1, 1 * MiB);
    CO_ASSERT(st.is_ok());
  }(rdma));
  rig.sim.run();
  // Remote CPU untouched: charge_cpu queue for node 1 never used. We verify
  // indirectly by issuing CPU work on node 1 afterwards — it starts at once.
  SimTime cpu_done = 0;
  rig.sim.spawn([](Rig& r, SimTime& out) -> Task<void> {
    const SimTime begin = r.sim.now();
    co_await r.fabric.charge_cpu(1, 10);
    out = r.sim.now() - begin;
  }(rig, cpu_done));
  rig.sim.run();
  EXPECT_EQ(cpu_done, 10u);
}

TEST(TransportTest, OneSidedOpsRejectedOnSocketTransports) {
  Rig rig;
  Transport ipoib(rig.fabric, transport_preset(TransportKind::kIpoib));
  Status read_status, write_status;
  rig.sim.spawn([](Transport& t, Status& rs, Status& ws) -> Task<void> {
    rs = co_await t.rdma_read(0, 1, 1024);
    ws = co_await t.rdma_write(0, 1, 1024);
  }(ipoib, read_status, write_status));
  rig.sim.run();
  EXPECT_EQ(read_status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(write_status.code(), StatusCode::kFailedPrecondition);
}

TEST(TransportTest, SendToDownNodeFails) {
  Rig rig;
  Transport rdma(rig.fabric, transport_preset(TransportKind::kRdma));
  rig.fabric.set_node_up(1, false);
  Status status;
  rig.sim.spawn([](Transport& t, Status& out) -> Task<void> {
    out = co_await t.send(0, 1, 1024);
  }(rdma, status));
  rig.sim.run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST(TransportTest, RdmaWriteThroughputApproachesLinkRate) {
  Rig rig;
  Transport rdma(rig.fabric, transport_preset(TransportKind::kRdma));
  constexpr std::uint64_t kTotal = 256 * MiB;
  rig.sim.spawn([](Transport& t) -> Task<void> {
    for (int i = 0; i < 64; ++i) {
      Status st = co_await t.rdma_write(0, 1, kTotal / 64);
      CO_ASSERT(st.is_ok());
    }
  }(rdma));
  rig.sim.run();
  const double gbps = static_cast<double>(kTotal) / 1e9 /
                      ns_to_sec(rig.sim.now());
  EXPECT_GT(gbps, 4.5);   // close to the 6 GB/s FDR cap
  EXPECT_LT(gbps, 6.05);
}

}  // namespace
}  // namespace hpcbb::net
