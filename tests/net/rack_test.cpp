// Two-level (leaf/spine) topology: rack mapping, intra- vs inter-rack
// latency, and oversubscription on the shared rack uplinks.
#include <gtest/gtest.h>

#include "common/units.h"
#include "net/fabric.h"
#include "sim/sync.h"

namespace hpcbb::net {
namespace {

using namespace hpcbb::duration;  // NOLINT
using sim::Simulation;
using sim::SimTime;
using sim::Task;

FabricParams racked(std::uint32_t nodes_per_rack,
                    std::uint64_t rack_uplink) {
  FabricParams p;
  p.link_bytes_per_sec = 100 * MB;
  p.hop_latency_ns = 1 * us;
  p.nodes_per_rack = nodes_per_rack;
  p.rack_uplink_bytes_per_sec = rack_uplink;
  p.spine_latency_ns = 2 * us;
  return p;
}

TEST(RackTest, RackMapping) {
  Simulation sim;
  Fabric fabric(sim, 10, racked(4, 400 * MB));
  EXPECT_EQ(fabric.rack_of(0), 0u);
  EXPECT_EQ(fabric.rack_of(3), 0u);
  EXPECT_EQ(fabric.rack_of(4), 1u);
  EXPECT_EQ(fabric.rack_of(9), 2u);
  EXPECT_EQ(fabric.rack_count(), 3u);
}

TEST(RackTest, FlatFabricIsOneRack) {
  Simulation sim;
  Fabric fabric(sim, 16, FabricParams{});
  EXPECT_EQ(fabric.rack_count(), 1u);
  EXPECT_EQ(fabric.rack_of(15), 0u);
}

TEST(RackTest, CrossRackPaysSpineLatency) {
  Simulation sim;
  Fabric fabric(sim, 8, racked(4, 1000 * MB));  // uplink not a bottleneck
  SimTime intra = 0, inter = 0;
  sim.spawn([](Fabric& f, SimTime& t_intra, SimTime& t_inter) -> Task<void> {
    SimTime t0 = f.simulation().now();
    (void)co_await f.deliver(0, 1, 64);  // same rack
    t_intra = f.simulation().now() - t0;
    t0 = f.simulation().now();
    (void)co_await f.deliver(0, 5, 64);  // other rack
    t_inter = f.simulation().now() - t0;
  }(fabric, intra, inter));
  sim.run();
  EXPECT_GT(inter, intra);
  // Extra cost is the two spine legs (leaf->spine and spine->leaf).
  EXPECT_NEAR(static_cast<double>(inter - intra), 2.0 * 2.0 * us, 1.0 * us);
}

TEST(RackTest, IntraRackUnaffectedByRackUplink) {
  Simulation sim;
  Fabric fabric(sim, 8, racked(4, 1 * MB));  // absurdly slow uplink
  sim.spawn([](Fabric& f) -> Task<void> {
    (void)co_await f.deliver(0, 1, 10 * MB);  // same rack
  }(fabric));
  sim.run();
  // 10 MB at 100 MB/s node links: 100 ms (+1 us); the 1 MB/s rack uplink
  // must not be involved.
  EXPECT_LT(sim.now(), 102 * ms);
}

TEST(RackTest, OversubscriptionThrottlesCrossRackAggregate) {
  // 4 senders in rack 0 -> 4 receivers in rack 1. Node links are 100 MB/s
  // each (400 aggregate) but the rack uplink is 200 MB/s: cross-rack
  // aggregate must be uplink-bound.
  Simulation sim;
  Fabric fabric(sim, 8, racked(4, 200 * MB));
  for (NodeId s = 0; s < 4; ++s) {
    sim.spawn([](Fabric& f, NodeId src) -> Task<void> {
      (void)co_await f.deliver(src, src + 4, 10 * MB);
    }(fabric, s));
  }
  sim.run();
  const double agg_mbps = throughput_mbps(40 * MB, sim.now());
  EXPECT_LT(agg_mbps, 210.0);
  EXPECT_GT(agg_mbps, 150.0);
}

TEST(RackTest, SameRackAggregateUsesFullBisection) {
  // The same four flows kept inside one rack run at node-link speed.
  Simulation sim;
  Fabric fabric(sim, 8, racked(8, 200 * MB));  // everything in rack 0
  for (NodeId s = 0; s < 4; ++s) {
    sim.spawn([](Fabric& f, NodeId src) -> Task<void> {
      (void)co_await f.deliver(src, src + 4, 10 * MB);
    }(fabric, s));
  }
  sim.run();
  const double agg_mbps = throughput_mbps(40 * MB, sim.now());
  EXPECT_GT(agg_mbps, 380.0);
}

}  // namespace
}  // namespace hpcbb::net
