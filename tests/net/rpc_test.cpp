#include "net/rpc.h"

#include <gtest/gtest.h>

#include "testing/co_assert.h"
#include "common/units.h"
#include "sim/sync.h"

namespace hpcbb::net {
namespace {

using namespace hpcbb::duration;  // NOLINT
using sim::Simulation;
using sim::Task;

struct EchoRequest {
  std::string text;
  [[nodiscard]] std::uint64_t wire_size() const { return 48 + text.size(); }
};

struct EchoReply {
  std::string text;
  [[nodiscard]] std::uint64_t wire_size() const { return 48 + text.size(); }
};

struct Rig {
  Simulation sim;
  Fabric fabric{sim, 4, FabricParams{}};
  Transport transport{fabric, transport_preset(TransportKind::kRdma)};
  RpcHub hub{transport};
};

TEST(RpcTest, RoundTripTypedCall) {
  Rig rig;
  rig.hub.bind(1, 7000, typed_handler<EchoRequest>(
      [](std::shared_ptr<const EchoRequest> req) -> Task<RpcResponse> {
        auto reply = std::make_shared<EchoReply>();
        reply->text = req->text + "!";
        const std::uint64_t wire = reply->wire_size();
        co_return rpc_ok<EchoReply>(std::move(reply), wire);
      }));

  std::string got;
  rig.sim.spawn([](Rig& r, std::string& out) -> Task<void> {
    auto req = std::make_shared<const EchoRequest>(EchoRequest{"ping"});
    auto result = co_await r.hub.call<EchoReply>(0, 1, 7000, req);
    CO_ASSERT(result.is_ok());
    out = result.value()->text;
  }(rig, got));
  rig.sim.run();
  EXPECT_EQ(got, "ping!");
  EXPECT_GT(rig.sim.now(), 0u);  // wire time elapsed
}

TEST(RpcTest, UnboundPortRefusesConnection) {
  Rig rig;
  Status status;
  rig.sim.spawn([](Rig& r, Status& out) -> Task<void> {
    auto req = std::make_shared<const EchoRequest>(EchoRequest{"x"});
    auto result = co_await r.hub.call<EchoReply>(0, 1, 7000, req);
    out = result.status();
  }(rig, status));
  rig.sim.run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST(RpcTest, DownNodeUnavailable) {
  Rig rig;
  rig.hub.bind(1, 7000, typed_handler<EchoRequest>(
      [](std::shared_ptr<const EchoRequest>) -> Task<RpcResponse> {
        co_return RpcResponse{Status::ok(), nullptr, 48};
      }));
  rig.fabric.set_node_up(1, false);
  Status status;
  rig.sim.spawn([](Rig& r, Status& out) -> Task<void> {
    auto req = std::make_shared<const EchoRequest>(EchoRequest{"x"});
    out = (co_await r.hub.call<EchoReply>(0, 1, 7000, req)).status();
  }(rig, status));
  rig.sim.run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST(RpcTest, ApplicationErrorPropagates) {
  Rig rig;
  rig.hub.bind(1, 7000, typed_handler<EchoRequest>(
      [](std::shared_ptr<const EchoRequest>) -> Task<RpcResponse> {
        co_return rpc_error(error(StatusCode::kNotFound, "nope"));
      }));
  Status status;
  rig.sim.spawn([](Rig& r, Status& out) -> Task<void> {
    auto req = std::make_shared<const EchoRequest>(EchoRequest{"x"});
    out = (co_await r.hub.call<EchoReply>(0, 1, 7000, req)).status();
  }(rig, status));
  rig.sim.run();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(RpcTest, HandlerCanDelaySimulatingServiceTime) {
  Rig rig;
  rig.hub.bind(1, 7000, typed_handler<EchoRequest>(
      [&rig](std::shared_ptr<const EchoRequest>) -> Task<RpcResponse> {
        co_await rig.sim.delay(5 * ms);
        co_return RpcResponse{Status::ok(), nullptr, 48};
      }));
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto req = std::make_shared<const EchoRequest>(EchoRequest{"x"});
    (void)co_await r.hub.call<EchoReply>(0, 1, 7000, req);
  }(rig));
  rig.sim.run();
  EXPECT_GE(rig.sim.now(), 5 * ms);
  EXPECT_LT(rig.sim.now(), 6 * ms);
}

TEST(RpcTest, ConcurrentCallsInterleave) {
  Rig rig;
  int handled = 0;
  rig.hub.bind(1, 7000, typed_handler<EchoRequest>(
      [&](std::shared_ptr<const EchoRequest>) -> Task<RpcResponse> {
        co_await rig.sim.delay(10 * ms);
        ++handled;
        co_return RpcResponse{Status::ok(), nullptr, 48};
      }));
  for (NodeId src : {0u, 2u, 3u}) {
    rig.sim.spawn([](Rig& r, NodeId s) -> Task<void> {
      auto req = std::make_shared<const EchoRequest>(EchoRequest{"x"});
      (void)co_await r.hub.call<EchoReply>(s, 1, 7000, req);
    }(rig, src));
  }
  rig.sim.run();
  EXPECT_EQ(handled, 3);
  // Handlers ran concurrently (each a separate coroutine chain), so total
  // time is ~10 ms, not 30 ms.
  EXPECT_LT(rig.sim.now(), 12 * ms);
}

TEST(RpcTest, UnbindStopsService) {
  Rig rig;
  rig.hub.bind(1, 7000, typed_handler<EchoRequest>(
      [](std::shared_ptr<const EchoRequest>) -> Task<RpcResponse> {
        co_return RpcResponse{Status::ok(), nullptr, 48};
      }));
  EXPECT_TRUE(rig.hub.is_bound(1, 7000));
  rig.hub.unbind(1, 7000);
  EXPECT_FALSE(rig.hub.is_bound(1, 7000));
}

}  // namespace
}  // namespace hpcbb::net
