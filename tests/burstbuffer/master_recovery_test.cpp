// Master crash-restart recovery tests: write-ahead journal replay,
// checkpoint + tail recovery, double-crash during recovery, clients riding
// out the outage on the retry policy, the journal-off SPOF baseline, and
// the zero-metadata-loss invariant with a replicated KV tier (R=2).
#include <gtest/gtest.h>

#include "testing/co_assert.h"
#include "common/units.h"
#include "cluster/cluster.h"
#include "sim/sync.h"

namespace hpcbb {
namespace {

using namespace hpcbb::duration;  // NOLINT
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::FsKind;
using sim::Task;

// Small cluster with metadata journaling armed. Checkpoints are off by
// default (interval 0, no size trigger) so each test controls exactly what
// recovery has to replay; the retry policy lets clients ride out the
// master's downtime (the master's ports are unbound and its fabric node is
// down, so calls fail kUnavailable quickly and back off).
ClusterConfig md_config(bb::Scheme scheme) {
  ClusterConfig config;
  config.compute_nodes = 4;
  config.kv_servers = 2;
  config.oss_count = 2;
  config.block_size = 8 * MiB;
  config.kv_memory_per_server = 128 * MiB;
  config.scheme = scheme;
  config.bb_md.journal = true;
  config.bb_md.checkpoint_interval_ns = 0;
  config.bb_md.journal_max_bytes = 0;
  config.retry.max_attempts = 12;
  config.retry.backoff_base_ns = 1 * ms;
  config.retry.backoff_max_ns = 20 * ms;
  return config;
}

Task<void> write_file(Cluster& c, const std::string& path, std::uint64_t seed,
                      std::uint64_t bytes) {
  fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
  auto writer = co_await fs.create(path, 0);
  CO_ASSERT(writer.is_ok());
  CO_ASSERT_OK(co_await writer.value()->append(
      make_bytes(pattern_bytes(seed, 0, bytes))));
  CO_ASSERT_OK(co_await writer.value()->close());
}

Task<void> check_file(Cluster& c, const std::string& path, std::uint64_t seed,
                      std::uint64_t bytes, bool& ok) {
  auto reader = co_await c.filesystem(FsKind::kBurstBuffer).open(path, 1);
  CO_ASSERT(reader.is_ok());
  auto data = co_await reader.value()->read(0, bytes);
  CO_ASSERT(data.is_ok());
  CO_ASSERT(data.value().size() == bytes);
  ok = ok && verify_pattern(seed, 0, data.value());
}

TEST(MasterRecoveryTest, CrashBeforeFlushReplaysJournalAndLosesNothing) {
  // Two acked-but-unflushed blocks die with the master's volatile state.
  // Recovery replays the journal (no checkpoint exists), re-arms the dirty
  // blocks, and the flush pipeline drains them — zero loss, both readable.
  Cluster cluster(md_config(bb::Scheme::kAsync));
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    co_await write_file(c, "/a", 21, 8 * MiB);
    co_await write_file(c, "/b", 22, 8 * MiB);
    c.injector().crash_master_target(0);
    CO_ASSERT(c.bb_master().crashed());
    CO_ASSERT(c.bb_master().dirty_blocks() == 0u);  // volatile state gone
    co_await c.sim().delay(5 * ms);
    c.injector().restart_master_target(0);
    co_await c.bb_master().wait_recovered();
    CO_ASSERT(c.bb_master().restarts() == 1u);
    CO_ASSERT(c.bb_master().recovered_files() == 2u);
    CO_ASSERT(c.bb_master().replayed_records() > 0u);
    co_await c.bb_master().wait_all_flushed();
    ok = true;
    co_await check_file(c, "/a", 21, 8 * MiB, ok);
    co_await check_file(c, "/b", 22, 8 * MiB, ok);
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
  EXPECT_EQ(cluster.bb_master().lost_blocks(), 0u);
  EXPECT_EQ(cluster.bb_master().dirty_blocks(), 0u);
  EXPECT_EQ(cluster.sim().metrics().counter_value("bb.md.crashes"), 1u);
  EXPECT_EQ(cluster.sim().metrics().counter_value("bb.md.restarts"), 1u);
  EXPECT_GT(cluster.sim().metrics().counter_value("bb.md.journal_records"),
            0u);
}

TEST(MasterRecoveryTest, CrashBetweenCheckpointAndTailReplaysOnlyTheTail) {
  // A checkpoint snapshots file /a; file /b lands in the journal tail
  // afterwards. Recovery installs the checkpoint and replays only the tail
  // records — both files survive, and the replay count stays below the
  // total record count (the checkpoint absorbed /a's records).
  ClusterConfig config = md_config(bb::Scheme::kAsync);
  config.bb_md.checkpoint_interval_ns = 5 * ms;
  Cluster cluster(config);
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    co_await write_file(c, "/a", 31, 8 * MiB);
    co_await c.bb_master().wait_all_flushed();
    // Let the checkpoint timer fire and absorb /a's records.
    while (c.sim().metrics().counter_value("bb.md.checkpoints") == 0u) {
      co_await c.sim().delay(5 * ms);
    }
    const std::uint64_t total_records =
        c.sim().metrics().counter_value("bb.md.journal_records");
    co_await write_file(c, "/b", 32, 8 * MiB);
    c.injector().crash_master_target(0);
    co_await c.sim().delay(5 * ms);
    c.injector().restart_master_target(0);
    co_await c.bb_master().wait_recovered();
    CO_ASSERT(c.bb_master().recovered_files() == 2u);
    CO_ASSERT(c.bb_master().replayed_records() > 0u);
    CO_ASSERT(c.bb_master().replayed_records() < total_records);
    co_await c.bb_master().wait_all_flushed();
    c.bb_master().stop_heartbeat();  // stop the checkpoint timer
    ok = true;
    co_await check_file(c, "/a", 31, 8 * MiB, ok);
    co_await check_file(c, "/b", 32, 8 * MiB, ok);
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
  EXPECT_EQ(cluster.bb_master().lost_blocks(), 0u);
  EXPECT_GE(cluster.sim().metrics().counter_value("bb.md.checkpoints"), 1u);
  EXPECT_GT(cluster.sim().metrics().counter_value("bb.md.journal_truncated"),
            0u);
}

TEST(MasterRecoveryTest, DoubleCrashDuringRecoveryStillConverges) {
  // The master crashes again while the first recovery is still loading the
  // journal from the KV tier. The generation bump retires the first
  // recovery task mid-flight; the second restart runs recovery to
  // completion from the same durable state.
  Cluster cluster(md_config(bb::Scheme::kAsync));
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    co_await write_file(c, "/a", 41, 8 * MiB);
    c.injector().crash_master_target(0);
    co_await c.sim().delay(2 * ms);
    c.injector().restart_master_target(0);
    // Recovery is now reading `!md:` keys from the KV servers; crash again
    // before it can possibly finish.
    co_await c.sim().delay(20 * us);
    c.injector().crash_master_target(0);
    co_await c.sim().delay(2 * ms);
    c.injector().restart_master_target(0);
    co_await c.bb_master().wait_recovered();
    CO_ASSERT(!c.bb_master().crashed());
    CO_ASSERT(c.bb_master().recovered_files() >= 1u);
    co_await c.bb_master().wait_all_flushed();
    ok = true;
    co_await check_file(c, "/a", 41, 8 * MiB, ok);
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
  EXPECT_EQ(cluster.bb_master().lost_blocks(), 0u);
  EXPECT_EQ(cluster.sim().metrics().counter_value("bb.md.crashes"), 2u);
}

TEST(MasterRecoveryTest, WriterRidesOutScheduledMasterCrash) {
  // The injector's faults.master.* schedule kills the master mid-write.
  // The writer's control-plane RPCs fail kUnavailable, back off on the
  // retry policy, and succeed against the recovered master; the idempotent
  // create-token / expected-block-index protocol absorbs any replays.
  ClusterConfig config = md_config(bb::Scheme::kAsync);
  config.faults.enabled = true;
  config.faults.master_first_ns = 2 * ms;
  config.faults.master_downtime_ns = 10 * ms;
  config.faults.master_count = 1;
  Cluster cluster(config);
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    co_await write_file(c, "/ride", 51, 24 * MiB);  // 3 blocks, crash lands inside
    co_await c.bb_master().wait_recovered();
    co_await c.bb_master().wait_all_flushed();
    ok = true;
    co_await check_file(c, "/ride", 51, 24 * MiB, ok);
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
  EXPECT_EQ(cluster.bb_master().lost_blocks(), 0u);
  EXPECT_EQ(cluster.bb_master().restarts(), 1u);
  EXPECT_EQ(
      cluster.sim().metrics().counter_value("faults.injected{kind=master_crash}"),
      1u);
  EXPECT_GT(cluster.sim().metrics().counter_value("net.retry.attempts"), 0u);
  EXPECT_GT(cluster.sim().metrics().counter_value("net.retry.recovered"), 0u);
}

TEST(MasterRecoveryTest, JournalOffCrashIsTheSeedSinglePointOfFailure) {
  // With bb.md.journal off (the default) a master crash loses every file's
  // metadata even though the data survives in the KV tier — the seed
  // behaviour this subsystem exists to fix. The restarted master serves
  // fresh writes.
  ClusterConfig config = md_config(bb::Scheme::kAsync);
  config.bb_md.journal = false;
  Cluster cluster(config);
  bool checked = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    co_await write_file(c, "/gone", 61, 8 * MiB);
    co_await c.bb_master().wait_all_flushed();
    c.injector().crash_master_target(0);
    co_await c.sim().delay(5 * ms);
    c.injector().restart_master_target(0);
    co_await c.bb_master().wait_recovered();
    CO_ASSERT(c.bb_master().journal() == nullptr);
    CO_ASSERT(c.bb_master().recovered_files() == 0u);
    CO_ASSERT(c.bb_master().replayed_records() == 0u);
    auto reader = co_await c.filesystem(FsKind::kBurstBuffer).open("/gone", 1);
    CO_ASSERT(!reader.is_ok());  // metadata is gone
    co_await write_file(c, "/fresh", 62, 8 * MiB);
    co_await c.bb_master().wait_all_flushed();
    ok = true;
    co_await check_file(c, "/fresh", 62, 8 * MiB, ok);
  }(cluster, checked));
  cluster.sim().run();
  EXPECT_TRUE(checked);
  EXPECT_EQ(cluster.sim().metrics().counter_value("bb.md.journal_records"),
            0u);
  EXPECT_EQ(cluster.sim().metrics().counter_value("bb.md.restarts"), 1u);
}

TEST(MasterRecoveryTest, ZeroMetadataLossWithReplicatedJournalR2) {
  // The invariant the issue names: with R=2 the `!md:` journal keys are
  // replicated, so losing one KV server AND the master at once still
  // recovers every file — journal reads fail over to the surviving
  // replica, and so do the data-chunk reads afterwards. Flushers homed on
  // the dead KV node park (their RPCs all fail at the source) and hand
  // flush work to workers on live nodes instead of burning retry budget.
  ClusterConfig config = md_config(bb::Scheme::kAsync);
  config.kv_servers = 3;  // a live re-replication target must exist
  config.kv_client.replication_factor = 2;
  config.kv_client.failover = true;
  config.kv_client.ack = kv::AckMode::kAll;
  config.bb_heartbeat_interval_ns = 5 * ms;
  Cluster cluster(config);
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    co_await write_file(c, "/a", 71, 8 * MiB);
    co_await write_file(c, "/b", 72, 8 * MiB);
    c.injector().crash_target(0);         // one KV server dies...
    c.injector().crash_master_target(0);  // ...and the master with it
    co_await c.sim().delay(5 * ms);
    c.injector().restart_master_target(0);
    co_await c.bb_master().wait_recovered();
    CO_ASSERT(c.bb_master().recovered_files() == 2u);
    co_await c.bb_master().wait_all_flushed();
    ok = true;
    co_await check_file(c, "/a", 71, 8 * MiB, ok);
    co_await check_file(c, "/b", 72, 8 * MiB, ok);
    c.bb_master().stop_heartbeat();
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
  EXPECT_EQ(cluster.bb_master().lost_blocks(), 0u);
  EXPECT_EQ(cluster.bb_master().recovered_files(), 2u);
}

}  // namespace
}  // namespace hpcbb
