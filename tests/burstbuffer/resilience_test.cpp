// Resilience integration tests over the full cluster: crash-during-flush
// loss accounting per scheme, the KV server restart lifecycle, the master's
// heartbeat failure detector, and degraded-mode write-through durability.
#include <gtest/gtest.h>

#include "testing/co_assert.h"
#include "common/units.h"
#include "cluster/cluster.h"
#include "sim/sync.h"

namespace hpcbb {
namespace {

using namespace hpcbb::duration;  // NOLINT
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::FsKind;
using sim::Task;

ClusterConfig small_config(bb::Scheme scheme) {
  ClusterConfig config;
  config.compute_nodes = 4;
  config.kv_servers = 2;
  config.oss_count = 2;
  config.block_size = 8 * MiB;
  config.kv_memory_per_server = 128 * MiB;
  config.scheme = scheme;
  return config;
}

// Write one 8 MiB block through the BB, then crash the whole KV tier the
// moment the burst is acked — before the flush pipeline can drain it.
Task<void> write_then_crash(Cluster& c) {
  fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
  auto writer = co_await fs.create("/burst", 0);
  CO_ASSERT(writer.is_ok());
  CO_ASSERT_OK(co_await writer.value()->append(
      make_bytes(pattern_bytes(11, 0, 8 * MiB))));
  CO_ASSERT_OK(co_await writer.value()->close());
  for (std::uint32_t i = 0; i < c.kv_server_count(); ++i) {
    c.injector().crash_target(i);
  }
  co_await c.bb_master().wait_all_flushed();
}

TEST(ResilienceTest, CrashDuringFlushAsyncLosesTheBlock) {
  // BB-Async acks at buffer speed; the only copy dies with the KV tier.
  Cluster cluster(small_config(bb::Scheme::kAsync));
  cluster.sim().spawn(write_then_crash(cluster));
  cluster.sim().run();
  EXPECT_EQ(cluster.bb_master().lost_blocks(), 1u);
  EXPECT_EQ(cluster.bb_master().recovered_blocks(), 0u);
  EXPECT_EQ(cluster.bb_master().flushed_blocks(), 0u);
  EXPECT_EQ(cluster.bb_master().dirty_blocks(), 0u);
}

TEST(ResilienceTest, CrashDuringFlushLocalRecoversFromReplica) {
  // BB-Local keeps a node-local replica: when a buffer server dies with
  // chunks of a dirty block, the flusher falls back to the replica and the
  // block still reaches Lustre. (Crash one server, not the whole tier: the
  // flush workers live on the KV server nodes, so a full-tier crash also
  // removes every flusher — nothing left to run the recovery.)
  Cluster cluster(small_config(bb::Scheme::kLocal));
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
    auto writer = co_await fs.create("/burst", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(11, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    c.injector().crash_target(1);
    co_await c.bb_master().wait_all_flushed();
    CO_ASSERT(c.bb_master().lost_blocks() == 0u);
    CO_ASSERT(c.bb_master().recovered_blocks() == 1u);
    auto reader = co_await c.filesystem(FsKind::kBurstBuffer).open(
        "/burst", 1);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(data.is_ok());
    ok = verify_pattern(11, 0, data.value());
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
}

TEST(ResilienceTest, CrashDuringFlushSyncLosesNothing) {
  // BB-Sync (the FT scheme) establishes durability on the write path: total
  // buffer loss right after the ack costs nothing and the file stays
  // readable from Lustre.
  Cluster cluster(small_config(bb::Scheme::kSync));
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    co_await write_then_crash(c);
    CO_ASSERT(c.bb_master().lost_blocks() == 0u);
    auto reader = co_await c.filesystem(FsKind::kBurstBuffer).open(
        "/burst", 1);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(data.is_ok());
    ok = verify_pattern(11, 0, data.value());
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
  EXPECT_EQ(cluster.bb_master().lost_blocks(), 0u);
  EXPECT_EQ(cluster.bb_master().flushed_blocks(), 1u);
}

TEST(ResilienceTest, KvServerRestartLifecycle) {
  // crash(): ports unbound, contents gone, callers refused.
  // restart(): empty store, rebound ports, incarnation bump, counter tick.
  Cluster cluster(small_config(bb::Scheme::kAsync));
  bool post_restart_write_ok = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
    auto writer = co_await fs.create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(12, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    co_await c.bb_master().wait_all_flushed();
    CO_ASSERT(c.kv_server(0).store().stats().bytes +
                  c.kv_server(1).store().stats().bytes >
              0u);
    for (std::uint32_t i = 0; i < c.kv_server_count(); ++i) {
      kv::Server& server = c.kv_server(i);
      CO_ASSERT(server.incarnation() == 1u);
      server.crash();
      CO_ASSERT(server.is_crashed());
      server.restart();
      CO_ASSERT(!server.is_crashed());
      CO_ASSERT(server.incarnation() == 2u);
      CO_ASSERT(server.store().stats().bytes == 0u);  // restarted empty
      CO_ASSERT(server.store().stats().pinned_bytes == 0u);
    }
    // The rebound endpoints serve a fresh write end-to-end.
    auto w2 = co_await fs.create("/g", 1);
    CO_ASSERT(w2.is_ok());
    Status st = co_await w2.value()->append(
        make_bytes(pattern_bytes(13, 0, 8 * MiB)));
    if (st.is_ok()) st = co_await w2.value()->close();
    ok = st.is_ok();
  }(cluster, post_restart_write_ok));
  cluster.sim().run();
  EXPECT_TRUE(post_restart_write_ok);
  EXPECT_EQ(cluster.sim().metrics().counter_value("kv.restarts"), 2u);
}

TEST(ResilienceTest, HeartbeatDetectorLifecycle) {
  // One KV server goes down: consecutive missed probes walk it through
  // suspect -> dead, the master enters degraded mode, and the restarted
  // server (new incarnation) is re-admitted, closing the degraded window.
  ClusterConfig config = small_config(bb::Scheme::kAsync);
  config.bb_heartbeat_interval_ns = 5 * ms;
  config.bb_suspect_after = 2;
  config.bb_dead_after = 4;
  Cluster cluster(config);
  cluster.sim().spawn([](Cluster& c) -> Task<void> {
    sim::Simulation& sim = c.sim();
    bb::Master& master = c.bb_master();
    co_await sim.delay(12 * ms);  // a couple of healthy probe rounds
    CO_ASSERT(master.peer_state(0) == bb::PeerState::kLive);
    CO_ASSERT(master.live_kv_count() == 2u);
    CO_ASSERT(!master.degraded());

    c.injector().crash_target(0);
    co_await sim.delay(2 * 5 * ms + 1 * ms);  // two missed probes
    CO_ASSERT(master.peer_state(0) == bb::PeerState::kSuspect);
    CO_ASSERT(master.degraded());
    CO_ASSERT(master.suspect_kv_count() == 1u);
    CO_ASSERT(sim.metrics().gauge_value("bb.kv_suspect") == 1u);
    CO_ASSERT(sim.metrics().gauge_value("bb.kv_live") == 1u);

    co_await sim.delay(2 * 5 * ms);  // two more misses -> dead
    CO_ASSERT(master.peer_state(0) == bb::PeerState::kDead);
    CO_ASSERT(master.suspect_kv_count() == 0u);
    CO_ASSERT(sim.metrics().counter_value("bb.detector.dead") == 1u);

    c.injector().restart_target(0);
    co_await sim.delay(2 * 5 * ms);  // next probe sees the new incarnation
    CO_ASSERT(master.peer_state(0) == bb::PeerState::kLive);
    CO_ASSERT(!master.degraded());
    CO_ASSERT(master.live_kv_count() == 2u);
    CO_ASSERT(sim.metrics().counter_value("bb.detector.rejoined") == 1u);
    CO_ASSERT(sim.metrics().counter_value("bb.degraded.entered") == 1u);
    master.stop_heartbeat();
  }(cluster));
  cluster.sim().run();
  // The degraded window closed exactly once.
  const auto windows = cluster.sim().metrics().histograms();
  const auto it = windows.find("bb.degraded_window_ns");
  ASSERT_NE(it, windows.end());
  EXPECT_EQ(it->second.count, 1u);
}

TEST(ResilienceTest, DegradedModeWritesThroughToLustre) {
  // With the detector degraded, BB-Async blocks are written through to
  // Lustre on the write path — so even total buffer loss right after the
  // ack cannot lose them.
  ClusterConfig config = small_config(bb::Scheme::kAsync);
  config.bb_heartbeat_interval_ns = 5 * ms;
  config.kv_client.failover = true;
  config.retry.max_attempts = 4;
  config.retry.backoff_base_ns = 200 * us;
  Cluster cluster(config);
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    sim::Simulation& sim = c.sim();
    c.injector().crash_target(0);
    // Wait until the detector has noticed (suspect already degrades).
    while (!c.bb_master().degraded()) co_await sim.delay(5 * ms);

    fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
    auto writer = co_await fs.create("/deg", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(14, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    // Durable at ack: no dirty window even for the Async scheme.
    CO_ASSERT(c.bb_master().dirty_blocks() == 0u);
    c.injector().crash_target(1);  // now the whole buffer tier is gone
    auto reader = co_await fs.open("/deg", 1);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(data.is_ok());
    ok = verify_pattern(14, 0, data.value());
    c.bb_master().stop_heartbeat();
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
  EXPECT_EQ(cluster.bb_master().lost_blocks(), 0u);
}

}  // namespace
}  // namespace hpcbb
