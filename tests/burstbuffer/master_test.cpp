// Direct unit tests of the burst-buffer master's control plane: admission
// throttling, reservation accounting across delete/complete paths, and
// flush telemetry.
#include <gtest/gtest.h>

#include <map>

#include "testing/co_assert.h"
#include "common/units.h"
#include "burstbuffer/filesystem.h"
#include "kvstore/server.h"
#include "lustre/mds.h"
#include "lustre/oss.h"
#include "sim/sync.h"

namespace hpcbb::bb {
namespace {

using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::Simulation;
using sim::SimTime;
using sim::Task;

struct Rig {
  Simulation sim;
  net::Fabric fabric{sim, 8, net::FabricParams{}};
  net::Transport transport{fabric,
                           net::transport_preset(net::TransportKind::kRdma)};
  net::RpcHub hub{transport};
  std::unique_ptr<lustre::Oss> oss;
  std::unique_ptr<lustre::Mds> mds;
  std::unique_ptr<kv::Server> server;
  std::unique_ptr<Master> master;
  std::unique_ptr<BurstBufferFileSystem> fs;

  explicit Rig(std::uint64_t capacity, std::uint64_t block_size = 4 * MiB) {
    oss = std::make_unique<lustre::Oss>(hub, 5, lustre::OssParams{});
    mds = std::make_unique<lustre::Mds>(
        hub, 4, std::vector<lustre::OstTarget>{{5, 0}, {5, 1}},
        lustre::MdsParams{});
    kv::ServerParams sp;
    sp.store.memory_budget = 256 * MiB;
    server = std::make_unique<kv::Server>(hub, 6, sp);
    MasterParams mp;
    mp.block_size = block_size;
    mp.chunk_size = 1 * MiB;
    mp.buffer_capacity_bytes = capacity;
    master = std::make_unique<Master>(hub, 3,
                                      std::vector<NodeId>{6}, 4,
                                      Scheme::kAsync, mp);
    BbFsParams fp;
    fp.scheme = Scheme::kAsync;
    fp.block_size = block_size;
    fp.chunk_size = 1 * MiB;
    fs = std::make_unique<BurstBufferFileSystem>(
        hub, 3, std::vector<NodeId>{6}, 4,
        std::map<NodeId, NodeAgent*>{}, fp);
  }
};

TEST(BbMasterTest, AdmissionThrottlesDirtyFootprint) {
  // Capacity 8 MiB at fraction 0.7 with 4 MiB blocks: at most one block can
  // hold a reservation at a time, so a 16 MiB write is paced by flushes.
  Rig rig(/*capacity=*/8 * MiB);
  SimTime unthrottled = 0;
  {
    Rig fat(/*capacity=*/0);  // admission disabled
    fat.sim.spawn([](Rig& r, SimTime& out) -> Task<void> {
      auto writer = co_await r.fs->create("/f", 0);
      CO_ASSERT(writer.is_ok());
      CO_ASSERT_OK(co_await writer.value()->append(
          make_bytes(pattern_bytes(1, 0, 16 * MiB))));
      CO_ASSERT_OK(co_await writer.value()->close());
      out = r.sim.now();
    }(fat, unthrottled));
    fat.sim.run();
  }
  SimTime ack_time = 0;
  rig.sim.spawn([](Rig& r, SimTime& out) -> Task<void> {
    auto writer = co_await r.fs->create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(1, 0, 16 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    out = r.sim.now();
  }(rig, ack_time));
  rig.sim.run();
  // Throttled run acks later than the unthrottled one, but completes, and
  // everything still flushes with no losses.
  EXPECT_GT(ack_time, unthrottled);
  EXPECT_EQ(rig.master->lost_blocks(), 0u);
  EXPECT_EQ(rig.master->dirty_blocks(), 0u);
  EXPECT_EQ(rig.master->flushed_bytes(), 16 * MiB);
}

TEST(BbMasterTest, DeleteWhileDirtyReleasesReservations) {
  Rig rig(/*capacity=*/64 * MiB);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto writer = co_await r.fs->create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(2, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    // Delete immediately: some blocks may still be dirty/flushing.
    CO_ASSERT_OK(co_await r.fs->remove("/f", 0));
    // A new file must still be fully writable (reservations released).
    auto writer2 = co_await r.fs->create("/g", 0);
    CO_ASSERT(writer2.is_ok());
    CO_ASSERT_OK(co_await writer2.value()->append(
        make_bytes(pattern_bytes(3, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await writer2.value()->close());
    co_await r.master->wait_all_flushed();
  }(rig));
  rig.sim.run();
  EXPECT_EQ(rig.master->dirty_blocks(), 0u);
  EXPECT_EQ(rig.master->lost_blocks(), 0u);
}

TEST(BbMasterTest, FlushTelemetryAddsUp) {
  Rig rig(/*capacity=*/64 * MiB);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    for (int f = 0; f < 3; ++f) {
      auto writer = co_await r.fs->create("/f" + std::to_string(f), 0);
      CO_ASSERT(writer.is_ok());
      CO_ASSERT_OK(co_await writer.value()->append(make_bytes(
          pattern_bytes(static_cast<std::uint64_t>(f), 0, 6 * MiB))));
      CO_ASSERT_OK(co_await writer.value()->close());
    }
    co_await r.master->wait_all_flushed();
  }(rig));
  rig.sim.run();
  // 3 files x 6 MiB at 4 MiB blocks = 3 x 2 blocks.
  EXPECT_EQ(rig.master->flushed_blocks(), 6u);
  EXPECT_EQ(rig.master->flushed_bytes(), 3 * 6 * MiB);
  EXPECT_EQ(rig.master->lost_blocks(), 0u);
  EXPECT_EQ(rig.master->recovered_blocks(), 0u);
}

TEST(BbMasterTest, TraceSpansCoverEveryFlushedBlock) {
  Rig rig(/*capacity=*/64 * MiB);
  sim::TraceRecorder trace(rig.sim);
  rig.master->set_trace(&trace);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto writer = co_await r.fs->create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(4, 0, 12 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    co_await r.master->wait_all_flushed();
  }(rig));
  rig.sim.run();
  // Per flushed block (12 MiB / 4 MiB blocks = 3): one "wait.flush_queue"
  // queue-dwell span plus one "flush.block_N" service span.
  EXPECT_EQ(trace.open_span_count(), 0u);
  std::size_t flush_spans = 0;
  std::size_t wait_spans = 0;
  for (const auto& span : trace.spans()) {
    EXPECT_EQ(span.category, "bb");
    if (span.name.starts_with("flush.")) {
      ++flush_spans;
      EXPECT_GT(span.end_ns, span.begin_ns);
    } else {
      EXPECT_EQ(span.name, "wait.flush_queue");
      ++wait_spans;
      EXPECT_GE(span.end_ns, span.begin_ns);
    }
  }
  EXPECT_EQ(flush_spans, 3u);
  EXPECT_EQ(wait_spans, 3u);
}

}  // namespace
}  // namespace hpcbb::bb
