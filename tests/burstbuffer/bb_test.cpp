// Burst-buffer tests: the three schemes' write/read paths, flush pipeline,
// durability semantics, capacity backpressure, and crash recovery.
#include <gtest/gtest.h>

#include <map>

#include "testing/co_assert.h"
#include "common/units.h"
#include "burstbuffer/filesystem.h"
#include "kvstore/server.h"
#include "lustre/mds.h"
#include "lustre/oss.h"
#include "sim/sync.h"

namespace hpcbb::bb {
namespace {

using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::Simulation;
using sim::SimTime;
using sim::Task;

// Node layout: 0..3 compute, 4 = BB master, 5 = Lustre MDS, 6..7 OSS,
// 8..9 KV burst-buffer servers.
struct Rig {
  static constexpr NodeId kMasterNode = 4;
  static constexpr NodeId kMdsNode = 5;

  Simulation sim;
  net::Fabric fabric{sim, 10, net::FabricParams{}};
  net::Transport transport{fabric,
                           net::transport_preset(net::TransportKind::kRdma)};
  net::RpcHub hub{transport};
  std::vector<std::unique_ptr<lustre::Oss>> osses;
  std::unique_ptr<lustre::Mds> mds;
  std::vector<std::unique_ptr<kv::Server>> kv_servers;
  std::vector<NodeId> kv_nodes;
  std::vector<std::unique_ptr<NodeAgent>> agents;
  std::unique_ptr<Master> master;
  std::unique_ptr<BurstBufferFileSystem> fs;

  explicit Rig(Scheme scheme, std::uint64_t kv_mem_per_server = 64 * MiB,
               std::uint64_t block_size = 8 * MiB) {
    for (const NodeId n : {6u, 7u}) {
      osses.push_back(
          std::make_unique<lustre::Oss>(hub, n, lustre::OssParams{}));
    }
    std::vector<lustre::OstTarget> targets;
    for (const NodeId n : {6u, 7u}) {
      for (std::uint32_t t = 0; t < 2; ++t) targets.push_back({n, t});
    }
    mds = std::make_unique<lustre::Mds>(hub, kMdsNode, targets,
                                        lustre::MdsParams{});
    for (const NodeId n : {8u, 9u}) {
      kv::ServerParams sp;
      sp.store.memory_budget = kv_mem_per_server;
      sp.store.shard_count = 2;
      kv_servers.push_back(std::make_unique<kv::Server>(hub, n, sp));
      kv_nodes.push_back(n);
    }
    std::map<NodeId, NodeAgent*> agent_map;
    if (scheme == Scheme::kLocal) {
      for (NodeId n = 0; n < 4; ++n) {
        agents.push_back(std::make_unique<NodeAgent>(hub, n, AgentParams{}));
        agent_map[n] = agents.back().get();
      }
    }
    MasterParams mp;
    mp.block_size = block_size;
    mp.chunk_size = 1 * MiB;
    mp.buffer_capacity_bytes = kv_mem_per_server * 2;
    master = std::make_unique<Master>(hub, kMasterNode, kv_nodes, kMdsNode,
                                      scheme, mp);
    BbFsParams fp;
    fp.scheme = scheme;
    fp.block_size = block_size;
    fp.chunk_size = 1 * MiB;
    fs = std::make_unique<BurstBufferFileSystem>(hub, kMasterNode, kv_nodes,
                                                 kMdsNode, agent_map, fp);
  }

  Rig(const Rig&) = delete;
  Rig& operator=(const Rig&) = delete;

  // Write a pattern file and close it; returns sim time consumed.
  void write_file(const std::string& path, std::uint64_t seed,
                  std::uint64_t size, NodeId client = 0) {
    sim.spawn([](Rig& r, std::string p, std::uint64_t sd, std::uint64_t sz,
                 NodeId c) -> Task<void> {
      auto w = co_await r.fs->create(p, c);
      CO_ASSERT_OK(w);
      CO_ASSERT_OK(co_await w.value()->append(make_bytes(pattern_bytes(sd, 0, sz))));
      CO_ASSERT_OK(co_await w.value()->close());
    }(*this, path, seed, size, client));
    sim.run();
  }

  Bytes read_file(const std::string& path, std::uint64_t size,
                  NodeId client = 0) {
    Bytes got;
    sim.spawn([](Rig& r, std::string p, std::uint64_t sz, NodeId c,
                 Bytes& out) -> Task<void> {
      auto rd = co_await r.fs->open(p, c);
      CO_ASSERT_OK(rd);
      auto data = co_await rd.value()->read(0, sz);
      CO_ASSERT_OK(data);
      out = std::move(data).value();
    }(*this, path, size, client, got));
    sim.run();
    return got;
  }

  void drain_flushes() {
    sim.spawn([](Rig& r) -> Task<void> {
      co_await r.master->wait_all_flushed();
    }(*this));
    sim.run();
  }
};

TEST(SchemeTest, Names) {
  EXPECT_EQ(to_string(Scheme::kAsync), "BB-Async");
  EXPECT_EQ(to_string(Scheme::kSync), "BB-Sync");
  EXPECT_EQ(to_string(Scheme::kLocal), "BB-Local");
}

class BbSchemeTest : public ::testing::TestWithParam<Scheme> {};

INSTANTIATE_TEST_SUITE_P(AllSchemes, BbSchemeTest,
                         ::testing::Values(Scheme::kAsync, Scheme::kSync,
                                           Scheme::kLocal),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param))
                               .substr(3);
                         });

TEST_P(BbSchemeTest, WriteReadRoundTrip) {
  Rig rig(GetParam());
  rig.write_file("/f", 1, 20 * MiB + 99);
  const Bytes got = rig.read_file("/f", 20 * MiB + 99);
  ASSERT_EQ(got.size(), 20 * MiB + 99);
  EXPECT_TRUE(verify_pattern(1, 0, got));
}

TEST_P(BbSchemeTest, UnalignedAppendsAndPartialReads) {
  Rig rig(GetParam());
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto w = co_await r.fs->create("/f", 1);
    CO_ASSERT_OK(w);
    std::uint64_t off = 0;
    for (int i = 0; i < 40; ++i) {
      const std::uint64_t n = 700 * KiB + 13;  // crosses chunk boundaries
      CO_ASSERT_OK(co_await w.value()->append(
          make_bytes(pattern_bytes(7, off, n))));
      off += n;
    }
    CO_ASSERT_OK(co_await w.value()->close());
    auto rd = co_await r.fs->open("/f", 2);
    CO_ASSERT_OK(rd);
    auto data = co_await rd.value()->read(3 * MiB + 11, 5 * MiB + 17);
    CO_ASSERT_OK(data);
    CO_ASSERT(verify_pattern(7, 3 * MiB + 11, data.value()));
  }(rig));
  rig.sim.run();
}

TEST_P(BbSchemeTest, DataLandsOnLustreAfterFlush) {
  Rig rig(GetParam());
  rig.write_file("/f", 2, 12 * MiB);
  rig.drain_flushes();
  EXPECT_EQ(rig.master->dirty_blocks(), 0u);
  EXPECT_EQ(rig.master->lost_blocks(), 0u);
  // All bytes durable on the OSS devices.
  const std::uint64_t oss_bytes =
      rig.osses[0]->used_bytes() + rig.osses[1]->used_bytes();
  EXPECT_EQ(oss_bytes, 12 * MiB);
}

TEST_P(BbSchemeTest, ReadFallsBackToLustreAfterBufferLoss) {
  Rig rig(GetParam());
  rig.write_file("/f", 3, 12 * MiB);
  rig.drain_flushes();
  // Evict everything from the buffer the hard way: crash both KV servers.
  for (auto& server : rig.kv_servers) server->crash();
  const Bytes got = rig.read_file("/f", 12 * MiB);
  ASSERT_EQ(got.size(), 12 * MiB);
  EXPECT_TRUE(verify_pattern(3, 0, got));
}

TEST(BbAsyncTest, CloseReturnsBeforeFlushCompletes) {
  Rig rig(Scheme::kAsync);
  SimTime close_time = 0;
  rig.sim.spawn([](Rig& r, SimTime& out) -> Task<void> {
    auto w = co_await r.fs->create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(
        make_bytes(pattern_bytes(4, 0, 32 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
    out = r.sim.now();
  }(rig, close_time));
  rig.sim.run_until(365 * 24 * 3600 * sec);
  // At close, flushes were still pending (ack-on-buffer semantics).
  EXPECT_GT(close_time, 0u);
  rig.sim.run();
  rig.drain_flushes();
  EXPECT_EQ(rig.master->flushed_blocks(), 4u);  // 32 MiB / 8 MiB
  EXPECT_EQ(rig.master->flushed_bytes(), 32 * MiB);
}

TEST(BbSyncTest, DurableAtAck) {
  Rig rig(Scheme::kSync);
  rig.write_file("/f", 5, 16 * MiB);
  // No flush queue involved: data hit Lustre on the write path.
  EXPECT_EQ(rig.master->dirty_blocks(), 0u);
  const std::uint64_t oss_bytes =
      rig.osses[0]->used_bytes() + rig.osses[1]->used_bytes();
  EXPECT_EQ(oss_bytes, 16 * MiB);
}

TEST(BbSyncTest, SlowerThanAsyncUnderBurst) {
  // Four concurrent writers make Lustre the bottleneck for the
  // write-through scheme; BB-Async absorbs the burst at buffer speed.
  auto run = [](Scheme scheme) {
    Rig rig(scheme, /*kv_mem_per_server=*/256 * MiB);
    SimTime last_ack = 0;  // when the last writer's close() was acknowledged
    for (NodeId n = 0; n < 4; ++n) {
      rig.sim.spawn([](Rig& r, NodeId id, SimTime& ack) -> Task<void> {
        auto w = co_await r.fs->create("/f" + std::to_string(id), id);
        CO_ASSERT_OK(w);
        CO_ASSERT_OK(co_await w.value()->append(
            make_bytes(pattern_bytes(id, 0, 32 * MiB))));
        CO_ASSERT_OK(co_await w.value()->close());
        ack = std::max(ack, r.sim.now());
      }(rig, n, last_ack));
    }
    rig.sim.run();  // includes any post-ack flush drain; we return the ack
    return last_ack;
  };
  const SimTime t_async = run(Scheme::kAsync);
  const SimTime t_sync = run(Scheme::kSync);
  EXPECT_GT(static_cast<double>(t_sync), 1.3 * static_cast<double>(t_async))
      << "sync=" << t_sync << " async=" << t_async;
}

TEST(BbLocalTest, LocalReplicaOnWriterRamDisk) {
  Rig rig(Scheme::kLocal);
  rig.write_file("/f", 7, 16 * MiB, /*client=*/2);
  EXPECT_EQ(rig.agents[2]->used_bytes(), 16 * MiB);
  EXPECT_EQ(rig.agents[0]->used_bytes(), 0u);
}

TEST(BbLocalTest, BlockLocationsExposeLocality) {
  Rig rig(Scheme::kLocal);
  rig.write_file("/f", 8, 16 * MiB, /*client=*/3);
  std::vector<std::vector<NodeId>> locs;
  rig.sim.spawn([](Rig& r, std::vector<std::vector<NodeId>>& out) -> Task<void> {
    auto l = co_await r.fs->block_locations("/f", 0);
    CO_ASSERT_OK(l);
    out = l.value();
  }(rig, locs));
  rig.sim.run();
  ASSERT_EQ(locs.size(), 2u);
  for (const auto& nodes : locs) {
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_EQ(nodes[0], 3u);
  }
}

TEST(BbAsyncTest, NoLocalityWithoutLocalScheme) {
  Rig rig(Scheme::kAsync);
  rig.write_file("/f", 9, 8 * MiB);
  std::vector<std::vector<NodeId>> locs;
  rig.sim.spawn([](Rig& r, std::vector<std::vector<NodeId>>& out) -> Task<void> {
    auto l = co_await r.fs->block_locations("/f", 0);
    CO_ASSERT_OK(l);
    out = l.value();
  }(rig, locs));
  rig.sim.run();
  ASSERT_EQ(locs.size(), 1u);
  EXPECT_TRUE(locs[0].empty());
}

TEST(BbFaultTest, AsyncDirtyDataLostOnServerCrash) {
  // Crash the buffer before any flush can run: dirty blocks are lost —
  // the BB-Async durability window, observable and accounted.
  Rig rig(Scheme::kAsync);
  MasterParams mp = rig.master->params();
  (void)mp;
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto w = co_await r.fs->create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(
        make_bytes(pattern_bytes(10, 0, 8 * MiB))));
    // Crash both servers the instant the data is acknowledged.
    CO_ASSERT_OK(co_await w.value()->close());
    for (auto& server : r.kv_servers) server->crash();
  }(rig));
  rig.sim.run();
  rig.drain_flushes();
  EXPECT_GT(rig.master->lost_blocks(), 0u);
  // Reads report the loss rather than fabricating data.
  StatusCode code{};
  rig.sim.spawn([](Rig& r, StatusCode& out) -> Task<void> {
    auto rd = co_await r.fs->open("/f", 1);
    CO_ASSERT_OK(rd);
    out = (co_await rd.value()->read(0, 8 * MiB)).code();
  }(rig, code));
  rig.sim.run();
  EXPECT_EQ(code, StatusCode::kDataLoss);
}

TEST(BbFaultTest, LocalSchemeRecoversDirtyDataFromRamDisk) {
  Rig rig(Scheme::kLocal);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto w = co_await r.fs->create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(
        make_bytes(pattern_bytes(11, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
    for (auto& server : r.kv_servers) server->crash();
  }(rig));
  rig.sim.run();
  rig.drain_flushes();
  // The flusher pulled the block from the writer's RAM disk instead.
  EXPECT_EQ(rig.master->lost_blocks(), 0u);
  EXPECT_GT(rig.master->recovered_blocks(), 0u);
  const Bytes got = rig.read_file("/f", 8 * MiB, /*client=*/1);
  EXPECT_TRUE(verify_pattern(11, 0, got));
}

TEST(BbFaultTest, SyncSchemeSurvivesBufferCrashCompletely) {
  Rig rig(Scheme::kSync);
  rig.write_file("/f", 12, 16 * MiB);
  for (auto& server : rig.kv_servers) server->crash();
  const Bytes got = rig.read_file("/f", 16 * MiB, /*client=*/2);
  ASSERT_EQ(got.size(), 16 * MiB);
  EXPECT_TRUE(verify_pattern(12, 0, got));
  EXPECT_EQ(rig.master->lost_blocks(), 0u);
}

TEST(BbCapacityTest, BackpressureWhenBufferSmallerThanBurst) {
  // 32 MiB of buffer (2 servers x 16 MiB), 64 MiB burst: the writer must be
  // throttled by flush progress (admission control), not fail.
  Rig small(Scheme::kAsync, /*kv_mem_per_server=*/16 * MiB);
  small.write_file("/f", 13, 64 * MiB);
  small.drain_flushes();
  EXPECT_EQ(small.master->lost_blocks(), 0u);
  const Bytes got = small.read_file("/f", 64 * MiB, 1);
  ASSERT_EQ(got.size(), 64 * MiB);
  EXPECT_TRUE(verify_pattern(13, 0, got));

  // And it is slower than an amply-sized buffer.
  Rig big(Scheme::kAsync, /*kv_mem_per_server=*/128 * MiB);
  big.write_file("/f", 13, 64 * MiB);
  // Compare write-completion times (the small rig's includes throttling).
  EXPECT_GT(small.sim.now(), big.sim.now());
}

TEST(BbNamespaceTest, CreateListRemoveStat) {
  Rig rig(Scheme::kAsync);
  rig.write_file("/dir/a", 14, 2 * MiB);
  rig.write_file("/dir/b", 15, 3 * MiB);
  rig.drain_flushes();
  fs::FileInfo info;
  std::vector<std::string> listed;
  StatusCode dup{}, gone{};
  rig.sim.spawn([](Rig& r, fs::FileInfo& fi, std::vector<std::string>& ls,
                   StatusCode& d, StatusCode& g) -> Task<void> {
    auto s = co_await r.fs->stat("/dir/a", 0);
    CO_ASSERT_OK(s);
    fi = s.value();
    d = (co_await r.fs->create("/dir/a", 0)).code();
    auto l = co_await r.fs->list("/dir", 0);
    CO_ASSERT_OK(l);
    ls = l.value();
    CO_ASSERT_OK(co_await r.fs->remove("/dir/a", 0));
    g = (co_await r.fs->open("/dir/a", 0)).code();
  }(rig, info, listed, dup, gone));
  rig.sim.run();
  EXPECT_EQ(info.size, 2 * MiB);
  EXPECT_EQ(dup, StatusCode::kAlreadyExists);
  EXPECT_EQ(listed, (std::vector<std::string>{"/dir/a", "/dir/b"}));
  EXPECT_EQ(gone, StatusCode::kNotFound);
}

TEST(BbNamespaceTest, RemoveReleasesBufferAndLustre) {
  Rig rig(Scheme::kAsync);
  rig.write_file("/f", 16, 8 * MiB);
  rig.drain_flushes();
  rig.sim.spawn([](Rig& r) -> Task<void> {
    CO_ASSERT_OK(co_await r.fs->remove("/f", 0));
  }(rig));
  rig.sim.run();
  EXPECT_EQ(rig.osses[0]->used_bytes() + rig.osses[1]->used_bytes(), 0u);
  std::uint64_t kv_items = 0;
  for (auto& server : rig.kv_servers) kv_items += server->store().stats().items;
  EXPECT_EQ(kv_items, 0u);
}

TEST(BbReadTest, BufferReadsBeatLustreReads) {
  // Buffer-resident read vs post-crash Lustre fallback read of the same
  // file: the buffer path must be several times faster (the paper's 8x
  // read gain comes from exactly this).
  Rig rig(Scheme::kAsync);
  rig.write_file("/f", 17, 32 * MiB);
  rig.drain_flushes();

  const SimTime t0 = rig.sim.now();
  (void)rig.read_file("/f", 32 * MiB, 1);
  const SimTime buffered = rig.sim.now() - t0;

  for (auto& server : rig.kv_servers) server->crash();
  const SimTime t1 = rig.sim.now();
  (void)rig.read_file("/f", 32 * MiB, 1);
  const SimTime lustre = rig.sim.now() - t1;

  EXPECT_GT(static_cast<double>(lustre), 2.0 * static_cast<double>(buffered))
      << "buffered=" << buffered << " lustre=" << lustre;
}

}  // namespace
}  // namespace hpcbb::bb
