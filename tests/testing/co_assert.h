// Coroutine-safe assertion helpers. gtest's ASSERT_* macros `return;` on
// failure, which is ill-formed inside a coroutine — these co_return instead.
#pragma once

#include <gtest/gtest.h>

#include "common/status.h"

namespace hpcbb::testing {
inline Status to_status(const Status& s) { return s; }
template <typename T>
Status to_status(const Result<T>& r) {
  return r.status();
}
}  // namespace hpcbb::testing

#define CO_ASSERT(cond)                 \
  if (!(cond)) {                        \
    ADD_FAILURE() << "failed: " #cond;  \
    co_return;                          \
  } else                                \
    (void)0

#define CO_ASSERT_OK(expr)                                        \
  if (auto _co_st = ::hpcbb::testing::to_status(expr);            \
      !_co_st.is_ok()) {                                          \
    ADD_FAILURE() << "not ok: " << #expr << " -> "                \
                  << _co_st.to_string();                          \
    co_return;                                                    \
  } else                                                          \
    (void)0
