// Replication subsystem tests: write fan-out ack modes, replica-aware read
// failover and ring exhaustion, and the full cluster-level lifecycle —
// crash -> re-replication -> rejoin -> anti-entropy -> live again.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "testing/co_assert.h"
#include "cluster/cluster.h"
#include "common/metrics.h"
#include "common/properties.h"
#include "common/units.h"
#include "kvstore/client.h"
#include "kvstore/server.h"
#include "sim/sync.h"

namespace hpcbb::kv {
namespace {

using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::Simulation;
using sim::Task;

struct Cluster {
  Simulation sim;
  net::Fabric fabric;
  net::Transport transport;
  net::RpcHub hub;
  std::vector<std::unique_ptr<Server>> servers;
  std::vector<NodeId> server_nodes;

  explicit Cluster(std::uint32_t n_servers)
      : fabric(sim, n_servers + 4, net::FabricParams{}),
        transport(fabric, net::transport_preset(net::TransportKind::kRdma)),
        hub(transport) {
    ServerParams params;
    params.store.memory_budget = 32 * MiB;
    params.store.shard_count = 2;
    for (std::uint32_t s = 0; s < n_servers; ++s) {
      const NodeId node = 4 + s;  // nodes 0..3 are clients
      servers.push_back(std::make_unique<Server>(hub, node, params));
      server_nodes.push_back(node);
    }
  }

  Client make_client(NodeId self, ClientParams params) {
    return Client(hub, self, server_nodes, params);
  }
};

TEST(ReplClientTest, ParamsFromProperties) {
  auto props = Properties::parse("kv.failover=1\nkv.repl.factor=3\n"
                                 "kv.repl.ack=all\n");
  ASSERT_TRUE(props.is_ok());
  ClientParams params;
  params.apply_properties(props.value());
  EXPECT_TRUE(params.failover);
  EXPECT_EQ(params.replication_factor, 3u);
  EXPECT_EQ(params.ack, AckMode::kAll);
  // kv.repl.factor=0 degenerates to the unreplicated fast path.
  params.apply_properties(
      Properties::parse("kv.repl.factor=0\nkv.repl.ack=primary\n").value());
  EXPECT_EQ(params.replication_factor, 1u);
  EXPECT_EQ(params.ack, AckMode::kPrimary);
}

TEST(ReplClientTest, AckAllPlacesCopiesOnEveryReplica) {
  Cluster cluster(3);
  ClientParams params;
  params.replication_factor = 2;
  params.ack = AckMode::kAll;
  Client client = cluster.make_client(0, params);
  cluster.sim.spawn([](Cluster& cl, Client& c) -> Task<void> {
    const auto repl = c.replica_indices("blk");
    CO_ASSERT(repl.size() == 2u);
    CO_ASSERT(repl[0] != repl[1]);
    CO_ASSERT((co_await c.set("blk", make_bytes(Bytes(64 * KiB, 0x3))))
                  .is_ok());
    // At ack time (all-ack) both replicas hold the value...
    for (const std::uint32_t s : repl) {
      auto r = co_await c.get_from(cl.server_nodes[s], "blk");
      CO_ASSERT(r.is_ok());
      CO_ASSERT(r.value()->size() == 64 * KiB);
    }
    // ...and the server outside the replica set does not.
    for (std::uint32_t s = 0; s < 3; ++s) {
      if (s == repl[0] || s == repl[1]) continue;
      CO_ASSERT((co_await c.get_from(cl.server_nodes[s], "blk")).code() ==
                StatusCode::kNotFound);
    }
  }(cluster, client));
  cluster.sim.run();
  const auto hists = cluster.sim.metrics().histograms();
  const auto it = hists.find("kv.repl.ack_all_ns");
  ASSERT_NE(it, hists.end());
  EXPECT_EQ(it->second.count, 1u);
}

TEST(ReplClientTest, PrimaryAckReplicatesInBackground) {
  Cluster cluster(3);
  ClientParams params;
  params.replication_factor = 2;
  params.ack = AckMode::kPrimary;
  Client client = cluster.make_client(0, params);
  cluster.sim.spawn([](Cluster& cl, Client& c) -> Task<void> {
    CO_ASSERT((co_await c.set("blk", make_bytes(Bytes(64 * KiB, 0x4))))
                  .is_ok());
    // The second copy lands shortly after the primary ack.
    co_await cl.sim.delay(20 * ms);
    for (const std::uint32_t s : c.replica_indices("blk")) {
      CO_ASSERT((co_await c.get_from(cl.server_nodes[s], "blk")).is_ok());
    }
  }(cluster, client));
  cluster.sim.run();
  const auto hists = cluster.sim.metrics().histograms();
  const auto it = hists.find("kv.repl.ack_primary_ns");
  ASSERT_NE(it, hists.end());
  EXPECT_EQ(it->second.count, 1u);
}

TEST(ReplClientTest, AckAllToleratesDownReplicaAndCountsFailure) {
  Cluster cluster(3);
  ClientParams params;
  params.replication_factor = 2;
  params.ack = AckMode::kAll;
  Client client = cluster.make_client(0, params);
  cluster.sim.spawn([](Cluster& cl, Client& c) -> Task<void> {
    const auto repl = c.replica_indices("blk");
    cl.servers[repl[1]]->crash();
    // One live replica is enough to ack; the failed copy is only counted.
    CO_ASSERT((co_await c.set("blk", make_bytes(Bytes(8 * KiB, 0x5))))
                  .is_ok());
    CO_ASSERT((co_await c.get("blk")).is_ok());
  }(cluster, client));
  cluster.sim.run();
  EXPECT_GE(cluster.sim.metrics().counter_value(
                "kv.repl.replica_write_failures"),
            1u);
}

TEST(ReplClientTest, ReadFailsOverToReplicaAfterPrimaryCrash) {
  Cluster cluster(3);
  ClientParams params;
  params.replication_factor = 2;
  params.ack = AckMode::kAll;
  Client client = cluster.make_client(0, params);
  bool verified = false;
  cluster.sim.spawn([](Cluster& cl, Client& c, bool& ok) -> Task<void> {
    CO_ASSERT((co_await c.set("blk", make_bytes(pattern_bytes(7, 0, 64 * KiB))))
                  .is_ok());
    cl.servers[c.replica_indices("blk")[0]]->crash();
    auto r = co_await c.get("blk");
    CO_ASSERT(r.is_ok());
    ok = verify_pattern(7, 0, *r.value());
  }(cluster, client, verified));
  cluster.sim.run();
  EXPECT_TRUE(verified);
  EXPECT_GE(cluster.sim.metrics().counter_value("kv.repl.replica_reads"), 1u);
}

TEST(ReplClientTest, ExhaustedWalkFailsAndCounts) {
  Cluster cluster(3);
  ClientParams params;
  params.failover = true;  // walk the whole ring before giving up
  Client client = cluster.make_client(0, params);
  StatusCode get_code{};
  StatusCode set_code{};
  cluster.sim.spawn([](Cluster& cl, Client& c, StatusCode& got,
                       StatusCode& put) -> Task<void> {
    for (auto& server : cl.servers) server->crash();
    got = (co_await c.get("blk")).code();
    put = (co_await c.set("blk", make_bytes(Bytes(1 * KiB, 0x6)))).code();
  }(cluster, client, get_code, set_code));
  cluster.sim.run();
  EXPECT_EQ(get_code, StatusCode::kUnavailable);
  EXPECT_EQ(set_code, StatusCode::kUnavailable);
  EXPECT_GE(cluster.sim.metrics().counter_value("kv.failover.exhausted"), 2u);
}

}  // namespace
}  // namespace hpcbb::kv

namespace hpcbb {
namespace {

using namespace hpcbb::duration;  // NOLINT
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::FsKind;
using sim::Task;

// Poll `done` every `step` of simulated time, up to `rounds` times.
template <typename Pred>
sim::Task<bool> wait_until(sim::Simulation& sim, sim::SimTime step,
                           int rounds, Pred done) {
  for (int i = 0; i < rounds; ++i) {
    if (done()) co_return true;
    co_await sim.delay(step);
  }
  co_return done();
}

TEST(ReplRecoveryTest, CrashRepairRejoinAntiEntropyLifecycle) {
  // One KV server dies with replica chunks aboard: the recovery manager
  // re-replicates them to a stand-in; when the server restarts (empty) the
  // detector holds it in kRecovering — ineligible for placement — until
  // anti-entropy has restored its key ranges, then readmits it.
  ClusterConfig config;
  config.compute_nodes = 4;
  config.kv_servers = 3;
  config.oss_count = 2;
  config.block_size = 8 * MiB;
  config.kv_memory_per_server = 128 * MiB;
  config.scheme = bb::Scheme::kAsync;
  config.bb_heartbeat_interval_ns = 5 * ms;
  config.bb_suspect_after = 2;
  config.bb_dead_after = 4;
  config.kv_client.failover = true;
  config.kv_client.replication_factor = 2;
  config.kv_client.ack = kv::AckMode::kAll;
  Cluster cluster(config);
  ASSERT_NE(cluster.bb_master().recovery(), nullptr);
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    sim::Simulation& sim = c.sim();
    bb::Master& master = c.bb_master();
    MetricRegistry& metrics = sim.metrics();

    fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
    auto writer = co_await fs.create("/r", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(21, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    co_await master.wait_all_flushed();

    // Kill one server; the detector walks it to dead and the recovery
    // manager re-replicates every chunk it co-owned.
    c.injector().crash_target(0);
    CO_ASSERT(co_await wait_until(sim, 5 * ms, 50, [&] {
      return master.peer_state(0) == bb::PeerState::kDead;
    }));
    CO_ASSERT(co_await wait_until(sim, 1 * ms, 100, [&] {
      return master.recovery()->active_runs() == 0 &&
             metrics.counter_value("kv.repl.repair_chunks") > 0;
    }));
    CO_ASSERT(metrics.counter_value("kv.repl.repair_bytes") > 0u);

    // Restart: the empty server is admitted only as kRecovering and the
    // cluster still counts it out (placement gate, satellite b).
    c.injector().restart_target(0);
    CO_ASSERT(co_await wait_until(sim, 200 * us, 500, [&] {
      return master.peer_state(0) == bb::PeerState::kRecovering;
    }));
    CO_ASSERT(metrics.counter_value("bb.detector.recovering") == 1u);
    CO_ASSERT(master.live_kv_count() == 2u);
    CO_ASSERT(master.degraded());

    // Anti-entropy finishes: readmitted, healthy, and the restored server
    // again serves its key ranges.
    CO_ASSERT(co_await wait_until(sim, 1 * ms, 200, [&] {
      return master.peer_state(0) == bb::PeerState::kLive;
    }));
    CO_ASSERT(metrics.counter_value("bb.detector.recovered") == 1u);
    CO_ASSERT(metrics.counter_value("kv.repl.anti_entropy_runs") >= 1u);
    CO_ASSERT(metrics.counter_value("kv.repl.anti_entropy_chunks") >= 1u);
    CO_ASSERT(master.live_kv_count() == 3u);
    CO_ASSERT(!master.degraded());

    auto reader = co_await fs.open("/r", 1);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(data.is_ok());
    ok = verify_pattern(21, 0, data.value());
    master.stop_heartbeat();
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
  EXPECT_EQ(cluster.bb_master().lost_blocks(), 0u);
  // The under-replicated gauge drained back to zero after peaking.
  const auto gauges = cluster.sim().metrics().gauges();
  const auto it = gauges.find("kv.repl.under_replicated");
  if (it != gauges.end()) {
    EXPECT_EQ(it->second.value, 0u);
    EXPECT_GE(it->second.high_watermark, 1u);
  }
}

TEST(ReplRecoveryTest, ReplicatedClusterSurvivesDirtyCrash) {
  // BB-Async at R=2: a server dies while blocks are still dirty and the
  // flush pipeline drains from the surviving replicas — nothing is lost,
  // the exact failure R=1 documents as the scheme's durability window.
  ClusterConfig config;
  config.compute_nodes = 4;
  config.kv_servers = 3;
  config.oss_count = 2;
  config.block_size = 8 * MiB;
  config.kv_memory_per_server = 128 * MiB;
  config.scheme = bb::Scheme::kAsync;
  config.bb_heartbeat_interval_ns = 5 * ms;
  config.kv_client.failover = true;
  config.kv_client.replication_factor = 2;
  config.kv_client.ack = kv::AckMode::kAll;
  Cluster cluster(config);
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
    auto writer = co_await fs.create("/burst", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(22, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    c.injector().crash_target(1);  // before the flush pipeline drains
    co_await c.bb_master().wait_all_flushed();
    CO_ASSERT(c.bb_master().lost_blocks() == 0u);
    auto reader = co_await c.filesystem(FsKind::kBurstBuffer).open(
        "/burst", 1);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(data.is_ok());
    ok = verify_pattern(22, 0, data.value());
    c.bb_master().stop_heartbeat();
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
  EXPECT_EQ(cluster.bb_master().lost_blocks(), 0u);
  EXPECT_EQ(cluster.bb_master().flushed_blocks(), 1u);
}

}  // namespace
}  // namespace hpcbb
