// Flow-control subsystem tests: watermark transitions and pressure bands,
// eviction-before-rejection ordering, backpressure release as flushes
// drain, and end-to-end behaviour through the burst-buffer master
// (bounded dirty bytes under overload, BB-Sync differential).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "testing/co_assert.h"
#include "burstbuffer/filesystem.h"
#include "common/units.h"
#include "flowctl/controller.h"
#include "kvstore/server.h"
#include "lustre/mds.h"
#include "lustre/oss.h"
#include "sim/sync.h"

namespace hpcbb::flowctl {
namespace {

using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::Simulation;
using sim::SimTime;
using sim::Task;

FlowControlParams small_params(std::uint64_t capacity = 100) {
  FlowControlParams p;
  p.capacity_bytes = capacity;  // low 50, high 75, critical 90
  p.background_pace_ns = 0;
  return p;
}

TEST(CapacityControllerTest, DisabledControllerIsTransparent) {
  Simulation sim;
  CapacityController fc(sim, FlowControlParams{});  // capacity 0
  EXPECT_FALSE(fc.enabled());
  SimTime waited = 1;
  sim.spawn([](CapacityController& c, SimTime& out) -> Task<void> {
    out = co_await c.admit(1 * GiB);
  }(fc, waited));
  sim.run();
  EXPECT_EQ(waited, 0u);
  EXPECT_EQ(fc.usage_bytes(), 0u);
  EXPECT_EQ(fc.pressure(), Pressure::kNormal);
}

TEST(CapacityControllerTest, PressureBandsFollowWatermarks) {
  Simulation sim;
  CapacityController fc(sim, small_params());
  sim.spawn([](CapacityController& c) -> Task<void> {
    (void)co_await c.admit(40);
    c.reservation_to_dirty(40, 40);
  }(fc));
  sim.run();
  EXPECT_EQ(fc.pressure(), Pressure::kNormal);  // 40 < low 50
  fc.reservation_to_dirty(0, 20);               // synthetic extra dirty
  EXPECT_EQ(fc.pressure(), Pressure::kElevated);  // 60 in [50, 75)
  fc.reservation_to_dirty(0, 20);
  EXPECT_EQ(fc.pressure(), Pressure::kUrgent);  // 80 in [75, 90)
  fc.reservation_to_dirty(0, 15);
  EXPECT_EQ(fc.pressure(), Pressure::kCritical);  // 95 >= 90
  EXPECT_EQ(fc.peak_dirty_bytes(), 95u);
}

TEST(CapacityControllerTest, WatermarksClampedToNonDecreasingOrder) {
  Simulation sim;
  FlowControlParams p = small_params();
  p.low_watermark = 0.9;
  p.high_watermark = 0.3;   // below low: clamped up
  p.critical_watermark = 0.1;
  CapacityController fc(sim, p);
  EXPECT_GE(fc.high_bytes(), fc.low_bytes());
  EXPECT_GE(fc.critical_bytes(), fc.high_bytes());
}

TEST(CapacityControllerTest, LoneBlockAlwaysAdmitted) {
  // Anti-starvation: with no credits outstanding even an over-capacity
  // block gets in, so a writer can never wedge.
  Simulation sim;
  CapacityController fc(sim, small_params(/*capacity=*/10));
  SimTime waited = 1;
  sim.spawn([](CapacityController& c, SimTime& out) -> Task<void> {
    out = co_await c.admit(1000);
  }(fc, waited));
  sim.run();
  EXPECT_EQ(waited, 0u);
  EXPECT_EQ(fc.reserved_bytes(), 1000u);
}

TEST(CapacityControllerTest, EvictsCleanBeforeStalling) {
  Simulation sim;
  CapacityController fc(sim, small_params());
  SimTime waited = 1;
  sim.spawn([](CapacityController& c, SimTime& out) -> Task<void> {
    // One dirty block plus two clean blocks: usage 60 of 100.
    (void)co_await c.admit(20);
    c.reservation_to_dirty(20, 20);
    (void)co_await c.admit(20);
    c.reservation_to_clean(20, "a", 20);
    (void)co_await c.admit(20);
    c.reservation_to_clean(20, "b", 20);
    // Admitting 20 more would hit 80 > high 75: the controller must evict
    // the LRU clean block rather than stall the writer.
    out = co_await c.admit(20);
  }(fc, waited));
  sim.run();
  EXPECT_EQ(waited, 0u) << "eviction must come before backpressure";
  EXPECT_EQ(fc.clean_block_count(), 1u);
  EXPECT_EQ(fc.clean_bytes(), 20u);
  CleanBlock victim;
  ASSERT_TRUE(fc.evictions().try_recv(victim));
  EXPECT_EQ(sim.metrics().counter("flowctl.evicted_blocks").get(), 1u);
  EXPECT_EQ(sim.metrics().counter("flowctl.evicted_bytes").get(), 20u);
  EXPECT_EQ(sim.metrics().counter("flowctl.stalls").get(), 0u);
}

TEST(CapacityControllerTest, LruOrderAndTouch) {
  Simulation sim;
  CapacityController fc(sim, small_params());
  sim.spawn([](CapacityController& c) -> Task<void> {
    (void)co_await c.admit(20);
    c.reservation_to_dirty(20, 20);  // keep credits nonzero
    (void)co_await c.admit(20);
    c.reservation_to_clean(20, "a", 20);
    (void)co_await c.admit(20);
    c.reservation_to_clean(20, "b", 20);
    c.touch_clean("a");  // "b" becomes the eviction victim
    (void)co_await c.admit(20);
  }(fc));
  sim.run();
  CleanBlock victim;
  ASSERT_TRUE(fc.evictions().try_recv(victim));
  EXPECT_EQ(victim.id, "b");
}

TEST(CapacityControllerTest, StallReleasesWhenFlushDrains) {
  Simulation sim;
  CapacityController fc(sim, small_params());
  SimTime waited = 0;
  sim.spawn([](CapacityController& c, SimTime& out) -> Task<void> {
    (void)co_await c.admit(40);
    c.reservation_to_dirty(40, 40);
    (void)co_await c.admit(30);
    c.reservation_to_dirty(30, 30);
    // dirty 70; +30 would be 100 > high 75: this admit must stall until
    // the "flush" below drains dirty bytes.
    out = co_await c.admit(30);
  }(fc, waited));
  sim.spawn([](Simulation& s, CapacityController& c) -> Task<void> {
    co_await s.delay(5 * ms);
    c.dirty_to_clean("flushed", 40);  // dirty 70 -> 30; clean 40
  }(sim, fc));
  sim.run();
  // Released exactly when the drain landed; the clean block was evicted to
  // keep usage under control (30 dirty + 40 clean + 30 new > high).
  EXPECT_EQ(waited, 5 * ms);
  EXPECT_EQ(sim.metrics().counter("flowctl.stalls").get(), 1u);
  EXPECT_EQ(sim.metrics().histogram("flowctl.stall_ns").count(), 1u);
  EXPECT_EQ(sim.metrics().histogram("flowctl.stall_ns").max(), 5 * ms);
}

TEST(CapacityControllerTest, FlushPaceEscalatesWithDirtyPressure) {
  Simulation sim;
  FlowControlParams p = small_params();
  p.background_pace_ns = 1000;
  CapacityController fc(sim, p);
  EXPECT_EQ(fc.flush_pace(), 1000u);  // normal: background pace
  fc.reservation_to_dirty(0, 60);
  EXPECT_EQ(fc.flush_pace(), 250u);  // elevated: pace / 4
  fc.reservation_to_dirty(0, 20);    // dirty 80 >= high 75
  EXPECT_EQ(fc.flush_pace(), 0u);    // urgent: flat out
  fc.note_flush_begin();
  EXPECT_EQ(sim.metrics().counter("flowctl.urgent_flushes").get(), 1u);
  fc.drop_dirty(80);
  fc.note_flush_begin();  // back to normal: not urgent
  EXPECT_EQ(sim.metrics().counter("flowctl.urgent_flushes").get(), 1u);
}

TEST(CapacityControllerTest, ForgetAndReleaseAccounting) {
  Simulation sim;
  CapacityController fc(sim, small_params());
  sim.spawn([](CapacityController& c) -> Task<void> {
    (void)co_await c.admit(20);
    c.reservation_to_clean(20, "a", 20);
    (void)co_await c.admit(20);  // abandoned
  }(fc));
  sim.run();
  EXPECT_EQ(fc.usage_bytes(), 40u);
  fc.release_reservation(20);
  EXPECT_EQ(fc.reserved_bytes(), 0u);
  fc.forget_clean("a");
  EXPECT_EQ(fc.usage_bytes(), 0u);
  fc.forget_clean("a");  // idempotent
  EXPECT_EQ(fc.clean_block_count(), 0u);
}

TEST(FlowControlParamsTest, FromPropertiesReadsKnobs) {
  const auto props = Properties::parse(
      "bb.flowctl.capacity=64m\n"
      "bb.flowctl.low=0.4\n"
      "bb.flowctl.high=0.6\n"
      "bb.flowctl.critical=0.8\n"
      "bb.flowctl.pace_us=250\n");
  ASSERT_TRUE(props.is_ok());
  const FlowControlParams p = FlowControlParams::from_properties(props.value());
  EXPECT_EQ(p.capacity_bytes, 64 * MiB);
  EXPECT_DOUBLE_EQ(p.low_watermark, 0.4);
  EXPECT_DOUBLE_EQ(p.high_watermark, 0.6);
  EXPECT_DOUBLE_EQ(p.critical_watermark, 0.8);
  EXPECT_EQ(p.background_pace_ns, 250 * us);
  // Missing keys keep the caller's defaults.
  const auto empty = Properties::parse("");
  ASSERT_TRUE(empty.is_ok());
  const FlowControlParams d = FlowControlParams::from_properties(
      empty.value(), small_params(123));
  EXPECT_EQ(d.capacity_bytes, 123u);
}

// ---- End-to-end through the burst-buffer master ----------------------------

struct Rig {
  Simulation sim;
  net::Fabric fabric{sim, 8, net::FabricParams{}};
  net::Transport transport{fabric,
                           net::transport_preset(net::TransportKind::kRdma)};
  net::RpcHub hub{transport};
  std::unique_ptr<lustre::Oss> oss;
  std::unique_ptr<lustre::Mds> mds;
  std::unique_ptr<kv::Server> server;
  std::unique_ptr<bb::Master> master;
  std::unique_ptr<bb::BurstBufferFileSystem> fs;

  explicit Rig(std::uint64_t capacity, bb::Scheme scheme = bb::Scheme::kAsync,
               std::uint64_t block_size = 4 * MiB) {
    oss = std::make_unique<lustre::Oss>(hub, 5, lustre::OssParams{});
    mds = std::make_unique<lustre::Mds>(
        hub, 4, std::vector<lustre::OstTarget>{{5, 0}, {5, 1}},
        lustre::MdsParams{});
    kv::ServerParams sp;
    sp.store.memory_budget = 256 * MiB;
    server = std::make_unique<kv::Server>(hub, 6, sp);
    bb::MasterParams mp;
    mp.block_size = block_size;
    mp.chunk_size = 1 * MiB;
    mp.buffer_capacity_bytes = capacity;
    master = std::make_unique<bb::Master>(hub, 3, std::vector<NodeId>{6}, 4,
                                          scheme, mp);
    bb::BbFsParams fp;
    fp.scheme = scheme;
    fp.block_size = block_size;
    fp.chunk_size = 1 * MiB;
    fs = std::make_unique<bb::BurstBufferFileSystem>(
        hub, 3, std::vector<NodeId>{6}, 4,
        std::map<NodeId, bb::NodeAgent*>{}, fp);
  }
};

Task<void> write_file(Rig& r, const std::string& path, std::uint64_t bytes,
                      SimTime* ack_time = nullptr) {
  auto writer = co_await r.fs->create(path, 0);
  CO_ASSERT(writer.is_ok());
  CO_ASSERT_OK(
      co_await writer.value()->append(make_bytes(pattern_bytes(7, 0, bytes))));
  CO_ASSERT_OK(co_await writer.value()->close());
  if (ack_time != nullptr) *ack_time = r.sim.now();
}

TEST(FlowControlEndToEndTest, OverloadKeepsDirtyBytesUnderHighWatermark) {
  // 64 MiB written through a 16 MiB buffer (4x overcommit): dirty+reserved
  // bytes must stay bounded by the high watermark (+ one in-flight block),
  // and every write must eventually ack with no losses or rejections.
  Rig rig(/*capacity=*/16 * MiB);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    co_await write_file(r, "/overload", 64 * MiB);
    co_await r.master->wait_all_flushed();
  }(rig));
  rig.sim.run();
  const auto& fc = rig.master->flow_control();
  EXPECT_LE(fc.peak_dirty_bytes(),
            fc.high_bytes() + rig.master->params().block_size);
  EXPECT_EQ(rig.master->lost_blocks(), 0u);
  EXPECT_EQ(rig.master->dirty_blocks(), 0u);
  EXPECT_EQ(rig.master->flushed_bytes(), 64 * MiB);
  EXPECT_EQ(fc.dirty_bytes(), 0u);
  EXPECT_EQ(fc.reserved_bytes(), 0u);
  // The working set exceeded capacity, so clean blocks were evicted.
  EXPECT_GT(rig.sim.metrics().counter("flowctl.evicted_bytes").get(), 0u);
}

TEST(FlowControlEndToEndTest, EvictedBlocksRemainReadableFromLustre) {
  Rig rig(/*capacity=*/16 * MiB);
  bool verified = false;
  rig.sim.spawn([](Rig& r, bool& ok) -> Task<void> {
    co_await write_file(r, "/f", 48 * MiB);
    co_await r.master->wait_all_flushed();
    // Early blocks were evicted to fit 48 MiB through 16 MiB of buffer;
    // reads must transparently fall back to the flushed copy on Lustre.
    auto reader = co_await r.fs->open("/f", 0);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 4 * MiB);
    CO_ASSERT(data.is_ok());
    const Bytes expect = pattern_bytes(7, 0, 4 * MiB);
    CO_ASSERT(data.value() == expect);
    ok = true;
  }(rig, verified));
  rig.sim.run();
  EXPECT_TRUE(verified);
  EXPECT_GT(rig.sim.metrics().counter("bb.read.lustre_fallbacks").get(), 0u);
}

TEST(FlowControlEndToEndTest, BackpressureReleasesAfterDrain) {
  // A second file written after the first one's flushes drain must admit
  // without inheriting the first file's stalls.
  Rig rig(/*capacity=*/16 * MiB);
  SimTime first_ack = 0;
  SimTime second_ack = 0;
  rig.sim.spawn(
      [](Rig& r, SimTime& ack1, SimTime& ack2) -> Task<void> {
        co_await write_file(r, "/a", 32 * MiB, &ack1);
        co_await r.master->wait_all_flushed();
        const SimTime drained = r.sim.now();
        const std::uint64_t stalls_before =
            r.sim.metrics().counter("flowctl.stalls").get();
        co_await write_file(r, "/b", 8 * MiB, &ack2);
        // 8 MiB fits under the high watermark of a drained buffer (clean
        // blocks are evictable): no new admission stalls.
        CO_ASSERT(r.sim.metrics().counter("flowctl.stalls").get() ==
                  stalls_before);
        CO_ASSERT(ack2 > drained);
        co_await r.master->wait_all_flushed();
      }(rig, first_ack, second_ack));
  rig.sim.run();
  EXPECT_GT(rig.sim.metrics().counter("flowctl.stalls").get(), 0u)
      << "the 2x-capacity first file should have stalled at least once";
  EXPECT_GT(second_ack, first_ack);
  EXPECT_EQ(rig.master->lost_blocks(), 0u);
}

TEST(FlowControlEndToEndTest, SyncSchemeDifferentialUnaffected) {
  // BB-Sync writes through to Lustre: data is durable at ack, so flow
  // control must neither stall writers nor escalate flushes. Differential:
  // ack time with flow control enabled == with it disabled (capacity 0).
  SimTime with_fc = 0;
  SimTime without_fc = 0;
  {
    Rig rig(/*capacity=*/32 * MiB, bb::Scheme::kSync);
    rig.sim.spawn(write_file(rig, "/sync", 24 * MiB, &with_fc));
    rig.sim.run();
    EXPECT_EQ(rig.sim.metrics().counter("flowctl.stalls").get(), 0u);
    EXPECT_EQ(rig.sim.metrics().counter("flowctl.urgent_flushes").get(), 0u);
    EXPECT_EQ(rig.master->flow_control().dirty_bytes(), 0u);
  }
  {
    Rig rig(/*capacity=*/0, bb::Scheme::kSync);  // subsystem disabled
    rig.sim.spawn(write_file(rig, "/sync", 24 * MiB, &without_fc));
    rig.sim.run();
  }
  EXPECT_EQ(with_fc, without_fc);
}

}  // namespace
}  // namespace hpcbb::flowctl
