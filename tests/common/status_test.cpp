#include "common/status.h"

#include <gtest/gtest.h>

namespace hpcbb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = error(StatusCode::kNotFound, "no such block");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such block");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: no such block");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(error(StatusCode::kTimeout, "a"), error(StatusCode::kTimeout, "b"));
  EXPECT_FALSE(error(StatusCode::kTimeout, "a") ==
               error(StatusCode::kInternal, "a"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(to_string(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = error(StatusCode::kUnavailable, "server down");
  EXPECT_FALSE(r.is_ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, MoveOnlyType) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.is_ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace hpcbb
