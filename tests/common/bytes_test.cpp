#include "common/bytes.h"

#include <gtest/gtest.h>

namespace hpcbb {
namespace {

TEST(BytesTest, PatternIsDeterministic) {
  const Bytes a = pattern_bytes(42, 0, 256);
  const Bytes b = pattern_bytes(42, 0, 256);
  EXPECT_EQ(a, b);
}

TEST(BytesTest, PatternDependsOnSeed) {
  EXPECT_NE(pattern_bytes(1, 0, 64), pattern_bytes(2, 0, 64));
}

TEST(BytesTest, SlicesComposeIntoWhole) {
  // Generating [0,100) must equal generating [0,37) ++ [37,100).
  const Bytes whole = pattern_bytes(7, 0, 100);
  const Bytes head = pattern_bytes(7, 0, 37);
  const Bytes tail = pattern_bytes(7, 37, 63);
  Bytes glued = head;
  glued.insert(glued.end(), tail.begin(), tail.end());
  EXPECT_EQ(glued, whole);
}

TEST(BytesTest, UnalignedOffsetsCompose) {
  const Bytes whole = pattern_bytes(9, 0, 64);
  for (std::uint64_t off = 1; off < 16; ++off) {
    const Bytes slice = pattern_bytes(9, off, 64 - off);
    const Bytes expect(whole.begin() + static_cast<long>(off), whole.end());
    EXPECT_EQ(slice, expect) << "offset " << off;
  }
}

TEST(BytesTest, VerifyPatternAcceptsCorrectSlice) {
  const Bytes data = pattern_bytes(123, 4096, 500);
  EXPECT_TRUE(verify_pattern(123, 4096, data));
}

TEST(BytesTest, VerifyPatternRejectsCorruption) {
  Bytes data = pattern_bytes(123, 4096, 500);
  data[250] ^= 0xFF;
  EXPECT_FALSE(verify_pattern(123, 4096, data));
}

TEST(BytesTest, VerifyPatternRejectsWrongOffset) {
  const Bytes data = pattern_bytes(123, 0, 500);
  EXPECT_FALSE(verify_pattern(123, 8, data));
}

TEST(BytesTest, EmptyPattern) {
  EXPECT_TRUE(pattern_bytes(1, 0, 0).empty());
  EXPECT_TRUE(verify_pattern(1, 0, Bytes{}));
}

}  // namespace
}  // namespace hpcbb
