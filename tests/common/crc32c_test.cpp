#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hpcbb {
namespace {

// Known-answer vectors for CRC32C (RFC 3720 appendix B.4 and classics).
TEST(Crc32cTest, KnownAnswers) {
  EXPECT_EQ(crc32c(""), 0u);
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c("a"), 0xC1D04330u);
  EXPECT_EQ(crc32c("abc"), 0x364B3FB7u);
  EXPECT_EQ(crc32c("The quick brown fox jumps over the lazy dog"),
            0x22620404u);
}

TEST(Crc32cTest, AllZeros32Bytes) {
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "hello burst buffer world, hello lustre";
  const std::uint32_t whole = crc32c(data);
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    std::uint32_t crc = crc32c(0, data.data(), cut);
    crc = crc32c(crc, data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc, whole) << "cut at " << cut;
  }
}

TEST(Crc32cTest, SensitiveToSingleBitFlip) {
  std::vector<std::uint8_t> data(1024, 0xAB);
  const std::uint32_t clean = crc32c(data);
  for (const std::size_t pos : {0u, 511u, 1023u}) {
    data[pos] ^= 0x01;
    EXPECT_NE(crc32c(data), clean) << "flip at " << pos;
    data[pos] ^= 0x01;
  }
}

TEST(Crc32cTest, UnalignedStartMatches) {
  const std::string data = "0123456789abcdef0123456789abcdef";
  for (std::size_t off = 0; off < 8; ++off) {
    const std::string_view suffix(data.data() + off, data.size() - off);
    const std::uint32_t direct = crc32c(suffix);
    const std::uint32_t copied = crc32c(std::string(suffix));
    EXPECT_EQ(direct, copied);
  }
}

}  // namespace
}  // namespace hpcbb
