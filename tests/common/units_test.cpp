#include "common/units.h"

#include <gtest/gtest.h>

namespace hpcbb {
namespace {

TEST(UnitsTest, Constants) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024ull * 1024 * 1024);
  EXPECT_EQ(duration::sec, 1'000'000'000ull);
}

TEST(UnitsTest, TransferTimeExact) {
  // 1 MB at 1 MB/s = 1 s.
  EXPECT_EQ(transfer_time_ns(1 * MB, 1 * MB), duration::sec);
  // 100 MB at 100 MB/s = 1 s.
  EXPECT_EQ(transfer_time_ns(100 * MB, 100 * MB), duration::sec);
}

TEST(UnitsTest, TransferTimeRoundsUp) {
  // 1 byte at 3 bytes/s: ceil(1e9 / 3) ns.
  EXPECT_EQ(transfer_time_ns(1, 3), 333'333'334ull);
}

TEST(UnitsTest, TransferTimeZeroBytes) {
  EXPECT_EQ(transfer_time_ns(0, 100), 0u);
}

TEST(UnitsTest, TransferTimeHugeSizesNoOverflow) {
  // 100 TiB at 1 GB/s ~= 109951 s; must not overflow.
  const std::uint64_t t = transfer_time_ns(100 * TiB, 1 * GB);
  EXPECT_NEAR(ns_to_sec(t), 109951.16, 1.0);
}

TEST(UnitsTest, ThroughputMbps) {
  EXPECT_DOUBLE_EQ(throughput_mbps(100 * MB, duration::sec), 100.0);
  EXPECT_DOUBLE_EQ(throughput_mbps(0, duration::sec), 0.0);
  EXPECT_DOUBLE_EQ(throughput_mbps(100, 0), 0.0);
}

}  // namespace
}  // namespace hpcbb
