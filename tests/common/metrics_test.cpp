#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace hpcbb {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.get(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 42u);
  c.reset();
  EXPECT_EQ(c.get(), 0u);
}

TEST(CounterTest, ThreadSafeAccumulation) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.get(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistogramTest, QuantilesWithinBucketError) {
  Histogram h;
  for (std::uint64_t v = 0; v < 100000; ++v) h.record(v);
  // Log-linear buckets with 16 sub-buckets: <= 6.25% relative error.
  const std::uint64_t p50 = h.quantile(0.5);
  const std::uint64_t p99 = h.quantile(0.99);
  EXPECT_NEAR(static_cast<double>(p50), 50000.0, 50000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(p99), 99000.0, 99000.0 * 0.07);
  EXPECT_GE(h.quantile(1.0), 99999u - 1);
}

TEST(HistogramTest, QuantileIsUpperBound) {
  Histogram h;
  h.record(1000);
  EXPECT_GE(h.quantile(0.5), 1000u);
  EXPECT_GE(h.quantile(0.0), 1000u);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) h.record(v);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), Histogram::kSubBuckets - 1);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, HugeValues) {
  Histogram h;
  const std::uint64_t big = 1ull << 62;
  h.record(big);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.quantile(1.0), big);
  EXPECT_LE(h.quantile(1.0), big + (big >> 3));
}

TEST(HistogramTest, EmptyHistogramQuantileExtremes) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
  // Out-of-range q is clamped, not UB.
  EXPECT_EQ(h.quantile(-1.0), 0u);
  EXPECT_EQ(h.quantile(2.0), 0u);
}

TEST(HistogramTest, SingleSampleAllQuantilesCoincide) {
  Histogram h;
  const std::uint64_t v = 123456;
  h.record(v);
  const std::uint64_t p0 = h.quantile(0.0);
  EXPECT_EQ(h.quantile(0.25), p0);
  EXPECT_EQ(h.quantile(0.5), p0);
  EXPECT_EQ(h.quantile(1.0), p0);
  // The bucket upper bound brackets the sample within one sub-bucket.
  EXPECT_GE(p0, v);
  EXPECT_LE(static_cast<double>(p0),
            static_cast<double>(v) * (1.0 + 1.0 / Histogram::kSubBuckets));
}

TEST(HistogramTest, LogUniformSampleQuantileErrorBound) {
  // Samples spread log-uniformly across 30 orders of magnitude (base 2):
  // the log-linear bucketing must hold its <= 1/16 = 6.25% relative error
  // at every quantile, not just in the middle of one decade.
  Histogram h;
  constexpr int kSamples = 10000;
  std::vector<std::uint64_t> sorted;
  sorted.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    const double exponent =
        10.0 + 30.0 * static_cast<double>(i) / (kSamples - 1);
    const auto v = static_cast<std::uint64_t>(std::exp2(exponent));
    sorted.push_back(v);  // generated ascending
    h.record(v);
  }
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    // Mirror the histogram's rank convention: the target-th smallest sample.
    const auto target =
        static_cast<std::size_t>(q * static_cast<double>(kSamples - 1));
    const std::uint64_t exact = sorted[target];
    const std::uint64_t estimate = h.quantile(q);
    EXPECT_GE(estimate, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(estimate),
              static_cast<double>(exact) *
                  (1.0 + 1.0 / Histogram::kSubBuckets))
        << "q=" << q;
  }
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.record(5);
  h.record(500);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(MetricRegistryTest, NamedCountersAreStable) {
  MetricRegistry reg;
  reg.counter("a").add(1);
  reg.counter("a").add(2);
  reg.counter("b").add(10);
  EXPECT_EQ(reg.counter_value("a"), 3u);
  EXPECT_EQ(reg.counter_value("b"), 10u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  const auto all = reg.counters();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at("a"), 3u);
}

// The find_* lookups never create and distinguish "absent" from a real 0 —
// the contract the SLO engine's no-data semantics rest on.
TEST(MetricRegistryTest, FindLookupsDistinguishAbsentFromZero) {
  MetricRegistry reg;
  EXPECT_EQ(reg.find_counter("c"), std::nullopt);
  EXPECT_EQ(reg.find_gauge("g"), std::nullopt);
  EXPECT_EQ(reg.find_histogram("h"), std::nullopt);
  // Lookups created nothing: the registry is still empty.
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.gauges().empty());
  EXPECT_TRUE(reg.histograms().empty());

  reg.counter("c");  // registered, value 0 — a real 0, not "no data"
  reg.gauge("g").set(0);
  ASSERT_TRUE(reg.find_counter("c").has_value());
  EXPECT_EQ(*reg.find_counter("c"), 0u);
  ASSERT_TRUE(reg.find_gauge("g").has_value());
  EXPECT_EQ(reg.find_gauge("g")->value, 0u);

  reg.counter("c").add(7);
  reg.gauge("g").set(9);
  reg.gauge("g").set(2);
  reg.histogram("h").record(1000);
  EXPECT_EQ(*reg.find_counter("c"), 7u);
  EXPECT_EQ(reg.find_gauge("g")->value, 2u);
  EXPECT_EQ(reg.find_gauge("g")->high_watermark, 9u);
  ASSERT_TRUE(reg.find_histogram("h").has_value());
  EXPECT_EQ(reg.find_histogram("h")->count, 1u);
}

TEST(MetricRegistryTest, HistogramQuantileIsNulloptUntilFirstSample) {
  MetricRegistry reg;
  // Absent histogram: no data.
  EXPECT_EQ(reg.histogram_quantile("lat", 0.99), std::nullopt);
  // Registered but never recorded: quantile of zero samples is still "no
  // data", not 0ns.
  reg.histogram("lat");
  EXPECT_EQ(reg.histogram_quantile("lat", 0.99), std::nullopt);
  reg.histogram("lat").record(5000);
  const auto p99 = reg.histogram_quantile("lat", 0.99);
  ASSERT_TRUE(p99.has_value());
  EXPECT_GE(*p99, 5000u);
}

TEST(MetricRegistryTest, ResetZeroesAll) {
  MetricRegistry reg;
  reg.counter("x").add(5);
  reg.histogram("h").record(9);
  reg.gauge("g").set(7);
  reg.reset();
  EXPECT_EQ(reg.counter_value("x"), 0u);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
  EXPECT_EQ(reg.gauge_value("g"), 0u);
  EXPECT_EQ(reg.gauge("g").high_watermark(), 0u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  EXPECT_EQ(g.get(), 0u);
  g.set(10);
  EXPECT_EQ(g.get(), 10u);
  g.add(5);
  EXPECT_EQ(g.get(), 15u);
  g.sub(7);
  EXPECT_EQ(g.get(), 8u);
  g.add();  // default +1
  g.sub();  // default -1
  EXPECT_EQ(g.get(), 8u);
}

TEST(GaugeTest, SubSaturatesAtZero) {
  Gauge g;
  g.set(3);
  g.sub(100);
  EXPECT_EQ(g.get(), 0u);
}

TEST(GaugeTest, HighWatermarkTracksPeakNotCurrent) {
  Gauge g;
  g.set(10);
  g.add(90);  // peak 100
  g.sub(60);
  EXPECT_EQ(g.get(), 40u);
  EXPECT_EQ(g.high_watermark(), 100u);
  g.set(5);  // set below peak does not lower the watermark
  EXPECT_EQ(g.high_watermark(), 100u);
  g.set(200);
  EXPECT_EQ(g.high_watermark(), 200u);
}

TEST(GaugeTest, ConcurrentAddersKeepConsistentWatermark) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.get(), 4000u);
  EXPECT_EQ(g.high_watermark(), 4000u);
}

TEST(LabeledMetricTest, BuildsAndStripsKeys) {
  EXPECT_EQ(labeled("kv.bytes", "node", 3), "kv.bytes{node=3}");
  EXPECT_EQ(base_name("kv.bytes{node=3}"), "kv.bytes");
  EXPECT_EQ(base_name("kv.bytes"), "kv.bytes");
}

TEST(LabeledMetricTest, LabeledGaugesAreIndependent) {
  MetricRegistry reg;
  reg.gauge(labeled("kv.bytes", "node", 1)).set(10);
  reg.gauge(labeled("kv.bytes", "node", 2)).set(20);
  EXPECT_EQ(reg.gauge_value("kv.bytes{node=1}"), 10u);
  EXPECT_EQ(reg.gauge_value("kv.bytes{node=2}"), 20u);
  const auto all = reg.gauges();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at("kv.bytes{node=1}").value, 10u);
}

TEST(HistogramSnapshotTest, SummarizesDistribution) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v * 1000);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 5050u * 1000u);
  EXPECT_EQ(snap.min, 1000u);
  EXPECT_EQ(snap.max, 100000u);
  EXPECT_DOUBLE_EQ(snap.mean, 50500.0);
  // Log-linear buckets return upper bounds: quantiles are >= the exact
  // value but within one sub-bucket's relative error.
  EXPECT_GE(snap.p50, 50u * 1000u);
  EXPECT_GE(snap.p95, 95u * 1000u);
  EXPECT_GE(snap.p99, 99u * 1000u);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LE(snap.p99, snap.max * 2);
}

TEST(HistogramSnapshotTest, EmptyHistogramSnapshotsToZeros) {
  Histogram h;
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.p99, 0u);
}

TEST(MetricRegistryTest, HistogramSnapshotsExported) {
  MetricRegistry reg;
  reg.histogram("lat").record(5000);
  reg.histogram("lat").record(7000);
  const auto snaps = reg.histograms();
  ASSERT_TRUE(snaps.contains("lat"));
  EXPECT_EQ(snaps.at("lat").count, 2u);
  EXPECT_EQ(snaps.at("lat").sum, 12000u);
}

}  // namespace
}  // namespace hpcbb
