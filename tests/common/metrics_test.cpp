#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace hpcbb {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.get(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 42u);
  c.reset();
  EXPECT_EQ(c.get(), 0u);
}

TEST(CounterTest, ThreadSafeAccumulation) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.get(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistogramTest, QuantilesWithinBucketError) {
  Histogram h;
  for (std::uint64_t v = 0; v < 100000; ++v) h.record(v);
  // Log-linear buckets with 16 sub-buckets: <= 6.25% relative error.
  const std::uint64_t p50 = h.quantile(0.5);
  const std::uint64_t p99 = h.quantile(0.99);
  EXPECT_NEAR(static_cast<double>(p50), 50000.0, 50000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(p99), 99000.0, 99000.0 * 0.07);
  EXPECT_GE(h.quantile(1.0), 99999u - 1);
}

TEST(HistogramTest, QuantileIsUpperBound) {
  Histogram h;
  h.record(1000);
  EXPECT_GE(h.quantile(0.5), 1000u);
  EXPECT_GE(h.quantile(0.0), 1000u);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) h.record(v);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), Histogram::kSubBuckets - 1);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, HugeValues) {
  Histogram h;
  const std::uint64_t big = 1ull << 62;
  h.record(big);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.quantile(1.0), big);
  EXPECT_LE(h.quantile(1.0), big + (big >> 3));
}

TEST(HistogramTest, EmptyHistogramQuantileExtremes) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
  // Out-of-range q is clamped, not UB.
  EXPECT_EQ(h.quantile(-1.0), 0u);
  EXPECT_EQ(h.quantile(2.0), 0u);
}

TEST(HistogramTest, SingleSampleAllQuantilesCoincide) {
  Histogram h;
  const std::uint64_t v = 123456;
  h.record(v);
  const std::uint64_t p0 = h.quantile(0.0);
  EXPECT_EQ(h.quantile(0.25), p0);
  EXPECT_EQ(h.quantile(0.5), p0);
  EXPECT_EQ(h.quantile(1.0), p0);
  // The bucket upper bound brackets the sample within one sub-bucket.
  EXPECT_GE(p0, v);
  EXPECT_LE(static_cast<double>(p0),
            static_cast<double>(v) * (1.0 + 1.0 / Histogram::kSubBuckets));
}

TEST(HistogramTest, LogUniformSampleQuantileErrorBound) {
  // Samples spread log-uniformly across 30 orders of magnitude (base 2):
  // the log-linear bucketing must hold its <= 1/16 = 6.25% relative error
  // at every quantile, not just in the middle of one decade.
  Histogram h;
  constexpr int kSamples = 10000;
  std::vector<std::uint64_t> sorted;
  sorted.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    const double exponent =
        10.0 + 30.0 * static_cast<double>(i) / (kSamples - 1);
    const auto v = static_cast<std::uint64_t>(std::exp2(exponent));
    sorted.push_back(v);  // generated ascending
    h.record(v);
  }
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    // Mirror the histogram's rank convention: the target-th smallest sample.
    const auto target =
        static_cast<std::size_t>(q * static_cast<double>(kSamples - 1));
    const std::uint64_t exact = sorted[target];
    const std::uint64_t estimate = h.quantile(q);
    EXPECT_GE(estimate, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(estimate),
              static_cast<double>(exact) *
                  (1.0 + 1.0 / Histogram::kSubBuckets))
        << "q=" << q;
  }
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.record(5);
  h.record(500);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(MetricRegistryTest, NamedCountersAreStable) {
  MetricRegistry reg;
  reg.counter("a").add(1);
  reg.counter("a").add(2);
  reg.counter("b").add(10);
  EXPECT_EQ(reg.counter_value("a"), 3u);
  EXPECT_EQ(reg.counter_value("b"), 10u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  const auto all = reg.counters();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at("a"), 3u);
}

TEST(MetricRegistryTest, ResetZeroesAll) {
  MetricRegistry reg;
  reg.counter("x").add(5);
  reg.histogram("h").record(9);
  reg.reset();
  EXPECT_EQ(reg.counter_value("x"), 0u);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
}

}  // namespace
}  // namespace hpcbb
