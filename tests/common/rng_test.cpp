#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hpcbb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(42, 42), 42u);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(5);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(11), parent2(11);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.next(), child2.next());
  // Child diverges from a fresh parent stream.
  Rng parent3(11);
  (void)parent3.next();  // same position as post-fork parents
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child1.next() == parent3.next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, CoversRangeWithoutObviousGaps) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4000; ++i) seen.insert(rng.uniform(0, 15));
  EXPECT_EQ(seen.size(), 16u);
}

}  // namespace
}  // namespace hpcbb
