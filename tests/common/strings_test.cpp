#include "common/strings.h"

#include <gtest/gtest.h>

namespace hpcbb {
namespace {

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t a b \r\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("/user/data", "/user"));
  EXPECT_FALSE(starts_with("/usr", "/user"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StringsTest, Fnv1aIsStableAndDistinguishes) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), fnv1a("a"));
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_NE(fnv1a("/f1#0"), fnv1a("/f1#1"));
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(StringsTest, FormatDuration) {
  EXPECT_EQ(format_duration_ns(500), "500.0 ns");
  EXPECT_EQ(format_duration_ns(1500), "1.50 us");
  EXPECT_EQ(format_duration_ns(2'500'000'000ull), "2.50 s");
}

TEST(StringsTest, ParseDurationSuffixes) {
  EXPECT_EQ(parse_duration_ns("250ns"), 250u);
  EXPECT_EQ(parse_duration_ns("5us"), 5'000u);
  EXPECT_EQ(parse_duration_ns("100ms"), 100'000'000u);
  EXPECT_EQ(parse_duration_ns("2s"), 2'000'000'000u);
  EXPECT_EQ(parse_duration_ns("750"), 750u);  // bare count = nanoseconds
}

TEST(StringsTest, ParseDurationFractionsAndWhitespace) {
  EXPECT_EQ(parse_duration_ns("1.5ms"), 1'500'000u);
  EXPECT_EQ(parse_duration_ns("0.25s"), 250'000'000u);
  EXPECT_EQ(parse_duration_ns(" 10ms "), 10'000'000u);
}

TEST(StringsTest, ParseDurationRejectsGarbage) {
  EXPECT_FALSE(parse_duration_ns("").has_value());
  EXPECT_FALSE(parse_duration_ns("fast").has_value());
  EXPECT_FALSE(parse_duration_ns("-5ms").has_value());
  EXPECT_FALSE(parse_duration_ns("10 q").has_value());
  EXPECT_FALSE(parse_duration_ns("ms").has_value());
}

}  // namespace
}  // namespace hpcbb
