#include "common/properties.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace hpcbb {
namespace {

TEST(PropertiesTest, ParsesBasicPairs) {
  auto r = Properties::parse("a=1\nb = hello \n\n# comment\nc=2 # tail");
  ASSERT_TRUE(r.is_ok());
  const Properties& p = r.value();
  EXPECT_EQ(p.get_or("a", ""), "1");
  EXPECT_EQ(p.get_or("b", ""), "hello");
  EXPECT_EQ(p.get_or("c", ""), "2");
  EXPECT_FALSE(p.get("missing").has_value());
}

TEST(PropertiesTest, LaterKeysWin) {
  auto r = Properties::parse("k=1\nk=2");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().get_or("k", ""), "2");
}

TEST(PropertiesTest, RejectsMalformedLine) {
  EXPECT_FALSE(Properties::parse("just_a_token").is_ok());
  EXPECT_FALSE(Properties::parse("=value").is_ok());
}

TEST(PropertiesTest, SizeSuffixes) {
  Properties p;
  p.set("block", "128m");
  p.set("mem", "4g");
  p.set("small", "512");
  p.set("kay", "2K");
  EXPECT_EQ(p.get_u64_or("block", 0), 128 * MiB);
  EXPECT_EQ(p.get_u64_or("mem", 0), 4 * GiB);
  EXPECT_EQ(p.get_u64_or("small", 0), 512u);
  EXPECT_EQ(p.get_u64_or("kay", 0), 2 * KiB);
}

TEST(PropertiesTest, U64Errors) {
  Properties p;
  p.set("bad", "12x34");
  EXPECT_EQ(p.get_u64("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.get_u64("missing").code(), StatusCode::kNotFound);
  EXPECT_EQ(p.get_u64_or("bad", 7), 7u);
}

TEST(PropertiesTest, BoolAndDouble) {
  Properties p;
  p.set("t1", "true");
  p.set("t2", "1");
  p.set("f1", "no");
  p.set("d", "2.5");
  EXPECT_TRUE(p.get_bool_or("t1", false));
  EXPECT_TRUE(p.get_bool_or("t2", false));
  EXPECT_FALSE(p.get_bool_or("f1", true));
  EXPECT_TRUE(p.get_bool_or("missing", true));
  EXPECT_DOUBLE_EQ(p.get_double_or("d", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(p.get_double_or("missing", 1.5), 1.5);
}

TEST(PropertiesTest, SetOverrides) {
  Properties p;
  p.set("k", "a");
  p.set("k", "b");
  EXPECT_EQ(p.get_or("k", ""), "b");
  EXPECT_TRUE(p.contains("k"));
}

}  // namespace
}  // namespace hpcbb
