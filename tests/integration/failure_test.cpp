// Failure-injection integration tests: crashes and outages at awkward
// moments across the full stack, asserting each scheme's availability
// contract and that nothing ever fabricates data.
#include <gtest/gtest.h>

#include "testing/co_assert.h"
#include "common/units.h"
#include "cluster/cluster.h"
#include "mapred/workloads.h"
#include "sim/sync.h"

namespace hpcbb {
namespace {

using namespace hpcbb::duration;  // NOLINT
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::FsKind;
using net::NodeId;
using sim::Task;

ClusterConfig small_config(bb::Scheme scheme) {
  ClusterConfig config;
  config.compute_nodes = 4;
  config.kv_servers = 2;
  config.oss_count = 2;
  config.block_size = 8 * MiB;
  config.kv_memory_per_server = 128 * MiB;
  config.scheme = scheme;
  return config;
}

TEST(FailureTest, HdfsWriterSurvivesNothingButReportsPipelineDeath) {
  // A DataNode in the pipeline dies mid-write: the writer must surface an
  // error (our simplified client does not re-pipeline) rather than ack
  // silently-incomplete data.
  Cluster cluster(small_config(bb::Scheme::kAsync));
  StatusCode code{};
  cluster.sim().spawn([](Cluster& c, StatusCode& out) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(FsKind::kHdfs);
    auto writer = co_await fs.create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(1, 0, 4 * MiB))));
    // Kill every non-writer DataNode: the pipeline must break.
    for (NodeId n = 1; n < 4; ++n) c.datanode(n).crash();
    Status st = co_await writer.value()->append(
        make_bytes(pattern_bytes(1, 4 * MiB, 8 * MiB)));
    if (st.is_ok()) st = co_await writer.value()->close();
    out = st.code();
  }(cluster, code));
  cluster.sim().run();
  EXPECT_EQ(code, StatusCode::kUnavailable);
}

TEST(FailureTest, FlushRetriesThroughLustreOutage) {
  // Lustre (all OSS nodes) goes down after the burst is acked; the flusher
  // must requeue, then complete once Lustre returns — no data loss.
  Cluster cluster(small_config(bb::Scheme::kAsync));
  cluster.sim().spawn([](Cluster& c) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
    auto writer = co_await fs.create("/f", 0);
    CO_ASSERT(writer.is_ok());
    // Take Lustre down *before* writing so no flush can land.
    const NodeId oss0 = c.oss(0).node();
    const NodeId oss1 = c.oss(1).node();
    c.fabric().set_node_up(oss0, false);
    c.fabric().set_node_up(oss1, false);
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(2, 0, 16 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());  // ack needs no Lustre
    // Let flushers spin against the outage for a while.
    co_await c.sim().delay(2 * sec);
    CO_ASSERT(c.bb_master().flushed_blocks() == 0u);
    CO_ASSERT(c.bb_master().lost_blocks() == 0u);
    // Recovery.
    c.fabric().set_node_up(oss0, true);
    c.fabric().set_node_up(oss1, true);
    co_await c.bb_master().wait_all_flushed();
    CO_ASSERT(c.bb_master().flushed_blocks() == 2u);
    CO_ASSERT(c.bb_master().lost_blocks() == 0u);
  }(cluster));
  cluster.sim().run();
  EXPECT_EQ(cluster.bb_master().flushed_bytes(), 16 * MiB);
}

TEST(FailureTest, BbLocalReadDegradesToBufferWhenAgentDies) {
  // The RAM-disk replica's node crashes: reads must fall back to the KV
  // buffer transparently.
  Cluster cluster(small_config(bb::Scheme::kLocal));
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
    auto writer = co_await fs.create("/f", 2);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(3, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    c.agent(2).crash();  // RAM disk contents gone, agent unreachable
    auto reader = co_await fs.open("/f", 1);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(data.is_ok());
    ok = verify_pattern(3, 0, data.value());
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
}

TEST(FailureTest, MapReduceSurvivesKvCrashAfterFlush) {
  // Input written through the BB, fully flushed, then the whole KV tier
  // crashes: a MapReduce job over that input must still succeed by reading
  // from Lustre.
  Cluster cluster(small_config(bb::Scheme::kAsync));
  std::uint64_t matches = ~0ull;
  cluster.sim().spawn([](Cluster& c, std::uint64_t& out) -> Task<void> {
    const auto kind = FsKind::kBurstBuffer;
    mapred::GenerateParams gen;
    gen.files = 4;
    gen.records_per_file = 50000;
    auto generated = co_await mapred::generate_records_input(
        c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), gen);
    CO_ASSERT(generated.is_ok());
    co_await c.bb_master().wait_all_flushed();
    for (std::uint32_t i = 0; i < c.kv_server_count(); ++i) {
      c.kv_server(i).crash();
    }
    auto runner = c.make_runner(kind);
    mapred::GrepJob job;
    std::vector<std::string> inputs;
    for (std::uint32_t i = 0; i < 4; ++i) {
      inputs.push_back(gen.dir + "/part-" + std::to_string(i));
    }
    auto stats = co_await runner->run(job, inputs, "/out/grep");
    // Note: the job OUTPUT also goes through the BB, whose servers are
    // down — so the run as a whole must fail cleanly, not hang or corrupt.
    CO_ASSERT(!stats.is_ok());
    out = 0;
  }(cluster, matches));
  cluster.sim().run();
  EXPECT_EQ(matches, 0u);
}

TEST(FailureTest, MapReduceReadsFlushedInputAfterKvRestart) {
  // Same as above but the KV tier restarts (empty) before the job: input
  // reads miss the buffer and fall back to Lustre; output writes go into
  // the fresh buffer. End-to-end success with verified results.
  Cluster cluster(small_config(bb::Scheme::kAsync));
  std::uint64_t input_checksum = 1, output_checksum = 2;
  cluster.sim().spawn([](Cluster& c, std::uint64_t& in_sum,
                         std::uint64_t& out_sum) -> Task<void> {
    const auto kind = FsKind::kBurstBuffer;
    mapred::GenerateParams gen;
    gen.files = 4;
    gen.records_per_file = 50000;
    auto generated = co_await mapred::generate_records_input(
        c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), gen);
    CO_ASSERT(generated.is_ok());
    in_sum = generated.value().checksum;
    co_await c.bb_master().wait_all_flushed();
    for (std::uint32_t i = 0; i < c.kv_server_count(); ++i) {
      c.kv_server(i).crash();
      c.kv_server(i).restart();
    }
    auto runner = c.make_runner(kind);
    mapred::SortJob job(4);
    std::vector<std::string> inputs;
    for (std::uint32_t i = 0; i < 4; ++i) {
      inputs.push_back(gen.dir + "/part-" + std::to_string(i));
    }
    auto stats = co_await runner->run(job, inputs, "/out/sort");
    CO_ASSERT(stats.is_ok());
    Bytes all;
    for (std::uint32_t r = 0; r < 4; ++r) {
      auto reader = co_await c.filesystem(kind).open(
          "/out/sort/part-" + std::to_string(r), 0);
      CO_ASSERT(reader.is_ok());
      auto data = co_await reader.value()->read(0, reader.value()->size());
      CO_ASSERT(data.is_ok());
      all.insert(all.end(), data.value().begin(), data.value().end());
    }
    CO_ASSERT(mapred::records_sorted(all));
    out_sum = mapred::records_checksum(all);
  }(cluster, input_checksum, output_checksum));
  cluster.sim().run();
  EXPECT_EQ(input_checksum, output_checksum);
}

TEST(FailureTest, HdfsDoubleDataNodeLossStillReadable) {
  // Two of four DataNodes die; with 3x replication at least one replica of
  // every block survives, and sequential re-replication restores health.
  Cluster cluster(small_config(bb::Scheme::kAsync));
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(FsKind::kHdfs);
    auto writer = co_await fs.create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(4, 0, 24 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    c.datanode(0).crash();
    (void)c.namenode().mark_datanode_dead(0);
    co_await c.sim().delay(1 * sec);  // let re-replication finish
    c.datanode(1).crash();
    (void)c.namenode().mark_datanode_dead(1);
    co_await c.sim().delay(1 * sec);
    auto reader = co_await fs.open("/f", 2);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 24 * MiB);
    CO_ASSERT(data.is_ok());
    ok = verify_pattern(4, 0, data.value());
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
}

TEST(FailureTest, SyncSchemeToleratesTotalBufferLossMidStream) {
  // BB-Sync: the KV tier dies between two files; the first file (durable
  // on Lustre at ack) remains fully readable.
  Cluster cluster(small_config(bb::Scheme::kSync));
  bool first_ok = false;
  StatusCode second{};
  cluster.sim().spawn([](Cluster& c, bool& ok, StatusCode& snd) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
    auto w1 = co_await fs.create("/f1", 0);
    CO_ASSERT(w1.is_ok());
    CO_ASSERT_OK(co_await w1.value()->append(
        make_bytes(pattern_bytes(5, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await w1.value()->close());
    for (std::uint32_t i = 0; i < c.kv_server_count(); ++i) {
      c.kv_server(i).crash();
    }
    // New writes now fail (buffer tier is the write path). Chunk stores are
    // windowed, so the error may only surface at close().
    auto w2 = co_await fs.create("/f2", 1);
    if (w2.is_ok()) {
      Status st = co_await w2.value()->append(
          make_bytes(pattern_bytes(6, 0, 1 * MiB)));
      if (st.is_ok()) st = co_await w2.value()->close();
      snd = st.code();
    }
    // ...but the durable file reads fine from Lustre.
    auto reader = co_await fs.open("/f1", 2);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(data.is_ok());
    ok = verify_pattern(5, 0, data.value());
  }(cluster, first_ok, second));
  cluster.sim().run();
  EXPECT_TRUE(first_ok);
  EXPECT_EQ(second, StatusCode::kUnavailable);
}

}  // namespace
}  // namespace hpcbb
