// Tests for the design extensions beyond the paper's base system: read
// promotion (buffer as read cache) and the ByteHistogram (WordCount-class)
// workload.
#include <gtest/gtest.h>

#include "testing/co_assert.h"
#include "common/units.h"
#include "cluster/cluster.h"
#include "mapred/workloads.h"
#include "sim/sync.h"

namespace hpcbb {
namespace {

using namespace hpcbb::duration;  // NOLINT
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::FsKind;
using net::NodeId;
using sim::SimTime;
using sim::Task;

ClusterConfig promo_config(bool promote) {
  ClusterConfig config;
  config.compute_nodes = 4;
  config.kv_servers = 2;
  config.oss_count = 2;
  config.block_size = 8 * MiB;
  config.kv_memory_per_server = 128 * MiB;
  config.bb_promote_on_read = promote;
  return config;
}

// Write a file, flush, wipe the buffer (crash+restart), then read twice.
// With promotion on, the second read must be served from the buffer and be
// substantially faster than the first (which paid the Lustre price).
TEST(ReadPromotionTest, SecondReadHitsBuffer) {
  Cluster cluster(promo_config(true));
  SimTime first_read = 0, second_read = 0;
  cluster.sim().spawn([](Cluster& c, SimTime& first, SimTime& second)
                          -> Task<void> {
    fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
    auto writer = co_await fs.create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(1, 0, 32 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    co_await c.bb_master().wait_all_flushed();
    for (std::uint32_t i = 0; i < c.kv_server_count(); ++i) {
      c.kv_server(i).crash();
      c.kv_server(i).restart();  // buffer now empty; data only on Lustre
    }

    auto reader = co_await fs.open("/f", 1);
    CO_ASSERT(reader.is_ok());
    SimTime t0 = c.sim().now();
    auto data1 = co_await reader.value()->read(0, 32 * MiB);
    CO_ASSERT(data1.is_ok());
    CO_ASSERT(verify_pattern(1, 0, data1.value()));
    first = c.sim().now() - t0;

    // Let detached promotion stores land.
    co_await c.sim().delay(100 * duration::ms);

    t0 = c.sim().now();
    auto data2 = co_await reader.value()->read(0, 32 * MiB);
    CO_ASSERT(data2.is_ok());
    CO_ASSERT(verify_pattern(1, 0, data2.value()));
    second = c.sim().now() - t0;
  }(cluster, first_read, second_read));
  cluster.sim().run();
  EXPECT_GT(static_cast<double>(first_read),
            2.0 * static_cast<double>(second_read))
      << "first=" << first_read << " second=" << second_read;
  // And the promoted chunks are real items in the stores.
  std::uint64_t items = 0;
  for (std::uint32_t i = 0; i < cluster.kv_server_count(); ++i) {
    items += cluster.kv_server(i).store().stats().items;
  }
  EXPECT_EQ(items, 32u);  // 32 MiB / 1 MiB chunks
}

TEST(ReadPromotionTest, OffByDefaultNoRepopulation) {
  Cluster cluster(promo_config(false));
  cluster.sim().spawn([](Cluster& c) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
    auto writer = co_await fs.create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(2, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    co_await c.bb_master().wait_all_flushed();
    for (std::uint32_t i = 0; i < c.kv_server_count(); ++i) {
      c.kv_server(i).crash();
      c.kv_server(i).restart();
    }
    auto reader = co_await fs.open("/f", 1);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(data.is_ok());
  }(cluster));
  cluster.sim().run();
  std::uint64_t items = 0;
  for (std::uint32_t i = 0; i < cluster.kv_server_count(); ++i) {
    items += cluster.kv_server(i).store().stats().items;
  }
  EXPECT_EQ(items, 0u);
}

TEST(ReadPromotionTest, PromotedDataSurvivesChecksumValidation) {
  // Full-block reads of promoted (padded, then trimmed) chunks must pass
  // the end-to-end CRC — exercising the pad/trim interplay.
  Cluster cluster(promo_config(true));
  cluster.sim().spawn([](Cluster& c) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
    const std::uint64_t size = 13 * MiB + 777;  // partial last block+chunk
    auto writer = co_await fs.create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(3, 0, size))));
    CO_ASSERT_OK(co_await writer.value()->close());
    co_await c.bb_master().wait_all_flushed();
    for (std::uint32_t i = 0; i < c.kv_server_count(); ++i) {
      c.kv_server(i).crash();
      c.kv_server(i).restart();
    }
    auto reader = co_await fs.open("/f", 1);
    CO_ASSERT(reader.is_ok());
    auto first = co_await reader.value()->read(0, size);
    CO_ASSERT(first.is_ok());
    co_await c.sim().delay(100 * duration::ms);
    auto second = co_await reader.value()->read(0, size);
    CO_ASSERT(second.is_ok());
    CO_ASSERT(verify_pattern(3, 0, second.value()));
  }(cluster));
  cluster.sim().run();
}

TEST(ByteHistogramTest, CountsEveryInputByte) {
  Cluster cluster(promo_config(false));
  std::uint64_t total = 0, expect = 0;
  cluster.sim().spawn([](Cluster& c, std::uint64_t& out,
                         std::uint64_t& want) -> Task<void> {
    const auto kind = FsKind::kBurstBuffer;
    mapred::GenerateParams gen;
    gen.files = 4;
    gen.records_per_file = 60000;
    auto generated = co_await mapred::generate_records_input(
        c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), gen);
    CO_ASSERT(generated.is_ok());
    want = generated.value().bytes;

    auto runner = c.make_runner(kind);
    mapred::ByteHistogramJob job(4);
    std::vector<std::string> inputs;
    for (std::uint32_t i = 0; i < 4; ++i) {
      inputs.push_back(gen.dir + "/part-" + std::to_string(i));
    }
    auto stats = co_await runner->run(job, inputs, "/out/hist");
    CO_ASSERT(stats.is_ok());
    out = job.total_count();
    // Combiner effect: shuffle is orders of magnitude below input.
    CO_ASSERT(stats.value().shuffle_bytes <
              stats.value().input_bytes / 100);
  }(cluster, total, expect));
  cluster.sim().run();
  EXPECT_EQ(total, expect);
  EXPECT_GT(expect, 0u);
}

TEST(ByteHistogramTest, ReducerCountsDontOverlap) {
  // Partitioned bins: with 3 reducers the ranges [0,86) [86,172) [172,256)
  // must cover all 256 values exactly once — verified by total == input.
  Cluster cluster(promo_config(false));
  std::uint64_t total = 0, expect = 0;
  cluster.sim().spawn([](Cluster& c, std::uint64_t& out,
                         std::uint64_t& want) -> Task<void> {
    const auto kind = FsKind::kHdfs;
    mapred::GenerateParams gen;
    gen.files = 2;
    gen.records_per_file = 40000;
    auto generated = co_await mapred::generate_records_input(
        c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), gen);
    CO_ASSERT(generated.is_ok());
    want = generated.value().bytes;
    auto runner = c.make_runner(kind);
    mapred::ByteHistogramJob job(3);  // uneven split of 256 bins
    const std::vector<std::string> inputs{gen.dir + "/part-0",
                                          gen.dir + "/part-1"};
    auto stats = co_await runner->run(job, inputs, "/out/hist");
    CO_ASSERT(stats.is_ok());
    out = job.total_count();
  }(cluster, total, expect));
  cluster.sim().run();
  EXPECT_EQ(total, expect);
}

}  // namespace
}  // namespace hpcbb
