// Differential testing: one randomized workload (create / append / read /
// stat / list / delete, with odd sizes and offsets) is replayed against all
// five storage configurations and checked against an in-memory reference
// model. Any divergence in visible file-system behaviour is a bug in that
// stack — this is the broadest correctness net in the suite.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "testing/co_assert.h"
#include "common/rng.h"
#include "common/units.h"
#include "cluster/cluster.h"
#include "sim/sync.h"

namespace hpcbb {
namespace {

using namespace hpcbb::duration;  // NOLINT
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::FsKind;
using net::NodeId;
using sim::Task;

struct FsCase {
  FsKind kind;
  bb::Scheme scheme;
  const char* label;
};

class DifferentialTest : public ::testing::TestWithParam<FsCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllFs, DifferentialTest,
    ::testing::Values(
        FsCase{FsKind::kHdfs, bb::Scheme::kAsync, "HDFS"},
        FsCase{FsKind::kLustre, bb::Scheme::kAsync, "Lustre"},
        FsCase{FsKind::kBurstBuffer, bb::Scheme::kAsync, "BBAsync"},
        FsCase{FsKind::kBurstBuffer, bb::Scheme::kSync, "BBSync"},
        FsCase{FsKind::kBurstBuffer, bb::Scheme::kLocal, "BBLocal"}),
    [](const auto& param_info) { return param_info.param.label; });

ClusterConfig tiny_config(bb::Scheme scheme) {
  ClusterConfig config;
  config.compute_nodes = 4;
  config.kv_servers = 2;
  config.oss_count = 2;
  config.block_size = 4 * MiB;  // small blocks: more boundary crossings
  config.kv_memory_per_server = 96 * MiB;
  config.scheme = scheme;
  return config;
}

// Reference model: path -> (seed, size). File contents are the
// deterministic pattern stream for (seed), so the model never stores data.
struct Model {
  struct File {
    std::uint64_t seed = 0;
    std::uint64_t size = 0;
  };
  std::map<std::string, File> files;
};

Task<void> random_workload(Cluster& c, FsKind kind, std::uint64_t rng_seed,
                           int ops, Model& model) {
  fs::FileSystem& fs = c.filesystem(kind);
  Rng rng(rng_seed);
  for (int op = 0; op < ops; ++op) {
    const NodeId node = static_cast<NodeId>(
        rng.uniform(0, c.compute_nodes().size() - 1));
    const std::string path = "/d/f" + std::to_string(rng.uniform(0, 5));
    switch (rng.uniform(0, 9)) {
      case 0:
      case 1:
      case 2: {  // create + write in odd-sized appends + close
        if (model.files.contains(path)) break;
        auto writer = co_await fs.create(path, node);
        CO_ASSERT(writer.is_ok());
        const std::uint64_t seed = rng.next();
        std::uint64_t size = 0;
        const int pieces = static_cast<int>(rng.uniform(1, 5));
        for (int p = 0; p < pieces; ++p) {
          const std::uint64_t n = rng.uniform(1, 3 * MiB);
          CO_ASSERT_OK(co_await writer.value()->append(
              make_bytes(pattern_bytes(seed, size, n))));
          size += n;
        }
        CO_ASSERT_OK(co_await writer.value()->close());
        model.files[path] = Model::File{seed, size};
        break;
      }
      case 3: {  // duplicate create must fail
        if (!model.files.contains(path)) break;
        const auto result = co_await fs.create(path, node);
        CO_ASSERT(result.code() == StatusCode::kAlreadyExists);
        break;
      }
      case 4:
      case 5:
      case 6: {  // random-range read, content-verified
        const auto it = model.files.find(path);
        if (it == model.files.end()) {
          CO_ASSERT((co_await fs.open(path, node)).code() ==
                    StatusCode::kNotFound);
          break;
        }
        auto reader = co_await fs.open(path, node);
        CO_ASSERT(reader.is_ok());
        CO_ASSERT(reader.value()->size() == it->second.size);
        if (it->second.size == 0) break;
        const std::uint64_t off = rng.uniform(0, it->second.size - 1);
        const std::uint64_t len = rng.uniform(1, it->second.size - off);
        auto data = co_await reader.value()->read(off, len);
        CO_ASSERT(data.is_ok());
        CO_ASSERT(data.value().size() == len);
        CO_ASSERT(verify_pattern(it->second.seed, off, data.value()));
        break;
      }
      case 7: {  // stat
        const auto it = model.files.find(path);
        auto info = co_await fs.stat(path, node);
        if (it == model.files.end()) {
          CO_ASSERT(info.code() == StatusCode::kNotFound);
        } else {
          CO_ASSERT(info.is_ok());
          CO_ASSERT(info.value().size == it->second.size);
        }
        break;
      }
      case 8: {  // list: exact namespace agreement
        auto listed = co_await fs.list("/d", node);
        CO_ASSERT(listed.is_ok());
        std::vector<std::string> expect;
        for (const auto& [p, f] : model.files) expect.push_back(p);
        CO_ASSERT(listed.value() == expect);
        break;
      }
      default: {  // delete
        const bool existed = model.files.erase(path) > 0;
        const Status st = co_await fs.remove(path, node);
        CO_ASSERT(st.is_ok() == existed);
        if (existed) {
          CO_ASSERT((co_await fs.open(path, node)).code() ==
                    StatusCode::kNotFound);
        }
        break;
      }
    }
  }
}

TEST_P(DifferentialTest, RandomWorkloadMatchesReferenceModel) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    Cluster cluster(tiny_config(GetParam().scheme));
    Model model;
    cluster.sim().spawn(random_workload(cluster, GetParam().kind, seed,
                                        /*ops=*/60, model));
    cluster.sim().run();
  }
}

TEST_P(DifferentialTest, ReadAfterFullFlushStillVerifies) {
  // Write, drain all flushes (BB), then read everything back: the durable
  // path must serve identical bytes to the buffered path.
  Cluster cluster(tiny_config(GetParam().scheme));
  cluster.sim().spawn([](Cluster& c, FsKind kind) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(kind);
    const std::uint64_t size = 10 * MiB + 321;
    auto writer = co_await fs.create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(9, 0, size))));
    CO_ASSERT_OK(co_await writer.value()->close());
    if (kind == FsKind::kBurstBuffer) {
      co_await c.bb_master().wait_all_flushed();
    }
    auto reader = co_await fs.open("/f", 3);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, size);
    CO_ASSERT(data.is_ok());
    CO_ASSERT(verify_pattern(9, 0, data.value()));
  }(cluster, GetParam().kind));
  cluster.sim().run();
}

TEST_P(DifferentialTest, ManySmallFiles) {
  // Metadata-heavy: 40 small files with odd sizes, all listed and read.
  Cluster cluster(tiny_config(GetParam().scheme));
  cluster.sim().spawn([](Cluster& c, FsKind kind) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(kind);
    for (int i = 0; i < 40; ++i) {
      const std::string path = "/small/f" + std::to_string(i);
      const std::uint64_t size = 1 + static_cast<std::uint64_t>(i) * 1337;
      auto writer = co_await fs.create(
          path, static_cast<NodeId>(static_cast<std::size_t>(i) %
                                    c.compute_nodes().size()));
      CO_ASSERT(writer.is_ok());
      CO_ASSERT_OK(co_await writer.value()->append(
          make_bytes(pattern_bytes(static_cast<std::uint64_t>(i), 0, size))));
      CO_ASSERT_OK(co_await writer.value()->close());
    }
    auto listed = co_await fs.list("/small", 0);
    CO_ASSERT(listed.is_ok());
    CO_ASSERT(listed.value().size() == 40u);
    for (int i = 0; i < 40; ++i) {
      const std::string path = "/small/f" + std::to_string(i);
      const std::uint64_t size = 1 + static_cast<std::uint64_t>(i) * 1337;
      auto reader = co_await fs.open(path, 1);
      CO_ASSERT(reader.is_ok());
      auto data = co_await reader.value()->read(0, size);
      CO_ASSERT(data.is_ok());
      CO_ASSERT(verify_pattern(static_cast<std::uint64_t>(i), 0, data.value()));
    }
  }(cluster, GetParam().kind));
  cluster.sim().run();
}

TEST_P(DifferentialTest, EmptyFile) {
  Cluster cluster(tiny_config(GetParam().scheme));
  cluster.sim().spawn([](Cluster& c, FsKind kind) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(kind);
    auto writer = co_await fs.create("/empty", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->close());
    auto info = co_await fs.stat("/empty", 1);
    CO_ASSERT(info.is_ok());
    CO_ASSERT(info.value().size == 0u);
    auto reader = co_await fs.open("/empty", 2);
    CO_ASSERT(reader.is_ok());
    CO_ASSERT(reader.value()->size() == 0u);
  }(cluster, GetParam().kind));
  cluster.sim().run();
}

TEST_P(DifferentialTest, ExactBlockMultipleSizes) {
  // Sizes landing exactly on block and chunk boundaries — historically
  // where off-by-one bugs live.
  Cluster cluster(tiny_config(GetParam().scheme));
  cluster.sim().spawn([](Cluster& c, FsKind kind) -> Task<void> {
    fs::FileSystem& fs = c.filesystem(kind);
    const std::uint64_t block = c.config().block_size;
    int idx = 0;
    for (const std::uint64_t size :
         {block, 2 * block, block - 1, block + 1, 1 * MiB, 1 * MiB + 1}) {
      const std::string path = "/edge/f" + std::to_string(idx++);
      auto writer = co_await fs.create(path, 0);
      CO_ASSERT(writer.is_ok());
      CO_ASSERT_OK(co_await writer.value()->append(
          make_bytes(pattern_bytes(size, 0, size))));
      CO_ASSERT_OK(co_await writer.value()->close());
      auto reader = co_await fs.open(path, 1);
      CO_ASSERT(reader.is_ok());
      CO_ASSERT(reader.value()->size() == size);
      auto data = co_await reader.value()->read(0, size);
      CO_ASSERT(data.is_ok());
      CO_ASSERT(verify_pattern(size, 0, data.value()));
    }
  }(cluster, GetParam().kind));
  cluster.sim().run();
}

}  // namespace
}  // namespace hpcbb
