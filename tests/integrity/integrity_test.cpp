// End-to-end data-integrity tests: seed-deterministic corruption injection,
// verified reads with read-repair at R=2, partial-read detection (the
// regression the per-chunk CRCs fix), scrubber-driven at-rest repair, and
// unrepairable-at-R=1 quarantine that keeps corrupt bytes off Lustre.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "testing/co_assert.h"
#include "common/units.h"
#include "cluster/cluster.h"
#include "kvstore/ring.h"
#include "sim/sync.h"

namespace hpcbb {
namespace {

using namespace hpcbb::duration;  // NOLINT
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::FsKind;
using sim::Task;

ClusterConfig small_config(bb::Scheme scheme) {
  ClusterConfig config;
  config.compute_nodes = 4;
  config.kv_servers = 2;
  config.oss_count = 2;
  config.block_size = 8 * MiB;
  config.kv_memory_per_server = 128 * MiB;
  config.scheme = scheme;
  return config;
}

Task<void> write_file(Cluster& c, const std::string& path, std::uint64_t seed,
                      std::uint64_t bytes) {
  fs::FileSystem& fs = c.filesystem(FsKind::kBurstBuffer);
  auto writer = co_await fs.create(path, 0);
  CO_ASSERT(writer.is_ok());
  CO_ASSERT_OK(co_await writer.value()->append(
      make_bytes(pattern_bytes(seed, 0, bytes))));
  CO_ASSERT_OK(co_await writer.value()->close());
}

// Corrupt the PRIMARY replica of `key`: the copy every reader (and the
// scrubber) fetches first. The ring is a pure function of the server count,
// so the test computes placement the same way every client does.
bool corrupt_primary(Cluster& c, const std::string& key,
                     std::uint64_t selector = 7) {
  const std::uint32_t primary =
      kv::HashRing(c.kv_server_count()).server_for(key);
  return !c.kv_server(primary)
              .store()
              .corrupt_one(selector, CorruptKind::kBitFlip, key)
              .empty();
}

TEST(IntegrityTest, VerifiedGetDetectsRepairsAndServesGoodDataAtR2) {
  // One replica of a buffer-resident chunk goes bad; the read detects the
  // mismatch, fails over to the good replica, overwrites the bad copy, and
  // the caller sees correct bytes throughout.
  ClusterConfig config = small_config(bb::Scheme::kAsync);
  config.kv_client.replication_factor = 2;
  Cluster cluster(config);
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    co_await write_file(c, "/f", 21, 8 * MiB);
    co_await c.bb_master().wait_all_flushed();
    CO_ASSERT(corrupt_primary(c, bb::chunk_key("/f", 0, 0)));
    auto reader = co_await c.filesystem(FsKind::kBurstBuffer).open("/f", 1);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(data.is_ok());
    ok = verify_pattern(21, 0, data.value());
    // Detection + repair happened on the read path.
    CO_ASSERT(c.sim().metrics().counter_value("kv.integrity.detected") >= 1u);
    CO_ASSERT(c.sim().metrics().counter_value("kv.integrity.repaired") >= 1u);
    // The repaired copy verifies: a second read detects nothing new.
    const std::uint64_t detected_before =
        c.sim().metrics().counter_value("kv.integrity.detected");
    auto again = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(again.is_ok());
    CO_ASSERT(verify_pattern(21, 0, again.value()));
    CO_ASSERT(c.sim().metrics().counter_value("kv.integrity.detected") ==
              detected_before);
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
  EXPECT_EQ(cluster.bb_master().quarantined_blocks(), 0u);
}

TEST(IntegrityTest, PartialReadDetectsMidBlockCorruption) {
  // Regression for the old full-block-only validate() guard: corrupt a
  // mid-block chunk at R=1, then read a sub-range that covers it. The old
  // code served the corrupt bytes silently; per-chunk CRCs detect the
  // mismatch and the read falls through to Lustre for good data.
  Cluster cluster(small_config(bb::Scheme::kAsync));
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    co_await write_file(c, "/p", 22, 8 * MiB);
    co_await c.bb_master().wait_all_flushed();
    // Chunk 3 sits mid-block: offset 3 MiB of an 8 MiB block.
    CO_ASSERT(corrupt_primary(c, bb::chunk_key("/p", 0, 3)));
    auto reader = co_await c.filesystem(FsKind::kBurstBuffer).open("/p", 1);
    CO_ASSERT(reader.is_ok());
    const std::uint64_t off = 3 * MiB + 100;
    auto data = co_await reader.value()->read(off, 2 * KiB);
    CO_ASSERT(data.is_ok());
    ok = verify_pattern(22, off, data.value());
    CO_ASSERT(c.sim().metrics().counter_value("kv.integrity.detected") >= 1u);
    CO_ASSERT(
        c.sim().metrics().counter_value("bb.read.lustre_fallbacks") >= 1u);
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
}

TEST(IntegrityTest, PartialReadDetectsCorruptLocalReplica) {
  // BB-Local: the node-local RAM-disk copy goes bad; a partial read now
  // reads a chunk-aligned covering range, catches the mismatch, and falls
  // through to the (good) buffer copy.
  Cluster cluster(small_config(bb::Scheme::kLocal));
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    co_await write_file(c, "/l", 23, 8 * MiB);
    co_await c.bb_master().wait_all_flushed();
    // Flip a bit at byte 5 MiB of the agent's 8 MiB replica object.
    CO_ASSERT(!c.agent(0)
                   .store()
                   .corrupt_one(bb::local_object("/l", 0), 5 * MiB,
                                CorruptKind::kBitFlip)
                   .empty());
    auto reader = co_await c.filesystem(FsKind::kBurstBuffer).open("/l", 0);
    CO_ASSERT(reader.is_ok());
    const std::uint64_t off = 5 * MiB + 17;
    auto data = co_await reader.value()->read(off, 4 * KiB);
    CO_ASSERT(data.is_ok());
    ok = verify_pattern(23, off, data.value());
    CO_ASSERT(
        c.sim().metrics().counter_value("bb.read.local_crc_failures") >= 1u);
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
}

TEST(IntegrityTest, ScrubberRepairsAtRestCorruption) {
  // Nobody reads the file; the background scrubber still finds the bad
  // replica on its pass and read-repair fixes it.
  ClusterConfig config = small_config(bb::Scheme::kAsync);
  config.kv_client.replication_factor = 2;
  config.bb_scrub.interval_ns = 50 * ms;
  Cluster cluster(config);
  bool verified = false;
  cluster.sim().spawn([](Cluster& c, bool& ok) -> Task<void> {
    co_await write_file(c, "/s", 24, 8 * MiB);
    co_await c.bb_master().wait_all_flushed();
    CO_ASSERT(corrupt_primary(c, bb::chunk_key("/s", 0, 2)));
    // Two scrub intervals: the pass after the corruption must cover it.
    co_await c.sim().delay(120 * ms);
    CO_ASSERT(c.sim().metrics().counter_value("kv.scrub.passes") >= 1u);
    CO_ASSERT(c.sim().metrics().counter_value("kv.integrity.detected") >= 1u);
    CO_ASSERT(c.sim().metrics().counter_value("kv.integrity.repaired") >= 1u);
    CO_ASSERT(c.sim().metrics().counter_value("kv.scrub.unrepairable") == 0u);
    // Post-repair, a reader sees good bytes without tripping detection.
    const std::uint64_t detected_before =
        c.sim().metrics().counter_value("kv.integrity.detected");
    auto reader = co_await c.filesystem(FsKind::kBurstBuffer).open("/s", 1);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(data.is_ok());
    ok = verify_pattern(24, 0, data.value());
    CO_ASSERT(c.sim().metrics().counter_value("kv.integrity.detected") ==
              detected_before);
    c.bb_master().stop_heartbeat();
  }(cluster, verified));
  cluster.sim().run();
  EXPECT_TRUE(verified);
  ASSERT_NE(cluster.bb_master().scrubber(), nullptr);
  EXPECT_GE(cluster.bb_master().scrubber()->passes(), 1u);
  EXPECT_EQ(cluster.bb_master().quarantined_blocks(), 0u);
}

TEST(IntegrityTest, UnrepairableDirtyBlockIsQuarantinedNotFlushed) {
  // R=1, flush paced far out: corrupt the only copy of a dirty chunk before
  // the flusher reads it. The flusher must detect the mismatch, quarantine
  // the block, and never write the corrupt bytes to Lustre; readers get
  // kDataLoss instead of garbage.
  ClusterConfig config = small_config(bb::Scheme::kAsync);
  config.bb_flowctl.background_pace_ns = 100 * ms;
  Cluster cluster(config);
  bool saw_data_loss = false;
  cluster.sim().spawn([](Cluster& c, bool& loss) -> Task<void> {
    co_await write_file(c, "/q", 25, 8 * MiB);
    // The block is sealed dirty; its flush is paced ~100 ms out.
    CO_ASSERT(c.bb_master().dirty_blocks() == 1u);
    CO_ASSERT(corrupt_primary(c, bb::chunk_key("/q", 0, 1)));
    co_await c.bb_master().wait_all_flushed();
    CO_ASSERT(c.bb_master().quarantined_blocks() == 1u);
    CO_ASSERT(c.bb_master().flushed_blocks() == 0u);
    CO_ASSERT(c.bb_master().lost_blocks() == 0u);
    auto reader = co_await c.filesystem(FsKind::kBurstBuffer).open("/q", 1);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(!data.is_ok());
    loss = data.code() == StatusCode::kDataLoss;
  }(cluster, saw_data_loss));
  cluster.sim().run();
  EXPECT_TRUE(saw_data_loss);
  EXPECT_EQ(cluster.bb_master().quarantined_blocks(), 1u);
  EXPECT_EQ(cluster.bb_master().flushed_blocks(), 0u);
  EXPECT_GE(cluster.sim().metrics().counter_value("bb.quarantined_blocks"),
            1u);
}

TEST(IntegrityTest, ScheduledCorruptionIsSeedDeterministic) {
  // Two runs with the same seed and corruption schedule produce identical
  // injection counters and identical integrity outcomes.
  const auto run = [](std::uint64_t seed) {
    ClusterConfig config = small_config(bb::Scheme::kAsync);
    config.kv_client.replication_factor = 2;
    config.faults.enabled = true;
    config.faults.seed = seed;
    config.faults.corrupt_first_ns = 20 * ms;
    config.faults.corrupt_period_ns = 10 * ms;
    config.faults.corrupt_count = 6;
    config.bb_scrub.interval_ns = 40 * ms;
    Cluster cluster(config);
    cluster.sim().spawn([](Cluster& c) -> Task<void> {
      co_await write_file(c, "/d", 26, 8 * MiB);
      co_await c.bb_master().wait_all_flushed();
      co_await c.sim().delay(200 * ms);
      c.bb_master().stop_heartbeat();
    }(cluster));
    cluster.sim().run();
    std::map<std::string, std::uint64_t> out;
    for (const auto& [name, value] : cluster.sim().metrics().counters()) {
      if (name.starts_with("faults.injected") ||
          name.starts_with("kv.integrity.") ||
          name.starts_with("kv.scrub.")) {
        out[name] = value;
      }
    }
    return out;
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a, b);
  // The schedule actually fired.
  std::uint64_t injected = 0;
  for (const auto& [name, value] : a) {
    if (name.starts_with("faults.injected{kind=corrupt.")) injected += value;
  }
  EXPECT_GE(injected, 1u);
}

}  // namespace
}  // namespace hpcbb
