#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"
#include "sim/sync.h"

namespace hpcbb::sim {
namespace {

using namespace hpcbb::duration;  // NOLINT

TEST(SimulationTest, TimeStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0u);
}

TEST(SimulationTest, DelayAdvancesTime) {
  Simulation sim;
  SimTime observed = 0;
  sim.spawn([](Simulation& s, SimTime& out) -> Task<void> {
    co_await s.delay(5 * us);
    out = s.now();
  }(sim, observed));
  sim.run();
  EXPECT_EQ(observed, 5 * us);
}

TEST(SimulationTest, SequentialDelaysAccumulate) {
  Simulation sim;
  std::vector<SimTime> stamps;
  sim.spawn([](Simulation& s, std::vector<SimTime>& out) -> Task<void> {
    co_await s.delay(10);
    out.push_back(s.now());
    co_await s.delay(20);
    out.push_back(s.now());
    co_await s.delay(0);
    out.push_back(s.now());
  }(sim, stamps));
  sim.run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 10u);
  EXPECT_EQ(stamps[1], 30u);
  EXPECT_EQ(stamps[2], 30u);
}

TEST(SimulationTest, EqualTimeEventsRunInSpawnOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.spawn([](Simulation& s, std::vector<int>& out, int id) -> Task<void> {
      co_await s.delay(100);
      out.push_back(id);
    }(sim, order, i));
  }
  sim.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulationTest, ProcessesInterleaveByTimestamp) {
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn([](Simulation& s, std::vector<std::string>& out) -> Task<void> {
    co_await s.delay(10);
    out.push_back("a10");
    co_await s.delay(20);  // wakes at 30
    out.push_back("a30");
  }(sim, log));
  sim.spawn([](Simulation& s, std::vector<std::string>& out) -> Task<void> {
    co_await s.delay(20);
    out.push_back("b20");
  }(sim, log));
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "a10");
  EXPECT_EQ(log[1], "b20");
  EXPECT_EQ(log[2], "a30");
}

TEST(SimulationTest, NestedTaskAwaitReturnsValue) {
  Simulation sim;
  int got = 0;
  auto child = [](Simulation& s) -> Task<int> {
    co_await s.delay(7);
    co_return 42;
  };
  sim.spawn([](Simulation& s, auto make_child, int& out) -> Task<void> {
    out = co_await make_child(s);
  }(sim, child, got));
  sim.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(sim.now(), 7u);
}

TEST(SimulationTest, SynchronousChildCompletesInline) {
  Simulation sim;
  int got = 0;
  auto child = []() -> Task<int> { co_return 5; };
  sim.spawn([](auto make_child, int& out) -> Task<void> {
    out = co_await make_child();
    out += co_await make_child();
  }(child, got));
  sim.run();
  EXPECT_EQ(got, 10);
}

TEST(SimulationTest, RunUntilLeavesFutureEventsQueued) {
  Simulation sim;
  int fired = 0;
  sim.spawn([](Simulation& s, int& out) -> Task<void> {
    co_await s.delay(100);
    out = 1;
    co_await s.delay(100);
    out = 2;
  }(sim, fired));
  sim.run_until(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 150u);
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 200u);
}

TEST(SimulationTest, BlockedProcessesAreReclaimedAtTeardown) {
  // A server loop blocked forever must not leak (ASAN would flag it).
  auto sim = std::make_unique<Simulation>();
  auto& s = *sim;
  auto cond = std::make_unique<Condition>(s);
  s.spawn([](Condition& c) -> Task<void> {
    co_await c.wait();  // never notified
  }(*cond));
  s.run();
  EXPECT_EQ(s.live_processes(), 1u);
  sim.reset();  // must destroy the suspended frame
}

TEST(SimulationTest, CompletedProcessesAreReaped) {
  Simulation sim;
  for (int i = 0; i < 100; ++i) {
    sim.spawn([](Simulation& s) -> Task<void> { co_await s.delay(1); }(sim));
  }
  sim.run();
  EXPECT_EQ(sim.live_processes(), 0u);
  EXPECT_GE(sim.events_processed(), 100u);
}

TEST(SimulationTest, DeterministicEventCount) {
  auto run_once = [] {
    Simulation sim;
    for (int i = 0; i < 50; ++i) {
      sim.spawn([](Simulation& s, int id) -> Task<void> {
        for (int k = 0; k < id % 7; ++k) {
          co_await s.delay(static_cast<SimTime>(id * 13 + k));
        }
      }(sim, i));
    }
    sim.run();
    return std::pair{sim.now(), sim.events_processed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimulationTest, DelayUntilPastIsImmediate) {
  Simulation sim;
  SimTime at = 123;
  sim.spawn([](Simulation& s, SimTime& out) -> Task<void> {
    co_await s.delay(50);
    co_await s.delay_until(10);  // in the past: no-op delay
    out = s.now();
  }(sim, at));
  sim.run();
  EXPECT_EQ(at, 50u);
}

}  // namespace
}  // namespace hpcbb::sim
