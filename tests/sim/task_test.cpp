// Edge cases of the Task<T> coroutine type itself: values, moves,
// exceptions, abandoned tasks, deep chains, move-only results.
#include "sim/task.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "common/units.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace hpcbb::sim {
namespace {

TEST(TaskTest, DefaultConstructedIsInvalid) {
  Task<int> task;
  EXPECT_FALSE(task.valid());
  EXPECT_FALSE(task.done());
}

TEST(TaskTest, MoveTransfersOwnership) {
  auto make = []() -> Task<int> { co_return 7; };
  Task<int> a = make();
  EXPECT_TRUE(a.valid());
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): intended
  EXPECT_TRUE(b.valid());
}

TEST(TaskTest, AbandonedUnstartedTaskDoesNotLeak) {
  // Created, never awaited, destroyed: the frame must be reclaimed (ASAN
  // builds verify the no-leak part; this at least exercises the path).
  auto make = [](std::shared_ptr<int> tracker) -> Task<int> {
    co_return *tracker;
  };
  auto tracker = std::make_shared<int>(5);
  {
    Task<int> task = make(tracker);
    EXPECT_EQ(tracker.use_count(), 2);  // one copy captured in the frame
  }
  EXPECT_EQ(tracker.use_count(), 1);  // frame destroyed with its params
}

TEST(TaskTest, ExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;
  auto thrower = []() -> Task<int> {
    throw std::runtime_error("boom");
    co_return 1;  // unreachable; makes this a coroutine
  };
  sim.spawn([](auto make_thrower, bool& out) -> Task<void> {
    try {
      (void)co_await make_thrower();
    } catch (const std::runtime_error& e) {
      out = std::string(e.what()) == "boom";
    }
  }(thrower, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(TaskTest, ExceptionAfterSuspension) {
  Simulation sim;
  bool caught = false;
  auto thrower = [](Simulation& s) -> Task<void> {
    co_await s.delay(10);
    throw std::runtime_error("late");
  };
  sim.spawn([](Simulation& s, auto make_thrower, bool& out) -> Task<void> {
    try {
      co_await make_thrower(s);
    } catch (const std::runtime_error&) {
      out = true;
    }
  }(sim, thrower, caught));
  sim.run();
  EXPECT_TRUE(caught);
  EXPECT_EQ(sim.now(), 10u);
}

TEST(TaskTest, MoveOnlyResultType) {
  Simulation sim;
  int got = 0;
  auto make = []() -> Task<std::unique_ptr<int>> {
    co_return std::make_unique<int>(99);
  };
  sim.spawn([](auto maker, int& out) -> Task<void> {
    std::unique_ptr<int> p = co_await maker();
    out = *p;
  }(make, got));
  sim.run();
  EXPECT_EQ(got, 99);
}

TEST(TaskTest, DeepSequentialChain) {
  // 10k-deep co_await chain: symmetric transfer must not blow the stack.
  Simulation sim;
  std::uint64_t result = 0;
  // Iterative chain: each level awaits the next via a recursive lambda.
  struct Chain {
    static Task<std::uint64_t> run(int depth) {
      if (depth == 0) co_return 0;
      co_return 1 + co_await run(depth - 1);
    }
  };
  sim.spawn([](std::uint64_t& out) -> Task<void> {
    out = co_await Chain::run(10000);
  }(result));
  sim.run();
  EXPECT_EQ(result, 10000u);
}

TEST(TaskTest, ManyConcurrentTasksComplete) {
  Simulation sim;
  int done = 0;
  sim.spawn([](Simulation& s, int& out) -> Task<void> {
    std::vector<Task<int>> tasks;
    for (int i = 0; i < 500; ++i) {
      tasks.push_back([](Simulation& s2, int id) -> Task<int> {
        co_await s2.delay(static_cast<SimTime>(id % 17));
        co_return id;
      }(s, i));
    }
    const std::vector<int> results =
        co_await parallel_collect(s, std::move(tasks));
    int sum = 0;
    for (const int r : results) sum += r;
    out = sum;
  }(sim, done));
  sim.run();
  EXPECT_EQ(done, 500 * 499 / 2);
}

TEST(TaskTest, ParallelCollectPreservesMoveOnlyValues) {
  Simulation sim;
  int sum = 0;
  sim.spawn([](Simulation& s, int& out) -> Task<void> {
    std::vector<Task<std::unique_ptr<int>>> tasks;
    for (int i = 1; i <= 4; ++i) {
      tasks.push_back([](Simulation& s2, int v) -> Task<std::unique_ptr<int>> {
        co_await s2.delay(1);
        co_return std::make_unique<int>(v);
      }(s, i));
    }
    auto results = co_await parallel_collect(s, std::move(tasks));
    for (const auto& p : results) out += *p;
  }(sim, sum));
  sim.run();
  EXPECT_EQ(sum, 10);
}

TEST(TaskTest, VoidTaskCompletes) {
  Simulation sim;
  bool ran = false;
  auto inner = [](bool& flag) -> Task<void> {
    flag = true;
    co_return;
  };
  sim.spawn([](auto maker, bool& flag) -> Task<void> {
    co_await maker(flag);
  }(inner, ran));
  sim.run();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace hpcbb::sim
