#include "sim/sync.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"
#include "sim/simulation.h"

namespace hpcbb::sim {
namespace {

using namespace hpcbb::duration;  // NOLINT

TEST(ConditionTest, NotifyOneWakesSingleWaiter) {
  Simulation sim;
  Condition cond(sim);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Condition& c, int& out) -> Task<void> {
      co_await c.wait();
      ++out;
    }(cond, woken));
  }
  sim.spawn([](Simulation& s, Condition& c) -> Task<void> {
    co_await s.delay(10);
    c.notify_one();
  }(sim, cond));
  sim.run();
  EXPECT_EQ(woken, 1);
  EXPECT_EQ(cond.waiter_count(), 2u);
}

TEST(ConditionTest, NotifyAllWakesEveryone) {
  Simulation sim;
  Condition cond(sim);
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](Condition& c, int& out) -> Task<void> {
      co_await c.wait();
      ++out;
    }(cond, woken));
  }
  sim.spawn([](Simulation& s, Condition& c) -> Task<void> {
    co_await s.delay(1);
    c.notify_all();
  }(sim, cond));
  sim.run();
  EXPECT_EQ(woken, 5);
  EXPECT_EQ(cond.waiter_count(), 0u);
}

TEST(EventTest, LatchedSemantics) {
  Simulation sim;
  Event ev(sim);
  std::vector<SimTime> wakeups;
  // Early waiter.
  sim.spawn([](Simulation& s, Event& e, std::vector<SimTime>& out) -> Task<void> {
    co_await e.wait();
    out.push_back(s.now());
  }(sim, ev, wakeups));
  sim.spawn([](Simulation& s, Event& e) -> Task<void> {
    co_await s.delay(100);
    e.set();
  }(sim, ev));
  // Late waiter: waits after the event is already set.
  sim.spawn([](Simulation& s, Event& e, std::vector<SimTime>& out) -> Task<void> {
    co_await s.delay(200);
    co_await e.wait();
    out.push_back(s.now());
  }(sim, ev, wakeups));
  sim.run();
  ASSERT_EQ(wakeups.size(), 2u);
  EXPECT_EQ(wakeups[0], 100u);
  EXPECT_EQ(wakeups[1], 200u);
  EXPECT_TRUE(ev.is_set());
}

TEST(ChannelTest, PushThenRecv) {
  Simulation sim;
  Channel<int> ch(sim);
  int got = 0;
  ch.push(7);
  sim.spawn([](Channel<int>& c, int& out) -> Task<void> {
    out = co_await c.recv();
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, 7);
}

TEST(ChannelTest, RecvBlocksUntilPush) {
  Simulation sim;
  Channel<std::string> ch(sim);
  std::string got;
  SimTime at = 0;
  sim.spawn([](Simulation& s, Channel<std::string>& c, std::string& out,
               SimTime& t) -> Task<void> {
    out = co_await c.recv();
    t = s.now();
  }(sim, ch, got, at));
  sim.spawn([](Simulation& s, Channel<std::string>& c) -> Task<void> {
    co_await s.delay(42);
    c.push("block-data");
  }(sim, ch));
  sim.run();
  EXPECT_EQ(got, "block-data");
  EXPECT_EQ(at, 42u);
}

TEST(ChannelTest, FifoOrderPreserved) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    for (int i = 0; i < 5; ++i) out.push_back(co_await c.recv());
  }(ch, got));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      c.push(i);
      co_await s.delay(1);
    }
  }(sim, ch));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelTest, ManyConsumersEachItemDeliveredOnce) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  for (int c = 0; c < 4; ++c) {
    sim.spawn([](Channel<int>& chan, std::vector<int>& out) -> Task<void> {
      for (;;) {
        const int v = co_await chan.recv();
        out.push_back(v);
      }
    }(ch, got));
  }
  sim.spawn([](Simulation& s, Channel<int>& chan) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      chan.push(i);
      if (i % 3 == 0) co_await s.delay(5);
    }
  }(sim, ch));
  sim.run();
  ASSERT_EQ(got.size(), 20u);
  std::vector<int> sorted = got;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(ChannelTest, TryRecv) {
  Simulation sim;
  Channel<int> ch(sim);
  int out = 0;
  EXPECT_FALSE(ch.try_recv(out));
  ch.push(9);
  EXPECT_TRUE(ch.try_recv(out));
  EXPECT_EQ(out, 9);
  EXPECT_TRUE(ch.empty());
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  int concurrent = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i) {
    sim.spawn([](Simulation& s, Semaphore& sm, int& cur, int& pk) -> Task<void> {
      co_await sm.acquire();
      ++cur;
      pk = std::max(pk, cur);
      co_await s.delay(10);
      --cur;
      sm.release();
    }(sim, sem, concurrent, peak));
  }
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(concurrent, 0);
  EXPECT_EQ(sem.available(), 2u);
  // 6 jobs, width 2, 10 ns each => 30 ns.
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SemaphoreTest, TryAcquire) {
  Simulation sim;
  Semaphore sem(sim, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(SemaphoreTest, MultiPermitAcquire) {
  Simulation sim;
  Semaphore sem(sim, 4);
  std::vector<int> order;
  sim.spawn([](Simulation& s, Semaphore& sm, std::vector<int>& out) -> Task<void> {
    co_await sm.acquire(4);
    out.push_back(1);
    co_await s.delay(10);
    sm.release(4);
  }(sim, sem, order));
  sim.spawn([](Semaphore& sm, std::vector<int>& out) -> Task<void> {
    co_await sm.acquire(3);
    out.push_back(2);
    sm.release(3);
  }(sem, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ParallelTest, JoinsAllBranches) {
  Simulation sim;
  std::vector<int> done;
  sim.spawn([](Simulation& s, std::vector<int>& out) -> Task<void> {
    std::vector<Task<void>> branches;
    for (int i = 0; i < 4; ++i) {
      branches.push_back([](Simulation& s2, std::vector<int>& o, int id) -> Task<void> {
        co_await s2.delay(static_cast<SimTime>(10 * (id + 1)));
        o.push_back(id);
      }(s, out, i));
    }
    co_await parallel(s, std::move(branches));
    out.push_back(99);
  }(sim, done));
  sim.run();
  ASSERT_EQ(done.size(), 5u);
  EXPECT_EQ(done.back(), 99);
  EXPECT_EQ(sim.now(), 40u);  // joined at the slowest branch
}

TEST(ParallelTest, EmptyListCompletesImmediately) {
  Simulation sim;
  bool done = false;
  sim.spawn([](Simulation& s, bool& out) -> Task<void> {
    co_await parallel(s, {});
    out = true;
  }(sim, done));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0u);
}

TEST(ParallelTest, CollectPreservesInputOrder) {
  Simulation sim;
  std::vector<int> results;
  sim.spawn([](Simulation& s, std::vector<int>& out) -> Task<void> {
    std::vector<Task<int>> branches;
    for (int i = 0; i < 4; ++i) {
      branches.push_back([](Simulation& s2, int id) -> Task<int> {
        // Later branches finish earlier; results must still be input-ordered.
        co_await s2.delay(static_cast<SimTime>(100 - id * 10));
        co_return id * id;
      }(s, i));
    }
    out = co_await parallel_collect(s, std::move(branches));
  }(sim, results));
  sim.run();
  EXPECT_EQ(results, (std::vector<int>{0, 1, 4, 9}));
}

}  // namespace
}  // namespace hpcbb::sim
