#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace hpcbb::sim {
namespace {

using namespace hpcbb::duration;  // NOLINT

TEST(BandwidthQueueTest, SingleTransferTakesSerializationTime) {
  Simulation sim;
  BandwidthQueue link(sim, 100 * MB);  // 100 MB/s
  sim.spawn([](BandwidthQueue& l) -> Task<void> {
    co_await l.transfer(50 * MB);
  }(link));
  sim.run();
  EXPECT_EQ(sim.now(), 500 * ms);
  EXPECT_EQ(link.bytes_moved(), 50 * MB);
}

TEST(BandwidthQueueTest, ConcurrentTransfersSerialize) {
  Simulation sim;
  BandwidthQueue link(sim, 100 * MB);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulation& s, BandwidthQueue& l,
                 std::vector<SimTime>& out) -> Task<void> {
      co_await l.transfer(10 * MB);  // 100 ms each
      out.push_back(s.now());
    }(sim, link, completions));
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], 100 * ms);
  EXPECT_EQ(completions[1], 200 * ms);
  EXPECT_EQ(completions[2], 300 * ms);
  EXPECT_EQ(link.busy_ns(), 300 * ms);
}

TEST(BandwidthQueueTest, IdleGapsDoNotAccumulate) {
  Simulation sim;
  BandwidthQueue link(sim, 100 * MB);
  sim.spawn([](Simulation& s, BandwidthQueue& l) -> Task<void> {
    co_await l.transfer(10 * MB);  // done at 100 ms
    co_await s.delay(1 * sec);     // idle gap
    co_await l.transfer(10 * MB);  // starts fresh, done at 1.2 s
  }(sim, link));
  sim.run();
  EXPECT_EQ(sim.now(), 1200 * ms);
  EXPECT_EQ(link.busy_ns(), 200 * ms);
}

TEST(BandwidthQueueTest, BacklogVisible) {
  Simulation sim;
  BandwidthQueue link(sim, 100 * MB);
  SimTime backlog_at_submit = 0;
  sim.spawn([](BandwidthQueue& l) -> Task<void> {
    co_await l.transfer(100 * MB);  // occupies [0, 1 s)
  }(link));
  sim.spawn([](BandwidthQueue& l, SimTime& out) -> Task<void> {
    out = l.backlog_ns();
    co_await l.transfer(1 * MB);
  }(link, backlog_at_submit));
  sim.run();
  // The second submitter saw a 1 s backlog (first transfer queued ahead).
  EXPECT_EQ(backlog_at_submit, 1 * sec);
}

TEST(BandwidthQueueTest, ZeroRateMeansInstant) {
  // Rate 0 disables the bandwidth model (used for infinitely-fast stand-ins
  // in unit tests of higher layers).
  Simulation sim;
  BandwidthQueue link(sim, 0);
  sim.spawn([](BandwidthQueue& l) -> Task<void> {
    co_await l.transfer(100 * GiB);
  }(link));
  sim.run();
  EXPECT_EQ(sim.now(), 0u);
}

TEST(BandwidthQueueTest, AggregateThroughputMatchesRate) {
  Simulation sim;
  BandwidthQueue link(sim, 250 * MB);
  constexpr std::uint64_t kChunk = 4 * MiB;
  constexpr int kChunks = 100;
  for (int i = 0; i < kChunks; ++i) {
    sim.spawn([](BandwidthQueue& l) -> Task<void> {
      co_await l.transfer(kChunk);
    }(link));
  }
  sim.run();
  const double mbps = throughput_mbps(kChunk * kChunks, sim.now());
  EXPECT_NEAR(mbps, 250.0, 0.5);
}

}  // namespace
}  // namespace hpcbb::sim
