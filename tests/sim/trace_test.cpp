#include "sim/trace.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/sync.h"

namespace hpcbb::sim {
namespace {

using namespace hpcbb::duration;  // NOLINT

TEST(TraceTest, SpansCaptureSimulatedTime) {
  Simulation sim;
  TraceRecorder trace(sim);
  sim.spawn([](Simulation& s, TraceRecorder& t) -> Task<void> {
    const std::size_t span = t.begin("op.one", "test", 3);
    co_await s.delay(100 * us);
    t.end(span);
  }(sim, trace));
  sim.run();
  ASSERT_EQ(trace.spans().size(), 1u);
  const TraceSpan& span = trace.spans()[0];
  EXPECT_EQ(span.name, "op.one");
  EXPECT_EQ(span.category, "test");
  EXPECT_EQ(span.track, 3u);
  EXPECT_EQ(span.begin_ns, 0u);
  EXPECT_EQ(span.end_ns, 100 * us);
}

TEST(TraceTest, InterleavedSpansCloseByIndex) {
  Simulation sim;
  TraceRecorder trace(sim);
  sim.spawn([](Simulation& s, TraceRecorder& t) -> Task<void> {
    const std::size_t a = t.begin("a", "x", 0);
    co_await s.delay(10);
    const std::size_t b = t.begin("b", "x", 0);
    co_await s.delay(10);
    t.end(a);  // out of order relative to b
    co_await s.delay(10);
    t.end(b);
  }(sim, trace));
  sim.run();
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[0].end_ns, 20u);
  EXPECT_EQ(trace.spans()[1].end_ns, 30u);
  EXPECT_EQ(trace.open_span_count(), 0u);
}

TEST(TraceTest, ScopedSpanClosesOnExit) {
  Simulation sim;
  TraceRecorder trace(sim);
  sim.spawn([](Simulation& s, TraceRecorder& t) -> Task<void> {
    {
      ScopedSpan span(&t, "scoped", "x", 1);
      co_await s.delay(42);
    }
    co_await s.delay(58);
  }(sim, trace));
  sim.run();
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].end_ns, 42u);
}

TEST(TraceTest, NullRecorderScopedSpanIsNoop) {
  ScopedSpan span(nullptr, "n", "x", 0);  // must not crash
}

TEST(TraceTest, ChromeJsonWellFormedish) {
  Simulation sim;
  TraceRecorder trace(sim);
  trace.record("op \"quoted\"", "cat", 2, 1000, 3000);
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceTest, ChromeJsonEscapesBackslashesAndControlChars) {
  Simulation sim;
  TraceRecorder trace(sim);
  trace.record("path\\with\\backslashes", "cat", 0, 0, 1000);
  trace.record("line\nbreak\ttab", "cat", 0, 0, 1000);
  const std::string json = trace.to_chrome_json();
  // Each source backslash must appear doubled in the JSON output.
  EXPECT_NE(json.find("path\\\\with\\\\backslashes"), std::string::npos);
  // Raw control characters are illegal inside JSON strings.
  EXPECT_NE(json.find("line\\nbreak\\ttab"), std::string::npos);
  EXPECT_EQ(json.find('\n', json.find("line")), std::string::npos);
}

TEST(TraceTest, UnfinishedSpanClampedToNowNotZero) {
  // A span still open when the trace is dumped gets its duration clamped to
  // the current simulated time — visible (nonzero) at microsecond scale.
  Simulation sim;
  TraceRecorder trace(sim);
  sim.spawn([](Simulation& s, TraceRecorder& t) -> Task<void> {
    co_await s.delay(100 * us);
    (void)t.begin("open", "x", 0);
    co_await s.delay(250 * us);
  }(sim, trace));
  sim.run();
  ASSERT_EQ(trace.open_span_count(), 1u);
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);  // clamped to now
  // Dumping must not close the span: a later end() still works.
  EXPECT_EQ(trace.open_span_count(), 1u);
}

TEST(TraceTest, UnfinishedSpanClampedToNow) {
  Simulation sim;
  TraceRecorder trace(sim);
  sim.spawn([](Simulation& s, TraceRecorder& t) -> Task<void> {
    (void)t.begin("open", "x", 0);
    co_await s.delay(500);
  }(sim, trace));
  sim.run();
  EXPECT_EQ(trace.open_span_count(), 1u);
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"dur\":0"), std::string::npos);  // 500ns -> 0us
}

TEST(TraceTest, SummaryAggregatesByPrefix) {
  Simulation sim;
  TraceRecorder trace(sim);
  trace.record("flush.block_1", "bb", 0, 0, 1000);
  trace.record("flush.block_2", "bb", 0, 1000, 4000);
  trace.record("read.chunk_9", "kv", 1, 0, 500);
  const std::string summary = trace.summary();
  EXPECT_NE(summary.find("bb\tflush\t2\t4000"), std::string::npos);
  EXPECT_NE(summary.find("kv\tread\t1\t500"), std::string::npos);
}

// Regression: a span that *ends* at t=0 used to be indistinguishable from an
// open span (end_ns == 0 was the open sentinel) and got clamped to now.
TEST(TraceTest, SpanEndingAtTimeZeroIsClosed) {
  Simulation sim;
  TraceRecorder trace(sim);
  sim.spawn([](Simulation& s, TraceRecorder& t) -> Task<void> {
    const std::size_t span = t.begin("instant", "test", 0);
    t.end(span);  // zero-duration span at t=0
    co_await s.delay(1 * ms);
  }(sim, trace));
  sim.run();
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.open_span_count(), 0u);
  EXPECT_EQ(trace.spans()[0].end_ns, 0u);
  // Chrome JSON must report dur 0, not 1 ms.
  EXPECT_NE(trace.to_chrome_json().find("\"dur\":0"), std::string::npos);
}

TEST(TraceTest, OpIdEmittedInChromeArgs) {
  Simulation sim;
  TraceRecorder trace(sim);
  sim.spawn([](Simulation& s, TraceRecorder& t) -> Task<void> {
    const std::size_t span = t.begin("write", "kv", 1, /*op_id=*/42);
    co_await s.delay(10 * us);
    t.end(span);
    t.record("plain", "kv", 2, 0, 5 * us);  // no op_id: no args field
  }(sim, trace));
  sim.run();
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"args\":{\"op_id\":42}"), std::string::npos);
  // Exactly one args field: spans without an op_id stay unannotated.
  EXPECT_EQ(json.find("\"args\""), json.rfind("\"args\""));
}

TEST(TraceTest, ClearResets) {
  Simulation sim;
  TraceRecorder trace(sim);
  trace.record("a", "b", 0, 0, 1);
  trace.clear();
  EXPECT_TRUE(trace.spans().empty());
}

}  // namespace
}  // namespace hpcbb::sim
