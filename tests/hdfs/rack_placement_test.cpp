// HDFS rack-aware placement on a two-level fabric: the classic
// (writer, off-rack, same-rack-as-second) replica policy.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "testing/co_assert.h"
#include "common/units.h"
#include "hdfs/client.h"
#include "hdfs/datanode.h"
#include "hdfs/namenode.h"
#include "sim/sync.h"

namespace hpcbb::hdfs {
namespace {

using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::Simulation;
using sim::Task;

struct Rig {
  Simulation sim;
  net::Fabric fabric;
  net::Transport transport;
  net::RpcHub hub;
  std::vector<std::unique_ptr<DataNode>> datanodes;
  std::unique_ptr<NameNode> namenode;
  std::unique_ptr<HdfsFileSystem> fs;

  // 8 DataNodes in 2 racks of 4; NameNode on node 8 (rack 2).
  Rig() : fabric(sim, 9, racked()), transport(fabric,
              net::transport_preset(net::TransportKind::kIpoib)),
          hub(transport) {
    std::vector<NodeId> dn_nodes;
    for (NodeId i = 0; i < 8; ++i) {
      datanodes.push_back(std::make_unique<DataNode>(hub, i, DataNodeParams{}));
      dn_nodes.push_back(i);
    }
    NameNodeParams nn;
    nn.default_block_size = 4 * MiB;
    namenode = std::make_unique<NameNode>(hub, 8, dn_nodes, nn);
    fs = std::make_unique<HdfsFileSystem>(hub, 8);
  }

  static net::FabricParams racked() {
    net::FabricParams p;
    p.nodes_per_rack = 4;
    return p;
  }
};

TEST(RackPlacementTest, ReplicasSpanRacksByPolicy) {
  Rig rig;
  std::vector<std::vector<NodeId>> locations;
  rig.sim.spawn([](Rig& r, std::vector<std::vector<NodeId>>& out) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      const std::string path = "/f" + std::to_string(i);
      auto writer = co_await r.fs->create(path, /*writer=*/1);
      CO_ASSERT(writer.is_ok());
      CO_ASSERT_OK(co_await writer.value()->append(
          make_bytes(pattern_bytes(static_cast<std::uint64_t>(i), 0, 2 * MiB))));
      CO_ASSERT_OK(co_await writer.value()->close());
      auto locs = co_await r.fs->block_locations(path, 1);
      CO_ASSERT(locs.is_ok());
      out.push_back(locs.value().front());
    }
  }(rig, locations));
  rig.sim.run();

  ASSERT_EQ(locations.size(), 10u);
  for (const auto& nodes : locations) {
    ASSERT_EQ(nodes.size(), 3u);
    EXPECT_EQ(nodes[0], 1u);  // writer-local
    // Second replica: different rack than the writer (rack 0).
    EXPECT_EQ(rig.fabric.rack_of(nodes[1]), 1u);
    // Third replica: same rack as the second, distinct node.
    EXPECT_EQ(rig.fabric.rack_of(nodes[2]), rig.fabric.rack_of(nodes[1]));
    EXPECT_NE(nodes[1], nodes[2]);
    // Two racks total: tolerates the loss of either whole rack.
    std::set<std::uint32_t> racks;
    for (const NodeId n : nodes) racks.insert(rig.fabric.rack_of(n));
    EXPECT_EQ(racks.size(), 2u);
  }
}

TEST(RackPlacementTest, WholeRackLossLeavesDataReadable) {
  Rig rig;
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto writer = co_await r.fs->create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(7, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
  }(rig));
  rig.sim.run();
  // Kill all of rack 0 (nodes 0-3).
  for (NodeId n = 0; n < 4; ++n) {
    rig.datanodes[n]->crash();
    (void)rig.namenode->mark_datanode_dead(n);
  }
  rig.sim.run();  // drain re-replication
  bool ok = false;
  rig.sim.spawn([](Rig& r, bool& out) -> Task<void> {
    auto reader = co_await r.fs->open("/f", 5);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(data.is_ok());
    out = verify_pattern(7, 0, data.value());
  }(rig, ok));
  rig.sim.run();
  EXPECT_TRUE(ok);
}

TEST(RackPlacementTest, SingleRackClusterStillPlaces) {
  // Degenerate: everything in one rack — policy falls back gracefully.
  Simulation sim;
  net::FabricParams fp;
  fp.nodes_per_rack = 16;
  net::Fabric fabric(sim, 5, fp);
  net::Transport transport(fabric,
                           net::transport_preset(net::TransportKind::kIpoib));
  net::RpcHub hub(transport);
  std::vector<std::unique_ptr<DataNode>> dns;
  std::vector<NodeId> dn_nodes;
  for (NodeId i = 0; i < 4; ++i) {
    dns.push_back(std::make_unique<DataNode>(hub, i, DataNodeParams{}));
    dn_nodes.push_back(i);
  }
  NameNodeParams nn;
  nn.default_block_size = 4 * MiB;
  NameNode namenode(hub, 4, dn_nodes, nn);
  HdfsFileSystem fs(hub, 4);
  std::vector<NodeId> nodes;
  sim.spawn([](HdfsFileSystem& f, std::vector<NodeId>& out) -> Task<void> {
    auto writer = co_await f.create("/f", 2);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(1, 0, 1 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    auto locs = co_await f.block_locations("/f", 2);
    CO_ASSERT(locs.is_ok());
    out = locs.value().front();
  }(fs, nodes));
  sim.run();
  ASSERT_EQ(nodes.size(), 3u);
  std::set<NodeId> uniq(nodes.begin(), nodes.end());
  EXPECT_EQ(uniq.size(), 3u);
}

}  // namespace
}  // namespace hpcbb::hdfs
