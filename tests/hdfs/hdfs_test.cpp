// HDFS stack tests: namespace, pipelined replication, locality, checksum
// validation, failure handling and re-replication.
#include <gtest/gtest.h>

#include <set>

#include "testing/co_assert.h"
#include "common/units.h"
#include "hdfs/client.h"
#include "hdfs/datanode.h"
#include "hdfs/namenode.h"
#include "sim/sync.h"

namespace hpcbb::hdfs {
namespace {

using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::Simulation;
using sim::Task;

// Node layout: 0..n-1 compute nodes (each runs a DataNode), n = NameNode.
struct Rig {
  Simulation sim;
  net::Fabric fabric;
  net::Transport transport;
  net::RpcHub hub;
  std::vector<std::unique_ptr<DataNode>> datanodes;
  std::unique_ptr<NameNode> namenode;
  std::unique_ptr<HdfsFileSystem> fs;

  explicit Rig(std::uint32_t n_dn = 4, HdfsClientParams client_params = {})
      : fabric(sim, n_dn + 1, net::FabricParams{}),
        transport(fabric, net::transport_preset(net::TransportKind::kIpoib)),
        hub(transport) {
    std::vector<NodeId> dn_nodes;
    for (std::uint32_t i = 0; i < n_dn; ++i) {
      datanodes.push_back(std::make_unique<DataNode>(hub, i, DataNodeParams{}));
      dn_nodes.push_back(i);
    }
    NameNodeParams nn;
    nn.default_block_size = 8 * MiB;  // small blocks keep tests fast
    namenode = std::make_unique<NameNode>(hub, n_dn, dn_nodes, nn);
    fs = std::make_unique<HdfsFileSystem>(hub, n_dn, client_params);
  }
};

TEST(HdfsTest, WriteReadRoundTrip) {
  Rig rig;
  Bytes got;
  rig.sim.spawn([](Rig& r, Bytes& out) -> Task<void> {
    auto w = co_await r.fs->create("/user/f1", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(
        make_bytes(pattern_bytes(1, 0, 20 * MiB + 55))));
    CO_ASSERT_OK(co_await w.value()->close());

    auto rd = co_await r.fs->open("/user/f1", 2);
    CO_ASSERT_OK(rd);
    CO_ASSERT(rd.value()->size() == 20 * MiB + 55);
    auto data = co_await rd.value()->read(0, 20 * MiB + 55);
    CO_ASSERT_OK(data);
    out = std::move(data).value();
  }(rig, got));
  rig.sim.run();
  ASSERT_EQ(got.size(), 20 * MiB + 55);
  EXPECT_TRUE(verify_pattern(1, 0, got));
}

TEST(HdfsTest, TripleReplicationWriterLocalFirst) {
  Rig rig;
  std::vector<std::vector<NodeId>> locs;
  rig.sim.spawn([](Rig& r, std::vector<std::vector<NodeId>>& out) -> Task<void> {
    auto w = co_await r.fs->create("/f", 1);  // writer = node 1
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(
        make_bytes(pattern_bytes(2, 0, 20 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
    auto l = co_await r.fs->block_locations("/f", 1);
    CO_ASSERT_OK(l);
    out = l.value();
  }(rig, locs));
  rig.sim.run();
  ASSERT_EQ(locs.size(), 3u);  // 20 MiB / 8 MiB blocks
  for (const auto& nodes : locs) {
    ASSERT_EQ(nodes.size(), 3u);
    EXPECT_EQ(nodes.front(), 1u);  // writer-local replica
    // Replicas are distinct nodes.
    std::set<NodeId> uniq(nodes.begin(), nodes.end());
    EXPECT_EQ(uniq.size(), 3u);
  }
  // Every replica holds real bytes on its local disk.
  std::uint64_t total = 0;
  for (const auto& dn : rig.datanodes) total += dn->used_bytes();
  EXPECT_EQ(total, 3 * 20 * MiB);
}

TEST(HdfsTest, CustomReplicationFactor) {
  Rig rig(5, HdfsClientParams{.replication = 2});
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto w = co_await r.fs->create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(make_bytes(pattern_bytes(3, 0, 4 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
  }(rig));
  rig.sim.run();
  std::uint64_t total = 0;
  for (const auto& dn : rig.datanodes) total += dn->used_bytes();
  EXPECT_EQ(total, 2 * 4 * MiB);
}

TEST(HdfsTest, ReadPrefersLocalReplica) {
  Rig rig;
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto w = co_await r.fs->create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(make_bytes(pattern_bytes(4, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
  }(rig));
  rig.sim.run();
  // Reading from node 0 (writer, has local replica) must not pull data from
  // remote nodes: their sent-bytes counters stay flat across the read.
  std::uint64_t remote_before = 0;
  for (NodeId n = 1; n < 4; ++n) remote_before += rig.fabric.bytes_sent(n);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto rd = co_await r.fs->open("/f", 0);
    CO_ASSERT_OK(rd);
    auto data = co_await rd.value()->read(0, 8 * MiB);
    CO_ASSERT_OK(data);
    CO_ASSERT(verify_pattern(4, 0, data.value()));
  }(rig));
  rig.sim.run();
  std::uint64_t remote_after = 0;
  for (NodeId n = 1; n < 4; ++n) remote_after += rig.fabric.bytes_sent(n);
  EXPECT_LT(remote_after - remote_before, 1 * MiB);
}

TEST(HdfsTest, ChecksumMismatchDetected) {
  Rig rig(3);
  BlockId block{};
  rig.sim.spawn([](Rig& r, BlockId& blk) -> Task<void> {
    auto w = co_await r.fs->create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(make_bytes(pattern_bytes(5, 0, 2 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
    auto l = co_await r.fs->locations("/f", 0);
    CO_ASSERT_OK(l);
    blk = l.value().blocks.front().block_id;
  }(rig, block));
  rig.sim.run();
  // Corrupt every replica, then a full-block read must fail kDataLoss.
  for (auto& dn : rig.datanodes) dn->corrupt_block(block);
  StatusCode code{};
  rig.sim.spawn([](Rig& r, StatusCode& out) -> Task<void> {
    auto rd = co_await r.fs->open("/f", 0);
    CO_ASSERT_OK(rd);
    out = (co_await rd.value()->read(0, 2 * MiB)).code();
  }(rig, code));
  rig.sim.run();
  EXPECT_EQ(code, StatusCode::kDataLoss);
}

TEST(HdfsTest, ReaderFailsOverToSurvivingReplica) {
  Rig rig;
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto w = co_await r.fs->create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(make_bytes(pattern_bytes(6, 0, 4 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
  }(rig));
  rig.sim.run();
  // Kill the writer-local DataNode; a read from node 0 must still succeed
  // via a remote replica.
  rig.datanodes[0]->crash();
  bool ok = false;
  rig.sim.spawn([](Rig& r, bool& out) -> Task<void> {
    auto rd = co_await r.fs->open("/f", 0);
    CO_ASSERT_OK(rd);
    auto data = co_await rd.value()->read(0, 4 * MiB);
    CO_ASSERT_OK(data);
    out = verify_pattern(6, 0, data.value());
  }(rig, ok));
  rig.sim.run();
  EXPECT_TRUE(ok);
}

TEST(HdfsTest, ReReplicationAfterDataNodeDeath) {
  Rig rig;
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto w = co_await r.fs->create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(make_bytes(pattern_bytes(7, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
  }(rig));
  rig.sim.run();
  rig.datanodes[0]->crash();
  const std::size_t scheduled = rig.namenode->mark_datanode_dead(0);
  EXPECT_EQ(scheduled, 1u);
  rig.sim.run();  // let re-replication finish
  // Replication is back to 3 on live nodes, and the new replica is real.
  std::uint64_t live_bytes = 0;
  for (NodeId n = 1; n < 4; ++n) live_bytes += rig.datanodes[n]->used_bytes();
  EXPECT_EQ(live_bytes, 3 * 8 * MiB);
}

TEST(HdfsTest, DeleteFreesAllReplicas) {
  Rig rig;
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto w = co_await r.fs->create("/f", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await w.value()->append(make_bytes(pattern_bytes(8, 0, 4 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
    CO_ASSERT_OK(co_await r.fs->remove("/f", 0));
  }(rig));
  rig.sim.run();
  for (const auto& dn : rig.datanodes) EXPECT_EQ(dn->used_bytes(), 0u);
}

TEST(HdfsTest, ListAndStat) {
  Rig rig;
  fs::FileInfo info;
  std::vector<std::string> listed;
  rig.sim.spawn([](Rig& r, fs::FileInfo& fi, std::vector<std::string>& ls)
                    -> Task<void> {
    for (const char* p : {"/out/part-0", "/out/part-1", "/tmp/x"}) {
      auto w = co_await r.fs->create(p, 0);
      CO_ASSERT_OK(w);
      CO_ASSERT_OK(co_await w.value()->append(make_bytes(pattern_bytes(9, 0, 1 * MiB))));
      CO_ASSERT_OK(co_await w.value()->close());
    }
    auto s = co_await r.fs->stat("/out/part-0", 0);
    CO_ASSERT_OK(s);
    fi = s.value();
    auto l = co_await r.fs->list("/out", 0);
    CO_ASSERT_OK(l);
    ls = l.value();
  }(rig, info, listed));
  rig.sim.run();
  EXPECT_EQ(info.size, 1 * MiB);
  EXPECT_EQ(info.replication, 3u);
  EXPECT_EQ(info.block_size, 8 * MiB);
  EXPECT_EQ(listed, (std::vector<std::string>{"/out/part-0", "/out/part-1"}));
}

TEST(HdfsTest, ConcurrentWritersDifferentFiles) {
  Rig rig;
  int done = 0;
  for (NodeId n = 0; n < 4; ++n) {
    rig.sim.spawn([](Rig& r, NodeId id, int& out) -> Task<void> {
      auto w = co_await r.fs->create("/f" + std::to_string(id), id);
      CO_ASSERT_OK(w);
      CO_ASSERT_OK(co_await w.value()->append(
          make_bytes(pattern_bytes(id, 0, 10 * MiB))));
      CO_ASSERT_OK(co_await w.value()->close());
      auto rd = co_await r.fs->open("/f" + std::to_string(id), id);
      CO_ASSERT_OK(rd);
      auto data = co_await rd.value()->read(0, 10 * MiB);
      CO_ASSERT_OK(data);
      CO_ASSERT(verify_pattern(id, 0, data.value()));
      ++out;
    }(rig, n, done));
  }
  rig.sim.run();
  EXPECT_EQ(done, 4);
}

TEST(HdfsTest, ManySmallAppendsSpanBlocks) {
  Rig rig;
  Bytes got;
  rig.sim.spawn([](Rig& r, Bytes& out) -> Task<void> {
    auto w = co_await r.fs->create("/f", 0);
    CO_ASSERT_OK(w);
    // 100 appends of 200 KiB + 17 bytes: crosses the 8 MiB block boundary
    // at awkward offsets.
    std::uint64_t off = 0;
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t n = 200 * KiB + 17;
      CO_ASSERT_OK(co_await w.value()->append(
          make_bytes(pattern_bytes(42, off, n))));
      off += n;
    }
    CO_ASSERT_OK(co_await w.value()->close());
    auto rd = co_await r.fs->open("/f", 3);
    CO_ASSERT_OK(rd);
    auto data = co_await rd.value()->read(0, off);
    CO_ASSERT_OK(data);
    out = std::move(data).value();
  }(rig, got));
  rig.sim.run();
  ASSERT_EQ(got.size(), 100 * (200 * KiB + 17));
  EXPECT_TRUE(verify_pattern(42, 0, got));
}

}  // namespace
}  // namespace hpcbb::hdfs
