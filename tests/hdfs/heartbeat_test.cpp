// Heartbeat failure detection: the NameNode's monitor must notice a dead
// DataNode after the configured miss count and trigger re-replication —
// without any manual mark_datanode_dead call.
#include <gtest/gtest.h>

#include "testing/co_assert.h"
#include "common/units.h"
#include "hdfs/client.h"
#include "hdfs/datanode.h"
#include "hdfs/namenode.h"
#include "sim/sync.h"

namespace hpcbb::hdfs {
namespace {

using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::Simulation;
using sim::Task;

struct Rig {
  Simulation sim;
  net::Fabric fabric{sim, 5, net::FabricParams{}};
  net::Transport transport{fabric,
                           net::transport_preset(net::TransportKind::kIpoib)};
  net::RpcHub hub{transport};
  std::vector<std::unique_ptr<DataNode>> datanodes;
  std::unique_ptr<NameNode> namenode;
  std::unique_ptr<HdfsFileSystem> fs;

  explicit Rig(sim::SimTime heartbeat_interval) {
    std::vector<NodeId> dn_nodes;
    for (NodeId i = 0; i < 4; ++i) {
      datanodes.push_back(std::make_unique<DataNode>(hub, i, DataNodeParams{}));
      dn_nodes.push_back(i);
    }
    NameNodeParams nn;
    nn.default_block_size = 8 * MiB;
    nn.heartbeat_interval_ns = heartbeat_interval;
    nn.heartbeat_misses = 3;
    namenode = std::make_unique<NameNode>(hub, 4, dn_nodes, nn);
    fs = std::make_unique<HdfsFileSystem>(hub, 4);
  }
};

TEST(HeartbeatTest, DeadNodeDetectedAndReReplicated) {
  Rig rig(100 * ms);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto writer = co_await r.fs->create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(1, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    r.datanodes[0]->crash();
  }(rig));
  // 3 misses at 100 ms: detection by ~400 ms; give it 2 s, then stop the
  // monitor so the queue can drain.
  rig.sim.run_until(2 * sec);
  rig.namenode->stop_heartbeats();
  rig.sim.run();

  EXPECT_EQ(rig.namenode->live_datanode_count(), 3u);
  // Replication restored on the survivors (3 replicas of one 8 MiB block).
  std::uint64_t live_bytes = 0;
  for (NodeId n = 1; n < 4; ++n) live_bytes += rig.datanodes[n]->used_bytes();
  EXPECT_EQ(live_bytes, 3 * 8 * MiB);
}

TEST(HeartbeatTest, TransientBlipDoesNotKillNode) {
  Rig rig(100 * ms);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    // One missed heartbeat (crash spanning less than `misses` intervals).
    co_await r.sim.delay(50 * ms);
    r.datanodes[2]->crash();
    co_await r.sim.delay(120 * ms);  // misses roughly one ping
    r.datanodes[2]->restart();
  }(rig));
  rig.sim.run_until(2 * sec);
  rig.namenode->stop_heartbeats();
  rig.sim.run();
  EXPECT_EQ(rig.namenode->live_datanode_count(), 4u);
}

TEST(HeartbeatTest, DisabledMonitorNeverScans) {
  Rig rig(/*heartbeat_interval=*/0);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    r.datanodes[0]->crash();
    co_await r.sim.delay(5 * sec);
  }(rig));
  rig.sim.run();
  // Nobody noticed: failure handling is fully manual when disabled.
  EXPECT_EQ(rig.namenode->live_datanode_count(), 4u);
}

TEST(HeartbeatTest, MultipleFailuresHandledSequentially) {
  Rig rig(100 * ms);
  rig.sim.spawn([](Rig& r) -> Task<void> {
    auto writer = co_await r.fs->create("/f", 0);
    CO_ASSERT(writer.is_ok());
    CO_ASSERT_OK(co_await writer.value()->append(
        make_bytes(pattern_bytes(2, 0, 8 * MiB))));
    CO_ASSERT_OK(co_await writer.value()->close());
    r.datanodes[0]->crash();
    co_await r.sim.delay(1 * sec);  // let re-replication settle
    r.datanodes[1]->crash();
  }(rig));
  rig.sim.run_until(4 * sec);
  rig.namenode->stop_heartbeats();
  rig.sim.run();
  EXPECT_EQ(rig.namenode->live_datanode_count(), 2u);
  // Data still fully readable from the two survivors.
  bool ok = false;
  rig.sim.spawn([](Rig& r, bool& out) -> Task<void> {
    auto reader = co_await r.fs->open("/f", 2);
    CO_ASSERT(reader.is_ok());
    auto data = co_await reader.value()->read(0, 8 * MiB);
    CO_ASSERT(data.is_ok());
    out = verify_pattern(2, 0, data.value());
  }(rig, ok));
  rig.sim.run();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace hpcbb::hdfs
