#include "kvstore/ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

namespace hpcbb::kv {
namespace {

TEST(HashRingTest, DeterministicMapping) {
  HashRing a(4), b(4);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.server_for(key), b.server_for(key));
  }
}

TEST(HashRingTest, AllServersReceiveLoad) {
  HashRing ring(8);
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 8000; ++i) {
    ++counts[ring.server_for("key-" + std::to_string(i))];
  }
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [server, count] : counts) {
    // With 100 vnodes the imbalance should stay well under 2x.
    EXPECT_GT(count, 400) << "server " << server;
    EXPECT_LT(count, 2000) << "server " << server;
  }
}

TEST(HashRingTest, SingleServerOwnsEverything) {
  HashRing ring(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ring.server_for("key-" + std::to_string(i)), 0u);
  }
  EXPECT_EQ(ring.next_server_for("any"), 0u);
}

TEST(HashRingTest, FailoverTargetDiffersFromPrimary) {
  HashRing ring(4);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_NE(ring.server_for(key), ring.next_server_for(key)) << key;
  }
}

TEST(HashRingTest, SuccessorsStartAtOwnerAndAreDistinct) {
  HashRing ring(6);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const auto repl = ring.successors(key, 3);
    ASSERT_EQ(repl.size(), 3u) << key;
    // The replica list is the owner followed by the ring-walk successors,
    // so R=1 placement and the legacy failover target fall out of it.
    EXPECT_EQ(repl[0], ring.server_for(key)) << key;
    EXPECT_EQ(repl[1], ring.next_server_for(key)) << key;
    EXPECT_NE(repl[0], repl[1]) << key;
    EXPECT_NE(repl[0], repl[2]) << key;
    EXPECT_NE(repl[1], repl[2]) << key;
  }
}

TEST(HashRingTest, SuccessorsDeterministicAcrossInstances) {
  HashRing a(5), b(5);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.successors(key, 3), b.successors(key, 3)) << key;
  }
}

TEST(HashRingTest, SuccessorCountClampedToServerCount) {
  HashRing ring(3);
  // Asking for more replicas than servers yields every server exactly once.
  const auto all = ring.successors("k", 10);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_NE(std::find(all.begin(), all.end(), 0u), all.end());
  EXPECT_NE(std::find(all.begin(), all.end(), 1u), all.end());
  EXPECT_NE(std::find(all.begin(), all.end(), 2u), all.end());
  // count=0 is treated as 1: the owner alone.
  const auto one = ring.successors("k", 0);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], ring.server_for("k"));
}

TEST(HashRingTest, GrowingClusterRemapsMinority) {
  HashRing small(4), large(5);
  int moved = 0;
  constexpr int kKeys = 5000;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key-" + std::to_string(i);
    // Keys that stay must map to the same server index; consistent hashing
    // moves roughly 1/5 of keys to the new server.
    if (small.server_for(key) != large.server_for(key)) ++moved;
  }
  EXPECT_GT(moved, kKeys / 10);
  EXPECT_LT(moved, kKeys / 2);
}

}  // namespace
}  // namespace hpcbb::kv
