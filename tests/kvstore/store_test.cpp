#include "kvstore/store.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/units.h"

namespace hpcbb::kv {
namespace {

StoreParams small_store(std::uint64_t budget = 8 * MiB,
                        std::uint32_t shards = 2) {
  StoreParams p;
  p.memory_budget = budget;
  p.shard_count = shards;
  p.buckets_per_shard = 1u << 10;
  p.slab.page_size = 256 * KiB;
  p.slab.chunk_max = 64 * KiB;
  return p;
}

Bytes value_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

TEST(KvStoreTest, SetGetRoundTrip) {
  KvStore store(small_store());
  ASSERT_TRUE(store.set("k1", value_of("hello")).is_ok());
  auto r = store.get("k1");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), value_of("hello"));
}

TEST(KvStoreTest, MissReturnsNotFound) {
  KvStore store(small_store());
  EXPECT_EQ(store.get("ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST(KvStoreTest, OverwriteReplacesValue) {
  KvStore store(small_store());
  ASSERT_TRUE(store.set("k", value_of("v1")).is_ok());
  ASSERT_TRUE(store.set("k", value_of("v2-longer-value")).is_ok());
  EXPECT_EQ(store.get("k").value(), value_of("v2-longer-value"));
  EXPECT_EQ(store.stats().items, 1u);
}

TEST(KvStoreTest, EraseRemoves) {
  KvStore store(small_store());
  ASSERT_TRUE(store.set("k", value_of("v")).is_ok());
  EXPECT_TRUE(store.erase("k"));
  EXPECT_FALSE(store.erase("k"));
  EXPECT_EQ(store.get("k").code(), StatusCode::kNotFound);
  EXPECT_EQ(store.stats().items, 0u);
  EXPECT_EQ(store.stats().bytes, 0u);
}

TEST(KvStoreTest, ContainsAndValueSize) {
  KvStore store(small_store());
  ASSERT_TRUE(store.set("k", Bytes(1234, 0xAB)).is_ok());
  EXPECT_TRUE(store.contains("k"));
  EXPECT_FALSE(store.contains("other"));
  EXPECT_EQ(store.value_size("k").value(), 1234u);
}

TEST(KvStoreTest, BinaryValuesPreserved) {
  KvStore store(small_store());
  const Bytes payload = pattern_bytes(77, 0, 10000);
  ASSERT_TRUE(store.set("bin", payload).is_ok());
  EXPECT_EQ(store.get("bin").value(), payload);
}

TEST(KvStoreTest, EmptyValue) {
  KvStore store(small_store());
  ASSERT_TRUE(store.set("empty", Bytes{}).is_ok());
  EXPECT_TRUE(store.contains("empty"));
  EXPECT_EQ(store.get("empty").value(), Bytes{});
}

TEST(KvStoreTest, ValueTooLargeRejected) {
  KvStore store(small_store());
  const Status st = store.set("big", Bytes(1 * MiB, 0));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(KvStoreTest, MaxValueSizeIsStorable) {
  KvStore store(small_store());
  const std::uint64_t max = store.max_value_size(3);
  EXPECT_GT(max, 32 * KiB);
  ASSERT_TRUE(store.set("key", Bytes(max, 0x5A)).is_ok());
  EXPECT_EQ(store.set("key", Bytes(max + 1, 0)).code(),
            StatusCode::kInvalidArgument);
}

TEST(KvStoreTest, TtlExpiry) {
  KvStore store(small_store());
  ASSERT_TRUE(
      store.set("k", value_of("v"), SetOptions{.expiry_ns = 1000}).is_ok());
  EXPECT_TRUE(store.get("k", 999).is_ok());
  EXPECT_EQ(store.get("k", 1000).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.stats().expired, 1u);
  EXPECT_EQ(store.stats().items, 0u);
}

TEST(KvStoreTest, LruEvictionUnderPressure) {
  KvStore store(small_store(2 * MiB, 1));
  const Bytes chunk(40 * KiB, 0x11);
  // Fill beyond budget; early keys must be evicted, later keys resident.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.set("key-" + std::to_string(i), chunk).is_ok())
        << "set " << i;
  }
  const StoreStats s = store.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_TRUE(store.contains("key-99"));
  EXPECT_FALSE(store.contains("key-0"));
}

TEST(KvStoreTest, GetProtectsFromEviction) {
  KvStore store(small_store(2 * MiB, 1));
  const Bytes chunk(40 * KiB, 0x22);
  ASSERT_TRUE(store.set("hot", chunk).is_ok());
  for (int i = 0; i < 200; ++i) {
    // Touch "hot" between inserts: it stays at the LRU head.
    ASSERT_TRUE(store.get("hot").is_ok()) << "iteration " << i;
    ASSERT_TRUE(store.set("cold-" + std::to_string(i), chunk).is_ok());
  }
  EXPECT_TRUE(store.contains("hot"));
}

TEST(KvStoreTest, PinnedItemsSurviveEviction) {
  KvStore store(small_store(2 * MiB, 1));
  const Bytes chunk(40 * KiB, 0x33);
  ASSERT_TRUE(store.set("pinned", chunk, SetOptions{.pinned = true}).is_ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.set("filler-" + std::to_string(i), chunk).is_ok());
  }
  EXPECT_TRUE(store.contains("pinned"));
  EXPECT_GT(store.stats().evictions, 0u);
}

TEST(KvStoreTest, AllPinnedMeansExhaustion) {
  KvStore store(small_store(1 * MiB, 1));
  const Bytes chunk(40 * KiB, 0x44);
  Status last;
  int stored = 0;
  for (int i = 0; i < 200; ++i) {
    last = store.set("p-" + std::to_string(i), chunk,
                     SetOptions{.pinned = true});
    if (!last.is_ok()) break;
    ++stored;
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(stored, 10);
  EXPECT_GT(store.stats().set_failures, 0u);
  // Unpinning frees the logjam.
  ASSERT_TRUE(store.set_pinned("p-0", false).is_ok());
  EXPECT_TRUE(store.set("new-key", chunk).is_ok());
  EXPECT_FALSE(store.contains("p-0"));  // it was the eviction victim
}

TEST(KvStoreTest, FailedSetKeepsOldValue) {
  KvStore store(small_store(1 * MiB, 1));
  const Bytes big_chunk(40 * KiB, 0x55);
  ASSERT_TRUE(store.set("victim?", Bytes(100, 0x66),
                        SetOptions{.pinned = true}).is_ok());
  // Exhaust the large class with pinned data.
  for (int i = 0; i < 200; ++i) {
    (void)store.set("p-" + std::to_string(i), big_chunk,
                    SetOptions{.pinned = true});
  }
  // Replacing the small value with an unallocatable large one must fail
  // AND leave the old small value intact.
  const Status st = store.set("victim?", big_chunk);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(store.get("victim?").value(), Bytes(100, 0x66));
}

TEST(KvStoreTest, WipeClearsEverything) {
  KvStore store(small_store());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.set("k" + std::to_string(i), Bytes(100, 1)).is_ok());
  }
  store.wipe();
  EXPECT_EQ(store.stats().items, 0u);
  EXPECT_EQ(store.stats().bytes, 0u);
  EXPECT_FALSE(store.contains("k0"));
  // Store remains usable.
  ASSERT_TRUE(store.set("fresh", Bytes(10, 2)).is_ok());
  EXPECT_TRUE(store.contains("fresh"));
}

TEST(KvStoreTest, StatsTrackHitsMisses) {
  KvStore store(small_store());
  ASSERT_TRUE(store.set("k", value_of("v")).is_ok());
  (void)store.get("k");
  (void)store.get("k");
  (void)store.get("nope");
  const StoreStats s = store.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.items, 1u);
  EXPECT_EQ(s.bytes, 2u);  // "k" + "v"
}

// Property test: random operation stream vs std::unordered_map reference.
// Eviction is disabled by using a budget far above the working set, so the
// store must agree with the reference exactly.
TEST(KvStoreTest, RandomOpsMatchReferenceModel) {
  KvStore store(small_store(64 * MiB, 4));
  std::unordered_map<std::string, Bytes> reference;
  Rng rng(2024);
  for (int op = 0; op < 20000; ++op) {
    const std::string key = "key-" + std::to_string(rng.uniform(0, 199));
    switch (rng.uniform(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // set
        const Bytes value =
            pattern_bytes(rng.next(), 0, rng.uniform(0, 2000));
        ASSERT_TRUE(store.set(key, value).is_ok());
        reference[key] = value;
        break;
      }
      case 4:
      case 5: {  // erase
        const bool existed = store.erase(key);
        EXPECT_EQ(existed, reference.erase(key) > 0) << "op " << op;
        break;
      }
      default: {  // get
        const auto r = store.get(key);
        const auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_EQ(r.code(), StatusCode::kNotFound) << "op " << op;
        } else {
          ASSERT_TRUE(r.is_ok()) << "op " << op;
          EXPECT_EQ(r.value(), it->second) << "op " << op;
        }
        break;
      }
    }
  }
  EXPECT_EQ(store.stats().items, reference.size());
  EXPECT_EQ(store.stats().evictions, 0u);
}

// Thread-safety: concurrent writers/readers on disjoint and overlapping key
// ranges; run under the sanitizer jobs in CI to catch races.
TEST(KvStoreTest, ConcurrentMixedWorkload) {
  KvStore store(small_store(64 * MiB, 8));
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &failures, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "key-" + std::to_string(rng.uniform(0, 499));
        if (rng.uniform(0, 2) == 0) {
          const Bytes value = pattern_bytes(fnv1a(key), 0, 256);
          if (!store.set(key, value).is_ok()) ++failures;
        } else {
          const auto r = store.get(key);
          // A present value must always be internally consistent.
          if (r.is_ok() && !verify_pattern(fnv1a(key), 0, r.value())) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const StoreStats s = store.stats();
  EXPECT_GT(s.hits + s.misses, 0u);
}

}  // namespace
}  // namespace hpcbb::kv
