// End-to-end KV cluster tests over the simulated fabric: one or more
// servers, clients on compute nodes, RDMA and socket transports, crash
// and recovery.
#include <gtest/gtest.h>

#include "testing/co_assert.h"
#include "common/units.h"
#include "kvstore/client.h"
#include "kvstore/server.h"
#include "sim/sync.h"

namespace hpcbb::kv {
namespace {

using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::Simulation;
using sim::SimTime;
using sim::Task;

struct Cluster {
  Simulation sim;
  net::Fabric fabric;
  net::Transport transport;
  net::RpcHub hub;
  std::vector<std::unique_ptr<Server>> servers;
  std::vector<NodeId> server_nodes;

  explicit Cluster(std::uint32_t n_servers,
                   net::TransportKind kind = net::TransportKind::kRdma,
                   std::uint64_t mem_per_server = 32 * MiB)
      : fabric(sim, n_servers + 4, net::FabricParams{}),
        transport(fabric, net::transport_preset(kind)),
        hub(transport) {
    ServerParams params;
    params.store.memory_budget = mem_per_server;
    params.store.shard_count = 2;
    for (std::uint32_t s = 0; s < n_servers; ++s) {
      const NodeId node = 4 + s;  // nodes 0..3 are clients
      servers.push_back(std::make_unique<Server>(hub, node, params));
      server_nodes.push_back(node);
    }
  }

  Client make_client(NodeId self) {
    return Client(hub, self, server_nodes);
  }
};

TEST(KvClusterTest, SetGetAcrossTheWire) {
  Cluster cluster(2);
  Client client = cluster.make_client(0);
  BytesPtr got;
  cluster.sim.spawn([](Client& c, BytesPtr& out) -> Task<void> {
    CO_ASSERT(
        (co_await c.set("block-1", make_bytes(pattern_bytes(1, 0, 100 * KiB))))
            .is_ok());
    auto r = co_await c.get("block-1");
    CO_ASSERT(r.is_ok());
    out = std::move(r).value();
  }(client, got));
  cluster.sim.run();
  ASSERT_NE(got, nullptr);
  EXPECT_TRUE(verify_pattern(1, 0, *got));
}

TEST(KvClusterTest, MissReportedAsNotFound) {
  Cluster cluster(2);
  Client client = cluster.make_client(0);
  StatusCode code{};
  cluster.sim.spawn([](Client& c, StatusCode& out) -> Task<void> {
    out = (co_await c.get("never-set")).code();
  }(client, code));
  cluster.sim.run();
  EXPECT_EQ(code, StatusCode::kNotFound);
}

TEST(KvClusterTest, KeysSpreadOverServers) {
  Cluster cluster(4);
  Client client = cluster.make_client(0);
  cluster.sim.spawn([](Client& c) -> Task<void> {
    for (int i = 0; i < 200; ++i) {
      CO_ASSERT((co_await c.set("key-" + std::to_string(i),
                                  make_bytes(Bytes(512, 0x7)))).is_ok());
    }
  }(client));
  cluster.sim.run();
  for (auto& server : cluster.servers) {
    EXPECT_GT(server->store().stats().items, 20u);
  }
}

TEST(KvClusterTest, RdmaLargeTransfersFasterThanIpoib) {
  auto run = [](net::TransportKind kind) {
    Cluster cluster(1, kind);
    Client client = cluster.make_client(0);
    cluster.sim.spawn([](Client& c) -> Task<void> {
      for (int i = 0; i < 16; ++i) {
        CO_ASSERT((co_await c.set("blk-" + std::to_string(i),
                                    make_bytes(Bytes(1 * MiB, 0x1)))).is_ok());
      }
      for (int i = 0; i < 16; ++i) {
        auto r = co_await c.get("blk-" + std::to_string(i));
        CO_ASSERT(r.is_ok());
      }
    }(client));
    cluster.sim.run();
    return cluster.sim.now();
  };
  const SimTime rdma = run(net::TransportKind::kRdma);
  const SimTime ipoib = run(net::TransportKind::kIpoib);
  const double speedup = static_cast<double>(ipoib) / static_cast<double>(rdma);
  EXPECT_GT(speedup, 3.0) << "rdma=" << rdma << " ipoib=" << ipoib;
}

TEST(KvClusterTest, MultiGetReturnsHitsAndMisses) {
  Cluster cluster(3);
  Client client = cluster.make_client(1);
  std::vector<std::optional<BytesPtr>> got;
  cluster.sim.spawn([](Client& c,
                       std::vector<std::optional<BytesPtr>>& out) -> Task<void> {
    CO_ASSERT((co_await c.set("a", make_bytes(Bytes(10, 1)))).is_ok());
    CO_ASSERT((co_await c.set("c", make_bytes(Bytes(30, 3)))).is_ok());
    const std::vector<std::string> keys{"a", "b", "c"};
    auto r = co_await c.multi_get(keys);
    CO_ASSERT(r.is_ok());
    out = std::move(r).value();
  }(client, got));
  cluster.sim.run();
  ASSERT_EQ(got.size(), 3u);
  ASSERT_TRUE(got[0].has_value());
  EXPECT_EQ((*got[0])->size(), 10u);
  EXPECT_FALSE(got[1].has_value());
  ASSERT_TRUE(got[2].has_value());
  EXPECT_EQ((*got[2])->size(), 30u);
}

TEST(KvClusterTest, EraseAndPin) {
  Cluster cluster(1);
  Client client = cluster.make_client(0);
  cluster.sim.spawn([](Client& c) -> Task<void> {
    CO_ASSERT((co_await c.set("k", make_bytes(Bytes(64, 9)), true)).is_ok());
    CO_ASSERT((co_await c.pin("k", false)).is_ok());
    CO_ASSERT((co_await c.erase("k")).is_ok());
    EXPECT_EQ((co_await c.erase("k")).code(), StatusCode::kNotFound);
    EXPECT_EQ((co_await c.pin("k", true)).code(), StatusCode::kNotFound);
  }(client));
  cluster.sim.run();
}

TEST(KvClusterTest, ServerStats) {
  Cluster cluster(1);
  Client client = cluster.make_client(0);
  StatsReply stats;
  cluster.sim.spawn([](Client& c, StatsReply& out) -> Task<void> {
    CO_ASSERT((co_await c.set("x", make_bytes(Bytes(100, 1)))).is_ok());
    (void)co_await c.get("x");
    (void)co_await c.get("y");
    auto r = co_await c.server_stats(0);
    CO_ASSERT(r.is_ok());
    out = r.value();
  }(client, stats));
  cluster.sim.run();
  EXPECT_EQ(stats.items, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(KvClusterTest, CrashLosesDataAndRefusesOps) {
  Cluster cluster(1);
  Client client = cluster.make_client(0);
  StatusCode during_crash{};
  BytesPtr after_restart;
  StatusCode after_code{};
  cluster.sim.spawn([](Cluster& cl, Client& c, StatusCode& dur,
                       StatusCode& after) -> Task<void> {
    CO_ASSERT((co_await c.set("k", make_bytes(Bytes(128, 5)))).is_ok());
    cl.servers[0]->crash();
    dur = (co_await c.get("k")).code();
    cl.servers[0]->restart();
    after = (co_await c.get("k")).code();  // data is gone: cache semantics
  }(cluster, client, during_crash, after_code));
  cluster.sim.run();
  EXPECT_EQ(during_crash, StatusCode::kUnavailable);
  EXPECT_EQ(after_code, StatusCode::kNotFound);
  (void)after_restart;
}

TEST(KvClusterTest, ExplicitPlacementOnSecondaryServer) {
  Cluster cluster(2);
  Client client = cluster.make_client(0);
  cluster.sim.spawn([](Cluster& cl, Client& c) -> Task<void> {
    const NodeId primary = c.server_for("key");
    const NodeId secondary = c.failover_server_for("key");
    CO_ASSERT(primary != secondary);
    CO_ASSERT((co_await c.set_on(secondary, "key",
                                   make_bytes(Bytes(256, 8)), false)).is_ok());
    // Readable from the secondary, not from the primary.
    EXPECT_TRUE((co_await c.get_from(secondary, "key")).is_ok());
    EXPECT_EQ((co_await c.get_from(primary, "key")).code(),
              StatusCode::kNotFound);
    (void)cl;
  }(cluster, client));
  cluster.sim.run();
}

TEST(KvClusterTest, ConcurrentClientsAllSucceed) {
  Cluster cluster(2);
  std::vector<std::unique_ptr<Client>> clients;
  int completed = 0;
  for (NodeId n = 0; n < 4; ++n) {
    clients.push_back(std::make_unique<Client>(cluster.make_client(n)));
    cluster.sim.spawn([](Client& c, NodeId id, int& done) -> Task<void> {
      for (int i = 0; i < 20; ++i) {
        const std::string key =
            "c" + std::to_string(id) + "-" + std::to_string(i);
        CO_ASSERT(
            (co_await c.set(key, make_bytes(Bytes(64 * KiB, 0xF)))).is_ok());
        auto r = co_await c.get(key);
        CO_ASSERT(r.is_ok());
        CO_ASSERT((*r.value()).size() == 64 * KiB);
      }
      ++done;
    }(*clients.back(), n, completed));
  }
  cluster.sim.run();
  EXPECT_EQ(completed, 4);
}

}  // namespace
}  // namespace hpcbb::kv
