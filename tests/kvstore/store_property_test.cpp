// Parameterized property sweeps over the KV store: invariants that must
// hold across shard counts, budgets, and value-size mixes.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <unordered_map>

#include "common/rng.h"
#include "common/strings.h"
#include "common/units.h"
#include "kvstore/store.h"

namespace hpcbb::kv {
namespace {

// (shard_count, memory_budget_mib, max_value_bytes)
using SweepParam = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

class StoreSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  StoreParams make_params() const {
    const auto [shards, budget_mib, max_value] = GetParam();
    (void)max_value;
    StoreParams p;
    p.memory_budget = static_cast<std::uint64_t>(budget_mib) * MiB;
    p.shard_count = shards;
    p.buckets_per_shard = 1u << 10;
    p.slab.page_size = 256 * KiB;
    p.slab.chunk_max = 128 * KiB;
    return p;
  }
  std::uint32_t max_value() const { return std::get<2>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, StoreSweep,
    ::testing::Values(SweepParam{1, 4, 1000}, SweepParam{2, 8, 4000},
                      SweepParam{4, 16, 16000}, SweepParam{8, 32, 60000},
                      SweepParam{16, 64, 100000}),
    [](const auto& param_info) {
      return "s" + std::to_string(std::get<0>(param_info.param)) + "_m" +
             std::to_string(std::get<1>(param_info.param)) + "_v" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST_P(StoreSweep, StatsNeverDriftFromContents) {
  KvStore store(make_params());
  Rng rng(fnv1a("drift"));
  std::unordered_map<std::string, std::uint64_t> live;  // key -> value size
  std::uint64_t evicted_or_expired_baseline = 0;
  for (int op = 0; op < 8000; ++op) {
    const std::string key = "k" + std::to_string(rng.uniform(0, 499));
    if (rng.uniform(0, 2) != 0) {
      const std::uint64_t n = rng.uniform(0, max_value());
      if (store.set(key, Bytes(n, 0x7)).is_ok()) {
        live[key] = n;
      }
    } else {
      store.erase(key);
      live.erase(key);
    }
    // Track evictions: evicted keys leave `live` stale; prune by probing.
    const StoreStats stats = store.stats();
    if (stats.evictions + stats.expired != evicted_or_expired_baseline) {
      evicted_or_expired_baseline = stats.evictions + stats.expired;
      for (auto it = live.begin(); it != live.end();) {
        if (!store.contains(it->first)) {
          it = live.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  // Invariant: stats.items equals the number of keys actually present.
  const StoreStats stats = store.stats();
  std::uint64_t present = 0, bytes = 0;
  for (const auto& [key, size] : live) {
    if (store.contains(key)) {
      ++present;
      bytes += key.size() + size;
    }
  }
  EXPECT_EQ(stats.items, present);
  EXPECT_EQ(stats.bytes, bytes);
}

TEST_P(StoreSweep, MemoryCeilingRespected) {
  KvStore store(make_params());
  Rng rng(fnv1a("ceiling"));
  for (int op = 0; op < 5000; ++op) {
    const std::string key = "k" + std::to_string(rng.uniform(0, 9999));
    (void)store.set(key, Bytes(rng.uniform(0, max_value()), 0x1));
  }
  // Payload bytes can never exceed the configured budget.
  EXPECT_LE(store.stats().bytes, store.memory_budget());
}

TEST_P(StoreSweep, GetAlwaysReturnsLatestWrittenValue) {
  KvStore store(make_params());
  Rng rng(fnv1a("latest"));
  std::unordered_map<std::string, std::uint64_t> version;  // key -> seed
  for (int op = 0; op < 4000; ++op) {
    const std::string key = "k" + std::to_string(rng.uniform(0, 99));
    const std::uint64_t seed = rng.next();
    const std::uint64_t n = rng.uniform(1, max_value());
    if (store.set(key, pattern_bytes(seed, 0, n)).is_ok()) {
      version[key] = seed;
    }
    const std::string probe = "k" + std::to_string(rng.uniform(0, 99));
    const auto r = store.get(probe);
    if (r.is_ok()) {
      const auto it = version.find(probe);
      ASSERT_NE(it, version.end()) << "value appeared from nowhere";
      EXPECT_TRUE(verify_pattern(it->second, 0, r.value()))
          << "stale or corrupt value under " << probe;
    }
  }
}

TEST_P(StoreSweep, EraseAllLeavesEmptyStore) {
  KvStore store(make_params());
  std::vector<std::string> keys;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (store.set(key, Bytes(static_cast<std::size_t>(i % 2000), 0x3))
            .is_ok()) {
      keys.push_back(key);
    }
  }
  for (const auto& key : keys) {
    if (store.contains(key)) {
      EXPECT_TRUE(store.erase(key));
    }
  }
  EXPECT_EQ(store.stats().items, 0u);
  EXPECT_EQ(store.stats().bytes, 0u);
  // Freed memory is reusable: a fresh burst of sets succeeds.
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    ok += store.set("fresh" + std::to_string(i), Bytes(1000, 0x4)).is_ok();
  }
  EXPECT_EQ(ok, 50);
}

TEST_P(StoreSweep, LruEvictsOldestUnpinnedFirst) {
  // Fill one size class beyond capacity with strictly ordered keys and no
  // touches: surviving keys must be a suffix of the insertion order.
  KvStore store(make_params());
  const std::uint64_t value_size = 32 * KiB;  // single class, big enough
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(store.set("k" + std::to_string(i), Bytes(value_size, 0x5),
                          SetOptions{})
                    .is_ok());
  }
  if (store.stats().evictions == 0) GTEST_SKIP() << "budget fits everything";
  // Per shard the survivors are a suffix; globally: once we see a present
  // key, every later key in the same shard must be present. Approximate the
  // global property: the oldest present key must be newer than the newest
  // absent key... per-shard hashing breaks total order, so check weaker but
  // meaningful: the most recent kNewest keys all survived.
  for (int i = n - 8; i < n; ++i) {
    EXPECT_TRUE(store.contains("k" + std::to_string(i))) << i;
  }
}

}  // namespace
}  // namespace hpcbb::kv
