#include "kvstore/slab.h"

#include <gtest/gtest.h>

#include <set>

#include "common/units.h"

namespace hpcbb::kv {
namespace {

SlabParams tiny() {
  return SlabParams{.memory_budget = 1 * MiB,
                    .page_size = 64 * KiB,
                    .chunk_min = 96,
                    .growth_factor = 1.25,
                    .chunk_max = 16 * KiB};
}

TEST(SlabTest, ClassSizesGrowGeometrically) {
  SlabAllocator slab(tiny());
  ASSERT_GT(slab.class_count(), 5);
  for (int c = 1; c < slab.class_count(); ++c) {
    EXPECT_GT(slab.chunk_size(c), slab.chunk_size(c - 1));
    if (c + 1 < slab.class_count()) {
      const double ratio = static_cast<double>(slab.chunk_size(c)) /
                           slab.chunk_size(c - 1);
      EXPECT_LE(ratio, 1.45) << "class " << c;
    }
  }
  EXPECT_GE(slab.chunk_size(slab.class_count() - 1), 16 * KiB);
}

TEST(SlabTest, ClassForPicksSmallestFit) {
  SlabAllocator slab(tiny());
  const int c0 = slab.class_for(1);
  EXPECT_EQ(c0, 0);
  const int c = slab.class_for(100);
  ASSERT_GE(c, 0);
  EXPECT_GE(slab.chunk_size(c), 100u);
  if (c > 0) {
    EXPECT_LT(slab.chunk_size(c - 1), 100u);
  }
}

TEST(SlabTest, OversizeRejected) {
  SlabAllocator slab(tiny());
  EXPECT_EQ(slab.class_for(1 * MiB), -1);
}

TEST(SlabTest, AllocateDeallocateReuse) {
  SlabAllocator slab(tiny());
  const int cls = slab.class_for(1000);
  void* a = slab.allocate(cls);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(slab.chunks_in_use(cls), 1u);
  slab.deallocate(cls, a);
  EXPECT_EQ(slab.chunks_in_use(cls), 0u);
  void* b = slab.allocate(cls);
  EXPECT_EQ(a, b);  // LIFO free list reuses the chunk
}

TEST(SlabTest, DistinctChunksDoNotOverlap) {
  SlabAllocator slab(tiny());
  const int cls = slab.class_for(500);
  const std::uint32_t size = slab.chunk_size(cls);
  std::set<std::uintptr_t> starts;
  for (int i = 0; i < 200; ++i) {
    void* p = slab.allocate(cls);
    ASSERT_NE(p, nullptr);
    starts.insert(reinterpret_cast<std::uintptr_t>(p));
  }
  ASSERT_EQ(starts.size(), 200u);
  std::uintptr_t prev_end = 0;
  for (const auto s : starts) {
    EXPECT_GE(s, prev_end);
    prev_end = s + size;
  }
}

TEST(SlabTest, BudgetEnforced) {
  SlabAllocator slab(tiny());  // 1 MiB budget, 64 KiB pages => 16 pages
  const int cls = slab.class_for(16 * KiB - 32);
  const std::uint32_t chunk = slab.chunk_size(cls);
  const std::uint64_t per_page = (64 * KiB) / chunk;
  std::uint64_t got = 0;
  while (slab.allocate(cls) != nullptr) ++got;
  EXPECT_EQ(got, 16 * per_page);
  EXPECT_LE(slab.allocated_pages_bytes(), 1 * MiB);
}

TEST(SlabTest, BudgetSharedAcrossClasses) {
  SlabAllocator slab(tiny());
  // Exhaust the budget with large chunks...
  const int big = slab.class_for(16 * KiB - 32);
  while (slab.allocate(big) != nullptr) {
  }
  // ...then a fresh class cannot grow either.
  const int small = slab.class_for(100);
  EXPECT_EQ(slab.allocate(small), nullptr);
}

TEST(SlabTest, ChunksAligned) {
  SlabAllocator slab(tiny());
  for (const std::uint64_t want : {100ull, 1000ull, 10000ull}) {
    const int cls = slab.class_for(want);
    void* p = slab.allocate(cls);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
  }
}

TEST(SlabTest, TotalChunksInUse) {
  SlabAllocator slab(tiny());
  void* a = slab.allocate(slab.class_for(100));
  void* b = slab.allocate(slab.class_for(5000));
  EXPECT_EQ(slab.total_chunks_in_use(), 2u);
  slab.deallocate(slab.class_for(100), a);
  slab.deallocate(slab.class_for(5000), b);
  EXPECT_EQ(slab.total_chunks_in_use(), 0u);
}

}  // namespace
}  // namespace hpcbb::kv
