// Observability layer: time-series sampler lifecycle/alignment and the
// machine-readable report schema.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/units.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace hpcbb::obs {
namespace {

using namespace hpcbb::duration;  // NOLINT
using sim::Simulation;
using sim::Task;

TEST(SamplerTest, TicksAlignToIntervalMultiples) {
  Simulation sim;
  TimeSeriesSampler sampler(sim, 100 * us);
  sampler.watch_counter("ops");
  sim.spawn([](Simulation& s, TimeSeriesSampler& sam) -> Task<void> {
    co_await s.delay(37 * us);  // start off-grid
    sam.start();
    co_await s.delay(250 * us);
    sam.stop();
  }(sim, sampler));
  sim.run();
  const auto& points = sampler.timeline();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].t_ns, 37 * us);   // baseline sample at start()
  EXPECT_EQ(points[1].t_ns, 100 * us);  // aligned, not 137us
  EXPECT_EQ(points[2].t_ns, 200 * us);
  EXPECT_EQ(points[3].t_ns, 287 * us);  // final sample at stop()
}

TEST(SamplerTest, TimestampsStrictlyIncreaseEvenWhenStopLandsOnATick) {
  Simulation sim;
  TimeSeriesSampler sampler(sim, 100 * us);
  sampler.watch_counter("ops");
  sim.spawn([](Simulation& s, TimeSeriesSampler& sam) -> Task<void> {
    sam.start();
    co_await s.delay(200 * us);  // stop exactly on the t=200us tick
    sam.stop();
  }(sim, sampler));
  sim.run();
  const auto& points = sampler.timeline();
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i - 1].t_ns, points[i].t_ns) << "at index " << i;
  }
  EXPECT_EQ(points.back().t_ns, 200 * us);
}

// stop() exactly on a tick boundary must produce ONE point for that instant
// (not the tick's sample plus a duplicate final sample) and must not let the
// already-scheduled next tick drag simulated time past quiescence. Two
// spawn orders cover both event interleavings at the boundary: stop()
// running before the tick would have fired, and right after it fired.
TEST(SamplerTest, StopOnTickBoundaryKeepsOnePointAndDoesNotOvershoot) {
  for (const bool stop_before_tick : {true, false}) {
    Simulation sim;
    TimeSeriesSampler sampler(sim, 100 * us);
    sampler.watch_counter("ops");
    // Events at equal time run in scheduling order. A single delay(200us) is
    // scheduled at t=0, before the t=200us tick (scheduled at t=100us), so
    // stop() runs first; splitting the delay re-schedules the stopper at
    // t=150us, after the tick, so the tick samples first.
    const auto workload = [stop_before_tick](
                              Simulation& s,
                              TimeSeriesSampler& sam) -> Task<void> {
      sam.start();
      if (stop_before_tick) {
        co_await s.delay(200 * us);
      } else {
        co_await s.delay(150 * us);
        co_await s.delay(50 * us);
      }
      sam.stop();
    };
    sim.spawn(workload(sim, sampler));
    sim.run();
    const auto& points = sampler.timeline();
    ASSERT_EQ(points.size(), 3u) << "stop_before_tick=" << stop_before_tick;
    EXPECT_EQ(points[0].t_ns, 0u);
    EXPECT_EQ(points[1].t_ns, 100 * us);
    EXPECT_EQ(points[2].t_ns, 200 * us);
    // The cancelled trailing tick must not advance the clock to 300us.
    EXPECT_EQ(sim.now(), 200 * us) << "stop_before_tick=" << stop_before_tick;
  }
}

// Observers fire in registration order on every recorded sample, and the
// stop() sample is the only one flagged final. When stop() lands exactly on
// a tick boundary the observers see that timestamp twice (tick first,
// final=true second) even though the timeline keeps one point — the
// contract the health monitor's per-timestamp dedup is written against.
// Both boundary interleavings are covered, as in the test above.
TEST(SamplerTest, ObserversFireInOrderAndFinalOnlyAtStop) {
  for (const bool stop_before_tick : {true, false}) {
    struct Firing {
      int observer;
      sim::SimTime t_ns;
      bool final_sample;
    };
    Simulation sim;
    TimeSeriesSampler sampler(sim, 100 * us);
    sampler.watch_counter("ops");
    std::vector<Firing> firings;
    sampler.add_observer([&firings](const TimelinePoint& p, bool f) {
      firings.push_back({0, p.t_ns, f});
    });
    sampler.add_observer([&firings](const TimelinePoint& p, bool f) {
      firings.push_back({1, p.t_ns, f});
    });
    const auto workload = [stop_before_tick](
                              Simulation& s,
                              TimeSeriesSampler& sam) -> Task<void> {
      sam.start();
      if (stop_before_tick) {
        co_await s.delay(200 * us);
      } else {
        co_await s.delay(150 * us);
        co_await s.delay(50 * us);
      }
      sam.stop();
    };
    sim.spawn(workload(sim, sampler));
    sim.run();

    // Samples at t=0 (baseline), t=100us (tick), t=200us (tick and/or
    // final): when the tick fires before stop(), t=200us is seen twice.
    const std::size_t samples = stop_before_tick ? 3u : 4u;
    ASSERT_EQ(firings.size(), 2 * samples)
        << "stop_before_tick=" << stop_before_tick;
    ASSERT_EQ(sampler.timeline().size(), 3u);  // one point per timestamp
    int finals[2] = {0, 0};
    for (std::size_t i = 0; i < firings.size(); i += 2) {
      // Registration order within each sample, same point for both.
      EXPECT_EQ(firings[i].observer, 0) << "at firing " << i;
      EXPECT_EQ(firings[i + 1].observer, 1) << "at firing " << i;
      EXPECT_EQ(firings[i].t_ns, firings[i + 1].t_ns);
      EXPECT_EQ(firings[i].final_sample, firings[i + 1].final_sample);
      finals[0] += firings[i].final_sample ? 1 : 0;
      finals[1] += firings[i + 1].final_sample ? 1 : 0;
    }
    EXPECT_EQ(finals[0], 1);
    EXPECT_EQ(finals[1], 1);
    // The final firing is the last one, at the stop timestamp.
    EXPECT_TRUE(firings.back().final_sample);
    EXPECT_EQ(firings.back().t_ns, 200 * us);
    if (!stop_before_tick) {
      // Tick fired first at t=200us with final=false, then the stop()
      // sample replaced the point and re-fired with final=true.
      EXPECT_EQ(firings[firings.size() - 3].t_ns, 200 * us);
      EXPECT_FALSE(firings[firings.size() - 3].final_sample);
    }
  }
}

TEST(SamplerTest, StopTakesFinalSampleAtQuiescenceAndSimDrains) {
  Simulation sim;
  TimeSeriesSampler sampler(sim, 50 * us);
  sampler.watch_counter("bytes");
  sim.spawn([](Simulation& s, TimeSeriesSampler& sam) -> Task<void> {
    sam.start();
    s.metrics().counter("bytes").add(10);
    co_await s.delay(120 * us);
    s.metrics().counter("bytes").add(32);
    sam.stop();
  }(sim, sampler));
  sim.run();  // would hang (or assert) if the periodic task never exited
  const auto& points = sampler.timeline();
  ASSERT_GE(points.size(), 2u);
  EXPECT_EQ(points.back().t_ns, 120 * us);
  EXPECT_EQ(points.back().values[0], 42u);  // final sample sees the last add
  // stop() cancelled the pending t=150us tick: quiescence is 120us exactly.
  EXPECT_EQ(sim.now(), 120 * us);
}

TEST(SamplerTest, ProbesTrackCountersAndGaugesOverTime) {
  Simulation sim;
  TimeSeriesSampler sampler(sim, 100 * us);
  sampler.watch_counter("written");
  sampler.watch_gauge("depth");
  sampler.add_probe("constant", [] { return 7ull; });
  sim.spawn([](Simulation& s, TimeSeriesSampler& sam) -> Task<void> {
    sam.start();
    s.metrics().counter("written").add(100);
    s.metrics().gauge("depth").set(3);
    co_await s.delay(150 * us);
    s.metrics().counter("written").add(200);
    s.metrics().gauge("depth").set(1);
    co_await s.delay(100 * us);
    sam.stop();
  }(sim, sampler));
  sim.run();
  ASSERT_EQ(sampler.series_names().size(), 3u);
  const auto& points = sampler.timeline();
  // t=100us sample: first adds visible; final sample: everything.
  EXPECT_EQ(points[1].values[0], 100u);
  EXPECT_EQ(points[1].values[1], 3u);
  EXPECT_EQ(points[1].values[2], 7u);
  EXPECT_EQ(points.back().values[0], 300u);
  EXPECT_EQ(points.back().values[1], 1u);
}

TEST(SamplerTest, CsvShape) {
  Simulation sim;
  TimeSeriesSampler sampler(sim, 100 * us);
  sampler.watch_counter("a");
  sampler.watch_counter("b");
  sim.spawn([](Simulation& s, TimeSeriesSampler& sam) -> Task<void> {
    sam.start();
    s.metrics().counter("a").add(1);
    s.metrics().counter("b").add(2);
    co_await s.delay(100 * us);
    sam.stop();
  }(sim, sampler));
  sim.run();
  const std::string csv = sampler.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "t_ns,a,b");
  EXPECT_NE(csv.find("\n0,0,0\n"), std::string::npos);
  EXPECT_NE(csv.find("\n100000,1,2\n"), std::string::npos);
}

// The acceptance-criteria schema check: a report must carry the versioned
// schema tag, counters, gauges with high-watermarks, histogram summaries
// with p50/p95/p99, and (when a sampler is passed) a timeline.
TEST(ReportTest, SchemaShape) {
  Simulation sim;
  TimeSeriesSampler sampler(sim, 100 * us);
  sampler.watch_counter("net.tx_bytes");
  sim.spawn([](Simulation& s, TimeSeriesSampler& sam) -> Task<void> {
    sam.start();
    s.metrics().counter("net.tx_bytes").add(4096);
    s.metrics().gauge("kv.bytes").set(1024);
    s.metrics().gauge("kv.bytes").sub(512);
    for (int i = 1; i <= 100; ++i) {
      s.metrics().histogram("net.rpc").record(
          static_cast<std::uint64_t>(i) * 1000);
    }
    co_await s.delay(250 * us);
    sam.stop();
  }(sim, sampler));
  sim.run();

  const std::string report = report_json(sim, &sampler);
  EXPECT_NE(report.find("\"schema\":\"hpcbb.report.v3\""), std::string::npos);
  EXPECT_NE(report.find("\"sim_time_ns\":"), std::string::npos);
  EXPECT_NE(report.find("\"counters\":"), std::string::npos);
  EXPECT_NE(report.find("\"net.tx_bytes\":4096"), std::string::npos);
  EXPECT_NE(report.find("\"gauges\":"), std::string::npos);
  EXPECT_NE(report.find("\"value\":512"), std::string::npos);
  EXPECT_NE(report.find("\"high_watermark\":1024"), std::string::npos);
  EXPECT_NE(report.find("\"histograms\":"), std::string::npos);
  EXPECT_NE(report.find("\"net.rpc\":"), std::string::npos);
  for (const char* field :
       {"\"count\":", "\"sum\":", "\"min\":", "\"max\":", "\"mean\":",
        "\"p50\":", "\"p95\":", "\"p99\":"}) {
    EXPECT_NE(report.find(field), std::string::npos) << field;
  }
  EXPECT_NE(report.find("\"timeline\":"), std::string::npos);
  EXPECT_NE(report.find("\"series\":"), std::string::npos);
  EXPECT_NE(report.find("\"points\":"), std::string::npos);
}

TEST(ReportTest, NoSamplerMeansNoTimeline) {
  Simulation sim;
  sim.metrics().counter("x").add(1);
  const std::string report = report_json(sim);
  EXPECT_NE(report.find("\"schema\":\"hpcbb.report.v3\""), std::string::npos);
  EXPECT_EQ(report.find("\"timeline\":"), std::string::npos);
  EXPECT_EQ(report.find("\"attribution\":"), std::string::npos);
}

}  // namespace
}  // namespace hpcbb::obs
