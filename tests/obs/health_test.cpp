// Health monitor: slo.* grammar validation, multi-window burn-rate state
// machine (warn/resolve, fast trip, slow hold), pristine-rule no-data
// semantics, flight-recorder eviction accounting, and the incident bundle
// round-trip through tools/report.py.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/metrics.h"
#include "common/properties.h"
#include "obs/flightrec.h"
#include "obs/health.h"
#include "obs/sampler.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace hpcbb::obs {
namespace {

using sim::Simulation;

HealthParams parse(std::initializer_list<std::pair<const char*, const char*>>
                       entries) {
  Properties props;
  for (const auto& [key, value] : entries) props.set(key, value);
  auto params = HealthParams::from_properties(props);
  EXPECT_TRUE(params.is_ok()) << params.status().to_string();
  return params.is_ok() ? params.value() : HealthParams{};
}

// Drives the monitor the way the sampler would, one synthetic tick per
// simulated millisecond, so window arithmetic is exact and visible.
struct Bench {
  explicit Bench(HealthParams params) : monitor(sim, std::move(params)) {}

  void tick() {
    TimelinePoint point;
    point.t_ns = ++ticks * 1'000'000ull;
    monitor.on_tick(point, false);
  }
  // The sampler's stop() on a tick boundary re-fires the observer at the
  // same timestamp with final=true.
  void refire_last_as_final() {
    TimelinePoint point;
    point.t_ns = ticks * 1'000'000ull;
    monitor.on_tick(point, true);
  }

  Simulation sim;
  HealthMonitor monitor;
  std::uint64_t ticks = 0;
};

TEST(HealthParamsTest, ParsesBuiltinsGenericsAndTunables) {
  const HealthParams params = parse({
      {"slo.write_p99_ns", "3ms"},
      {"slo.kv_live_min", "4"},
      {"slo.kv_hit_ratio_min", "0.9"},
      {"slo.counter_max.faults.injected{kind=crash}", "0"},
      {"slo.max_max.kv.put", "250us"},
      {"slo.fast_window", "3"},
      {"slo.slow_window", "30"},
      {"slo.warn_fast", "0.1"},
      {"slo.page_fast", "0.5"},
      {"slo.page_slow", "0.25"},
      {"slo.incident_max", "2"},
      {"slo.incident_dir", "/tmp"},
      {"slo.incident_prefix", "boom"},
      {"flightrec.bytes", "65536"},
      {"unrelated.key", "ignored"},
  });
  ASSERT_EQ(params.rules.size(), 5u);
  EXPECT_EQ(params.fast_window, 3u);
  EXPECT_EQ(params.slow_window, 30u);
  EXPECT_DOUBLE_EQ(params.warn_fast, 0.1);
  EXPECT_DOUBLE_EQ(params.page_fast, 0.5);
  EXPECT_DOUBLE_EQ(params.page_slow, 0.25);
  EXPECT_EQ(params.incident_max, 2u);
  EXPECT_EQ(params.incident_dir, "/tmp");
  EXPECT_EQ(params.incident_prefix, "boom");
  EXPECT_EQ(params.flightrec_bytes, 65536u);

  // The generic escape hatch embeds the (possibly labeled) metric name in
  // the key and keeps the whole suffix as the rule name.
  bool found = false;
  for (const SloRule& rule : params.rules) {
    if (rule.name == "counter_max.faults.injected{kind=crash}") {
      found = true;
      EXPECT_EQ(rule.kind, SloKind::kCounterMax);
      ASSERT_EQ(rule.metrics.size(), 1u);
      EXPECT_EQ(rule.metrics[0], "faults.injected{kind=crash}");
      EXPECT_DOUBLE_EQ(rule.threshold, 0.0);
    }
    if (rule.name == "write_p99_ns") {
      EXPECT_EQ(rule.kind, SloKind::kQuantileMax);
      EXPECT_DOUBLE_EQ(rule.threshold, 3e6);
    }
  }
  EXPECT_TRUE(found);
}

TEST(HealthParamsTest, RejectsMalformedConfiguration) {
  const std::initializer_list<std::pair<const char*, const char*>> bad_cases[] =
      {
          {{"slo.no_such_rule", "1"}},              // unknown slo.* key
          {{"slo.write_p99_ns", "fast"}},           // not a duration
          {{"slo.kv_hit_ratio_min", "1.5"}},        // fraction out of [0,1]
          {{"slo.warn_fast", "0"}},                 // trip fraction must be >0
          {{"slo.fast_window", "0"}},               // window must be >= 1
          {{"slo.fast_window", "9"},
           {"slo.slow_window", "5"}},               // fast must be <= slow
          {{"slo.warn_fast", "0.8"},
           {"slo.page_fast", "0.5"}},               // warn must be <= page
          {{"slo.counter_max.", "0"}},              // generic with no metric
          {{"flightrec.ring_count", "3"}},          // unknown flightrec.* key
      };
  for (const auto& entries : bad_cases) {
    Properties props;
    for (const auto& [key, value] : entries) props.set(key, value);
    const auto params = HealthParams::from_properties(props);
    EXPECT_FALSE(params.is_ok()) << "accepted: " << props.entries().begin()->first;
  }
}

// A short burn warns, then a clean fast window resolves it — the page
// threshold is never crossed and no incident is opened.
TEST(HealthMonitorTest, WarnThenResolveWithoutPaging) {
  Bench bench(parse({{"slo.gauge_max.t.load", "10"}}));
  auto& load = bench.sim.metrics().gauge("t.load");

  load.set(20);  // breach: 1/5 = 0.2 fast burn >= warn_fast
  bench.tick();
  EXPECT_EQ(bench.monitor.state("gauge_max.t.load"), AlertState::kWarn);

  load.set(3);
  for (int i = 0; i < 4; ++i) bench.tick();
  // Fast window still holds the breach tick.
  EXPECT_EQ(bench.monitor.state("gauge_max.t.load"), AlertState::kWarn);
  bench.tick();  // breach tick ages out of the fast window
  EXPECT_EQ(bench.monitor.state("gauge_max.t.load"), AlertState::kOk);

  EXPECT_EQ(bench.monitor.warn_count(), 1u);
  EXPECT_EQ(bench.monitor.page_count(), 0u);
  EXPECT_EQ(bench.monitor.resolve_count(), 1u);
  EXPECT_TRUE(bench.monitor.incidents().empty());
  EXPECT_EQ(bench.sim.metrics().counter_value(
                "obs.alert{rule=gauge_max.t.load,severity=warn}"),
            1u);
  EXPECT_EQ(bench.sim.metrics().counter_value(
                "obs.alert{rule=gauge_max.t.load,severity=resolved}"),
            1u);
}

// The fast window trips the page; the slow window holds it open long after
// the fast window is clean, until sustained burn drops under page_slow.
TEST(HealthMonitorTest, FastWindowTripsSlowWindowHoldsThePage) {
  Bench bench(parse({{"slo.gauge_max.t.load", "10"},
                     {"slo.fast_window", "2"},
                     {"slo.slow_window", "10"}}));
  auto& load = bench.sim.metrics().gauge("t.load");

  load.set(99);
  for (int i = 0; i < 4; ++i) bench.tick();  // warn at tick 1, page at tick 2
  EXPECT_EQ(bench.monitor.state("gauge_max.t.load"), AlertState::kPage);
  EXPECT_EQ(bench.monitor.page_count(), 1u);
  ASSERT_EQ(bench.monitor.incidents().size(), 1u);

  // Clean ticks: at tick 6 the fast window is clean but the slow window
  // still carries 4/10 = 0.4 >= page_slow, so the page holds through tick
  // 11 (3/10) and resolves only at tick 12 (2/10).
  load.set(0);
  for (std::uint64_t t = 5; t <= 11; ++t) {
    bench.tick();
    EXPECT_EQ(bench.monitor.state("gauge_max.t.load"), AlertState::kPage)
        << "page released early at tick " << t;
  }
  bench.tick();
  EXPECT_EQ(bench.monitor.state("gauge_max.t.load"), AlertState::kOk);
  EXPECT_EQ(bench.monitor.resolve_count(), 1u);
  // No second incident: warn->page happened exactly once.
  EXPECT_EQ(bench.monitor.incidents().size(), 1u);
}

// The sampler's stop() on a tick boundary re-fires the observer at the same
// timestamp; a second evaluation there would double-count the burn window
// and turn this half-burn into a page.
TEST(HealthMonitorTest, RefiredFinalSampleDoesNotDoubleCountWindows) {
  Bench bench(parse({{"slo.gauge_max.t.load", "10"},
                     {"slo.fast_window", "2"},
                     {"slo.warn_fast", "0.5"},
                     {"slo.page_fast", "1.0"}}));
  bench.sim.metrics().gauge("t.load").set(99);
  bench.tick();
  bench.refire_last_as_final();
  EXPECT_EQ(bench.monitor.state("gauge_max.t.load"), AlertState::kWarn);
  EXPECT_EQ(bench.monitor.page_count(), 0u);
  EXPECT_EQ(bench.monitor.transitions().size(), 1u);
}

// A rule over a metric that never appears is pristine: no-data ticks must
// neither trip it nor seed its windows. Once the metric shows up the same
// rule arms and fires.
TEST(HealthMonitorTest, RuleOnAbsentLabeledMetricStaysPristineThenArms) {
  Bench bench(parse({{"slo.counter_max.kv.bytes{node=99}", "0"}}));
  for (int i = 0; i < 100; ++i) bench.tick();
  EXPECT_EQ(bench.monitor.state("counter_max.kv.bytes{node=99}"),
            AlertState::kOk);
  EXPECT_TRUE(bench.monitor.transitions().empty());

  bench.sim.metrics().counter("kv.bytes{node=99}").add(5);
  bench.tick();
  EXPECT_EQ(bench.monitor.state("counter_max.kv.bytes{node=99}"),
            AlertState::kWarn);
  ASSERT_EQ(bench.monitor.transitions().size(), 1u);
  EXPECT_DOUBLE_EQ(bench.monitor.transitions()[0].value, 5.0);
}

TEST(FlightRecorderTest, EventsRingExistsFromConstruction) {
  Simulation sim;
  FlightRecorder rec(sim);
  ASSERT_NE(rec.ring(FlightRecorder::kEventsRing), nullptr);
  EXPECT_TRUE(rec.ring(FlightRecorder::kEventsRing)->empty());
  EXPECT_EQ(rec.ring("kv"), nullptr);
}

// Exact eviction arithmetic: budget 4096 -> 512 bytes per ring; each entry
// here costs 64 + 3 (name) + 2 (category) = 69 bytes, so a ring holds 7
// entries (483 bytes) and the 8th push evicts the oldest. After 20 pushes
// the ring holds the newest 7, oldest-first, with 13 drops accounted in the
// per-ring counter, the recorder total, and the obs.flightrec.dropped
// metric.
TEST(FlightRecorderTest, RingWrapsOldestFirstWithExactDropAccounting) {
  Simulation sim;
  FlightRecorder rec(sim, 4096);
  EXPECT_EQ(rec.budget_bytes(), 4096u);
  EXPECT_EQ(rec.ring_budget_bytes(), 512u);

  for (int i = 0; i < 20; ++i) {
    char name[16];
    std::snprintf(name, sizeof name, "s%02d", i);
    rec.on_span_close(sim::TraceSpan{name, "kv", 0,
                                     static_cast<sim::SimTime>(i * 10),
                                     static_cast<sim::SimTime>(i * 10 + 5),
                                     static_cast<std::uint64_t>(i + 1)});
  }

  const std::deque<FlightEntry>* ring = rec.ring("kv");
  ASSERT_NE(ring, nullptr);
  ASSERT_EQ(ring->size(), 7u);
  for (std::size_t i = 0; i < ring->size(); ++i) {
    char expect[32];
    std::snprintf(expect, sizeof expect, "s%02zu", 13 + i);
    EXPECT_EQ((*ring)[i].name, expect);
  }
  EXPECT_EQ(rec.dropped("kv"), 13u);
  EXPECT_EQ(rec.dropped_total(), 13u);
  EXPECT_EQ(sim.metrics().counter_value("obs.flightrec.dropped"), 13u);
  // Untouched rings drop nothing.
  EXPECT_EQ(rec.dropped(FlightRecorder::kEventsRing), 0u);
}

TEST(FlightRecorderTest, RoutesInstantsToEventsAndFindsActiveOps) {
  Simulation sim;
  FlightRecorder rec(sim);
  rec.on_span_close(sim::TraceSpan{"kv.put", "kv", 0, 100, 200, 1});
  rec.on_span_close(sim::TraceSpan{"kv.put", "kv", 1, 150, 300, 2});
  // An instant (begin == end) goes to the events ring whatever its
  // category; open spans are ignored outright.
  rec.on_span_close(sim::TraceSpan{"crash kv0", "fault", 0, 160, 160, 0});
  rec.on_span_close(
      sim::TraceSpan{"open", "kv", 0, 10, sim::kOpenSentinel, 3});
  rec.add_event("limp oss1.disk", "fault");

  ASSERT_EQ(rec.ring("kv")->size(), 2u);
  const std::vector<FlightEntry> faults = rec.events("fault");
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0].name, "crash kv0");
  EXPECT_EQ(faults[1].name, "limp oss1.disk");

  EXPECT_EQ(rec.ops_active_at(160),
            (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(rec.ops_active_at(250), (std::vector<std::uint64_t>{2}));
  EXPECT_TRUE(rec.ops_active_at(990).empty());
}

// A paged incident must correlate the alert with the injected faults still
// in the flight recorder and the op_ids in flight when each fault hit, and
// the bundle must survive a round trip through tools/report.py.
TEST(HealthMonitorTest, IncidentBundleRoundTripsThroughReportTool) {
  Bench bench(parse({{"slo.gauge_min.bb.kv_live", "4"},
                     {"slo.fast_window", "2"},
                     {"slo.slow_window", "10"}}));
  FlightRecorder rec(bench.sim, 4096);
  bench.monitor.set_flight_recorder(&rec);

  bench.sim.metrics().gauge("bb.kv_live").set(4);
  bench.tick();
  rec.on_span_close(sim::TraceSpan{"kv.put", "kv", 0, 1'000'000, 2'500'000,
                                   7});
  rec.on_span_close(sim::TraceSpan{"crash kv2", "fault", 0, 2'000'000,
                                   2'000'000, 0});
  bench.sim.metrics().gauge("bb.kv_live").set(3);
  bench.tick();
  bench.tick();
  ASSERT_EQ(bench.monitor.state("gauge_min.bb.kv_live"), AlertState::kPage);
  ASSERT_EQ(bench.monitor.incidents().size(), 1u);

  const Incident& incident = bench.monitor.incidents()[0];
  EXPECT_TRUE(incident.file.empty());  // no incident_dir: in memory only
  EXPECT_NE(incident.json.find("\"schema\":\"hpcbb.incident.v1\""),
            std::string::npos);
  EXPECT_NE(incident.json.find("\"name\":\"crash kv2\""), std::string::npos);
  EXPECT_NE(incident.json.find("\"suspect_op_ids\":[7]"), std::string::npos);

  if (std::system("python3 -c pass >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 unavailable; skipping report.py round trip";
  }
  // tests/obs/health_test.cpp -> repo root -> tools/report.py.
  std::string root = __FILE__;
  root.erase(root.rfind("/tests/"));
  const std::string bundle = ::testing::TempDir() + "health_incident.json";
  {
    std::ofstream out(bundle);
    ASSERT_TRUE(out.good());
    out << incident.json;
  }
  const std::string cmd = "python3 '" + root + "/tools/report.py' incidents '" +
                          bundle + "' >/dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  std::remove(bundle.c_str());
}

}  // namespace
}  // namespace hpcbb::obs
