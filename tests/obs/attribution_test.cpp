// Latency attribution: per-op critical-path breakdowns from op_id-tagged
// trace spans — exact layer sums, queue/service split, deterministic top-K.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"
#include "obs/attribution.h"
#include "obs/report.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace hpcbb::obs {
namespace {

using sim::Simulation;
using sim::TraceRecorder;
using sim::TraceSpan;

const LayerSlice* find_layer(const OpAttribution& op, const std::string& name) {
  for (const LayerSlice& slice : op.layers) {
    if (slice.layer == name) return &slice;
  }
  return nullptr;
}

sim::SimTime layer_sum(const OpAttribution& op) {
  sim::SimTime sum = 0;
  for (const LayerSlice& slice : op.layers) sum += slice.total_ns;
  return sum;
}

// Multi-layer nesting, overlapping same-layer spans, and an uncovered gap:
// the per-layer sums must partition the op's end-to-end time exactly.
TEST(SpanAccountantTest, NestedSpansProduceExactPerLayerSums) {
  Simulation sim;
  TraceRecorder trace(sim);
  SpanAccountant acc;
  trace.set_span_sink(
      [&acc](const TraceSpan& s) { acc.on_span_close(s); });

  // op 1, all on the write path ("bb" + name "write.*" => layer "client"):
  //   client [0, 1000]
  //     kv [100, 300] and kv [250, 400] (overlap => still kv)
  //     lustre [500, 900]
  //   gap [1000, 1100] covered by nothing => "idle"
  //   flusher [1100, 1200]
  trace.record("write./f#0", "bb", 0, 0, 1000, 1);
  trace.record("kv.set", "kv", 1, 100, 300, 1);
  trace.record("kv.set", "kv", 2, 250, 400, 1);
  trace.record("lustre.write", "lustre", 3, 500, 900, 1);
  trace.record("flush.block_0", "bb", 0, 1100, 1200, 1);

  ASSERT_EQ(acc.op_count(), 1u);
  const OpAttribution op = acc.attribute(1);
  EXPECT_EQ(op.begin_ns, 0u);
  EXPECT_EQ(op.end_ns, 1200u);
  EXPECT_EQ(op.e2e_ns(), 1200u);
  EXPECT_EQ(op.span_count, 5u);
  EXPECT_EQ(layer_sum(op), op.e2e_ns());

  ASSERT_NE(find_layer(op, "client"), nullptr);
  EXPECT_EQ(find_layer(op, "client")->total_ns, 300u);  // 0-100,400-500,900-1000
  ASSERT_NE(find_layer(op, "kv"), nullptr);
  EXPECT_EQ(find_layer(op, "kv")->total_ns, 300u);  // 100-400 merged
  ASSERT_NE(find_layer(op, "lustre"), nullptr);
  EXPECT_EQ(find_layer(op, "lustre")->total_ns, 400u);
  ASSERT_NE(find_layer(op, "idle"), nullptr);
  EXPECT_EQ(find_layer(op, "idle")->total_ns, 100u);
  EXPECT_EQ(find_layer(op, "idle")->queue_ns, 100u);  // idle counts as queue
  ASSERT_NE(find_layer(op, "flusher"), nullptr);
  EXPECT_EQ(find_layer(op, "flusher")->total_ns, 100u);
  EXPECT_EQ(op.bottleneck, "lustre");
}

// The queue/service split: injected flowctl credit-wait and flush-queue
// dwell are queueing; everything else is service.
TEST(SpanAccountantTest, QueueServiceSplitMatchesInjectedCreditWait) {
  Simulation sim;
  TraceRecorder trace(sim);
  SpanAccountant acc;
  trace.set_span_sink(
      [&acc](const TraceSpan& s) { acc.on_span_close(s); });

  // client [0, 1000]; flowctl.stall [200, 700] (credit wait);
  // kv [700, 900]; wait.flush_queue [900, 1000] (flusher-side dwell).
  trace.record("write./f#0", "bb", 0, 0, 1000, 7);
  trace.record("flowctl.stall", "flowctl", 0, 200, 700, 7);
  trace.record("kv.set", "kv", 1, 700, 900, 7);
  trace.record("wait.flush_queue", "bb", 0, 900, 1000, 7);

  const OpAttribution op = acc.attribute(7);
  EXPECT_EQ(layer_sum(op), op.e2e_ns());

  const LayerSlice* flowctl = find_layer(op, "flowctl");
  ASSERT_NE(flowctl, nullptr);
  EXPECT_EQ(flowctl->total_ns, 500u);
  EXPECT_EQ(flowctl->queue_ns, 500u);  // the injected credit wait, exactly
  EXPECT_EQ(flowctl->service_ns, 0u);

  const LayerSlice* client = find_layer(op, "client");
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->total_ns, 200u);
  EXPECT_EQ(client->queue_ns, 0u);
  EXPECT_EQ(client->service_ns, 200u);

  const LayerSlice* flusher = find_layer(op, "flusher");
  ASSERT_NE(flusher, nullptr);  // wait.flush* maps to the flusher layer
  EXPECT_EQ(flusher->queue_ns, 100u);
  EXPECT_EQ(flusher->service_ns, 0u);

  const LayerSlice* kv = find_layer(op, "kv");
  ASSERT_NE(kv, nullptr);
  EXPECT_EQ(kv->queue_ns, 0u);
  EXPECT_EQ(kv->service_ns, 200u);
}

TEST(SpanAccountantTest, TopKOrderingDeterministicUnderTies) {
  Simulation sim;
  TraceRecorder trace(sim);
  SpanAccountant acc;
  trace.set_span_sink(
      [&acc](const TraceSpan& s) { acc.on_span_close(s); });

  // Ops 5, 2, 9 tie at 100ns end-to-end; op 7 is slowest at 200ns.
  for (const std::uint64_t op_id : {5u, 2u, 9u}) {
    trace.record("write./t#0", "bb", 0, 0, 100, op_id);
  }
  trace.record("write./t#1", "bb", 0, 50, 250, 7);

  const std::vector<OpAttribution> top = acc.slowest(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].op_id, 7u);  // slowest first
  EXPECT_EQ(top[1].op_id, 2u);  // ties by ascending op_id
  EXPECT_EQ(top[2].op_id, 5u);

  // k larger than the op count returns everything, same order.
  const std::vector<OpAttribution> all = acc.slowest(10);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[3].op_id, 9u);
}

// The sink path: spans arrive as they close (end() out of opening order),
// open spans and untagged spans are excluded.
TEST(SpanAccountantTest, SinkIngestsOnlyClosedTaggedSpans) {
  Simulation sim;
  TraceRecorder trace(sim);
  SpanAccountant acc;
  trace.set_span_sink(
      [&acc](const TraceSpan& s) { acc.on_span_close(s); });

  const std::size_t tagged = trace.begin("write./f#0", "bb", 0, 3);
  const std::size_t untagged = trace.begin("flowctl.evict./f#1", "flowctl", 0);
  const std::size_t left_open = trace.begin("kv.set", "kv", 1, 4);
  EXPECT_EQ(acc.op_count(), 0u);  // nothing closed yet
  trace.end(untagged);            // closed but op_id == 0: ignored
  trace.end(tagged);
  EXPECT_EQ(acc.op_count(), 1u);
  (void)left_open;  // never closed: op 4 must not appear
  EXPECT_EQ(acc.attribute(3).span_count, 1u);
  EXPECT_EQ(acc.attribute(4).span_count, 0u);

  // A late-attaching consumer bulk-ingests the recorder and must see
  // exactly the same closed tagged spans as the live sink did.
  SpanAccountant bulk;
  bulk.ingest(trace);
  EXPECT_EQ(bulk.op_count(), 1u);
  EXPECT_EQ(bulk.attribute(3).span_count, 1u);
}

TEST(SpanAccountantTest, ReportV2EmbedsAttributionSection) {
  Simulation sim;
  TraceRecorder trace(sim);
  SpanAccountant acc(/*top_k=*/2);
  trace.set_span_sink(
      [&acc](const TraceSpan& s) { acc.on_span_close(s); });
  trace.record("write./f#0", "bb", 0, 0, 1000, 1);
  trace.record("flowctl.stall", "flowctl", 0, 100, 700, 1);

  const std::string report = report_json(sim, nullptr, &acc);
  EXPECT_NE(report.find("\"schema\":\"hpcbb.report.v3\""), std::string::npos);
  EXPECT_NE(report.find("\"attribution\":"), std::string::npos);
  EXPECT_NE(report.find("\"op_count\":1"), std::string::npos);
  EXPECT_NE(report.find("\"layers\":"), std::string::npos);
  EXPECT_NE(report.find("\"queue_ns\":600"), std::string::npos);
  EXPECT_NE(report.find("\"top_ops\":"), std::string::npos);
  EXPECT_NE(report.find("\"bottleneck\":\"flowctl\""), std::string::npos);
  EXPECT_NE(report.find("\"spans\":"), std::string::npos);
}

// The span -> layer mapping table the DESIGN doc documents.
TEST(SpanAccountantTest, LayerMappingAndQueueClassification) {
  const auto span = [](std::string name, std::string category) {
    TraceSpan s;
    s.name = std::move(name);
    s.category = std::move(category);
    return s;
  };
  EXPECT_EQ(SpanAccountant::layer_of(span("write./f#0", "bb")), "client");
  EXPECT_EQ(SpanAccountant::layer_of(span("read./f#0", "bb")), "client");
  EXPECT_EQ(SpanAccountant::layer_of(span("flush.block_3", "bb")), "flusher");
  EXPECT_EQ(SpanAccountant::layer_of(span("wait.flush_queue", "bb")),
            "flusher");
  EXPECT_EQ(SpanAccountant::layer_of(span("kv.set", "kv")), "kv");
  EXPECT_EQ(SpanAccountant::layer_of(span("lustre.write", "lustre")),
            "lustre");
  EXPECT_EQ(SpanAccountant::layer_of(span("flowctl.stall", "flowctl")),
            "flowctl");

  EXPECT_TRUE(SpanAccountant::is_queue(span("flowctl.stall", "flowctl")));
  EXPECT_TRUE(SpanAccountant::is_queue(span("wait.flush_queue", "bb")));
  EXPECT_FALSE(SpanAccountant::is_queue(span("kv.set", "kv")));
  EXPECT_FALSE(SpanAccountant::is_queue(span("flush.block_0", "bb")));
}

}  // namespace
}  // namespace hpcbb::obs
