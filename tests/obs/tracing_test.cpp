// Causal op tracing end to end: one BB-Async block write must produce spans
// in the client (bb), KV store (kv), and Lustre (lustre) layers that all
// share a single op_id, and the Chrome trace export must carry that id.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "burstbuffer/filesystem.h"
#include "common/units.h"
#include "kvstore/server.h"
#include "lustre/mds.h"
#include "lustre/oss.h"
#include "sim/trace.h"
#include "testing/co_assert.h"

namespace hpcbb::bb {
namespace {

using net::NodeId;
using sim::Simulation;
using sim::Task;

// Minimal BB-Async deployment: 0..3 compute, 4 master, 5 MDS, 6..7 OSS,
// 8..9 KV servers — the same layout as the burst-buffer tests.
struct TraceRig {
  static constexpr NodeId kMasterNode = 4;
  static constexpr NodeId kMdsNode = 5;

  Simulation sim;
  sim::TraceRecorder trace{sim};
  net::Fabric fabric{sim, 10, net::FabricParams{}};
  net::Transport transport{fabric,
                           net::transport_preset(net::TransportKind::kRdma)};
  net::RpcHub hub{transport};
  std::vector<std::unique_ptr<lustre::Oss>> osses;
  std::unique_ptr<lustre::Mds> mds;
  std::vector<std::unique_ptr<kv::Server>> kv_servers;
  std::vector<NodeId> kv_nodes;
  std::unique_ptr<Master> master;
  std::unique_ptr<BurstBufferFileSystem> fs;

  TraceRig() {
    sim.set_trace(&trace);
    for (const NodeId n : {6u, 7u}) {
      osses.push_back(
          std::make_unique<lustre::Oss>(hub, n, lustre::OssParams{}));
    }
    std::vector<lustre::OstTarget> targets;
    for (const NodeId n : {6u, 7u}) {
      for (std::uint32_t t = 0; t < 2; ++t) targets.push_back({n, t});
    }
    mds = std::make_unique<lustre::Mds>(hub, kMdsNode, targets,
                                        lustre::MdsParams{});
    for (const NodeId n : {8u, 9u}) {
      kv::ServerParams sp;
      sp.store.memory_budget = 64 * MiB;
      sp.store.shard_count = 2;
      kv_servers.push_back(std::make_unique<kv::Server>(hub, n, sp));
      kv_nodes.push_back(n);
    }
    MasterParams mp;
    mp.block_size = 8 * MiB;
    mp.chunk_size = 1 * MiB;
    mp.buffer_capacity_bytes = 128 * MiB;
    master = std::make_unique<Master>(hub, kMasterNode, kv_nodes, kMdsNode,
                                      Scheme::kAsync, mp);
    BbFsParams fp;
    fp.scheme = Scheme::kAsync;
    fp.block_size = 8 * MiB;
    fp.chunk_size = 1 * MiB;
    const std::map<NodeId, NodeAgent*> no_agents;
    fs = std::make_unique<BurstBufferFileSystem>(hub, kMasterNode, kv_nodes,
                                                 kMdsNode, no_agents, fp);
  }
};

TEST(OpTracingTest, BlockWriteSpansThreeLayersWithOneOpId) {
  TraceRig rig;
  rig.sim.spawn([](TraceRig& r) -> Task<void> {
    auto w = co_await r.fs->create("/traced", 0);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(
        co_await w.value()->append(make_bytes(pattern_bytes(7, 0, 4 * MiB))));
    CO_ASSERT_OK(co_await w.value()->close());
    co_await r.master->wait_all_flushed();
  }(rig));
  rig.sim.run();

  // Group the trace by op_id and find the categories each op touched.
  std::map<std::uint64_t, std::set<std::string>> categories_by_op;
  for (const sim::TraceSpan& span : rig.trace.spans()) {
    if (span.op_id != 0) categories_by_op[span.op_id].insert(span.category);
  }
  ASSERT_FALSE(categories_by_op.empty());
  bool found = false;
  for (const auto& [op_id, categories] : categories_by_op) {
    if (categories.contains("bb") && categories.contains("kv") &&
        categories.contains("lustre")) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found)
      << "no op_id spans all of bb/kv/lustre; ops seen: "
      << categories_by_op.size();

  // The causal id survives into the Chrome-trace export.
  EXPECT_NE(rig.trace.to_chrome_json().find("\"args\":{\"op_id\":"),
            std::string::npos);
}

TEST(OpTracingTest, DistinctWritesGetDistinctOpIds) {
  TraceRig rig;
  rig.sim.spawn([](TraceRig& r) -> Task<void> {
    for (const char* path : {"/a", "/b"}) {
      auto w = co_await r.fs->create(path, 0);
      CO_ASSERT_OK(w);
      CO_ASSERT_OK(co_await w.value()->append(
          make_bytes(pattern_bytes(3, 0, 1 * MiB))));
      CO_ASSERT_OK(co_await w.value()->close());
    }
    co_await r.master->wait_all_flushed();
  }(rig));
  rig.sim.run();

  std::set<std::uint64_t> write_ops;
  for (const sim::TraceSpan& span : rig.trace.spans()) {
    if (span.category == "bb" && span.op_id != 0 &&
        span.name.starts_with("write.")) {
      write_ops.insert(span.op_id);
    }
  }
  EXPECT_EQ(write_ops.size(), 2u);
}

}  // namespace
}  // namespace hpcbb::bb
