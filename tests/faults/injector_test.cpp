// FaultInjector unit tests: seeded determinism, schedule shapes, limpware
// episodes, and the event-driven crash/restart entry points.
#include "faults/injector.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/properties.h"
#include "common/units.h"
#include "net/transport.h"
#include "sim/simulation.h"
#include "storage/device.h"

namespace hpcbb::faults {
namespace {

using namespace hpcbb::duration;  // NOLINT
using sim::Simulation;
using sim::SimTime;
using sim::Task;

TEST(FaultInjectorTest, DisabledInjectorIsInert) {
  // With `enabled` false (the default) the injector must not perturb the
  // run at all: no fabric hook, no schedules, no counters.
  Simulation sim;
  net::Fabric fabric{sim, 2, net::FabricParams{}};
  net::Transport transport{fabric, net::transport_preset(
                                       net::TransportKind::kRdma)};
  InjectorParams params;  // enabled = false
  params.rpc_drop_prob = 1.0;  // would drop everything if armed
  params.crash_first_ns = 1 * ms;
  FaultInjector injector(sim, params);
  int crashes = 0;
  injector.add_crash_target(
      "t0", [&crashes] { ++crashes; }, [] {});
  injector.arm_fabric(fabric);
  injector.start();

  Status status;
  sim.spawn([](net::Transport& t, Status& out) -> Task<void> {
    out = co_await t.send(0, 1, 1 * MiB);
  }(transport, status));
  sim.run();
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(crashes, 0);
  std::uint64_t injected = 0;
  for (const auto& [name, value] : sim.metrics().counters()) {
    if (name.rfind("faults.injected", 0) == 0) injected += value;
  }
  EXPECT_EQ(injected, 0u);
}

TEST(FaultInjectorTest, CrashScheduleRoundRobinsWithRestart) {
  Simulation sim;
  InjectorParams params;
  params.enabled = true;
  params.crash_first_ns = 1 * ms;
  params.crash_period_ns = 5 * ms;
  params.crash_downtime_ns = 2 * ms;
  params.crash_count = 3;
  FaultInjector injector(sim, params);
  std::vector<std::pair<std::string, SimTime>> events;
  for (const char* name : {"a", "b"}) {
    injector.add_crash_target(
        name,
        [&events, &sim, name] { events.emplace_back(std::string("down-") + name, sim.now()); },
        [&events, &sim, name] { events.emplace_back(std::string("up-") + name, sim.now()); });
  }
  injector.start();
  sim.run();

  // Round-robin a, b, a; each restart `downtime` after its crash; crashes
  // spaced `period` apart.
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0], (std::pair<std::string, SimTime>{"down-a", 1 * ms}));
  EXPECT_EQ(events[1], (std::pair<std::string, SimTime>{"up-a", 3 * ms}));
  EXPECT_EQ(events[2], (std::pair<std::string, SimTime>{"down-b", 6 * ms}));
  EXPECT_EQ(events[3], (std::pair<std::string, SimTime>{"up-b", 8 * ms}));
  EXPECT_EQ(events[4], (std::pair<std::string, SimTime>{"down-a", 11 * ms}));
  EXPECT_EQ(events[5], (std::pair<std::string, SimTime>{"up-a", 13 * ms}));
  EXPECT_EQ(sim.metrics().counter_value("faults.injected{kind=crash}"), 3u);
  EXPECT_EQ(sim.metrics().counter_value("faults.injected{kind=restart}"),
            3u);
}

TEST(FaultInjectorTest, LimpEpisodeDegradesThenRecoversDevice) {
  Simulation sim;
  storage::Device device{sim, storage::ssd_preset()};
  InjectorParams params;
  params.enabled = true;
  params.limp_first_ns = 1 * ms;
  params.limp_duration_ns = 2 * ms;
  params.limp_factor = 8.0;
  params.limp_count = 1;
  FaultInjector injector(sim, params);
  injector.add_device_target("ssd", &device);
  injector.start();

  double mid_episode = 0.0;
  double after_episode = 0.0;
  sim.spawn([](Simulation& s, storage::Device& d, double& mid,
               double& after) -> Task<void> {
    co_await s.delay(2 * ms);  // inside the episode
    mid = d.slowdown();
    co_await s.delay(2 * ms);  // past episode end at 3ms
    after = d.slowdown();
  }(sim, device, mid_episode, after_episode));
  sim.run();
  EXPECT_DOUBLE_EQ(mid_episode, 8.0);
  EXPECT_DOUBLE_EQ(after_episode, 1.0);
  EXPECT_EQ(sim.metrics().counter_value("faults.injected{kind=limp}"), 1u);
  EXPECT_EQ(
      sim.metrics().counter_value("faults.injected{kind=limp_recover}"), 1u);
}

// One simulated run: N sequential messages through an armed fabric.
// Returns {drops, delays} counter values.
std::pair<std::uint64_t, std::uint64_t> run_rpc_fault_workload(
    std::uint64_t seed) {
  Simulation sim;
  net::Fabric fabric{sim, 2, net::FabricParams{}};
  net::Transport transport{fabric, net::transport_preset(
                                       net::TransportKind::kRdma)};
  InjectorParams params;
  params.enabled = true;
  params.seed = seed;
  params.rpc_drop_prob = 0.05;
  params.rpc_delay_prob = 0.10;
  params.rpc_delay_ns = 1 * ms;
  FaultInjector injector(sim, params);
  injector.arm_fabric(fabric);
  sim.spawn([](net::Transport& t) -> Task<void> {
    for (int i = 0; i < 400; ++i) {
      (void)co_await t.send(0, 1, 32 * KiB);
    }
  }(transport));
  sim.run();
  return {sim.metrics().counter_value("faults.injected{kind=rpc_drop}"),
          sim.metrics().counter_value("faults.injected{kind=rpc_delay}")};
}

TEST(FaultInjectorTest, RpcFaultsAreSeedDeterministic) {
  const auto first = run_rpc_fault_workload(7);
  const auto second = run_rpc_fault_workload(7);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.first + first.second, 0u);  // some faults actually fired
  // A different seed draws a different fault pattern.
  const auto other = run_rpc_fault_workload(12345);
  EXPECT_NE(first, other);
}

TEST(FaultInjectorTest, ManualCrashTargetFiresRegardlessOfSchedules) {
  // Event-driven chaos (crash at a workload milestone) must work even when
  // the injector is otherwise disabled, with the same accounting.
  Simulation sim;
  InjectorParams params;  // enabled = false, no schedules
  FaultInjector injector(sim, params);
  int crashes = 0;
  int restarts = 0;
  injector.add_crash_target(
      "kv0", [&crashes] { ++crashes; }, [&restarts] { ++restarts; });
  ASSERT_EQ(injector.crash_target_count(), 1u);
  injector.crash_target(0);
  injector.restart_target(0);
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(restarts, 1);
  EXPECT_EQ(sim.metrics().counter_value("faults.injected{kind=crash}"), 1u);
  EXPECT_EQ(sim.metrics().counter_value("faults.injected{kind=restart}"),
            1u);
}

TEST(FaultInjectorTest, FromPropertiesLayersOverDefaults) {
  Properties props;
  props.set("faults.enabled", "true");
  props.set("faults.seed", "42");
  props.set("faults.rpc.drop_prob", "0.25");
  props.set("faults.crash.first", "10ms");
  props.set("faults.crash.count", "5");
  props.set("faults.limp.factor", "16");
  InjectorParams defaults;
  defaults.rpc_delay_prob = 0.5;  // survives: not overridden by props
  const InjectorParams params =
      InjectorParams::from_properties(props, defaults);
  EXPECT_TRUE(params.enabled);
  EXPECT_EQ(params.seed, 42u);
  EXPECT_DOUBLE_EQ(params.rpc_drop_prob, 0.25);
  EXPECT_DOUBLE_EQ(params.rpc_delay_prob, 0.5);
  EXPECT_EQ(params.crash_first_ns, 10 * ms);
  EXPECT_EQ(params.crash_count, 5u);
  EXPECT_DOUBLE_EQ(params.limp_factor, 16.0);
}

}  // namespace
}  // namespace hpcbb::faults
