#include "storage/local_store.h"

#include <gtest/gtest.h>

#include "testing/co_assert.h"
#include "common/units.h"
#include "sim/sync.h"

namespace hpcbb::storage {
namespace {

using namespace hpcbb::duration;  // NOLINT
using sim::Simulation;
using sim::Task;

DeviceParams small_ram() {
  DeviceParams p = ramdisk_preset(4 * MiB);
  return p;
}

TEST(LocalStoreTest, AppendReadRoundTrip) {
  Simulation sim;
  Device dev(sim, small_ram());
  LocalStore store(dev);
  const Bytes payload = pattern_bytes(11, 0, 1000);
  Bytes got;
  sim.spawn([](LocalStore& ls, const Bytes& data, Bytes& out) -> Task<void> {
    CO_ASSERT((co_await ls.append("blk_1", data)).is_ok());
    auto r = co_await ls.read("blk_1", 0, data.size());
    CO_ASSERT(r.is_ok());
    out = std::move(r).value();
  }(store, payload, got));
  sim.run();
  EXPECT_EQ(got, payload);
  EXPECT_EQ(store.object_size("blk_1"), 1000u);
  EXPECT_EQ(store.used_bytes(), 1000u);
}

TEST(LocalStoreTest, MultipleAppendsConcatenate) {
  Simulation sim;
  Device dev(sim, small_ram());
  LocalStore store(dev);
  Bytes got;
  sim.spawn([](LocalStore& ls, Bytes& out) -> Task<void> {
    CO_ASSERT((co_await ls.append("obj", pattern_bytes(5, 0, 100))).is_ok());
    CO_ASSERT((co_await ls.append("obj", pattern_bytes(5, 100, 60))).is_ok());
    auto r = co_await ls.read("obj", 0, 160);
    CO_ASSERT(r.is_ok());
    out = std::move(r).value();
  }(store, got));
  sim.run();
  EXPECT_TRUE(verify_pattern(5, 0, got));
}

TEST(LocalStoreTest, PartialReads) {
  Simulation sim;
  Device dev(sim, small_ram());
  LocalStore store(dev);
  Bytes got;
  sim.spawn([](LocalStore& ls, Bytes& out) -> Task<void> {
    CO_ASSERT((co_await ls.append("obj", pattern_bytes(9, 0, 4096))).is_ok());
    auto r = co_await ls.read("obj", 1024, 512);
    CO_ASSERT(r.is_ok());
    out = std::move(r).value();
  }(store, got));
  sim.run();
  EXPECT_TRUE(verify_pattern(9, 1024, got));
}

TEST(LocalStoreTest, ReadErrors) {
  Simulation sim;
  Device dev(sim, small_ram());
  LocalStore store(dev);
  StatusCode missing{}, range{};
  sim.spawn([](LocalStore& ls, StatusCode& m, StatusCode& r) -> Task<void> {
    m = (co_await ls.read("ghost", 0, 1)).code();
    CO_ASSERT((co_await ls.append("obj", pattern_bytes(1, 0, 10))).is_ok());
    r = (co_await ls.read("obj", 5, 10)).code();
  }(store, missing, range));
  sim.run();
  EXPECT_EQ(missing, StatusCode::kNotFound);
  EXPECT_EQ(range, StatusCode::kOutOfRange);
}

TEST(LocalStoreTest, RemoveFreesSpace) {
  Simulation sim;
  Device dev(sim, small_ram());
  LocalStore store(dev);
  sim.spawn([](LocalStore& ls) -> Task<void> {
    CO_ASSERT((co_await ls.append("a", pattern_bytes(1, 0, 2048))).is_ok());
  }(store));
  sim.run();
  EXPECT_EQ(store.used_bytes(), 2048u);
  EXPECT_TRUE(store.remove("a").is_ok());
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_FALSE(store.contains("a"));
  EXPECT_EQ(store.remove("a").code(), StatusCode::kNotFound);
}

TEST(LocalStoreTest, CapacityExhaustion) {
  Simulation sim;
  Device dev(sim, small_ram());  // 4 MiB
  LocalStore store(dev);
  Status status;
  sim.spawn([](LocalStore& ls, Status& out) -> Task<void> {
    CO_ASSERT(
        (co_await ls.append("a", pattern_bytes(1, 0, 3 * MiB))).is_ok());
    out = co_await ls.append("b", pattern_bytes(2, 0, 2 * MiB));
  }(store, status));
  sim.run();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(store.contains("b"));
}

TEST(LocalStoreTest, WipeDropsEverythingInstantly) {
  Simulation sim;
  Device dev(sim, small_ram());
  LocalStore store(dev);
  sim.spawn([](LocalStore& ls) -> Task<void> {
    CO_ASSERT((co_await ls.append("a", pattern_bytes(1, 0, 100))).is_ok());
    CO_ASSERT((co_await ls.append("b", pattern_bytes(2, 0, 100))).is_ok());
  }(store));
  sim.run();
  store.wipe();
  EXPECT_EQ(store.object_count(), 0u);
  EXPECT_EQ(store.used_bytes(), 0u);
}

TEST(LocalStoreTest, DeviceTimeCharged) {
  Simulation sim;
  DeviceParams p = small_ram();
  p.write_bytes_per_sec = 1 * MB;
  p.seek_ns = 0;
  Device dev(sim, p);
  LocalStore store(dev);
  sim.spawn([](LocalStore& ls) -> Task<void> {
    CO_ASSERT((co_await ls.append("a", pattern_bytes(1, 0, 1 * MB))).is_ok());
  }(store));
  sim.run();
  EXPECT_EQ(sim.now(), 1 * sec);
}

}  // namespace
}  // namespace hpcbb::storage
