#include "storage/device.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/sync.h"

namespace hpcbb::storage {
namespace {

using namespace hpcbb::duration;  // NOLINT
using sim::Simulation;
using sim::SimTime;
using sim::Task;

DeviceParams simple_disk() {
  return DeviceParams{.kind = MediaKind::kHdd,
                      .read_bytes_per_sec = 100 * MB,
                      .write_bytes_per_sec = 50 * MB,
                      .seek_ns = 1 * ms,
                      .capacity_bytes = 100 * MiB};
}

TEST(DeviceTest, SequentialWriteNoExtraSeeks) {
  Simulation sim;
  Device disk(sim, simple_disk());
  sim.spawn([](Device& d) -> Task<void> {
    co_await d.write(0, 10 * MB);        // seek (first op) + 200 ms
    co_await d.write(10 * MB, 10 * MB);  // sequential: 200 ms
  }(disk));
  sim.run();
  EXPECT_EQ(sim.now(), 1 * ms + 400 * ms);
  EXPECT_EQ(disk.seek_count(), 1u);
  EXPECT_EQ(disk.io_count(), 2u);
}

TEST(DeviceTest, RandomAccessPaysSeeks) {
  Simulation sim;
  Device disk(sim, simple_disk());
  sim.spawn([](Device& d) -> Task<void> {
    co_await d.write(0, 1 * MB);
    co_await d.write(50 * MB, 1 * MB);  // jump: seek
    co_await d.write(10 * MB, 1 * MB);  // jump: seek
  }(disk));
  sim.run();
  EXPECT_EQ(disk.seek_count(), 3u);
}

TEST(DeviceTest, ReadsFasterThanWrites) {
  Simulation s1, s2;
  Device d1(s1, simple_disk()), d2(s2, simple_disk());
  s1.spawn([](Device& d) -> Task<void> { co_await d.read(0, 10 * MB); }(d1));
  s2.spawn([](Device& d) -> Task<void> { co_await d.write(0, 10 * MB); }(d2));
  s1.run();
  s2.run();
  EXPECT_EQ(s1.now(), 1 * ms + 100 * ms);
  EXPECT_EQ(s2.now(), 1 * ms + 200 * ms);
}

TEST(DeviceTest, ConcurrentRequestsQueue) {
  Simulation sim;
  Device disk(sim, simple_disk());
  std::vector<SimTime> done;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Device& d, int id, std::vector<SimTime>& out) -> Task<void> {
      co_await d.write(static_cast<std::uint64_t>(id) * 50 * MB, 5 * MB);
      out.push_back(100);  // marker; time checked via sim
    }(disk, i, done));
  }
  sim.run();
  // Two 100 ms writes with seeks (interleaved offsets): both serialized.
  EXPECT_EQ(sim.now(), 2 * ms + 200 * ms);
  EXPECT_EQ(done.size(), 2u);
}

TEST(DeviceTest, CapacityEnforced) {
  Simulation sim;
  Device disk(sim, simple_disk());  // 100 MiB capacity
  EXPECT_TRUE(disk.reserve(60 * MiB).is_ok());
  EXPECT_EQ(disk.reserve(60 * MiB).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(disk.used_bytes(), 60 * MiB);
  disk.release(30 * MiB);
  EXPECT_TRUE(disk.reserve(60 * MiB).is_ok());
  EXPECT_EQ(disk.used_bytes(), 90 * MiB);
}

TEST(DeviceTest, ReleaseClampsAtZero) {
  Simulation sim;
  Device disk(sim, simple_disk());
  ASSERT_TRUE(disk.reserve(10).is_ok());
  disk.release(100);
  EXPECT_EQ(disk.used_bytes(), 0u);
}

TEST(DeviceTest, PresetOrdering) {
  // RAM disk >> SSD >> HDD in bandwidth; seeks in reverse.
  const auto hdd = hdd_preset();
  const auto ssd = ssd_preset();
  const auto ram = ramdisk_preset();
  EXPECT_GT(ssd.write_bytes_per_sec, 3 * hdd.write_bytes_per_sec);
  EXPECT_GT(ram.write_bytes_per_sec, 4 * ssd.write_bytes_per_sec);
  EXPECT_GT(hdd.seek_ns, 50 * ssd.seek_ns);
  EXPECT_GT(ssd.seek_ns, 10 * ram.seek_ns);
}

}  // namespace
}  // namespace hpcbb::storage
