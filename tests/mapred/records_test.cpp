#include "mapred/records.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace hpcbb::mapred {
namespace {

TEST(RecordsTest, GenerationDeterministic) {
  EXPECT_EQ(generate_records(5, 100), generate_records(5, 100));
  EXPECT_NE(generate_records(5, 100), generate_records(6, 100));
}

TEST(RecordsTest, SizesExact) {
  EXPECT_EQ(generate_records(1, 7).size(), 7 * kRecordSize);
  EXPECT_TRUE(generate_records(1, 0).empty());
}

TEST(RecordsTest, SortedDetection) {
  Bytes data = generate_records(9, 1000);
  EXPECT_FALSE(records_sorted(data));  // random keys: virtually never sorted

  // Sort it the dumb way and re-check.
  std::vector<std::uint64_t> order(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
    return compare_keys(data.data() + a * kRecordSize,
                        data.data() + b * kRecordSize) < 0;
  });
  Bytes sorted(data.size());
  for (std::uint64_t i = 0; i < 1000; ++i) {
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(order[i] * kRecordSize),
                kRecordSize,
                sorted.begin() + static_cast<std::ptrdiff_t>(i * kRecordSize));
  }
  EXPECT_TRUE(records_sorted(sorted));
  // Same multiset of records: checksum matches.
  EXPECT_EQ(records_checksum(data), records_checksum(sorted));
}

TEST(RecordsTest, ChecksumDetectsContentChange) {
  Bytes data = generate_records(3, 100);
  const std::uint64_t clean = records_checksum(data);
  data[50] ^= 1;
  EXPECT_NE(records_checksum(data), clean);
}

TEST(RecordsTest, ChecksumOrderIndependent) {
  Bytes a = generate_records(4, 2);
  Bytes b(a.begin() + kRecordSize, a.end());
  b.insert(b.end(), a.begin(), a.begin() + kRecordSize);
  EXPECT_EQ(records_checksum(a), records_checksum(b));
}

TEST(RecordsTest, PartitionCoversAllAndBalances) {
  const Bytes data = generate_records(11, 20000);
  std::map<std::uint32_t, int> counts;
  for (std::uint64_t r = 0; r < 20000; ++r) {
    const std::uint32_t p = partition_of(data.data() + r * kRecordSize, 8);
    ASSERT_LT(p, 8u);
    ++counts[p];
  }
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [p, n] : counts) {
    EXPECT_GT(n, 2000) << "partition " << p;
    EXPECT_LT(n, 3100) << "partition " << p;
  }
}

TEST(RecordsTest, PartitionIsOrderPreserving) {
  // If key(a) <= key(b) then partition(a) <= partition(b): required for
  // concatenated reducer outputs to be globally sorted.
  const Bytes data = generate_records(13, 1000);
  for (std::uint64_t i = 0; i < 999; ++i) {
    const std::uint8_t* a = data.data() + i * kRecordSize;
    for (std::uint64_t j = i + 1; j < std::min<std::uint64_t>(i + 20, 1000);
         ++j) {
      const std::uint8_t* b = data.data() + j * kRecordSize;
      const std::uint8_t* lo = compare_keys(a, b) <= 0 ? a : b;
      const std::uint8_t* hi = lo == a ? b : a;
      EXPECT_LE(partition_of(lo, 16), partition_of(hi, 16));
    }
  }
}

}  // namespace
}  // namespace hpcbb::mapred
