// Parameterized MapReduce sweeps: sort correctness must survive every
// combination of block size, split size, reducer count, and file count —
// the split/record alignment math is where off-by-one bugs hide.
#include <gtest/gtest.h>

#include <tuple>

#include "testing/co_assert.h"
#include "common/units.h"
#include "cluster/cluster.h"
#include "mapred/workloads.h"
#include "sim/sync.h"

namespace hpcbb::mapred {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::FsKind;
using sim::Task;

// (block_size_mib, reducers, files, records_per_file)
using JobParam = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                            std::uint32_t>;

class SortSweep : public ::testing::TestWithParam<JobParam> {};

INSTANTIATE_TEST_SUITE_P(
    Geometries, SortSweep,
    ::testing::Values(JobParam{2, 1, 1, 30000},    // single everything
                      JobParam{2, 7, 3, 50000},    // odd reducer count
                      JobParam{4, 4, 4, 80000},    // balanced
                      JobParam{8, 16, 2, 120000},  // more reducers than maps
                      JobParam{3, 5, 5, 40000}),   // nothing divides anything
    [](const auto& param_info) {
      return "b" + std::to_string(std::get<0>(param_info.param)) + "_r" +
             std::to_string(std::get<1>(param_info.param)) + "_f" +
             std::to_string(std::get<2>(param_info.param)) + "_n" +
             std::to_string(std::get<3>(param_info.param));
    });

TEST_P(SortSweep, GloballySortedAndComplete) {
  const auto [block_mib, reducers, files, records] = GetParam();
  ClusterConfig config;
  config.compute_nodes = 4;
  config.kv_servers = 2;
  config.oss_count = 2;
  config.block_size = static_cast<std::uint64_t>(block_mib) * MiB;
  config.kv_memory_per_server = 128 * MiB;
  Cluster cluster(config);

  std::uint64_t in_sum = 1, out_sum = 2;
  bool sorted = false;
  cluster.sim().spawn([](Cluster& c, std::uint32_t n_files,
                         std::uint32_t n_records, std::uint32_t n_reducers,
                         std::uint64_t& in, std::uint64_t& out,
                         bool& is_sorted) -> Task<void> {
    const auto kind = FsKind::kBurstBuffer;
    GenerateParams gen;
    gen.files = n_files;
    gen.records_per_file = n_records;
    auto generated = co_await generate_records_input(
        c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), gen);
    CO_ASSERT(generated.is_ok());
    in = generated.value().checksum;

    auto runner = c.make_runner(kind);
    SortJob job(n_reducers);
    std::vector<std::string> inputs;
    for (std::uint32_t i = 0; i < n_files; ++i) {
      inputs.push_back(gen.dir + "/part-" + std::to_string(i));
    }
    auto stats = co_await runner->run(job, inputs, "/out");
    CO_ASSERT(stats.is_ok());
    CO_ASSERT(stats.value().input_bytes ==
              static_cast<std::uint64_t>(n_files) * n_records * kRecordSize);

    Bytes all;
    for (std::uint32_t r = 0; r < n_reducers; ++r) {
      auto reader =
          co_await c.filesystem(kind).open("/out/part-" + std::to_string(r),
                                           0);
      CO_ASSERT(reader.is_ok());
      auto data = co_await reader.value()->read(0, reader.value()->size());
      CO_ASSERT(data.is_ok());
      all.insert(all.end(), data.value().begin(), data.value().end());
    }
    is_sorted = records_sorted(all);
    out = records_checksum(all);
  }(cluster, files, records, reducers, in_sum, out_sum, sorted));
  cluster.sim().run();
  EXPECT_TRUE(sorted);
  EXPECT_EQ(in_sum, out_sum);
}

// Split-size override: forcing splits that are *not* block-aligned must not
// change results (record-boundary adjustment at work).
TEST(SplitAlignmentTest, NonBlockAlignedSplitsStillCorrect) {
  ClusterConfig config;
  config.compute_nodes = 4;
  config.kv_servers = 2;
  config.oss_count = 2;
  config.block_size = 4 * MiB;
  config.mapred.split_size = 1 * MiB + 12345;  // deliberately misaligned
  Cluster cluster(config);
  std::uint64_t in_sum = 1, out_sum = 2;
  cluster.sim().spawn([](Cluster& c, std::uint64_t& in,
                         std::uint64_t& out) -> Task<void> {
    const auto kind = FsKind::kBurstBuffer;
    GenerateParams gen;
    gen.files = 2;
    gen.records_per_file = 60000;
    auto generated = co_await generate_records_input(
        c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), gen);
    CO_ASSERT(generated.is_ok());
    in = generated.value().checksum;
    auto runner = c.make_runner(kind);
    SortJob job(4);
    const std::vector<std::string> inputs{gen.dir + "/part-0",
                                          gen.dir + "/part-1"};
    auto stats = co_await runner->run(job, inputs, "/out");
    CO_ASSERT(stats.is_ok());
    Bytes all;
    for (std::uint32_t r = 0; r < 4; ++r) {
      auto reader = co_await c.filesystem(kind).open(
          "/out/part-" + std::to_string(r), 0);
      CO_ASSERT(reader.is_ok());
      auto data = co_await reader.value()->read(0, reader.value()->size());
      CO_ASSERT(data.is_ok());
      all.insert(all.end(), data.value().begin(), data.value().end());
    }
    CO_ASSERT(records_sorted(all));
    out = records_checksum(all);
  }(cluster, in_sum, out_sum));
  cluster.sim().run();
  EXPECT_EQ(in_sum, out_sum);
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalTimings) {
  // The whole stack is deterministic: two identical cluster runs give the
  // same simulated makespan and event count, bit for bit.
  auto run_once = [] {
    ClusterConfig config;
    config.compute_nodes = 4;
    config.kv_servers = 2;
    config.oss_count = 2;
    Cluster cluster(config);
    cluster.sim().spawn([](Cluster& c) -> Task<void> {
      const auto kind = FsKind::kBurstBuffer;
      DfsioParams params;
      params.files = 4;
      params.file_size = 16 * MiB;
      auto w = co_await dfsio_write(c.filesystem(kind), c.hub_for(kind),
                                    c.compute_nodes(), params);
      CO_ASSERT(w.is_ok());
      auto r = co_await dfsio_read(c.filesystem(kind), c.hub_for(kind),
                                   c.compute_nodes(), params);
      CO_ASSERT(r.is_ok());
    }(cluster));
    cluster.sim().run();
    return std::pair{cluster.sim().now(), cluster.sim().events_processed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hpcbb::mapred
